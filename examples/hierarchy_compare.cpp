/**
 * @file
 * Hierarchy comparison: run one workload through all four lower-level
 * organizations (base L2/L3, D-NUCA, set-associative placement,
 * NuRAPID) on the full simulated system and compare IPC, hit
 * distribution and energy — the whole-paper experiment in miniature.
 *
 * Run: ./build/examples/hierarchy_compare [benchmark] (default: applu)
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace nurapid;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "applu";
    const WorkloadProfile &profile = findProfile(name);

    std::printf("Workload '%s' (%s, %s; paper base IPC %.1f, "
                "%.0f L2 accesses/kinst)\n\n",
                profile.name.c_str(), profile.fp ? "FP" : "Int",
                profile.high_load ? "high-load" : "low-load",
                profile.table3_ipc, profile.table3_l2_apki);

    struct Entry
    {
        const char *label;
        OrgSpec spec;
    };
    const Entry entries[] = {
        {"base L2/L3", OrgSpec::baseline()},
        {"D-NUCA ss-performance", OrgSpec::dnucaSsPerformance()},
        {"D-NUCA ss-energy", OrgSpec::dnucaSsEnergy()},
        {"SA-placement NUCA", OrgSpec::coupledSA()},
        {"NuRAPID 4 d-groups", OrgSpec::nurapidDefault()},
        {"NuRAPID ideal bound", OrgSpec::nurapidIdeal()},
    };

    // One batch through the run engine: the six organizations simulate
    // in parallel (NURAPID_JOBS workers) instead of back to back.
    std::vector<RunRequest> requests;
    for (const Entry &e : entries)
        requests.push_back(RunRequest{e.spec, profile, SimLength::fromEnv()});
    auto runs = globalRunEngine().runMany(requests);

    TextTable t;
    t.header({"Organization", "IPC", "rel.", "fast-region hits",
              "miss", "L2 nJ/access", "EDP rel."});
    double base_ipc = 0, base_edp = 0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const Entry &e = entries[i];
        const RunMetrics &m = runs[i];
        if (base_ipc == 0) {
            base_ipc = m.ipc;
            base_edp = m.energy.edp;
        }
        t.row({e.label, TextTable::num(m.ipc, 3),
               TextTable::num(m.ipc / base_ipc, 3),
               TextTable::pct(m.region_frac.empty() ? 0
                                                    : m.region_frac[0]),
               TextTable::pct(m.miss_frac),
               TextTable::num(m.l2_demand
                                  ? m.energy.l2_cache_nj / m.l2_demand
                                  : 0),
               TextTable::num(m.energy.edp / base_edp, 3)});
    }
    t.print();

    std::printf("\n'fast-region hits' is the fraction of demand "
                "accesses served by the fastest region (d-group 0, "
                "bank row 0, or the L2 for the base case).\n");
    return 0;
}
