/**
 * @file
 * Hot-set explorer: the paper's motivating scenario (Section 2.1)
 * made concrete. A "hot set" receives many more live blocks than a
 * coupled design can keep fast. We hammer one set of
 *   (a) the set-associative-placement NUCA, and
 *   (b) NuRAPID,
 * and watch where the hits land and what that costs in cycles.
 *
 * Run: ./build/examples/hot_set_explorer [hot_blocks]
 */

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "common/table.hh"
#include "nurapid/coupled_nuca.hh"
#include "nurapid/nurapid_cache.hh"
#include "timing/geometry.hh"

using namespace nurapid;

int
main(int argc, char **argv)
{
    const std::uint32_t hot_blocks =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 8;

    SramMacroModel model(TechParams::the70nm());

    NuRapidCache::Params np;  // 8 MB, 8-way, 4 d-groups
    CoupledNucaCache::Params cp;
    fatal_if(hot_blocks > np.assoc,
             "at most %u blocks can coexist in one 8-way set", np.assoc);

    NuRapidCache nurapid(model, np);
    CoupledNucaCache coupled(model, cp);

    const Addr stride = np.capacity_bytes / np.assoc;  // same set
    Cycle now = 0;

    // Warm both caches: the hot set's blocks all become resident.
    for (int round = 0; round < 4; ++round)
        for (std::uint32_t b = 0; b < hot_blocks; ++b) {
            const Addr a = b * stride;
            nurapid.access(a, AccessType::Read, now);
            coupled.access(a, AccessType::Read, now);
            now += 10000;
        }
    nurapid.resetStats();
    coupled.resetStats();

    // Measure: round-robin over the hot blocks.
    std::uint64_t nurapid_cycles = 0, coupled_cycles = 0;
    const int rounds = 1000;
    for (int round = 0; round < rounds; ++round) {
        for (std::uint32_t b = 0; b < hot_blocks; ++b) {
            const Addr a = b * stride;
            nurapid_cycles +=
                nurapid.access(a, AccessType::Read, now).latency;
            coupled_cycles +=
                coupled.access(a, AccessType::Read, now).latency;
            now += 10000;
        }
    }
    const double n_accesses = double(rounds) * hot_blocks;

    std::printf("Hot set with %u live blocks, %u-way cache over %u "
                "d-groups (%u ways per d-group when coupled)\n\n",
                hot_blocks, np.assoc, np.num_dgroups,
                cp.assoc / cp.num_dgroups);

    TextTable t;
    t.header({"Design", "avg hit latency (cy)", "hits in d-group 0",
              "swaps/access"});
    auto row = [&](const char *name, LowerMemory &c, double cycles) {
        const auto &s = c.stats();
        const double hits = double(s.counterValue("hits"));
        t.row({name, TextTable::num(cycles / n_accesses, 1),
               TextTable::pct(c.regionHits().count(0) / hits),
               TextTable::num(double(s.counterValue("block_moves")) /
                                  n_accesses, 3)});
    };
    row("set-associative placement", coupled, double(coupled_cycles));
    row("NuRAPID (distance assoc.)", nurapid, double(nurapid_cycles));
    t.print();

    std::printf("\nWith more hot blocks than the coupled design's "
                "per-d-group ways, NuRAPID keeps every one of them in "
                "the fastest d-group while the coupled cache thrashes "
                "them through swap after swap.\n");
    return 0;
}
