/**
 * @file
 * Policy playground: sweep NuRAPID's three policy axes — promotion
 * policy, distance-replacement selection, and d-group count — on one
 * workload, and print the resulting placement quality and performance.
 * A compact version of Sections 5.2-5.3.
 *
 * Run: ./build/examples/policy_playground [benchmark] (default: swim)
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace nurapid;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "swim";
    const WorkloadProfile &profile = findProfile(name);
    auto base = runOne(OrgSpec::baseline(), profile);

    std::printf("Workload '%s'; base IPC %.3f\n\n", profile.name.c_str(),
                base.ipc);

    TextTable t;
    t.header({"d-groups", "promotion", "distance repl", "g0 hits",
              "promotions/kacc", "demotions/kacc", "IPC vs base"});

    for (std::uint32_t ndg : {2u, 4u, 8u}) {
        for (auto promo : {PromotionPolicy::DemotionOnly,
                           PromotionPolicy::NextFastest,
                           PromotionPolicy::Fastest}) {
            for (auto drepl : {DistanceRepl::Random, DistanceRepl::LRU}) {
                auto m = runOne(OrgSpec::nurapidDefault(ndg, promo,
                                                        drepl),
                                profile);
                const double kacc = m.l2_demand / 1000.0;
                t.row({std::to_string(ndg), promotionPolicyName(promo),
                       distanceReplName(drepl),
                       TextTable::pct(m.region_frac[0]),
                       TextTable::num(kacc ? m.promotions / kacc : 0, 1),
                       TextTable::num(kacc ? m.demotions / kacc : 0, 1),
                       TextTable::num(m.ipc / base.ipc, 3)});
            }
        }
    }
    t.print();

    std::printf("\nThings to look for (Sections 5.2-5.3): demotion-only "
                "strands hot blocks in slow d-groups; next-fastest and "
                "fastest recover them; random distance replacement "
                "only hurts when nothing re-promotes its mistakes; two "
                "big d-groups trade placement quality for a slower "
                "fastest d-group; eight small ones swap far more.\n");
    return 0;
}
