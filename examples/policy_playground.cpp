/**
 * @file
 * Policy playground: sweep NuRAPID's three policy axes — promotion
 * policy, distance-replacement selection, and d-group count — on one
 * workload, and print the resulting placement quality and performance.
 * A compact version of Sections 5.2-5.3.
 *
 * Run: ./build/examples/policy_playground [benchmark] (default: swim)
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace nurapid;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "swim";
    const WorkloadProfile &profile = findProfile(name);
    auto base = runOne(OrgSpec::baseline(), profile);

    std::printf("Workload '%s'; base IPC %.3f\n\n", profile.name.c_str(),
                base.ipc);

    TextTable t;
    t.header({"d-groups", "promotion", "distance repl", "g0 hits",
              "promotions/kacc", "demotions/kacc", "IPC vs base"});

    // Build the full 18-point sweep, then run it as one parallel batch
    // through the engine instead of 18 serial simulations.
    struct Point
    {
        std::uint32_t ndg;
        PromotionPolicy promo;
        DistanceRepl drepl;
    };
    std::vector<Point> points;
    std::vector<RunRequest> requests;
    for (std::uint32_t ndg : {2u, 4u, 8u}) {
        for (auto promo : {PromotionPolicy::DemotionOnly,
                           PromotionPolicy::NextFastest,
                           PromotionPolicy::Fastest}) {
            for (auto drepl : {DistanceRepl::Random, DistanceRepl::LRU}) {
                points.push_back(Point{ndg, promo, drepl});
                requests.push_back(
                    RunRequest{OrgSpec::nurapidDefault(ndg, promo, drepl),
                               profile, SimLength::fromEnv()});
            }
        }
    }
    auto runs = globalRunEngine().runMany(requests);
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const Point &pt = points[i];
        const RunMetrics &m = runs[i];
        const double kacc = m.l2_demand / 1000.0;
        t.row({std::to_string(pt.ndg), promotionPolicyName(pt.promo),
               distanceReplName(pt.drepl),
               TextTable::pct(m.region_frac[0]),
               TextTable::num(kacc ? m.promotions / kacc : 0, 1),
               TextTable::num(kacc ? m.demotions / kacc : 0, 1),
               TextTable::num(m.ipc / base.ipc, 3)});
    }
    t.print();

    std::printf("\nThings to look for (Sections 5.2-5.3): demotion-only "
                "strands hot blocks in slow d-groups; next-fastest and "
                "fastest recover them; random distance replacement "
                "only hurts when nothing re-promotes its mistakes; two "
                "big d-groups trade placement quality for a slower "
                "fastest d-group; eight small ones swap far more.\n");
    return 0;
}
