/**
 * @file
 * Quickstart: build a NuRAPID cache, drive it by hand, and read the
 * timing/energy/distribution results — the five-minute tour of the
 * public API.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "common/table.hh"
#include "nurapid/nurapid_cache.hh"
#include "nurapid/pointer_codec.hh"
#include "timing/geometry.hh"

using namespace nurapid;

int
main()
{
    // 1. Physical model: the calibrated 70 nm / 5 GHz technology point
    //    and the SRAM-macro curves derived from it.
    SramMacroModel model(TechParams::the70nm());

    // 2. The cache. Defaults reproduce the paper's headline design:
    //    8 MB, 8-way, 128 B blocks, 4 d-groups of 2 MB, next-fastest
    //    promotion, random distance replacement, one port.
    NuRapidCache::Params params;
    params.num_dgroups = 4;
    NuRapidCache cache(model, params);

    std::printf("NuRAPID %u d-groups; tag probe %u cycles\n",
                params.num_dgroups, cache.timing().tag_latency);
    TextTable lat;
    lat.header({"d-group", "total latency (cy)", "read energy (nJ)",
                "route (mm)"});
    for (std::size_t g = 0; g < cache.timing().numDGroups(); ++g) {
        const auto &d = cache.timing().dgroups[g];
        lat.row({std::to_string(g), std::to_string(d.total_latency),
                 TextTable::num(d.read_nj), TextTable::num(d.route_mm)});
    }
    lat.print();

    // 3. Drive it. The access interface takes an address, an access
    //    type, and the current cycle; it returns the latency to data
    //    return and whether it hit on chip.
    Cycle now = 0;
    const Addr kBlock = 128;

    auto miss = cache.access(0x100000, AccessType::Read, now);
    std::printf("\ncold miss: %u cycles (tag probe + memory)\n",
                miss.latency);

    now += 1000;
    auto hit = cache.access(0x100000, AccessType::Read, now);
    std::printf("re-access: %u cycles — the fill went to d-group 0\n",
                hit.latency);

    // 4. Distance associativity in one picture: a conventional cache
    //    could keep at most ways/d-groups blocks of one set fast;
    //    NuRAPID keeps the whole hot set in the fastest d-group.
    const Addr set_stride = params.capacity_bytes / params.assoc;
    for (std::uint32_t w = 0; w < params.assoc; ++w)
        cache.access(w * set_stride, AccessType::Read, now += 1000);
    const std::uint32_t set = cache.tags().setOf(0);
    std::printf("\nall %u blocks of hot set %u now sit in d-group 0: "
                "%u/%u\n", params.assoc, set,
                cache.blocksOfSetInGroup(set, 0), params.assoc);

    // 5. Statistics and energy.
    std::printf("\n%s", cache.stats().dump().c_str());
    std::printf("dynamic energy so far: %.2f nJ (on-chip %.2f nJ)\n",
                cache.dynamicEnergyNJ(), cache.cacheEnergyNJ());

    // 6. The Section 2.4.3 overhead arithmetic.
    auto layout = computePointerLayout(params.capacity_bytes,
                                       params.block_bytes, params.assoc,
                                       params.num_dgroups);
    std::printf("\nforward pointer: %u bits; reverse: %u bits; "
                "pointer storage overhead: %.1f%%\n",
                layout.forward_bits, layout.reverse_bits,
                100.0 * layout.pointer_overhead);
    (void)kBlock;
    return 0;
}
