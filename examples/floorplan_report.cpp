/**
 * @file
 * Floorplan report: a tour of the physical model behind every latency
 * and energy number — SRAM-macro access curves, the L-shaped NuRAPID
 * floorplan, and the D-NUCA bank grid (Figures 3a/3b of the paper).
 *
 * Run: ./build/examples/floorplan_report
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/table.hh"
#include "timing/floorplan.hh"
#include "timing/latency_tables.hh"

using namespace nurapid;

int
main()
{
    const TechParams &tech = TechParams::the70nm();
    SramMacroModel model(tech);
    constexpr std::uint64_t KB = 1024;
    constexpr std::uint64_t MB = 1024 * 1024;

    std::printf("Technology: %.0f GHz clock (%.2f ns), %.1f mm^2/MB "
                "SRAM, %.2f ns/mm wire (one-way)\n\n",
                1.0 / tech.cycle_ns, tech.cycle_ns, tech.mm2_per_mb,
                tech.wire_ns_per_mm);

    std::printf("SRAM-macro access curves (Cacti-like anchors):\n");
    TextTable m;
    m.header({"capacity", "access (ns)", "cycles", "read (nJ)",
              "area (mm^2)"});
    for (std::uint64_t cap : {64 * KB, 256 * KB, 1 * MB, 2 * MB, 4 * MB,
                              8 * MB}) {
        m.row({cap >= MB ? strprintf("%llu MB",
                                     (unsigned long long)(cap / MB))
                         : strprintf("%llu KB",
                                     (unsigned long long)(cap / KB)),
               TextTable::num(model.dataAccessNs(cap)),
               std::to_string(tech.toCycles(model.dataAccessNs(cap))),
               TextTable::num(model.dataReadNJ(cap), 3),
               TextTable::num(model.areaMm2(cap), 1)});
    }
    m.print();

    std::printf("\nNuRAPID L-shaped floorplan (Figure 3b), 4 x 2 MB "
                "d-groups:\n");
    auto nr = makeNuRapidTiming(model, 8 * MB, 4, 8, 128);
    TextTable f;
    f.header({"d-group", "route (mm)", "wire RT (cy)", "array (cy)",
              "tag (cy)", "total (cy)"});
    for (std::size_t g = 0; g < nr.numDGroups(); ++g) {
        const auto &d = nr.dgroups[g];
        f.row({std::to_string(g), TextTable::num(d.route_mm, 1),
               std::to_string(d.data_latency - d.array_latency),
               std::to_string(d.array_latency),
               std::to_string(nr.tag_latency),
               std::to_string(d.total_latency)});
    }
    f.print();

    std::printf("\nD-NUCA 16x8 bank grid (Figure 3a), latency per bank "
                "(cycles; core below the middle of row 0):\n");
    auto dn = makeDNucaTiming(model, 8 * MB, 8, 16, 128);
    for (unsigned r = 0; r < dn.rows; ++r) {
        std::printf("  row %u: ", r);
        for (unsigned c = 0; c < dn.cols; ++c)
            std::printf("%3u", dn.bank(r, c).latency);
        std::printf("   avg %.1f\n", dn.avgLatencyOfMB(r));
    }

    std::printf("\nBlock-transfer wire energy is superlinear in route "
                "distance (E = %.3f * d^%.1f nJ): 1 mm -> %.2f nJ, "
                "10 mm -> %.2f nJ.\n",
                tech.wire_block_nj_coeff, tech.wire_energy_exponent,
                tech.wireBlockNJ(1.0), tech.wireBlockNJ(10.0));
    return 0;
}
