# Empty dependencies file for bench_table2_energies.
# This may be replaced when dependencies are built.
