file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_energies.dir/bench_table2_energies.cc.o"
  "CMakeFiles/bench_table2_energies.dir/bench_table2_energies.cc.o.d"
  "bench_table2_energies"
  "bench_table2_energies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_energies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
