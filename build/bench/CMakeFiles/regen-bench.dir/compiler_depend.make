# Empty custom commands generated dependencies file for regen-bench.
# This may be replaced when dependencies are built.
