file(REMOVE_RECURSE
  "CMakeFiles/regen-bench"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/regen-bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
