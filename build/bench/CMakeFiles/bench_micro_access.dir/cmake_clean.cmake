file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_access.dir/bench_micro_access.cc.o"
  "CMakeFiles/bench_micro_access.dir/bench_micro_access.cc.o.d"
  "bench_micro_access"
  "bench_micro_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
