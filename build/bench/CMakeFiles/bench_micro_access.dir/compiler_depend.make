# Empty compiler generated dependencies file for bench_micro_access.
# This may be replaced when dependencies are built.
