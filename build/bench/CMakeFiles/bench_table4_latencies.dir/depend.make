# Empty dependencies file for bench_table4_latencies.
# This may be replaced when dependencies are built.
