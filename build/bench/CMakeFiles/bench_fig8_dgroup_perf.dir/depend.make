# Empty dependencies file for bench_fig8_dgroup_perf.
# This may be replaced when dependencies are built.
