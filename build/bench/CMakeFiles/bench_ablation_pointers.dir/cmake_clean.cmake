file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pointers.dir/bench_ablation_pointers.cc.o"
  "CMakeFiles/bench_ablation_pointers.dir/bench_ablation_pointers.cc.o.d"
  "bench_ablation_pointers"
  "bench_ablation_pointers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pointers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
