# Empty compiler generated dependencies file for bench_ablation_pointers.
# This may be replaced when dependencies are built.
