# Empty dependencies file for bench_fig5_policies.
# This may be replaced when dependencies are built.
