file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_snuca.dir/bench_ablation_snuca.cc.o"
  "CMakeFiles/bench_ablation_snuca.dir/bench_ablation_snuca.cc.o.d"
  "bench_ablation_snuca"
  "bench_ablation_snuca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_snuca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
