# Empty compiler generated dependencies file for bench_ablation_snuca.
# This may be replaced when dependencies are built.
