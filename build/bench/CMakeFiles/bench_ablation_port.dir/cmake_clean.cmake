file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_port.dir/bench_ablation_port.cc.o"
  "CMakeFiles/bench_ablation_port.dir/bench_ablation_port.cc.o.d"
  "bench_ablation_port"
  "bench_ablation_port.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_port.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
