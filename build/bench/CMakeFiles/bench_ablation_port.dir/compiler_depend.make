# Empty compiler generated dependencies file for bench_ablation_port.
# This may be replaced when dependencies are built.
