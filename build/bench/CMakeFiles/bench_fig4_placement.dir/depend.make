# Empty dependencies file for bench_fig4_placement.
# This may be replaced when dependencies are built.
