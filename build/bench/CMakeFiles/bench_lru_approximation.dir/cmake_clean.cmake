file(REMOVE_RECURSE
  "CMakeFiles/bench_lru_approximation.dir/bench_lru_approximation.cc.o"
  "CMakeFiles/bench_lru_approximation.dir/bench_lru_approximation.cc.o.d"
  "bench_lru_approximation"
  "bench_lru_approximation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lru_approximation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
