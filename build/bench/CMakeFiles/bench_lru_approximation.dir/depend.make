# Empty dependencies file for bench_lru_approximation.
# This may be replaced when dependencies are built.
