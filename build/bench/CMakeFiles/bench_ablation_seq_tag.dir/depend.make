# Empty dependencies file for bench_ablation_seq_tag.
# This may be replaced when dependencies are built.
