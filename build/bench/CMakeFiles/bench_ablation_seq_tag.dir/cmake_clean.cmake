file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_seq_tag.dir/bench_ablation_seq_tag.cc.o"
  "CMakeFiles/bench_ablation_seq_tag.dir/bench_ablation_seq_tag.cc.o.d"
  "bench_ablation_seq_tag"
  "bench_ablation_seq_tag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_seq_tag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
