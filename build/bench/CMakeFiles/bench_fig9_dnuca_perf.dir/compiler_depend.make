# Empty compiler generated dependencies file for bench_fig9_dnuca_perf.
# This may be replaced when dependencies are built.
