file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_dgroups.dir/bench_fig7_dgroups.cc.o"
  "CMakeFiles/bench_fig7_dgroups.dir/bench_fig7_dgroups.cc.o.d"
  "bench_fig7_dgroups"
  "bench_fig7_dgroups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_dgroups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
