file(REMOVE_RECURSE
  "libnurapid_timing.a"
)
