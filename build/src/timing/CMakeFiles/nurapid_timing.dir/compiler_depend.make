# Empty compiler generated dependencies file for nurapid_timing.
# This may be replaced when dependencies are built.
