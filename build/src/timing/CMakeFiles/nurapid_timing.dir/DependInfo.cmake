
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timing/floorplan.cc" "src/timing/CMakeFiles/nurapid_timing.dir/floorplan.cc.o" "gcc" "src/timing/CMakeFiles/nurapid_timing.dir/floorplan.cc.o.d"
  "/root/repo/src/timing/geometry.cc" "src/timing/CMakeFiles/nurapid_timing.dir/geometry.cc.o" "gcc" "src/timing/CMakeFiles/nurapid_timing.dir/geometry.cc.o.d"
  "/root/repo/src/timing/latency_tables.cc" "src/timing/CMakeFiles/nurapid_timing.dir/latency_tables.cc.o" "gcc" "src/timing/CMakeFiles/nurapid_timing.dir/latency_tables.cc.o.d"
  "/root/repo/src/timing/tech.cc" "src/timing/CMakeFiles/nurapid_timing.dir/tech.cc.o" "gcc" "src/timing/CMakeFiles/nurapid_timing.dir/tech.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nurapid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
