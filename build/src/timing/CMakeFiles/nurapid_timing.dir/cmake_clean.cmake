file(REMOVE_RECURSE
  "CMakeFiles/nurapid_timing.dir/floorplan.cc.o"
  "CMakeFiles/nurapid_timing.dir/floorplan.cc.o.d"
  "CMakeFiles/nurapid_timing.dir/geometry.cc.o"
  "CMakeFiles/nurapid_timing.dir/geometry.cc.o.d"
  "CMakeFiles/nurapid_timing.dir/latency_tables.cc.o"
  "CMakeFiles/nurapid_timing.dir/latency_tables.cc.o.d"
  "CMakeFiles/nurapid_timing.dir/tech.cc.o"
  "CMakeFiles/nurapid_timing.dir/tech.cc.o.d"
  "libnurapid_timing.a"
  "libnurapid_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nurapid_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
