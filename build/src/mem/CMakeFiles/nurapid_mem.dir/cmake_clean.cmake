file(REMOVE_RECURSE
  "CMakeFiles/nurapid_mem.dir/conventional_l2l3.cc.o"
  "CMakeFiles/nurapid_mem.dir/conventional_l2l3.cc.o.d"
  "CMakeFiles/nurapid_mem.dir/main_memory.cc.o"
  "CMakeFiles/nurapid_mem.dir/main_memory.cc.o.d"
  "CMakeFiles/nurapid_mem.dir/mshr.cc.o"
  "CMakeFiles/nurapid_mem.dir/mshr.cc.o.d"
  "CMakeFiles/nurapid_mem.dir/replacement.cc.o"
  "CMakeFiles/nurapid_mem.dir/replacement.cc.o.d"
  "CMakeFiles/nurapid_mem.dir/set_assoc_cache.cc.o"
  "CMakeFiles/nurapid_mem.dir/set_assoc_cache.cc.o.d"
  "libnurapid_mem.a"
  "libnurapid_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nurapid_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
