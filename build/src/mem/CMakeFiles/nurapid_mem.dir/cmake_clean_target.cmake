file(REMOVE_RECURSE
  "libnurapid_mem.a"
)
