# Empty dependencies file for nurapid_mem.
# This may be replaced when dependencies are built.
