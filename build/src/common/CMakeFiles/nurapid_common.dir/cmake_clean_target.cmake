file(REMOVE_RECURSE
  "libnurapid_common.a"
)
