# Empty compiler generated dependencies file for nurapid_common.
# This may be replaced when dependencies are built.
