file(REMOVE_RECURSE
  "CMakeFiles/nurapid_common.dir/histogram.cc.o"
  "CMakeFiles/nurapid_common.dir/histogram.cc.o.d"
  "CMakeFiles/nurapid_common.dir/json.cc.o"
  "CMakeFiles/nurapid_common.dir/json.cc.o.d"
  "CMakeFiles/nurapid_common.dir/logging.cc.o"
  "CMakeFiles/nurapid_common.dir/logging.cc.o.d"
  "CMakeFiles/nurapid_common.dir/stats.cc.o"
  "CMakeFiles/nurapid_common.dir/stats.cc.o.d"
  "CMakeFiles/nurapid_common.dir/table.cc.o"
  "CMakeFiles/nurapid_common.dir/table.cc.o.d"
  "libnurapid_common.a"
  "libnurapid_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nurapid_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
