file(REMOVE_RECURSE
  "libnurapid_energy.a"
)
