# Empty compiler generated dependencies file for nurapid_energy.
# This may be replaced when dependencies are built.
