file(REMOVE_RECURSE
  "CMakeFiles/nurapid_energy.dir/energy_model.cc.o"
  "CMakeFiles/nurapid_energy.dir/energy_model.cc.o.d"
  "libnurapid_energy.a"
  "libnurapid_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nurapid_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
