# Empty compiler generated dependencies file for nurapid_sim_cli.
# This may be replaced when dependencies are built.
