file(REMOVE_RECURSE
  "CMakeFiles/nurapid_sim_cli.dir/nurapid_sim.cc.o"
  "CMakeFiles/nurapid_sim_cli.dir/nurapid_sim.cc.o.d"
  "nurapid_sim"
  "nurapid_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nurapid_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
