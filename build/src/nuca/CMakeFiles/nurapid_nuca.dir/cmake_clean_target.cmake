file(REMOVE_RECURSE
  "libnurapid_nuca.a"
)
