file(REMOVE_RECURSE
  "CMakeFiles/nurapid_nuca.dir/dnuca.cc.o"
  "CMakeFiles/nurapid_nuca.dir/dnuca.cc.o.d"
  "CMakeFiles/nurapid_nuca.dir/snuca.cc.o"
  "CMakeFiles/nurapid_nuca.dir/snuca.cc.o.d"
  "libnurapid_nuca.a"
  "libnurapid_nuca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nurapid_nuca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
