# Empty compiler generated dependencies file for nurapid_nuca.
# This may be replaced when dependencies are built.
