
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nuca/dnuca.cc" "src/nuca/CMakeFiles/nurapid_nuca.dir/dnuca.cc.o" "gcc" "src/nuca/CMakeFiles/nurapid_nuca.dir/dnuca.cc.o.d"
  "/root/repo/src/nuca/snuca.cc" "src/nuca/CMakeFiles/nurapid_nuca.dir/snuca.cc.o" "gcc" "src/nuca/CMakeFiles/nurapid_nuca.dir/snuca.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/nurapid_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/nurapid_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nurapid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
