file(REMOVE_RECURSE
  "CMakeFiles/nurapid_sim.dir/config.cc.o"
  "CMakeFiles/nurapid_sim.dir/config.cc.o.d"
  "CMakeFiles/nurapid_sim.dir/runner/run_cache.cc.o"
  "CMakeFiles/nurapid_sim.dir/runner/run_cache.cc.o.d"
  "CMakeFiles/nurapid_sim.dir/runner/run_engine.cc.o"
  "CMakeFiles/nurapid_sim.dir/runner/run_engine.cc.o.d"
  "CMakeFiles/nurapid_sim.dir/system.cc.o"
  "CMakeFiles/nurapid_sim.dir/system.cc.o.d"
  "libnurapid_sim.a"
  "libnurapid_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nurapid_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
