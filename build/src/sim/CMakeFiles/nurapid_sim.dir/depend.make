# Empty dependencies file for nurapid_sim.
# This may be replaced when dependencies are built.
