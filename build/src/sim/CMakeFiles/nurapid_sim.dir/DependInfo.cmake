
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/config.cc" "src/sim/CMakeFiles/nurapid_sim.dir/config.cc.o" "gcc" "src/sim/CMakeFiles/nurapid_sim.dir/config.cc.o.d"
  "/root/repo/src/sim/runner/run_cache.cc" "src/sim/CMakeFiles/nurapid_sim.dir/runner/run_cache.cc.o" "gcc" "src/sim/CMakeFiles/nurapid_sim.dir/runner/run_cache.cc.o.d"
  "/root/repo/src/sim/runner/run_engine.cc" "src/sim/CMakeFiles/nurapid_sim.dir/runner/run_engine.cc.o" "gcc" "src/sim/CMakeFiles/nurapid_sim.dir/runner/run_engine.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/sim/CMakeFiles/nurapid_sim.dir/system.cc.o" "gcc" "src/sim/CMakeFiles/nurapid_sim.dir/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/nurapid_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/nurapid_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/nurapid_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/nuca/CMakeFiles/nurapid_nuca.dir/DependInfo.cmake"
  "/root/repo/build/src/nurapid/CMakeFiles/nurapid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nurapid_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/nurapid_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nurapid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
