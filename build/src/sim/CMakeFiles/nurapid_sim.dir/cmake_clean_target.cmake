file(REMOVE_RECURSE
  "libnurapid_sim.a"
)
