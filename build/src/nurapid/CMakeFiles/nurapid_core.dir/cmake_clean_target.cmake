file(REMOVE_RECURSE
  "libnurapid_core.a"
)
