# Empty dependencies file for nurapid_core.
# This may be replaced when dependencies are built.
