file(REMOVE_RECURSE
  "CMakeFiles/nurapid_core.dir/coupled_nuca.cc.o"
  "CMakeFiles/nurapid_core.dir/coupled_nuca.cc.o.d"
  "CMakeFiles/nurapid_core.dir/data_array.cc.o"
  "CMakeFiles/nurapid_core.dir/data_array.cc.o.d"
  "CMakeFiles/nurapid_core.dir/nurapid_cache.cc.o"
  "CMakeFiles/nurapid_core.dir/nurapid_cache.cc.o.d"
  "CMakeFiles/nurapid_core.dir/pointer_codec.cc.o"
  "CMakeFiles/nurapid_core.dir/pointer_codec.cc.o.d"
  "CMakeFiles/nurapid_core.dir/tag_array.cc.o"
  "CMakeFiles/nurapid_core.dir/tag_array.cc.o.d"
  "libnurapid_core.a"
  "libnurapid_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nurapid_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
