
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nurapid/coupled_nuca.cc" "src/nurapid/CMakeFiles/nurapid_core.dir/coupled_nuca.cc.o" "gcc" "src/nurapid/CMakeFiles/nurapid_core.dir/coupled_nuca.cc.o.d"
  "/root/repo/src/nurapid/data_array.cc" "src/nurapid/CMakeFiles/nurapid_core.dir/data_array.cc.o" "gcc" "src/nurapid/CMakeFiles/nurapid_core.dir/data_array.cc.o.d"
  "/root/repo/src/nurapid/nurapid_cache.cc" "src/nurapid/CMakeFiles/nurapid_core.dir/nurapid_cache.cc.o" "gcc" "src/nurapid/CMakeFiles/nurapid_core.dir/nurapid_cache.cc.o.d"
  "/root/repo/src/nurapid/pointer_codec.cc" "src/nurapid/CMakeFiles/nurapid_core.dir/pointer_codec.cc.o" "gcc" "src/nurapid/CMakeFiles/nurapid_core.dir/pointer_codec.cc.o.d"
  "/root/repo/src/nurapid/tag_array.cc" "src/nurapid/CMakeFiles/nurapid_core.dir/tag_array.cc.o" "gcc" "src/nurapid/CMakeFiles/nurapid_core.dir/tag_array.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/nurapid_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/nurapid_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nurapid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
