file(REMOVE_RECURSE
  "libnurapid_trace.a"
)
