file(REMOVE_RECURSE
  "CMakeFiles/nurapid_trace.dir/profiles.cc.o"
  "CMakeFiles/nurapid_trace.dir/profiles.cc.o.d"
  "CMakeFiles/nurapid_trace.dir/synthetic.cc.o"
  "CMakeFiles/nurapid_trace.dir/synthetic.cc.o.d"
  "CMakeFiles/nurapid_trace.dir/trace_file.cc.o"
  "CMakeFiles/nurapid_trace.dir/trace_file.cc.o.d"
  "libnurapid_trace.a"
  "libnurapid_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nurapid_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
