# Empty compiler generated dependencies file for nurapid_trace.
# This may be replaced when dependencies are built.
