file(REMOVE_RECURSE
  "CMakeFiles/nurapid_cpu.dir/branch_predictor.cc.o"
  "CMakeFiles/nurapid_cpu.dir/branch_predictor.cc.o.d"
  "CMakeFiles/nurapid_cpu.dir/ooo_core.cc.o"
  "CMakeFiles/nurapid_cpu.dir/ooo_core.cc.o.d"
  "libnurapid_cpu.a"
  "libnurapid_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nurapid_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
