file(REMOVE_RECURSE
  "libnurapid_cpu.a"
)
