# Empty compiler generated dependencies file for nurapid_cpu.
# This may be replaced when dependencies are built.
