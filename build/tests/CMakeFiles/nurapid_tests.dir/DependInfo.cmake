
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bitops.cc" "tests/CMakeFiles/nurapid_tests.dir/test_bitops.cc.o" "gcc" "tests/CMakeFiles/nurapid_tests.dir/test_bitops.cc.o.d"
  "/root/repo/tests/test_branch_predictor.cc" "tests/CMakeFiles/nurapid_tests.dir/test_branch_predictor.cc.o" "gcc" "tests/CMakeFiles/nurapid_tests.dir/test_branch_predictor.cc.o.d"
  "/root/repo/tests/test_conventional.cc" "tests/CMakeFiles/nurapid_tests.dir/test_conventional.cc.o" "gcc" "tests/CMakeFiles/nurapid_tests.dir/test_conventional.cc.o.d"
  "/root/repo/tests/test_coupled.cc" "tests/CMakeFiles/nurapid_tests.dir/test_coupled.cc.o" "gcc" "tests/CMakeFiles/nurapid_tests.dir/test_coupled.cc.o.d"
  "/root/repo/tests/test_data_array.cc" "tests/CMakeFiles/nurapid_tests.dir/test_data_array.cc.o" "gcc" "tests/CMakeFiles/nurapid_tests.dir/test_data_array.cc.o.d"
  "/root/repo/tests/test_differential.cc" "tests/CMakeFiles/nurapid_tests.dir/test_differential.cc.o" "gcc" "tests/CMakeFiles/nurapid_tests.dir/test_differential.cc.o.d"
  "/root/repo/tests/test_dnuca.cc" "tests/CMakeFiles/nurapid_tests.dir/test_dnuca.cc.o" "gcc" "tests/CMakeFiles/nurapid_tests.dir/test_dnuca.cc.o.d"
  "/root/repo/tests/test_json.cc" "tests/CMakeFiles/nurapid_tests.dir/test_json.cc.o" "gcc" "tests/CMakeFiles/nurapid_tests.dir/test_json.cc.o.d"
  "/root/repo/tests/test_mshr_memory.cc" "tests/CMakeFiles/nurapid_tests.dir/test_mshr_memory.cc.o" "gcc" "tests/CMakeFiles/nurapid_tests.dir/test_mshr_memory.cc.o.d"
  "/root/repo/tests/test_nurapid.cc" "tests/CMakeFiles/nurapid_tests.dir/test_nurapid.cc.o" "gcc" "tests/CMakeFiles/nurapid_tests.dir/test_nurapid.cc.o.d"
  "/root/repo/tests/test_ooo_core.cc" "tests/CMakeFiles/nurapid_tests.dir/test_ooo_core.cc.o" "gcc" "tests/CMakeFiles/nurapid_tests.dir/test_ooo_core.cc.o.d"
  "/root/repo/tests/test_pointer_codec.cc" "tests/CMakeFiles/nurapid_tests.dir/test_pointer_codec.cc.o" "gcc" "tests/CMakeFiles/nurapid_tests.dir/test_pointer_codec.cc.o.d"
  "/root/repo/tests/test_replacement.cc" "tests/CMakeFiles/nurapid_tests.dir/test_replacement.cc.o" "gcc" "tests/CMakeFiles/nurapid_tests.dir/test_replacement.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/nurapid_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/nurapid_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_runner.cc" "tests/CMakeFiles/nurapid_tests.dir/test_runner.cc.o" "gcc" "tests/CMakeFiles/nurapid_tests.dir/test_runner.cc.o.d"
  "/root/repo/tests/test_set_assoc_cache.cc" "tests/CMakeFiles/nurapid_tests.dir/test_set_assoc_cache.cc.o" "gcc" "tests/CMakeFiles/nurapid_tests.dir/test_set_assoc_cache.cc.o.d"
  "/root/repo/tests/test_snuca.cc" "tests/CMakeFiles/nurapid_tests.dir/test_snuca.cc.o" "gcc" "tests/CMakeFiles/nurapid_tests.dir/test_snuca.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/nurapid_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/nurapid_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/nurapid_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/nurapid_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_tag_array.cc" "tests/CMakeFiles/nurapid_tests.dir/test_tag_array.cc.o" "gcc" "tests/CMakeFiles/nurapid_tests.dir/test_tag_array.cc.o.d"
  "/root/repo/tests/test_timing.cc" "tests/CMakeFiles/nurapid_tests.dir/test_timing.cc.o" "gcc" "tests/CMakeFiles/nurapid_tests.dir/test_timing.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/nurapid_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/nurapid_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_trace_file.cc" "tests/CMakeFiles/nurapid_tests.dir/test_trace_file.cc.o" "gcc" "tests/CMakeFiles/nurapid_tests.dir/test_trace_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nurapid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/nurapid_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/nurapid_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/nurapid_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/nurapid/CMakeFiles/nurapid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nuca/CMakeFiles/nurapid_nuca.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nurapid_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/nurapid_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nurapid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
