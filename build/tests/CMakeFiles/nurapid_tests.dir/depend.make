# Empty dependencies file for nurapid_tests.
# This may be replaced when dependencies are built.
