file(REMOVE_RECURSE
  "CMakeFiles/floorplan_report.dir/floorplan_report.cpp.o"
  "CMakeFiles/floorplan_report.dir/floorplan_report.cpp.o.d"
  "floorplan_report"
  "floorplan_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floorplan_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
