# Empty dependencies file for floorplan_report.
# This may be replaced when dependencies are built.
