# Empty compiler generated dependencies file for hierarchy_compare.
# This may be replaced when dependencies are built.
