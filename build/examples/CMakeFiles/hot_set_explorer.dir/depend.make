# Empty dependencies file for hot_set_explorer.
# This may be replaced when dependencies are built.
