file(REMOVE_RECURSE
  "CMakeFiles/hot_set_explorer.dir/hot_set_explorer.cpp.o"
  "CMakeFiles/hot_set_explorer.dir/hot_set_explorer.cpp.o.d"
  "hot_set_explorer"
  "hot_set_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_set_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
