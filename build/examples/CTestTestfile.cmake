# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hot_set_explorer "/root/repo/build/examples/hot_set_explorer" "6")
set_tests_properties(example_hot_set_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_floorplan_report "/root/repo/build/examples/floorplan_report")
set_tests_properties(example_floorplan_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hierarchy_compare "/root/repo/build/examples/hierarchy_compare" "gzip")
set_tests_properties(example_hierarchy_compare PROPERTIES  ENVIRONMENT "NURAPID_SIM_SCALE=0.02" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_policy_playground "/root/repo/build/examples/policy_playground" "gzip")
set_tests_properties(example_policy_playground PROPERTIES  ENVIRONMENT "NURAPID_SIM_SCALE=0.02" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
