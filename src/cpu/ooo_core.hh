/**
 * @file
 * Trace-driven out-of-order core timing model (Table 1's machine:
 * 8-wide, 64-entry RUU, 32-entry LSQ, 8 MSHRs, 9-cycle mispredict
 * penalty).
 *
 * The model dispatches the trace at issue-width rate and enforces the
 * classic ROB-occupancy bound on memory-level parallelism: an L1 miss
 * issued at instruction i blocks dispatch at instruction i + RUU until
 * its fill returns, so short L2 hits hide under the window while
 * memory-latency misses stall the core — exactly the sensitivity the
 * paper's L2 experiments need.
 */

#ifndef NURAPID_CPU_OOO_CORE_HH
#define NURAPID_CPU_OOO_CORE_HH

#include <cstdint>
#include <deque>

#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/branch_predictor.hh"
#include "mem/lower_memory.hh"
#include "mem/mshr.hh"
#include "mem/set_assoc_cache.hh"
#include "trace/record.hh"

namespace nurapid {

struct CoreParams
{
    std::uint32_t issue_width = 8;

    /**
     * Effective dispatch cost per instruction in cycles. The floor is
     * 1/issue_width; workloads raise it to their intrinsic (dependency
     * and functional-unit limited) CPI so base IPCs match Table 3.
     */
    double dispatch_cpi = 0.125;
    std::uint32_t ruu_entries = 64;
    std::uint32_t lsq_entries = 32;
    Cycles mispredict_penalty = 9;
    Cycles l1_latency = 3;
    std::uint32_t mshrs = 8;

    /**
     * MSHR tracking granularity. The default matches the L1 block
     * size (32 B), as in the paper's SimpleScalar substrate: misses to
     * different sectors of one 128 B L2 block are separate L2 accesses
     * (this burst traffic is part of what loads D-NUCA's banks).
     * Setting it to the L2 block size models sector-merging MSHRs.
     */
    std::uint32_t mshr_block_bytes = 32;

    /**
     * Cycles of independent work the scheduler finds while a
     * latency-critical load is outstanding. Latency beyond this slack
     * stalls dispatch (the load's consumers are next in line).
     */
    Cycles consumer_slack = 4;
};

class OooCore
{
  public:
    OooCore(const CoreParams &params, SetAssocCache &l1i,
            SetAssocCache &l1d, LowerMemory &lower);

    /** Runs @p records trace records through the machine. */
    void run(TraceSource &trace, std::uint64_t records);

    /** Cycles elapsed since the last resetStats() (incl. drain). */
    std::uint64_t cycles() const;
    std::uint64_t instructions() const { return insts - instBase; }
    double ipc() const;

    BranchPredictor &branchPredictor() { return bpred; }
    MshrFile &mshrFile() { return mshrs; }
    StatGroup &stats() { return statGroup; }

    std::uint64_t l1dAccesses() const { return statL1DAccesses.value(); }
    std::uint64_t l1iAccesses() const { return statL1IAccesses.value(); }

    /** Zeroes timing/statistics state but keeps caches warm. */
    void resetStats();

  private:
    struct Pending
    {
        std::uint64_t inst = 0;  //!< instruction index at issue
        Cycle completion = 0;
    };

    void enforceWindow();
    Cycles missLatency(Addr addr, AccessType type, Cycle now);

    CoreParams p;
    SetAssocCache &l1i;
    SetAssocCache &l1d;
    LowerMemory &lower;
    BranchPredictor bpred;
    MshrFile mshrs;

    double dispatchCpi = 0.125;
    double cycleF = 0.0;        //!< absolute dispatch clock (never reset)
    std::uint64_t insts = 0;    //!< absolute instruction count
    std::uint64_t instIndex = 0;
    Cycle lastCompletion = 0;
    Cycle lastMissCompletion = 0;  //!< last deep load's data-ready time
    Cycle cycleBase = 0;        //!< measurement-phase baselines
    std::uint64_t instBase = 0;
    std::deque<Pending> pendingLoads;
    std::deque<Cycle> pendingStores;

    StatGroup statGroup;
    Counter statL1DAccesses;
    Counter statL1IAccesses;
    Counter statL1DMisses;
    Counter statL1IMisses;
    Counter statL2Demand;
    Counter statL2DemandHits;
    Counter statRobStalls;
    Counter statLsqStalls;
    Counter statDepStalls;
    Counter statCriticalStalls;
};

} // namespace nurapid

#endif // NURAPID_CPU_OOO_CORE_HH
