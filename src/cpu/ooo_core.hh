/**
 * @file
 * Trace-driven out-of-order core timing model (Table 1's machine:
 * 8-wide, 64-entry RUU, 32-entry LSQ, 8 MSHRs, 9-cycle mispredict
 * penalty).
 *
 * The model dispatches the trace at issue-width rate and enforces the
 * classic ROB-occupancy bound on memory-level parallelism: an L1 miss
 * issued at instruction i blocks dispatch at instruction i + RUU until
 * its fill returns, so short L2 hits hide under the window while
 * memory-latency misses stall the core — exactly the sensitivity the
 * paper's L2 experiments need.
 *
 * The per-reference loop is a template over the lower-memory and trace
 * types (runTyped). The System instantiates it per concrete (final)
 * cache organization with a non-virtual packed-trace cursor, so the
 * whole access chain — trace replay, L1 lookup and replacement, the
 * organization's access() — inlines into one loop body with no virtual
 * dispatch. run(TraceSource&) keeps the fully polymorphic path for
 * tools and tests; both instantiate the same body, so they are
 * bit-identical by construction.
 */

#ifndef NURAPID_CPU_OOO_CORE_HH
#define NURAPID_CPU_OOO_CORE_HH

#include <algorithm>
#include <cstdint>
#include <cstdlib>

#include "common/fixed_ring.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/branch_predictor.hh"
#include "mem/lower_memory.hh"
#include "mem/mshr.hh"
#include "mem/set_assoc_cache.hh"
#include "sim/obs/obs.hh"
#include "sim/profile/profile.hh"
#include "trace/distilled_trace.hh"
#include "trace/record.hh"

namespace nurapid {

class GangReplayer;

/**
 * Stream-lookahead prefetch distance for the distilled replay loops:
 * how many events ahead of the current one to hint at the organization
 * (LowerMemory::prefetchHotLines). 0 disables. NURAPID_PREFETCH=0
 * turns it off; NURAPID_PREFETCH_DIST overrides the distance (default
 * 8, clamped to [1, 256]). Read per replay call, not cached, so tests
 * can toggle it mid-process. The hints never change simulated state,
 * so on/off is bit-identical by construction.
 */
inline std::uint32_t
streamPrefetchDistance()
{
    const char *const on = std::getenv("NURAPID_PREFETCH");
    if (on && on[0] == '0' && on[1] == '\0')
        return 0;
    std::uint32_t dist = 8;
    if (const char *const d = std::getenv("NURAPID_PREFETCH_DIST")) {
        char *end = nullptr;
        const long v = std::strtol(d, &end, 10);
        if (end == d || *end != '\0' || v < 1 || v > 256) {
            warnOnce("ignoring invalid NURAPID_PREFETCH_DIST '%s'", d);
        } else {
            dist = static_cast<std::uint32_t>(v);
        }
    }
    return dist;
}

struct CoreParams
{
    std::uint32_t issue_width = 8;

    /**
     * Effective dispatch cost per instruction in cycles. The floor is
     * 1/issue_width; workloads raise it to their intrinsic (dependency
     * and functional-unit limited) CPI so base IPCs match Table 3.
     */
    double dispatch_cpi = 0.125;
    std::uint32_t ruu_entries = 64;
    std::uint32_t lsq_entries = 32;
    Cycles mispredict_penalty = 9;
    Cycles l1_latency = 3;
    std::uint32_t mshrs = 8;

    /**
     * MSHR tracking granularity. The default matches the L1 block
     * size (32 B), as in the paper's SimpleScalar substrate: misses to
     * different sectors of one 128 B L2 block are separate L2 accesses
     * (this burst traffic is part of what loads D-NUCA's banks).
     * Setting it to the L2 block size models sector-merging MSHRs.
     */
    std::uint32_t mshr_block_bytes = 32;

    /**
     * Cycles of independent work the scheduler finds while a
     * latency-critical load is outstanding. Latency beyond this slack
     * stalls dispatch (the load's consumers are next in line).
     */
    Cycles consumer_slack = 4;
};

class OooCore
{
  public:
    OooCore(const CoreParams &params, SetAssocCache &l1i,
            SetAssocCache &l1d, LowerMemory &lower);

    /** Runs @p records trace records through the machine (polymorphic
     *  trace + lower memory; tools/tests). */
    void run(TraceSource &trace, std::uint64_t records);

    /**
     * Devirtualized equivalent: @p lower_mem must be the same object
     * the core was constructed against, passed as its concrete final
     * type; @p trace is any type with bool next(TraceRecord&). The
     * loop body is shared with run(), so results are bit-identical.
     */
    template <class LowerT, class TraceT>
    void runTyped(LowerT &lower_mem, TraceT &trace,
                  std::uint64_t records);

    /**
     * Replays @p records records of a distilled stream (must have been
     * distilled against this core's L1 organizations and predictor
     * configuration — System keys the stream by them). Only L2-relevant
     * events touch the machine; the L1 tag walk and predictor tables
     * are skipped entirely, with their counter effects folded in from
     * the event deltas. The replayed segment must end on one of the
     * stream's cuts so folded counters are exact at the stop record.
     * Bit-identical to runTyped over the same records (asserted by
     * tests/test_distilled_trace.cc); @p cur advances past the segment.
     */
    template <class LowerT>
    void runDistilled(LowerT &lower_mem, DistilledTrace::Cursor &cur,
                      std::uint64_t records);

    const CoreParams &params() const { return p; }

    /** Cycles elapsed since the last resetStats() (incl. drain). */
    std::uint64_t cycles() const;
    std::uint64_t instructions() const { return insts - instBase; }
    double ipc() const;

    BranchPredictor &branchPredictor() { return bpred; }
    MshrFile &mshrFile() { return mshrs; }
    StatGroup &stats() { return statGroup; }

    std::uint64_t l1dAccesses() const { return statL1DAccesses.value(); }
    std::uint64_t l1iAccesses() const { return statL1IAccesses.value(); }

    /** Zeroes timing/statistics state but keeps caches warm. */
    void resetStats();

    /**
     * Attaches the flight-recorder sink (for MSHR-stall events) and
     * the interval recorder (ticked once per retired reference in
     * runTyped and runDistilled alike; epoch boundaries land on the
     * same record index in both paths). Either may be null.
     *
     * Because the tick is per retired reference, each epoch snapshot
     * samples the organization's cumulative EnergyBreakdown at a
     * reference boundary — never mid-access — so the per-epoch energy
     * timeline telescopes exactly to the end-of-run accumulators on
     * every replay path (live, distilled, gang).
     */
    void
    attachObservability(EventSink *sink, IntervalRecorder *recorder)
    {
        obsSink = sink;
        obsRec = recorder;
    }

  private:
    /** The gang replayer (sim/gang.hh) drives many cores through one
     *  shared distilled-stream traversal; it checks the lanes' private
     *  dispatch state when deciding a group's eligibility. */
    friend class GangReplayer;

    struct Pending
    {
        std::uint64_t inst = 0;  //!< instruction index at issue
        Cycle completion = 0;
    };

    /** Retires completed loads; stalls dispatch when the oldest
     *  pending load is a full RUU behind the dispatch point. Inline:
     *  runs once per record, usually hitting the empty/young-front
     *  early exit. */
    void
    enforceWindow()
    {
        auto now = static_cast<Cycle>(cycleF);
        while (!pendingLoads.empty()) {
            const Pending &front = pendingLoads.front();
            if (front.completion <= now) {
                pendingLoads.pop_front();
                continue;
            }
            if (instIndex - front.inst >= p.ruu_entries) {
                cycleF = std::max(cycleF,
                                  static_cast<double>(front.completion));
                now = static_cast<Cycle>(cycleF);
                pendingLoads.pop_front();
                ++statRobStalls;
                continue;
            }
            break;
        }
    }

    template <class LowerT>
    Cycles missLatency(LowerT &lower_mem, Addr addr, AccessType type,
                       Cycle now);

    /** Everything after an L1 miss is detected: miss counters, the L2
     *  access, completion bookkeeping, and the LSQ/window/dependence
     *  side effects. Shared verbatim between runTyped and runDistilled
     *  so the two paths cannot drift. */
    template <class LowerT>
    void missPath(LowerT &lower_mem, Addr addr, bool store, bool ifetch,
                  bool latency_critical, Cycle now);

    CoreParams p;
    SetAssocCache &l1i;
    SetAssocCache &l1d;
    LowerMemory &lower;
    BranchPredictor bpred;
    MshrFile mshrs;

    double dispatchCpi = 0.125;
    double cycleF = 0.0;        //!< absolute dispatch clock (never reset)
    std::uint64_t insts = 0;    //!< absolute instruction count
    std::uint64_t instIndex = 0;
    Cycle lastCompletion = 0;
    Cycle lastMissCompletion = 0;  //!< last deep load's data-ready time
    Cycle cycleBase = 0;        //!< measurement-phase baselines
    std::uint64_t instBase = 0;
    /** In-flight queues are structurally bounded — loads by RUU
     *  occupancy (one in-window miss per instruction slot), stores by
     *  the LSQ drain rule — so they live in fixed rings that panic on
     *  overflow instead of deque segments that allocate mid-loop. */
    FixedRing<Pending> pendingLoads;
    FixedRing<Cycle> pendingStores;

    /** Flight-recorder hooks; null (the common case) when detached. */
    EventSink *obsSink = nullptr;
    IntervalRecorder *obsRec = nullptr;

    StatGroup statGroup;
    Counter statL1DAccesses;
    Counter statL1IAccesses;
    Counter statL1DMisses;
    Counter statL1IMisses;
    Counter statL2Demand;
    Counter statL2DemandHits;
    Counter statRobStalls;
    Counter statLsqStalls;
    Counter statDepStalls;
    Counter statCriticalStalls;
};

template <class LowerT>
Cycles
OooCore::missLatency(LowerT &lower_mem, Addr addr, AccessType type,
                     Cycle now)
{
    const Addr block = blockAlign(addr, p.mshr_block_bytes);
    mshrs.retire(now);

    if (mshrs.tracks(block)) {
        mshrs.noteMerge();
        const Cycle ready = mshrs.readyAt(block);
        return ready > now ? static_cast<Cycles>(ready - now) : 0;
    }

    if (mshrs.full()) {
        // Structural stall: wait for the oldest fill.
        const Cycle ready = mshrs.nextRetirement();
        if (obsSink) [[unlikely]] {
            obsSink->mshrStall(
                now, block,
                ready > now ? static_cast<Cycles>(ready - now) : 0);
        }
        cycleF = std::max(cycleF, static_cast<double>(ready));
        now = static_cast<Cycle>(cycleF);
        mshrs.retire(now);
        mshrs.noteFullStall();
    }

    ++statL2Demand;
    NURAPID_PROFILE_SCOPE(L2Org);
    const LowerMemory::Result res = lower_mem.access(block, type, now);
    if (res.hit)
        ++statL2DemandHits;
    const Cycles total = p.l1_latency + res.latency;
    mshrs.allocate(block, now + total);
    return total;
}

template <class LowerT>
void
OooCore::missPath(LowerT &lower_mem, Addr addr, bool store, bool ifetch,
                  bool latency_critical, Cycle now)
{
    if (ifetch)
        ++statL1IMisses;
    else
        ++statL1DMisses;

    const AccessType type = store ? AccessType::Write : AccessType::Read;
    const Cycles lat = missLatency(lower_mem, addr, type, now);
    const Cycle completion = now + lat;
    lastCompletion = std::max(lastCompletion, completion);

    // Latency-critical loads feed consumers immediately: only a
    // small slack of independent work hides their latency.
    if (latency_critical && !store && !ifetch &&
        completion > now + p.consumer_slack) {
        const double resume =
            static_cast<double>(completion - p.consumer_slack);
        if (resume > cycleF) {
            cycleF = resume;
            ++statCriticalStalls;
        }
    }

    if (store) {
        // Stores retire through the LSQ without blocking dispatch
        // unless the queue fills.
        pendingStores.push_back(completion);
        while (!pendingStores.empty() &&
               pendingStores.front() <= static_cast<Cycle>(cycleF)) {
            pendingStores.pop_front();
        }
        if (pendingStores.size() > p.lsq_entries) {
            cycleF = std::max(
                cycleF, static_cast<double>(pendingStores.front()));
            pendingStores.pop_front();
            ++statLsqStalls;
        }
    } else {
        // Loads (and ifetches) hold the window.
        pendingLoads.push_back({instIndex, completion});
        if (!ifetch)
            lastMissCompletion = completion;
    }
}

template <class LowerT, class TraceT>
void
OooCore::runTyped(LowerT &lower_mem, TraceT &trace, std::uint64_t records)
{
    TraceRecord r;
    for (std::uint64_t n = 0; n < records; ++n) {
        if (!trace.next(r))
            break;

        insts += r.inst_gap + 1;
        instIndex += r.inst_gap + 1;
        cycleF += (r.inst_gap + 1) * dispatchCpi;

        if (r.has_branch) {
            if (!bpred.predictAndUpdate(r.branch_pc, r.branch_taken))
                cycleF += p.mispredict_penalty;
        }

        enforceWindow();

        const bool ifetch = r.op == TraceOp::Ifetch;
        const bool store = r.op == TraceOp::Store;

        // A pointer-chase load cannot issue before the previous deep
        // load's data returns — this is what exposes L2 *hit* latency
        // (independent loads hide under the RUU window instead).
        if (r.depends_on_prev && !store && !ifetch) {
            if (static_cast<double>(lastMissCompletion) > cycleF) {
                cycleF = static_cast<double>(lastMissCompletion);
                ++statDepStalls;
            }
        }
        const auto now = static_cast<Cycle>(cycleF);
        SetAssocCache &l1 = ifetch ? l1i : l1d;
        if (ifetch)
            ++statL1IAccesses;
        else
            ++statL1DAccesses;

        const SetAssocCache::Access a = l1.access(r.addr, store);
        if (a.evicted && a.evicted_dirty) {
            NURAPID_PROFILE_SCOPE(L2Org);
            lower_mem.access(a.evicted_addr, AccessType::Writeback, now);
        }
        if (!a.hit) {
            missPath(lower_mem, r.addr, store, ifetch,
                     r.latency_critical, now);
        }
        if (obsRec) [[unlikely]]
            obsRec->tick();
    }
}

template <class LowerT>
void
OooCore::runDistilled(LowerT &lower_mem, DistilledTrace::Cursor &cur,
                      std::uint64_t records)
{
    using DT = DistilledTrace;
    const std::uint64_t stop = cur.pos + records;
    const std::uint16_t *const gaps = cur.gaps;
    const std::uint32_t pf = streamPrefetchDistance();

    while (cur.pos < stop) {
        panic_if(cur.ev == cur.ev_end,
                 "distilled events drained before the stop record — "
                 "replay must end on one of the stream's cuts");
        const DT::Event &e = *cur.ev++;
        // Lookahead hint: while this event's inert prefix and machine
        // bookkeeping run, the plane lines a near-future event will
        // touch stream into the host cache. cur.ev already points one
        // past e, so pf == 1 hints the very next event.
        if (pf) {
            const DT::Event *const ahead = cur.ev + (pf - 1);
            if (ahead < cur.ev_end)
                lower_mem.prefetchHotLines(ahead->addr);
        }
        const std::uint64_t erec = e.rec;
        panic_if(erec >= stop,
                 "distilled event past the stop record — replay must "
                 "end on one of the stream's cuts");

        // Inert records [cur.pos, erec): all L1 hits with correctly
        // predicted branches and no stall of any kind. Only the
        // dispatch clock (whose per-record FP addition order must be
        // preserved), the instruction indices, and the window walk
        // advance; the L1 tag/LRU walk and predictor tables fold away.
        for (std::uint64_t k = cur.pos; k < erec; ++k) {
            insts += gaps[k] + 1;
            instIndex += gaps[k] + 1;
            cycleF += (gaps[k] + 1) * dispatchCpi;
            enforceWindow();
            if (obsRec) [[unlikely]]
                obsRec->tick();
        }
        const auto inert = static_cast<std::uint32_t>(erec - cur.pos);
        cur.pos = erec + 1;

        statL1IAccesses += e.d_l1i;
        statL1DAccesses += inert - e.d_l1i;
        l1i.foldStats(e.d_l1i, 0, 0, 0);
        l1d.foldStats(inert - e.d_l1i, 0, 0, 0);
        bpred.foldStats(e.d_bp_pred, 0);

        // The event record itself, replayed in live-loop order.
        const std::uint16_t f = e.flags;
        insts += gaps[erec] + 1;
        instIndex += gaps[erec] + 1;
        cycleF += (gaps[erec] + 1) * dispatchCpi;

        if (f & DT::kHasBranch) {
            bpred.foldStats(1, (f & DT::kMispredict) ? 1 : 0);
            if (f & DT::kMispredict)
                cycleF += p.mispredict_penalty;
        }

        enforceWindow();

        const bool ifetch = (f & DT::kIfetch) != 0;
        const bool store = (f & DT::kStore) != 0;

        // Dependence check: the distiller keeps only the first
        // dependent load after each deep-load completion update (later
        // checks in the same epoch are no-ops — the dispatch clock is
        // monotonic), so this fires exactly when the live loop's would.
        if (f & DT::kDepCheck) {
            if (static_cast<double>(lastMissCompletion) > cycleF) {
                cycleF = static_cast<double>(lastMissCompletion);
                ++statDepStalls;
            }
        }
        const auto now = static_cast<Cycle>(cycleF);
        if (ifetch)
            ++statL1IAccesses;
        else
            ++statL1DAccesses;

        if (f & DT::kL1Miss) {
            (ifetch ? l1i : l1d)
                .foldStats(0, 1, (f & DT::kL1Evict) ? 1 : 0,
                           (f & DT::kWriteback) ? 1 : 0);
            if (f & DT::kWriteback) {
                NURAPID_PROFILE_SCOPE(L2Org);
                lower_mem.access(e.evicted_addr, AccessType::Writeback,
                                 now);
            }
            missPath(lower_mem, e.addr, store, ifetch,
                     (f & DT::kLatencyCritical) != 0, now);
        } else {
            (ifetch ? l1i : l1d).foldStats(1, 0, 0, 0);
        }
        if (obsRec) [[unlikely]]
            obsRec->tick();
    }
}

} // namespace nurapid

#endif // NURAPID_CPU_OOO_CORE_HH
