#include "cpu/branch_predictor.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace nurapid {

BranchPredictor::BranchPredictor(std::uint32_t entries,
                                 std::uint32_t history_bits)
    : mask(entries - 1),
      historyMask((std::uint32_t{1} << history_bits) - 1),
      gshare(entries, 1), bimodal(entries, 1), chooser(entries, 2),
      statGroup("bpred")
{
    fatal_if(!isPowerOf2(entries), "predictor entries %u not pow2",
             entries);
    statGroup.addCounter("predictions", statPredictions);
    statGroup.addCounter("mispredicts", statMispredicts);
}

std::uint8_t
BranchPredictor::bump(std::uint8_t c, bool taken)
{
    if (taken)
        return c < 3 ? c + 1 : 3;
    return c > 0 ? c - 1 : 0;
}

std::uint32_t
BranchPredictor::gshareIndex(std::uint32_t pc) const
{
    return ((pc >> 2) ^ history) & mask;
}

std::uint32_t
BranchPredictor::bimodalIndex(std::uint32_t pc) const
{
    return (pc >> 2) & mask;
}

bool
BranchPredictor::predict(std::uint32_t pc) const
{
    const bool use_gshare = chooser[bimodalIndex(pc)] >= 2;
    return use_gshare ? counterTaken(gshare[gshareIndex(pc)])
                      : counterTaken(bimodal[bimodalIndex(pc)]);
}

bool
BranchPredictor::predictAndUpdate(std::uint32_t pc, bool taken)
{
    const std::uint32_t gi = gshareIndex(pc);
    const std::uint32_t bi = bimodalIndex(pc);
    const bool g_pred = counterTaken(gshare[gi]);
    const bool b_pred = counterTaken(bimodal[bi]);
    const bool use_gshare = chooser[bi] >= 2;
    const bool pred = use_gshare ? g_pred : b_pred;

    ++statPredictions;
    if (pred != taken)
        ++statMispredicts;

    // Train the components, then the chooser (only when they disagree).
    gshare[gi] = bump(gshare[gi], taken);
    bimodal[bi] = bump(bimodal[bi], taken);
    if (g_pred != b_pred)
        chooser[bi] = bump(chooser[bi], g_pred == taken);

    history = ((history << 1) | (taken ? 1u : 0u)) & historyMask;
    return pred == taken;
}

double
BranchPredictor::accuracy() const
{
    const auto total = statPredictions.value();
    if (total == 0)
        return 1.0;
    return 1.0 - static_cast<double>(statMispredicts.value()) / total;
}

} // namespace nurapid
