#include "cpu/branch_predictor.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace nurapid {

BranchPredictor::BranchPredictor(std::uint32_t entries,
                                 std::uint32_t history_bits)
    : mask(entries - 1),
      historyMask((std::uint32_t{1} << history_bits) - 1),
      histBits(history_bits),
      gshare(entries, 1), bimodal(entries, BimodalEntry{1, 2}),
      statGroup("bpred")
{
    fatal_if(!isPowerOf2(entries), "predictor entries %u not pow2",
             entries);
    statGroup.addCounter("predictions", statPredictions);
    statGroup.addCounter("mispredicts", statMispredicts);
}

bool
BranchPredictor::predict(std::uint32_t pc) const
{
    const BimodalEntry &bc = bimodal[bimodalIndex(pc)];
    return bc.chooser >= 2 ? counterTaken(gshare[gshareIndex(pc)])
                           : counterTaken(bc.counter);
}

double
BranchPredictor::accuracy() const
{
    const auto total = statPredictions.value();
    if (total == 0)
        return 1.0;
    return 1.0 - static_cast<double>(statMispredicts.value()) / total;
}

} // namespace nurapid
