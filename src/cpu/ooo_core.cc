#include "cpu/ooo_core.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace nurapid {

OooCore::OooCore(const CoreParams &params, SetAssocCache &l1i_cache,
                 SetAssocCache &l1d_cache, LowerMemory &lower_mem)
    : p(params), l1i(l1i_cache), l1d(l1d_cache), lower(lower_mem),
      mshrs(p.mshrs, p.mshr_block_bytes), statGroup("core")
{
    fatal_if(p.issue_width == 0 || p.ruu_entries == 0, "degenerate core");
    dispatchCpi = std::max(1.0 / p.issue_width, p.dispatch_cpi);
    // Structural bounds: at most one pending load per RUU slot plus
    // the one being dispatched; the store ring is popped back below
    // lsq_entries on every push, so lsq_entries + 1 is its peak.
    pendingLoads.init(p.ruu_entries + 2);
    pendingStores.init(p.lsq_entries + 2);
    statGroup.addCounter("l1d_accesses", statL1DAccesses);
    statGroup.addCounter("l1i_accesses", statL1IAccesses);
    statGroup.addCounter("l1d_misses", statL1DMisses);
    statGroup.addCounter("l1i_misses", statL1IMisses);
    statGroup.addCounter("l2_demand", statL2Demand);
    statGroup.addCounter("l2_demand_hits", statL2DemandHits);
    statGroup.addCounter("rob_stalls", statRobStalls);
    statGroup.addCounter("lsq_stalls", statLsqStalls);
    statGroup.addCounter("dep_stalls", statDepStalls);
    statGroup.addCounter("critical_stalls", statCriticalStalls);
}

void
OooCore::run(TraceSource &trace, std::uint64_t records)
{
    runTyped(lower, trace, records);
}

std::uint64_t
OooCore::cycles() const
{
    // Account for the drain of whatever is still in flight.
    const auto dispatched = static_cast<std::uint64_t>(cycleF);
    const std::uint64_t now = std::max(dispatched, lastCompletion);
    return now > cycleBase ? now - cycleBase : 0;
}

double
OooCore::ipc() const
{
    const std::uint64_t c = cycles();
    return c ? static_cast<double>(insts) / c : 0.0;
}

void
OooCore::resetStats()
{
    statGroup.resetAll();
    bpred.resetStats();
    mshrs.stats().resetAll();
    l1i.stats().resetAll();
    l1d.stats().resetAll();
    // Time stays absolute — the lower hierarchy's port/bank clocks are
    // absolute too, so zeroing the dispatch clock here would make the
    // first measured accesses appear to wait out the whole warmup.
    // Instead, record baselines and keep in-flight state warm.
    const auto dispatched = static_cast<std::uint64_t>(cycleF);
    cycleBase = std::max(dispatched, static_cast<std::uint64_t>(
        lastCompletion));
    instBase = insts;
}

} // namespace nurapid
