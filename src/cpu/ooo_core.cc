#include "cpu/ooo_core.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace nurapid {

OooCore::OooCore(const CoreParams &params, SetAssocCache &l1i_cache,
                 SetAssocCache &l1d_cache, LowerMemory &lower_mem)
    : p(params), l1i(l1i_cache), l1d(l1d_cache), lower(lower_mem),
      mshrs(p.mshrs, p.mshr_block_bytes), statGroup("core")
{
    fatal_if(p.issue_width == 0 || p.ruu_entries == 0, "degenerate core");
    dispatchCpi = std::max(1.0 / p.issue_width, p.dispatch_cpi);
    statGroup.addCounter("l1d_accesses", statL1DAccesses);
    statGroup.addCounter("l1i_accesses", statL1IAccesses);
    statGroup.addCounter("l1d_misses", statL1DMisses);
    statGroup.addCounter("l1i_misses", statL1IMisses);
    statGroup.addCounter("l2_demand", statL2Demand);
    statGroup.addCounter("l2_demand_hits", statL2DemandHits);
    statGroup.addCounter("rob_stalls", statRobStalls);
    statGroup.addCounter("lsq_stalls", statLsqStalls);
    statGroup.addCounter("dep_stalls", statDepStalls);
    statGroup.addCounter("critical_stalls", statCriticalStalls);
}

void
OooCore::enforceWindow()
{
    // Retire completed loads; stall dispatch when the oldest pending
    // load is more than a full RUU behind the dispatch point.
    auto now = static_cast<Cycle>(cycleF);
    while (!pendingLoads.empty()) {
        const Pending &front = pendingLoads.front();
        if (front.completion <= now) {
            pendingLoads.pop_front();
            continue;
        }
        if (instIndex - front.inst >= p.ruu_entries) {
            cycleF = std::max(cycleF,
                              static_cast<double>(front.completion));
            now = static_cast<Cycle>(cycleF);
            pendingLoads.pop_front();
            ++statRobStalls;
            continue;
        }
        break;
    }
}

Cycles
OooCore::missLatency(Addr addr, AccessType type, Cycle now)
{
    const Addr block = blockAlign(addr, p.mshr_block_bytes);
    mshrs.retire(now);

    if (mshrs.tracks(block)) {
        mshrs.noteMerge();
        const Cycle ready = mshrs.readyAt(block);
        return ready > now ? static_cast<Cycles>(ready - now) : 0;
    }

    if (mshrs.full()) {
        // Structural stall: wait for the oldest fill.
        const Cycle ready = mshrs.nextRetirement();
        cycleF = std::max(cycleF, static_cast<double>(ready));
        now = static_cast<Cycle>(cycleF);
        mshrs.retire(now);
        mshrs.noteFullStall();
    }

    ++statL2Demand;
    const LowerMemory::Result res = lower.access(block, type, now);
    if (res.hit)
        ++statL2DemandHits;
    const Cycles total = p.l1_latency + res.latency;
    mshrs.allocate(block, now + total);
    return total;
}

void
OooCore::run(TraceSource &trace, std::uint64_t records)
{
    TraceRecord r;
    for (std::uint64_t n = 0; n < records; ++n) {
        if (!trace.next(r))
            break;

        insts += r.inst_gap + 1;
        instIndex += r.inst_gap + 1;
        cycleF += (r.inst_gap + 1) * dispatchCpi;

        if (r.has_branch) {
            if (!bpred.predictAndUpdate(r.branch_pc, r.branch_taken))
                cycleF += p.mispredict_penalty;
        }

        enforceWindow();

        const bool ifetch = r.op == TraceOp::Ifetch;
        const bool store = r.op == TraceOp::Store;

        // A pointer-chase load cannot issue before the previous deep
        // load's data returns — this is what exposes L2 *hit* latency
        // (independent loads hide under the RUU window instead).
        if (r.depends_on_prev && !store && !ifetch) {
            if (static_cast<double>(lastMissCompletion) > cycleF) {
                cycleF = static_cast<double>(lastMissCompletion);
                ++statDepStalls;
            }
        }
        const auto now = static_cast<Cycle>(cycleF);
        SetAssocCache &l1 = ifetch ? l1i : l1d;
        if (ifetch)
            ++statL1IAccesses;
        else
            ++statL1DAccesses;

        const SetAssocCache::Access a = l1.access(r.addr, store);
        if (a.evicted && a.evicted_dirty)
            lower.access(a.evicted_addr, AccessType::Writeback, now);
        if (a.hit)
            continue;

        if (ifetch)
            ++statL1IMisses;
        else
            ++statL1DMisses;

        const AccessType type =
            store ? AccessType::Write : AccessType::Read;
        const Cycles lat = missLatency(r.addr, type, now);
        const Cycle completion = now + lat;
        lastCompletion = std::max(lastCompletion, completion);

        // Latency-critical loads feed consumers immediately: only a
        // small slack of independent work hides their latency.
        if (r.latency_critical && !store && !ifetch &&
            completion > now + p.consumer_slack) {
            const double resume =
                static_cast<double>(completion - p.consumer_slack);
            if (resume > cycleF) {
                cycleF = resume;
                ++statCriticalStalls;
            }
        }

        if (store) {
            // Stores retire through the LSQ without blocking dispatch
            // unless the queue fills.
            pendingStores.push_back(completion);
            while (!pendingStores.empty() &&
                   pendingStores.front() <=
                       static_cast<Cycle>(cycleF)) {
                pendingStores.pop_front();
            }
            if (pendingStores.size() > p.lsq_entries) {
                cycleF = std::max(
                    cycleF, static_cast<double>(pendingStores.front()));
                pendingStores.pop_front();
                ++statLsqStalls;
            }
        } else {
            // Loads (and ifetches) hold the window.
            pendingLoads.push_back({instIndex, completion});
            if (!ifetch)
                lastMissCompletion = completion;
        }
    }
}

std::uint64_t
OooCore::cycles() const
{
    // Account for the drain of whatever is still in flight.
    const auto dispatched = static_cast<std::uint64_t>(cycleF);
    const std::uint64_t now = std::max(dispatched, lastCompletion);
    return now > cycleBase ? now - cycleBase : 0;
}

double
OooCore::ipc() const
{
    const std::uint64_t c = cycles();
    return c ? static_cast<double>(insts) / c : 0.0;
}

void
OooCore::resetStats()
{
    statGroup.resetAll();
    bpred.resetStats();
    mshrs.stats().resetAll();
    l1i.stats().resetAll();
    l1d.stats().resetAll();
    // Time stays absolute — the lower hierarchy's port/bank clocks are
    // absolute too, so zeroing the dispatch clock here would make the
    // first measured accesses appear to wait out the whole warmup.
    // Instead, record baselines and keep in-flight state warm.
    const auto dispatched = static_cast<std::uint64_t>(cycleF);
    cycleBase = std::max(dispatched, static_cast<std::uint64_t>(
        lastCompletion));
    instBase = insts;
}

} // namespace nurapid
