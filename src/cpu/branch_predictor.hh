/**
 * @file
 * Two-level hybrid branch predictor (Table 1: "2-level, hybrid, 8K
 * entries"): a gshare component, a bimodal component, and a chooser,
 * each 8K 2-bit saturating counters.
 */

#ifndef NURAPID_CPU_BRANCH_PREDICTOR_HH
#define NURAPID_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"

namespace nurapid {

class BranchPredictor
{
  public:
    explicit BranchPredictor(std::uint32_t entries = 8192,
                             std::uint32_t history_bits = 13);

    /** Predicts the branch at @p pc. */
    bool predict(std::uint32_t pc) const;

    /**
     * Trains on the resolved outcome and updates the global history.
     * Returns true iff the prediction made beforehand was correct.
     */
    bool predictAndUpdate(std::uint32_t pc, bool taken);

    double accuracy() const;
    StatGroup &stats() { return statGroup; }
    void resetStats() { statGroup.resetAll(); }

  private:
    static bool counterTaken(std::uint8_t c) { return c >= 2; }
    static std::uint8_t bump(std::uint8_t c, bool taken);

    std::uint32_t gshareIndex(std::uint32_t pc) const;
    std::uint32_t bimodalIndex(std::uint32_t pc) const;

    std::uint32_t mask;
    std::uint32_t historyMask;
    std::uint32_t history = 0;
    std::vector<std::uint8_t> gshare;
    std::vector<std::uint8_t> bimodal;
    std::vector<std::uint8_t> chooser;  //!< >=2 selects gshare

    StatGroup statGroup;
    Counter statPredictions;
    Counter statMispredicts;
};

} // namespace nurapid

#endif // NURAPID_CPU_BRANCH_PREDICTOR_HH
