/**
 * @file
 * Two-level hybrid branch predictor (Table 1: "2-level, hybrid, 8K
 * entries"): a gshare component, a bimodal component, and a chooser,
 * each 8K 2-bit saturating counters.
 */

#ifndef NURAPID_CPU_BRANCH_PREDICTOR_HH
#define NURAPID_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"

namespace nurapid {

class BranchPredictor
{
  public:
    explicit BranchPredictor(std::uint32_t entries = 8192,
                             std::uint32_t history_bits = 13);

    /** Predicts the branch at @p pc. */
    bool predict(std::uint32_t pc) const;

    /**
     * Trains on the resolved outcome and updates the global history.
     * Returns true iff the prediction made beforehand was correct.
     * Defined inline: this is called once per branch record from the
     * per-reference simulation loop.
     */
    bool
    predictAndUpdate(std::uint32_t pc, bool taken)
    {
        const std::uint32_t gi = gshareIndex(pc);
        const std::uint32_t bi = bimodalIndex(pc);
        BimodalEntry &bc = bimodal[bi];
        const bool g_pred = counterTaken(gshare[gi]);
        const bool b_pred = counterTaken(bc.counter);
        const bool use_gshare = bc.chooser >= 2;
        const bool pred = use_gshare ? g_pred : b_pred;

        ++statPredictions;
        if (pred != taken)
            ++statMispredicts;

        // Train the components, then the chooser (only when they
        // disagree).
        gshare[gi] = bump(gshare[gi], taken);
        bc.counter = bump(bc.counter, taken);
        if (g_pred != b_pred)
            bc.chooser = bump(bc.chooser, g_pred == taken);

        history = ((history << 1) | (taken ? 1u : 0u)) & historyMask;
        return pred == taken;
    }

    double accuracy() const;
    StatGroup &stats() { return statGroup; }
    void resetStats() { statGroup.resetAll(); }

    /** Folds @p predictions (of which @p mispredicts were wrong) into
     *  the counters without touching the tables — the distilled-replay
     *  path (trace/distilled_trace.hh) accounts for branches whose
     *  outcome was precomputed. */
    void
    foldStats(std::uint64_t predictions, std::uint64_t mispredicts)
    {
        statPredictions += predictions;
        statMispredicts += mispredicts;
    }

    std::uint32_t entries() const { return mask + 1; }
    std::uint32_t historyBits() const { return histBits; }

  private:
    static bool counterTaken(std::uint8_t c) { return c >= 2; }

    static std::uint8_t
    bump(std::uint8_t c, bool taken)
    {
        if (taken)
            return c < 3 ? c + 1 : 3;
        return c > 0 ? c - 1 : 0;
    }

    std::uint32_t
    gshareIndex(std::uint32_t pc) const
    {
        return ((pc >> 2) ^ history) & mask;
    }

    std::uint32_t
    bimodalIndex(std::uint32_t pc) const
    {
        return (pc >> 2) & mask;
    }

    /** Bimodal counter and chooser share their index, so they live in
     *  one array entry — one cache line serves both lookups. */
    struct BimodalEntry
    {
        std::uint8_t counter;
        std::uint8_t chooser;  //!< >=2 selects gshare
    };

    std::uint32_t mask;
    std::uint32_t historyMask;
    std::uint32_t histBits;
    std::uint32_t history = 0;
    std::vector<std::uint8_t> gshare;
    std::vector<BimodalEntry> bimodal;

    StatGroup statGroup;
    Counter statPredictions;
    Counter statMispredicts;
};

} // namespace nurapid

#endif // NURAPID_CPU_BRANCH_PREDICTOR_HH
