#include "sim/audit/audit.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace nurapid {

std::string
AuditViolation::describe() const
{
    std::string where;
    if (set != kNoIndex)
        where += strprintf(" set=%u", set);
    if (way != kNoIndex)
        where += strprintf(" way=%u", way);
    if (group != kNoIndex)
        where += strprintf(" group=%u", group);
    if (frame != kNoIndex)
        where += strprintf(" frame=%u", frame);
    return strprintf("[%s] %s:%s %s", component.c_str(),
                     invariant.c_str(), where.c_str(), detail.c_str());
}

void
CountingAuditSink::violation(const AuditViolation &v)
{
    ++total;
    if (kept.size() < keepFirst)
        kept.push_back(v);
}

void
CountingAuditSink::reset()
{
    total = 0;
    kept.clear();
}

std::string
CountingAuditSink::summary() const
{
    if (total == 0)
        return "";
    return strprintf("%llu violation(s), first: %s",
                     static_cast<unsigned long long>(total),
                     kept.empty() ? "(not kept)"
                                  : kept.front().describe().c_str());
}

void
PanicAuditSink::violation(const AuditViolation &v)
{
    panic("audit violation: %s", v.describe().c_str());
}

namespace audit {

AuditConfig
AuditConfig::fromEnv()
{
    AuditConfig cfg;
    if (const char *s = std::getenv("NURAPID_AUDIT"))
        cfg.enabled = !(s[0] == '0' && s[1] == '\0');
    if (const char *s = std::getenv("NURAPID_AUDIT_INTERVAL")) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(s, &end, 10);
        if (*s != '\0' && end && *end == '\0' && v > 0)
            cfg.interval = v;
        else
            warnOnce("ignoring invalid NURAPID_AUDIT_INTERVAL '%s'", s);
    }
    return cfg;
}

namespace {

AuditConfig &
mutableConfig()
{
    static AuditConfig cfg = AuditConfig::fromEnv();
    return cfg;
}

AuditSink *&
sinkPtr()
{
    static AuditSink *sink = nullptr;
    return sink;
}

} // namespace

const AuditConfig &
config()
{
    return mutableConfig();
}

void
setConfig(const AuditConfig &cfg)
{
    mutableConfig() = cfg;
}

bool
compiledIn()
{
#if NURAPID_AUDIT_ENABLED
    return true;
#else
    return false;
#endif
}

AuditSink &
hookSink()
{
    static PanicAuditSink panic_sink;
    AuditSink *sink = sinkPtr();
    return sink ? *sink : static_cast<AuditSink &>(panic_sink);
}

void
setHookSink(AuditSink *sink)
{
    sinkPtr() = sink;
}

} // namespace audit
} // namespace nurapid
