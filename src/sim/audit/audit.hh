/**
 * @file
 * Invariant-audit layer: machine-checked structural invariants for the
 * cache organizations.
 *
 * NuRAPID's correctness rests on the forward/reverse pointer decoupling
 * staying coherent under placement, promotion, demotion and eviction
 * (paper Section 3); a dangling pointer does not crash the simulator —
 * it silently corrupts hit latencies and energy numbers. The audit
 * layer makes those invariants explicit:
 *
 *  - every component exposes an always-compiled `audit(AuditSink &)`
 *    method that checks its invariants (forward/reverse pointer
 *    bijection, d-group frame occupancy vs. free-list counts, set-LRU
 *    stack integrity, single-port serialization) and reports each
 *    violation with full (set, way, d-group, frame) context; the
 *    differential fuzzer and the unit tests call these directly in any
 *    build;
 *
 *  - the cache *hot paths* additionally carry periodic self-audit hook
 *    points that compile to nothing unless the CMake option
 *    `-DNURAPID_AUDIT=ON` defines NURAPID_AUDIT_ENABLED, and even then
 *    run only when the runtime flag (AuditConfig / NURAPID_AUDIT
 *    environment variable) is on — the default build's hot loop is
 *    byte-for-byte free of audit work.
 *
 * Layering: this header depends only on common/ so that the mem, nuca
 * and nurapid libraries can include it without an upward link
 * dependency; the small amount of runtime state lives in the
 * nurapid_audit library.
 */

#ifndef NURAPID_SIM_AUDIT_AUDIT_HH
#define NURAPID_SIM_AUDIT_AUDIT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace nurapid {

/** One violated invariant, with as much locating context as the
 *  reporting component has. Fields without a meaningful value for a
 *  given invariant carry kNoIndex. */
struct AuditViolation
{
    static constexpr std::uint32_t kNoIndex = 0xffffffff;

    std::string component;  //!< e.g. "nurapid.tags", "dnuca"
    std::string invariant;  //!< short invariant name, e.g. "fwd-rev-bijection"
    std::string detail;     //!< human-readable description
    std::uint32_t set = kNoIndex;
    std::uint32_t way = kNoIndex;
    std::uint32_t group = kNoIndex;  //!< d-group / bank row
    std::uint32_t frame = kNoIndex;  //!< data frame / bank way

    std::string describe() const;
};

/** Receives audit violations; implementations decide whether to count,
 *  record, print or abort. */
class AuditSink
{
  public:
    virtual ~AuditSink() = default;
    virtual void violation(const AuditViolation &v) = 0;
};

/** Counts violations and keeps the first few for reporting. */
class CountingAuditSink : public AuditSink
{
  public:
    explicit CountingAuditSink(std::size_t keep = 8) : keepFirst(keep) {}

    void violation(const AuditViolation &v) override;

    std::uint64_t count() const { return total; }
    bool clean() const { return total == 0; }
    const std::vector<AuditViolation> &first() const { return kept; }
    void reset();

    /** One-line summary of the first violation ("" when clean). */
    std::string summary() const;

  private:
    std::size_t keepFirst;
    std::uint64_t total = 0;
    std::vector<AuditViolation> kept;
};

/** Sink that panics on the first violation — the default for the
 *  compiled-in hot-path hooks, so a corrupted pointer is loud at the
 *  access that corrupted it rather than bench-table-shaped later. */
class PanicAuditSink : public AuditSink
{
  public:
    [[noreturn]] void violation(const AuditViolation &v) override;
};

namespace audit {

/**
 * Runtime configuration of the compiled-in hooks (the "SimConfig"
 * runtime flag of the audit layer). Read once from the environment:
 *   NURAPID_AUDIT           0 disables the hooks (default: enabled
 *                           when compiled in)
 *   NURAPID_AUDIT_INTERVAL  accesses between periodic full self-audits
 *                           (default 4096; 1 = audit every access)
 */
struct AuditConfig
{
    bool enabled = true;
    std::uint64_t interval = 4096;

    static AuditConfig fromEnv();
};

/** Process-wide hook configuration (cached fromEnv() on first use). */
const AuditConfig &config();

/** Overrides the process-wide configuration (tests). */
void setConfig(const AuditConfig &cfg);

/** True when the hot-path hooks were compiled in (NURAPID_AUDIT=ON). */
bool compiledIn();

/** Sink used by the hot-path hooks; defaults to a PanicAuditSink. */
AuditSink &hookSink();

/** Replaces the hook sink (tests / the fuzzer); nullptr restores the
 *  default panicking sink. Not thread-safe: install before running. */
void setHookSink(AuditSink *sink);

} // namespace audit

} // namespace nurapid

/**
 * Hot-path hook: runs @p stmt only in an audit build with the runtime
 * flag on. The counter is any per-object std::uint64_t, so concurrent
 * Systems on the run engine's worker threads never share audit state.
 */
#if NURAPID_AUDIT_ENABLED
#define NURAPID_AUDIT_POINT(counter, stmt)                               \
    do {                                                                 \
        const auto &cfg_ = ::nurapid::audit::config();                   \
        if (cfg_.enabled && ++(counter) % cfg_.interval == 0) {          \
            stmt;                                                        \
        }                                                                \
    } while (0)
#else
#define NURAPID_AUDIT_POINT(counter, stmt) ((void)0)
#endif

#endif // NURAPID_SIM_AUDIT_AUDIT_HH
