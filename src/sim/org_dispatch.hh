/**
 * @file
 * The single virtual-to-concrete switch over the five final cache
 * organizations, shared by the System's per-segment replay and the
 * gang replayer's per-event dispatch.
 */

#ifndef NURAPID_SIM_ORG_DISPATCH_HH
#define NURAPID_SIM_ORG_DISPATCH_HH

#include "common/logging.hh"
#include "sim/config.hh"

namespace nurapid {

/**
 * Recovers the concrete organization type behind the factory's
 * LowerMemory pointer and invokes @p fn with it. Every organization is
 * final, so this one switch is the only place virtual dispatch happens
 * on the simulation path — inside fn the compiler statically binds and
 * inlines the organization's access().
 */
template <class Fn>
void
withConcreteOrg(LowerMemory &lower, OrgKind kind, Fn &&fn)
{
    switch (kind) {
      case OrgKind::BaseL2L3:
        fn(static_cast<ConventionalL2L3 &>(lower));
        return;
      case OrgKind::DNuca:
        fn(static_cast<DNucaCache &>(lower));
        return;
      case OrgKind::SNuca:
        fn(static_cast<SNucaCache &>(lower));
        return;
      case OrgKind::NuRapid:
        fn(static_cast<NuRapidCache &>(lower));
        return;
      case OrgKind::CoupledSA:
        fn(static_cast<CoupledNucaCache &>(lower));
        return;
    }
    panic("unknown organization kind");
}

} // namespace nurapid

#endif // NURAPID_SIM_ORG_DISPATCH_HH
