/**
 * @file
 * Gang replay: one traversal of a shared distilled L2-event stream
 * drives an array of organizations at once.
 *
 * The engine groups cache-missed runs by distilled-trace fingerprint
 * (same workload, same phase lengths) and hands each group to the
 * replayer, which drives all lanes through the stream in coarse
 * blocks: per block, every lane replays the same record range through
 * the ordinary devirtualized solo loop on its own copy of the shared
 * cursor. Bit-identity with the per-org path therefore needs no
 * argument beyond "same code, same inputs" — each lane executes
 * literally the solo replay's instruction sequence, just sliced at
 * block boundaries (which runDistilled can stop and resume on).
 *
 * Blocks are coarse by measurement, not by accident: a lane's
 * organization tables are megabytes of randomly-accessed state, so
 * fine interleaving makes five lanes' tables evict each other from the
 * host cache (~70% inflation of the l2-org profile bucket at
 * per-event granularity) — more than the shared stream bytes save.
 * See gang.cc for the block-size rationale and NURAPID_GANG_BLOCK.
 *
 * For the same reason runAll() tiles wide gangs into *cohorts* whose
 * combined hotStateBytes() fit a host-LLC budget, re-traversing the
 * shared stream once per cohort (NURAPID_GANG_SCHED=footprint|naive,
 * NURAPID_GANG_LLC_BYTES; see gang.cc). Cohorts replay the identical
 * per-lane instruction sequence, so results stay bit-identical and
 * neither knob enters the run-cache fingerprint.
 *
 * tests/test_gang_replay.cc asserts identity of RunMetrics and obs
 * event streams; the gang fuzz target (testing/gang_differ.hh)
 * diffs eviction identity and dirty bits on fuzzed streams.
 *
 * NURAPID_GANG=0 (or nurapid_sim --gang off) disables gang scheduling,
 * mirroring NURAPID_DISTILL=0.
 */

#ifndef NURAPID_SIM_GANG_HH
#define NURAPID_SIM_GANG_HH

#include <cstdint>
#include <vector>

#include "sim/system.hh"
#include "trace/distilled_trace.hh"

namespace nurapid {

/** Engine-level gang-replay switches. Part of the run-cache
 *  fingerprint, so results produced under one mode are never silently
 *  served to a verification run of the other. */
struct GangMode
{
    bool enabled = true;

    /** Max lanes per gang; 0 = unlimited. */
    std::uint32_t width_cap = 0;

    /** Reads NURAPID_GANG and NURAPID_GANG_WIDTH. */
    static GangMode fromEnv();
};

/** False when NURAPID_GANG=0 disables gang replay. */
bool gangEnabled();

class GangReplayer
{
  public:
    /** One organization riding the shared stream. */
    struct Lane
    {
        OooCore *core = nullptr;
        LowerMemory *lower = nullptr;
        OrgKind kind = OrgKind::NuRapid;
    };

    /**
     * Low-level replay: drives every lane through @p records records
     * of one shared distilled stream, advancing @p cur past the
     * segment. Every lane must have been built against the stream's
     * L1/predictor configuration and share one dispatch CPI; the
     * segment must end on a cut (same contract as runDistilled, same
     * panics). Also used directly by the gang fuzz harness.
     */
    static void replayRecords(const std::vector<Lane> &lanes,
                              DistilledTrace::Cursor &cur,
                              std::uint64_t records);

    /** True when the group can share one traversal: >= 2 fresh
     *  systems on the same distilled stream with equal phase lengths
     *  landing on cuts. */
    static bool eligible(const std::vector<System *> &group);

    /**
     * Runs warmup and measure for the whole group in one stream
     * traversal per phase and returns each system's metrics in group
     * order, bit-identical to per-system runAll() except wall_seconds
     * (the gang's wall time is split evenly across lanes). Falls back
     * to sequential runAll() when the group is not eligible.
     */
    static std::vector<RunMetrics> runAll(const std::vector<System *> &group);
};

} // namespace nurapid

#endif // NURAPID_SIM_GANG_HH
