#include "sim/gang.hh"

#include <chrono>
#include <cstdlib>
#include <string_view>

#include "common/logging.hh"
#include "sim/org_dispatch.hh"
#include "sim/profile/profile.hh"
#include "sim/runner/span_trace.hh"

namespace nurapid {

bool
gangEnabled()
{
    const char *s = std::getenv("NURAPID_GANG");
    return s == nullptr || std::string_view(s) != "0";
}

GangMode
GangMode::fromEnv()
{
    GangMode mode;
    mode.enabled = gangEnabled();
    if (const char *s = std::getenv("NURAPID_GANG_WIDTH")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(s, &end, 10);
        if (end && *end == '\0' && *s != '\0' && v <= 4096) {
            mode.width_cap = static_cast<std::uint32_t>(v);
        } else {
            warnOnce("ignoring invalid NURAPID_GANG_WIDTH '%s'", s);
        }
    }
    return mode;
}

/**
 * Events per interleave block. Each lane's cache-organization tables
 * are megabytes of randomly-accessed state, so they — not the shared
 * distilled stream — dominate the host's memory traffic. Measured on
 * the bench sweep, fine interleaving is therefore counterproductive: a
 * per-event rotation inflated the l2-org profile bucket by ~70% (five
 * organizations' tag arrays evicting each other), and even 4096-event
 * blocks showed the same thrash because a block touches most of a
 * lane's hot table set. Blocks must be large enough that the one-time
 * table re-warm amortizes; the default keeps full-scale runs (well
 * under a million events) to a single block per lane, which is the
 * measured optimum. NURAPID_GANG_BLOCK overrides it — tests use small
 * values to exercise the multi-block boundary logic.
 */
static std::uint64_t
gangBlockEvents()
{
    // Re-read per traversal (not once per process) so tests can pin a
    // tiny block size to exercise the multi-block boundary logic.
    constexpr std::uint64_t kDefault = 1ull << 20;
    if (const char *s = std::getenv("NURAPID_GANG_BLOCK")) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(s, &end, 10);
        if (end && *end == '\0' && *s != '\0' && v > 0)
            return static_cast<std::uint64_t>(v);
        warnOnce("ignoring invalid NURAPID_GANG_BLOCK '%s'", s);
    }
    return kDefault;
}

/**
 * Cohort scheduling policy. The block-size rationale above has a flip
 * side: blocks only amortize the table re-warm if the cohort's
 * combined hot state fits the host LLC at all. A wide gang of large
 * organizations (five 8 MB tag/data/rank plane sets = tens of MB)
 * thrashes no matter the block size. So the replayer tiles the group
 * into *cohorts* whose summed hotStateBytes() fit a budget, and runs
 * one full warmup+measure traversal per cohort — re-reading the shared
 * stream once more per extra cohort, which is far cheaper than
 * cross-lane plane evictions. NURAPID_GANG_SCHED=naive restores the
 * single all-lanes traversal; neither knob is part of the run-cache
 * fingerprint because cohorts replay the identical per-lane
 * instruction sequence (bit-identity is asserted by
 * tests/test_rank_planes.cc and the check.sh dump-identity bracket).
 */
static bool
gangFootprintSched()
{
    if (const char *s = std::getenv("NURAPID_GANG_SCHED")) {
        const std::string_view v(s);
        if (v == "naive")
            return false;
        if (!v.empty() && v != "footprint")
            warnOnce("ignoring invalid NURAPID_GANG_SCHED '%s'", s);
    }
    return true;
}

/** Host-LLC byte budget one cohort's hot state may occupy. The
 *  default approximates a desktop/server LLC; tests pin tiny budgets
 *  to force per-lane cohorts. */
static std::size_t
gangLlcBudgetBytes()
{
    constexpr std::size_t kDefault = 24ull << 20;
    if (const char *s = std::getenv("NURAPID_GANG_LLC_BYTES")) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(s, &end, 10);
        if (end && *end == '\0' && *s != '\0' && v > 0)
            return static_cast<std::size_t>(v);
        warnOnce("ignoring invalid NURAPID_GANG_LLC_BYTES '%s'", s);
    }
    return kDefault;
}

void
GangReplayer::replayRecords(const std::vector<Lane> &lanes,
                            DistilledTrace::Cursor &cur,
                            std::uint64_t records)
{
    NURAPID_PROFILE_SCOPE(Gang);
    panic_if(lanes.empty(), "gang replay with no lanes");

    const std::uint64_t block_cap = gangBlockEvents();
    const std::uint64_t stop = cur.pos + records;
    while (cur.pos < stop) {
        // Scan one block ahead: up to kGangBlockEvents events, all
        // inside this segment. Blocks end just past an event record,
        // which is exactly the boundary runDistilled can stop on (the
        // segment's own stop record is an event by the cut contract).
        const DistilledTrace::Event *scan = cur.ev;
        std::uint64_t block_events = 0;
        std::uint64_t last_rec = 0;
        while (scan != cur.ev_end && scan->rec < stop &&
               block_events < block_cap) {
            last_rec = scan->rec;
            ++scan;
            ++block_events;
        }
        panic_if(block_events == 0,
                 "distilled events drained before the stop record — "
                 "replay must end on one of the stream's cuts");
        const std::uint64_t block_end =
            (scan != cur.ev_end && scan->rec < stop) ? last_rec + 1
                                                     : stop;

        // Every lane replays the block through the ordinary
        // devirtualized solo loop on its own copy of the cursor — the
        // per-lane instruction stream is literally the solo replay's,
        // so bit-identity needs no argument beyond "same code, same
        // inputs". All copies advance identically; the last one
        // becomes the shared cursor.
        const std::uint64_t block_records = block_end - cur.pos;
        DistilledTrace::Cursor after = cur;
        for (const Lane &lane : lanes) {
            DistilledTrace::Cursor c = cur;
            withConcreteOrg(*lane.lower, lane.kind, [&](auto &org) {
                lane.core->runDistilled(org, c, block_records);
            });
            after = c;
        }
        cur = after;
    }
}

bool
GangReplayer::eligible(const std::vector<System *> &group)
{
    if (group.size() < 2)
        return false;
    const System *first = group.front();
    if (!first->distilled)
        return false;
    const std::uint64_t warmup = first->length.warmup_records;
    const std::uint64_t total = warmup + first->length.measure_records;
    if (warmup > 0 && !first->distilled->isCut(warmup))
        return false;
    if (total == 0 || !first->distilled->isCut(total))
        return false;
    for (const System *sys : group) {
        if (sys->distilled.get() != first->distilled.get() ||
            sys->consumed != 0 || sys->obsAttached ||
            sys->length.warmup_records != warmup ||
            sys->length.measure_records !=
                first->length.measure_records ||
            false) {
            return false;
        }
    }
    return true;
}

std::vector<RunMetrics>
GangReplayer::runAll(const std::vector<System *> &group)
{
    std::vector<RunMetrics> out;
    out.reserve(group.size());
    if (!eligible(group)) {
        for (System *sys : group)
            out.push_back(sys->runAll());
        return out;
    }

    const auto start = std::chrono::steady_clock::now();

    // Tile the group into cohorts whose combined hot state fits the
    // host-LLC budget (greedy, in group order; an oversized lane rides
    // alone). Naive scheduling is the single all-lanes cohort.
    std::vector<std::vector<System *>> cohorts;
    if (!gangFootprintSched()) {
        cohorts.push_back(group);
    } else {
        const std::size_t budget = gangLlcBudgetBytes();
        std::size_t bytes = 0;
        for (System *sys : group) {
            const std::size_t b = sys->lowerMem->hotStateBytes();
            if (cohorts.empty() ||
                (!cohorts.back().empty() && bytes + b > budget)) {
                cohorts.emplace_back();
                bytes = 0;
            }
            cohorts.back().push_back(sys);
            bytes += b;
        }
    }

    // The same phase sequence runAll() drives, with each replay
    // folded into one traversal per cohort. All starting cursors are
    // equal (every system is fresh on the same stream), so each cohort
    // re-traverses from the group's shared start and lands on the same
    // end cursor.
    const SimLength &len = group.front()->length;
    DistilledTrace::Cursor cur = group.front()->dcur;
    for (const std::vector<System *> &cohort : cohorts) {
        EngineSpan span("gang-replay",
                        strprintf("%s x%zu lanes",
                                  group.front()->prof.name.c_str(),
                                  cohort.size()));
        std::vector<Lane> lanes;
        lanes.reserve(cohort.size());
        for (System *sys : cohort) {
            lanes.push_back(Lane{sys->coreModel.get(),
                                 sys->lowerMem.get(), sys->spec.kind});
        }
        cur = group.front()->dcur;
        if (len.warmup_records > 0) {
            NURAPID_PROFILE_SCOPE(Core);
            replayRecords(lanes, cur, len.warmup_records);
        }
        for (System *sys : cohort) {
            sys->coreModel->resetStats();
            sys->lowerMem->resetStats();
        }
        for (System *sys : cohort)
            sys->attachObserversForMeasure();
        if (len.measure_records > 0) {
            NURAPID_PROFILE_SCOPE(Core);
            replayRecords(lanes, cur, len.measure_records);
        }
    }

    const double wall = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    const std::uint64_t total =
        len.warmup_records + len.measure_records;
    for (System *sys : group) {
        sys->dcur = cur;
        sys->consumed = total;
        // The traversal's cost was shared; identity with the per-org
        // path is modulo wall_seconds by contract.
        sys->wallSeconds = wall / static_cast<double>(group.size());
        RunMetrics m = sys->metrics();
        sys->exportObservability(m);
        out.push_back(std::move(m));
    }
    return out;
}

} // namespace nurapid
