/**
 * @file
 * Full simulated system: OoO core + L1 I/D + one lower-level cache
 * organization + a synthetic workload, with warmup/measure phases.
 */

#ifndef NURAPID_SIM_SYSTEM_HH
#define NURAPID_SIM_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "cpu/ooo_core.hh"
#include "energy/energy_model.hh"
#include "sim/config.hh"
#include "sim/obs/obs.hh"
#include "trace/distilled_trace.hh"
#include "trace/packed_trace.hh"
#include "trace/synthetic.hh"

namespace nurapid {

/** Everything the benches need from one finished measurement run. */
struct RunMetrics
{
    std::string workload;
    std::string organization;

    double ipc = 0;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;

    std::uint64_t l2_demand = 0;       //!< demand accesses into the L2
    std::uint64_t l2_hits = 0;
    std::uint64_t l2_misses = 0;
    double l2_apki = 0;                //!< demand accesses / kilo-inst

    /** Fraction of demand L2 accesses hitting each latency region
     *  (d-group / bank row / level); the remainder missed. */
    std::vector<double> region_frac;
    double miss_frac = 0;

    std::uint64_t promotions = 0;
    std::uint64_t demotions = 0;
    std::uint64_t block_moves = 0;
    std::uint64_t data_array_accesses = 0;  //!< d-group/bank data ops

    EnergyReport energy;

    /** Wall-clock cost of the warmup+measure simulation, seconds. For
     *  a memoized result this is the *original* simulation cost (what
     *  the cache hit saved), not the lookup time. */
    double wall_seconds = 0;

    /** True when the run engine served this result from its cache. */
    bool from_cache = false;

    /** Path of the interval-metrics JSONL this run wrote, empty when
     *  observability was off. Side-effect bookkeeping only: excluded
     *  from run-cache serialization and metric comparison. */
    std::string metrics_file;
};

class System
{
  public:
    System(const OrgSpec &org, const WorkloadProfile &profile,
           const SimLength &length = SimLength::fromEnv(),
           const CoreParams &core_params = defaultCoreParams());

    /** Runs warmup (stats then reset) and the measurement phase. */
    RunMetrics runAll();

    /** Lower-level phases for custom experiments. */
    void warmup();
    void measure();
    RunMetrics metrics() const;

    /**
     * Arms the flight recorder for this run. Call before measure():
     * the sink and recorder attach at measurement start, so warmup
     * stays unobserved and the epoch-0 baseline reflects the
     * post-reset counters. No-op when @p cfg requests nothing.
     */
    void enableObservability(const ObsConfig &cfg);

    /** Null unless enableObservability() armed them (for tests). */
    EventSink *observabilitySink() { return obsSink.get(); }
    IntervalRecorder *observabilityRecorder() { return obsRec.get(); }

    OooCore &core() { return *coreModel; }
    LowerMemory &lower() { return *lowerMem; }
    SetAssocCache &l1i() { return l1iCache; }
    SetAssocCache &l1d() { return l1dCache; }

  private:
    /** The gang replayer (sim/gang.hh) runs groups of Systems that
     *  share one distilled stream through a single traversal; it
     *  drives the same warmup/measure phase sequence runAll() does. */
    friend class GangReplayer;

    /** Feeds the next @p records workload records through the core via
     *  the devirtualized per-organization loop (or the live-generation
     *  fallback when NURAPID_TRACE_PREGEN=0). */
    void runRecords(std::uint64_t records);

    /** The attach half of measure(): arms the sink/recorder once, at
     *  measurement start (also called by the gang replayer). */
    void attachObserversForMeasure();

    OrgSpec spec;
    WorkloadProfile prof;
    SimLength length;
    std::unique_ptr<LowerMemory> lowerMem;
    SetAssocCache l1iCache;
    SetAssocCache l1dCache;
    std::unique_ptr<OooCore> coreModel;
    SyntheticTrace trace;  //!< live-generation fallback stream
    /** Shared pre-generated stream (null when pre-generation is off)
     *  and the count of records this system has consumed from it. */
    std::shared_ptr<const PackedTrace> packed;
    std::uint64_t consumed = 0;
    /** Shared distilled L2-event stream (null when distillation is
     *  off) and this system's replay position in it. Once any segment
     *  has replayed distilled, the L1/predictor tables are stale, so
     *  every later segment must replay distilled too — runRecords
     *  panics on a segment that does not end on a distillation cut. */
    std::shared_ptr<const DistilledTrace> distilled;
    DistilledTrace::Cursor dcur;
    /** Finishes the timeline and writes any requested export files,
     *  stamping the metrics path into @p m. */
    void exportObservability(RunMetrics &m);

    ProcessorEnergyParams energyParams;
    double wallSeconds = 0;  //!< set by runAll()
    ObsConfig obsCfg;
    std::unique_ptr<EventSink> obsSink;
    std::unique_ptr<IntervalRecorder> obsRec;
    bool obsAttached = false;
};

/** Instantiates the lower-memory organization an OrgSpec describes
 *  against the shared SRAM macro model (also used by the differential
 *  fuzzing harness to build candidates without a whole System). */
std::unique_ptr<LowerMemory> makeOrganization(const OrgSpec &spec);

/**
 * Runs one (organization, workload) pair end to end through the
 * process-wide run engine (sim/runner/run_engine.hh): memoized, and
 * parallel when batched via runSuite/RunEngine::runMany.
 */
RunMetrics runOne(const OrgSpec &org, const WorkloadProfile &profile,
                  const SimLength &length = SimLength::fromEnv());

/**
 * Runs a whole suite through the process-wide run engine; one
 * RunMetrics per workload, in suite order. Uncached runs fan out over
 * NURAPID_JOBS worker threads (default: hardware concurrency).
 */
std::vector<RunMetrics> runSuite(const OrgSpec &org,
                                 const std::vector<WorkloadProfile> &suite,
                                 const SimLength &length =
                                     SimLength::fromEnv());

/**
 * Runs several organizations over one workload suite as a single
 * engine batch, so the gang scheduler can fold same-workload runs
 * across organizations into one stream traversal (sim/gang.hh).
 * Result [i][j] is organization i on suite workload j.
 */
std::vector<std::vector<RunMetrics>>
runSuites(const std::vector<OrgSpec> &specs,
          const std::vector<WorkloadProfile> &suite,
          const SimLength &length = SimLength::fromEnv());

/**
 * Forces construction of the shared const singletons (SRAM macro
 * model, technology point, workload table) so parallel workers only
 * ever read them. Safe to call from any thread; idempotent.
 */
void touchSharedSimulationState();

/** Geometric-mean relative performance (ipc vs base ipc). */
double meanRelativePerformance(const std::vector<RunMetrics> &runs,
                               const std::vector<RunMetrics> &base);

} // namespace nurapid

#endif // NURAPID_SIM_SYSTEM_HH
