#include "sim/obs/obs.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace nurapid {

namespace {

/** Latency histogram width: plenty for on-chip latencies; longer
 *  memory latencies clamp into the last bucket, which still orders
 *  percentiles correctly. */
constexpr std::size_t kLatencyBuckets = 512;

std::uint64_t
envUint(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0') {
        warnOnce("ignoring unparseable %s='%s'", name, v);
        return fallback;
    }
    return parsed;
}

} // namespace

const char *
obsEventKindName(ObsEventKind kind)
{
    switch (kind) {
      case ObsEventKind::Hit: return "hit";
      case ObsEventKind::Miss: return "miss";
      case ObsEventKind::Promotion: return "promotion";
      case ObsEventKind::Demotion: return "demotion";
      case ObsEventKind::Swap: return "swap";
      case ObsEventKind::Eviction: return "eviction";
      case ObsEventKind::Writeback: return "writeback";
      case ObsEventKind::MshrStall: return "mshr_stall";
    }
    return "unknown";
}

EventSink::EventSink(bool keep_events, std::uint64_t ring_cap)
    : keepEvents(keep_events), cap(ring_cap)
{
    epochLatencyHist.resize(kLatencyBuckets);
    if (keepEvents)
        buffer.reserve(cap ? static_cast<std::size_t>(cap) : 4096);
}

void
EventSink::push(const ObsEvent &e)
{
    ++recordedCount;
    if (cap == 0 || buffer.size() < cap) {
        buffer.push_back(e);
        return;
    }
    // Ring full: flight-recorder semantics, overwrite the oldest.
    buffer[head] = e;
    head = (head + 1) % cap;
    ++droppedCount;
}

std::vector<ObsEvent>
EventSink::events() const
{
    std::vector<ObsEvent> out;
    out.reserve(buffer.size());
    // head is the oldest slot once the ring has wrapped.
    for (std::uint64_t i = head; i < buffer.size(); ++i)
        out.push_back(buffer[i]);
    for (std::uint64_t i = 0; i < head; ++i)
        out.push_back(buffer[i]);
    return out;
}

EventSink::EpochAggregates
EventSink::takeEpochAggregates()
{
    EpochAggregates agg;
    agg.accesses = epochAccessCount;
    agg.hits = epochHitCount;
    agg.avg_latency = epochLatency.mean();
    if (epochLatencyHist.total() > 0) {
        agg.lat_p50 = static_cast<std::uint32_t>(
            epochLatencyHist.percentileBucket(0.50));
        agg.lat_p95 = static_cast<std::uint32_t>(
            epochLatencyHist.percentileBucket(0.95));
    }
    epochAccessCount = 0;
    epochHitCount = 0;
    epochLatency.reset();
    epochLatencyHist.reset();
    return agg;
}

std::uint64_t
IntervalSnapshot::counter(const std::string &name) const
{
    for (const auto &kv : counters) {
        if (kv.first == name)
            return kv.second;
    }
    return 0;
}

IntervalRecorder::IntervalRecorder(std::uint64_t interval,
                                   IntervalSources sources,
                                   EventSink *event_sink)
    : epochInterval(interval), countdown(interval),
      src(std::move(sources)), sink(event_sink)
{
    panic_if(epochInterval == 0, "interval recorder with a zero epoch");
}

void
IntervalRecorder::begin()
{
    panic_if(!snapshots.empty(), "interval recorder started twice");
    takeSnapshot();
}

void
IntervalRecorder::finish()
{
    if (!snapshots.empty() && snapshots.back().refs == refCount)
        return;
    takeSnapshot();
}

void
IntervalRecorder::takeSnapshot()
{
    IntervalSnapshot s;
    s.refs = refCount;
    if (src.cycles)
        s.cycles = src.cycles();
    if (src.instructions)
        s.instructions = src.instructions();
    if (src.org_counters)
        s.counters = src.org_counters->counterValues();
    if (src.region_hits) {
        s.region_hits.resize(src.region_hits->buckets());
        for (std::size_t b = 0; b < s.region_hits.size(); ++b)
            s.region_hits[b] = src.region_hits->count(b);
    }
    if (src.occupancy)
        src.occupancy(s.occupancy);
    if (src.energy) {
        // Bitwise copies of the cumulative accumulators — no
        // re-summation, so the final snapshot equals the end-of-run
        // totals exactly.
        s.has_energy = true;
        s.energy_total_nj = src.energy->total_nj;
        s.energy_tag_nj = src.energy->tag_nj;
        s.energy_swap_nj = src.energy->swap_nj;
        s.energy_writeback_nj = src.energy->writeback_nj;
        s.energy_data_nj = src.energy->data_nj;
        if (src.lower_energy)
            s.energy_lower_nj = src.lower_energy();
    }
    if (sink) {
        const EventSink::EpochAggregates agg = sink->takeEpochAggregates();
        s.epoch_accesses = agg.accesses;
        s.epoch_hits = agg.hits;
        s.epoch_avg_latency = agg.avg_latency;
        s.epoch_lat_p50 = agg.lat_p50;
        s.epoch_lat_p95 = agg.lat_p95;
    }
    snapshots.push_back(std::move(s));
}

std::uint64_t
ObsConfig::resolvedInterval() const
{
    if (interval)
        return interval;
    const std::uint64_t v =
        envUint("NURAPID_OBS_INTERVAL", kDefaultInterval);
    return v ? v : kDefaultInterval;
}

std::uint64_t
ObsConfig::resolvedEventCap() const
{
    if (event_cap)
        return event_cap;
    return envUint("NURAPID_OBS_EVENT_CAP", 0);
}

} // namespace nurapid
