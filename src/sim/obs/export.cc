#include "sim/obs/export.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace nurapid {

namespace {

Json
metaHeader(const char *kind, const ObsExportMeta &meta)
{
    Json j = Json::object();
    j.set("meta", kind);
    j.set("workload", meta.workload);
    j.set("organization", meta.organization);
    if (meta.run_cache_bypassed)
        j.set("run_cache_bypassed", true);
    return j;
}

bool
writeLines(const std::string &path, const std::vector<Json> &lines)
{
    std::ofstream os(path, std::ios::trunc);
    if (!os)
        return false;
    for (const Json &j : lines)
        os << j.dump() << "\n";
    os.flush();
    return static_cast<bool>(os);
}

} // namespace

Json
obsEventToJson(const ObsEvent &e)
{
    Json j = Json::object();
    j.set("cycle", e.cycle);
    j.set("kind", obsEventKindName(e.kind));
    j.set("addr", e.addr);
    if (e.latency)
        j.set("latency", static_cast<std::uint64_t>(e.latency));
    if (e.from != ObsEvent::kNoRegion)
        j.set("from", static_cast<std::uint64_t>(e.from));
    if (e.to != ObsEvent::kNoRegion)
        j.set("to", static_cast<std::uint64_t>(e.to));
    if (e.flags & 1)
        j.set("dirty", true);
    return j;
}

Json
intervalSnapshotToJson(const IntervalSnapshot &s)
{
    Json j = Json::object();
    j.set("refs", s.refs);
    j.set("cycles", s.cycles);
    j.set("instructions", s.instructions);
    Json counters = Json::object();
    for (const auto &kv : s.counters)
        counters.set(kv.first, kv.second);
    j.set("counters", std::move(counters));
    Json hits = Json::array();
    for (std::uint64_t h : s.region_hits)
        hits.push(h);
    j.set("region_hits", std::move(hits));
    Json occ = Json::array();
    for (std::uint64_t o : s.occupancy)
        occ.push(o);
    j.set("occupancy", std::move(occ));
    j.set("epoch_accesses", s.epoch_accesses);
    j.set("epoch_hits", s.epoch_hits);
    j.set("epoch_avg_latency", s.epoch_avg_latency);
    j.set("epoch_lat_p50", static_cast<std::uint64_t>(s.epoch_lat_p50));
    j.set("epoch_lat_p95", static_cast<std::uint64_t>(s.epoch_lat_p95));
    if (s.has_energy) {
        Json e = Json::object();
        e.set("total_nj", s.energy_total_nj);
        e.set("tag_nj", s.energy_tag_nj);
        e.set("swap_nj", s.energy_swap_nj);
        e.set("writeback_nj", s.energy_writeback_nj);
        Json data = Json::array();
        for (double d : s.energy_data_nj)
            data.push(d);
        e.set("data_nj", std::move(data));
        e.set("lower_nj", s.energy_lower_nj);
        j.set("energy", std::move(e));
    }
    return j;
}

bool
writeEventsJsonl(const std::string &path, const ObsExportMeta &meta,
                 const EventSink &sink)
{
    std::vector<Json> lines;
    Json header = metaHeader("nurapid-events", meta);
    header.set("recorded", sink.recorded());
    header.set("dropped", sink.dropped());
    lines.push_back(std::move(header));
    for (const ObsEvent &e : sink.events())
        lines.push_back(obsEventToJson(e));
    return writeLines(path, lines);
}

bool
writeMetricsJsonl(const std::string &path, const ObsExportMeta &meta,
                  const IntervalRecorder &recorder)
{
    std::vector<Json> lines;
    Json header = metaHeader("nurapid-metrics", meta);
    header.set("interval", recorder.interval());
    const auto &timeline = recorder.timeline();
    const std::uint64_t regions =
        timeline.empty() ? 0 : timeline.front().region_hits.size();
    header.set("regions", regions);
    lines.push_back(std::move(header));
    for (const IntervalSnapshot &s : timeline)
        lines.push_back(intervalSnapshotToJson(s));
    return writeLines(path, lines);
}

bool
writePerfettoTrace(const std::string &path, const ObsExportMeta &meta,
                   const IntervalRecorder &recorder)
{
    const std::string track = meta.workload + " / " + meta.organization;
    Json events = Json::array();
    const auto &timeline = recorder.timeline();
    for (std::size_t i = 1; i < timeline.size(); ++i) {
        const IntervalSnapshot &prev = timeline[i - 1];
        const IntervalSnapshot &cur = timeline[i];
        // One slice per epoch; "microseconds" on the Perfetto axis are
        // simulated core cycles.
        Json slice = Json::object();
        slice.set("name", strprintf("epoch %zu", i - 1));
        slice.set("ph", "X");
        slice.set("cat", "epoch");
        slice.set("ts", prev.cycles);
        slice.set("dur", cur.cycles - prev.cycles);
        slice.set("pid", 1);
        slice.set("tid", 1);
        Json sargs = Json::object();
        sargs.set("refs", cur.refs - prev.refs);
        sargs.set("instructions", cur.instructions - prev.instructions);
        slice.set("args", std::move(sargs));
        events.push(std::move(slice));

        Json occ = Json::object();
        occ.set("name", "occupancy");
        occ.set("ph", "C");
        occ.set("ts", cur.cycles);
        occ.set("pid", 1);
        Json oargs = Json::object();
        for (std::size_t r = 0; r < cur.occupancy.size(); ++r)
            oargs.set(strprintf("region%zu", r), cur.occupancy[r]);
        occ.set("args", std::move(oargs));
        events.push(std::move(occ));

        Json derived = Json::object();
        derived.set("name", "access");
        derived.set("ph", "C");
        derived.set("ts", cur.cycles);
        derived.set("pid", 1);
        Json dargs = Json::object();
        const double hit_share = cur.epoch_accesses
            ? static_cast<double>(cur.epoch_hits) /
                static_cast<double>(cur.epoch_accesses)
            : 0.0;
        dargs.set("hit_share", hit_share);
        dargs.set("avg_latency", cur.epoch_avg_latency);
        derived.set("args", std::move(dargs));
        events.push(std::move(derived));

        if (cur.has_energy) {
            // Per-epoch energy deltas by component; the data arrays
            // are folded into one series for a readable stacked track.
            Json en = Json::object();
            en.set("name", "energy (nJ/epoch)");
            en.set("ph", "C");
            en.set("ts", cur.cycles);
            en.set("pid", 1);
            double data_cur = 0, data_prev = 0;
            for (double d : cur.energy_data_nj)
                data_cur += d;
            for (double d : prev.energy_data_nj)
                data_prev += d;
            Json eargs = Json::object();
            eargs.set("tag", cur.energy_tag_nj - prev.energy_tag_nj);
            eargs.set("data", data_cur - data_prev);
            eargs.set("swap", cur.energy_swap_nj - prev.energy_swap_nj);
            eargs.set("writeback",
                      cur.energy_writeback_nj - prev.energy_writeback_nj);
            eargs.set("lower",
                      cur.energy_lower_nj - prev.energy_lower_nj);
            en.set("args", std::move(eargs));
            events.push(std::move(en));
        }
    }
    Json root = Json::object();
    root.set("displayTimeUnit", "ns");
    Json mdata = Json::object();
    mdata.set("run", track);
    root.set("metadata", std::move(mdata));
    root.set("traceEvents", std::move(events));

    std::ofstream os(path, std::ios::trunc);
    if (!os)
        return false;
    os << root.dump() << "\n";
    os.flush();
    return static_cast<bool>(os);
}

bool
readJsonlFile(const std::string &path, MetricsDoc &out, std::string *error)
{
    std::ifstream is(path);
    if (!is) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    out.meta = Json();
    out.epochs.clear();
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::string err;
        Json j = Json::parse(line, &err);
        if (j.isNull()) {
            if (error) {
                *error = strprintf("%s:%zu: %s", path.c_str(), lineno,
                                   err.c_str());
            }
            return false;
        }
        if (lineno == 1)
            out.meta = std::move(j);
        else
            out.epochs.push_back(std::move(j));
    }
    if (out.meta.isNull()) {
        if (error)
            *error = path + ": empty file";
        return false;
    }
    return true;
}

} // namespace nurapid
