/**
 * @file
 * Exporters for the observability layer: JSONL event and metrics
 * dumps plus a Chrome/Perfetto trace.json view of the epoch timeline.
 *
 * File formats (all plain text, one JSON value per line for JSONL):
 *
 *  events JSONL   line 1: {"meta":"nurapid-events", workload, org,
 *                 recorded, dropped}; then one line per event with
 *                 cycle, kind, addr, latency, from/to region, dirty.
 *
 *  metrics JSONL  line 1: {"meta":"nurapid-metrics", workload, org,
 *                 interval, regions, run_cache_bypassed}; then one
 *                 line per snapshot
 *                 (epoch 0 is the measurement-start baseline) with
 *                 cumulative refs/cycles/instructions/counters/
 *                 region_hits, instantaneous occupancy, epoch-local
 *                 latency aggregates, and (when the organization has
 *                 an EnergyBreakdown) a cumulative "energy" object
 *                 with total/tag/swap/writeback/lower plus per-region
 *                 data nJ. Consumers difference adjacent lines for
 *                 per-epoch deltas; the final line equals the
 *                 end-of-run Stats counters and energy totals exactly.
 *
 *  perfetto       a {"traceEvents":[...]} Chrome trace: one "X" slice
 *                 per epoch (microsecond timeline = simulated cycles)
 *                 and "C" counter tracks for per-region occupancy,
 *                 hit share, average access latency, and per-epoch
 *                 energy by component. Load in chrome://tracing or
 *                 ui.perfetto.dev.
 */

#ifndef NURAPID_SIM_OBS_EXPORT_HH
#define NURAPID_SIM_OBS_EXPORT_HH

#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/obs/obs.hh"

namespace nurapid {

/** Run identity stamped into every export header. */
struct ObsExportMeta
{
    std::string workload;
    std::string organization;
    /** Observed runs are always simulated fresh (never served from or
     *  stored into the run cache); noted in the header so report
     *  tooling can flag uncacheable runs. */
    bool run_cache_bypassed = false;
};

/** One event as a JSONL line value (shared by writer and tests). */
Json obsEventToJson(const ObsEvent &e);

/** One snapshot as a JSONL line value. */
Json intervalSnapshotToJson(const IntervalSnapshot &s);

/** Writes the sink's event buffer as JSONL; false on I/O failure. */
bool writeEventsJsonl(const std::string &path, const ObsExportMeta &meta,
                      const EventSink &sink);

/** Writes the recorder's timeline as JSONL; false on I/O failure. */
bool writeMetricsJsonl(const std::string &path, const ObsExportMeta &meta,
                       const IntervalRecorder &recorder);

/** Writes the timeline as a Chrome trace; false on I/O failure. */
bool writePerfettoTrace(const std::string &path, const ObsExportMeta &meta,
                        const IntervalRecorder &recorder);

/** A metrics JSONL read back: header line + one Json per snapshot. */
struct MetricsDoc
{
    Json meta;
    std::vector<Json> epochs;
};

/** Parses a metrics (or events) JSONL file line by line with the
 *  common/ JSON parser; false (with *error set) on the first
 *  unparseable line or unreadable file. */
bool readJsonlFile(const std::string &path, MetricsDoc &out,
                   std::string *error);

} // namespace nurapid

#endif // NURAPID_SIM_OBS_EXPORT_HH
