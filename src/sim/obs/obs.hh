/**
 * @file
 * Flight-recorder observability layer: per-run event tracing and an
 * interval-metrics timeline for the lower-memory organizations.
 *
 * The paper's central claims are distributional — Figure 4/5 describe
 * where hits land across d-groups and how placement policies shift
 * that distribution over time — but end-of-run counters collapse the
 * whole run into one bar. This layer records *when* things happen:
 *
 *  - EventSink: a per-run, thread-confined recorder the five
 *    organizations feed with typed events (hit/miss with d-group or
 *    bank-row distance, promotion, demotion, swap, eviction,
 *    writeback, MSHR stall). Hooks are always compiled and cost one
 *    predictably-not-taken branch when no sink is attached; each run's
 *    sink is owned by exactly one worker thread, so recording is
 *    lock-free by construction. Hooks live at the organization layer
 *    (inside access()/promote()/demote paths shared by the live loop
 *    and the distilled replay), so both execution modes produce the
 *    identical event stream for the same (config, trace) pair.
 *
 *  - IntervalRecorder: epoch-sliced snapshots of every registered
 *    organization counter plus derived series (per-region occupancy
 *    and hit share, average/percentile access latency, demotion
 *    rate). Epochs are reference-count windows (default 64K refs,
 *    NURAPID_OBS_INTERVAL); the core ticks the recorder once per
 *    retired reference in runTyped and runDistilled alike. Snapshots
 *    are restricted to values that are per-record exact in both paths
 *    (cycles, instructions, organization counters, region hits,
 *    occupancy), so the timeline too is bit-identical live vs
 *    distilled.
 *
 *    Snapshots also sample the organization's cumulative
 *    EnergyBreakdown accumulators (plus off-chip energy), giving the
 *    Figure-10-style where-does-the-energy-go series; because the
 *    cumulative doubles are copied bitwise, the final snapshot
 *    reconciles exactly with the end-of-run energy totals.
 *
 * Layering: like sim/audit, this header depends only on common/ and
 * the header-only energy accumulator (energy/energy_breakdown.hh) so
 * the mem/nuca/nurapid/cpu libraries can include it without an upward
 * link dependency; runtime state lives in the nurapid_obs library.
 */

#ifndef NURAPID_SIM_OBS_OBS_HH
#define NURAPID_SIM_OBS_OBS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "energy/energy_breakdown.hh"

namespace nurapid {

/** What happened inside the lower-memory organization. */
enum class ObsEventKind : std::uint8_t
{
    Hit,        //!< demand hit; region = d-group / bank row / level
    Miss,       //!< demand miss to memory
    Promotion,  //!< block moved inward into a free frame/way
    Demotion,   //!< block moved outward (cascade or swap partner)
    Swap,       //!< atomic exchange: hit block inward, victim outward
    Eviction,   //!< block left the organization entirely
    Writeback,  //!< L1 dirty eviction absorbed by the organization
    MshrStall,  //!< core stalled for a free miss register
};

const char *obsEventKindName(ObsEventKind kind);

/** One recorded event; 24 bytes, trivially copyable. */
struct ObsEvent
{
    /** Region value for events where no region is meaningful. */
    static constexpr std::uint8_t kNoRegion = 0xff;

    std::uint64_t cycle = 0;  //!< core cycle the access arrived
    Addr addr = 0;            //!< block-aligned address (0 if unknown)
    std::uint32_t latency = 0;  //!< access latency / stall cycles
    ObsEventKind kind = ObsEventKind::Hit;
    std::uint8_t from = kNoRegion;  //!< source region
    std::uint8_t to = kNoRegion;    //!< destination region
    std::uint8_t flags = 0;         //!< bit 0: dirty
};

/**
 * Per-run event recorder. Owned by one System (hence one worker
 * thread); organizations hold a raw pointer that is null unless
 * observability was enabled for the run.
 *
 * Always maintains cheap epoch-local latency aggregates (read and
 * reset by the IntervalRecorder at each epoch boundary) so the
 * metrics timeline works even when event buffering is off.
 */
class EventSink
{
  public:
    /** @param keep_events buffer events (vs aggregates only);
     *  @param cap ring capacity, 0 = unbounded. When the ring is full
     *  the oldest events are overwritten (flight-recorder semantics)
     *  and dropped() counts the overwrites. */
    explicit EventSink(bool keep_events = true, std::uint64_t cap = 0);

    void
    record(const ObsEvent &e)
    {
        if (keepEvents)
            push(e);
        if (e.kind == ObsEventKind::Hit || e.kind == ObsEventKind::Miss) {
            ++epochAccessCount;
            epochHitCount += e.kind == ObsEventKind::Hit;
            epochLatency.sample(e.latency);
            epochLatencyHist.sample(e.latency);
        }
    }

    void
    hit(Cycle now, Addr addr, std::uint8_t region, Cycles latency)
    {
        record({now, addr, latency, ObsEventKind::Hit,
                ObsEvent::kNoRegion, region, 0});
    }

    void
    miss(Cycle now, Addr addr, Cycles latency)
    {
        record({now, addr, latency, ObsEventKind::Miss,
                ObsEvent::kNoRegion, ObsEvent::kNoRegion, 0});
    }

    void
    promotion(Cycle now, Addr addr, std::uint8_t from, std::uint8_t to)
    {
        record({now, addr, 0, ObsEventKind::Promotion, from, to, 0});
    }

    void
    demotion(Cycle now, Addr addr, std::uint8_t from, std::uint8_t to)
    {
        record({now, addr, 0, ObsEventKind::Demotion, from, to, 0});
    }

    void
    swap(Cycle now, Addr addr, std::uint8_t from, std::uint8_t to)
    {
        record({now, addr, 0, ObsEventKind::Swap, from, to, 0});
    }

    void
    eviction(Cycle now, Addr addr, bool dirty)
    {
        record({now, addr, 0, ObsEventKind::Eviction, ObsEvent::kNoRegion,
                ObsEvent::kNoRegion,
                static_cast<std::uint8_t>(dirty ? 1 : 0)});
    }

    void
    writeback(Cycle now, Addr addr)
    {
        record({now, addr, 0, ObsEventKind::Writeback, ObsEvent::kNoRegion,
                ObsEvent::kNoRegion, 1});
    }

    void
    mshrStall(Cycle now, Addr addr, Cycles waited)
    {
        record({now, addr, waited, ObsEventKind::MshrStall,
                ObsEvent::kNoRegion, ObsEvent::kNoRegion, 0});
    }

    /** Recorded events in order (oldest first, even after wrap). */
    std::vector<ObsEvent> events() const;

    std::uint64_t recorded() const { return recordedCount; }
    std::uint64_t dropped() const { return droppedCount; }
    bool buffering() const { return keepEvents; }

    /** Epoch-local aggregates, read+reset at each epoch boundary. */
    struct EpochAggregates
    {
        std::uint64_t accesses = 0;  //!< demand hits + misses
        std::uint64_t hits = 0;
        double avg_latency = 0;
        std::uint32_t lat_p50 = 0;
        std::uint32_t lat_p95 = 0;
    };
    EpochAggregates takeEpochAggregates();

  private:
    void push(const ObsEvent &e);

    bool keepEvents;
    std::uint64_t cap;            //!< 0 = unbounded
    std::uint64_t recordedCount = 0;
    std::uint64_t droppedCount = 0;
    std::uint64_t head = 0;       //!< next overwrite slot once wrapped
    std::vector<ObsEvent> buffer;

    std::uint64_t epochAccessCount = 0;
    std::uint64_t epochHitCount = 0;
    Average epochLatency;
    Histogram epochLatencyHist;
};

/**
 * One cumulative snapshot of the observable run state at an epoch
 * boundary. All values except occupancy and the epoch-local latency
 * aggregates are cumulative since measurement start, so consumers
 * difference adjacent snapshots to get per-epoch deltas and the final
 * snapshot equals the end-of-run Stats counters exactly.
 */
struct IntervalSnapshot
{
    std::uint64_t refs = 0;          //!< references retired so far
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;

    /** Every organization counter, in registration order. */
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    /** Cumulative demand hits per region (regionHits histogram). */
    std::vector<std::uint64_t> region_hits;
    /** Instantaneous valid-block count per region. */
    std::vector<std::uint64_t> occupancy;

    /**
     * Cumulative dynamic-energy attribution, sampled straight from the
     * organization's EnergyBreakdown accumulators — doubles copied
     * bitwise, never re-summed, so the final snapshot reconciles
     * exactly with the end-of-run EnergyModel totals. Per-epoch
     * figures are deltas of consecutive snapshots, derived at render
     * time only. has_energy is false when the organization exposes no
     * breakdown (the series is then omitted from exports).
     */
    bool has_energy = false;
    double energy_total_nj = 0;      //!< == cacheEnergyNJ() at sample time
    double energy_tag_nj = 0;
    double energy_swap_nj = 0;
    double energy_writeback_nj = 0;
    std::vector<double> energy_data_nj;  //!< per latency region
    /** Off-chip energy: dynamicEnergyNJ() - cacheEnergyNJ(), the same
     *  expression EnergyReport::memory_nj uses. */
    double energy_lower_nj = 0;

    /** Epoch-local (since the previous snapshot). */
    std::uint64_t epoch_accesses = 0;
    std::uint64_t epoch_hits = 0;
    double epoch_avg_latency = 0;
    std::uint32_t epoch_lat_p50 = 0;
    std::uint32_t epoch_lat_p95 = 0;

    std::uint64_t counter(const std::string &name) const;
};

/** Where the recorder samples its snapshot values from. */
struct IntervalSources
{
    const StatGroup *org_counters = nullptr;
    const Histogram *region_hits = nullptr;
    std::function<std::uint64_t()> cycles;
    std::function<std::uint64_t()> instructions;
    std::function<void(std::vector<std::uint64_t> &)> occupancy;
    /** Cumulative per-component cache energy; null = no energy series. */
    const EnergyBreakdown *energy = nullptr;
    /** Cumulative off-chip (lower-memory) dynamic energy in nJ. */
    std::function<double()> lower_energy;
};

/**
 * Epoch clock: the core ticks it once per retired reference; every
 * @p interval ticks it snapshots the sources. begin() records the
 * epoch-0 baseline, finish() the final (possibly partial) epoch.
 */
class IntervalRecorder
{
  public:
    IntervalRecorder(std::uint64_t interval, IntervalSources sources,
                     EventSink *sink);

    /** Snapshot the baseline; call at measurement start. */
    void begin();

    /** One retired reference. Inline countdown: the common case is a
     *  decrement and a not-taken branch. */
    void
    tick()
    {
        ++refCount;
        if (--countdown == 0) [[unlikely]] {
            countdown = epochInterval;
            takeSnapshot();
        }
    }

    /** Snapshot the final partial epoch (no-op when the run ended
     *  exactly on a boundary or nothing ticked since). Idempotent. */
    void finish();

    std::uint64_t interval() const { return epochInterval; }
    std::uint64_t refs() const { return refCount; }

    /** timeline()[0] is the begin() baseline (refs = 0). */
    const std::vector<IntervalSnapshot> &timeline() const
    {
        return snapshots;
    }

  private:
    void takeSnapshot();

    std::uint64_t epochInterval;
    std::uint64_t countdown;
    std::uint64_t refCount = 0;
    IntervalSources src;
    EventSink *sink;
    std::vector<IntervalSnapshot> snapshots;
};

/** Per-run observability request, carried by RunRequest / System. */
struct ObsConfig
{
    /** Default epoch length (references) when neither the config nor
     *  NURAPID_OBS_INTERVAL overrides it. */
    static constexpr std::uint64_t kDefaultInterval = 65536;

    bool record_events = false;   //!< buffer the typed event stream
    bool record_metrics = false;  //!< build the interval timeline
    std::uint64_t interval = 0;   //!< refs/epoch; 0 = env default
    std::uint64_t event_cap = 0;  //!< ring size; 0 = env default

    std::string events_path;    //!< JSONL event dump (--trace-out)
    std::string metrics_path;   //!< JSONL timeline (--metrics-out)
    std::string perfetto_path;  //!< Chrome trace.json (--perfetto-out)

    /** Set by the run engine (not callers): this observed run was
     *  simulated fresh because observed runs never consult or fill
     *  the run cache. Exports note it in the JSONL header so
     *  nurapid_report can flag uncacheable runs. */
    bool run_cache_bypassed = false;

    bool enabled() const { return record_events || record_metrics; }

    /** interval, else NURAPID_OBS_INTERVAL, else kDefaultInterval. */
    std::uint64_t resolvedInterval() const;

    /** event_cap, else NURAPID_OBS_EVENT_CAP, else 0 (unbounded). */
    std::uint64_t resolvedEventCap() const;
};

} // namespace nurapid

#endif // NURAPID_SIM_OBS_OBS_HH
