#include "sim/profile/profile.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace nurapid {
namespace prof {

namespace {

constexpr unsigned kBuckets = static_cast<unsigned>(Bucket::kCount);

std::atomic<std::uint64_t> buckets[kBuckets];
std::once_flag footer_armed;

const char *const kNames[kBuckets] = {
    "trace-gen", "distill", "core", "l2-org", "probe", "recency", "gang",
    "stats",
};

double
secs(std::uint64_t ns)
{
    return static_cast<double>(ns) * 1e-9;
}

void
printFooter()
{
    std::uint64_t total = 0;
    for (unsigned b = 0; b < kBuckets; ++b)
        total += buckets[b].load();
    if (total == 0)
        return;
    // l2-org time is spent inside the core loop: report it as a slice
    // of the core bucket, not as an addend.
    const std::uint64_t core = buckets[
        static_cast<unsigned>(Bucket::Core)].load();
    const std::uint64_t l2 = buckets[
        static_cast<unsigned>(Bucket::L2Org)].load();
    const std::uint64_t probe = buckets[
        static_cast<unsigned>(Bucket::Probe)].load();
    const std::uint64_t recency = buckets[
        static_cast<unsigned>(Bucket::Recency)].load();
    const std::uint64_t gang = buckets[
        static_cast<unsigned>(Bucket::Gang)].load();
    const std::uint64_t gen = buckets[
        static_cast<unsigned>(Bucket::TraceGen)].load();
    const std::uint64_t distill = buckets[
        static_cast<unsigned>(Bucket::Distill)].load();
    const std::uint64_t stats = buckets[
        static_cast<unsigned>(Bucket::Stats)].load();
    const double attributed = secs(gen + distill + core + stats);
    std::fprintf(stderr,
                 "[profile] trace-gen %.3fs | distill %.3fs | core %.3fs "
                 "(l2-org %.3fs, %.1f%%; probe %.3fs; recency %.3fs; "
                 "gang %.3fs) | stats %.3fs | attributed %.3fs\n",
                 secs(gen), secs(distill), secs(core), secs(l2),
                 core ? 100.0 * l2 / core : 0.0, secs(probe),
                 secs(recency), secs(gang), secs(stats), attributed);
}

} // namespace

void
add(Bucket bucket, std::uint64_t nanos)
{
    std::call_once(footer_armed, [] { std::atexit(printFooter); });
    buckets[static_cast<unsigned>(bucket)].fetch_add(
        nanos, std::memory_order_relaxed);
}

std::uint64_t
nanos(Bucket bucket)
{
    return buckets[static_cast<unsigned>(bucket)].load();
}

void
resetAll()
{
    for (unsigned b = 0; b < kBuckets; ++b)
        buckets[b].store(0);
}

} // namespace prof
} // namespace nurapid
