/**
 * @file
 * Cycle-budget profiler for the per-reference simulation loop.
 *
 * Attributes sweep wall time to four buckets so perf claims are
 * measured, not asserted:
 *
 *   trace-gen  pre-generating packed workload streams (trace/)
 *   distill    building/loading distilled L2-event streams (trace/)
 *   core       the warmup/measure loop (cpu/ + L1s + replay)
 *   l2-org     LowerMemory::access calls made from that loop
 *              (a subset of the core bucket, reported separately)
 *   probe      tag-array probes inside the NUCA organizations'
 *              access paths (a slice of l2-org, reported separately
 *              so SoA/SIMD probe-kernel wins are visible)
 *   recency    LRU rank-plane touches and victim scans (a slice of
 *              l2-org, reported separately so packed-rank wins over
 *              the old stamp/chain recency state are visible)
 *   gang       multi-organization gang traversals (sim/gang.hh; a
 *              subset of the core bucket, reported separately)
 *   stats      metrics extraction + energy accounting
 *
 * Like the audit hooks, the probes are compiled out by default:
 * configure with -DNURAPID_PROFILE=ON to enable them. An enabled build
 * prints a one-line footer per process to stderr at exit (stderr so
 * bench stdout stays byte-comparable across builds). Accumulation is
 * atomic, so the RunEngine's worker threads can share the buckets.
 */

#ifndef NURAPID_SIM_PROFILE_PROFILE_HH
#define NURAPID_SIM_PROFILE_PROFILE_HH

#include <chrono>
#include <cstdint>

namespace nurapid {
namespace prof {

enum class Bucket : unsigned {
    TraceGen,
    Distill,
    Core,
    L2Org,
    Probe,    //!< NUCA tag-array probes (a slice of the l2-org bucket)
    Recency,  //!< LRU rank touches/scans (a slice of the l2-org bucket)
    Gang,     //!< gang stream traversals (a slice of the core bucket)
    Stats,
    kCount,
};

/** Adds @p nanos to @p bucket (thread-safe); arms the exit footer. */
void add(Bucket bucket, std::uint64_t nanos);

/** Nanoseconds accumulated in @p bucket so far. */
std::uint64_t nanos(Bucket bucket);

/** Zeroes every bucket (tests). */
void resetAll();

/** RAII probe: charges its lifetime to one bucket. */
class Scope
{
  public:
    explicit Scope(Bucket b)
        : bucket(b), start(std::chrono::steady_clock::now())
    {
    }

    ~Scope()
    {
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start).count();
        add(bucket, static_cast<std::uint64_t>(ns));
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    Bucket bucket;
    std::chrono::steady_clock::time_point start;
};

} // namespace prof
} // namespace nurapid

#if defined(NURAPID_PROFILE_ENABLED)
#define NURAPID_PROFILE_CAT2(a, b) a##b
#define NURAPID_PROFILE_CAT(a, b) NURAPID_PROFILE_CAT2(a, b)
/** Charges the rest of the enclosing scope to @p bucket. */
#define NURAPID_PROFILE_SCOPE(bucket)                                    \
    ::nurapid::prof::Scope NURAPID_PROFILE_CAT(nurapid_prof_scope_,      \
                                               __LINE__)(               \
        ::nurapid::prof::Bucket::bucket)
#else
#define NURAPID_PROFILE_SCOPE(bucket) ((void)0)
#endif

#endif // NURAPID_SIM_PROFILE_PROFILE_HH
