#include "sim/runner/run_cache.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/fingerprint.hh"
#include "common/logging.hh"

namespace nurapid {

namespace {

void
fingerprintMemory(Fingerprint &fp, const MainMemory::Params &m)
{
    fp.field("mem.base_latency", static_cast<std::uint64_t>(m.base_latency));
    fp.field("mem.cycles_per_8b",
             static_cast<std::uint64_t>(m.cycles_per_8b));
    fp.field("mem.access_nj", m.access_nj);
}

void
fingerprintCacheOrg(Fingerprint &fp, const char *tag, const CacheOrg &org)
{
    fp.field(tag, org.name);
    fp.field("capacity", org.capacity_bytes);
    fp.field("assoc", org.assoc);
    fp.field("block", org.block_bytes);
    fp.field("repl", static_cast<std::uint64_t>(org.repl));
    fp.field("repl_seed", org.repl_seed);
}

void
fingerprintSpec(Fingerprint &fp, const OrgSpec &spec)
{
    fp.field("org", spec.description());
    fp.field("kind", static_cast<std::uint64_t>(spec.kind));
    switch (spec.kind) {
      case OrgKind::BaseL2L3:
        fingerprintCacheOrg(fp, "l2", spec.base.l2);
        fingerprintCacheOrg(fp, "l3", spec.base.l3);
        fp.field("l2_latency",
                 static_cast<std::uint64_t>(spec.base.l2_latency));
        fp.field("l3_latency",
                 static_cast<std::uint64_t>(spec.base.l3_latency));
        fingerprintMemory(fp, spec.base.memory);
        break;
      case OrgKind::DNuca:
        fp.field("capacity", spec.dnuca.capacity_bytes);
        fp.field("assoc", spec.dnuca.assoc);
        fp.field("block", spec.dnuca.block_bytes);
        fp.field("rows", spec.dnuca.rows);
        fp.field("cols", spec.dnuca.cols);
        fp.field("search", dnucaSearchName(spec.dnuca.search));
        fp.field("partial_tag_bits", spec.dnuca.partial_tag_bits);
        fp.field("promote_on_hit", spec.dnuca.promote_on_hit);
        fingerprintMemory(fp, spec.dnuca.memory);
        break;
      case OrgKind::SNuca:
        fp.field("capacity", spec.snuca.capacity_bytes);
        fp.field("assoc", spec.snuca.assoc);
        fp.field("block", spec.snuca.block_bytes);
        fp.field("rows", spec.snuca.rows);
        fp.field("cols", spec.snuca.cols);
        fingerprintMemory(fp, spec.snuca.memory);
        break;
      case OrgKind::NuRapid:
        fp.field("capacity", spec.nurapid.capacity_bytes);
        fp.field("assoc", spec.nurapid.assoc);
        fp.field("block", spec.nurapid.block_bytes);
        fp.field("dgroups", spec.nurapid.num_dgroups);
        fp.field("promotion",
                 promotionPolicyName(spec.nurapid.promotion));
        fp.field("drepl", distanceReplName(spec.nurapid.distance_repl));
        fp.field("single_port", spec.nurapid.single_port);
        fp.field("ideal", spec.nurapid.ideal_fastest);
        fp.field("restriction", spec.nurapid.frame_restriction);
        fp.field("seed", spec.nurapid.seed);
        fingerprintMemory(fp, spec.nurapid.memory);
        break;
      case OrgKind::CoupledSA:
        fp.field("capacity", spec.coupled.capacity_bytes);
        fp.field("assoc", spec.coupled.assoc);
        fp.field("block", spec.coupled.block_bytes);
        fp.field("dgroups", spec.coupled.num_dgroups);
        fp.field("promotion",
                 promotionPolicyName(spec.coupled.promotion));
        fp.field("single_port", spec.coupled.single_port);
        fingerprintMemory(fp, spec.coupled.memory);
        break;
    }
}

void
fingerprintProfile(Fingerprint &fp, const WorkloadProfile &p)
{
    fp.field("workload", p.name);
    fp.field("fp", p.fp);
    fp.field("high_load", p.high_load);
    fp.field("base_cpi", p.base_cpi);
    fp.field("mem_refs_per_kinst", p.mem_refs_per_kinst);
    fp.field("store_frac", p.store_frac);
    fp.field("seq_frac", p.seq_frac);
    fp.field("dep_frac", p.dep_frac);
    fp.field("critical_frac", p.critical_frac);
    fp.field("drift_period", p.drift_period);
    fp.field("ifetch_refs_per_kinst", p.ifetch_refs_per_kinst);
    fp.field("code_bytes", p.code_bytes);
    fp.field("branches_per_kinst", p.branches_per_kinst);
    fp.field("hard_branch_frac", p.hard_branch_frac);
    fp.field("hard_branch_bias", p.hard_branch_bias);
    fp.field("footprint", p.footprint_bytes);
    fp.field("seed", p.seed);
    fp.field("layers", static_cast<std::uint64_t>(p.layers.size()));
    for (const auto &layer : p.layers) {
        fp.field("layer.bytes", layer.bytes);
        fp.field("layer.weight", layer.weight);
        fp.field("layer.segments", layer.segments);
        fp.field("layer.colliding", layer.colliding_segments);
    }
}

Json
energyToJson(const EnergyReport &e)
{
    Json j = Json::object();
    j.set("core_nj", Json(e.core_nj));
    j.set("l1_nj", Json(e.l1_nj));
    j.set("l2_cache_nj", Json(e.l2_cache_nj));
    j.set("memory_nj", Json(e.memory_nj));
    j.set("total_nj", Json(e.total_nj));
    j.set("cycles", Json(e.cycles));
    j.set("edp", Json(e.edp));
    return j;
}

void
energyFromJson(const Json &j, EnergyReport &e)
{
    e.core_nj = j.get("core_nj").asDouble();
    e.l1_nj = j.get("l1_nj").asDouble();
    e.l2_cache_nj = j.get("l2_cache_nj").asDouble();
    e.memory_nj = j.get("memory_nj").asDouble();
    e.total_nj = j.get("total_nj").asDouble();
    e.cycles = j.get("cycles").asUint();
    e.edp = j.get("edp").asDouble();
}

} // namespace

RunKey
fingerprintRun(const OrgSpec &spec, const WorkloadProfile &profile,
               const SimLength &length, const GangMode &gang)
{
    Fingerprint fp;
    fp.field("schema", kRunCacheSchema);
    fingerprintSpec(fp, spec);
    fingerprintProfile(fp, profile);
    fp.field("warmup", length.warmup_records);
    fp.field("measure", length.measure_records);
    fp.field("gang", gang.enabled);
    fp.field("gang_width", gang.width_cap);
    return {fp.key(), fp.digest()};
}

std::string
gangGroupKey(const WorkloadProfile &profile, const SimLength &length)
{
    Fingerprint fp;
    fingerprintProfile(fp, profile);
    fp.field("warmup", length.warmup_records);
    fp.field("measure", length.measure_records);
    return fp.key();
}

Json
runMetricsToJson(const RunMetrics &m)
{
    Json j = Json::object();
    j.set("workload", Json(m.workload));
    j.set("organization", Json(m.organization));
    j.set("ipc", Json(m.ipc));
    j.set("cycles", Json(m.cycles));
    j.set("instructions", Json(m.instructions));
    j.set("l2_demand", Json(m.l2_demand));
    j.set("l2_hits", Json(m.l2_hits));
    j.set("l2_misses", Json(m.l2_misses));
    j.set("l2_apki", Json(m.l2_apki));
    Json frac = Json::array();
    for (double f : m.region_frac)
        frac.push(Json(f));
    j.set("region_frac", std::move(frac));
    j.set("miss_frac", Json(m.miss_frac));
    j.set("promotions", Json(m.promotions));
    j.set("demotions", Json(m.demotions));
    j.set("block_moves", Json(m.block_moves));
    j.set("data_array_accesses", Json(m.data_array_accesses));
    j.set("energy", energyToJson(m.energy));
    j.set("wall_seconds", Json(m.wall_seconds));
    return j;
}

bool
runMetricsFromJson(const Json &j, RunMetrics &out)
{
    if (!j.isObject() || !j.has("ipc") || !j.has("energy"))
        return false;
    out = RunMetrics{};
    out.workload = j.get("workload").asString();
    out.organization = j.get("organization").asString();
    out.ipc = j.get("ipc").asDouble();
    out.cycles = j.get("cycles").asUint();
    out.instructions = j.get("instructions").asUint();
    out.l2_demand = j.get("l2_demand").asUint();
    out.l2_hits = j.get("l2_hits").asUint();
    out.l2_misses = j.get("l2_misses").asUint();
    out.l2_apki = j.get("l2_apki").asDouble();
    for (const Json &f : j.get("region_frac").items())
        out.region_frac.push_back(f.asDouble());
    out.miss_frac = j.get("miss_frac").asDouble();
    out.promotions = j.get("promotions").asUint();
    out.demotions = j.get("demotions").asUint();
    out.block_moves = j.get("block_moves").asUint();
    out.data_array_accesses = j.get("data_array_accesses").asUint();
    energyFromJson(j.get("energy"), out.energy);
    out.wall_seconds = j.get("wall_seconds").asDouble();
    return true;
}

bool
identicalMetrics(const RunMetrics &a, const RunMetrics &b)
{
    return a.workload == b.workload &&
        a.organization == b.organization &&
        a.ipc == b.ipc && a.cycles == b.cycles &&
        a.instructions == b.instructions &&
        a.l2_demand == b.l2_demand && a.l2_hits == b.l2_hits &&
        a.l2_misses == b.l2_misses && a.l2_apki == b.l2_apki &&
        a.region_frac == b.region_frac && a.miss_frac == b.miss_frac &&
        a.promotions == b.promotions && a.demotions == b.demotions &&
        a.block_moves == b.block_moves &&
        a.data_array_accesses == b.data_array_accesses &&
        a.energy.core_nj == b.energy.core_nj &&
        a.energy.l1_nj == b.energy.l1_nj &&
        a.energy.l2_cache_nj == b.energy.l2_cache_nj &&
        a.energy.memory_nj == b.energy.memory_nj &&
        a.energy.total_nj == b.energy.total_nj &&
        a.energy.cycles == b.energy.cycles &&
        a.energy.edp == b.energy.edp;
}

bool
RunCache::lookup(const RunKey &key, RunMetrics &out) const
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = entries.find(key.digest);
    if (it == entries.end() || it->second.key != key.key)
        return false;
    out = it->second.metrics;
    return true;
}

void
RunCache::store(const RunKey &key, const RunMetrics &metrics)
{
    std::lock_guard<std::mutex> lock(mtx);
    entries[key.digest] = Entry{key.key, metrics};
}

std::size_t
RunCache::size() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return entries.size();
}

void
RunCache::forEachEntry(
    const std::function<void(const std::string &,
                             const RunMetrics &)> &fn) const
{
    std::lock_guard<std::mutex> lock(mtx);
    for (const auto &kv : entries)
        fn(kv.second.key, kv.second.metrics);
}

std::size_t
RunCache::mergeLocked(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return 0;
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string err;
    const Json root = Json::parse(ss.str(), &err);
    if (!root.isObject()) {
        warnOnce("run cache %s: unreadable (%s); ignoring", path.c_str(),
             err.c_str());
        return 0;
    }
    if (root.get("schema").asUint() != kRunCacheSchema) {
        warnOnce("run cache %s: schema %llu != %u; ignoring", path.c_str(),
             static_cast<unsigned long long>(root.get("schema").asUint()),
             kRunCacheSchema);
        return 0;
    }
    std::size_t loaded = 0;
    for (const auto &kv : root.get("entries").members()) {
        const Json &e = kv.second;
        RunMetrics m;
        if (!e.isObject() || !e.get("key").isString() ||
            !runMetricsFromJson(e.get("metrics"), m)) {
            continue;
        }
        // In-memory entries win: they are this process's fresh results.
        if (entries.find(kv.first) == entries.end()) {
            entries[kv.first] = Entry{e.get("key").asString(), m};
            ++loaded;
        }
    }
    return loaded;
}

std::size_t
RunCache::loadFile(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mtx);
    return mergeLocked(path);
}

bool
RunCache::saveFile(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mtx);
    mergeLocked(path);

    Json root = Json::object();
    root.set("schema", Json(static_cast<std::uint64_t>(kRunCacheSchema)));
    Json ents = Json::object();
    for (const auto &kv : entries) {
        Json e = Json::object();
        e.set("key", Json(kv.second.key));
        e.set("metrics", runMetricsToJson(kv.second.metrics));
        ents.set(kv.first, std::move(e));
    }
    root.set("entries", std::move(ents));

    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            warn("run cache: cannot write %s", tmp.c_str());
            return false;
        }
        out << root.dump() << '\n';
        if (!out) {
            warn("run cache: short write to %s", tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("run cache: cannot rename %s to %s", tmp.c_str(),
             path.c_str());
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace nurapid
