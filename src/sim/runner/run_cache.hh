/**
 * @file
 * Run-result memoization: a stable fingerprint for one
 * (organization, workload, simulation length) run, and a cache of
 * finished RunMetrics keyed by it.
 *
 * The cache is consulted in-process (so one bench binary never
 * simulates the same run twice) and can be persisted to a JSON file —
 * set NURAPID_RUN_CACHE=/path/file.json and the 16 bench binaries
 * share one simulation of the repeated baseline suites instead of
 * each recomputing them from scratch.
 *
 * The fingerprint covers every input that determines the result: all
 * parameter fields of the active organization kind (not just the
 * description string), every field of the workload profile including
 * its layer structure and seed, the warmup/measure lengths, and a
 * schema version bumped whenever the simulator's behavior or the
 * RunMetrics layout changes. The full key string is stored alongside
 * each entry and verified on lookup, so a digest collision degrades to
 * a cache miss, never to a wrong result.
 */

#ifndef NURAPID_SIM_RUNNER_RUN_CACHE_HH
#define NURAPID_SIM_RUNNER_RUN_CACHE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "common/json.hh"
#include "sim/gang.hh"
#include "sim/system.hh"

namespace nurapid {

/** Bump when simulator behavior changes invalidate old cache files. */
inline constexpr std::uint32_t kRunCacheSchema = 1;

/** Canonical key + digest identifying one run's inputs. */
struct RunKey
{
    std::string key;     //!< full canonical key string
    std::string digest;  //!< 16-hex-digit FNV-1a of the key
};

/**
 * Builds the fingerprint of one (spec, profile, length) run. The gang
 * mode is part of the key: a cache populated by gang replays is never
 * served to a --gang=off verification run (or vice versa), so the
 * bit-identity bracket in scripts/check.sh really simulates twice.
 */
RunKey fingerprintRun(const OrgSpec &spec, const WorkloadProfile &profile,
                      const SimLength &length,
                      const GangMode &gang = GangMode::fromEnv());

/**
 * Key of everything a gang must share: the workload profile (hence the
 * distilled stream and dispatch CPI) and the phase lengths. Runs with
 * equal group keys are candidates for one shared traversal.
 */
std::string gangGroupKey(const WorkloadProfile &profile,
                         const SimLength &length);

/** RunMetrics <-> JSON (used by the cache file; round-trips exactly). */
Json runMetricsToJson(const RunMetrics &m);
bool runMetricsFromJson(const Json &j, RunMetrics &out);

/**
 * True when two runs produced the same simulation outcome: every field
 * is compared bit-for-bit except wall_seconds and from_cache, which
 * describe how the result was obtained rather than what it is.
 */
bool identicalMetrics(const RunMetrics &a, const RunMetrics &b);

/** Thread-safe memoization table with optional file persistence. */
class RunCache
{
  public:
    /** Looks up a run; returns true and fills @p out on a hit. */
    bool lookup(const RunKey &key, RunMetrics &out) const;

    /** Stores a finished run (overwrites any previous entry). */
    void store(const RunKey &key, const RunMetrics &metrics);

    std::size_t size() const;

    /**
     * Visits every entry as (full key string, metrics), in digest
     * order. Used by nurapid_sim --dump-cache to print a normalized
     * view two caches can be compared by even when their digests
     * differ (the gang mode is part of the key).
     */
    void forEachEntry(
        const std::function<void(const std::string &,
                                 const RunMetrics &)> &fn) const;

    /**
     * Merges entries from @p path into this cache (in-memory entries
     * win). Silently ignores a missing file; warns and ignores a
     * malformed or schema-mismatched one. Returns entries loaded.
     */
    std::size_t loadFile(const std::string &path);

    /**
     * Writes the cache to @p path, first re-merging any entries other
     * processes appended since loadFile (ours win), via a temp-file
     * rename so concurrent readers never see a torn file.
     */
    bool saveFile(const std::string &path);

  private:
    struct Entry
    {
        std::string key;  //!< collision guard
        RunMetrics metrics;
    };

    mutable std::mutex mtx;
    std::map<std::string, Entry> entries;  //!< digest -> entry

    std::size_t mergeLocked(const std::string &path);
};

} // namespace nurapid

#endif // NURAPID_SIM_RUNNER_RUN_CACHE_HH
