#include "sim/runner/span_trace.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <unistd.h>

#include "common/logging.hh"

namespace nurapid {

namespace {

std::uint64_t
steadyNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint64_t
wallUs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

/** The innermost open span of this thread (nesting bookkeeping). */
thread_local EngineSpan *t_open = nullptr;

/** JSON string escaping for span labels (quotes/backslashes only;
 *  labels are ASCII workload/org names). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

EngineTrace::EngineTrace()
{
    if (const char *p = std::getenv("NURAPID_ENGINE_TRACE")) {
        if (*p != '\0')
            enable(p);
    }
}

EngineTrace &
EngineTrace::instance()
{
    // Intentionally leaked: the atexit flush registered by enable()
    // must outlive every static destructor, including this object's
    // own (a plain function-local static would be destroyed first,
    // since its destructor registers *after* the ctor-path enable()).
    static EngineTrace *trace = new EngineTrace;
    return *trace;
}

void
EngineTrace::enable(const std::string &out_path)
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (!path.empty())
            return;  // first activation wins
        path = out_path;
        enable_ns = steadyNs();
    }
    on.store(true, std::memory_order_relaxed);
    std::atexit([] { EngineTrace::instance().flush(); });
}

EngineTrace::ThreadBuf &
EngineTrace::threadBuf()
{
    thread_local std::shared_ptr<ThreadBuf> buf = [this] {
        auto b = std::make_shared<ThreadBuf>();
        std::lock_guard<std::mutex> lock(mtx);
        b->tid = static_cast<int>(buffers.size());
        buffers.push_back(b);
        return b;
    }();
    return *buf;
}

void
EngineTrace::flush()
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mtx);

    // Snapshot all spans (flush runs at exit, workers long joined).
    struct Flat
    {
        const SpanRec *rec;
        int tid;
    };
    std::vector<Flat> all;
    for (const auto &buf : buffers)
        for (const SpanRec &rec : buf->spans)
            all.push_back({&rec, buf->tid});
    if (all.size() <= flushed)
        return;

    // --- trace file: Chrome JSON array format, append mode so the 17
    // bench binaries of one sweep share a single whole-sweep file.
    const int pid = static_cast<int>(::getpid());
    std::ofstream os(path, std::ios::app);
    if (!os) {
        warn("cannot write engine trace %s", path.c_str());
    } else {
        if (os.tellp() == std::streamoff(0)) {
            os << "[\n";
        }
        if (!wrote_header) {
            os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
               << ",\"args\":{\"name\":\"nurapid engine (pid " << pid
               << ")\"}},\n";
            wrote_header = true;
        }
        for (const auto &buf : buffers) {
            os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
               << ",\"tid\":" << buf->tid
               << ",\"args\":{\"name\":\"worker-" << buf->tid << "\"}},\n";
        }
        std::size_t skip = flushed;
        for (const Flat &f : all) {
            if (skip) {
                --skip;
                continue;
            }
            os << "{\"name\":\"" << jsonEscape(f.rec->label)
               << "\",\"cat\":\"" << f.rec->stage
               << "\",\"ph\":\"X\",\"ts\":" << f.rec->ts_us
               << ",\"dur\":" << f.rec->dur_ns / 1000
               << ",\"pid\":" << pid << ",\"tid\":" << f.tid << "},\n";
        }
        os.flush();
        if (os)
            std::fprintf(stderr, "[engine] trace appended to %s\n",
                         path.c_str());
    }
    flushed = all.size();

    // --- [engine] footer: per-stage busy (self time, so nested spans
    // are not double counted) and span coverage of the wall.
    const std::uint64_t wall_ns = steadyNs() - enable_ns;
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> stages;
    for (const Flat &f : all) {
        auto &agg = stages[f.rec->stage];
        agg.first += f.rec->self_ns;
        ++agg.second;
    }
    std::uint64_t busy_ns = 0;
    for (const auto &kv : stages)
        busy_ns += kv.second.first;

    // Coverage: interval union of top-level spans across all threads
    // (parallel workers overlap; overlapped time counts once).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ivs;
    for (const Flat &f : all) {
        if (f.rec->top_level)
            ivs.emplace_back(f.rec->start_ns,
                             f.rec->start_ns + f.rec->dur_ns);
    }
    std::sort(ivs.begin(), ivs.end());
    std::uint64_t covered_ns = 0, cur_lo = 0, cur_hi = 0;
    for (const auto &iv : ivs) {
        if (cur_hi == 0 || iv.first > cur_hi) {
            covered_ns += cur_hi - cur_lo;
            cur_lo = iv.first;
            cur_hi = std::max(iv.second, iv.first + 1);
        } else {
            cur_hi = std::max(cur_hi, iv.second);
        }
    }
    covered_ns += cur_hi - cur_lo;
    covered_ns = std::min(covered_ns, wall_ns);

    const double wall_s = static_cast<double>(wall_ns) * 1e-9;
    std::fprintf(stderr,
                 "[engine] wall %.3f s, span coverage %.3f s (%.1f%%), "
                 "busy %.3f s across %zu worker threads\n",
                 wall_s, static_cast<double>(covered_ns) * 1e-9,
                 wall_ns ? 100.0 * static_cast<double>(covered_ns) /
                         static_cast<double>(wall_ns)
                         : 0.0,
                 static_cast<double>(busy_ns) * 1e-9, buffers.size());
    for (const auto &kv : stages) {
        std::fprintf(stderr, "[engine]   %-16s %9.3f s %5.1f%%  (%llu spans)\n",
                     kv.first.c_str(),
                     static_cast<double>(kv.second.first) * 1e-9,
                     busy_ns ? 100.0 *
                             static_cast<double>(kv.second.first) /
                             static_cast<double>(busy_ns)
                             : 0.0,
                     static_cast<unsigned long long>(kv.second.second));
    }
}

EngineSpan::EngineSpan(const char *stage_name, std::string span_label)
    : active(EngineTrace::instance().enabled())
{
    if (!active) [[likely]]
        return;
    stage = stage_name;
    label = std::move(span_label);
    ts_us = wallUs();
    start_ns = steadyNs();
    parent = t_open;
    t_open = this;
}

EngineSpan::~EngineSpan()
{
    if (!active) [[likely]]
        return;
    const std::uint64_t dur_ns = steadyNs() - start_ns;
    t_open = parent;
    if (parent)
        parent->child_ns += dur_ns;
    EngineTrace::ThreadBuf &buf = EngineTrace::instance().threadBuf();
    buf.spans.push_back({stage, std::move(label), ts_us, start_ns, dur_ns,
                         dur_ns > child_ns ? dur_ns - child_ns : 0,
                         parent == nullptr});
}

} // namespace nurapid
