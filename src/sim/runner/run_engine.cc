#include "sim/runner/run_engine.hh"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <thread>
#include <utility>

#include "common/logging.hh"

namespace nurapid {

RunEngineOptions
RunEngineOptions::fromEnv()
{
    RunEngineOptions opts;
    if (const char *s = std::getenv("NURAPID_JOBS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(s, &end, 10);
        if (end && *end == '\0' && *s != '\0' && v <= 4096) {
            opts.jobs = static_cast<unsigned>(v);
        } else {
            warnOnce("ignoring invalid NURAPID_JOBS '%s'", s);
        }
    }
    if (const char *f = std::getenv("NURAPID_RUN_CACHE"))
        opts.cache_file = f;
    return opts;
}

RunEngine::RunEngine(const RunEngineOptions &options)
    : opts(options)
{
    if (opts.use_cache && !opts.cache_file.empty())
        memo.loadFile(opts.cache_file);
}

unsigned
RunEngine::jobsFor(std::size_t pending) const
{
    unsigned base = opts.jobs;
    if (base == 0) {
        base = std::max(1u, std::thread::hardware_concurrency());
    }
    const auto cap = static_cast<unsigned>(
        std::min<std::size_t>(pending, 4096));
    return std::max(1u, std::min(base, cap));
}

std::vector<RunMetrics>
RunEngine::runMany(const std::vector<RunRequest> &requests)
{
    const std::size_t n = requests.size();
    std::vector<RunMetrics> results(n);
    std::vector<RunKey> keys(n);
    std::vector<std::size_t> misses;
    misses.reserve(n);

    // Duplicate requests inside one batch coalesce onto the first
    // occurrence: (duplicate index, index it copies from).
    std::map<std::string, std::size_t> first_of_key;
    std::vector<std::pair<std::size_t, std::size_t>> dups;

    for (std::size_t i = 0; i < n; ++i) {
        if (opts.use_cache && !requests[i].obs.enabled()) {
            keys[i] = fingerprintRun(requests[i].spec,
                                     requests[i].profile,
                                     requests[i].length);
            if (memo.lookup(keys[i], results[i])) {
                results[i].from_cache = true;
                hits.fetch_add(1);
                atomicAdd(saved, results[i].wall_seconds);
                continue;
            }
            auto [it, inserted] =
                first_of_key.emplace(keys[i].key, i);
            if (!inserted) {
                dups.emplace_back(i, it->second);
                continue;
            }
        }
        misses.push_back(i);
    }

    if (!misses.empty()) {
        auto work = [&](std::size_t idx) {
            const RunRequest &r = requests[idx];
            System sys(r.spec, r.profile, r.length);
            sys.enableObservability(r.obs);
            results[idx] = sys.runAll();
        };

        const unsigned jobs = jobsFor(misses.size());
        if (jobs <= 1) {
            for (std::size_t idx : misses)
                work(idx);
        } else {
            // Touch the shared const singletons (SRAM model, tech
            // point, workload table) on this thread; workers then only
            // ever read them.
            touchSharedSimulationState();
            std::atomic<std::size_t> next{0};
            std::vector<std::thread> pool;
            pool.reserve(jobs);
            for (unsigned t = 0; t < jobs; ++t) {
                pool.emplace_back([&] {
                    for (;;) {
                        const std::size_t k = next.fetch_add(1);
                        if (k >= misses.size())
                            break;
                        work(misses[k]);
                    }
                });
            }
            for (auto &th : pool)
                th.join();
        }
        simulated.fetch_add(misses.size());
        for (std::size_t idx : misses)
            atomicAdd(simSecs, results[idx].wall_seconds);

        if (opts.use_cache) {
            for (std::size_t idx : misses) {
                if (!requests[idx].obs.enabled())
                    memo.store(keys[idx], results[idx]);
            }
            if (!opts.cache_file.empty())
                memo.saveFile(opts.cache_file);
        }
    }
    for (const auto &[dup, src] : dups) {
        results[dup] = results[src];
        results[dup].from_cache = true;
        hits.fetch_add(1);
        atomicAdd(saved, results[dup].wall_seconds);
    }
    return results;
}

RunMetrics
RunEngine::runOne(const OrgSpec &spec, const WorkloadProfile &profile,
                  const SimLength &length)
{
    return runMany({RunRequest{spec, profile, length}}).front();
}

std::vector<RunMetrics>
RunEngine::runSuite(const OrgSpec &spec,
                    const std::vector<WorkloadProfile> &suite,
                    const SimLength &length)
{
    std::vector<RunRequest> requests;
    requests.reserve(suite.size());
    for (const auto &profile : suite)
        requests.push_back(RunRequest{spec, profile, length});
    return runMany(requests);
}

void
RunEngine::atomicAdd(std::atomic<double> &target, double delta)
{
    double cur = target.load();
    while (!target.compare_exchange_weak(cur, cur + delta)) {
    }
}

RunEngine &
globalRunEngine()
{
    static RunEngine engine;
    return engine;
}

} // namespace nurapid
