#include "sim/runner/run_engine.hh"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <thread>
#include <utility>

#include "common/logging.hh"
#include "sim/gang.hh"
#include "sim/runner/span_trace.hh"
#include "trace/distilled_trace.hh"

namespace nurapid {

RunEngineOptions
RunEngineOptions::fromEnv()
{
    RunEngineOptions opts;
    if (const char *s = std::getenv("NURAPID_JOBS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(s, &end, 10);
        if (end && *end == '\0' && *s != '\0' && v <= 4096) {
            opts.jobs = static_cast<unsigned>(v);
        } else {
            warnOnce("ignoring invalid NURAPID_JOBS '%s'", s);
        }
    }
    if (const char *f = std::getenv("NURAPID_RUN_CACHE"))
        opts.cache_file = f;
    opts.gang = GangMode::fromEnv();
    return opts;
}

RunEngine::RunEngine(const RunEngineOptions &options)
    : opts(options)
{
    if (opts.use_cache && !opts.cache_file.empty()) {
        EngineSpan span("cache-load", "load " + opts.cache_file);
        memo.loadFile(opts.cache_file);
    }
}

unsigned
RunEngine::jobsFor(std::size_t pending) const
{
    unsigned base = opts.jobs;
    if (base == 0) {
        base = std::max(1u, std::thread::hardware_concurrency());
    }
    const auto cap = static_cast<unsigned>(
        std::min<std::size_t>(pending, 4096));
    return std::max(1u, std::min(base, cap));
}

std::vector<std::vector<std::size_t>>
RunEngine::gangUnits(const std::vector<RunRequest> &requests,
                     const std::vector<std::size_t> &misses) const
{
    std::vector<std::vector<std::size_t>> units;
    if (!opts.gang.enabled || !distillEnabled()) {
        units.reserve(misses.size());
        for (std::size_t idx : misses)
            units.push_back({idx});
        return units;
    }

    // Group in first-appearance order so results stay deterministic
    // regardless of map iteration order.
    std::map<std::string, std::size_t> unit_of_key;
    for (std::size_t idx : misses) {
        const std::string key = gangGroupKey(requests[idx].profile,
                                             requests[idx].length);
        auto [it, inserted] = unit_of_key.emplace(key, units.size());
        if (inserted)
            units.emplace_back();
        units[it->second].push_back(idx);
    }

    const std::uint32_t cap = opts.gang.width_cap;
    if (cap == 0)
        return units;  // unlimited width
    std::vector<std::vector<std::size_t>> capped;
    for (const auto &unit : units) {
        for (std::size_t at = 0; at < unit.size(); at += cap) {
            const std::size_t end = std::min<std::size_t>(
                at + cap, unit.size());
            capped.emplace_back(unit.begin() + at, unit.begin() + end);
        }
    }
    return capped;
}

std::vector<RunMetrics>
RunEngine::runMany(const std::vector<RunRequest> &requests)
{
    const std::size_t n = requests.size();
    std::vector<RunMetrics> results(n);
    std::vector<RunKey> keys(n);
    std::vector<std::size_t> misses;
    misses.reserve(n);

    // Duplicate requests inside one batch coalesce onto the first
    // occurrence: (duplicate index, index it copies from).
    std::map<std::string, std::size_t> first_of_key;
    std::vector<std::pair<std::size_t, std::size_t>> dups;

    {
        EngineSpan span("cache-probe",
                        strprintf("probe %zu requests", n));
        for (std::size_t i = 0; i < n; ++i) {
            if (opts.use_cache && !requests[i].obs.enabled()) {
                keys[i] = fingerprintRun(requests[i].spec,
                                         requests[i].profile,
                                         requests[i].length, opts.gang);
                if (memo.lookup(keys[i], results[i])) {
                    results[i].from_cache = true;
                    hits.fetch_add(1);
                    atomicAdd(saved, results[i].wall_seconds);
                    continue;
                }
                auto [it, inserted] =
                    first_of_key.emplace(keys[i].key, i);
                if (!inserted) {
                    dups.emplace_back(i, it->second);
                    continue;
                }
            } else if (opts.use_cache && requests[i].obs.enabled()) {
                // Observed runs are always simulated fresh: the run
                // cache stores end-of-run metrics only, not the event
                // stream or timeline a sink would have recorded.
                warnOnce("observability enabled: %s / %s bypasses the "
                         "run cache (observed runs are never memoized)",
                         requests[i].profile.name.c_str(),
                         requests[i].spec.description().c_str());
            }
            misses.push_back(i);
        }
    }

    if (!misses.empty()) {
        // Pack the misses into work units. With gang replay enabled,
        // misses sharing a workload profile and phase lengths become
        // one multi-lane unit replayed in a single stream traversal;
        // otherwise (and for groups of one) a unit is a lone run.
        const std::vector<std::vector<std::size_t>> units =
            gangUnits(requests, misses);

        auto work = [&](const std::vector<std::size_t> &unit) {
            // Top-level span over the whole unit, so lane set-up and
            // metrics finalization around the nested simulate /
            // gang-replay spans still count toward footer coverage;
            // its *self* time is exactly that per-unit overhead.
            EngineSpan wspan(
                "run-unit",
                strprintf("%s x%zu",
                          requests[unit.front()].profile.name.c_str(),
                          unit.size()));
            if (unit.size() == 1) {
                const RunRequest &r = requests[unit.front()];
                System sys(r.spec, r.profile, r.length);
                ObsConfig cfg = r.obs;
                cfg.run_cache_bypassed = opts.use_cache && cfg.enabled();
                sys.enableObservability(cfg);
                results[unit.front()] = sys.runAll();
                return;
            }
            std::vector<std::unique_ptr<System>> systems;
            systems.reserve(unit.size());
            std::vector<System *> group;
            group.reserve(unit.size());
            for (std::size_t idx : unit) {
                const RunRequest &r = requests[idx];
                systems.push_back(std::make_unique<System>(
                    r.spec, r.profile, r.length));
                ObsConfig cfg = r.obs;
                cfg.run_cache_bypassed = opts.use_cache && cfg.enabled();
                systems.back()->enableObservability(cfg);
                group.push_back(systems.back().get());
            }
            // Falls back to per-system runAll() when ineligible
            // (e.g. NURAPID_DISTILL=0 left no shared stream).
            std::vector<RunMetrics> gang_results =
                GangReplayer::runAll(group);
            for (std::size_t j = 0; j < unit.size(); ++j)
                results[unit[j]] = std::move(gang_results[j]);
        };

        const unsigned jobs = jobsFor(units.size());
        if (jobs <= 1) {
            for (const auto &unit : units)
                work(unit);
        } else {
            // Touch the shared const singletons (SRAM model, tech
            // point, workload table) on this thread; workers then only
            // ever read them.
            touchSharedSimulationState();
            std::atomic<std::size_t> next{0};
            std::vector<std::thread> pool;
            pool.reserve(jobs);
            for (unsigned t = 0; t < jobs; ++t) {
                pool.emplace_back([&] {
                    for (;;) {
                        const std::size_t k = next.fetch_add(1);
                        if (k >= units.size())
                            break;
                        work(units[k]);
                    }
                });
            }
            for (auto &th : pool)
                th.join();
        }
        simulated.fetch_add(misses.size());
        for (std::size_t idx : misses)
            atomicAdd(simSecs, results[idx].wall_seconds);

        if (opts.use_cache) {
            EngineSpan span("cache-store",
                            strprintf("store %zu results",
                                      misses.size()));
            for (std::size_t idx : misses) {
                if (!requests[idx].obs.enabled())
                    memo.store(keys[idx], results[idx]);
            }
            if (!opts.cache_file.empty())
                memo.saveFile(opts.cache_file);
        }
    }
    for (const auto &[dup, src] : dups) {
        results[dup] = results[src];
        results[dup].from_cache = true;
        hits.fetch_add(1);
        atomicAdd(saved, results[dup].wall_seconds);
    }
    return results;
}

RunMetrics
RunEngine::runOne(const OrgSpec &spec, const WorkloadProfile &profile,
                  const SimLength &length)
{
    return runMany({RunRequest{spec, profile, length}}).front();
}

std::vector<RunMetrics>
RunEngine::runSuite(const OrgSpec &spec,
                    const std::vector<WorkloadProfile> &suite,
                    const SimLength &length)
{
    std::vector<RunRequest> requests;
    requests.reserve(suite.size());
    for (const auto &profile : suite)
        requests.push_back(RunRequest{spec, profile, length});
    return runMany(requests);
}

std::vector<std::vector<RunMetrics>>
RunEngine::runSuites(const std::vector<OrgSpec> &specs,
                     const std::vector<WorkloadProfile> &suite,
                     const SimLength &length)
{
    std::vector<RunRequest> requests;
    requests.reserve(specs.size() * suite.size());
    for (const auto &spec : specs)
        for (const auto &profile : suite)
            requests.push_back(RunRequest{spec, profile, length});
    std::vector<RunMetrics> flat = runMany(requests);

    std::vector<std::vector<RunMetrics>> out(specs.size());
    auto it = flat.begin();
    for (auto &row : out) {
        row.assign(std::make_move_iterator(it),
                   std::make_move_iterator(it + suite.size()));
        it += suite.size();
    }
    return out;
}

void
RunEngine::atomicAdd(std::atomic<double> &target, double delta)
{
    double cur = target.load();
    while (!target.compare_exchange_weak(cur, cur + delta)) {
    }
}

RunEngine &
globalRunEngine()
{
    static RunEngine engine;
    return engine;
}

} // namespace nurapid
