/**
 * @file
 * Engine span tracing: wall-time attribution for the run engine's
 * sweep machinery (not the simulated system).
 *
 * PRs 8-9 missed perf targets partly because nothing attributed a
 * sweep's host wall time: was it trace pregen, distill decode, gang
 * replay, or the run cache? EngineTrace records host-time spans
 * around those stages and emits
 *
 *  - a Chrome/Perfetto trace with one track per engine worker thread
 *    (one "X" slice per span), activated by `nurapid_sim
 *    --engine-trace-out FILE` or the NURAPID_ENGINE_TRACE env var
 *    (which regen_bench.sh forwards per bench binary), and
 *  - an `[engine]` stderr footer summing per-stage busy seconds
 *    (self time, so nested spans are not double counted) plus the
 *    share of wall time covered by any span at all.
 *
 * The trace file is written in Chrome's JSON *array* format — `[`
 * followed by one event object per line, trailing comma allowed, no
 * closing bracket required — and is opened in append mode: separate
 * processes (the 17 bench binaries of one regen_bench sweep) append
 * their spans to the same file under distinct pids, yielding a single
 * whole-sweep trace that loads in ui.perfetto.dev as-is.
 *
 * Cost model: span sites are per-run granularity (hundreds per
 * sweep), never per-reference; a disabled site costs one relaxed
 * atomic load and a predictably-not-taken branch. Recording is
 * lock-free after a thread's first span (thread-local buffers,
 * registered once under a mutex).
 */

#ifndef NURAPID_SIM_RUNNER_SPAN_TRACE_HH
#define NURAPID_SIM_RUNNER_SPAN_TRACE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nurapid {

class EngineTrace
{
  public:
    /** One finished span, recorded by ~EngineSpan. */
    struct SpanRec
    {
        const char *stage;       //!< static stage name (aggregation key)
        std::string label;       //!< display label (may carry run detail)
        std::uint64_t ts_us;     //!< wall-clock microseconds since epoch
        std::uint64_t start_ns;  //!< steady-clock start (coverage math)
        std::uint64_t dur_ns;    //!< steady-clock duration
        std::uint64_t self_ns;   //!< duration minus enclosed child spans
        bool top_level;          //!< no enclosing engine span
    };

    static EngineTrace &instance();

    /** True once tracing was activated by enable() or the
     *  NURAPID_ENGINE_TRACE environment variable. */
    bool enabled() const { return on.load(std::memory_order_relaxed); }

    /** Activates tracing; spans recorded from now on are appended to
     *  @p path at flush. Registers an atexit flush. Idempotent (the
     *  first path wins). */
    void enable(const std::string &path);

    /** Appends the recorded spans to the trace file and prints the
     *  `[engine]` footer to stderr. Called automatically at process
     *  exit; safe to call earlier (later flushes append the rest). */
    void flush();

    /** @name Recording internals (EngineSpan only). */
    ///@{
    struct ThreadBuf
    {
        int tid = 0;
        std::vector<SpanRec> spans;
    };
    /** This thread's buffer, registered on first use. */
    ThreadBuf &threadBuf();
    ///@}

  private:
    EngineTrace();

    std::atomic<bool> on{false};
    std::mutex mtx;  //!< guards path/buffers/flush bookkeeping
    std::string path;
    std::uint64_t enable_ns = 0;  //!< steady clock at activation
    /** shared_ptr keeps buffers alive past worker-thread exit. */
    std::vector<std::shared_ptr<ThreadBuf>> buffers;
    std::size_t flushed = 0;  //!< spans already written (per buffer sum)
    bool wrote_header = false;
};

/**
 * RAII engine span. @p stage must be a string literal (it is the
 * footer's aggregation key); @p label defaults to the stage name.
 */
class EngineSpan
{
  public:
    explicit EngineSpan(const char *stage) : EngineSpan(stage, stage) {}
    EngineSpan(const char *stage, std::string label);
    ~EngineSpan();

    EngineSpan(const EngineSpan &) = delete;
    EngineSpan &operator=(const EngineSpan &) = delete;

  private:
    bool active;
    const char *stage = nullptr;
    std::string label;
    std::uint64_t ts_us = 0;
    std::uint64_t start_ns = 0;
    std::uint64_t child_ns = 0;  //!< accumulated by nested spans
    EngineSpan *parent = nullptr;
};

} // namespace nurapid

#endif // NURAPID_SIM_RUNNER_SPAN_TRACE_HH
