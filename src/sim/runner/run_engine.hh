/**
 * @file
 * Parallel experiment engine: fans independent (organization, workload)
 * simulations out over a thread pool and memoizes finished runs.
 *
 * Every run is an isolated System — its own cache organization, core
 * model, synthetic trace, and explicitly-seeded RNGs — so runs share no
 * mutable state and jobs=N produces bit-identical RunMetrics to the
 * serial jobs=1 path (verified by tests/test_runner.cc and a TSan
 * build, -DNURAPID_SANITIZE=thread).
 *
 * Thread-safety audit of the shared state a worker touches:
 *  - sharedSramModel() (sim/system.cc) and TechParams::the70nm() are
 *    const singletons behind C++11 magic statics: initialization is
 *    synchronized by the compiler, and every member is const after
 *    construction. The engine additionally touches them once before
 *    spawning workers so no worker pays the init path.
 *  - workloadSuite() (trace/profiles.cc) is a const magic static.
 *  - Rng state lives in per-System objects (SyntheticTrace, the
 *    NuRAPID distance replacer, per-cache replacement policies), all
 *    seeded from the spec/profile, never from a global.
 *  - logging's inform/warn write whole lines with one fprintf; workers
 *    do not log on the simulation fast path.
 *
 * Knobs (also see RunEngineOptions::fromEnv):
 *  - NURAPID_JOBS     worker count; 0/unset = hardware_concurrency().
 *  - NURAPID_RUN_CACHE  path of a JSON cache file shared across
 *    binaries; loaded on engine construction, saved after every batch.
 *  - NURAPID_GANG=0   disable gang replay (one traversal per run, as
 *    before); NURAPID_GANG_WIDTH caps lanes per gang. Both are part of
 *    the run fingerprint, so gang/no-gang caches never mix.
 *
 * Gang scheduling: cache misses inside one batch that share a workload
 * profile and phase lengths (gangGroupKey) become one work unit; the
 * unit builds every lane's System and hands the group to
 * GangReplayer::runAll, which walks the shared distilled stream once
 * for all of them. Results stay bit-identical to the per-run path
 * (modulo wall_seconds) and are cached per-config exactly as before.
 */

#ifndef NURAPID_SIM_RUNNER_RUN_ENGINE_HH
#define NURAPID_SIM_RUNNER_RUN_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/runner/run_cache.hh"
#include "sim/system.hh"

namespace nurapid {

/** One independent simulation the engine may run or recall. */
struct RunRequest
{
    OrgSpec spec;
    WorkloadProfile profile;
    SimLength length{};

    /** Observability request for this run. An enabled config makes
     *  the run uncacheable: its point is the side-effect trace and
     *  metrics files, which a memoized result would silently skip, so
     *  the engine bypasses both cache lookup and store. */
    ObsConfig obs{};
};

struct RunEngineOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned jobs = 0;

    /** Consult/populate the memoization cache. */
    bool use_cache = true;

    /** JSON cache file shared across binaries; empty = in-process only. */
    std::string cache_file;

    /** Gang-replay scheduling; part of every run's cache fingerprint. */
    GangMode gang{};

    /** Reads NURAPID_JOBS, NURAPID_RUN_CACHE, NURAPID_GANG and
     *  NURAPID_GANG_WIDTH. */
    static RunEngineOptions fromEnv();
};

class RunEngine
{
  public:
    explicit RunEngine(const RunEngineOptions &options =
                           RunEngineOptions::fromEnv());

    /**
     * Runs every request, in parallel for cache misses, and returns
     * results in request order. Cached results come back with
     * from_cache set and their original wall_seconds.
     */
    std::vector<RunMetrics> runMany(const std::vector<RunRequest> &requests);

    /** Engine-backed equivalents of the sim/system.hh free functions. */
    RunMetrics runOne(const OrgSpec &spec, const WorkloadProfile &profile,
                      const SimLength &length = SimLength::fromEnv());
    std::vector<RunMetrics> runSuite(const OrgSpec &spec,
                                     const std::vector<WorkloadProfile> &suite,
                                     const SimLength &length =
                                         SimLength::fromEnv());

    /**
     * Runs the cross product specs x suite in one batch and returns
     * result[i][j] for (specs[i], suite[j]). Submitting all
     * organizations together is what lets the engine gang the runs of
     * one workload into a single stream traversal — per-organization
     * runSuite calls never see the siblings.
     */
    std::vector<std::vector<RunMetrics>>
    runSuites(const std::vector<OrgSpec> &specs,
              const std::vector<WorkloadProfile> &suite,
              const SimLength &length = SimLength::fromEnv());

    /** Resolved worker count for a batch of @p pending runs. */
    unsigned jobsFor(std::size_t pending) const;

    /** Runs actually simulated (cache misses) over the engine's life. */
    std::uint64_t simulatedRuns() const { return simulated.load(); }

    /** Sum of wall_seconds over simulated runs (CPU cost paid). */
    double simulatedSeconds() const { return simSecs.load(); }

    /** Results served from the memoization cache. */
    std::uint64_t cacheHits() const { return hits.load(); }

    /** Sum of wall_seconds of cache-hit results: simulation avoided. */
    double savedSeconds() const { return saved.load(); }

    const RunEngineOptions &options() const { return opts; }
    RunCache &cache() { return memo; }

  private:
    RunEngineOptions opts;
    RunCache memo;
    std::atomic<std::uint64_t> simulated{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<double> saved{0.0};
    std::atomic<double> simSecs{0.0};

    /** Packs cache-missed request indices into gang work units (see
     *  file comment); singleton units when gang replay is off. */
    std::vector<std::vector<std::size_t>>
    gangUnits(const std::vector<RunRequest> &requests,
              const std::vector<std::size_t> &misses) const;

    static void atomicAdd(std::atomic<double> &target, double delta);
};

/**
 * The process-wide engine behind the runOne/runSuite free functions in
 * sim/system.hh; configured from the environment on first use.
 */
RunEngine &globalRunEngine();

} // namespace nurapid

#endif // NURAPID_SIM_RUNNER_RUN_ENGINE_HH
