/**
 * @file
 * System configuration presets (the paper's Table 1 and Section 4).
 */

#ifndef NURAPID_SIM_CONFIG_HH
#define NURAPID_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "cpu/ooo_core.hh"
#include "mem/conventional_l2l3.hh"
#include "mem/set_assoc_cache.hh"
#include "nuca/dnuca.hh"
#include "nuca/snuca.hh"
#include "nurapid/coupled_nuca.hh"
#include "nurapid/nurapid_cache.hh"

namespace nurapid {

/** Which lower-level cache organization the system instantiates. */
enum class OrgKind : std::uint8_t {
    BaseL2L3,     //!< conventional 1 MB L2 + 8 MB L3
    DNuca,        //!< the D-NUCA baseline
    SNuca,        //!< static-NUCA baseline (no migration, no search)
    NuRapid,      //!< the paper's contribution
    CoupledSA,    //!< set-associative-placement NUCA (Figure 4)
};

/** Tagged union of organization parameters. */
struct OrgSpec
{
    OrgKind kind = OrgKind::NuRapid;
    ConventionalL2L3::Params base{};
    DNucaCache::Params dnuca{};
    SNucaCache::Params snuca{};
    NuRapidCache::Params nurapid{};
    CoupledNucaCache::Params coupled{};

    std::string description() const;

    /** Presets used throughout the evaluation. */
    static OrgSpec baseline();
    static OrgSpec dnucaSsPerformance();
    static OrgSpec dnucaSsEnergy();
    static OrgSpec snucaDefault();
    static OrgSpec nurapidDefault(std::uint32_t num_dgroups = 4,
                                  PromotionPolicy promotion =
                                      PromotionPolicy::NextFastest,
                                  DistanceRepl drepl =
                                      DistanceRepl::Random);
    static OrgSpec nurapidIdeal();
    static OrgSpec coupledSA();
};

/** Table 1 L1 organizations (64 KB, 2-way, 32 B blocks). */
CacheOrg l1iOrg();
CacheOrg l1dOrg();

/** Table 1 core parameters. */
CoreParams defaultCoreParams();

/**
 * Simulation length control. Records are memory references; the paper
 * runs 5 B instructions after a 5 B fast-forward — our synthetic
 * profiles are stationary, so a few million references converge.
 * NURAPID_SIM_SCALE (a float) scales both numbers.
 */
struct SimLength
{
    std::uint64_t warmup_records = 1'000'000;
    std::uint64_t measure_records = 3'000'000;

    static SimLength fromEnv();
};

} // namespace nurapid

#endif // NURAPID_SIM_CONFIG_HH
