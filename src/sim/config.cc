#include "sim/config.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"

namespace nurapid {

std::string
OrgSpec::description() const
{
    switch (kind) {
      case OrgKind::BaseL2L3:
        return "base L2/L3";
      case OrgKind::DNuca:
        return strprintf("D-NUCA (%s)", dnucaSearchName(dnuca.search));
      case OrgKind::SNuca:
        return "S-NUCA (static)";
      case OrgKind::NuRapid:
        return strprintf("NuRAPID %u d-groups (%s, %s%s%s)",
                         nurapid.num_dgroups,
                         promotionPolicyName(nurapid.promotion),
                         distanceReplName(nurapid.distance_repl),
                         nurapid.ideal_fastest ? ", ideal" : "",
                         nurapid.single_port ? "" : ", multi-port");
      case OrgKind::CoupledSA:
        return "set-associative placement";
    }
    return "unknown";
}

OrgSpec
OrgSpec::baseline()
{
    OrgSpec s;
    s.kind = OrgKind::BaseL2L3;
    return s;
}

OrgSpec
OrgSpec::dnucaSsPerformance()
{
    OrgSpec s;
    s.kind = OrgKind::DNuca;
    s.dnuca.search = DNucaSearch::SsPerformance;
    return s;
}

OrgSpec
OrgSpec::dnucaSsEnergy()
{
    OrgSpec s;
    s.kind = OrgKind::DNuca;
    s.dnuca.search = DNucaSearch::SsEnergy;
    return s;
}

OrgSpec
OrgSpec::snucaDefault()
{
    OrgSpec s;
    s.kind = OrgKind::SNuca;
    return s;
}

OrgSpec
OrgSpec::nurapidDefault(std::uint32_t num_dgroups,
                        PromotionPolicy promotion, DistanceRepl drepl)
{
    OrgSpec s;
    s.kind = OrgKind::NuRapid;
    s.nurapid.num_dgroups = num_dgroups;
    s.nurapid.promotion = promotion;
    s.nurapid.distance_repl = drepl;
    return s;
}

OrgSpec
OrgSpec::nurapidIdeal()
{
    OrgSpec s = nurapidDefault();
    s.nurapid.ideal_fastest = true;
    return s;
}

OrgSpec
OrgSpec::coupledSA()
{
    OrgSpec s;
    s.kind = OrgKind::CoupledSA;
    return s;
}

CacheOrg
l1iOrg()
{
    return {"l1i", 64 * 1024, 2, 32, ReplPolicy::LRU, 7};
}

CacheOrg
l1dOrg()
{
    return {"l1d", 64 * 1024, 2, 32, ReplPolicy::LRU, 9};
}

CoreParams
defaultCoreParams()
{
    return CoreParams{};
}

SimLength
SimLength::fromEnv()
{
    SimLength len;
    if (const char *s = std::getenv("NURAPID_SIM_SCALE")) {
        errno = 0;
        char *end = nullptr;
        const double scale = std::strtod(s, &end);
        if (*s != '\0' && end && *end == '\0' && errno != ERANGE &&
            std::isfinite(scale) && scale > 0) {
            len.warmup_records = static_cast<std::uint64_t>(
                len.warmup_records * scale);
            len.measure_records = static_cast<std::uint64_t>(
                len.measure_records * scale);
        } else {
            warnOnce("ignoring invalid NURAPID_SIM_SCALE '%s'", s);
        }
    }
    return len;
}

} // namespace nurapid
