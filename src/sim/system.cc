#include "sim/system.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.hh"
#include "sim/obs/export.hh"
#include "sim/org_dispatch.hh"
#include "sim/profile/profile.hh"
#include "sim/runner/run_engine.hh"
#include "sim/runner/span_trace.hh"
#include "timing/geometry.hh"
#include "trace/profiles.hh"

namespace nurapid {

namespace {

const SramMacroModel &
sharedModel()
{
    static const SramMacroModel model(TechParams::the70nm());
    return model;
}

} // namespace

std::unique_ptr<LowerMemory>
makeOrganization(const OrgSpec &spec)
{
    const SramMacroModel &model = sharedModel();
    switch (spec.kind) {
      case OrgKind::BaseL2L3:
        return std::make_unique<ConventionalL2L3>(model, spec.base);
      case OrgKind::DNuca:
        return std::make_unique<DNucaCache>(model, spec.dnuca);
      case OrgKind::SNuca:
        return std::make_unique<SNucaCache>(model, spec.snuca);
      case OrgKind::NuRapid:
        return std::make_unique<NuRapidCache>(model, spec.nurapid);
      case OrgKind::CoupledSA:
        return std::make_unique<CoupledNucaCache>(model, spec.coupled);
    }
    panic("unknown organization kind");
}

namespace {

CoreParams
withWorkloadCpi(CoreParams params, const WorkloadProfile &profile)
{
    params.dispatch_cpi = std::max(params.dispatch_cpi,
                                   profile.base_cpi);
    return params;
}

} // namespace

System::System(const OrgSpec &org, const WorkloadProfile &profile,
               const SimLength &len, const CoreParams &core_params)
    : spec(org), prof(profile), length(len),
      lowerMem(makeOrganization(org)),
      l1iCache(l1iOrg()), l1dCache(l1dOrg()),
      coreModel(std::make_unique<OooCore>(
          withWorkloadCpi(core_params, profile), l1iCache, l1dCache,
          *lowerMem)),
      trace(profile)
{
    if (packedTraceEnabled()) {
        EngineSpan span("trace-pregen", "pregen " + profile.name);
        packed = sharedPackedTrace(
            profile, length.warmup_records + length.measure_records);
    }
    const std::uint64_t total =
        length.warmup_records + length.measure_records;
    if (packed && total > 0 && distillEnabled()) {
        // The cuts are the segment boundaries runAll()'s phases stop
        // at; folded counters are exact there, so resetStats() between
        // warmup and measure sees the same state as the live loop.
        std::vector<std::uint64_t> cuts;
        if (length.warmup_records > 0 && length.warmup_records < total)
            cuts.push_back(length.warmup_records);
        cuts.push_back(total);

        DistillParams dp;
        dp.l1i = l1iCache.org();
        dp.l1d = l1dCache.org();
        dp.bp_entries = coreModel->branchPredictor().entries();
        dp.bp_history_bits = coreModel->branchPredictor().historyBits();
        dp.mshr_block_bytes = coreModel->params().mshr_block_bytes;
        EngineSpan span("distill-decode", "distill " + profile.name);
        distilled = sharedDistilledTrace(profile, total, cuts, dp);
        dcur = distilled->cursor();
    }
}

void
System::runRecords(std::uint64_t records)
{
    if (records == 0)
        return;
    if (!packed) {
        NURAPID_PROFILE_SCOPE(Core);
        coreModel->run(trace, records);
        return;
    }
    if (distilled) {
        const std::uint64_t end = consumed + records;
        if (end <= distilled->size() && distilled->isCut(end)) {
            NURAPID_PROFILE_SCOPE(Core);
            withConcreteOrg(*lowerMem, spec.kind, [&](auto &org) {
                coreModel->runDistilled(org, dcur, records);
            });
            consumed = end;
            return;
        }
        // A custom phase schedule that does not land on the distilled
        // cuts: before anything has replayed, fall back to the live
        // loop wholesale; afterwards the L1/predictor tables are stale
        // and no correct continuation exists.
        panic_if(consumed != 0,
                 "segment end %llu is not a distillation cut; set "
                 "NURAPID_DISTILL=0 for custom phase schedules",
                 static_cast<unsigned long long>(end));
        distilled.reset();
    }
    if (consumed + records > packed->size()) {
        EngineSpan span("trace-pregen", "extend " + prof.name);
        packed = sharedPackedTrace(prof, consumed + records);
    }
    NURAPID_PROFILE_SCOPE(Core);
    PackedTrace::Cursor cur =
        packed->cursorRange(consumed, consumed + records);
    withConcreteOrg(*lowerMem, spec.kind, [&](auto &org) {
        coreModel->runTyped(org, cur, records);
    });
    consumed += records - cur.remaining();
}

void
System::warmup()
{
    runRecords(length.warmup_records);
    coreModel->resetStats();
    lowerMem->resetStats();
}

void
System::enableObservability(const ObsConfig &cfg)
{
    obsCfg = cfg;
    if (!cfg.enabled())
        return;
    // The sink exists whenever anything is observed: even a
    // metrics-only run needs its epoch-local latency aggregates.
    obsSink = std::make_unique<EventSink>(cfg.record_events,
                                          cfg.resolvedEventCap());
    if (cfg.record_metrics) {
        IntervalSources src;
        src.org_counters = &lowerMem->stats();
        src.region_hits = &lowerMem->regionHits();
        src.cycles = [this] { return coreModel->cycles(); };
        src.instructions = [this] { return coreModel->instructions(); };
        src.occupancy = [this](std::vector<std::uint64_t> &out) {
            lowerMem->regionOccupancy(out);
        };
        src.energy = lowerMem->energyBreakdown();
        // Off-chip share, same expression as EnergyReport::memory_nj
        // so the timeline reconciles bitwise with computeEnergy().
        src.lower_energy = [this] {
            return lowerMem->dynamicEnergyNJ() - lowerMem->cacheEnergyNJ();
        };
        obsRec = std::make_unique<IntervalRecorder>(
            cfg.resolvedInterval(), std::move(src), obsSink.get());
    }
}

void
System::attachObserversForMeasure()
{
    if (obsSink && !obsAttached) {
        lowerMem->attachObserver(obsSink.get());
        coreModel->attachObservability(obsSink.get(), obsRec.get());
        if (obsRec)
            obsRec->begin();
        obsAttached = true;
    }
}

void
System::measure()
{
    attachObserversForMeasure();
    runRecords(length.measure_records);
}

RunMetrics
System::metrics() const
{
    NURAPID_PROFILE_SCOPE(Stats);
    RunMetrics m;
    m.workload = prof.name;
    m.organization = spec.description();
    m.ipc = coreModel->ipc();
    m.cycles = coreModel->cycles();
    m.instructions = coreModel->instructions();

    const StatGroup &ls = lowerMem->stats();
    auto counter = [&](const char *name) -> std::uint64_t {
        return ls.hasCounter(name) ? ls.counterValue(name) : 0;
    };
    m.l2_demand = counter("demand_accesses") + counter("accesses");
    m.l2_hits = counter("hits") +
        counter("l2_hits") + counter("l3_hits");
    m.l2_misses = counter("misses") + counter("memory_fills");
    m.l2_apki = m.instructions
        ? 1000.0 * m.l2_demand / m.instructions
        : 0.0;

    const Histogram &h = lowerMem->regionHits();
    m.region_frac.resize(h.buckets());
    const double denom = static_cast<double>(m.l2_demand);
    for (std::size_t b = 0; b < h.buckets(); ++b) {
        m.region_frac[b] =
            denom > 0 ? h.count(b) / denom : 0.0;
    }
    m.miss_frac = denom > 0 ? m.l2_misses / denom : 0.0;

    m.promotions = counter("promotions");
    m.demotions = counter("demotions");
    m.block_moves = counter("block_moves");
    m.data_array_accesses =
        counter("dgroup_accesses") + counter("bank_data_accesses");

    m.energy = computeEnergy(energyParams, *coreModel, *lowerMem);
    m.wall_seconds = wallSeconds;
    return m;
}

void
System::exportObservability(RunMetrics &m)
{
    if (!obsSink)
        return;
    if (obsRec)
        obsRec->finish();
    const ObsExportMeta meta{prof.name, spec.description(),
                             obsCfg.run_cache_bypassed};
    if (!obsCfg.events_path.empty() &&
        !writeEventsJsonl(obsCfg.events_path, meta, *obsSink)) {
        warn("failed to write event trace %s",
             obsCfg.events_path.c_str());
    }
    if (obsRec) {
        if (!obsCfg.metrics_path.empty()) {
            if (writeMetricsJsonl(obsCfg.metrics_path, meta, *obsRec))
                m.metrics_file = obsCfg.metrics_path;
            else
                warn("failed to write metrics timeline %s",
                     obsCfg.metrics_path.c_str());
        }
        if (!obsCfg.perfetto_path.empty() &&
            !writePerfettoTrace(obsCfg.perfetto_path, meta, *obsRec)) {
            warn("failed to write perfetto trace %s",
                 obsCfg.perfetto_path.c_str());
        }
    }
}

RunMetrics
System::runAll()
{
    EngineSpan span("simulate", prof.name + " / " + spec.description());
    const auto start = std::chrono::steady_clock::now();
    warmup();
    measure();
    wallSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    RunMetrics m = metrics();
    exportObservability(m);
    return m;
}

RunMetrics
runOne(const OrgSpec &org, const WorkloadProfile &profile,
       const SimLength &length)
{
    return globalRunEngine().runOne(org, profile, length);
}

std::vector<RunMetrics>
runSuite(const OrgSpec &org, const std::vector<WorkloadProfile> &suite,
         const SimLength &length)
{
    return globalRunEngine().runSuite(org, suite, length);
}

std::vector<std::vector<RunMetrics>>
runSuites(const std::vector<OrgSpec> &specs,
          const std::vector<WorkloadProfile> &suite,
          const SimLength &length)
{
    return globalRunEngine().runSuites(specs, suite, length);
}

void
touchSharedSimulationState()
{
    (void)sharedModel();
    (void)TechParams::the70nm();
    (void)workloadSuite();
}

double
meanRelativePerformance(const std::vector<RunMetrics> &runs,
                        const std::vector<RunMetrics> &base)
{
    panic_if(runs.size() != base.size(),
             "relative performance over mismatched suites");
    if (runs.empty())
        return 1.0;
    double log_sum = 0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        panic_if(base[i].ipc <= 0, "base run with zero IPC");
        log_sum += std::log(runs[i].ipc / base[i].ipc);
    }
    return std::exp(log_sum / runs.size());
}

} // namespace nurapid
