#include "nuca/dnuca.hh"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "mem/tag_probe.hh"
#include "sim/profile/profile.hh"

namespace nurapid {

DNucaCache::DNucaCache(const SramMacroModel &model, const Params &params)
    : p(params),
      times(makeDNucaTiming(model, p.capacity_bytes, p.rows, p.cols,
                            p.block_bytes)),
      sets(static_cast<std::uint32_t>(
          p.capacity_bytes / (std::uint64_t{p.assoc} * p.block_bytes))),
      waysPerRow(p.assoc / p.rows),
      partialMask((Addr{1} << p.partial_tag_bits) - 1),
      bankFree(std::size_t{p.rows} * p.cols, 0),
      mem(p.memory), statGroup(p.name), regionHist(p.rows)
{
    fatal_if(p.assoc % p.rows != 0,
             "associativity %u not divisible across %u bank rows",
             p.assoc, p.rows);
    fatal_if(p.assoc == 0 || p.assoc > 64,
             "associativity %u outside the bitmap-word range 1..64",
             p.assoc);
    fatal_if(!isPowerOf2(sets), "set count %u not a power of two", sets);
    fatal_if(!isPowerOf2(p.cols), "bank-set count %u not a power of two",
             p.cols);
    fatal_if(!isPowerOf2(p.block_bytes),
             "block size %u not a power of two", p.block_bytes);
    blockShift = floorLog2(p.block_bytes);
    tagShift = blockShift + floorLog2(sets);

    strideShift = ceilLog2(p.assoc);
    wayStride = std::uint32_t{1} << strideShift;
    waysMask = p.assoc == 64
        ? ~std::uint64_t{0}
        : (std::uint64_t{1} << p.assoc) - 1;
    tagPlane.assign(std::size_t{sets} << strideShift, 0);
    validBits.assign(sets, 0);
    dirtyBits.assign(sets, 0);
    ranks.init(sets, p.assoc);

    statGroup.addCounter("demand_accesses", cnt.demandAccesses);
    statGroup.addCounter("writeback_accesses", cnt.writebackAccesses);
    statGroup.addCounter("hits", cnt.hits);
    statGroup.addCounter("misses", cnt.misses);
    statGroup.addCounter("evictions", cnt.evictions);
    statGroup.addCounter("promotions", cnt.promotions);
    statGroup.addCounter("block_moves", cnt.blockMoves);
    statGroup.addCounter("bank_data_accesses", cnt.bankDataAccesses);
    statGroup.addCounter("bank_search_probes", cnt.bankSearchProbes);
    statGroup.addCounter("ss_probes", cnt.ssProbes);
    statGroup.addCounter("false_partial_hits", cnt.falsePartialHits);
    statGroup.addCounter("bank_wait_cycles", cnt.bankWaitCycles);
}

std::uint32_t
DNucaCache::setOf(Addr block) const
{
    return static_cast<std::uint32_t>(
        (block >> blockShift) & (sets - 1));
}

Addr
DNucaCache::tagOf(Addr block) const
{
    return block >> tagShift;
}

std::uint32_t
DNucaCache::colOf(std::uint32_t set) const
{
    return set & (p.cols - 1);
}

std::uint32_t
DNucaCache::rowOfWay(std::uint32_t way) const
{
    return way / waysPerRow;
}

void
DNucaCache::touch(std::uint32_t set, std::uint32_t way)
{
    NURAPID_PROFILE_SCOPE(Recency);
    ranks.touch(set, way);
}

std::uint32_t
DNucaCache::lruWayInRow(std::uint32_t set, std::uint32_t row) const
{
    const std::uint32_t first = row * waysPerRow;
    const std::uint64_t row_bits = waysPerRow >= 64
        ? ~std::uint64_t{0}
        : (std::uint64_t{1} << waysPerRow) - 1;
    // Lowest invalid way of the row wins outright.
    const std::uint64_t row_invalid =
        (~validBits[set] >> first) & row_bits;
    if (row_invalid) {
        return first +
            static_cast<std::uint32_t>(std::countr_zero(row_invalid));
    }
    NURAPID_PROFILE_SCOPE(Recency);
    return ranks.lruWayMasked(set, row_bits << first);
}

Cycle
DNucaCache::acquireBank(std::uint32_t row, std::uint32_t col, Cycle at,
                        Cycles busy)
{
    Cycle &free = bankFree[std::size_t{row} * p.cols + col];
    const Cycle start = std::max(at, free);
    cnt.bankWaitCycles += start - at;
    free = start + (busy ? busy : times.bank_busy);
    return start;
}

LowerMemory::Result
DNucaCache::access(Addr addr, AccessType type, Cycle now)
{
    const Addr block = blockAlign(addr, p.block_bytes);
    const bool is_writeback = type == AccessType::Writeback;
    const bool is_write = type == AccessType::Write || is_writeback;

    if (is_writeback)
        ++cnt.writebackAccesses;
    else
        ++cnt.demandAccesses;

    const std::uint32_t set = setOf(block);
    const std::uint32_t col = colOf(set);
    const Addr tag = tagOf(block);
    const Addr partial = tag & partialMask;

    // Ground truth: which way (if any) holds the block, and which rows
    // the smart-search array would flag as partial-tag matches. Two
    // vector probes over the set's tag row replace the way-by-way scan;
    // the valid bitmap also clears the padding lanes. The historical
    // scan kept the *last* matching way, hence the countl_zero reduce
    // (first and last coincide on audit-clean state anyway).
    std::uint64_t full_match, partial_match;
    {
        NURAPID_PROFILE_SCOPE(Probe);
        const std::uint64_t *row = &tagPlane[rowBase(set)];
        full_match = probeMatch(row, wayStride, tag) & validBits[set];
        partial_match =
            probeMatchMasked(row, wayStride, partialMask, partial) &
            validBits[set];
    }
    const std::uint32_t hit_way = full_match
        ? 63 - static_cast<std::uint32_t>(std::countl_zero(full_match))
        : p.assoc;
    const std::uint64_t row_mask_base =
        (std::uint64_t{1} << waysPerRow) - 1;
    const auto rowMatches = [&](std::uint32_t r) {
        return ((partial_match >> (r * waysPerRow)) & row_mask_base) != 0;
    };
    const bool any_partial = partial_match != 0;

    Result result;
    Cycles lookup_lat = 0;

    if (p.search == DNucaSearch::SsEnergy) {
        // Probe the smart-search array, then walk only the banks whose
        // partial tags matched, closest first, until the real hit.
        ++cnt.ssProbes;
        cacheEnergy.chargeTag(times.ss_access_nj);
        lookup_lat = times.ss_latency;
        const std::uint32_t hit_row =
            hit_way < p.assoc ? rowOfWay(hit_way) : p.rows;
        for (std::uint32_t r = 0; r < p.rows; ++r) {
            if (!rowMatches(r))
                continue;
            ++cnt.bankDataAccesses;
            cacheEnergy.chargeData(r, times.bank(r, col).access_nj);
            const Cycle start = acquireBank(r, col, now + lookup_lat);
            lookup_lat = static_cast<Cycles>(start - now) +
                times.bank(r, col).latency;
            if (r == hit_row)
                break;
            ++cnt.falsePartialHits;
        }
    } else {
        // Multicast search: every bank of the bank set performs its
        // parallel tag+data access (the data read starts with the tag
        // compare — this is what makes multicast searching so
        // energy-hungry); the owner returns the data at its latency.
        for (std::uint32_t r = 0; r < p.rows; ++r) {
            ++cnt.bankSearchProbes;
            ++cnt.bankDataAccesses;
            cacheEnergy.chargeData(r, times.bank(r, col).access_nj);
            acquireBank(r, col, now);
        }
        if (p.search == DNucaSearch::SsPerformance) {
            ++cnt.ssProbes;
            cacheEnergy.chargeTag(times.ss_access_nj);
        }
        if (hit_way < p.assoc) {
            const std::uint32_t r = rowOfWay(hit_way);
            // The owning bank's access was issued by the multicast
            // above; the reply returns at that bank's latency (plus
            // any wait the occupied bank imposed).
            const Cycle start = acquireBank(r, col, now);
            lookup_lat = static_cast<Cycles>(start - now) +
                times.bank(r, col).latency;
        } else if (p.search == DNucaSearch::SsPerformance && !any_partial) {
            // Early miss determination from the smart-search array.
            lookup_lat = times.ss_latency;
        } else {
            // Miss resolved only when the slowest searched bank replies.
            if (any_partial)
                ++cnt.falsePartialHits;
            lookup_lat = times.maxLatencyOfMB(p.rows - 1);
        }
    }

    if (hit_way < p.assoc) {
        const std::uint32_t r = rowOfWay(hit_way);
        if (!is_writeback) {
            ++cnt.hits;
            regionHist.sample(r);
        }
        touch(set, hit_way);
        if (is_write)
            dirtyBits[set] |= std::uint64_t{1} << hit_way;

        // Bubble promotion: swap with a block one bank closer (demand
        // hits only; L1 writebacks update in place).
        if (p.promote_on_hit && r > 0 && !is_writeback) {
            const std::uint32_t victim = lruWayInRow(set, r - 1);
            // An invalid victim way makes the "swap" a pure inward move.
            if (obsSink) [[unlikely]] {
                if ((validBits[set] >> victim) & 1)
                    obsSink->swap(now, block, r, r - 1);
                else
                    obsSink->promotion(now, block, r, r - 1);
            }
            const std::size_t base = rowBase(set);
            std::swap(tagPlane[base + hit_way], tagPlane[base + victim]);
            swapBits(validBits[set], hit_way, victim);
            swapBits(dirtyBits[set], hit_way, victim);
            ranks.swapWays(set, hit_way, victim);
            ++cnt.promotions;
            cnt.blockMoves += 2;
            cnt.bankDataAccesses += 4;
            cacheEnergy.chargeSwap(times.swapEnergy(r - 1, r, col));
            // Both banks stay occupied while the two blocks are in
            // flight; closely-following accesses to either (e.g. the
            // next sector of a streaming L2 block) must wait — the
            // bandwidth cost of bubble promotion the paper calls out.
            const Cycles sb = times.swapBusy(r - 1, r, col);
            acquireBank(r, col, now + lookup_lat, sb);
            acquireBank(r - 1, col, now + lookup_lat, sb);
        }

        result.hit = true;
        result.latency = is_writeback ? 0 : lookup_lat;
        if (obsSink) [[unlikely]] {
            if (is_writeback)
                obsSink->writeback(now, block);
            else
                obsSink->hit(now, block, r, result.latency);
        }
        NURAPID_AUDIT_POINT(auditTick, audit(audit::hookSink()));
        return result;
    }

    // Miss path.
    if (!is_writeback)
        ++cnt.misses;
    if (obsSink && is_writeback) [[unlikely]]
        obsSink->writeback(now, block);

    // Prefer an invalid way (slowest rows first); otherwise evict the
    // slowest way of the set — which need not be the set-LRU block.
    std::uint32_t dest_way = p.assoc;
    const std::uint64_t invalid = ~validBits[set] & waysMask;
    for (std::uint32_t r = p.rows; r-- > 0 && dest_way == p.assoc;) {
        const std::uint32_t first = r * waysPerRow;
        const std::uint64_t row_invalid =
            (invalid >> first) & ((std::uint64_t{1} << waysPerRow) - 1);
        if (row_invalid) {
            dest_way = first +
                static_cast<std::uint32_t>(std::countr_zero(row_invalid));
        }
    }
    if (dest_way == p.assoc) {
        dest_way = lruWayInRow(set, p.rows - 1);
        const std::uint64_t way_bit = std::uint64_t{1} << dest_way;
        ++cnt.evictions;
        ++cnt.bankDataAccesses;
        cacheEnergy.chargeData(p.rows - 1,
                               times.bank(p.rows - 1, col).access_nj);
        recordEviction(result,
                       (tagPlane[rowBase(set) + dest_way] * sets + set) *
                           p.block_bytes,
                       (dirtyBits[set] & way_bit) != 0, now);
        if (dirtyBits[set] & way_bit)
            mem.write(p.block_bytes);
        validBits[set] &= ~way_bit;
    }

    const std::uint32_t dest_row = rowOfWay(dest_way);
    const std::uint64_t dest_bit = std::uint64_t{1} << dest_way;
    tagPlane[rowBase(set) + dest_way] = tag;
    validBits[set] |= dest_bit;
    if (is_write)
        dirtyBits[set] |= dest_bit;
    else
        dirtyBits[set] &= ~dest_bit;
    touch(set, dest_way);
    ++cnt.bankDataAccesses;
    cacheEnergy.chargeData(dest_row, times.bank(dest_row, col).access_nj);

    const Cycles mem_lat = mem.read(p.block_bytes);
    acquireBank(dest_row, col, now + lookup_lat + mem_lat);

    result.hit = false;
    result.latency = is_writeback ? 0 : lookup_lat + mem_lat;
    if (obsSink && !is_writeback) [[unlikely]]
        obsSink->miss(now, block, result.latency);
    NURAPID_AUDIT_POINT(auditTick, audit(audit::hookSink()));
    return result;
}

EnergyNJ
DNucaCache::dynamicEnergyNJ() const
{
    return cacheEnergy.total_nj + mem.dynamicEnergyNJ();
}

void
DNucaCache::regionOccupancy(std::vector<std::uint64_t> &out) const
{
    out.assign(p.rows, 0);
    for (std::uint32_t s = 0; s < sets; ++s) {
        for (std::uint64_t vb = validBits[s]; vb; vb &= vb - 1) {
            const auto w =
                static_cast<std::uint32_t>(std::countr_zero(vb));
            ++out[rowOfWay(w)];
        }
    }
}

void
DNucaCache::forEachResident(const ResidentFn &fn) const
{
    for (std::uint32_t s = 0; s < sets; ++s) {
        const std::size_t base = rowBase(s);
        for (std::uint64_t vb = validBits[s]; vb; vb &= vb - 1) {
            const auto w =
                static_cast<std::uint32_t>(std::countr_zero(vb));
            fn((tagPlane[base + w] * sets + s) * p.block_bytes,
               (dirtyBits[s] >> w) & 1);
        }
    }
}

bool
DNucaCache::audit(AuditSink &sink) const
{
    bool clean = true;
    for (std::uint32_t s = 0; s < sets; ++s) {
        const std::size_t base = rowBase(s);
        for (std::uint32_t w = 0; w < p.assoc; ++w) {
            if (!((validBits[s] >> w) & 1))
                continue;
            // A duplicate tag makes the multicast search ambiguous:
            // two banks would answer the same request.
            for (std::uint32_t w2 = w + 1; w2 < p.assoc; ++w2) {
                if (((validBits[s] >> w2) & 1) &&
                    tagPlane[base + w2] == tagPlane[base + w]) {
                    clean = false;
                    sink.violation({p.name, "duplicate-tag",
                                    strprintf("tag %#llx also in way %u",
                                              static_cast<
                                                  unsigned long long>(
                                                  tagPlane[base + w]), w2),
                                    s, w, AuditViolation::kNoIndex,
                                    AuditViolation::kNoIndex});
                }
            }
        }

        // The rank plane must hold a permutation of 0..assoc-1 per
        // set, or recency scans lose their tie-free guarantee.
        if (!ranks.isPermutation(s)) {
            clean = false;
            sink.violation({p.name, "lru-rank",
                            strprintf("set %u recency ranks are not a "
                                      "permutation of %u ways", s,
                                      p.assoc),
                            s, AuditViolation::kNoIndex,
                            AuditViolation::kNoIndex,
                            AuditViolation::kNoIndex});
        }
    }
    return clean;
}

std::size_t
DNucaCache::hotStateBytes() const
{
    return (tagPlane.size() + validBits.size() + dirtyBits.size()) *
               sizeof(std::uint64_t) +
           ranks.bytes() + bankFree.size() * sizeof(Cycle);
}

void
DNucaCache::resetStats()
{
    statGroup.resetAll();
    mem.resetStats();
    regionHist.reset();
    cacheEnergy.reset();
}

} // namespace nurapid
