#include "nuca/dnuca.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace nurapid {

DNucaCache::DNucaCache(const SramMacroModel &model, const Params &params)
    : p(params),
      times(makeDNucaTiming(model, p.capacity_bytes, p.rows, p.cols,
                            p.block_bytes)),
      sets(static_cast<std::uint32_t>(
          p.capacity_bytes / (std::uint64_t{p.assoc} * p.block_bytes))),
      waysPerRow(p.assoc / p.rows),
      partialMask((Addr{1} << p.partial_tag_bits) - 1),
      lines(std::size_t{sets} * p.assoc),
      stamps(std::size_t{sets} * p.assoc, 0),
      bankFree(std::size_t{p.rows} * p.cols, 0),
      mem(p.memory), statGroup(p.name), regionHist(p.rows)
{
    fatal_if(p.assoc % p.rows != 0,
             "associativity %u not divisible across %u bank rows",
             p.assoc, p.rows);
    fatal_if(!isPowerOf2(sets), "set count %u not a power of two", sets);
    fatal_if(!isPowerOf2(p.cols), "bank-set count %u not a power of two",
             p.cols);
    fatal_if(!isPowerOf2(p.block_bytes),
             "block size %u not a power of two", p.block_bytes);
    blockShift = floorLog2(p.block_bytes);
    tagShift = blockShift + floorLog2(sets);

    statGroup.addCounter("demand_accesses", statDemandAccesses);
    statGroup.addCounter("writeback_accesses", statWritebackAccesses);
    statGroup.addCounter("hits", statHits);
    statGroup.addCounter("misses", statMisses);
    statGroup.addCounter("evictions", statEvictions);
    statGroup.addCounter("promotions", statPromotions);
    statGroup.addCounter("block_moves", statBlockMoves);
    statGroup.addCounter("bank_data_accesses", statBankDataAccesses);
    statGroup.addCounter("bank_search_probes", statBankSearchProbes);
    statGroup.addCounter("ss_probes", statSsProbes);
    statGroup.addCounter("false_partial_hits", statFalsePartialHits);
    statGroup.addCounter("bank_wait_cycles", statBankWaitCycles);
}

std::uint32_t
DNucaCache::setOf(Addr block) const
{
    return static_cast<std::uint32_t>(
        (block >> blockShift) & (sets - 1));
}

Addr
DNucaCache::tagOf(Addr block) const
{
    return block >> tagShift;
}

std::uint32_t
DNucaCache::colOf(std::uint32_t set) const
{
    return set & (p.cols - 1);
}

std::uint32_t
DNucaCache::rowOfWay(std::uint32_t way) const
{
    return way / waysPerRow;
}

DNucaCache::Line &
DNucaCache::line(std::uint32_t set, std::uint32_t way)
{
    return lines[std::size_t{set} * p.assoc + way];
}

void
DNucaCache::touch(std::uint32_t set, std::uint32_t way)
{
    stamps[std::size_t{set} * p.assoc + way] = ++clock;
}

std::uint32_t
DNucaCache::lruWayInRow(std::uint32_t set, std::uint32_t row) const
{
    const std::uint32_t first = row * waysPerRow;
    std::uint32_t best = first;
    for (std::uint32_t w = first; w < first + waysPerRow; ++w) {
        const std::size_t idx = std::size_t{set} * p.assoc + w;
        if (!lines[idx].valid)
            return w;
        if (stamps[idx] < stamps[std::size_t{set} * p.assoc + best])
            best = w;
    }
    return best;
}

Cycle
DNucaCache::acquireBank(std::uint32_t row, std::uint32_t col, Cycle at,
                        Cycles busy)
{
    Cycle &free = bankFree[std::size_t{row} * p.cols + col];
    const Cycle start = std::max(at, free);
    statBankWaitCycles += start - at;
    free = start + (busy ? busy : times.bank_busy);
    return start;
}

LowerMemory::Result
DNucaCache::access(Addr addr, AccessType type, Cycle now)
{
    const Addr block = blockAlign(addr, p.block_bytes);
    const bool is_writeback = type == AccessType::Writeback;
    const bool is_write = type == AccessType::Write || is_writeback;

    if (is_writeback)
        ++statWritebackAccesses;
    else
        ++statDemandAccesses;

    const std::uint32_t set = setOf(block);
    const std::uint32_t col = colOf(set);
    const Addr tag = tagOf(block);
    const Addr partial = tag & partialMask;

    // Ground truth: which way (if any) holds the block, and which rows
    // the smart-search array would flag as partial-tag matches.
    std::uint32_t hit_way = p.assoc;
    bool row_matches[32] = {};
    panic_if(p.rows > 32, "bank row count exceeds match bitmap");
    for (std::uint32_t w = 0; w < p.assoc; ++w) {
        const Line &l = lines[std::size_t{set} * p.assoc + w];
        if (!l.valid)
            continue;
        if (l.tag == tag)
            hit_way = w;
        if ((l.tag & partialMask) == partial)
            row_matches[rowOfWay(w)] = true;
    }
    const bool any_partial = std::any_of(row_matches,
                                         row_matches + p.rows,
                                         [](bool b) { return b; });

    Result result;
    Cycles lookup_lat = 0;

    if (p.search == DNucaSearch::SsEnergy) {
        // Probe the smart-search array, then walk only the banks whose
        // partial tags matched, closest first, until the real hit.
        ++statSsProbes;
        cacheEnergy += times.ss_access_nj;
        lookup_lat = times.ss_latency;
        const std::uint32_t hit_row =
            hit_way < p.assoc ? rowOfWay(hit_way) : p.rows;
        for (std::uint32_t r = 0; r < p.rows; ++r) {
            if (!row_matches[r])
                continue;
            ++statBankDataAccesses;
            cacheEnergy += times.bank(r, col).access_nj;
            const Cycle start = acquireBank(r, col, now + lookup_lat);
            lookup_lat = static_cast<Cycles>(start - now) +
                times.bank(r, col).latency;
            if (r == hit_row)
                break;
            ++statFalsePartialHits;
        }
    } else {
        // Multicast search: every bank of the bank set performs its
        // parallel tag+data access (the data read starts with the tag
        // compare — this is what makes multicast searching so
        // energy-hungry); the owner returns the data at its latency.
        for (std::uint32_t r = 0; r < p.rows; ++r) {
            ++statBankSearchProbes;
            ++statBankDataAccesses;
            cacheEnergy += times.bank(r, col).access_nj;
            acquireBank(r, col, now);
        }
        if (p.search == DNucaSearch::SsPerformance) {
            ++statSsProbes;
            cacheEnergy += times.ss_access_nj;
        }
        if (hit_way < p.assoc) {
            const std::uint32_t r = rowOfWay(hit_way);
            // The owning bank's access was issued by the multicast
            // above; the reply returns at that bank's latency (plus
            // any wait the occupied bank imposed).
            const Cycle start = acquireBank(r, col, now);
            lookup_lat = static_cast<Cycles>(start - now) +
                times.bank(r, col).latency;
        } else if (p.search == DNucaSearch::SsPerformance && !any_partial) {
            // Early miss determination from the smart-search array.
            lookup_lat = times.ss_latency;
        } else {
            // Miss resolved only when the slowest searched bank replies.
            if (any_partial)
                ++statFalsePartialHits;
            lookup_lat = times.maxLatencyOfMB(p.rows - 1);
        }
    }

    if (hit_way < p.assoc) {
        const std::uint32_t r = rowOfWay(hit_way);
        if (!is_writeback) {
            ++statHits;
            regionHist.sample(r);
        }
        touch(set, hit_way);
        if (is_write)
            line(set, hit_way).dirty = true;

        // Bubble promotion: swap with a block one bank closer (demand
        // hits only; L1 writebacks update in place).
        if (p.promote_on_hit && r > 0 && !is_writeback) {
            const std::uint32_t victim = lruWayInRow(set, r - 1);
            // An invalid victim way makes the "swap" a pure inward move.
            if (obsSink) [[unlikely]] {
                if (line(set, victim).valid)
                    obsSink->swap(now, block, r, r - 1);
                else
                    obsSink->promotion(now, block, r, r - 1);
            }
            std::swap(line(set, hit_way), line(set, victim));
            std::swap(stamps[std::size_t{set} * p.assoc + hit_way],
                      stamps[std::size_t{set} * p.assoc + victim]);
            ++statPromotions;
            statBlockMoves += 2;
            statBankDataAccesses += 4;
            cacheEnergy += times.swapEnergy(r - 1, r, col);
            // Both banks stay occupied while the two blocks are in
            // flight; closely-following accesses to either (e.g. the
            // next sector of a streaming L2 block) must wait — the
            // bandwidth cost of bubble promotion the paper calls out.
            const Cycles sb = times.swapBusy(r - 1, r, col);
            acquireBank(r, col, now + lookup_lat, sb);
            acquireBank(r - 1, col, now + lookup_lat, sb);
        }

        result.hit = true;
        result.latency = is_writeback ? 0 : lookup_lat;
        if (obsSink) [[unlikely]] {
            if (is_writeback)
                obsSink->writeback(now, block);
            else
                obsSink->hit(now, block, r, result.latency);
        }
        NURAPID_AUDIT_POINT(auditTick, audit(audit::hookSink()));
        return result;
    }

    // Miss path.
    if (!is_writeback)
        ++statMisses;
    if (obsSink && is_writeback) [[unlikely]]
        obsSink->writeback(now, block);

    // Prefer an invalid way (slowest rows first); otherwise evict the
    // slowest way of the set — which need not be the set-LRU block.
    std::uint32_t dest_way = p.assoc;
    for (std::uint32_t r = p.rows; r-- > 0 && dest_way == p.assoc;) {
        const std::uint32_t first = r * waysPerRow;
        for (std::uint32_t w = first; w < first + waysPerRow; ++w) {
            if (!line(set, w).valid) {
                dest_way = w;
                break;
            }
        }
    }
    if (dest_way == p.assoc) {
        dest_way = lruWayInRow(set, p.rows - 1);
        Line &v = line(set, dest_way);
        ++statEvictions;
        ++statBankDataAccesses;
        cacheEnergy += times.bank(p.rows - 1, col).access_nj;
        recordEviction(result, (v.tag * sets + set) * p.block_bytes,
                       v.dirty, now);
        if (v.dirty)
            mem.write(p.block_bytes);
        v.valid = false;
    }

    const std::uint32_t dest_row = rowOfWay(dest_way);
    Line &d = line(set, dest_way);
    d.tag = tag;
    d.valid = true;
    d.dirty = is_write;
    touch(set, dest_way);
    ++statBankDataAccesses;
    cacheEnergy += times.bank(dest_row, col).access_nj;

    const Cycles mem_lat = mem.read(p.block_bytes);
    acquireBank(dest_row, col, now + lookup_lat + mem_lat);

    result.hit = false;
    result.latency = is_writeback ? 0 : lookup_lat + mem_lat;
    if (obsSink && !is_writeback) [[unlikely]]
        obsSink->miss(now, block, result.latency);
    NURAPID_AUDIT_POINT(auditTick, audit(audit::hookSink()));
    return result;
}

EnergyNJ
DNucaCache::dynamicEnergyNJ() const
{
    return cacheEnergy + mem.dynamicEnergyNJ();
}

void
DNucaCache::regionOccupancy(std::vector<std::uint64_t> &out) const
{
    out.assign(p.rows, 0);
    for (std::uint32_t s = 0; s < sets; ++s) {
        for (std::uint32_t w = 0; w < p.assoc; ++w) {
            if (lines[std::size_t{s} * p.assoc + w].valid)
                ++out[rowOfWay(w)];
        }
    }
}

void
DNucaCache::forEachResident(const ResidentFn &fn) const
{
    for (std::uint32_t s = 0; s < sets; ++s) {
        for (std::uint32_t w = 0; w < p.assoc; ++w) {
            const Line &l = lines[std::size_t{s} * p.assoc + w];
            if (l.valid)
                fn((l.tag * sets + s) * p.block_bytes, l.dirty);
        }
    }
}

bool
DNucaCache::audit(AuditSink &sink) const
{
    bool clean = true;
    for (std::uint32_t s = 0; s < sets; ++s) {
        for (std::uint32_t w = 0; w < p.assoc; ++w) {
            const std::size_t idx = std::size_t{s} * p.assoc + w;
            const Line &l = lines[idx];
            if (!l.valid)
                continue;
            // A duplicate tag makes the multicast search ambiguous:
            // two banks would answer the same request.
            for (std::uint32_t w2 = w + 1; w2 < p.assoc; ++w2) {
                const Line &o = lines[std::size_t{s} * p.assoc + w2];
                if (o.valid && o.tag == l.tag) {
                    clean = false;
                    sink.violation({p.name, "duplicate-tag",
                                    strprintf("tag %#llx also in way %u",
                                              static_cast<
                                                  unsigned long long>(
                                                  l.tag), w2),
                                    s, w, AuditViolation::kNoIndex,
                                    AuditViolation::kNoIndex});
                }
            }
            if (stamps[idx] > clock) {
                clean = false;
                sink.violation({p.name, "stamp-beyond-clock",
                                strprintf("stamp %llu > clock %llu",
                                          static_cast<unsigned long long>(
                                              stamps[idx]),
                                          static_cast<unsigned long long>(
                                              clock)),
                                s, w, AuditViolation::kNoIndex,
                                AuditViolation::kNoIndex});
            }
        }
    }
    return clean;
}

void
DNucaCache::resetStats()
{
    statGroup.resetAll();
    mem.resetStats();
    regionHist.reset();
    cacheEnergy = 0;
}

} // namespace nurapid
