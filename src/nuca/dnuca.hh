/**
 * @file
 * The D-NUCA baseline (Kim, Burger, Keckler — ASPLOS'02), configured as
 * the paper's comparison point (Section 4): 8 MB, 16-way, 128 x 64 KB
 * banks arranged as 16 bank sets (columns) of 8 bank-d-groups (rows),
 * parallel tag-data access within banks, a partial-tag smart-search
 * array (7 LSBs per tag), bubble promotion/demotion within the set,
 * insertion in the slowest bank, and eviction of the slowest way.
 *
 * Idealizations the paper grants D-NUCA (we grant them too):
 *  - an infinite-bandwidth switched network (swaps and accesses proceed
 *    concurrently; only per-bank occupancy is modeled);
 *  - an infinite-bandwidth smart-search array kept perfectly in sync;
 *  - zero switch energy.
 */

#ifndef NURAPID_NUCA_DNUCA_HH
#define NURAPID_NUCA_DNUCA_HH

#include <string>
#include <vector>

#include "mem/lower_memory.hh"
#include "mem/main_memory.hh"
#include "mem/rank_plane.hh"
#include "timing/latency_tables.hh"

namespace nurapid {

/** How D-NUCA locates the matching bank (Section 5.4). */
enum class DNucaSearch : std::uint8_t {
    Multicast,      //!< search every bank of the bank set in parallel
    SsPerformance,  //!< multicast + smart-search for early miss detect
    SsEnergy,       //!< smart-search first, then only matching banks
};

constexpr const char *
dnucaSearchName(DNucaSearch s)
{
    switch (s) {
      case DNucaSearch::Multicast: return "multicast";
      case DNucaSearch::SsPerformance: return "ss-performance";
      case DNucaSearch::SsEnergy: return "ss-energy";
    }
    return "unknown";
}

class DNucaCache final : public LowerMemory
{
  public:
    struct Params
    {
        std::string name = "dnuca";
        std::uint64_t capacity_bytes = 8ull << 20;
        std::uint32_t assoc = 16;
        std::uint32_t block_bytes = 128;
        std::uint32_t rows = 8;    //!< bank d-groups per set
        std::uint32_t cols = 16;   //!< bank sets
        DNucaSearch search = DNucaSearch::SsPerformance;
        std::uint32_t partial_tag_bits = 7;
        bool promote_on_hit = true;  //!< bubble promotion policy
        MainMemory::Params memory{};
    };

    DNucaCache(const SramMacroModel &model, const Params &params);

    Result access(Addr addr, AccessType type, Cycle now) override;

    EnergyNJ dynamicEnergyNJ() const override;
    EnergyNJ cacheEnergyNJ() const override { return cacheEnergy.total_nj; }
    const EnergyBreakdown *energyBreakdown() const override
    {
        return &cacheEnergy;
    }
    const std::string &name() const override { return p.name; }
    StatGroup &stats() override { return statGroup; }
    const StatGroup &stats() const override { return statGroup; }
    const Histogram &regionHits() const override { return regionHist; }
    void resetStats() override;
    void forEachResident(const ResidentFn &fn) const override;

    /** Valid-block count per latency region. */
    void regionOccupancy(std::vector<std::uint64_t> &out) const override;
    bool audit(AuditSink &sink) const override;
    std::size_t hotStateBytes() const override;

    /** Hints the upcoming access's hot plane lines into cache: tag
     *  row, valid bitmap word, rank word. Pure prefetch (hides the
     *  virtual no-op of LowerMemory on devirtualized paths). */
    void
    prefetchHotLines(Addr addr) const
    {
        const std::uint32_t set = setOf(blockAlign(addr, p.block_bytes));
        __builtin_prefetch(&tagPlane[rowBase(set)], 0, 3);
        __builtin_prefetch(&validBits[set], 0, 3);
        __builtin_prefetch(ranks.setWords(set), 1, 3);
    }

    MainMemory &memory() { return mem; }
    const DNucaTiming &timing() const { return times; }

  private:
    std::uint32_t setOf(Addr block) const;
    Addr tagOf(Addr block) const;
    std::uint32_t colOf(std::uint32_t set) const;
    std::uint32_t rowOfWay(std::uint32_t way) const;
    std::uint32_t lruWayInRow(std::uint32_t set, std::uint32_t row) const;
    void touch(std::uint32_t set, std::uint32_t way);

    /** First word of @p set's row in the way-indexed planes. */
    std::size_t
    rowBase(std::uint32_t set) const
    {
        return std::size_t{set} << strideShift;
    }

    /** Waits for and occupies bank (row, col) for @p busy cycles
     *  (0 = the standard per-access occupancy); returns the start. */
    Cycle acquireBank(std::uint32_t row, std::uint32_t col, Cycle at,
                      Cycles busy = 0);

    Params p;
    DNucaTiming times;
    std::uint32_t sets;
    std::uint32_t waysPerRow;
    unsigned blockShift = 0;  //!< log2(block_bytes)
    unsigned tagShift = 0;    //!< log2(block_bytes * sets)
    std::uint32_t wayStride = 1;  //!< pow2 plane row width >= assoc
    unsigned strideShift = 0;     //!< log2(wayStride)
    std::uint64_t waysMask = 0;   //!< low assoc bits set
    Addr partialMask;

    // Structure-of-arrays tag state: [set << strideShift | way] planes
    // plus one bitmap word per set. Recency is a packed exact-LRU
    // rank plane (mem/rank_plane.hh): one word per 16-way set instead
    // of sixteen 64-bit stamps.
    std::vector<std::uint64_t> tagPlane;
    std::vector<std::uint64_t> validBits;  //!< [set]
    std::vector<std::uint64_t> dirtyBits;  //!< [set]
    RankPlane ranks;
    std::vector<Cycle> bankFree;  //!< [row * cols + col]
    MainMemory mem;
    /** Regions = bank rows; total_nj is the pre-refactor accumulator. */
    EnergyBreakdown cacheEnergy{p.rows};
    std::uint64_t auditTick = 0;  //!< periodic-audit access counter

    StatGroup statGroup;
    /** Counters packed into one cache-line-aligned block so gang lanes
     *  stop dirtying 12 scattered counter lines. */
    struct alignas(64) Counters
    {
        Counter demandAccesses;
        Counter writebackAccesses;
        Counter hits;
        Counter misses;
        Counter bankDataAccesses;   //!< data-array reads/writes
        Counter bankSearchProbes;   //!< tag-only probes during search
        Counter ssProbes;
        Counter bankWaitCycles;
        Counter evictions;
        Counter promotions;
        Counter blockMoves;
        Counter falsePartialHits;
    };
    Counters cnt;
    Histogram regionHist;
};

} // namespace nurapid

#endif // NURAPID_NUCA_DNUCA_HH
