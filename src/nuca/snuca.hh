/**
 * @file
 * S-NUCA: the *static* NUCA baseline (Kim, Burger, Keckler —
 * ASPLOS'02; discussed in the paper's related work as the design
 * D-NUCA improves on).
 *
 * Blocks map statically to one bank by address — no migration, no
 * search, no smart-search array. An access routes directly to its bank
 * and pays that bank's non-uniform latency. Simple and cheap, but hot
 * data enjoys no locality-of-distance: its latency is whatever its
 * address hashes to. Included as the library's third NUCA point and
 * for the `bench_ablation_snuca` comparison.
 */

#ifndef NURAPID_NUCA_SNUCA_HH
#define NURAPID_NUCA_SNUCA_HH

#include <string>
#include <vector>

#include "mem/lower_memory.hh"
#include "mem/main_memory.hh"
#include "mem/set_assoc_cache.hh"
#include "timing/latency_tables.hh"

namespace nurapid {

class SNucaCache final : public LowerMemory
{
  public:
    struct Params
    {
        std::string name = "snuca";
        std::uint64_t capacity_bytes = 8ull << 20;
        std::uint32_t assoc = 16;   //!< per-bank associativity
        std::uint32_t block_bytes = 128;
        std::uint32_t rows = 8;
        std::uint32_t cols = 16;
        MainMemory::Params memory{};
    };

    SNucaCache(const SramMacroModel &model, const Params &params);

    Result access(Addr addr, AccessType type, Cycle now) override;

    EnergyNJ dynamicEnergyNJ() const override;
    EnergyNJ cacheEnergyNJ() const override { return cacheEnergy.total_nj; }
    const EnergyBreakdown *energyBreakdown() const override
    {
        return &cacheEnergy;
    }
    const std::string &name() const override { return p.name; }
    StatGroup &stats() override { return statGroup; }
    const StatGroup &stats() const override { return statGroup; }
    const Histogram &regionHits() const override { return regionHist; }
    void resetStats() override;
    void forEachResident(const ResidentFn &fn) const override;

    /** Valid-block count per latency region. */
    void regionOccupancy(std::vector<std::uint64_t> &out) const override;
    bool audit(AuditSink &sink) const override;

    MainMemory &memory() { return mem; }
    const DNucaTiming &timing() const { return times; }

    /** Static bank of an address (row-major index). */
    std::uint32_t bankOf(Addr block) const;

    /** Stream-lookahead hint (name-hiding, see LowerMemory): pulls the
     *  statically-addressed bank's set row into the host cache. */
    void
    prefetchHotLines(Addr addr) const
    {
        banks[bankOf(blockAlign(addr, p.block_bytes))]
            .prefetchHotLines(addr);
    }

    /** Sum of the banks' plane footprints for gang cohort budgeting. */
    std::size_t
    hotStateBytes() const override
    {
        std::size_t n = bankFree.size() * sizeof(Cycle);
        for (const SetAssocCache &b : banks)
            n += b.hotBytes();
        return n;
    }

  private:
    Params p;
    DNucaTiming times;  //!< same grid timing as D-NUCA
    std::vector<SetAssocCache> banks;
    std::vector<Cycle> bankFree;
    MainMemory mem;
    /** Regions = bank rows; total_nj is the pre-refactor accumulator. */
    EnergyBreakdown cacheEnergy{p.rows};

    StatGroup statGroup;
    /** Counters packed into one cache-line-aligned block so gang lanes
     *  stop dirtying 5 scattered counter lines. */
    struct alignas(64) Counters
    {
        Counter demandAccesses;
        Counter writebackAccesses;
        Counter hits;
        Counter misses;
        Counter bankWaitCycles;
    };
    Counters cnt;
    Histogram regionHist;
};

} // namespace nurapid

#endif // NURAPID_NUCA_SNUCA_HH
