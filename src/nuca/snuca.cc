#include "nuca/snuca.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace nurapid {

SNucaCache::SNucaCache(const SramMacroModel &model, const Params &params)
    : p(params),
      times(makeDNucaTiming(model, p.capacity_bytes, p.rows, p.cols,
                            p.block_bytes)),
      bankFree(std::size_t{p.rows} * p.cols, 0),
      mem(p.memory), statGroup(p.name), regionHist(p.rows)
{
    const std::uint64_t bank_bytes =
        p.capacity_bytes / (std::uint64_t{p.rows} * p.cols);
    fatal_if(bank_bytes < p.assoc * p.block_bytes,
             "S-NUCA banks too small for the configured associativity");
    banks.reserve(std::size_t{p.rows} * p.cols);
    for (std::uint32_t b = 0; b < p.rows * p.cols; ++b) {
        banks.emplace_back(CacheOrg{
            strprintf("%s.bank%u", p.name.c_str(), b), bank_bytes,
            p.assoc, p.block_bytes, ReplPolicy::LRU, b + 1});
    }

    statGroup.addCounter("demand_accesses", cnt.demandAccesses);
    statGroup.addCounter("writeback_accesses", cnt.writebackAccesses);
    statGroup.addCounter("hits", cnt.hits);
    statGroup.addCounter("misses", cnt.misses);
    statGroup.addCounter("bank_wait_cycles", cnt.bankWaitCycles);
}

std::uint32_t
SNucaCache::bankOf(Addr block) const
{
    // Low block-address bits select the bank (row-major), spreading
    // consecutive blocks across banks — the standard S-NUCA mapping.
    return static_cast<std::uint32_t>(
        (block / p.block_bytes) % (p.rows * p.cols));
}

LowerMemory::Result
SNucaCache::access(Addr addr, AccessType type, Cycle now)
{
    const Addr block = blockAlign(addr, p.block_bytes);
    const bool is_writeback = type == AccessType::Writeback;
    const bool is_write = type == AccessType::Write || is_writeback;

    if (is_writeback)
        ++cnt.writebackAccesses;
    else
        ++cnt.demandAccesses;

    const std::uint32_t bank_idx = bankOf(block);
    const std::uint32_t row = bank_idx / p.cols;
    const std::uint32_t col = bank_idx % p.cols;

    // Bank occupancy (S-NUCA is multibanked like D-NUCA).
    Cycle &free = bankFree[bank_idx];
    const Cycle start = std::max(now, free);
    cnt.bankWaitCycles += start - now;
    free = start + times.bank_busy;

    cacheEnergy.chargeData(row, times.bank(row, col).access_nj);

    Result result;
    if (obsSink && is_writeback) [[unlikely]]
        obsSink->writeback(now, block);
    auto r = banks[bank_idx].access(block, is_write);
    if (r.evicted) {
        recordEviction(result, r.evicted_addr, r.evicted_dirty, now);
        if (r.evicted_dirty)
            mem.write(p.block_bytes);
    }

    const auto wait = static_cast<Cycles>(start - now);
    if (r.hit) {
        if (!is_writeback) {
            ++cnt.hits;
            regionHist.sample(row);
        }
        result.hit = true;
        result.latency =
            is_writeback ? 0 : wait + times.bank(row, col).latency;
        if (obsSink && !is_writeback) [[unlikely]]
            obsSink->hit(now, block, row, result.latency);
    } else {
        if (!is_writeback)
            ++cnt.misses;
        const Cycles mem_lat = mem.read(p.block_bytes);
        cacheEnergy.chargeData(row, times.bank(row, col).access_nj);  // fill write
        result.hit = false;
        // The miss is known once the addressed bank's tags reply.
        result.latency = is_writeback
            ? 0
            : wait + times.bank(row, col).latency + mem_lat;
        if (obsSink && !is_writeback) [[unlikely]]
            obsSink->miss(now, block, result.latency);
    }
    return result;
}

EnergyNJ
SNucaCache::dynamicEnergyNJ() const
{
    return cacheEnergy.total_nj + mem.dynamicEnergyNJ();
}

void
SNucaCache::regionOccupancy(std::vector<std::uint64_t> &out) const
{
    out.assign(p.rows, 0);
    for (std::uint32_t b = 0; b < banks.size(); ++b)
        out[b / p.cols] += banks[b].validCount();
}

void
SNucaCache::forEachResident(const ResidentFn &fn) const
{
    for (const auto &b : banks)
        b.forEachValid(fn);
}

bool
SNucaCache::audit(AuditSink &sink) const
{
    bool clean = true;
    for (std::uint32_t b = 0; b < banks.size(); ++b) {
        if (!banks[b].audit(sink))
            clean = false;
        // Static placement: every block in bank b must map there.
        banks[b].forEachValid([&](Addr addr, bool) {
            if (bankOf(addr) != b) {
                clean = false;
                sink.violation({p.name, "bank-misplacement",
                                strprintf("block %#llx in bank %u, maps "
                                          "to bank %u",
                                          static_cast<unsigned long long>(
                                              addr),
                                          b, bankOf(addr)),
                                AuditViolation::kNoIndex,
                                AuditViolation::kNoIndex,
                                AuditViolation::kNoIndex,
                                AuditViolation::kNoIndex});
            }
        });
    }
    return clean;
}

void
SNucaCache::resetStats()
{
    statGroup.resetAll();
    for (auto &b : banks)
        b.stats().resetAll();
    mem.resetStats();
    regionHist.reset();
    cacheEnergy.reset();
}

} // namespace nurapid
