#include "timing/tech.hh"

#include <cmath>

namespace nurapid {

const TechParams &
TechParams::the70nm()
{
    static const TechParams params{};
    return params;
}

std::uint32_t
TechParams::toCycles(double ns) const
{
    auto whole = static_cast<std::uint32_t>(std::floor(ns / cycle_ns + 0.5));
    return whole == 0 ? 1 : whole;
}

double
TechParams::wireBlockNJ(double mm) const
{
    if (mm <= 0.0)
        return 0.0;
    return wire_block_nj_coeff * std::pow(mm, wire_energy_exponent);
}

double
TechParams::wireAddrNJ(double mm) const
{
    return mm <= 0.0 ? 0.0 : wire_addr_nj_per_mm * mm;
}

} // namespace nurapid
