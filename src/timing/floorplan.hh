/**
 * @file
 * Physical placement of d-groups (NuRAPID) and bank grids (D-NUCA).
 *
 * NuRAPID uses the paper's L-shaped floorplan (Figure 3b): d-groups are
 * placed along a path starting at the processor-core corner; reaching
 * d-group i requires routing around every closer d-group (Section 4's
 * Cacti modification #2). D-NUCA uses the paper's rectangular 16x8 bank
 * grid (Figure 3a) reached through a switched network.
 */

#ifndef NURAPID_TIMING_FLOORPLAN_HH
#define NURAPID_TIMING_FLOORPLAN_HH

#include <cstdint>
#include <vector>

#include "timing/geometry.hh"

namespace nurapid {

/**
 * L-shaped floorplan for a small number of large d-groups.
 *
 * Each d-group occupies a roughly square region of side sqrt(area); the
 * route to d-group i runs past d-groups 0..i-1 and ends at i's center.
 */
class LShapeFloorplan
{
  public:
    LShapeFloorplan(const SramMacroModel &model,
                    const std::vector<std::uint64_t> &dgroup_bytes);

    /** One-way route distance from the core to d-group i's center, mm. */
    double routeMm(std::size_t dgroup) const;

    /** One-way route distance between two d-group centers, mm. */
    double betweenMm(std::size_t a, std::size_t b) const;

    /** One-way distance to the far edge of the whole array, mm. */
    double farEdgeMm() const;

    std::size_t numDGroups() const { return centers.size(); }

  private:
    std::vector<double> centers;  //!< path position of each center, mm
    double pathLength = 0.0;
};

/**
 * D-NUCA bank grid: @p cols bank columns (one per bank set) and
 * @p rows banks deep. The core sits below the middle of row 0, so a
 * bank's route has a vertical component (rows crossed, each adding
 * wire plus a router hop) and a horizontal component (wire only).
 */
class BankGridFloorplan
{
  public:
    BankGridFloorplan(const SramMacroModel &model, unsigned rows,
                      unsigned cols, std::uint64_t bank_bytes);

    /** One-way vertical wire distance to bank row r, mm. */
    double verticalMm(unsigned row) const;

    /** One-way horizontal wire distance to bank column c, mm. */
    double horizontalMm(unsigned col) const;

    /** Total one-way route distance to bank (r, c), mm. */
    double routeMm(unsigned row, unsigned col) const;

    /** Router hops traversed one-way to reach row r. */
    unsigned hops(unsigned row) const { return row + 1; }

    double bankPitchMm() const { return pitch; }
    unsigned rows() const { return nRows; }
    unsigned cols() const { return nCols; }

  private:
    unsigned nRows;
    unsigned nCols;
    double pitch;  //!< side of one square bank, mm
};

} // namespace nurapid

#endif // NURAPID_TIMING_FLOORPLAN_HH
