#include "timing/geometry.hh"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/logging.hh"

namespace nurapid {

namespace {

/** One calibration anchor: capacity in KB -> model outputs. */
struct Anchor
{
    double cap_kb;
    double access_ns;   //!< data-array access latency
    double read_nj;     //!< per-block dynamic read energy
};

/**
 * Cacti-like anchors at 70 nm for 128 B block reads. Calibrated so the
 * full model (this + wires + floorplans, see latency_tables.cc) lands on
 * the paper's published points: NuRAPID fastest-d-group latencies of
 * 19/14/12 cycles for 2/4/8 d-groups, D-NUCA per-MB averages of
 * ~7..29 cycles, conventional 1 MB @ 11 and 8 MB @ 43 cycles, and the
 * Table 2 energies (0.42/3.3 nJ for 4x2MB closest/farthest etc.).
 */
constexpr Anchor kDataAnchors[] = {
    {   16.0, 0.28, 0.060 },
    {   64.0, 0.42, 0.105 },
    {  256.0, 0.55, 0.140 },
    { 1024.0, 0.66, 0.180 },
    { 2048.0, 0.92, 0.210 },
    { 4096.0, 1.62, 0.260 },
    { 8192.0, 3.40, 0.320 },
};

/** Piecewise-linear interpolation in log2(capacity). */
double
interp(double cap_kb, double Anchor::*field)
{
    constexpr std::size_t n = std::size(kDataAnchors);
    if (cap_kb <= kDataAnchors[0].cap_kb)
        return kDataAnchors[0].*field;
    if (cap_kb >= kDataAnchors[n - 1].cap_kb) {
        // Extrapolate with the last segment's log-slope.
        const Anchor &a = kDataAnchors[n - 2];
        const Anchor &b = kDataAnchors[n - 1];
        double t = (std::log2(cap_kb) - std::log2(a.cap_kb)) /
            (std::log2(b.cap_kb) - std::log2(a.cap_kb));
        return a.*field + t * (b.*field - a.*field);
    }
    for (std::size_t i = 0; i + 1 < n; ++i) {
        const Anchor &a = kDataAnchors[i];
        const Anchor &b = kDataAnchors[i + 1];
        if (cap_kb <= b.cap_kb) {
            double t = (std::log2(cap_kb) - std::log2(a.cap_kb)) /
                (std::log2(b.cap_kb) - std::log2(a.cap_kb));
            return a.*field + t * (b.*field - a.*field);
        }
    }
    return kDataAnchors[n - 1].*field;
}

} // namespace

SramMacroModel::SramMacroModel(const TechParams &tech_params)
    : techParams(tech_params)
{
}

double
SramMacroModel::dataAccessNs(std::uint64_t capacity_bytes) const
{
    fatal_if(capacity_bytes == 0, "zero-capacity data macro");
    return interp(capacity_bytes / 1024.0, &Anchor::access_ns);
}

double
SramMacroModel::dataReadNJ(std::uint64_t capacity_bytes) const
{
    fatal_if(capacity_bytes == 0, "zero-capacity data macro");
    return interp(capacity_bytes / 1024.0, &Anchor::read_nj);
}

double
SramMacroModel::dataWriteNJ(std::uint64_t capacity_bytes) const
{
    // Writes skip the sense amps but drive the full bitline swing;
    // Cacti puts them within ~10% of reads for these geometries.
    return 1.05 * dataReadNJ(capacity_bytes);
}

double
SramMacroModel::tagAccessNs(std::uint64_t tag_entries, unsigned assoc) const
{
    fatal_if(tag_entries == 0, "empty tag macro");
    // A tag entry is ~8 B (51-bit tag + state + forward pointer). The
    // macro behaves like a small data array plus an associative compare
    // stage that deepens slowly with associativity.
    const double tag_bytes = static_cast<double>(tag_entries) * 8.0;
    const double array_ns = interp(tag_bytes / 1024.0, &Anchor::access_ns);
    // Way-compare plus the deeper decode/select trees of larger tag
    // macros (the paper's 8 MB 8-way tag probes in 8 cycles).
    const double entries_k =
        std::max(1.0, static_cast<double>(tag_entries) / 1024.0);
    const double compare_ns = 0.25 + 0.10 * std::log2(double(assoc) + 1.0) +
        0.05 * std::log2(entries_k);
    return array_ns + compare_ns;
}

double
SramMacroModel::tagAccessNJ(std::uint64_t tag_entries, unsigned assoc) const
{
    const double tag_bytes = static_cast<double>(tag_entries) * 8.0;
    const double array_nj = interp(tag_bytes / 1024.0, &Anchor::read_nj);
    // All ways of the indexed set are read and compared, but a tag read
    // is narrow (8 B vs a 128 B block), so scale down accordingly and
    // charge the comparators per way.
    return 0.30 * array_nj + 0.004 * assoc;
}

double
SramMacroModel::areaMm2(std::uint64_t capacity_bytes) const
{
    return techParams.mm2_per_mb *
        (static_cast<double>(capacity_bytes) / (1024.0 * 1024.0));
}

} // namespace nurapid
