/**
 * @file
 * Derived timing/energy tables consumed by the behavioral cache models.
 *
 * These structs are the boundary between the physical model (tech +
 * geometry + floorplan) and the behavioral simulators in src/mem,
 * src/nuca and src/nurapid: the simulators never see nanoseconds or
 * millimetres, only cycles and nanojoules.
 */

#ifndef NURAPID_TIMING_LATENCY_TABLES_HH
#define NURAPID_TIMING_LATENCY_TABLES_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "timing/floorplan.hh"
#include "timing/geometry.hh"

namespace nurapid {

/** Timing/energy of one NuRAPID d-group. */
struct DGroupTiming
{
    Cycles total_latency;    //!< tag + route + data-array access, cycles
    Cycles data_latency;     //!< route + data-array access only, cycles
    Cycles array_latency;    //!< data-array access alone (no route);
                             //!< this is what occupies the single port
    double route_mm;         //!< one-way route distance from the core
    EnergyNJ read_nj;        //!< tag probe + route + data read
    EnergyNJ data_read_nj;   //!< route + data read (no tag), for swaps
    EnergyNJ data_write_nj;  //!< route + data write (no tag), for swaps
};

/** Full timing/energy description of one NuRAPID configuration. */
struct NuRapidTiming
{
    /**
     * Initiation interval of the (pipelined) one-ported arrays: a new
     * access may start every port_cycle cycles. Swaps, in contrast,
     * hold the port for their full duration (Section 2.3: "any
     * outstanding swaps must complete before a new access is
     * initiated").
     */
    Cycles port_cycle = 1;

    Cycles tag_latency;        //!< centralized tag array probe, cycles
    EnergyNJ tag_read_nj;      //!< tag probe (all ways + fwd pointer out)
    EnergyNJ tag_write_nj;     //!< tag/forward-pointer update
    EnergyNJ array_read_nj;    //!< raw d-group array read (no routing)
    EnergyNJ array_write_nj;   //!< raw d-group array write (no routing)
    std::vector<DGroupTiming> dgroups;

    /** One-way route distance between two d-group centers, mm. */
    std::vector<std::vector<double>> between_mm;

    /**
     * Cycles the single port stays busy moving one block from d-group
     * @p from to d-group @p to (a demotion or promotion leg).
     */
    Cycles swapBusy(unsigned from, unsigned to) const;

    /** Dynamic energy of that block move (incl. pointer updates), nJ. */
    EnergyNJ swapEnergy(unsigned from, unsigned to) const;

    std::size_t numDGroups() const { return dgroups.size(); }
};

/** Builds the NuRAPID tables for a given organization. */
NuRapidTiming makeNuRapidTiming(const SramMacroModel &model,
                                std::uint64_t capacity_bytes,
                                unsigned num_dgroups, unsigned assoc,
                                unsigned block_bytes);

/** Timing/energy of one D-NUCA bank. */
struct DNucaBankTiming
{
    Cycles latency;      //!< request + bank access + reply, cycles
    double route_mm;     //!< one-way route distance
    EnergyNJ access_nj;  //!< parallel tag+data access + route energy
    EnergyNJ search_nj;  //!< tag-only probe during a multicast search
};

/** Full timing/energy description of the D-NUCA baseline. */
struct DNucaTiming
{
    unsigned rows = 0;     //!< bank depth (d-groups per set; 8)
    unsigned cols = 0;     //!< bank sets (16)
    std::vector<DNucaBankTiming> banks;  //!< row-major [row*cols + col]

    Cycles ss_latency;     //!< smart-search array probe, cycles
    EnergyNJ ss_access_nj;
    EnergyNJ bank_raw_nj;  //!< one bank's tag+data access, no routing

    Cycles bank_busy;      //!< bank occupancy per access (multibanked)

    const DNucaBankTiming &bank(unsigned row, unsigned col) const;

    /**
     * Cycles both banks stay occupied by one bubble swap: a read and a
     * write in each bank plus the two in-flight block transfers
     * between the adjacent rows. Accesses arriving at either bank
     * while the swap is in flight must wait.
     */
    Cycles swapBusy(unsigned r1, unsigned r2, unsigned col) const;

    /** Energy of one bubble swap between rows r1 and r2 of column c. */
    EnergyNJ swapEnergy(unsigned r1, unsigned r2, unsigned col) const;

    /** Average access latency over the banks making up megabyte @p mb. */
    double avgLatencyOfMB(unsigned mb) const;
    Cycles minLatencyOfMB(unsigned mb) const;
    Cycles maxLatencyOfMB(unsigned mb) const;
};

/** Builds the D-NUCA tables (16 x 8 grid of 64 KB banks for 8 MB). */
DNucaTiming makeDNucaTiming(const SramMacroModel &model,
                            std::uint64_t capacity_bytes, unsigned rows,
                            unsigned cols, unsigned block_bytes);

/** Timing/energy of a conventional uniform-access cache. */
struct UniformCacheTiming
{
    Cycles latency;
    Cycles tag_latency;  //!< tag-only probe (miss determination)
    EnergyNJ read_nj;
    EnergyNJ write_nj;
};

/**
 * Builds tables for a conventional uniform cache (L1s, and the base
 * case's L2/L3). @p sequential selects sequential tag-data access
 * (lower-level caches) vs parallel (L1s). @p ports scales energy.
 * @p latency_override, if non-zero, pins the latency to a configured
 * value (the paper's Table 1 inputs) while energy still comes from the
 * model.
 */
UniformCacheTiming makeUniformTiming(const SramMacroModel &model,
                                     std::uint64_t capacity_bytes,
                                     unsigned assoc, unsigned block_bytes,
                                     bool sequential, unsigned ports = 1,
                                     Cycles latency_override = 0);

} // namespace nurapid

#endif // NURAPID_TIMING_LATENCY_TABLES_HH
