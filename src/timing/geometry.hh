/**
 * @file
 * SRAM-macro access time and energy as a function of capacity.
 *
 * A data array of capacity C is built from many small subarrays
 * (Section 3.1 of the paper; cf. the 135-subarray Itanium II L3). The
 * access time of the *macro* is dominated by decode + intra-macro
 * routing, which grows with sqrt(area), plus subarray access. Rather
 * than re-deriving Cacti's transistor-level model we interpolate
 * between Cacti-like anchor points (log-capacity linear interpolation),
 * which is exactly the fidelity the paper consumes.
 */

#ifndef NURAPID_TIMING_GEOMETRY_HH
#define NURAPID_TIMING_GEOMETRY_HH

#include <cstdint>

#include "common/types.hh"
#include "timing/tech.hh"

namespace nurapid {

/**
 * Access-time/energy model for a tagless data macro (a d-group, a
 * D-NUCA bank data array, or a conventional cache data array).
 */
class SramMacroModel
{
  public:
    explicit SramMacroModel(const TechParams &tech_params);

    /** Access latency (decode + wordline + bitline + sense), ns. */
    double dataAccessNs(std::uint64_t capacity_bytes) const;

    /** Dynamic read energy for one block access, nJ. */
    double dataReadNJ(std::uint64_t capacity_bytes) const;

    /** Dynamic write energy for one block fill, nJ. */
    double dataWriteNJ(std::uint64_t capacity_bytes) const;

    /**
     * Latency of a set-associative tag macro, ns. Covers decode,
     * compare, and way-select for @p tag_entries tags of an
     * @p assoc -way cache (wider compares for higher associativity).
     */
    double tagAccessNs(std::uint64_t tag_entries, unsigned assoc) const;

    /** Dynamic energy of one tag-macro probe (all ways compared), nJ. */
    double tagAccessNJ(std::uint64_t tag_entries, unsigned assoc) const;

    /** Physical footprint of a data macro, mm^2. */
    double areaMm2(std::uint64_t capacity_bytes) const;

    const TechParams &tech() const { return techParams; }

  private:
    const TechParams &techParams;
};

} // namespace nurapid

#endif // NURAPID_TIMING_GEOMETRY_HH
