#include "timing/floorplan.hh"

#include <cmath>

#include "common/logging.hh"

namespace nurapid {

LShapeFloorplan::LShapeFloorplan(const SramMacroModel &model,
                                 const std::vector<std::uint64_t> &dgroup_bytes)
{
    fatal_if(dgroup_bytes.empty(), "floorplan needs at least one d-group");
    double pos = 0.0;
    centers.reserve(dgroup_bytes.size());
    for (std::uint64_t bytes : dgroup_bytes) {
        double extent = std::sqrt(model.areaMm2(bytes));
        centers.push_back(pos + extent / 2.0);
        pos += extent;
    }
    pathLength = pos;
}

double
LShapeFloorplan::routeMm(std::size_t dgroup) const
{
    panic_if(dgroup >= centers.size(), "d-group %zu out of range", dgroup);
    return centers[dgroup];
}

double
LShapeFloorplan::betweenMm(std::size_t a, std::size_t b) const
{
    panic_if(a >= centers.size() || b >= centers.size(),
             "d-group pair (%zu, %zu) out of range", a, b);
    return std::abs(centers[a] - centers[b]);
}

double
LShapeFloorplan::farEdgeMm() const
{
    return pathLength;
}

BankGridFloorplan::BankGridFloorplan(const SramMacroModel &model,
                                     unsigned rows, unsigned cols,
                                     std::uint64_t bank_bytes)
    : nRows(rows), nCols(cols),
      pitch(std::sqrt(model.areaMm2(bank_bytes)))
{
    fatal_if(rows == 0 || cols == 0, "empty bank grid");
}

double
BankGridFloorplan::verticalMm(unsigned row) const
{
    panic_if(row >= nRows, "bank row %u out of range", row);
    return (row + 0.5) * pitch;
}

double
BankGridFloorplan::horizontalMm(unsigned col) const
{
    panic_if(col >= nCols, "bank column %u out of range", col);
    double mid = (nCols - 1) / 2.0;
    return std::abs(col - mid) * pitch;
}

double
BankGridFloorplan::routeMm(unsigned row, unsigned col) const
{
    return verticalMm(row) + horizontalMm(col);
}

} // namespace nurapid
