#include "timing/latency_tables.hh"

#include <cmath>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace nurapid {

Cycles
NuRapidTiming::swapBusy(unsigned from, unsigned to) const
{
    panic_if(from >= dgroups.size() || to >= dgroups.size(),
             "swap between invalid d-groups %u and %u", from, to);
    // Read at the source, then write at the destination. The single
    // port is held for the two array operations; the inter-d-group
    // transfer rides the wires without occupying the arrays.
    return dgroups[from].array_latency + dgroups[to].array_latency;
}

EnergyNJ
NuRapidTiming::swapEnergy(unsigned from, unsigned to) const
{
    panic_if(from >= dgroups.size() || to >= dgroups.size(),
             "swap between invalid d-groups %u and %u", from, to);
    // One block moves: a raw array read at 'from', a raw array write
    // at 'to', the block transfer *between the two d-groups* (not via
    // the core), and a tag update (forward pointer; the reverse
    // pointer rides in the data write).
    const double dist_mm = between_mm[from][to];
    return array_read_nj + array_write_nj +
        TechParams::the70nm().wireBlockNJ(dist_mm) + tag_write_nj;
}

NuRapidTiming
makeNuRapidTiming(const SramMacroModel &model, std::uint64_t capacity_bytes,
                  unsigned num_dgroups, unsigned assoc, unsigned block_bytes)
{
    fatal_if(num_dgroups == 0, "NuRAPID needs at least one d-group");
    fatal_if(capacity_bytes % (std::uint64_t{num_dgroups} * block_bytes),
             "capacity %llu not divisible into %u d-groups of %u B blocks",
             static_cast<unsigned long long>(capacity_bytes), num_dgroups,
             block_bytes);

    const TechParams &tech = model.tech();
    const std::uint64_t dgroup_bytes = capacity_bytes / num_dgroups;
    const std::uint64_t tag_entries = capacity_bytes / block_bytes;

    LShapeFloorplan plan(model,
        std::vector<std::uint64_t>(num_dgroups, dgroup_bytes));

    NuRapidTiming t;
    const double tag_ns = model.tagAccessNs(tag_entries, assoc);
    t.tag_latency = tech.toCycles(tag_ns);
    t.tag_read_nj = model.tagAccessNJ(tag_entries, assoc);
    // A pointer/state update touches one way, not the whole compare.
    t.tag_write_nj = 0.5 * t.tag_read_nj;

    const double data_ns = model.dataAccessNs(dgroup_bytes);
    const double data_read_nj = model.dataReadNJ(dgroup_bytes);
    const double data_write_nj = model.dataWriteNJ(dgroup_bytes);
    t.array_read_nj = data_read_nj;
    t.array_write_nj = data_write_nj;

    t.dgroups.reserve(num_dgroups);
    for (unsigned g = 0; g < num_dgroups; ++g) {
        DGroupTiming d;
        d.route_mm = plan.routeMm(g);
        const double wire_rt_ns = 2.0 * d.route_mm * tech.wire_ns_per_mm;
        d.total_latency = tech.toCycles(tag_ns + data_ns + wire_rt_ns);
        d.data_latency = tech.toCycles(data_ns + wire_rt_ns);
        d.array_latency = tech.toCycles(data_ns);
        d.read_nj = t.tag_read_nj + data_read_nj +
            tech.wireBlockNJ(d.route_mm) + tech.wireAddrNJ(d.route_mm);
        d.data_read_nj = data_read_nj + tech.wireBlockNJ(d.route_mm) +
            tech.wireAddrNJ(d.route_mm);
        d.data_write_nj = data_write_nj + tech.wireBlockNJ(d.route_mm) +
            tech.wireAddrNJ(d.route_mm);
        t.dgroups.push_back(d);
    }

    t.between_mm.assign(num_dgroups, std::vector<double>(num_dgroups, 0.0));
    for (unsigned a = 0; a < num_dgroups; ++a)
        for (unsigned b = 0; b < num_dgroups; ++b)
            t.between_mm[a][b] = plan.betweenMm(a, b);

    return t;
}

const DNucaBankTiming &
DNucaTiming::bank(unsigned row, unsigned col) const
{
    panic_if(row >= rows || col >= cols, "bank (%u, %u) out of range",
             row, col);
    return banks[std::size_t{row} * cols + col];
}

EnergyNJ
DNucaTiming::swapEnergy(unsigned r1, unsigned r2, unsigned col) const
{
    // A bubble swap exchanges *two* blocks between adjacent-latency
    // banks: each bank performs a raw read and a raw write, plus two
    // block transfers *between the banks* (the idealized network does
    // not route them via the core).
    const DNucaBankTiming &a = bank(r1, col);
    const DNucaBankTiming &b = bank(r2, col);
    const double dist = std::abs(a.route_mm - b.route_mm);
    return 4.0 * bank_raw_nj +
        2.0 * TechParams::the70nm().wireBlockNJ(dist);
}

Cycles
DNucaTiming::swapBusy(unsigned r1, unsigned r2, unsigned col) const
{
    const DNucaBankTiming &a = bank(r1, col);
    const DNucaBankTiming &b = bank(r2, col);
    const double dist = std::abs(a.route_mm - b.route_mm);
    const TechParams &tech = TechParams::the70nm();
    // read + write at each bank, plus the round-trip transfer between
    // them (wire + one router hop each way).
    const double transfer_ns =
        2.0 * (dist * tech.wire_ns_per_mm + tech.dnuca_router_ns);
    return 2 * bank_busy + tech.toCycles(transfer_ns);
}

double
DNucaTiming::avgLatencyOfMB(unsigned mb) const
{
    panic_if(mb >= rows, "megabyte row %u out of range", mb);
    double sum = 0;
    for (unsigned c = 0; c < cols; ++c)
        sum += bank(mb, c).latency;
    return sum / cols;
}

Cycles
DNucaTiming::minLatencyOfMB(unsigned mb) const
{
    Cycles best = bank(mb, 0).latency;
    for (unsigned c = 1; c < cols; ++c)
        best = std::min(best, bank(mb, c).latency);
    return best;
}

Cycles
DNucaTiming::maxLatencyOfMB(unsigned mb) const
{
    Cycles worst = bank(mb, 0).latency;
    for (unsigned c = 1; c < cols; ++c)
        worst = std::max(worst, bank(mb, c).latency);
    return worst;
}

DNucaTiming
makeDNucaTiming(const SramMacroModel &model, std::uint64_t capacity_bytes,
                unsigned rows, unsigned cols, unsigned block_bytes)
{
    fatal_if(rows == 0 || cols == 0, "empty D-NUCA grid");
    const std::uint64_t bank_bytes =
        capacity_bytes / (std::uint64_t{rows} * cols);
    fatal_if(bank_bytes < block_bytes, "D-NUCA banks smaller than a block");

    const TechParams &tech = model.tech();
    BankGridFloorplan plan(model, rows, cols, bank_bytes);

    DNucaTiming t;
    t.rows = rows;
    t.cols = cols;
    t.banks.resize(std::size_t{rows} * cols);

    const double bank_ns = tech.dnuca_bank_access_ns;
    const double bank_nj = 1.6 * model.dataReadNJ(bank_bytes) + 0.012;
    t.bank_raw_nj = bank_nj;
    // A search probe reads only the bank's small tag array.
    const double bank_tag_nj = 0.25 * bank_nj;

    for (unsigned r = 0; r < rows; ++r) {
        for (unsigned c = 0; c < cols; ++c) {
            DNucaBankTiming &b = t.banks[std::size_t{r} * cols + c];
            b.route_mm = plan.routeMm(r, c);
            const double wire_rt_ns =
                2.0 * b.route_mm * tech.wire_ns_per_mm;
            const double router_rt_ns =
                2.0 * plan.hops(r) * tech.dnuca_router_ns;
            b.latency = tech.toCycles(bank_ns + wire_rt_ns + router_rt_ns);
            b.access_nj = bank_nj + tech.wireBlockNJ(b.route_mm) +
                tech.wireAddrNJ(b.route_mm);
            b.search_nj = bank_tag_nj + tech.wireAddrNJ(b.route_mm);
        }
    }

    // Smart-search array: 7 partial-tag bits per block, all ways wide.
    const std::uint64_t ss_bytes = (capacity_bytes / block_bytes) * 7 / 8;
    t.ss_latency = tech.toCycles(model.dataAccessNs(ss_bytes) + 0.1);
    t.ss_access_nj = 1.9 * model.dataReadNJ(ss_bytes);

    // A bank is occupied for its access time (without network travel).
    t.bank_busy = tech.toCycles(bank_ns);
    return t;
}

UniformCacheTiming
makeUniformTiming(const SramMacroModel &model, std::uint64_t capacity_bytes,
                  unsigned assoc, unsigned block_bytes, bool sequential,
                  unsigned ports, Cycles latency_override)
{
    const TechParams &tech = model.tech();
    const std::uint64_t tag_entries = capacity_bytes / block_bytes;

    const double tag_ns = model.tagAccessNs(tag_entries, assoc);
    const double data_ns = model.dataAccessNs(capacity_bytes);
    // Uniform access pays the route to the far edge of the array.
    const double far_mm = std::sqrt(model.areaMm2(capacity_bytes));
    const double wire_rt_ns = 2.0 * far_mm * tech.wire_ns_per_mm;

    const double total_ns = sequential
        ? tag_ns + data_ns + wire_rt_ns
        : std::max(tag_ns, data_ns) + wire_rt_ns;

    UniformCacheTiming u;
    u.latency = latency_override ? latency_override
                                 : tech.toCycles(total_ns);
    u.tag_latency = tech.toCycles(tag_ns);

    // Multi-ported cells are larger and heavier; Cacti's dual-port
    // penalty is ~1.6x per port (calibrated on Table 2's L1 row).
    const double port_scale = ports > 1 ? 1.6 * ports : 1.0;
    const double tag_nj = model.tagAccessNJ(tag_entries, assoc);
    double data_nj;
    if (sequential) {
        // Sequential tag-data reads exactly one data way.
        data_nj = model.dataReadNJ(capacity_bytes);
    } else {
        // Parallel access reads all candidate ways (energy-hungry);
        // Cacti folds way-select overlap into a ~1.6x factor.
        data_nj = 1.6 * model.dataReadNJ(capacity_bytes);
    }
    u.read_nj = port_scale * (tag_nj + data_nj);
    u.write_nj = port_scale *
        (tag_nj + model.dataWriteNJ(capacity_bytes));
    return u;
}

} // namespace nurapid
