/**
 * @file
 * Technology parameters for the 70 nm process the paper assumes.
 *
 * The paper derives its latencies and energies from a modified Cacti 3.x.
 * We reproduce the same *outputs* (cycles at 5 GHz, nJ per access) from an
 * analytic model: SRAM-macro access curves anchored on Cacti-like points,
 * a repeated-RC global-wire model, and floorplan route distances. The
 * constants below are calibrated so the model reproduces the
 * latency/energy numbers the paper publishes (its Tables 2 and 4); see
 * tests/test_timing.cc for the regression anchors.
 */

#ifndef NURAPID_TIMING_TECH_HH
#define NURAPID_TIMING_TECH_HH

#include <cstdint>

namespace nurapid {

struct TechParams
{
    /** Core clock period; the paper simulates 5 GHz at 70 nm. */
    double cycle_ns = 0.2;

    /** SRAM area density, mm^2 per MB (cells + peripheral overhead). */
    double mm2_per_mb = 4.5;

    /** One-way delay of a repeated global wire, ns per mm. */
    double wire_ns_per_mm = 0.15;

    /**
     * Dynamic energy of moving one 128 B block over distance d:
     * wire_block_nj_coeff * d^wire_energy_exponent. The superlinear
     * exponent reflects the wider, more heavily repeated buses needed
     * to route around closer d-groups (calibrated on Table 2's
     * closest/farthest pairs).
     */
    double wire_block_nj_coeff = 0.076;
    double wire_energy_exponent = 1.5;

    /** Dynamic energy of moving an address/request, nJ per mm. */
    double wire_addr_nj_per_mm = 0.01;

    /** One-way per-hop router fall-through delay, D-NUCA network, ns. */
    double dnuca_router_ns = 0.22;

    /** Parallel tag+data access time of one 64 KB D-NUCA bank, ns. */
    double dnuca_bank_access_ns = 0.30;

    /** D-NUCA per-hop switch energy; the paper idealizes this to zero. */
    double dnuca_router_nj = 0.0;

    /** Returns the calibrated 70 nm / 5 GHz technology point. */
    static const TechParams &the70nm();

    /** Converts a delay in ns to clock cycles (round half up, min 1). */
    std::uint32_t toCycles(double ns) const;

    /** Block-transfer wire energy over @p mm of route, nJ. */
    double wireBlockNJ(double mm) const;

    /** Address-transfer wire energy over @p mm of route, nJ. */
    double wireAddrNJ(double mm) const;
};

} // namespace nurapid

#endif // NURAPID_TIMING_TECH_HH
