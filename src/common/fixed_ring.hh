/**
 * @file
 * Fixed-capacity FIFO ring buffer for structurally-bounded hardware
 * queues (RUU-bounded pending loads, LSQ-bounded pending stores).
 *
 * Unlike std::deque, the storage is one flat allocation sized once at
 * construction: no per-segment allocation on the simulation hot path,
 * and exceeding the declared structural bound is a modeling bug that
 * panics instead of silently growing.
 */

#ifndef NURAPID_COMMON_FIXED_RING_HH
#define NURAPID_COMMON_FIXED_RING_HH

#include <cstdint>
#include <vector>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace nurapid {

template <class T>
class FixedRing
{
  public:
    FixedRing() = default;

    /** Sizes the ring for at most @p capacity live elements. */
    explicit FixedRing(std::uint32_t capacity) { init(capacity); }

    void
    init(std::uint32_t capacity)
    {
        fatal_if(capacity == 0, "FixedRing with zero capacity");
        cap = capacity;
        std::uint32_t storage = 1;
        while (storage < capacity)
            storage <<= 1;
        mask = storage - 1;
        buf.assign(storage, T{});
        head = tail = 0;
    }

    bool empty() const { return head == tail; }
    std::uint32_t size() const { return tail - head; }
    std::uint32_t capacity() const { return cap; }

    const T &front() const { return buf[head & mask]; }
    T &front() { return buf[head & mask]; }

    void pop_front() { ++head; }

    void
    push_back(const T &v)
    {
        panic_if(size() >= cap,
                 "FixedRing overflow: %u elements exceed the declared "
                 "structural bound of %u", size() + 1, cap);
        buf[tail & mask] = v;
        ++tail;
    }

    void clear() { head = tail = 0; }

  private:
    std::vector<T> buf;
    std::uint32_t cap = 0;
    std::uint32_t mask = 0;
    // Free-running indices; size() relies on unsigned wraparound.
    std::uint32_t head = 0;
    std::uint32_t tail = 0;
};

} // namespace nurapid

#endif // NURAPID_COMMON_FIXED_RING_HH
