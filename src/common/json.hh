/**
 * @file
 * A minimal JSON value type with a writer and a recursive-descent
 * parser — just enough for the run-cache file format (objects, arrays,
 * strings, numbers, booleans, null; no \uXXXX escapes).
 *
 * Numbers keep an exact unsigned-integer representation when they have
 * one, so 64-bit counters round-trip losslessly; doubles are written
 * with %.17g, which round-trips every finite IEEE-754 double.
 */

#ifndef NURAPID_COMMON_JSON_HH
#define NURAPID_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace nurapid {

class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Json() = default;
    Json(bool b) : type_(Type::Bool), boolVal(b) {}
    Json(double d) : type_(Type::Number), dblVal(d) {}
    Json(std::uint64_t u)
        : type_(Type::Number), dblVal(static_cast<double>(u)),
          uintVal(u), isUint(true) {}
    Json(int i) : Json(static_cast<std::uint64_t>(i)) {}
    Json(const char *s) : type_(Type::String), strVal(s) {}
    Json(std::string s) : type_(Type::String), strVal(std::move(s)) {}

    static Json array() { Json j; j.type_ = Type::Array; return j; }
    static Json object() { Json j; j.type_ = Type::Object; return j; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool asBool() const { return type_ == Type::Bool && boolVal; }
    double asDouble() const { return type_ == Type::Number ? dblVal : 0.0; }
    std::uint64_t
    asUint() const
    {
        if (type_ != Type::Number)
            return 0;
        return isUint ? uintVal : static_cast<std::uint64_t>(dblVal);
    }
    const std::string &asString() const { return strVal; }

    /** Array access. */
    void push(Json v) { arrVal.push_back(std::move(v)); }
    std::size_t size() const { return arrVal.size(); }
    const Json &at(std::size_t i) const { return arrVal[i]; }
    const std::vector<Json> &items() const { return arrVal; }

    /** Object access; get() returns a shared null for missing keys. */
    void
    set(const std::string &k, Json v)
    {
        for (auto &kv : objVal) {
            if (kv.first == k) {
                kv.second = std::move(v);
                return;
            }
        }
        objVal.emplace_back(k, std::move(v));
    }
    const Json &get(const std::string &k) const;
    bool has(const std::string &k) const;
    const std::vector<std::pair<std::string, Json>> &
    members() const { return objVal; }

    /** Serializes compactly (no insignificant whitespace). */
    std::string dump() const;

    /**
     * Parses @p text; on failure returns a Null value and, if @p error
     * is non-null, stores a one-line diagnostic.
     */
    static Json parse(const std::string &text, std::string *error = nullptr);

  private:
    Type type_ = Type::Null;
    bool boolVal = false;
    double dblVal = 0.0;
    std::uint64_t uintVal = 0;
    bool isUint = false;
    std::string strVal;
    std::vector<Json> arrVal;
    std::vector<std::pair<std::string, Json>> objVal;

    void dumpTo(std::string &out) const;
};

} // namespace nurapid

#endif // NURAPID_COMMON_JSON_HH
