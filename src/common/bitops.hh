/**
 * @file
 * Bit-manipulation helpers used by the cache-indexing code.
 */

#ifndef NURAPID_COMMON_BITOPS_HH
#define NURAPID_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"

namespace nurapid {

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** ceil(log2(v)); v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

/** Number of bits needed to enumerate @p n distinct values. */
constexpr unsigned
bitsFor(std::uint64_t n)
{
    return n <= 1 ? 0 : ceilLog2(n);
}

/** Extracts bits [first, last] (inclusive, last >= first) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned last, unsigned first)
{
    const unsigned nbits = last - first + 1;
    const std::uint64_t mask =
        nbits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << nbits) - 1);
    return (v >> first) & mask;
}

/** Rounds @p v up to the next multiple of @p align (a power of two). */
constexpr std::uint64_t
roundUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Block address (strips the offset bits) for a given block size. */
constexpr Addr
blockAlign(Addr addr, unsigned block_bytes)
{
    return addr & ~static_cast<Addr>(block_bytes - 1);
}

} // namespace nurapid

#endif // NURAPID_COMMON_BITOPS_HH
