/**
 * @file
 * Deterministic PCG32 random-number generator.
 *
 * Every stochastic component (random distance replacement, synthetic
 * trace generation) draws from an explicitly-seeded Rng so that runs are
 * reproducible; the simulator never touches std::random_device.
 */

#ifndef NURAPID_COMMON_RNG_HH
#define NURAPID_COMMON_RNG_HH

#include <cstdint>

namespace nurapid {

/**
 * PCG32 (Melissa O'Neill's pcg32_random_r), a small, fast, statistically
 * strong generator with a 64-bit state and a selectable stream.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        reseed(seed, stream);
    }

    /** Restarts the sequence from @p seed on stream @p stream. */
    void
    reseed(std::uint64_t seed, std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state = 0;
        inc = (stream << 1) | 1u;
        next();
        state += seed;
        next();
    }

    /** Next 32 uniformly random bits. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state;
        state = old * 6364136223846793005ULL + inc;
        auto xorshifted =
            static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
        auto rot = static_cast<std::uint32_t>(old >> 59);
        return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
    }

    /** Uniform integer in [0, bound); bound must be non-zero. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        // Lemire-style rejection to avoid modulo bias.
        std::uint64_t m =
            static_cast<std::uint64_t>(next()) * bound;
        auto lo = static_cast<std::uint32_t>(m);
        if (lo < bound) {
            std::uint32_t t = (0u - bound) % bound;
            while (lo < t) {
                m = static_cast<std::uint64_t>(next()) * bound;
                lo = static_cast<std::uint32_t>(m);
            }
        }
        return static_cast<std::uint32_t>(m >> 32);
    }

    /** Uniform 64-bit integer in [0, bound). */
    std::uint64_t
    below64(std::uint64_t bound)
    {
        if (bound <= 0xffffffffULL)
            return below(static_cast<std::uint32_t>(bound));
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t limit =
            ~std::uint64_t{0} - (~std::uint64_t{0} % bound) - 1;
        std::uint64_t v;
        do {
            v = (static_cast<std::uint64_t>(next()) << 32) | next();
        } while (v > limit);
        return v % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /** Bernoulli draw with probability @p p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t state = 0;
    std::uint64_t inc = 0;
};

} // namespace nurapid

#endif // NURAPID_COMMON_RNG_HH
