/**
 * @file
 * Fixed-bucket histogram used for d-group access distributions.
 */

#ifndef NURAPID_COMMON_HISTOGRAM_HH
#define NURAPID_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nurapid {

/**
 * Counts events per integer bucket [0, buckets). Out-of-range samples
 * are clamped into the last bucket and counted separately.
 */
class Histogram
{
  public:
    explicit Histogram(std::size_t buckets = 0) { resize(buckets); }

    void resize(std::size_t buckets);
    void sample(std::size_t bucket, std::uint64_t weight = 1);
    void reset();

    std::size_t buckets() const { return counts.size(); }
    std::uint64_t count(std::size_t bucket) const;
    std::uint64_t total() const { return totalCount; }
    std::uint64_t clamped() const { return clampedCount; }

    /** Fraction of all samples that fell in @p bucket (0 if empty). */
    double fraction(std::size_t bucket) const;

    /**
     * Smallest bucket index whose cumulative count reaches fraction
     * @p q (clamped to [0, 1]) of all samples; 0 for an empty
     * histogram. q = 0.5 is the median bucket, q = 1.0 the highest
     * non-empty bucket.
     */
    std::size_t percentileBucket(double q) const;

    /** "b0=12 (40.0%) b1=18 (60.0%)"-style rendering. */
    std::string toString() const;

    /** Adds another histogram of the same shape bucket-wise. */
    void merge(const Histogram &other);

  private:
    std::vector<std::uint64_t> counts;
    std::uint64_t totalCount = 0;
    std::uint64_t clampedCount = 0;
};

} // namespace nurapid

#endif // NURAPID_COMMON_HISTOGRAM_HH
