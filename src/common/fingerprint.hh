/**
 * @file
 * Stable fingerprints for memoization keys.
 *
 * A Fingerprint accumulates tagged fields into a canonical key string
 * (human-readable, order-sensitive) and hashes it with 64-bit FNV-1a.
 * The run cache stores both: the digest names the entry, the key string
 * guards against (astronomically unlikely) digest collisions and makes
 * cache files debuggable by eye.
 *
 * Doubles are rendered with %.17g so the key is exact for any IEEE-754
 * value: two configs differing in the 17th significant digit fingerprint
 * differently.
 */

#ifndef NURAPID_COMMON_FINGERPRINT_HH
#define NURAPID_COMMON_FINGERPRINT_HH

#include <cstdint>
#include <cstdio>
#include <string>

namespace nurapid {

class Fingerprint
{
  public:
    /** Appends one "name=value;" field to the key. */
    Fingerprint &
    field(const char *name, const std::string &value)
    {
        key_ += name;
        key_ += '=';
        key_ += value;
        key_ += ';';
        return *this;
    }

    Fingerprint &
    field(const char *name, const char *value)
    {
        return field(name, std::string(value));
    }

    Fingerprint &
    field(const char *name, std::uint64_t value)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(value));
        return field(name, std::string(buf));
    }

    Fingerprint &
    field(const char *name, std::uint32_t value)
    {
        return field(name, static_cast<std::uint64_t>(value));
    }

    Fingerprint &
    field(const char *name, bool value)
    {
        return field(name, std::string(value ? "1" : "0"));
    }

    Fingerprint &
    field(const char *name, double value)
    {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        return field(name, std::string(buf));
    }

    /** The full canonical key accumulated so far. */
    const std::string &key() const { return key_; }

    /** 64-bit FNV-1a of the key, as a 16-digit hex string. */
    std::string
    digest() const
    {
        std::uint64_t h = 0xcbf29ce484222325ULL;
        for (unsigned char c : key_) {
            h ^= c;
            h *= 0x100000001b3ULL;
        }
        char buf[20];
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(h));
        return buf;
    }

  private:
    std::string key_;
};

} // namespace nurapid

#endif // NURAPID_COMMON_FINGERPRINT_HH
