#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <vector>

namespace nurapid {

namespace {
bool inform_enabled = true;
bool warn_enabled = true;
} // namespace

std::string
vstrprintf(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
strprintf(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    return s;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (!warn_enabled)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
warnOnce(const char *fmt, ...)
{
    if (!warn_enabled)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);

    // Run-engine workers warn concurrently; the dedup set is shared.
    static std::mutex mutex;
    static std::set<std::string> *seen = new std::set<std::string>;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!seen->insert(msg).second)
            return;
    }
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (!inform_enabled)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
setInformEnabled(bool enabled)
{
    inform_enabled = enabled;
}

void
setWarnEnabled(bool enabled)
{
    warn_enabled = enabled;
}

} // namespace nurapid
