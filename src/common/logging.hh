/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  — a simulator invariant was violated (a bug in this code);
 *            aborts so the failure is loud in tests and debuggers.
 * fatal()  — the *user's* configuration cannot be simulated; exits(1).
 * warn()   — something is modeled approximately; simulation continues.
 * inform() — plain status output.
 */

#ifndef NURAPID_COMMON_LOGGING_HH
#define NURAPID_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace nurapid {

/** Internal: formats and reports, then aborts. Marked noreturn. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...);

/** Internal: formats and reports, then exits(1). Marked noreturn. */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...);

/** Prints a "warn: ..." line to stderr. */
void warn(const char *fmt, ...);

/**
 * Like warn(), but each distinct formatted message prints once per
 * process. Use for knob/configuration warnings that would otherwise
 * repeat once per run in a 267-config sweep. Thread-safe.
 */
void warnOnce(const char *fmt, ...);

/** Prints an "info: ..." line to stdout. */
void inform(const char *fmt, ...);

/** Enable/disable inform() output (benchmarks silence it). */
void setInformEnabled(bool enabled);

/** Enable/disable warn()/warnOnce() output, the same switch the
 *  benchmarks use for inform(). panic/fatal are never silenced. */
void setWarnEnabled(bool enabled);

/** printf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, std::va_list args);
std::string strprintf(const char *fmt, ...);

} // namespace nurapid

#define panic(...) \
    ::nurapid::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

#define fatal(...) \
    ::nurapid::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Condition-checked panic; use for internal invariants. */
#define panic_if(cond, ...)                                          \
    do {                                                             \
        if (cond) [[unlikely]]                                       \
            ::nurapid::panicImpl(__FILE__, __LINE__, __VA_ARGS__);   \
    } while (0)

/** Condition-checked fatal; use to validate user configuration. */
#define fatal_if(cond, ...)                                          \
    do {                                                             \
        if (cond) [[unlikely]]                                       \
            ::nurapid::fatalImpl(__FILE__, __LINE__, __VA_ARGS__);   \
    } while (0)

#endif // NURAPID_COMMON_LOGGING_HH
