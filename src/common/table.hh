/**
 * @file
 * Minimal fixed-width ASCII table renderer for the benchmark harness.
 *
 * Every bench binary prints its paper table/figure through this class so
 * all reproduced results share one format.
 */

#ifndef NURAPID_COMMON_TABLE_HH
#define NURAPID_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace nurapid {

class TextTable
{
  public:
    /** Sets the header row; defines the column count. */
    void header(std::vector<std::string> cells);

    /** Appends a data row; must match the header's column count. */
    void row(std::vector<std::string> cells);

    /** Convenience: formats doubles with @p decimals digits. */
    static std::string num(double v, int decimals = 2);

    /** Convenience: renders a percentage ("12.3%"). */
    static std::string pct(double fraction, int decimals = 1);

    /** Renders the table with column-aligned padding. */
    std::string render() const;

    /** Renders and writes to stdout. */
    void print() const;

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

} // namespace nurapid

#endif // NURAPID_COMMON_TABLE_HH
