#include "common/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace nurapid {

namespace {

const Json kNull{};

void
escapeTo(const std::string &s, std::string &out)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

struct Parser
{
    const char *p;
    const char *end;
    std::string err;

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    bool
    fail(const std::string &what)
    {
        if (err.empty())
            err = what;
        return false;
    }

    bool
    literal(const char *word)
    {
        for (const char *w = word; *w; ++w, ++p) {
            if (p >= end || *p != *w)
                return fail(std::string("bad literal, expected ") + word);
        }
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (p >= end || *p != '"')
            return fail("expected string");
        ++p;
        while (p < end && *p != '"') {
            if (*p == '\\') {
                ++p;
                if (p >= end)
                    return fail("truncated escape");
                switch (*p) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  default:
                    return fail("unsupported escape");
                }
                ++p;
            } else {
                out += *p++;
            }
        }
        if (p >= end)
            return fail("unterminated string");
        ++p;
        return true;
    }

    bool
    parseValue(Json &out)
    {
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        switch (*p) {
          case '{': {
            ++p;
            Json obj = Json::object();
            skipWs();
            if (p < end && *p == '}') {
                ++p;
                out = std::move(obj);
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (p >= end || *p != ':')
                    return fail("expected ':'");
                ++p;
                Json val;
                if (!parseValue(val))
                    return false;
                obj.set(key, std::move(val));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == '}') {
                    ++p;
                    break;
                }
                return fail("expected ',' or '}'");
            }
            out = std::move(obj);
            return true;
          }
          case '[': {
            ++p;
            Json arr = Json::array();
            skipWs();
            if (p < end && *p == ']') {
                ++p;
                out = std::move(arr);
                return true;
            }
            while (true) {
                Json val;
                if (!parseValue(val))
                    return false;
                arr.push(std::move(val));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == ']') {
                    ++p;
                    break;
                }
                return fail("expected ',' or ']'");
            }
            out = std::move(arr);
            return true;
          }
          case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = Json(std::move(s));
            return true;
          }
          case 't':
            if (!literal("true"))
                return false;
            out = Json(true);
            return true;
          case 'f':
            if (!literal("false"))
                return false;
            out = Json(false);
            return true;
          case 'n':
            if (!literal("null"))
                return false;
            out = Json();
            return true;
          default: {
            const char *start = p;
            if (p < end && (*p == '-' || *p == '+'))
                ++p;
            bool integral = true;
            while (p < end && (std::isdigit(static_cast<unsigned char>(*p))
                               || *p == '.' || *p == 'e' || *p == 'E' ||
                               *p == '-' || *p == '+')) {
                if (*p == '.' || *p == 'e' || *p == 'E')
                    integral = false;
                ++p;
            }
            if (p == start)
                return fail("unexpected character");
            const std::string tok(start, p);
            char *endp = nullptr;
            if (integral && tok[0] != '-') {
                const unsigned long long u =
                    std::strtoull(tok.c_str(), &endp, 10);
                if (endp && *endp == '\0') {
                    out = Json(static_cast<std::uint64_t>(u));
                    return true;
                }
            }
            const double d = std::strtod(tok.c_str(), &endp);
            if (!endp || *endp != '\0')
                return fail("malformed number");
            out = Json(d);
            return true;
          }
        }
    }
};

} // namespace

const Json &
Json::get(const std::string &k) const
{
    for (const auto &kv : objVal) {
        if (kv.first == k)
            return kv.second;
    }
    return kNull;
}

bool
Json::has(const std::string &k) const
{
    for (const auto &kv : objVal) {
        if (kv.first == k)
            return true;
    }
    return false;
}

void
Json::dumpTo(std::string &out) const
{
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += boolVal ? "true" : "false";
        break;
      case Type::Number: {
        char buf[40];
        if (isUint) {
            std::snprintf(buf, sizeof(buf), "%llu",
                          static_cast<unsigned long long>(uintVal));
        } else {
            std::snprintf(buf, sizeof(buf), "%.17g", dblVal);
        }
        out += buf;
        break;
      }
      case Type::String:
        escapeTo(strVal, out);
        break;
      case Type::Array: {
        out += '[';
        bool first = true;
        for (const auto &v : arrVal) {
            if (!first)
                out += ',';
            first = false;
            v.dumpTo(out);
        }
        out += ']';
        break;
      }
      case Type::Object: {
        out += '{';
        bool first = true;
        for (const auto &kv : objVal) {
            if (!first)
                out += ',';
            first = false;
            escapeTo(kv.first, out);
            out += ':';
            kv.second.dumpTo(out);
        }
        out += '}';
        break;
      }
    }
}

std::string
Json::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

Json
Json::parse(const std::string &text, std::string *error)
{
    Parser parser{text.data(), text.data() + text.size(), {}};
    Json out;
    if (!parser.parseValue(out) ||
        (parser.skipWs(), parser.p != parser.end)) {
        if (error) {
            *error = parser.err.empty() ? "trailing garbage" : parser.err;
        }
        return Json();
    }
    if (error)
        error->clear();
    return out;
}

} // namespace nurapid
