#include "common/histogram.hh"

#include <sstream>

#include "common/logging.hh"

namespace nurapid {

void
Histogram::resize(std::size_t buckets)
{
    counts.assign(buckets, 0);
    totalCount = 0;
    clampedCount = 0;
}

void
Histogram::sample(std::size_t bucket, std::uint64_t weight)
{
    panic_if(counts.empty(), "sampling an unsized histogram");
    if (bucket >= counts.size()) {
        bucket = counts.size() - 1;
        clampedCount += weight;
    }
    counts[bucket] += weight;
    totalCount += weight;
}

void
Histogram::reset()
{
    for (auto &c : counts)
        c = 0;
    totalCount = 0;
    clampedCount = 0;
}

std::uint64_t
Histogram::count(std::size_t bucket) const
{
    panic_if(bucket >= counts.size(), "histogram bucket %zu out of range",
             bucket);
    return counts[bucket];
}

double
Histogram::fraction(std::size_t bucket) const
{
    if (totalCount == 0)
        return 0.0;
    return static_cast<double>(count(bucket)) /
        static_cast<double>(totalCount);
}

std::size_t
Histogram::percentileBucket(double q) const
{
    if (totalCount == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the sample the percentile asks for, 1-based; q = 0 still
    // needs the first sample, hence the max with 1.
    const double exact = q * static_cast<double>(totalCount);
    std::uint64_t rank = static_cast<std::uint64_t>(exact);
    if (static_cast<double>(rank) < exact)
        ++rank;
    if (rank == 0)
        rank = 1;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        cumulative += counts[i];
        if (cumulative >= rank)
            return i;
    }
    return counts.empty() ? 0 : counts.size() - 1;
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (i)
            os << " ";
        os << "b" << i << "=" << counts[i];
        os << " (" << strprintf("%.1f%%", 100.0 * fraction(i)) << ")";
    }
    return os.str();
}

void
Histogram::merge(const Histogram &other)
{
    panic_if(other.counts.size() != counts.size(),
             "merging histograms of different shapes (%zu vs %zu)",
             counts.size(), other.counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    totalCount += other.totalCount;
    clampedCount += other.clampedCount;
}

} // namespace nurapid
