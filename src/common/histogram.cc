#include "common/histogram.hh"

#include <sstream>

#include "common/logging.hh"

namespace nurapid {

void
Histogram::resize(std::size_t buckets)
{
    counts.assign(buckets, 0);
    totalCount = 0;
    clampedCount = 0;
}

void
Histogram::sample(std::size_t bucket, std::uint64_t weight)
{
    panic_if(counts.empty(), "sampling an unsized histogram");
    if (bucket >= counts.size()) {
        bucket = counts.size() - 1;
        clampedCount += weight;
    }
    counts[bucket] += weight;
    totalCount += weight;
}

void
Histogram::reset()
{
    for (auto &c : counts)
        c = 0;
    totalCount = 0;
    clampedCount = 0;
}

std::uint64_t
Histogram::count(std::size_t bucket) const
{
    panic_if(bucket >= counts.size(), "histogram bucket %zu out of range",
             bucket);
    return counts[bucket];
}

double
Histogram::fraction(std::size_t bucket) const
{
    if (totalCount == 0)
        return 0.0;
    return static_cast<double>(count(bucket)) /
        static_cast<double>(totalCount);
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (i)
            os << " ";
        os << "b" << i << "=" << counts[i];
        os << " (" << strprintf("%.1f%%", 100.0 * fraction(i)) << ")";
    }
    return os.str();
}

void
Histogram::merge(const Histogram &other)
{
    panic_if(other.counts.size() != counts.size(),
             "merging histograms of different shapes (%zu vs %zu)",
             counts.size(), other.counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    totalCount += other.totalCount;
    clampedCount += other.clampedCount;
}

} // namespace nurapid
