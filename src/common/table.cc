#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace nurapid {

void
TextTable::header(std::vector<std::string> cells)
{
    head = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    panic_if(!head.empty() && cells.size() != head.size(),
             "table row has %zu cells, header has %zu",
             cells.size(), head.size());
    rows.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int decimals)
{
    return strprintf("%.*f", decimals, v);
}

std::string
TextTable::pct(double fraction, int decimals)
{
    return strprintf("%.*f%%", decimals, 100.0 * fraction);
}

std::string
TextTable::render() const
{
    const std::size_t ncols =
        head.empty() ? (rows.empty() ? 0 : rows.front().size())
                     : head.size();
    std::vector<std::size_t> width(ncols, 0);

    auto widen = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size() && i < ncols; ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    widen(head);
    for (const auto &r : rows)
        widen(r);

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < ncols; ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            os << cell << std::string(width[i] - cell.size(), ' ');
            os << (i + 1 == ncols ? "" : "  ");
        }
        os << "\n";
    };

    if (!head.empty()) {
        emit(head);
        std::size_t total = 0;
        for (std::size_t i = 0; i < ncols; ++i)
            total += width[i] + (i + 1 == ncols ? 0 : 2);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &r : rows)
        emit(r);
    return os.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace nurapid
