#include "common/stats.hh"

#include <sstream>

#include "common/logging.hh"

namespace nurapid {

StatGroup::StatGroup(std::string group_name)
    : groupName(std::move(group_name))
{
}

Counter &
StatGroup::addCounter(const std::string &name, Counter &c)
{
    panic_if(counterIndex.count(name),
             "duplicate counter '%s' in group '%s'",
             name.c_str(), groupName.c_str());
    counters.emplace_back(name, &c);
    counterIndex[name] = &c;
    return c;
}

Average &
StatGroup::addAverage(const std::string &name, Average &a)
{
    panic_if(averageIndex.count(name),
             "duplicate average '%s' in group '%s'",
             name.c_str(), groupName.c_str());
    averages.emplace_back(name, &a);
    averageIndex[name] = &a;
    return a;
}

std::uint64_t
StatGroup::counterValue(const std::string &name) const
{
    auto it = counterIndex.find(name);
    if (it == counterIndex.end())
        fatal("no counter '%s' in stat group '%s'",
              name.c_str(), groupName.c_str());
    return it->second->value();
}

const Average &
StatGroup::average(const std::string &name) const
{
    auto it = averageIndex.find(name);
    if (it == averageIndex.end())
        fatal("no average '%s' in stat group '%s'",
              name.c_str(), groupName.c_str());
    return *it->second;
}

bool
StatGroup::hasCounter(const std::string &name) const
{
    return counterIndex.count(name) != 0;
}

std::vector<std::pair<std::string, std::uint64_t>>
StatGroup::counterValues() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters.size());
    for (const auto &[name, c] : counters)
        out.emplace_back(name, c->value());
    return out;
}

void
StatGroup::resetAll()
{
    for (auto &[name, c] : counters)
        c->reset();
    for (auto &[name, a] : averages)
        a->reset();
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &[name, c] : counters) {
        os << (groupName.empty() ? name : groupName + "." + name)
           << " " << c->value() << "\n";
    }
    for (const auto &[name, a] : averages) {
        os << (groupName.empty() ? name : groupName + "." + name)
           << " mean=" << a->mean() << " samples=" << a->samples() << "\n";
    }
    return os.str();
}

} // namespace nurapid
