/**
 * @file
 * Fundamental scalar types shared by every NuRAPID module.
 *
 * The simulator models a 64-bit physical address space and counts time in
 * core clock cycles (the paper assumes a 5 GHz clock at 70 nm).
 */

#ifndef NURAPID_COMMON_TYPES_HH
#define NURAPID_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace nurapid {

/** Physical/virtual byte address. */
using Addr = std::uint64_t;

/** Absolute time in core clock cycles. */
using Cycle = std::uint64_t;

/** Relative time (a latency) in core clock cycles. */
using Cycles = std::uint32_t;

/** Dynamic energy in nanojoules. */
using EnergyNJ = double;

/** Sentinel for "no address". */
inline constexpr Addr kInvalidAddr = std::numeric_limits<Addr>::max();

/** Sentinel for "never" / "not scheduled". */
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/** Kinds of requests presented to a cache. */
enum class AccessType : std::uint8_t {
    Read,       //!< demand load (or instruction fetch)
    Write,      //!< demand store (write-allocate everywhere in this model)
    Writeback,  //!< dirty eviction arriving from the level above
};

/** Human-readable name of an AccessType. */
constexpr const char *
accessTypeName(AccessType type)
{
    switch (type) {
      case AccessType::Read: return "read";
      case AccessType::Write: return "write";
      case AccessType::Writeback: return "writeback";
    }
    return "unknown";
}

} // namespace nurapid

#endif // NURAPID_COMMON_TYPES_HH
