/**
 * @file
 * A small statistics package in the spirit of gem5's Stats.
 *
 * Components own Stat objects and register them (with a hierarchical
 * dotted name) in a StatGroup. StatGroups can be dumped as text and
 * queried by name in tests.
 */

#ifndef NURAPID_COMMON_STATS_HH
#define NURAPID_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nurapid {

/** A monotonically-growing event counter. */
class Counter
{
  public:
    Counter &operator++() { ++count; return *this; }
    Counter &operator+=(std::uint64_t n) { count += n; return *this; }
    void reset() { count = 0; }
    std::uint64_t value() const { return count; }

  private:
    std::uint64_t count = 0;
};

/** Mean/min/max/total tracker for per-event sample values. */
class Average
{
  public:
    void
    sample(double v)
    {
        total += v;
        ++n;
        if (v < minv || n == 1)
            minv = v;
        if (v > maxv || n == 1)
            maxv = v;
    }

    void reset() { total = 0; n = 0; minv = 0; maxv = 0; }

    double mean() const { return n ? total / static_cast<double>(n) : 0.0; }
    double sum() const { return total; }
    std::uint64_t samples() const { return n; }
    double min() const { return minv; }
    double max() const { return maxv; }

  private:
    double total = 0;
    std::uint64_t n = 0;
    double minv = 0;
    double maxv = 0;
};

/**
 * A named, ordered collection of statistics.
 *
 * Values are registered by pointer; the group does not own them. The
 * registering component must outlive the group or unregister itself
 * (components in this codebase live for the whole simulation, so no
 * unregistration API is provided).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string group_name = "");

    /** Registers a counter under @p name; returns it for chaining. */
    Counter &addCounter(const std::string &name, Counter &c);

    /** Registers an average under @p name. */
    Average &addAverage(const std::string &name, Average &a);

    /** Looks up a counter value; fatal if absent (test convenience). */
    std::uint64_t counterValue(const std::string &name) const;

    /** Looks up an average; fatal if absent. */
    const Average &average(const std::string &name) const;

    /** True if a counter with @p name was registered. */
    bool hasCounter(const std::string &name) const;

    /** Every counter's (name, value), in registration order — the
     *  observability layer snapshots these at epoch boundaries. */
    std::vector<std::pair<std::string, std::uint64_t>>
    counterValues() const;

    /** Resets every registered statistic to zero. */
    void resetAll();

    /** Renders "name value" lines, sorted by registration order. */
    std::string dump() const;

    const std::string &name() const { return groupName; }

  private:
    std::string groupName;
    std::vector<std::pair<std::string, Counter *>> counters;
    std::vector<std::pair<std::string, Average *>> averages;
    std::map<std::string, Counter *> counterIndex;
    std::map<std::string, Average *> averageIndex;
};

} // namespace nurapid

#endif // NURAPID_COMMON_STATS_HH
