#include "nurapid/data_array.hh"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/logging.hh"

namespace nurapid {

DataArray::DataArray(std::uint32_t num_groups,
                     std::uint32_t frames_per_group,
                     std::uint32_t num_regions, DistanceRepl repl,
                     std::uint64_t seed, std::uint32_t num_sets)
    : nGroups(num_groups), nFrames(frames_per_group), nRegions(num_regions),
      framesPerRegion(frames_per_group / num_regions), replPolicy(repl),
      rng(seed),
      lists(std::size_t{num_groups} * num_regions)
{
    fatal_if(num_groups == 0 || frames_per_group == 0,
             "empty data array");
    fatal_if(num_regions == 0 || frames_per_group % num_regions != 0,
             "frames per d-group (%u) not divisible into %u regions",
             frames_per_group, num_regions);
    const std::size_t total = std::size_t{nGroups} * nFrames;
    // max-1 bounds clamp to >= 1: NarrowPlane reads a 0 bound as
    // "unknown" and would fall back to the full 4-byte width.
    const auto bound = [](std::uint32_t count) {
        return count > 1 ? count - 1 : 1;
    };
    revSet.init(total, num_sets == 0 ? 0 : bound(num_sets), 0);
    revWay.assign(total, 0);
    validWords.assign((total + 63) / 64, 0);
    linkedWords.assign((total + 63) / 64, 0);
    prevPlane.init(total, bound(nFrames), kNoFrame);
    nextPlane.init(total, bound(nFrames), kNoFrame);
    frameRegion.init(nFrames, bound(nRegions), 0);
    for (std::uint32_t f = 0; f < nFrames; ++f)
        frameRegion.set(f, f / framesPerRegion);
    // Pre-populate free lists: every frame starts free.
    for (std::uint32_t g = 0; g < nGroups; ++g) {
        for (std::uint32_t f = 0; f < nFrames; ++f)
            region(g, frameRegion.get(f)).free.push_back(f);
    }
    if (replPolicy == DistanceRepl::TreePLRU) {
        fatal_if(framesPerRegion < 2,
                 "tree-PLRU distance replacement needs at least two "
                 "frames per region");
        for (std::uint32_t g = 0; g < nGroups; ++g) {
            plru.push_back(std::make_unique<TreePlruReplacer>(
                nRegions, framesPerRegion));
        }
    }
}

std::uint32_t
DataArray::regionOf(Addr block_index) const
{
    if (nRegions == 1)
        return 0;
    // Knuth multiplicative hash spreads consecutive blocks (and the
    // blocks of one hot set) across regions.
    const std::uint64_t h = block_index * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::uint32_t>((h >> 32) % nRegions);
}

bool
DataArray::hasFree(std::uint32_t group, std::uint32_t region_idx) const
{
    const RegionList &r =
        lists[std::size_t{group} * nRegions + region_idx];
    return !r.free.empty();
}

std::uint32_t
DataArray::allocFrame(std::uint32_t group, std::uint32_t region_idx)
{
    RegionList &r = region(group, region_idx);
    panic_if(r.free.empty(), "allocFrame on full region %u of d-group %u",
             region_idx, group);
    const std::uint32_t f = r.free.back();
    r.free.pop_back();
    return f;
}

std::uint32_t
DataArray::victimFrame(std::uint32_t group, std::uint32_t region_idx)
{
    RegionList &r = region(group, region_idx);
    panic_if(!r.free.empty(),
             "victimFrame called while region %u of d-group %u has free "
             "frames", region_idx, group);
    if (replPolicy == DistanceRepl::LRU) {
        panic_if(r.tail == kNoFrame, "LRU victim in empty region");
        return r.tail;
    }
    if (replPolicy == DistanceRepl::TreePLRU) {
        return region_idx * framesPerRegion +
            plru[group]->victim(region_idx);
    }
    // Random: the region is full, so any frame in it is a valid victim.
    return region_idx * framesPerRegion + rng.below(framesPerRegion);
}

void
DataArray::place(std::uint32_t group, std::uint32_t f, std::uint32_t set,
                 std::uint32_t way)
{
    panic_if(group >= nGroups || f >= nFrames,
             "frame (%u, %u) out of range", group, f);
    panic_if(validBit(group, f),
             "placing into occupied frame %u of d-group %u", f, group);
    const std::size_t idx = frameIdx(group, f);
    revSet.set(idx, set);
    revWay[idx] = static_cast<std::uint8_t>(way);
    validWords[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    linkFront(group, f);
}

void
DataArray::remove(std::uint32_t group, std::uint32_t f)
{
    panic_if(group >= nGroups || f >= nFrames,
             "frame (%u, %u) out of range", group, f);
    panic_if(!validBit(group, f),
             "removing invalid frame %u of d-group %u", f, group);
    const std::size_t idx = frameIdx(group, f);
    validWords[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    unlink(group, f);
    region(group, regionOfFrame(f)).free.push_back(f);
}

void
DataArray::swapFrames(std::uint32_t group_a, std::uint32_t frame_a,
                      std::uint32_t group_b, std::uint32_t frame_b)
{
    panic_if(!validBit(group_a, frame_a) || !validBit(group_b, frame_b),
             "swapping with an invalid frame");
    const std::size_t ia = frameIdx(group_a, frame_a);
    const std::size_t ib = frameIdx(group_b, frame_b);
    const std::uint32_t sa = revSet.get(ia);
    revSet.set(ia, revSet.get(ib));
    revSet.set(ib, sa);
    std::swap(revWay[ia], revWay[ib]);
    touch(group_a, frame_a);
    touch(group_b, frame_b);
}

std::uint64_t
DataArray::validCount() const
{
    std::uint64_t n = 0;
    for (const std::uint64_t w : validWords)
        n += static_cast<std::uint64_t>(std::popcount(w));
    return n;
}

bool
DataArray::audit(AuditSink &sink) const
{
    bool clean = true;
    const auto report = [&](const char *inv, std::string detail,
                            std::uint32_t g, std::uint32_t f) {
        clean = false;
        sink.violation({"data-array", inv, std::move(detail),
                        AuditViolation::kNoIndex, AuditViolation::kNoIndex,
                        g, f});
    };

    // Per-region membership bitmaps, one bit per frame of the region.
    // thread_local so the periodic audit hook never allocates on a
    // steady-state access path (each org is driven by one engine
    // thread); they grow once to the largest region audited.
    thread_local std::vector<std::uint64_t> chained;
    thread_local std::vector<std::uint64_t> freed;
    const std::size_t words = (std::size_t{framesPerRegion} + 63) / 64;
    if (chained.size() < words) {
        chained.resize(words);
        freed.resize(words);
    }
    const auto testSet = [words](std::vector<std::uint64_t> &bm,
                                 std::uint32_t i) {
        (void)words;
        const std::uint64_t bit = std::uint64_t{1} << (i & 63);
        const bool was = (bm[i >> 6] & bit) != 0;
        bm[i >> 6] |= bit;
        return was;
    };

    for (std::uint32_t g = 0; g < nGroups; ++g) {
        const std::size_t base = std::size_t{g} * nFrames;
        for (std::uint32_t r = 0; r < nRegions; ++r) {
            const RegionList &rl = lists[std::size_t{g} * nRegions + r];
            const std::uint32_t lo = r * framesPerRegion;

            // Walk the LRU chain head→tail, bounding the walk so a
            // cycle cannot hang the audit.
            std::fill_n(chained.begin(), words, 0);
            std::uint32_t chain_len = 0;
            std::uint32_t prev = kNoFrame;
            std::uint32_t f = rl.head;
            while (f != kNoFrame && chain_len <= framesPerRegion) {
                if (regionOfFrame(f) != r) {
                    report("chain-crosses-region",
                           strprintf("frame of region %u on region %u's "
                                     "chain", regionOfFrame(f), r), g, f);
                    break;
                }
                if (testSet(chained, f - lo)) {
                    report("chain-cycle",
                           strprintf("frame revisited after %u links",
                                     chain_len), g, f);
                    break;
                }
                ++chain_len;
                if (!linkedBit(g, f))
                    report("chain-unlinked-node",
                           "frame on chain but not marked linked", g, f);
                if (!validBit(g, f))
                    report("chain-invalid-frame",
                           "invalid frame on the LRU chain", g, f);
                if (prevPlane.get(base + f) != prev) {
                    report("chain-bad-prev",
                           strprintf("prev is %u, expected %u",
                                     prevPlane.get(base + f), prev), g, f);
                }
                prev = f;
                f = nextPlane.get(base + f);
            }
            if (f == kNoFrame && rl.tail != prev) {
                report("chain-bad-tail",
                       strprintf("tail is %u, chain ends at %u", rl.tail,
                                 prev), g,
                       rl.tail == kNoFrame ? AuditViolation::kNoIndex
                                           : rl.tail);
            }

            // Free list: exactly the invalid frames of the region.
            std::fill_n(freed.begin(), words, 0);
            for (const std::uint32_t ff : rl.free) {
                if (regionOfFrame(ff) != r) {
                    report("free-crosses-region",
                           strprintf("frame of region %u on region %u's "
                                     "free list", regionOfFrame(ff), r),
                           g, ff);
                    continue;
                }
                if (testSet(freed, ff - lo)) {
                    report("free-duplicate",
                           "frame on the free list twice", g, ff);
                    continue;
                }
                if (validBit(g, ff))
                    report("free-valid-frame",
                           "valid frame on the free list", g, ff);
                if (linkedBit(g, ff))
                    report("free-linked-frame",
                           "free frame still on the LRU chain", g, ff);
            }

            // Every frame is on exactly one of the two structures.
            for (std::uint32_t i = 0; i < framesPerRegion; ++i) {
                const std::uint32_t ff = lo + i;
                const bool valid = validBit(g, ff);
                const bool in_chain =
                    (chained[i >> 6] >> (i & 63)) & 1;
                const bool in_free = (freed[i >> 6] >> (i & 63)) & 1;
                if (valid && !in_chain)
                    report("valid-not-chained",
                           "valid frame missing from the LRU chain",
                           g, ff);
                if (!valid && !in_free)
                    report("invalid-not-free",
                           "invalid frame missing from the free list",
                           g, ff);
            }
            if (chain_len + rl.free.size() != framesPerRegion) {
                report("occupancy-mismatch",
                       strprintf("chain %u + free %zu != region frames "
                                 "%u in region %u", chain_len,
                                 rl.free.size(), framesPerRegion, r),
                       g, AuditViolation::kNoIndex);
            }
        }
    }
    return clean;
}

} // namespace nurapid
