#include "nurapid/data_array.hh"

#include <utility>

#include "common/logging.hh"

namespace nurapid {

DataArray::DataArray(std::uint32_t num_groups,
                     std::uint32_t frames_per_group,
                     std::uint32_t num_regions, DistanceRepl repl,
                     std::uint64_t seed)
    : nGroups(num_groups), nFrames(frames_per_group), nRegions(num_regions),
      framesPerRegion(frames_per_group / num_regions), replPolicy(repl),
      rng(seed),
      frames(std::size_t{num_groups} * frames_per_group),
      nodes(std::size_t{num_groups} * frames_per_group),
      lists(std::size_t{num_groups} * num_regions)
{
    fatal_if(num_groups == 0 || frames_per_group == 0,
             "empty data array");
    fatal_if(num_regions == 0 || frames_per_group % num_regions != 0,
             "frames per d-group (%u) not divisible into %u regions",
             frames_per_group, num_regions);
    frameRegion.resize(nFrames);
    for (std::uint32_t f = 0; f < nFrames; ++f)
        frameRegion[f] = f / framesPerRegion;
    // Pre-populate free lists: every frame starts free.
    for (std::uint32_t g = 0; g < nGroups; ++g) {
        for (std::uint32_t f = 0; f < nFrames; ++f)
            region(g, frameRegion[f]).free.push_back(f);
    }
    if (replPolicy == DistanceRepl::TreePLRU) {
        fatal_if(framesPerRegion < 2,
                 "tree-PLRU distance replacement needs at least two "
                 "frames per region");
        for (std::uint32_t g = 0; g < nGroups; ++g) {
            plru.push_back(std::make_unique<TreePlruReplacer>(
                nRegions, framesPerRegion));
        }
    }
}

std::uint32_t
DataArray::regionOf(Addr block_index) const
{
    if (nRegions == 1)
        return 0;
    // Knuth multiplicative hash spreads consecutive blocks (and the
    // blocks of one hot set) across regions.
    const std::uint64_t h = block_index * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::uint32_t>((h >> 32) % nRegions);
}

bool
DataArray::hasFree(std::uint32_t group, std::uint32_t region_idx) const
{
    const RegionList &r =
        lists[std::size_t{group} * nRegions + region_idx];
    return !r.free.empty();
}

std::uint32_t
DataArray::allocFrame(std::uint32_t group, std::uint32_t region_idx)
{
    RegionList &r = region(group, region_idx);
    panic_if(r.free.empty(), "allocFrame on full region %u of d-group %u",
             region_idx, group);
    const std::uint32_t f = r.free.back();
    r.free.pop_back();
    return f;
}

std::uint32_t
DataArray::victimFrame(std::uint32_t group, std::uint32_t region_idx)
{
    RegionList &r = region(group, region_idx);
    panic_if(!r.free.empty(),
             "victimFrame called while region %u of d-group %u has free "
             "frames", region_idx, group);
    if (replPolicy == DistanceRepl::LRU) {
        panic_if(r.tail == kNoFrame, "LRU victim in empty region");
        return r.tail;
    }
    if (replPolicy == DistanceRepl::TreePLRU) {
        return region_idx * framesPerRegion +
            plru[group]->victim(region_idx);
    }
    // Random: the region is full, so any frame in it is a valid victim.
    return region_idx * framesPerRegion + rng.below(framesPerRegion);
}

void
DataArray::place(std::uint32_t group, std::uint32_t f, std::uint32_t set,
                 std::uint32_t way)
{
    Frame &fr = frame(group, f);
    panic_if(fr.valid, "placing into occupied frame %u of d-group %u",
             f, group);
    fr.valid = true;
    fr.set = set;
    fr.way = static_cast<std::uint16_t>(way);
    linkFront(group, f);
}

void
DataArray::remove(std::uint32_t group, std::uint32_t f)
{
    Frame &fr = frame(group, f);
    panic_if(!fr.valid, "removing invalid frame %u of d-group %u",
             f, group);
    fr.valid = false;
    unlink(group, f);
    region(group, regionOfFrame(f)).free.push_back(f);
}

void
DataArray::swapFrames(std::uint32_t group_a, std::uint32_t frame_a,
                      std::uint32_t group_b, std::uint32_t frame_b)
{
    Frame &a = frame(group_a, frame_a);
    Frame &b = frame(group_b, frame_b);
    panic_if(!a.valid || !b.valid, "swapping with an invalid frame");
    std::swap(a.set, b.set);
    std::swap(a.way, b.way);
    touch(group_a, frame_a);
    touch(group_b, frame_b);
}

std::uint64_t
DataArray::validCount() const
{
    std::uint64_t n = 0;
    for (const Frame &f : frames)
        n += f.valid ? 1 : 0;
    return n;
}

bool
DataArray::audit(AuditSink &sink) const
{
    bool clean = true;
    const auto report = [&](const char *inv, std::string detail,
                            std::uint32_t g, std::uint32_t f) {
        clean = false;
        sink.violation({"data-array", inv, std::move(detail),
                        AuditViolation::kNoIndex, AuditViolation::kNoIndex,
                        g, f});
    };

    for (std::uint32_t g = 0; g < nGroups; ++g) {
        const std::size_t base = std::size_t{g} * nFrames;
        for (std::uint32_t r = 0; r < nRegions; ++r) {
            const RegionList &rl = lists[std::size_t{g} * nRegions + r];
            const std::uint32_t lo = r * framesPerRegion;

            // Walk the LRU chain head→tail, bounding the walk so a
            // cycle cannot hang the audit.
            std::vector<bool> chained(framesPerRegion, false);
            std::uint32_t chain_len = 0;
            std::uint32_t prev = kNoFrame;
            std::uint32_t f = rl.head;
            while (f != kNoFrame && chain_len <= framesPerRegion) {
                if (regionOfFrame(f) != r) {
                    report("chain-crosses-region",
                           strprintf("frame of region %u on region %u's "
                                     "chain", regionOfFrame(f), r), g, f);
                    break;
                }
                if (chained[f - lo]) {
                    report("chain-cycle",
                           strprintf("frame revisited after %u links",
                                     chain_len), g, f);
                    break;
                }
                chained[f - lo] = true;
                ++chain_len;
                const Node &n = nodes[base + f];
                if (!n.linked)
                    report("chain-unlinked-node",
                           "frame on chain but not marked linked", g, f);
                if (!frames[base + f].valid)
                    report("chain-invalid-frame",
                           "invalid frame on the LRU chain", g, f);
                if (n.prev != prev) {
                    report("chain-bad-prev",
                           strprintf("prev is %u, expected %u", n.prev,
                                     prev), g, f);
                }
                prev = f;
                f = n.next;
            }
            if (f == kNoFrame && rl.tail != prev) {
                report("chain-bad-tail",
                       strprintf("tail is %u, chain ends at %u", rl.tail,
                                 prev), g,
                       rl.tail == kNoFrame ? AuditViolation::kNoIndex
                                           : rl.tail);
            }

            // Free list: exactly the invalid frames of the region.
            std::vector<bool> freed(framesPerRegion, false);
            for (const std::uint32_t ff : rl.free) {
                if (regionOfFrame(ff) != r) {
                    report("free-crosses-region",
                           strprintf("frame of region %u on region %u's "
                                     "free list", regionOfFrame(ff), r),
                           g, ff);
                    continue;
                }
                if (freed[ff - lo]) {
                    report("free-duplicate",
                           "frame on the free list twice", g, ff);
                    continue;
                }
                freed[ff - lo] = true;
                if (frames[base + ff].valid)
                    report("free-valid-frame",
                           "valid frame on the free list", g, ff);
                if (nodes[base + ff].linked)
                    report("free-linked-frame",
                           "free frame still on the LRU chain", g, ff);
            }

            // Every frame is on exactly one of the two structures.
            for (std::uint32_t i = 0; i < framesPerRegion; ++i) {
                const std::uint32_t ff = lo + i;
                const bool valid = frames[base + ff].valid;
                if (valid && !chained[i])
                    report("valid-not-chained",
                           "valid frame missing from the LRU chain",
                           g, ff);
                if (!valid && !freed[i])
                    report("invalid-not-free",
                           "invalid frame missing from the free list",
                           g, ff);
            }
            if (chain_len + rl.free.size() != framesPerRegion) {
                report("occupancy-mismatch",
                       strprintf("chain %u + free %zu != region frames "
                                 "%u in region %u", chain_len,
                                 rl.free.size(), framesPerRegion, r),
                       g, AuditViolation::kNoIndex);
            }
        }
    }
    return clean;
}

} // namespace nurapid
