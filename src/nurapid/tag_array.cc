#include "nurapid/tag_array.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace nurapid {

TagArray::TagArray(std::uint64_t capacity_bytes, std::uint32_t assoc,
                   std::uint32_t block_bytes)
    : sets(static_cast<std::uint32_t>(
          capacity_bytes / (std::uint64_t{assoc} * block_bytes))),
      ways(assoc), blockSize(block_bytes),
      entries(std::size_t{sets} * assoc),
      stamps(std::size_t{sets} * assoc, 0)
{
    fatal_if(assoc == 0, "tag array with zero associativity");
    fatal_if(!isPowerOf2(block_bytes), "block size %u not a power of two",
             block_bytes);
    fatal_if(!isPowerOf2(sets), "set count %u not a power of two", sets);
}

std::uint32_t
TagArray::setOf(Addr addr) const
{
    return static_cast<std::uint32_t>((addr / blockSize) & (sets - 1));
}

Addr
TagArray::tagOf(Addr addr) const
{
    return addr / blockSize / sets;
}

TagArray::Lookup
TagArray::lookup(Addr addr) const
{
    Lookup result;
    result.set = setOf(addr);
    const Addr tag = tagOf(addr);
    for (std::uint32_t w = 0; w < ways; ++w) {
        const Entry &e = entries[std::size_t{result.set} * ways + w];
        if (e.valid && e.tag == tag) {
            result.hit = true;
            result.way = w;
            return result;
        }
    }
    return result;
}

TagArray::Entry &
TagArray::entry(std::uint32_t set, std::uint32_t way)
{
    panic_if(set >= sets || way >= ways, "tag entry (%u, %u) out of range",
             set, way);
    return entries[std::size_t{set} * ways + way];
}

const TagArray::Entry &
TagArray::entry(std::uint32_t set, std::uint32_t way) const
{
    panic_if(set >= sets || way >= ways, "tag entry (%u, %u) out of range",
             set, way);
    return entries[std::size_t{set} * ways + way];
}

void
TagArray::touch(std::uint32_t set, std::uint32_t way)
{
    stamps[std::size_t{set} * ways + way] = ++clock;
}

std::uint32_t
TagArray::victimWay(std::uint32_t set) const
{
    const std::size_t base = std::size_t{set} * ways;
    std::uint32_t lru = 0;
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (!entries[base + w].valid)
            return w;
        if (stamps[base + w] < stamps[base + lru])
            lru = w;
    }
    return lru;
}

Addr
TagArray::blockAddr(std::uint32_t set, std::uint32_t way) const
{
    const Entry &e = entry(set, way);
    return (e.tag * sets + set) * blockSize;
}

std::uint64_t
TagArray::validCount() const
{
    std::uint64_t n = 0;
    for (const Entry &e : entries)
        n += e.valid ? 1 : 0;
    return n;
}

bool
TagArray::audit(AuditSink &sink) const
{
    bool clean = true;
    for (std::uint32_t s = 0; s < sets; ++s) {
        const std::size_t base = std::size_t{s} * ways;
        for (std::uint32_t w = 0; w < ways; ++w) {
            const Entry &e = entries[base + w];
            if (e.valid) {
                for (std::uint32_t w2 = w + 1; w2 < ways; ++w2) {
                    const Entry &o = entries[base + w2];
                    if (o.valid && o.tag == e.tag) {
                        clean = false;
                        sink.violation({"tag-array", "duplicate-tag",
                                        strprintf("tag %#llx also in "
                                                  "way %u",
                                                  static_cast<
                                                      unsigned long long>(
                                                      e.tag), w2),
                                        s, w, AuditViolation::kNoIndex,
                                        AuditViolation::kNoIndex});
                    }
                }
            }
            if (stamps[base + w] > clock) {
                clean = false;
                sink.violation({"tag-array", "stamp-beyond-clock",
                                strprintf("stamp %llu > clock %llu",
                                          static_cast<unsigned long long>(
                                              stamps[base + w]),
                                          static_cast<unsigned long long>(
                                              clock)),
                                s, w, AuditViolation::kNoIndex,
                                AuditViolation::kNoIndex});
            }
        }
    }
    return clean;
}

} // namespace nurapid
