#include "nurapid/tag_array.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace nurapid {

TagArray::TagArray(std::uint64_t capacity_bytes, std::uint32_t assoc,
                   std::uint32_t block_bytes, std::uint32_t max_frame)
    : sets(static_cast<std::uint32_t>(
          capacity_bytes / (std::uint64_t{assoc} * block_bytes))),
      ways(assoc), blockSize(block_bytes)
{
    fatal_if(assoc == 0, "tag array with zero associativity");
    fatal_if(assoc > 64,
             "tag array associativity %u outside the bitmap-word "
             "range 1..64", assoc);
    fatal_if(!isPowerOf2(block_bytes), "block size %u not a power of two",
             block_bytes);
    fatal_if(!isPowerOf2(sets), "set count %u not a power of two", sets);
    blockShift = floorLog2(blockSize);
    tagShift = blockShift + floorLog2(sets);

    strideShift = ceilLog2(ways);
    wayStride = std::uint32_t{1} << strideShift;
    waysMask = ways == 64
        ? ~std::uint64_t{0}
        : (std::uint64_t{1} << ways) - 1;

    const std::size_t plane = std::size_t{sets} << strideShift;
    tagPlane.assign(plane, 0);
    validBits.assign(sets, 0);
    dirtyBits.assign(sets, 0);
    groupPlane.assign(plane, 0);
    framePlane.init(plane, max_frame, 0);

    // Initial rank order (way index order) is arbitrary: the LRU way
    // is only consulted once every way is valid, and valid ways have
    // all been touched.
    ranks.init(sets, ways);
}

TagArray::Entry
TagArray::entry(std::uint32_t set, std::uint32_t way) const
{
    panic_if(set >= sets || way >= ways, "tag entry (%u, %u) out of range",
             set, way);
    const std::size_t idx = rowOf(set) + way;
    Entry e;
    e.tag = tagPlane[idx];
    e.valid = isValid(set, way);
    e.dirty = isDirty(set, way);
    e.group = groupPlane[idx];
    e.frame = framePlane.get(idx);
    return e;
}

void
TagArray::setEntry(std::uint32_t set, std::uint32_t way, const Entry &e)
{
    panic_if(set >= sets || way >= ways, "tag entry (%u, %u) out of range",
             set, way);
    const std::size_t idx = rowOf(set) + way;
    const std::uint64_t bit = std::uint64_t{1} << way;
    tagPlane[idx] = e.tag;
    if (e.valid)
        validBits[set] |= bit;
    else
        validBits[set] &= ~bit;
    if (e.dirty)
        dirtyBits[set] |= bit;
    else
        dirtyBits[set] &= ~bit;
    groupPlane[idx] = e.group;
    framePlane.set(idx, e.frame);
}

Addr
TagArray::blockAddr(std::uint32_t set, std::uint32_t way) const
{
    panic_if(set >= sets || way >= ways, "tag entry (%u, %u) out of range",
             set, way);
    return (tagPlane[rowOf(set) + way] * sets + set) * blockSize;
}

std::uint64_t
TagArray::validCount() const
{
    std::uint64_t n = 0;
    for (std::uint32_t s = 0; s < sets; ++s)
        n += static_cast<std::uint64_t>(std::popcount(validBits[s]));
    return n;
}

bool
TagArray::audit(AuditSink &sink) const
{
    bool clean = true;
    for (std::uint32_t s = 0; s < sets; ++s) {
        const std::size_t base = rowOf(s);
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (!((validBits[s] >> w) & 1))
                continue;
            for (std::uint32_t w2 = w + 1; w2 < ways; ++w2) {
                if (((validBits[s] >> w2) & 1) &&
                    tagPlane[base + w2] == tagPlane[base + w]) {
                    clean = false;
                    sink.violation({"tag-array", "duplicate-tag",
                                    strprintf("tag %#llx also in "
                                              "way %u",
                                              static_cast<
                                                  unsigned long long>(
                                                  tagPlane[base + w]), w2),
                                    s, w, AuditViolation::kNoIndex,
                                    AuditViolation::kNoIndex});
                }
            }
        }

        // The rank plane must hold a permutation of 0..ways-1 per
        // set; a duplicated or out-of-range rank corrupts LRU victims.
        if (!ranks.isPermutation(s)) {
            clean = false;
            sink.violation({"tag-array", "lru-rank",
                            strprintf("set %u recency ranks are not a "
                                      "permutation of %u ways", s, ways),
                            s, AuditViolation::kNoIndex,
                            AuditViolation::kNoIndex,
                            AuditViolation::kNoIndex});
        }
    }
    return clean;
}

} // namespace nurapid
