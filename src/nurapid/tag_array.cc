#include "nurapid/tag_array.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace nurapid {

TagArray::TagArray(std::uint64_t capacity_bytes, std::uint32_t assoc,
                   std::uint32_t block_bytes)
    : sets(static_cast<std::uint32_t>(
          capacity_bytes / (std::uint64_t{assoc} * block_bytes))),
      ways(assoc), blockSize(block_bytes),
      entries(std::size_t{sets} * assoc),
      chain(std::size_t{sets} * assoc), head(sets, 0),
      tail(sets, assoc - 1)
{
    fatal_if(assoc == 0, "tag array with zero associativity");
    fatal_if(!isPowerOf2(block_bytes), "block size %u not a power of two",
             block_bytes);
    fatal_if(!isPowerOf2(sets), "set count %u not a power of two", sets);
    blockShift = floorLog2(blockSize);
    tagShift = blockShift + floorLog2(sets);

    // Initial chain order (way index order) is arbitrary: the tail is
    // only consulted once every way is valid, and valid ways have all
    // been touched.
    for (std::uint32_t s = 0; s < sets; ++s) {
        const std::size_t base = std::size_t{s} * ways;
        for (std::uint32_t w = 0; w < ways; ++w) {
            chain[base + w].prev = w == 0 ? 0 : w - 1;
            chain[base + w].next = w + 1 == ways ? w : w + 1;
        }
    }
}

TagArray::Entry &
TagArray::entry(std::uint32_t set, std::uint32_t way)
{
    panic_if(set >= sets || way >= ways, "tag entry (%u, %u) out of range",
             set, way);
    return entries[std::size_t{set} * ways + way];
}

const TagArray::Entry &
TagArray::entry(std::uint32_t set, std::uint32_t way) const
{
    panic_if(set >= sets || way >= ways, "tag entry (%u, %u) out of range",
             set, way);
    return entries[std::size_t{set} * ways + way];
}

Addr
TagArray::blockAddr(std::uint32_t set, std::uint32_t way) const
{
    const Entry &e = entry(set, way);
    return (e.tag * sets + set) * blockSize;
}

std::uint64_t
TagArray::validCount() const
{
    std::uint64_t n = 0;
    for (const Entry &e : entries)
        n += e.valid ? 1 : 0;
    return n;
}

bool
TagArray::audit(AuditSink &sink) const
{
    bool clean = true;
    std::vector<std::uint8_t> seen(ways);
    for (std::uint32_t s = 0; s < sets; ++s) {
        const std::size_t base = std::size_t{s} * ways;
        for (std::uint32_t w = 0; w < ways; ++w) {
            const Entry &e = entries[base + w];
            if (!e.valid)
                continue;
            for (std::uint32_t w2 = w + 1; w2 < ways; ++w2) {
                const Entry &o = entries[base + w2];
                if (o.valid && o.tag == e.tag) {
                    clean = false;
                    sink.violation({"tag-array", "duplicate-tag",
                                    strprintf("tag %#llx also in "
                                              "way %u",
                                              static_cast<
                                                  unsigned long long>(
                                                  e.tag), w2),
                                    s, w, AuditViolation::kNoIndex,
                                    AuditViolation::kNoIndex});
                }
            }
        }

        // The recency chain must visit every way exactly once from
        // head to tail; a cycle or dropped way corrupts LRU victims.
        seen.assign(ways, 0);
        std::uint32_t w = head[s];
        std::uint32_t visited = 0;
        bool broken = false;
        while (visited < ways) {
            if (w >= ways || seen[w]) {
                broken = true;
                break;
            }
            seen[w] = 1;
            ++visited;
            if (w == tail[s])
                break;
            w = chain[base + w].next;
        }
        if (broken || visited != ways) {
            clean = false;
            sink.violation({"tag-array", "lru-chain",
                            strprintf("set %u recency chain visits %u "
                                      "of %u ways", s, visited, ways),
                            s, AuditViolation::kNoIndex,
                            AuditViolation::kNoIndex,
                            AuditViolation::kNoIndex});
        }
    }
    return clean;
}

} // namespace nurapid
