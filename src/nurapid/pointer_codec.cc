#include "nurapid/pointer_codec.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace nurapid {

PointerLayout
computePointerLayout(std::uint64_t capacity_bytes,
                     std::uint32_t block_bytes, std::uint32_t assoc,
                     std::uint32_t num_dgroups,
                     std::uint32_t frame_restriction,
                     std::uint32_t addr_bits)
{
    fatal_if(capacity_bytes == 0 || block_bytes == 0 || assoc == 0 ||
                 num_dgroups == 0,
             "degenerate pointer-layout query");

    const std::uint64_t blocks = capacity_bytes / block_bytes;
    const std::uint64_t frames_per_group = blocks / num_dgroups;
    const std::uint64_t sets = blocks / assoc;

    PointerLayout l;
    l.group_bits = bitsFor(num_dgroups);
    l.frame_bits = frame_restriction == 0
        ? bitsFor(frames_per_group)
        : bitsFor(frame_restriction);
    l.forward_bits = l.group_bits + l.frame_bits;
    l.reverse_bits = bitsFor(sets) + bitsFor(assoc);

    // One forward pointer per tag entry + one reverse pointer per frame
    // (the two populations have the same size: one of each per block).
    l.total_pointer_bytes =
        (blocks * (l.forward_bits + l.reverse_bits) + 7) / 8;
    l.pointer_overhead =
        static_cast<double>(l.total_pointer_bytes) / capacity_bytes;

    // Conventional tag-entry cost for comparison (valid+dirty+LRU bits).
    const std::uint64_t tag_bits =
        addr_bits - bitsFor(sets) - bitsFor(block_bytes);
    l.tag_entry_bits = tag_bits + 2 + bitsFor(assoc);
    l.tag_overhead =
        static_cast<double>(blocks * l.tag_entry_bits / 8) /
        capacity_bytes;
    return l;
}

} // namespace nurapid
