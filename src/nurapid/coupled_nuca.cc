#include "nurapid/coupled_nuca.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace nurapid {

CoupledNucaCache::CoupledNucaCache(const SramMacroModel &model,
                                   const Params &params)
    : p(params),
      times(makeNuRapidTiming(model, p.capacity_bytes, p.num_dgroups,
                              p.assoc, p.block_bytes)),
      sets(static_cast<std::uint32_t>(
          p.capacity_bytes / (std::uint64_t{p.assoc} * p.block_bytes))),
      waysPerGroup(p.assoc / p.num_dgroups),
      lines(std::size_t{sets} * p.assoc),
      stamps(std::size_t{sets} * p.assoc, 0),
      mem(p.memory), statGroup(p.name), regionHist(p.num_dgroups)
{
    fatal_if(p.assoc % p.num_dgroups != 0,
             "associativity %u not divisible across %u d-groups",
             p.assoc, p.num_dgroups);
    fatal_if(!isPowerOf2(sets), "set count %u not a power of two", sets);
    fatal_if(!isPowerOf2(p.block_bytes),
             "block size %u not a power of two", p.block_bytes);
    blockShift = floorLog2(p.block_bytes);
    tagShift = blockShift + floorLog2(sets);

    statGroup.addCounter("demand_accesses", statDemandAccesses);
    statGroup.addCounter("writeback_accesses", statWritebackAccesses);
    statGroup.addCounter("hits", statHits);
    statGroup.addCounter("misses", statMisses);
    statGroup.addCounter("evictions", statEvictions);
    statGroup.addCounter("promotions", statPromotions);
    statGroup.addCounter("demotions", statDemotions);
    statGroup.addCounter("block_moves", statBlockMoves);
    statGroup.addCounter("dgroup_accesses", statDGroupAccesses);
}

std::uint32_t
CoupledNucaCache::groupOfWay(std::uint32_t way) const
{
    return way / waysPerGroup;
}

CoupledNucaCache::Line &
CoupledNucaCache::line(std::uint32_t set, std::uint32_t way)
{
    return lines[std::size_t{set} * p.assoc + way];
}

void
CoupledNucaCache::touch(std::uint32_t set, std::uint32_t way)
{
    stamps[std::size_t{set} * p.assoc + way] = ++clock;
}

std::uint32_t
CoupledNucaCache::lruWayInGroup(std::uint32_t set,
                                std::uint32_t group) const
{
    const std::uint32_t first = group * waysPerGroup;
    std::uint32_t best = first;
    for (std::uint32_t w = first; w < first + waysPerGroup; ++w) {
        const std::size_t idx = std::size_t{set} * p.assoc + w;
        if (!lines[idx].valid)
            return w;
        if (stamps[idx] < stamps[std::size_t{set} * p.assoc + best])
            best = w;
    }
    return best;
}

LowerMemory::Result
CoupledNucaCache::access(Addr addr, AccessType type, Cycle now)
{
    const Addr block = blockAlign(addr, p.block_bytes);
    const bool is_writeback = type == AccessType::Writeback;
    const bool is_write = type == AccessType::Write || is_writeback;

    if (is_writeback)
        ++statWritebackAccesses;
    else
        ++statDemandAccesses;

    // Demand accesses contend for the single port; L1 writebacks drain
    // from a writeback buffer through idle slots.
    Cycle start = now;
    if (p.single_port && !is_writeback)
        start = std::max(now, portFree);
    Cycles busy = 0;

    cacheEnergy += times.tag_read_nj;

    const std::uint32_t set = static_cast<std::uint32_t>(
        (block >> blockShift) & (sets - 1));
    const Addr tag = block >> tagShift;

    // Tag probe across all ways.
    std::uint32_t hit_way = p.assoc;
    for (std::uint32_t w = 0; w < p.assoc; ++w) {
        Line &l = line(set, w);
        if (l.valid && l.tag == tag) {
            hit_way = w;
            break;
        }
    }

    Result result;
    if (hit_way < p.assoc) {
        const std::uint32_t g = groupOfWay(hit_way);
        ++statDGroupAccesses;
        if (!is_writeback) {
            ++statHits;
            regionHist.sample(g);
        }
        touch(set, hit_way);
        if (is_write)
            line(set, hit_way).dirty = true;
        cacheEnergy += is_write ? times.dgroups[g].data_write_nj
                                : times.dgroups[g].data_read_nj;
        busy = times.port_cycle;

        // Promotion is a swap *within the set*: the coupled layout can
        // only exchange our block with a way of the faster d-group.
        // (L1 writebacks update in place.)
        if (g > 0 && !is_writeback &&
            p.promotion != PromotionPolicy::DemotionOnly) {
            const std::uint32_t tgt_group =
                p.promotion == PromotionPolicy::NextFastest ? g - 1 : 0;
            const std::uint32_t victim = lruWayInGroup(set, tgt_group);
            if (obsSink) [[unlikely]] {
                if (line(set, victim).valid)
                    obsSink->swap(now, block, g, tgt_group);
                else
                    obsSink->promotion(now, block, g, tgt_group);
            }
            std::swap(line(set, hit_way), line(set, victim));
            std::swap(stamps[std::size_t{set} * p.assoc + hit_way],
                      stamps[std::size_t{set} * p.assoc + victim]);
            ++statPromotions;
            ++statDemotions;
            statBlockMoves += 2;
            statDGroupAccesses += 4;
            busy += times.swapBusy(g, tgt_group);
            cacheEnergy += 2.0 * times.swapEnergy(g, tgt_group);
        }

        result.hit = true;
        result.latency = is_writeback
            ? 0
            : static_cast<Cycles>(start - now) +
                times.dgroups[g].total_latency;
        if (obsSink) [[unlikely]] {
            if (is_writeback)
                obsSink->writeback(now, block);
            else
                obsSink->hit(now, block, g, result.latency);
        }
    } else {
        if (!is_writeback)
            ++statMisses;
        if (obsSink && is_writeback) [[unlikely]]
            obsSink->writeback(now, block);

        // Data replacement: evict the set-LRU block, freeing its way.
        std::uint32_t victim = 0;
        bool found_invalid = false;
        for (std::uint32_t w = 0; w < p.assoc; ++w) {
            if (!line(set, w).valid) {
                victim = w;
                found_invalid = true;
                break;
            }
        }
        if (!found_invalid) {
            victim = 0;
            for (std::uint32_t w = 1; w < p.assoc; ++w) {
                if (stamps[std::size_t{set} * p.assoc + w] <
                        stamps[std::size_t{set} * p.assoc + victim]) {
                    victim = w;
                }
            }
        }
        Line &v = line(set, victim);
        if (v.valid) {
            ++statEvictions;
            ++statDGroupAccesses;
            cacheEnergy +=
                times.dgroups[groupOfWay(victim)].data_read_nj;
            recordEviction(result, (v.tag * sets + set) * p.block_bytes,
                           v.dirty, now);
            if (v.dirty)
                mem.write(p.block_bytes);
            v.valid = false;
        }

        // Initial placement in the fastest d-group: bubble existing
        // blocks outward, group by group, until the freed way absorbs
        // one (same mechanics as D-NUCA's bubble replacement).
        const std::uint32_t free_group = groupOfWay(victim);
        std::uint32_t hole = victim;
        for (std::uint32_t g = free_group; g-- > 0;) {
            const std::uint32_t w = lruWayInGroup(set, g);
            if (!line(set, w).valid) {
                // A free way closer in: restart the bubble from here.
                hole = w;
                continue;
            }
            // Demote g's LRU occupant one d-group outward into the hole.
            if (obsSink) [[unlikely]] {
                obsSink->demotion(
                    now, (line(set, w).tag * sets + set) * p.block_bytes,
                    g, groupOfWay(hole));
            }
            line(set, hole) = line(set, w);
            stamps[std::size_t{set} * p.assoc + hole] =
                stamps[std::size_t{set} * p.assoc + w];
            line(set, w).valid = false;
            ++statDemotions;
            ++statBlockMoves;
            statDGroupAccesses += 2;
            busy += times.swapBusy(g, groupOfWay(hole));
            cacheEnergy += times.swapEnergy(g, groupOfWay(hole));
            hole = w;
        }

        Line &dest = line(set, hole);
        dest.tag = tag;
        dest.valid = true;
        dest.dirty = is_write;
        touch(set, hole);
        ++statDGroupAccesses;
        cacheEnergy += times.tag_write_nj + times.dgroups[0].data_write_nj;
        busy += times.port_cycle;

        const Cycles mem_lat = mem.read(p.block_bytes);
        result.hit = false;
        result.latency = is_writeback
            ? 0
            : static_cast<Cycles>(start - now) + times.tag_latency +
                mem_lat;
        if (obsSink && !is_writeback) [[unlikely]]
            obsSink->miss(now, block, result.latency);
    }

    if (p.single_port && !is_writeback) {
        NURAPID_AUDIT_POINT(auditTick, audit(audit::hookSink()));
        portFree = start + busy;
    }
    return result;
}

EnergyNJ
CoupledNucaCache::dynamicEnergyNJ() const
{
    return cacheEnergy + mem.dynamicEnergyNJ();
}

void
CoupledNucaCache::regionOccupancy(std::vector<std::uint64_t> &out) const
{
    out.assign(p.num_dgroups, 0);
    for (std::uint32_t s = 0; s < sets; ++s) {
        for (std::uint32_t w = 0; w < p.assoc; ++w) {
            if (lines[std::size_t{s} * p.assoc + w].valid)
                ++out[groupOfWay(w)];
        }
    }
}

void
CoupledNucaCache::forEachResident(const ResidentFn &fn) const
{
    for (std::uint32_t s = 0; s < sets; ++s) {
        for (std::uint32_t w = 0; w < p.assoc; ++w) {
            const Line &l = lines[std::size_t{s} * p.assoc + w];
            if (l.valid)
                fn((l.tag * sets + s) * p.block_bytes, l.dirty);
        }
    }
}

bool
CoupledNucaCache::audit(AuditSink &sink) const
{
    bool clean = true;
    for (std::uint32_t s = 0; s < sets; ++s) {
        for (std::uint32_t w = 0; w < p.assoc; ++w) {
            const std::size_t idx = std::size_t{s} * p.assoc + w;
            const Line &l = lines[idx];
            if (!l.valid)
                continue;
            for (std::uint32_t w2 = w + 1; w2 < p.assoc; ++w2) {
                const Line &o = lines[std::size_t{s} * p.assoc + w2];
                if (o.valid && o.tag == l.tag) {
                    clean = false;
                    sink.violation({p.name, "duplicate-tag",
                                    strprintf("tag %#llx also in way %u",
                                              static_cast<
                                                  unsigned long long>(
                                                  l.tag), w2),
                                    s, w, groupOfWay(w),
                                    AuditViolation::kNoIndex});
                }
            }
            if (stamps[idx] > clock) {
                clean = false;
                sink.violation({p.name, "stamp-beyond-clock",
                                strprintf("stamp %llu > clock %llu",
                                          static_cast<unsigned long long>(
                                              stamps[idx]),
                                          static_cast<unsigned long long>(
                                              clock)),
                                s, w, groupOfWay(w),
                                AuditViolation::kNoIndex});
            }
        }
    }
    return clean;
}

void
CoupledNucaCache::resetStats()
{
    statGroup.resetAll();
    mem.resetStats();
    regionHist.reset();
    cacheEnergy = 0;
}

} // namespace nurapid
