#include "nurapid/coupled_nuca.hh"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "mem/tag_probe.hh"
#include "sim/profile/profile.hh"

namespace nurapid {

CoupledNucaCache::CoupledNucaCache(const SramMacroModel &model,
                                   const Params &params)
    : p(params),
      times(makeNuRapidTiming(model, p.capacity_bytes, p.num_dgroups,
                              p.assoc, p.block_bytes)),
      sets(static_cast<std::uint32_t>(
          p.capacity_bytes / (std::uint64_t{p.assoc} * p.block_bytes))),
      waysPerGroup(p.assoc / p.num_dgroups),
      mem(p.memory), statGroup(p.name), regionHist(p.num_dgroups)
{
    fatal_if(p.assoc % p.num_dgroups != 0,
             "associativity %u not divisible across %u d-groups",
             p.assoc, p.num_dgroups);
    fatal_if(p.assoc == 0 || p.assoc > 64,
             "associativity %u outside the bitmap range 1..64", p.assoc);
    fatal_if(!isPowerOf2(sets), "set count %u not a power of two", sets);
    fatal_if(!isPowerOf2(p.block_bytes),
             "block size %u not a power of two", p.block_bytes);
    blockShift = floorLog2(p.block_bytes);
    tagShift = blockShift + floorLog2(sets);

    strideShift = ceilLog2(p.assoc);
    wayStride = std::uint32_t{1} << strideShift;
    waysMask = p.assoc == 64 ? ~std::uint64_t{0}
                             : (std::uint64_t{1} << p.assoc) - 1;
    tagPlane.assign(std::size_t{sets} << strideShift, 0);
    ranks.init(sets, p.assoc);
    validBits.assign(sets, 0);
    dirtyBits.assign(sets, 0);

    statGroup.addCounter("demand_accesses", cnt.demandAccesses);
    statGroup.addCounter("writeback_accesses", cnt.writebackAccesses);
    statGroup.addCounter("hits", cnt.hits);
    statGroup.addCounter("misses", cnt.misses);
    statGroup.addCounter("evictions", cnt.evictions);
    statGroup.addCounter("promotions", cnt.promotions);
    statGroup.addCounter("demotions", cnt.demotions);
    statGroup.addCounter("block_moves", cnt.blockMoves);
    statGroup.addCounter("dgroup_accesses", cnt.dgroupAccesses);
}

std::uint32_t
CoupledNucaCache::groupOfWay(std::uint32_t way) const
{
    return way / waysPerGroup;
}

void
CoupledNucaCache::touch(std::uint32_t set, std::uint32_t way)
{
    NURAPID_PROFILE_SCOPE(Recency);
    ranks.touch(set, way);
}

std::uint32_t
CoupledNucaCache::lruWayInGroup(std::uint32_t set,
                                std::uint32_t group) const
{
    // Lowest invalid way of the group wins outright (the historical
    // scan returned the first invalid way in index order).
    const std::uint32_t first = group * waysPerGroup;
    const std::uint64_t group_bits = waysPerGroup >= 64
        ? ~std::uint64_t{0}
        : (std::uint64_t{1} << waysPerGroup) - 1;
    const std::uint64_t group_invalid =
        (~validBits[set] >> first) & group_bits;
    if (group_invalid) {
        return first +
            static_cast<std::uint32_t>(std::countr_zero(group_invalid));
    }
    NURAPID_PROFILE_SCOPE(Recency);
    return ranks.lruWayMasked(set, group_bits << first);
}

LowerMemory::Result
CoupledNucaCache::access(Addr addr, AccessType type, Cycle now)
{
    const Addr block = blockAlign(addr, p.block_bytes);
    const bool is_writeback = type == AccessType::Writeback;
    const bool is_write = type == AccessType::Write || is_writeback;

    if (is_writeback)
        ++cnt.writebackAccesses;
    else
        ++cnt.demandAccesses;

    // Demand accesses contend for the single port; L1 writebacks drain
    // from a writeback buffer through idle slots.
    Cycle start = now;
    if (p.single_port && !is_writeback)
        start = std::max(now, portFree);
    Cycles busy = 0;

    cacheEnergy.chargeTag(times.tag_read_nj);

    const std::uint32_t set = static_cast<std::uint32_t>(
        (block >> blockShift) & (sets - 1));
    const Addr tag = block >> tagShift;
    const std::size_t row = rowBase(set);

    // Tag probe across all ways (first valid match wins).
    std::uint64_t match;
    {
        NURAPID_PROFILE_SCOPE(Probe);
        match = probeMatch(&tagPlane[row], wayStride, tag) &
            validBits[set];
    }
    const std::uint32_t hit_way = match
        ? static_cast<std::uint32_t>(std::countr_zero(match))
        : p.assoc;

    Result result;
    if (hit_way < p.assoc) {
        const std::uint32_t g = groupOfWay(hit_way);
        ++cnt.dgroupAccesses;
        if (!is_writeback) {
            ++cnt.hits;
            regionHist.sample(g);
        }
        touch(set, hit_way);
        if (is_write)
            dirtyBits[set] |= std::uint64_t{1} << hit_way;
        cacheEnergy.chargeData(g, is_write ? times.dgroups[g].data_write_nj
                                           : times.dgroups[g].data_read_nj);
        busy = times.port_cycle;

        // Promotion is a swap *within the set*: the coupled layout can
        // only exchange our block with a way of the faster d-group.
        // (L1 writebacks update in place.)
        if (g > 0 && !is_writeback &&
            p.promotion != PromotionPolicy::DemotionOnly) {
            const std::uint32_t tgt_group =
                p.promotion == PromotionPolicy::NextFastest ? g - 1 : 0;
            const std::uint32_t victim = lruWayInGroup(set, tgt_group);
            if (obsSink) [[unlikely]] {
                if ((validBits[set] >> victim) & 1)
                    obsSink->swap(now, block, g, tgt_group);
                else
                    obsSink->promotion(now, block, g, tgt_group);
            }
            std::swap(tagPlane[row | hit_way], tagPlane[row | victim]);
            swapBits(validBits[set], hit_way, victim);
            swapBits(dirtyBits[set], hit_way, victim);
            ranks.swapWays(set, hit_way, victim);
            ++cnt.promotions;
            ++cnt.demotions;
            cnt.blockMoves += 2;
            cnt.dgroupAccesses += 4;
            busy += times.swapBusy(g, tgt_group);
            cacheEnergy.chargeSwap(2.0 * times.swapEnergy(g, tgt_group));
        }

        result.hit = true;
        result.latency = is_writeback
            ? 0
            : static_cast<Cycles>(start - now) +
                times.dgroups[g].total_latency;
        if (obsSink) [[unlikely]] {
            if (is_writeback)
                obsSink->writeback(now, block);
            else
                obsSink->hit(now, block, g, result.latency);
        }
    } else {
        if (!is_writeback)
            ++cnt.misses;
        if (obsSink && is_writeback) [[unlikely]]
            obsSink->writeback(now, block);

        // Data replacement: evict the set-LRU block, freeing its way.
        std::uint32_t victim;
        const std::uint64_t invalid = ~validBits[set] & waysMask;
        if (invalid) {
            victim = static_cast<std::uint32_t>(
                std::countr_zero(invalid));
        } else {
            NURAPID_PROFILE_SCOPE(Recency);
            victim = ranks.lruWay(set);
        }
        if ((validBits[set] >> victim) & 1) {
            ++cnt.evictions;
            ++cnt.dgroupAccesses;
            cacheEnergy.chargeData(
                groupOfWay(victim),
                times.dgroups[groupOfWay(victim)].data_read_nj);
            const bool victim_dirty = (dirtyBits[set] >> victim) & 1;
            recordEviction(result,
                           (tagPlane[row | victim] * sets + set) *
                               p.block_bytes,
                           victim_dirty, now);
            if (victim_dirty)
                mem.write(p.block_bytes);
            validBits[set] &= ~(std::uint64_t{1} << victim);
        }

        // Initial placement in the fastest d-group: bubble existing
        // blocks outward, group by group, until the freed way absorbs
        // one (same mechanics as D-NUCA's bubble replacement).
        const std::uint32_t free_group = groupOfWay(victim);
        std::uint32_t hole = victim;
        for (std::uint32_t g = free_group; g-- > 0;) {
            const std::uint32_t w = lruWayInGroup(set, g);
            if (!((validBits[set] >> w) & 1)) {
                // A free way closer in: restart the bubble from here.
                hole = w;
                continue;
            }
            // Demote g's LRU occupant one d-group outward into the hole.
            if (obsSink) [[unlikely]] {
                obsSink->demotion(
                    now,
                    (tagPlane[row | w] * sets + set) * p.block_bytes,
                    g, groupOfWay(hole));
            }
            tagPlane[row | hole] = tagPlane[row | w];
            validBits[set] |= std::uint64_t{1} << hole;
            dirtyBits[set] = (dirtyBits[set] &
                              ~(std::uint64_t{1} << hole)) |
                (((dirtyBits[set] >> w) & 1) << hole);
            // The stamp plane copied w's stamp into the hole; a rank
            // *swap* is decision-identical (w is invalidated on the
            // next line and invalid ranks are never consulted) and
            // keeps the ranks a permutation.
            ranks.swapWays(set, hole, w);
            validBits[set] &= ~(std::uint64_t{1} << w);
            ++cnt.demotions;
            ++cnt.blockMoves;
            cnt.dgroupAccesses += 2;
            busy += times.swapBusy(g, groupOfWay(hole));
            cacheEnergy.chargeSwap(times.swapEnergy(g, groupOfWay(hole)));
            hole = w;
        }

        tagPlane[row | hole] = tag;
        validBits[set] |= std::uint64_t{1} << hole;
        if (is_write)
            dirtyBits[set] |= std::uint64_t{1} << hole;
        else
            dirtyBits[set] &= ~(std::uint64_t{1} << hole);
        touch(set, hole);
        ++cnt.dgroupAccesses;
        cacheEnergy.chargeTagData(times.tag_write_nj, 0,
                                  times.dgroups[0].data_write_nj);
        busy += times.port_cycle;

        const Cycles mem_lat = mem.read(p.block_bytes);
        result.hit = false;
        result.latency = is_writeback
            ? 0
            : static_cast<Cycles>(start - now) + times.tag_latency +
                mem_lat;
        if (obsSink && !is_writeback) [[unlikely]]
            obsSink->miss(now, block, result.latency);
    }

    if (p.single_port && !is_writeback) {
        NURAPID_AUDIT_POINT(auditTick, audit(audit::hookSink()));
        portFree = start + busy;
    }
    return result;
}

EnergyNJ
CoupledNucaCache::dynamicEnergyNJ() const
{
    return cacheEnergy.total_nj + mem.dynamicEnergyNJ();
}

void
CoupledNucaCache::regionOccupancy(std::vector<std::uint64_t> &out) const
{
    out.assign(p.num_dgroups, 0);
    for (std::uint32_t s = 0; s < sets; ++s) {
        std::uint64_t vb = validBits[s];
        while (vb) {
            const std::uint32_t w = static_cast<std::uint32_t>(
                std::countr_zero(vb));
            vb &= vb - 1;
            ++out[groupOfWay(w)];
        }
    }
}

void
CoupledNucaCache::forEachResident(const ResidentFn &fn) const
{
    for (std::uint32_t s = 0; s < sets; ++s) {
        const std::size_t row = rowBase(s);
        std::uint64_t vb = validBits[s];
        while (vb) {
            const std::uint32_t w = static_cast<std::uint32_t>(
                std::countr_zero(vb));
            vb &= vb - 1;
            fn((tagPlane[row | w] * sets + s) * p.block_bytes,
               (dirtyBits[s] >> w) & 1);
        }
    }
}

bool
CoupledNucaCache::audit(AuditSink &sink) const
{
    bool clean = true;
    for (std::uint32_t s = 0; s < sets; ++s) {
        const std::size_t row = rowBase(s);
        const std::uint64_t vb = validBits[s];
        for (std::uint32_t w = 0; w < p.assoc; ++w) {
            if (!((vb >> w) & 1))
                continue;
            for (std::uint32_t w2 = w + 1; w2 < p.assoc; ++w2) {
                if (((vb >> w2) & 1) &&
                    tagPlane[row | w2] == tagPlane[row | w]) {
                    clean = false;
                    sink.violation({p.name, "duplicate-tag",
                                    strprintf("tag %#llx also in way %u",
                                              static_cast<
                                                  unsigned long long>(
                                                  tagPlane[row | w]), w2),
                                    s, w, groupOfWay(w),
                                    AuditViolation::kNoIndex});
                }
            }
        }

        // The rank plane must hold a permutation of 0..assoc-1 per
        // set, or recency scans lose their tie-free guarantee.
        if (!ranks.isPermutation(s)) {
            clean = false;
            sink.violation({p.name, "lru-rank",
                            strprintf("set %u recency ranks are not a "
                                      "permutation of %u ways", s,
                                      p.assoc),
                            s, AuditViolation::kNoIndex,
                            AuditViolation::kNoIndex,
                            AuditViolation::kNoIndex});
        }
    }
    return clean;
}

std::size_t
CoupledNucaCache::hotStateBytes() const
{
    return (tagPlane.size() + validBits.size() + dirtyBits.size()) *
               sizeof(std::uint64_t) +
           ranks.bytes();
}

void
CoupledNucaCache::resetStats()
{
    statGroup.resetAll();
    mem.resetStats();
    regionHist.reset();
    cacheEnergy.reset();
}

} // namespace nurapid
