/**
 * @file
 * The NuRAPID cache: Non-uniform access with Replacement And Placement
 * using Distance associativity (the paper's contribution).
 *
 * Key behaviors, with paper sections:
 *  - sequential tag-data access through a centralized tag array (S1);
 *  - distance-associative placement: new blocks always fill the fastest
 *    d-group, regardless of how many set-mates already live there (S2.1);
 *  - distance replacement decoupled from data replacement: making room
 *    in a d-group demotes some block (any set) outward, never evicting
 *    it; cache eviction is set-LRU in the tag array (S2.2);
 *  - promotion policies demotion-only / next-fastest / fastest (S2.4.1)
 *    and random / true-LRU distance-victim selection (S2.4.2);
 *  - one port, non-banked: outstanding swaps must complete before a new
 *    access begins (S2.3), modeled by a port-free cycle;
 *  - optional pointer restriction (S2.4.3) via frame regions.
 */

#ifndef NURAPID_NURAPID_NURAPID_CACHE_HH
#define NURAPID_NURAPID_NURAPID_CACHE_HH

#include <memory>
#include <string>

#include "mem/lower_memory.hh"
#include "mem/main_memory.hh"
#include "nurapid/data_array.hh"
#include "nurapid/policies.hh"
#include "nurapid/tag_array.hh"
#include "timing/latency_tables.hh"

namespace nurapid {

class NuRapidCache final : public LowerMemory
{
  public:
    struct Params
    {
        std::string name = "nurapid";
        std::uint64_t capacity_bytes = 8ull << 20;
        std::uint32_t assoc = 8;
        std::uint32_t block_bytes = 128;
        std::uint32_t num_dgroups = 4;
        PromotionPolicy promotion = PromotionPolicy::NextFastest;
        DistanceRepl distance_repl = DistanceRepl::Random;
        bool single_port = true;    //!< false = infinite ports (ablation)
        bool ideal_fastest = false; //!< Figure 6's "ideal" bound
        /**
         * Section 2.4.3: frames of a d-group a block may occupy
         * (shrinks the forward/reverse pointers). 0 = unrestricted.
         */
        std::uint32_t frame_restriction = 0;
        std::uint64_t seed = 1;
        MainMemory::Params memory{};
    };

    NuRapidCache(const SramMacroModel &model, const Params &params);

    Result access(Addr addr, AccessType type, Cycle now) override;

    EnergyNJ dynamicEnergyNJ() const override;
    EnergyNJ cacheEnergyNJ() const override { return cacheEnergy.total_nj; }
    const EnergyBreakdown *energyBreakdown() const override
    {
        return &cacheEnergy;
    }
    const std::string &name() const override { return p.name; }
    StatGroup &stats() override { return statGroup; }
    const StatGroup &stats() const override { return statGroup; }
    const Histogram &regionHits() const override { return regionHist; }
    void resetStats() override;
    void forEachResident(const ResidentFn &fn) const override;

    /** Valid-frame count per d-group. */
    void regionOccupancy(std::vector<std::uint64_t> &out) const override;

    /**
     * Full structural audit: tag-array and data-array local invariants,
     * the forward/reverse pointer bijection in both directions,
     * matching valid-entry/valid-frame counts, and (when restricted)
     * region-correct placement. Violations carry (set, way, d-group,
     * frame) context.
     */
    bool audit(AuditSink &sink) const override;

    const Params &params() const { return p; }
    const NuRapidTiming &timing() const { return times; }
    MainMemory &memory() { return mem; }

    /** Deep consistency check — audit() into a counting sink. */
    bool checkInvariants() const;

    /** Frames of the fastest d-group holding blocks of @p set (tests
     *  and the hot-set example). */
    std::uint32_t blocksOfSetInGroup(std::uint32_t set,
                                     std::uint32_t group) const;

    const TagArray &tags() const { return tagArray; }
    const DataArray &data() const { return dataArray; }

    /** Stream-lookahead hint (name-hiding, see LowerMemory): every
     *  access starts at the centralized tag array. */
    void
    prefetchHotLines(Addr addr) const
    {
        tagArray.prefetchHotLines(addr);
    }

    /** Tag + data plane footprint for gang cohort budgeting. */
    std::size_t
    hotStateBytes() const override
    {
        return tagArray.hotBytes() + dataArray.hotBytes();
    }

    /** Mutable views for fault-injection tests: corrupt a pointer, then
     *  assert audit() pinpoints it. Never used by the simulator. */
    TagArray &tagsForTesting() { return tagArray; }
    DataArray &dataForTesting() { return dataArray; }

  private:
    /**
     * Guarantees a free frame in @p region of @p group by cascading
     * demotions outward; returns the freed frame. Accumulates swap
     * port-occupancy into @p busy.
     */
    std::uint32_t ensureFree(std::uint32_t group, std::uint32_t region,
                             Cycles &busy, Result &result, Cycle now);

    /** Moves the block in (group, frame) to (dest_group, dest_frame),
     *  updating the forward and reverse pointers. */
    void moveBlock(std::uint32_t group, std::uint32_t frame,
                   std::uint32_t dest_group, std::uint32_t dest_frame);

    /** Handles promotion of a just-hit block per the policy. */
    void promote(std::uint32_t set, std::uint32_t way, Cycles &busy,
                 Cycle now);

    Params p;
    NuRapidTiming times;
    unsigned blockShift = 0;  //!< log2(block_bytes)
    TagArray tagArray;
    DataArray dataArray;
    MainMemory mem;
    Cycle portFree = 0;
    /** Regions = d-groups; total_nj is the pre-refactor accumulator. */
    EnergyBreakdown cacheEnergy{p.num_dgroups};
    std::uint64_t auditTick = 0;  //!< periodic-audit access counter

    StatGroup statGroup;
    /** Counters packed into two cache lines (hot-path updates stay in
     *  the first) so gang lanes stop dirtying 13 scattered lines. */
    struct alignas(64) Counters
    {
        Counter demandAccesses;
        Counter writebackAccesses;
        Counter hits;
        Counter misses;
        Counter tagProbes;
        Counter dgroupAccesses;  //!< every data-array read or write
        Counter portWaitCycles;
        Counter evictions;
        Counter dirtyEvictions;
        Counter promotions;
        Counter demotions;
        Counter blockMoves;
        Counter restrictionEvictions;
    };
    Counters cnt;
    Histogram regionHist;
};

} // namespace nurapid

#endif // NURAPID_NURAPID_NURAPID_CACHE_HH
