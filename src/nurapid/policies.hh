/**
 * @file
 * NuRAPID policy knobs (Sections 2.4.1 and 2.4.2 of the paper).
 */

#ifndef NURAPID_NURAPID_POLICIES_HH
#define NURAPID_NURAPID_POLICIES_HH

#include <cstdint>

namespace nurapid {

/**
 * What happens when a block is hit in a d-group other than the fastest.
 *
 * - DemotionOnly: nothing; blocks only move outward via demotion.
 * - NextFastest: promote one d-group closer (the paper's best policy).
 * - Fastest: promote straight to d-group 0.
 */
enum class PromotionPolicy : std::uint8_t { DemotionOnly, NextFastest,
                                            Fastest };

/**
 * Victim selection within a d-group for distance replacement.
 * Section 2.4.2: true LRU over thousands of frames is O(n^2) hardware;
 * Random is the paper's choice; TreePLRU is the usual realizable
 * approximation in between.
 */
enum class DistanceRepl : std::uint8_t { Random, LRU, TreePLRU };

constexpr const char *
promotionPolicyName(PromotionPolicy p)
{
    switch (p) {
      case PromotionPolicy::DemotionOnly: return "demotion-only";
      case PromotionPolicy::NextFastest: return "next-fastest";
      case PromotionPolicy::Fastest: return "fastest";
    }
    return "unknown";
}

constexpr const char *
distanceReplName(DistanceRepl d)
{
    switch (d) {
      case DistanceRepl::Random: return "random";
      case DistanceRepl::LRU: return "lru";
      case DistanceRepl::TreePLRU: return "tree-plru";
    }
    return "unknown";
}

} // namespace nurapid

#endif // NURAPID_NURAPID_POLICIES_HH
