#include "nurapid/nurapid_cache.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "sim/profile/profile.hh"

namespace nurapid {

NuRapidCache::NuRapidCache(const SramMacroModel &model, const Params &params)
    : p(params),
      times(makeNuRapidTiming(model, p.capacity_bytes, p.num_dgroups,
                              p.assoc, p.block_bytes)),
      tagArray(p.capacity_bytes, p.assoc, p.block_bytes,
               static_cast<std::uint32_t>(
                   p.capacity_bytes / p.num_dgroups / p.block_bytes - 1)),
      dataArray(p.num_dgroups,
                static_cast<std::uint32_t>(
                    p.capacity_bytes / p.num_dgroups / p.block_bytes),
                p.frame_restriction == 0
                    ? 1
                    : static_cast<std::uint32_t>(
                          p.capacity_bytes / p.num_dgroups / p.block_bytes /
                          p.frame_restriction),
                p.distance_repl, p.seed,
                static_cast<std::uint32_t>(
                    p.capacity_bytes / p.assoc / p.block_bytes)),
      mem(p.memory), statGroup(p.name), regionHist(p.num_dgroups)
{
    fatal_if(!isPowerOf2(p.block_bytes),
             "block size %u not a power of two", p.block_bytes);
    blockShift = floorLog2(p.block_bytes);
    fatal_if(p.frame_restriction != 0 &&
                 (p.capacity_bytes / p.num_dgroups / p.block_bytes) %
                         p.frame_restriction != 0,
             "frame restriction %u does not divide the d-group frame "
             "count", p.frame_restriction);

    statGroup.addCounter("demand_accesses", cnt.demandAccesses);
    statGroup.addCounter("writeback_accesses", cnt.writebackAccesses);
    statGroup.addCounter("hits", cnt.hits);
    statGroup.addCounter("misses", cnt.misses);
    statGroup.addCounter("evictions", cnt.evictions);
    statGroup.addCounter("dirty_evictions", cnt.dirtyEvictions);
    statGroup.addCounter("promotions", cnt.promotions);
    statGroup.addCounter("demotions", cnt.demotions);
    statGroup.addCounter("block_moves", cnt.blockMoves);
    statGroup.addCounter("dgroup_accesses", cnt.dgroupAccesses);
    statGroup.addCounter("tag_probes", cnt.tagProbes);
    statGroup.addCounter("restriction_evictions",
                         cnt.restrictionEvictions);
    statGroup.addCounter("port_wait_cycles", cnt.portWaitCycles);
}

void
NuRapidCache::moveBlock(std::uint32_t group, std::uint32_t frame,
                        std::uint32_t dest_group, std::uint32_t dest_frame)
{
    const DataArray::Frame src = dataArray.frame(group, frame);
    panic_if(!src.valid, "moving an invalid frame");
    const std::uint32_t set = src.set;
    const std::uint32_t way = src.way;

    dataArray.remove(group, frame);
    dataArray.place(dest_group, dest_frame, set, way);

    panic_if(!tagArray.isValid(set, way) ||
                 tagArray.groupOf(set, way) != group ||
                 tagArray.frameOf(set, way) != frame,
             "forward/reverse pointer mismatch during move");
    tagArray.setForward(set, way, static_cast<std::uint8_t>(dest_group),
                        dest_frame);

    ++cnt.blockMoves;
    cnt.dgroupAccesses += 2;  // read at source + write at destination
}

std::uint32_t
NuRapidCache::ensureFree(std::uint32_t group, std::uint32_t region,
                         Cycles &busy, Result &result, Cycle now)
{
    if (dataArray.hasFree(group, region))
        return dataArray.allocFrame(group, region);

    if (group + 1 == p.num_dgroups) {
        // No slower d-group to demote into. With unrestricted pointers
        // this is unreachable (a data-replacement eviction always frees
        // a frame before placement); with Section 2.4.3's restriction a
        // region can fill up, and the victim must leave the cache.
        panic_if(p.frame_restriction == 0,
                 "slowest d-group full despite unrestricted placement");
        const std::uint32_t f = dataArray.victimFrame(group, region);
        const DataArray::Frame fr = dataArray.frame(group, f);
        const bool victim_dirty = tagArray.isDirty(fr.set, fr.way);
        recordEviction(result, tagArray.blockAddr(fr.set, fr.way),
                       victim_dirty, now);
        if (victim_dirty)
            mem.write(p.block_bytes);
        tagArray.invalidateEntry(fr.set, fr.way);
        dataArray.remove(group, f);
        ++cnt.restrictionEvictions;
        ++cnt.evictions;
        return dataArray.allocFrame(group, region);
    }

    const std::uint32_t victim = dataArray.victimFrame(group, region);
    Addr victim_addr = 0;
    if (obsSink) [[unlikely]] {
        const DataArray::Frame vf = dataArray.frame(group, victim);
        victim_addr = tagArray.blockAddr(vf.set, vf.way);
    }
    const std::uint32_t dest =
        ensureFree(group + 1, region, busy, result, now);
    moveBlock(group, victim, group + 1, dest);
    if (obsSink) [[unlikely]]
        obsSink->demotion(now, victim_addr, group, group + 1);
    ++cnt.demotions;
    busy += times.swapBusy(group, group + 1);
    cacheEnergy.chargeSwap(times.swapEnergy(group, group + 1));
    return dataArray.allocFrame(group, region);
}

void
NuRapidCache::promote(std::uint32_t set, std::uint32_t way, Cycles &busy,
                      Cycle now)
{
    const std::uint32_t g = tagArray.groupOf(set, way);
    if (g == 0 || p.promotion == PromotionPolicy::DemotionOnly)
        return;

    const std::uint32_t target =
        p.promotion == PromotionPolicy::NextFastest ? g - 1 : 0;
    const Addr block_index =
        tagArray.blockAddr(set, way) >> blockShift;
    const std::uint32_t region = dataArray.regionOf(block_index);

    ++cnt.promotions;

    if (dataArray.hasFree(target, region)) {
        // Pure promotion into a free frame: one block move.
        const std::uint32_t dest = dataArray.allocFrame(target, region);
        moveBlock(g, tagArray.frameOf(set, way), target, dest);
        if (obsSink) [[unlikely]] {
            obsSink->promotion(now, tagArray.blockAddr(set, way), g,
                               target);
        }
        busy += times.swapBusy(g, target);
        cacheEnergy.chargeSwap(times.swapEnergy(g, target));
        return;
    }

    // Swap with a distance-replacement victim of the target d-group
    // (which may belong to any set): the victim demotes into the frame
    // our block vacates.
    const std::uint32_t victim = dataArray.victimFrame(target, region);
    const std::uint32_t our_frame = tagArray.frameOf(set, way);

    const DataArray::Frame vf = dataArray.frame(target, victim);
    panic_if(!tagArray.isValid(vf.set, vf.way) ||
                 tagArray.groupOf(vf.set, vf.way) != target ||
                 tagArray.frameOf(vf.set, vf.way) != victim,
             "victim pointer mismatch during promotion swap");

    dataArray.swapFrames(g, our_frame, target, victim);
    tagArray.setForward(set, way, static_cast<std::uint8_t>(target),
                        victim);
    tagArray.setForward(vf.set, vf.way, static_cast<std::uint8_t>(g),
                        our_frame);

    if (obsSink) [[unlikely]] {
        // One Swap event covers the atomic pair: the hit block moved
        // g -> target, the distance victim target -> g.
        obsSink->swap(now, tagArray.blockAddr(set, way), g, target);
    }

    ++cnt.demotions;
    cnt.blockMoves += 2;
    cnt.dgroupAccesses += 4;  // read + write at both d-groups
    busy += times.swapBusy(g, target);
    cacheEnergy.chargeSwap(2.0 * times.swapEnergy(g, target));
}

LowerMemory::Result
NuRapidCache::access(Addr addr, AccessType type, Cycle now)
{
    const Addr block = blockAlign(addr, p.block_bytes);
    const bool is_writeback = type == AccessType::Writeback;
    const bool is_write = type == AccessType::Write || is_writeback;

    if (is_writeback)
        ++cnt.writebackAccesses;
    else
        ++cnt.demandAccesses;

    // Single-port serialization: a new demand access waits for
    // outstanding swap/fill work (Section 2.3). L1 writebacks sit in a
    // writeback buffer and drain through idle port slots, so they
    // neither wait nor block demand traffic.
    Cycle start = now;
    if (p.single_port && !p.ideal_fastest && !is_writeback) {
        start = std::max(now, portFree);
        cnt.portWaitCycles += start - now;
    }
    Cycles busy = 0;  // port occupancy accrued by this access

    ++cnt.tagProbes;
    cacheEnergy.chargeTag(times.tag_read_nj);

    TagArray::Lookup look;
    {
        NURAPID_PROFILE_SCOPE(Probe);
        look = tagArray.lookup(block);
    }
    Result result;

    if (look.hit) {
        const std::uint32_t g = tagArray.groupOf(look.set, look.way);
        ++cnt.dgroupAccesses;
        if (!is_writeback) {
            ++cnt.hits;
            regionHist.sample(g);
        }

        tagArray.touch(look.set, look.way);
        dataArray.touch(g, tagArray.frameOf(look.set, look.way));
        if (is_write)
            tagArray.setDirty(look.set, look.way, true);

        cacheEnergy.chargeData(g, is_write ? times.dgroups[g].data_write_nj
                                           : times.dgroups[g].data_read_nj);

        const Cycles lat = p.ideal_fastest
            ? times.dgroups[0].total_latency
            : times.dgroups[g].total_latency;
        busy = times.port_cycle;

        // L1 writebacks update in place without migrating the block.
        if (!p.ideal_fastest && !is_writeback)
            promote(look.set, look.way, busy, now);

        result.hit = true;
        result.latency = is_writeback
            ? 0
            : static_cast<Cycles>(start - now) + lat;
        if (obsSink) [[unlikely]] {
            if (is_writeback)
                obsSink->writeback(now, block);
            else
                obsSink->hit(now, block, g, result.latency);
        }
    } else {
        if (!is_writeback)
            ++cnt.misses;
        if (obsSink && is_writeback) [[unlikely]]
            obsSink->writeback(now, block);

        // Data replacement: evict the set-LRU block from the cache,
        // freeing its data frame (Section 2.2, step 2).
        const std::uint32_t way = tagArray.victimWay(look.set);
        if (tagArray.isValid(look.set, way)) {
            ++cnt.evictions;
            const bool victim_dirty = tagArray.isDirty(look.set, way);
            recordEviction(result, tagArray.blockAddr(look.set, way),
                           victim_dirty, now);
            if (victim_dirty) {
                ++cnt.dirtyEvictions;
                mem.write(p.block_bytes);
            }
            const std::uint32_t vg = tagArray.groupOf(look.set, way);
            dataArray.remove(vg, tagArray.frameOf(look.set, way));
            ++cnt.dgroupAccesses;  // victim read-out
            cacheEnergy.chargeData(vg, times.dgroups[vg].data_read_nj);
        }

        // Distance placement: the new block always enters the fastest
        // d-group (Section 2.1), demoting as needed.
        const std::uint32_t region = dataArray.regionOf(
            block >> blockShift);
        const std::uint32_t f0 = ensureFree(0, region, busy, result, now);

        tagArray.fillEntry(look.set, way, tagArray.tagOf(block),
                           is_write, 0, f0);
        dataArray.place(0, f0, look.set, way);
        tagArray.touch(look.set, way);

        cacheEnergy.chargeTagData(times.tag_write_nj, 0,
                                  times.dgroups[0].data_write_nj);
        ++cnt.dgroupAccesses;  // fill write
        busy += times.port_cycle;

        const Cycles mem_lat = mem.read(p.block_bytes);
        result.hit = false;
        result.latency = is_writeback
            ? 0
            : static_cast<Cycles>(start - now) + times.tag_latency +
                mem_lat;
        if (obsSink && !is_writeback) [[unlikely]]
            obsSink->miss(now, block, result.latency);
    }

    if (p.single_port && !p.ideal_fastest && !is_writeback) {
        // Single-port serialization (Section 2.3): this access's work
        // must begin no earlier than the previous holder released the
        // port, and must occupy it for at least one port cycle.
        NURAPID_AUDIT_POINT(auditTick, {
            if (start < portFree) {
                audit::hookSink().violation(
                    {p.name, "port-double-booked",
                     strprintf("access started at %llu before port free "
                               "at %llu",
                               static_cast<unsigned long long>(start),
                               static_cast<unsigned long long>(portFree)),
                     AuditViolation::kNoIndex, AuditViolation::kNoIndex,
                     AuditViolation::kNoIndex, AuditViolation::kNoIndex});
            }
            if (busy < times.port_cycle) {
                audit::hookSink().violation(
                    {p.name, "port-occupancy-lost",
                     strprintf("access occupied the port for %llu < one "
                               "port cycle (%llu)",
                               static_cast<unsigned long long>(busy),
                               static_cast<unsigned long long>(
                                   times.port_cycle)),
                     AuditViolation::kNoIndex, AuditViolation::kNoIndex,
                     AuditViolation::kNoIndex, AuditViolation::kNoIndex});
            }
            audit(audit::hookSink());
        });
        portFree = start + busy;
    }

    return result;
}

EnergyNJ
NuRapidCache::dynamicEnergyNJ() const
{
    return cacheEnergy.total_nj + mem.dynamicEnergyNJ();
}

void
NuRapidCache::resetStats()
{
    statGroup.resetAll();
    mem.resetStats();
    regionHist.reset();
    cacheEnergy.reset();
}

void
NuRapidCache::regionOccupancy(std::vector<std::uint64_t> &out) const
{
    out.assign(p.num_dgroups, 0);
    for (std::uint32_t g = 0; g < dataArray.numGroups(); ++g) {
        for (std::uint32_t f = 0; f < dataArray.framesPerGroup(); ++f)
            out[g] += dataArray.frame(g, f).valid;
    }
}

void
NuRapidCache::forEachResident(const ResidentFn &fn) const
{
    for (std::uint32_t s = 0; s < tagArray.numSets(); ++s) {
        for (std::uint32_t w = 0; w < tagArray.assoc(); ++w) {
            const TagArray::Entry &e = tagArray.entry(s, w);
            if (e.valid)
                fn(tagArray.blockAddr(s, w), e.dirty);
        }
    }
}

bool
NuRapidCache::audit(AuditSink &sink) const
{
    bool clean = tagArray.audit(sink);
    if (!dataArray.audit(sink))
        clean = false;

    // Counts: the tag and data sides must hold the same block count.
    if (tagArray.validCount() != dataArray.validCount()) {
        clean = false;
        sink.violation({p.name, "count-mismatch",
                        strprintf("%llu valid tags vs %llu valid frames",
                                  static_cast<unsigned long long>(
                                      tagArray.validCount()),
                                  static_cast<unsigned long long>(
                                      dataArray.validCount())),
                        AuditViolation::kNoIndex, AuditViolation::kNoIndex,
                        AuditViolation::kNoIndex,
                        AuditViolation::kNoIndex});
    }

    // Forward direction: every valid tag entry's (group, frame) pointer
    // must land on a valid frame whose reverse pointer names it, in the
    // region its address hashes to (Section 2.4.3).
    for (std::uint32_t s = 0; s < tagArray.numSets(); ++s) {
        for (std::uint32_t w = 0; w < tagArray.assoc(); ++w) {
            const TagArray::Entry &e = tagArray.entry(s, w);
            if (!e.valid)
                continue;
            if (e.group >= dataArray.numGroups() ||
                e.frame >= dataArray.framesPerGroup()) {
                clean = false;
                sink.violation({p.name, "forward-pointer-range",
                                strprintf("points at (%u, %u), array is "
                                          "%u x %u", e.group, e.frame,
                                          dataArray.numGroups(),
                                          dataArray.framesPerGroup()),
                                s, w, e.group, e.frame});
                continue;
            }
            const DataArray::Frame &f = dataArray.frame(e.group, e.frame);
            if (!f.valid || f.set != s || f.way != w) {
                clean = false;
                sink.violation({p.name, "forward-reverse-mismatch",
                                f.valid
                                    ? strprintf("frame points back at "
                                                "(%u, %u)", f.set,
                                                unsigned{f.way})
                                    : std::string("frame is invalid"),
                                s, w, e.group, e.frame});
            }
            if (p.frame_restriction != 0) {
                const Addr bi = tagArray.blockAddr(s, w) >> blockShift;
                if (dataArray.regionOfFrame(e.frame) !=
                        dataArray.regionOf(bi)) {
                    clean = false;
                    sink.violation({p.name, "region-restriction",
                                    strprintf("block of region %u placed "
                                              "in region %u",
                                              dataArray.regionOf(bi),
                                              dataArray.regionOfFrame(
                                                  e.frame)),
                                    s, w, e.group, e.frame});
                }
            }
        }
    }

    // Reverse direction: every valid frame's (set, way) pointer must
    // name a valid tag entry whose forward pointer names this frame.
    for (std::uint32_t g = 0; g < dataArray.numGroups(); ++g) {
        for (std::uint32_t f = 0; f < dataArray.framesPerGroup(); ++f) {
            const DataArray::Frame &fr = dataArray.frame(g, f);
            if (!fr.valid)
                continue;
            if (fr.set >= tagArray.numSets() ||
                fr.way >= tagArray.assoc()) {
                clean = false;
                sink.violation({p.name, "reverse-pointer-range",
                                strprintf("points at (%u, %u), tag array "
                                          "is %u x %u", fr.set,
                                          unsigned{fr.way},
                                          tagArray.numSets(),
                                          tagArray.assoc()),
                                AuditViolation::kNoIndex,
                                AuditViolation::kNoIndex, g, f});
                continue;
            }
            const TagArray::Entry &e = tagArray.entry(fr.set, fr.way);
            if (!e.valid || e.group != g || e.frame != f) {
                clean = false;
                sink.violation({p.name, "reverse-forward-mismatch",
                                e.valid
                                    ? strprintf("entry points at "
                                                "(%u, %u)",
                                                unsigned{e.group},
                                                e.frame)
                                    : std::string("entry is invalid"),
                                fr.set, fr.way, g, f});
            }
        }
    }

    return clean;
}

bool
NuRapidCache::checkInvariants() const
{
    CountingAuditSink sink;
    return audit(sink);
}

std::uint32_t
NuRapidCache::blocksOfSetInGroup(std::uint32_t set,
                                 std::uint32_t group) const
{
    std::uint32_t n = 0;
    for (std::uint32_t w = 0; w < tagArray.assoc(); ++w) {
        const TagArray::Entry &e = tagArray.entry(set, w);
        if (e.valid && e.group == group)
            ++n;
    }
    return n;
}

} // namespace nurapid
