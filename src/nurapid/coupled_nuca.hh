/**
 * @file
 * The set-associative-placement non-uniform cache of Figure 4 ("a" bars).
 *
 * Same d-group geometry as NuRAPID, but tag and data placement stay
 * coupled: with an 8-way cache over 4 d-groups, exactly two specific
 * ways of every set live in each d-group. To isolate the placement
 * effect, the paper gives this cache NuRAPID's *initial placement in
 * the fastest d-group* and the *next-fastest promotion* policy, with
 * bubble-style swaps confined to the set (Section 5.2.1).
 */

#ifndef NURAPID_NURAPID_COUPLED_NUCA_HH
#define NURAPID_NURAPID_COUPLED_NUCA_HH

#include <string>
#include <vector>

#include "mem/lower_memory.hh"
#include "mem/main_memory.hh"
#include "mem/rank_plane.hh"
#include "nurapid/policies.hh"
#include "timing/latency_tables.hh"

namespace nurapid {

class CoupledNucaCache final : public LowerMemory
{
  public:
    struct Params
    {
        std::string name = "sa-placement";
        std::uint64_t capacity_bytes = 8ull << 20;
        std::uint32_t assoc = 8;
        std::uint32_t block_bytes = 128;
        std::uint32_t num_dgroups = 4;
        PromotionPolicy promotion = PromotionPolicy::NextFastest;
        bool single_port = true;
        MainMemory::Params memory{};
    };

    CoupledNucaCache(const SramMacroModel &model, const Params &params);

    Result access(Addr addr, AccessType type, Cycle now) override;

    EnergyNJ dynamicEnergyNJ() const override;
    EnergyNJ cacheEnergyNJ() const override { return cacheEnergy.total_nj; }
    const EnergyBreakdown *energyBreakdown() const override
    {
        return &cacheEnergy;
    }
    const std::string &name() const override { return p.name; }
    StatGroup &stats() override { return statGroup; }
    const StatGroup &stats() const override { return statGroup; }
    const Histogram &regionHits() const override { return regionHist; }
    void resetStats() override;
    void forEachResident(const ResidentFn &fn) const override;

    /** Valid-block count per latency region. */
    void regionOccupancy(std::vector<std::uint64_t> &out) const override;
    bool audit(AuditSink &sink) const override;
    std::size_t hotStateBytes() const override;

    /** Hints the upcoming access's hot plane lines into cache: tag
     *  row, valid bitmap word, rank word. Pure prefetch (hides the
     *  virtual no-op of LowerMemory on devirtualized paths). */
    void
    prefetchHotLines(Addr addr) const
    {
        const std::uint32_t set = static_cast<std::uint32_t>(
            (blockAlign(addr, p.block_bytes) >> blockShift) & (sets - 1));
        __builtin_prefetch(&tagPlane[rowBase(set)], 0, 3);
        __builtin_prefetch(&validBits[set], 0, 3);
        __builtin_prefetch(ranks.setWords(set), 1, 3);
    }

    MainMemory &memory() { return mem; }
    const NuRapidTiming &timing() const { return times; }

  private:
    std::uint32_t groupOfWay(std::uint32_t way) const;
    std::uint32_t lruWayInGroup(std::uint32_t set,
                                std::uint32_t group) const;
    void touch(std::uint32_t set, std::uint32_t way);

    /** First word of @p set's row in the way-indexed planes. */
    std::size_t
    rowBase(std::uint32_t set) const
    {
        return std::size_t{set} << strideShift;
    }

    Params p;
    NuRapidTiming times;
    std::uint32_t sets;
    std::uint32_t waysPerGroup;
    unsigned blockShift = 0;  //!< log2(block_bytes)
    unsigned tagShift = 0;    //!< log2(block_bytes * sets)
    std::uint32_t wayStride = 1;  //!< pow2 plane row width >= assoc
    unsigned strideShift = 0;     //!< log2(wayStride)
    std::uint64_t waysMask = 0;   //!< low assoc bits set

    // Structure-of-arrays tag state: [set << strideShift | way] planes
    // plus one valid/dirty bitmap word per set. Recency is a packed
    // exact-LRU rank plane (mem/rank_plane.hh): one word per 8-way
    // set instead of eight 64-bit stamps.
    std::vector<std::uint64_t> tagPlane;
    std::vector<std::uint64_t> validBits;  //!< [set]
    std::vector<std::uint64_t> dirtyBits;  //!< [set]
    RankPlane ranks;
    MainMemory mem;
    Cycle portFree = 0;
    /** Regions = d-groups; total_nj is the pre-refactor accumulator. */
    EnergyBreakdown cacheEnergy{p.num_dgroups};
    std::uint64_t auditTick = 0;  //!< periodic-audit access counter

    StatGroup statGroup;
    /** Counters packed into one cache-line-aligned block so gang lanes
     *  stop dirtying 9 scattered counter lines. */
    struct alignas(64) Counters
    {
        Counter demandAccesses;
        Counter writebackAccesses;
        Counter hits;
        Counter misses;
        Counter dgroupAccesses;
        Counter evictions;
        Counter promotions;
        Counter demotions;
        Counter blockMoves;
    };
    Counters cnt;
    Histogram regionHist;
};

} // namespace nurapid

#endif // NURAPID_NURAPID_COUPLED_NUCA_HH
