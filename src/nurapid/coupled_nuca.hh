/**
 * @file
 * The set-associative-placement non-uniform cache of Figure 4 ("a" bars).
 *
 * Same d-group geometry as NuRAPID, but tag and data placement stay
 * coupled: with an 8-way cache over 4 d-groups, exactly two specific
 * ways of every set live in each d-group. To isolate the placement
 * effect, the paper gives this cache NuRAPID's *initial placement in
 * the fastest d-group* and the *next-fastest promotion* policy, with
 * bubble-style swaps confined to the set (Section 5.2.1).
 */

#ifndef NURAPID_NURAPID_COUPLED_NUCA_HH
#define NURAPID_NURAPID_COUPLED_NUCA_HH

#include <string>
#include <vector>

#include "mem/lower_memory.hh"
#include "mem/main_memory.hh"
#include "nurapid/policies.hh"
#include "timing/latency_tables.hh"

namespace nurapid {

class CoupledNucaCache final : public LowerMemory
{
  public:
    struct Params
    {
        std::string name = "sa-placement";
        std::uint64_t capacity_bytes = 8ull << 20;
        std::uint32_t assoc = 8;
        std::uint32_t block_bytes = 128;
        std::uint32_t num_dgroups = 4;
        PromotionPolicy promotion = PromotionPolicy::NextFastest;
        bool single_port = true;
        MainMemory::Params memory{};
    };

    CoupledNucaCache(const SramMacroModel &model, const Params &params);

    Result access(Addr addr, AccessType type, Cycle now) override;

    EnergyNJ dynamicEnergyNJ() const override;
    EnergyNJ cacheEnergyNJ() const override { return cacheEnergy; }
    const std::string &name() const override { return p.name; }
    StatGroup &stats() override { return statGroup; }
    const StatGroup &stats() const override { return statGroup; }
    const Histogram &regionHits() const override { return regionHist; }
    void resetStats() override;
    void forEachResident(const ResidentFn &fn) const override;

    /** Valid-block count per latency region. */
    void regionOccupancy(std::vector<std::uint64_t> &out) const override;
    bool audit(AuditSink &sink) const override;

    MainMemory &memory() { return mem; }
    const NuRapidTiming &timing() const { return times; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::uint32_t groupOfWay(std::uint32_t way) const;
    std::uint32_t lruWayInGroup(std::uint32_t set,
                                std::uint32_t group) const;
    Line &line(std::uint32_t set, std::uint32_t way);
    void touch(std::uint32_t set, std::uint32_t way);

    Params p;
    NuRapidTiming times;
    std::uint32_t sets;
    std::uint32_t waysPerGroup;
    unsigned blockShift = 0;  //!< log2(block_bytes)
    unsigned tagShift = 0;    //!< log2(block_bytes * sets)
    std::vector<Line> lines;
    std::vector<std::uint64_t> stamps;
    std::uint64_t clock = 0;
    MainMemory mem;
    Cycle portFree = 0;
    EnergyNJ cacheEnergy = 0;
    std::uint64_t auditTick = 0;  //!< periodic-audit access counter

    StatGroup statGroup;
    Counter statDemandAccesses;
    Counter statWritebackAccesses;
    Counter statHits;
    Counter statMisses;
    Counter statEvictions;
    Counter statPromotions;
    Counter statDemotions;
    Counter statBlockMoves;
    Counter statDGroupAccesses;
    Histogram regionHist;
};

} // namespace nurapid

#endif // NURAPID_NURAPID_COUPLED_NUCA_HH
