/**
 * @file
 * NuRAPID's centralized set-associative tag array.
 *
 * Tag placement stays conventionally set-associative (an n-way cache
 * holds at most n blocks of a set), but every entry carries a *forward
 * pointer* (d-group, frame) to an arbitrary data frame — the decoupling
 * that enables distance associativity (Section 2.1, Figure 1).
 *
 * Set recency is tracked with an intrusive per-set chain (MRU head,
 * LRU tail), matching DataArray's group chains: touch() is a constant-
 * time unlink/relink instead of a stamp write, and victimWay() reads
 * the tail instead of scanning stamps. Equivalent to stamp LRU because
 * the tail is only consulted when every way is valid and touch order
 * is a strict total order.
 */

#ifndef NURAPID_NURAPID_TAG_ARRAY_HH
#define NURAPID_NURAPID_TAG_ARRAY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/audit/audit.hh"

namespace nurapid {

class TagArray
{
  public:
    struct Entry
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint8_t group = 0;    //!< forward pointer: d-group
        std::uint32_t frame = 0;   //!< forward pointer: frame in group
    };

    struct Lookup
    {
        bool hit = false;
        std::uint32_t set = 0;
        std::uint32_t way = 0;
    };

    TagArray(std::uint64_t capacity_bytes, std::uint32_t assoc,
             std::uint32_t block_bytes);

    /** Probes the array; also fills set/way of the addressed set. */
    Lookup
    lookup(Addr addr) const
    {
        Lookup result;
        result.set = setOf(addr);
        const Addr tag = tagOf(addr);
        for (std::uint32_t w = 0; w < ways; ++w) {
            const Entry &e = entries[std::size_t{result.set} * ways + w];
            if (e.valid && e.tag == tag) {
                result.hit = true;
                result.way = w;
                return result;
            }
        }
        return result;
    }

    Entry &entry(std::uint32_t set, std::uint32_t way);
    const Entry &entry(std::uint32_t set, std::uint32_t way) const;

    /** Records a use for set-LRU data replacement. */
    void
    touch(std::uint32_t set, std::uint32_t way)
    {
        if (head[set] == way)
            return;
        const std::size_t base = std::size_t{set} * ways;
        Node &n = chain[base + way];
        chain[base + n.prev].next = n.next;
        if (tail[set] == way)
            tail[set] = n.prev;
        else
            chain[base + n.next].prev = n.prev;
        n.next = head[set];
        chain[base + head[set]].prev = way;
        head[set] = way;
    }

    /** An invalid way of @p set if one exists, else the set-LRU way. */
    std::uint32_t
    victimWay(std::uint32_t set) const
    {
        const std::size_t base = std::size_t{set} * ways;
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (!entries[base + w].valid)
                return w;
        }
        return tail[set];
    }

    /** Reconstructs the block address stored at (set, way). */
    Addr blockAddr(std::uint32_t set, std::uint32_t way) const;

    /** Block size and set count are powers of two: index math is
     *  shifts, not per-access divisions. */
    std::uint32_t
    setOf(Addr addr) const
    {
        return static_cast<std::uint32_t>(
            (addr >> blockShift) & (sets - 1));
    }

    Addr tagOf(Addr addr) const { return addr >> tagShift; }

    std::uint32_t numSets() const { return sets; }
    std::uint32_t assoc() const { return ways; }
    std::uint32_t blockBytes() const { return blockSize; }

    /** Count of valid entries (for invariant checks in tests). */
    std::uint64_t validCount() const;

    /**
     * Audits tag-side invariants: no set holds two valid entries with
     * the same tag (set-associative placement, Section 2.1), and each
     * set's recency chain visits every way exactly once. Violations
     * carry (set, way) context; returns true if clean.
     */
    bool audit(AuditSink &sink) const;

  private:
    /** Intrusive recency-chain node; indices are ways in one set. */
    struct Node
    {
        std::uint32_t prev = 0;
        std::uint32_t next = 0;
    };

    std::uint32_t sets;
    std::uint32_t ways;
    std::uint32_t blockSize;
    unsigned blockShift = 0;  //!< log2(blockSize)
    unsigned tagShift = 0;    //!< log2(blockSize * sets)
    std::vector<Entry> entries;       //!< [set * ways + way]
    std::vector<Node> chain;          //!< [set * ways + way]
    std::vector<std::uint32_t> head;  //!< MRU way per set
    std::vector<std::uint32_t> tail;  //!< LRU way per set
};

} // namespace nurapid

#endif // NURAPID_NURAPID_TAG_ARRAY_HH
