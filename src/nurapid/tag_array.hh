/**
 * @file
 * NuRAPID's centralized set-associative tag array.
 *
 * Tag placement stays conventionally set-associative (an n-way cache
 * holds at most n blocks of a set), but every entry carries a *forward
 * pointer* (d-group, frame) to an arbitrary data frame — the decoupling
 * that enables distance associativity (Section 2.1, Figure 1).
 *
 * State is structure-of-arrays: a contiguous std::uint64_t tag plane
 * (rows padded to a power-of-two stride), per-set valid/dirty bitmap
 * words, and parallel forward-pointer planes (byte-wide d-group, and
 * a frame plane narrowed to the width the geometry needs —
 * mem/narrow_plane.hh — when the caller supplies the frame bound).
 * The probe is the vectorized kernel of mem/tag_probe.hh over one
 * dense row. Associativity is capped at 64 so one bitmap word covers
 * a set. Entries are read and written through by-value Entry views
 * (entry()/setEntry()) so the audit hooks and tests keep checking the
 * same facts against the packed planes.
 *
 * Set recency is a packed exact-LRU rank plane (mem/rank_plane.hh):
 * per set, a permutation of way ranks in 4- or 8-bit fields. touch()
 * is one or a few word-sized SWAR updates instead of a chain
 * unlink/relink, and victimWay() scans ranks. Equivalent to chain or
 * stamp LRU because ranks are always distinct — no ties for an
 * encoding to break differently.
 */

#ifndef NURAPID_NURAPID_TAG_ARRAY_HH
#define NURAPID_NURAPID_TAG_ARRAY_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "mem/narrow_plane.hh"
#include "mem/rank_plane.hh"
#include "mem/tag_probe.hh"
#include "sim/audit/audit.hh"
#include "sim/profile/profile.hh"

namespace nurapid {

class TagArray
{
  public:
    /** By-value view of one tag entry, assembled from the planes. */
    struct Entry
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint8_t group = 0;    //!< forward pointer: d-group
        std::uint32_t frame = 0;   //!< forward pointer: frame in group
    };

    struct Lookup
    {
        bool hit = false;
        std::uint32_t set = 0;
        std::uint32_t way = 0;
    };

    /** @p max_frame is the largest frame index a forward pointer can
     *  hold (0 = unknown, keeps the full 4-byte frame plane). */
    TagArray(std::uint64_t capacity_bytes, std::uint32_t assoc,
             std::uint32_t block_bytes, std::uint32_t max_frame = 0);

    /** Probes the array; also fills set/way of the addressed set. */
    Lookup
    lookup(Addr addr) const
    {
        Lookup result;
        result.set = setOf(addr);
        const std::uint64_t match =
            probeMatch(&tagPlane[rowOf(result.set)], wayStride,
                       tagOf(addr)) &
            validBits[result.set];
        if (match) {
            result.hit = true;
            result.way =
                static_cast<std::uint32_t>(std::countr_zero(match));
        }
        return result;
    }

    /** Reads entry (set, way) as a value (range-checked). */
    Entry entry(std::uint32_t set, std::uint32_t way) const;

    /** Overwrites every field of entry (set, way) (range-checked). */
    void setEntry(std::uint32_t set, std::uint32_t way, const Entry &e);

    // Unchecked single-field accessors for the per-reference paths.
    bool
    isValid(std::uint32_t set, std::uint32_t way) const
    {
        return (validBits[set] >> way) & 1;
    }

    bool
    isDirty(std::uint32_t set, std::uint32_t way) const
    {
        return (dirtyBits[set] >> way) & 1;
    }

    std::uint8_t
    groupOf(std::uint32_t set, std::uint32_t way) const
    {
        return groupPlane[rowOf(set) + way];
    }

    std::uint32_t
    frameOf(std::uint32_t set, std::uint32_t way) const
    {
        return framePlane.get(rowOf(set) + way);
    }

    void
    setDirty(std::uint32_t set, std::uint32_t way, bool dirty)
    {
        const std::uint64_t bit = std::uint64_t{1} << way;
        if (dirty)
            dirtyBits[set] |= bit;
        else
            dirtyBits[set] &= ~bit;
    }

    /** Redirects the forward pointer of (set, way). */
    void
    setForward(std::uint32_t set, std::uint32_t way,
               std::uint8_t group, std::uint32_t frame)
    {
        groupPlane[rowOf(set) + way] = group;
        framePlane.set(rowOf(set) + way, frame);
    }

    /** Fills (set, way): tag + forward pointer, valid, dirty as given. */
    void
    fillEntry(std::uint32_t set, std::uint32_t way, Addr tag, bool dirty,
              std::uint8_t group, std::uint32_t frame)
    {
        const std::size_t row = rowOf(set);
        const std::uint64_t bit = std::uint64_t{1} << way;
        tagPlane[row + way] = tag;
        validBits[set] |= bit;
        if (dirty)
            dirtyBits[set] |= bit;
        else
            dirtyBits[set] &= ~bit;
        groupPlane[row + way] = group;
        framePlane.set(row + way, frame);
    }

    /** Clears valid and dirty of (set, way); tag/pointer go stale. */
    void
    invalidateEntry(std::uint32_t set, std::uint32_t way)
    {
        const std::uint64_t bit = std::uint64_t{1} << way;
        validBits[set] &= ~bit;
        dirtyBits[set] &= ~bit;
    }

    /** Records a use for set-LRU data replacement. */
    void
    touch(std::uint32_t set, std::uint32_t way)
    {
        NURAPID_PROFILE_SCOPE(Recency);
        ranks.touch(set, way);
    }

    /** An invalid way of @p set if one exists, else the set-LRU way. */
    std::uint32_t
    victimWay(std::uint32_t set) const
    {
        const std::uint64_t invalid = ~validBits[set] & waysMask;
        if (invalid)
            return static_cast<std::uint32_t>(std::countr_zero(invalid));
        NURAPID_PROFILE_SCOPE(Recency);
        return ranks.lruWay(set);
    }

    /** Reconstructs the block address stored at (set, way). */
    Addr blockAddr(std::uint32_t set, std::uint32_t way) const;

    /** Block size and set count are powers of two: index math is
     *  shifts, not per-access divisions. */
    std::uint32_t
    setOf(Addr addr) const
    {
        return static_cast<std::uint32_t>(
            (addr >> blockShift) & (sets - 1));
    }

    Addr tagOf(Addr addr) const { return addr >> tagShift; }

    std::uint32_t numSets() const { return sets; }
    std::uint32_t assoc() const { return ways; }
    std::uint32_t blockBytes() const { return blockSize; }

    /** Count of valid entries (for invariant checks in tests). */
    std::uint64_t validCount() const;

    /**
     * Audits tag-side invariants: no set holds two valid entries with
     * the same tag (set-associative placement, Section 2.1), and each
     * set's recency chain visits every way exactly once. Violations
     * carry (set, way) context; returns true if clean. Allocation-free.
     */
    bool audit(AuditSink &sink) const;

    /** Hints the upcoming access's hot plane lines into cache: tag
     *  row, valid bitmap word, rank word. Pure prefetch. */
    void
    prefetchHotLines(Addr addr) const
    {
        const std::uint32_t set = setOf(addr);
        __builtin_prefetch(&tagPlane[rowOf(set)], 0, 3);
        __builtin_prefetch(&validBits[set], 0, 3);
        __builtin_prefetch(ranks.setWords(set), 1, 3);
    }

    /** Bytes of per-reference hot state (planes + bitmaps). */
    std::size_t
    hotBytes() const
    {
        return (tagPlane.size() + validBits.size() + dirtyBits.size()) *
                   sizeof(std::uint64_t) +
               groupPlane.size() + framePlane.bytes() + ranks.bytes();
    }

  private:
    /** First word of @p set's row in the way-indexed planes. */
    std::size_t
    rowOf(std::uint32_t set) const
    {
        return std::size_t{set} << strideShift;
    }

    std::uint32_t sets;
    std::uint32_t ways;
    std::uint32_t blockSize;
    unsigned blockShift = 0;  //!< log2(blockSize)
    unsigned tagShift = 0;    //!< log2(blockSize * sets)
    std::uint32_t wayStride = 1;  //!< pow2 plane row width >= ways
    unsigned strideShift = 0;     //!< log2(wayStride)
    std::uint64_t waysMask = 0;   //!< low `ways` bits set

    // Structure-of-arrays planes: [set << strideShift | way], plus one
    // bitmap word per set.
    std::vector<std::uint64_t> tagPlane;
    std::vector<std::uint64_t> validBits;   //!< [set]
    std::vector<std::uint64_t> dirtyBits;   //!< [set]
    std::vector<std::uint8_t> groupPlane;   //!< forward ptr: d-group
    NarrowPlane framePlane;                 //!< forward ptr: frame

    // Packed exact-LRU recency ranks (mem/rank_plane.hh).
    RankPlane ranks;
};

} // namespace nurapid

#endif // NURAPID_NURAPID_TAG_ARRAY_HH
