/**
 * @file
 * NuRAPID's centralized set-associative tag array.
 *
 * Tag placement stays conventionally set-associative (an n-way cache
 * holds at most n blocks of a set), but every entry carries a *forward
 * pointer* (d-group, frame) to an arbitrary data frame — the decoupling
 * that enables distance associativity (Section 2.1, Figure 1).
 */

#ifndef NURAPID_NURAPID_TAG_ARRAY_HH
#define NURAPID_NURAPID_TAG_ARRAY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/audit/audit.hh"

namespace nurapid {

class TagArray
{
  public:
    struct Entry
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint8_t group = 0;    //!< forward pointer: d-group
        std::uint32_t frame = 0;   //!< forward pointer: frame in group
    };

    struct Lookup
    {
        bool hit = false;
        std::uint32_t set = 0;
        std::uint32_t way = 0;
    };

    TagArray(std::uint64_t capacity_bytes, std::uint32_t assoc,
             std::uint32_t block_bytes);

    /** Probes the array; also fills set/way of the addressed set. */
    Lookup lookup(Addr addr) const;

    Entry &entry(std::uint32_t set, std::uint32_t way);
    const Entry &entry(std::uint32_t set, std::uint32_t way) const;

    /** Records a use for set-LRU data replacement. */
    void touch(std::uint32_t set, std::uint32_t way);

    /** An invalid way of @p set if one exists, else the set-LRU way. */
    std::uint32_t victimWay(std::uint32_t set) const;

    /** Reconstructs the block address stored at (set, way). */
    Addr blockAddr(std::uint32_t set, std::uint32_t way) const;

    std::uint32_t setOf(Addr addr) const;
    Addr tagOf(Addr addr) const;

    std::uint32_t numSets() const { return sets; }
    std::uint32_t assoc() const { return ways; }
    std::uint32_t blockBytes() const { return blockSize; }

    /** Count of valid entries (for invariant checks in tests). */
    std::uint64_t validCount() const;

    /**
     * Audits tag-side invariants: no set holds two valid entries with
     * the same tag (set-associative placement, Section 2.1), and no
     * LRU stamp runs ahead of the array clock. Violations carry (set,
     * way) context; returns true if clean.
     */
    bool audit(AuditSink &sink) const;

  private:
    std::uint32_t sets;
    std::uint32_t ways;
    std::uint32_t blockSize;
    std::vector<Entry> entries;       //!< [set * ways + way]
    std::vector<std::uint64_t> stamps;
    std::uint64_t clock = 0;
};

} // namespace nurapid

#endif // NURAPID_NURAPID_TAG_ARRAY_HH
