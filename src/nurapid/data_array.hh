/**
 * @file
 * NuRAPID's distance-associative data arrays.
 *
 * The data side is organized as a few large d-groups, each a pool of
 * block frames. Any number of blocks from one set may sit in one
 * d-group. Every frame carries a *reverse pointer* (set, way) back to
 * its tag entry so demotions can update forward pointers (Section 2.2,
 * Figure 2).
 *
 * Frame state is structure-of-arrays: parallel reverse-pointer planes
 * (set indices and LRU prev/next pointers in mem/narrow_plane.hh
 * planes sized to the geometry the constructor is told about —
 * 2-byte elements for the paper's 16 Ki-frame d-groups — and byte
 * ways), plus packed valid/linked bitmaps (one bit per frame) —
 * replacing the per-Frame and per-Node records so a touch or swap
 * writes a few dense words. Frames are read through a by-value Frame
 * view (frame()); tests that need to corrupt state write raw fields
 * back with setFrame().
 *
 * Section 2.4.3's pointer-restriction option is modeled by statically
 * partitioning each d-group's frames into *regions*; a block may only
 * occupy frames of the region its address hashes to, which shortens the
 * forward/reverse pointers. The unrestricted cache is the special case
 * of a single region.
 */

#ifndef NURAPID_NURAPID_DATA_ARRAY_HH
#define NURAPID_NURAPID_DATA_ARRAY_HH

#include <cstdint>
#include <vector>

#include <memory>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "mem/narrow_plane.hh"
#include "mem/replacement.hh"
#include "nurapid/policies.hh"
#include "sim/audit/audit.hh"
#include "sim/profile/profile.hh"

namespace nurapid {

class DataArray
{
  public:
    /** By-value view of one frame, assembled from the planes. */
    struct Frame
    {
        std::uint32_t set = 0;   //!< reverse pointer: tag set
        std::uint16_t way = 0;   //!< reverse pointer: tag way
        bool valid = false;
    };

    static constexpr std::uint32_t kNoFrame = 0xffffffff;
    static_assert(kNoFrame == NarrowPlane::kNone,
                  "narrow pointer planes reuse the kNoFrame sentinel");

    /** @p num_sets bounds the reverse set pointers (0 = unknown,
     *  keeps the full 4-byte reverse-set plane). */
    DataArray(std::uint32_t num_groups, std::uint32_t frames_per_group,
              std::uint32_t num_regions, DistanceRepl repl,
              std::uint64_t seed, std::uint32_t num_sets = 0);

    /** Region a block address maps to (hash of its block index). */
    std::uint32_t regionOf(Addr block_index) const;

    /** True if (group, region) has a free frame. */
    bool hasFree(std::uint32_t group, std::uint32_t region) const;

    /** Pops a free frame of (group, region); panics if none. */
    std::uint32_t allocFrame(std::uint32_t group, std::uint32_t region);

    /**
     * Nominates a distance-replacement victim among the valid frames of
     * (group, region): the region-LRU frame under DistanceRepl::LRU, a
     * uniformly random frame under DistanceRepl::Random. Must only be
     * called when the region has no free frame.
     */
    std::uint32_t victimFrame(std::uint32_t group, std::uint32_t region);

    /** Fills @p frame with the block of tag entry (set, way). */
    void place(std::uint32_t group, std::uint32_t frame, std::uint32_t set,
               std::uint32_t way);

    /** Invalidates @p frame and returns it to the free pool. */
    void remove(std::uint32_t group, std::uint32_t frame);

    /**
     * Exchanges the blocks held by two (valid) frames — the data-array
     * half of a promotion/demotion swap. Both blocks become MRU in
     * their new d-groups. Free lists are untouched.
     */
    void swapFrames(std::uint32_t group_a, std::uint32_t frame_a,
                    std::uint32_t group_b, std::uint32_t frame_b);

    /**
     * Records a use of @p f for region-LRU ordering. Inline (with the
     * chain splice it performs): this runs on every L2 hit.
     */
    void
    touch(std::uint32_t group, std::uint32_t f)
    {
        NURAPID_PROFILE_SCOPE(Recency);
        panic_if(!validBit(group, f), "touching invalid frame");
        unlink(group, f);
        linkFront(group, f);
        if (replPolicy == DistanceRepl::TreePLRU)
            plru[group]->touch(regionOfFrame(f), f % framesPerRegion);
    }

    /** Reads frame (group, f) as a value (range-checked). */
    Frame
    frame(std::uint32_t group, std::uint32_t f) const
    {
        panic_if(group >= nGroups || f >= nFrames,
                 "frame (%u, %u) out of range", group, f);
        const std::size_t idx = frameIdx(group, f);
        Frame fr;
        fr.set = revSet.get(idx);
        fr.way = revWay[idx];
        fr.valid = validBit(group, f);
        return fr;
    }

    /**
     * Raw-writes the fields of frame (group, f) without touching the
     * LRU chains or free lists — the moral equivalent of poking the
     * old Frame record's fields directly. For tests (state corruption
     * for audit coverage) and trusted plumbing only.
     */
    void
    setFrame(std::uint32_t group, std::uint32_t f, const Frame &fr)
    {
        panic_if(group >= nGroups || f >= nFrames,
                 "frame (%u, %u) out of range", group, f);
        const std::size_t idx = frameIdx(group, f);
        revSet.set(idx, fr.set);
        revWay[idx] = static_cast<std::uint8_t>(fr.way);
        const std::uint64_t bit = std::uint64_t{1} << (idx & 63);
        if (fr.valid)
            validWords[idx >> 6] |= bit;
        else
            validWords[idx >> 6] &= ~bit;
    }

    /** Unchecked reverse-pointer reads for the per-reference paths. */
    std::uint32_t
    revSetOf(std::uint32_t group, std::uint32_t f) const
    {
        return revSet.get(frameIdx(group, f));
    }

    std::uint16_t
    revWayOf(std::uint32_t group, std::uint32_t f) const
    {
        return revWay[frameIdx(group, f)];
    }

    std::uint32_t numGroups() const { return nGroups; }
    std::uint32_t framesPerGroup() const { return nFrames; }
    std::uint32_t numRegions() const { return nRegions; }

    /** Region of a frame index (table lookup — frames are touched too
     *  often for a divide by framesPerRegion here). */
    std::uint32_t regionOfFrame(std::uint32_t f) const
    {
        return frameRegion.get(f);
    }

    /** Bytes of per-reference hot state (pointer planes + bitmaps). */
    std::size_t
    hotBytes() const
    {
        return revSet.bytes() + revWay.size() +
               (validWords.size() + linkedWords.size()) *
                   sizeof(std::uint64_t) +
               prevPlane.bytes() + nextPlane.bytes() +
               frameRegion.bytes();
    }

    /** Valid-frame count (for invariant checks in tests). */
    std::uint64_t validCount() const;

    /**
     * Audits data-side invariants for every (d-group, region): the LRU
     * chain links exactly the valid frames of the region (acyclic, with
     * consistent prev/next and head/tail), the free list holds exactly
     * the invalid frames (no duplicates, no valid frames), and both
     * partitions sum to the region's frame count. Violations carry
     * (group, frame) context; returns true if clean. Allocation-free
     * after the calling thread's first audit (scratch bitmaps persist).
     */
    bool audit(AuditSink &sink) const;

  private:
    struct RegionList
    {
        std::uint32_t head = kNoFrame;  //!< MRU frame
        std::uint32_t tail = kNoFrame;  //!< LRU frame
        std::vector<std::uint32_t> free;
    };

    std::size_t
    frameIdx(std::uint32_t group, std::uint32_t f) const
    {
        return std::size_t{group} * nFrames + f;
    }

    bool
    validBit(std::uint32_t group, std::uint32_t f) const
    {
        const std::size_t idx = frameIdx(group, f);
        return (validWords[idx >> 6] >> (idx & 63)) & 1;
    }

    bool
    linkedBit(std::uint32_t group, std::uint32_t f) const
    {
        const std::size_t idx = frameIdx(group, f);
        return (linkedWords[idx >> 6] >> (idx & 63)) & 1;
    }

    RegionList &
    region(std::uint32_t group, std::uint32_t region_idx)
    {
        return lists[std::size_t{group} * nRegions + region_idx];
    }

    void
    unlink(std::uint32_t group, std::uint32_t f)
    {
        if (!linkedBit(group, f))
            return;
        const std::size_t base = std::size_t{group} * nFrames;
        const std::uint32_t prev = prevPlane.get(base + f);
        const std::uint32_t next = nextPlane.get(base + f);
        RegionList &r = region(group, regionOfFrame(f));
        if (prev != kNoFrame)
            nextPlane.set(base + prev, next);
        else
            r.head = next;
        if (next != kNoFrame)
            prevPlane.set(base + next, prev);
        else
            r.tail = prev;
        prevPlane.set(base + f, kNoFrame);
        nextPlane.set(base + f, kNoFrame);
        const std::size_t idx = base + f;
        linkedWords[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    }

    void
    linkFront(std::uint32_t group, std::uint32_t f)
    {
        panic_if(linkedBit(group, f), "frame %u already linked", f);
        const std::size_t base = std::size_t{group} * nFrames;
        RegionList &r = region(group, regionOfFrame(f));
        prevPlane.set(base + f, kNoFrame);
        nextPlane.set(base + f, r.head);
        if (r.head != kNoFrame)
            prevPlane.set(base + r.head, f);
        r.head = f;
        if (r.tail == kNoFrame)
            r.tail = f;
        const std::size_t idx = base + f;
        linkedWords[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    }

    std::uint32_t nGroups;
    std::uint32_t nFrames;
    std::uint32_t nRegions;
    std::uint32_t framesPerRegion;
    DistanceRepl replPolicy;
    Rng rng;

    // Structure-of-arrays frame planes, indexed [group * nFrames + f];
    // valid/linked are packed one bit per frame, pointer planes are
    // narrowed to the geometry's minimal width (ways fit a byte: the
    // tag array caps associativity at 64).
    NarrowPlane revSet;                      //!< reverse ptr: tag set
    std::vector<std::uint8_t> revWay;        //!< reverse ptr: tag way
    std::vector<std::uint64_t> validWords;   //!< [idx / 64]
    std::vector<std::uint64_t> linkedWords;  //!< [idx / 64]
    NarrowPlane prevPlane;                   //!< LRU chain prev
    NarrowPlane nextPlane;                   //!< LRU chain next

    NarrowPlane frameRegion;                 //!< frame -> region index
    std::vector<RegionList> lists;  //!< [group * nRegions + region]
    /** Per-group tree-PLRU state (regions as sets, frames as ways);
     *  only allocated under DistanceRepl::TreePLRU. */
    std::vector<std::unique_ptr<TreePlruReplacer>> plru;
};

} // namespace nurapid

#endif // NURAPID_NURAPID_DATA_ARRAY_HH
