/**
 * @file
 * Forward/reverse-pointer width and overhead arithmetic (Section 2.4.3).
 *
 * The paper's example: an 8 MB cache with 128 B blocks needs 16-bit
 * forward and reverse pointers for full flexibility (256 KB of
 * pointers, a 3% overhead); restricting placement to 256 frames per
 * d-group in a 4-d-group cache shrinks the pointer to 10 bits.
 */

#ifndef NURAPID_NURAPID_POINTER_CODEC_HH
#define NURAPID_NURAPID_POINTER_CODEC_HH

#include <cstdint>

namespace nurapid {

struct PointerLayout
{
    std::uint32_t group_bits = 0;       //!< selects the d-group
    std::uint32_t frame_bits = 0;       //!< selects the frame within it
    std::uint32_t forward_bits = 0;     //!< group_bits + frame_bits
    std::uint32_t reverse_bits = 0;     //!< set + way
    std::uint64_t total_pointer_bytes = 0;
    std::uint64_t tag_entry_bits = 0;   //!< tag + state (no pointer)
    double pointer_overhead = 0.0;      //!< pointer bytes / data bytes
    double tag_overhead = 0.0;          //!< tag-array bytes / data bytes
};

/**
 * Computes pointer widths for a NuRAPID organization.
 *
 * @param capacity_bytes    total data capacity
 * @param block_bytes       cache block size
 * @param assoc             tag-array associativity
 * @param num_dgroups       number of d-groups
 * @param frame_restriction reachable frames per d-group per block
 *                          (0 = unrestricted)
 * @param addr_bits         physical address width (the paper uses 64)
 */
PointerLayout computePointerLayout(std::uint64_t capacity_bytes,
                                   std::uint32_t block_bytes,
                                   std::uint32_t assoc,
                                   std::uint32_t num_dgroups,
                                   std::uint32_t frame_restriction = 0,
                                   std::uint32_t addr_bits = 64);

} // namespace nurapid

#endif // NURAPID_NURAPID_POINTER_CODEC_HH
