/**
 * @file
 * Command-line simulator driver — the front door for downstream users.
 *
 * Runs one (organization, workload) pair on the full simulated system
 * and prints the run metrics, the d-group/bank hit distribution, and
 * the energy report.
 *
 * Examples:
 *   nurapid_sim --list
 *   nurapid_sim --org nurapid --benchmark applu
 *   nurapid_sim --org nurapid --dgroups 8 --promotion fastest \
 *               --distance-repl lru --benchmark mcf --scale 0.5
 *   nurapid_sim --org dnuca --search ss-energy --benchmark swim
 *   nurapid_sim --org base --benchmark gzip --stats
 */

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "sim/gang.hh"
#include "sim/runner/run_cache.hh"
#include "sim/runner/run_engine.hh"
#include "sim/runner/span_trace.hh"
#include "sim/system.hh"
#include "trace/profiles.hh"

using namespace nurapid;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --list                 list workloads and organizations\n"
        "  --benchmark NAME       workload profile (default: applu)\n"
        "  --suite                run all 15 workloads (parallel engine)\n"
        "  --jobs N               worker threads for --suite (default:\n"
        "                         NURAPID_JOBS or hardware concurrency)\n"
        "  --org KIND             base | dnuca | snuca | sa-place |\n"
        "                         nurapid; 'all' (with --suite) runs\n"
        "                         every organization in one batch, so\n"
        "                         the engine gang-schedules them\n"
        "  --dgroups N            NuRAPID d-groups (2/4/8; default 4)\n"
        "  --promotion P          demotion-only | next-fastest | fastest\n"
        "  --distance-repl R      random | lru | tree-plru\n"
        "  --restriction N        frames-per-d-group pointer restriction\n"
        "  --multi-port           idealized infinite-port data arrays\n"
        "  --ideal                constant fastest-d-group hit latency\n"
        "  --search S             D-NUCA: multicast | ss-performance |\n"
        "                         ss-energy\n"
        "  --scale X              scale simulation length (default 1.0)\n"
        "  --gang on|off          gang replay: drive every organization\n"
        "                         sharing a distilled stream through one\n"
        "                         traversal (default on; same as\n"
        "                         NURAPID_GANG)\n"
        "  --dump-cache FILE      print a normalized view of the run\n"
        "                         cache at FILE and exit: gang-mode key\n"
        "                         fields stripped, wall_seconds zeroed,\n"
        "                         sorted — two caches produced with\n"
        "                         --gang on and --gang off compare\n"
        "                         byte-equal iff the runs were\n"
        "                         bit-identical\n"
        "  --stats                dump full statistic groups\n"
        "  --trace-out FILE       write the typed event stream (hits,\n"
        "                         misses, promotions, demotions, swaps,\n"
        "                         evictions, writebacks, MSHR stalls)\n"
        "                         as JSONL\n"
        "  --metrics-out FILE     write the interval-metrics timeline\n"
        "                         as JSONL (one snapshot per epoch)\n"
        "  --perfetto-out FILE    write the timeline as a Chrome\n"
        "                         trace.json (chrome://tracing,\n"
        "                         ui.perfetto.dev)\n"
        "  --obs-interval N       references per observability epoch\n"
        "                         (default: NURAPID_OBS_INTERVAL or "
        "65536)\n"
        "  --engine-trace-out F   record host-time engine spans (trace\n"
        "                         pregen, distill decode, gang replay,\n"
        "                         run-cache probe/store, per-config\n"
        "                         simulate) into a Chrome trace at F\n"
        "                         (one track per worker thread) and\n"
        "                         print an [engine] wall-time footer;\n"
        "                         same as NURAPID_ENGINE_TRACE\n"
        "\n"
        "With --suite, observability paths get a per-workload suffix\n"
        "(events.jsonl -> events.applu.jsonl). Observed runs bypass the\n"
        "run cache so the trace files are always written.\n"
        "\n"
        "environment knobs:\n"
        "  NURAPID_JOBS            worker threads for parallel batches\n"
        "                          (default: hardware concurrency)\n"
        "  NURAPID_RUN_CACHE       path of the cross-binary run\n"
        "                          memoization cache (JSON)\n"
        "  NURAPID_TRACE_CACHE_DIR on-disk packed/distilled trace cache\n"
        "                          directory\n"
        "  NURAPID_TRACE_PREGEN    0 disables trace pre-generation\n"
        "                          (per-record live generation instead)\n"
        "  NURAPID_DISTILL         0 disables distilled L2-event replay\n"
        "  NURAPID_GANG            0 disables gang replay (per-org runs)\n"
        "  NURAPID_GANG_WIDTH      max organizations per gang\n"
        "                          (0/unset = unlimited)\n"
        "  NURAPID_GANG_BLOCK      events per gang interleave block\n"
        "  NURAPID_GANG_SCHED      footprint (default) tiles lanes into\n"
        "                          LLC-sized cohorts; naive = one cohort\n"
        "  NURAPID_GANG_LLC_BYTES  host-LLC budget per cohort\n"
        "                          (default 24 MiB)\n"
        "  NURAPID_PREFETCH        0 disables stream-lookahead prefetch\n"
        "  NURAPID_PREFETCH_DIST   prefetch lookahead in events\n"
        "                          (default 8, clamped to 1..256)\n"
        "  NURAPID_SIM_SCALE       global simulation-length multiplier\n"
        "  NURAPID_AUDIT           1 enables the invariant-audit layer\n"
        "  NURAPID_AUDIT_INTERVAL  accesses between audit sweeps\n"
        "                          (default 4096)\n"
        "  NURAPID_OBS_INTERVAL    references per observability epoch\n"
        "                          (default 65536)\n"
        "  NURAPID_OBS_EVENT_CAP   flight-recorder ring capacity;\n"
        "                          0/unset = unbounded\n"
        "  NURAPID_ENGINE_TRACE    engine span trace output path\n"
        "                          (appended, so one sweep's processes\n"
        "                          share a single whole-sweep trace)\n",
        argv0);
}

/** events.jsonl -> events.applu.jsonl (suffix before the extension). */
std::string
perWorkloadPath(const std::string &path, const std::string &workload)
{
    if (path.empty())
        return path;
    const std::size_t slash = path.find_last_of('/');
    const std::size_t dot = path.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return path + "." + workload;
    }
    return path.substr(0, dot) + "." + workload + path.substr(dot);
}

/** Strict decimal parse of @p v into [lo, hi]; fatal() on garbage. */
std::uint64_t
parseUint(const char *flag, const std::string &v, std::uint64_t lo,
          std::uint64_t hi)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long raw = std::strtoull(v.c_str(), &end, 10);
    fatal_if(v.empty() || v[0] == '-' || !end || *end != '\0' ||
                 errno == ERANGE,
             "%s: '%s' is not a valid non-negative integer", flag,
             v.c_str());
    fatal_if(raw < lo || raw > hi,
             "%s: %llu is out of range [%llu, %llu]", flag, raw,
             static_cast<unsigned long long>(lo),
             static_cast<unsigned long long>(hi));
    return raw;
}

/** Strict parse of @p v into (lo, hi]; fatal() on garbage or NaN/inf. */
double
parseDouble(const char *flag, const std::string &v, double lo, double hi)
{
    errno = 0;
    char *end = nullptr;
    const double raw = std::strtod(v.c_str(), &end);
    fatal_if(v.empty() || !end || *end != '\0' || errno == ERANGE ||
                 !std::isfinite(raw),
             "%s: '%s' is not a valid number", flag, v.c_str());
    fatal_if(raw <= lo || raw > hi,
             "%s: %g is out of range (%g, %g]", flag, raw, lo, hi);
    return raw;
}

bool
parsePromotion(const std::string &s, PromotionPolicy &out)
{
    if (s == "demotion-only")
        out = PromotionPolicy::DemotionOnly;
    else if (s == "next-fastest")
        out = PromotionPolicy::NextFastest;
    else if (s == "fastest")
        out = PromotionPolicy::Fastest;
    else
        return false;
    return true;
}

bool
parseSearch(const std::string &s, DNucaSearch &out)
{
    if (s == "multicast")
        out = DNucaSearch::Multicast;
    else if (s == "ss-performance")
        out = DNucaSearch::SsPerformance;
    else if (s == "ss-energy")
        out = DNucaSearch::SsEnergy;
    else
        return false;
    return true;
}

/** Removes one "name=value;" field from a canonical run-cache key. */
std::string
stripKeyField(std::string key, const std::string &name)
{
    const std::string prefix = name + "=";
    std::size_t at = 0;
    while (at < key.size()) {
        const std::size_t semi = key.find(';', at);
        if (semi == std::string::npos)
            break;
        if (key.compare(at, prefix.size(), prefix) == 0) {
            key.erase(at, semi - at + 1);
            continue;
        }
        at = semi + 1;
    }
    return key;
}

/**
 * Prints the run cache at @p path in a normalized, mode-independent
 * form: one "key<TAB>metrics" line per entry, gang key fields
 * stripped, wall_seconds zeroed and from_cache cleared, sorted by the
 * normalized key. scripts/check.sh diffs two of these dumps to assert
 * the gang and per-org paths produced bit-identical results.
 */
int
dumpCache(const std::string &path)
{
    RunCache cache;
    const std::size_t n = cache.loadFile(path);
    fatal_if(n == 0, "--dump-cache: no entries loaded from '%s'",
             path.c_str());
    std::vector<std::string> lines;
    lines.reserve(n);
    cache.forEachEntry([&](const std::string &key, const RunMetrics &m) {
        RunMetrics norm = m;
        norm.wall_seconds = 0.0;
        norm.from_cache = false;
        std::string k = stripKeyField(key, "gang");
        k = stripKeyField(std::move(k), "gang_width");
        lines.push_back(k + "\t" + runMetricsToJson(norm).dump());
    });
    std::sort(lines.begin(), lines.end());
    for (const auto &line : lines)
        std::printf("%s\n", line.c_str());
    return 0;
}

void
listEverything()
{
    std::printf("workloads (synthetic SPEC2K stand-ins, Table 3):\n");
    TextTable t;
    t.header({"name", "type", "class", "target IPC", "target APKI"});
    for (const auto &p : workloadSuite()) {
        t.row({p.name, p.fp ? "FP" : "Int",
               p.high_load ? "high-load" : "low-load",
               TextTable::num(p.table3_ipc, 1),
               TextTable::num(p.table3_l2_apki, 0)});
    }
    t.print();
    std::printf("\norganizations: base, dnuca, snuca, sa-place, nurapid\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string benchmark = "applu";
    std::string org = "nurapid";
    OrgSpec spec = OrgSpec::nurapidDefault();
    bool dump_stats = false;
    bool run_suite = false;
    unsigned jobs = 0;
    double scale = 0.0;

    std::uint32_t dgroups = 4;
    PromotionPolicy promotion = PromotionPolicy::NextFastest;
    DistanceRepl drepl = DistanceRepl::Random;
    std::uint32_t restriction = 0;
    bool multi_port = false;
    bool ideal = false;
    DNucaSearch search = DNucaSearch::SsPerformance;

    std::string trace_out;
    std::string metrics_out;
    std::string perfetto_out;
    std::uint64_t obs_interval = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--list") {
            listEverything();
            return 0;
        } else if (arg == "--benchmark") {
            benchmark = value("--benchmark");
        } else if (arg == "--suite") {
            run_suite = true;
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(
                parseUint("--jobs", value("--jobs"), 1, 4096));
        } else if (arg == "--org") {
            org = value("--org");
        } else if (arg == "--dgroups") {
            dgroups = static_cast<std::uint32_t>(
                parseUint("--dgroups", value("--dgroups"), 1, 64));
        } else if (arg == "--promotion") {
            if (!parsePromotion(value("--promotion"), promotion))
                fatal("unknown promotion policy");
        } else if (arg == "--distance-repl") {
            const std::string v = value("--distance-repl");
            if (v == "random")
                drepl = DistanceRepl::Random;
            else if (v == "lru")
                drepl = DistanceRepl::LRU;
            else if (v == "tree-plru")
                drepl = DistanceRepl::TreePLRU;
            else
                fatal("unknown distance replacement '%s'", v.c_str());
        } else if (arg == "--restriction") {
            restriction = static_cast<std::uint32_t>(
                parseUint("--restriction", value("--restriction"), 0,
                          1u << 20));
        } else if (arg == "--multi-port") {
            multi_port = true;
        } else if (arg == "--ideal") {
            ideal = true;
        } else if (arg == "--search") {
            if (!parseSearch(value("--search"), search))
                fatal("unknown D-NUCA search policy");
        } else if (arg == "--scale") {
            scale = parseDouble("--scale", value("--scale"), 0.0, 1e6);
        } else if (arg == "--gang" || arg.rfind("--gang=", 0) == 0) {
            const std::string v = arg.size() > 6 ? arg.substr(7)
                                                 : value("--gang");
            if (v == "on")
                setenv("NURAPID_GANG", "1", 1);
            else if (v == "off")
                setenv("NURAPID_GANG", "0", 1);
            else
                fatal("--gang takes 'on' or 'off', not '%s'", v.c_str());
        } else if (arg == "--dump-cache") {
            return dumpCache(value("--dump-cache"));
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--trace-out") {
            trace_out = value("--trace-out");
        } else if (arg == "--metrics-out") {
            metrics_out = value("--metrics-out");
        } else if (arg == "--perfetto-out") {
            perfetto_out = value("--perfetto-out");
        } else if (arg == "--obs-interval") {
            obs_interval = parseUint("--obs-interval",
                                     value("--obs-interval"), 1,
                                     std::uint64_t{1} << 40);
        } else if (arg == "--engine-trace-out") {
            const std::string f = value("--engine-trace-out");
            // Forward through the env so child-visible config stays
            // consistent with the NURAPID_ENGINE_TRACE spelling.
            setenv("NURAPID_ENGINE_TRACE", f.c_str(), 1);
            EngineTrace::instance().enable(f);
        } else {
            usage(argv[0]);
            fatal("unknown option '%s'", arg.c_str());
        }
    }

    if (org == "all") {
        fatal_if(!run_suite, "--org all requires --suite");
        fatal_if(!trace_out.empty() || !metrics_out.empty() ||
                     !perfetto_out.empty(),
                 "--org all does not support observability exports "
                 "(pick one organization)");
    } else if (org == "base") {
        spec = OrgSpec::baseline();
    } else if (org == "dnuca") {
        spec = OrgSpec::dnucaSsPerformance();
        spec.dnuca.search = search;
    } else if (org == "snuca") {
        spec = OrgSpec::snucaDefault();
    } else if (org == "sa-place") {
        spec = OrgSpec::coupledSA();
    } else if (org == "nurapid") {
        spec = OrgSpec::nurapidDefault(dgroups, promotion, drepl);
        spec.nurapid.frame_restriction = restriction;
        spec.nurapid.single_port = !multi_port;
        spec.nurapid.ideal_fastest = ideal;
    } else {
        fatal("unknown organization '%s' (try --list)", org.c_str());
    }

    ObsConfig obs;
    obs.record_events = !trace_out.empty();
    obs.record_metrics = !metrics_out.empty() || !perfetto_out.empty();
    obs.interval = obs_interval;
    obs.events_path = trace_out;
    obs.metrics_path = metrics_out;
    obs.perfetto_path = perfetto_out;

    SimLength length = SimLength::fromEnv();
    if (scale > 0) {
        length.warmup_records = static_cast<std::uint64_t>(
            length.warmup_records * scale);
        length.measure_records = static_cast<std::uint64_t>(
            length.measure_records * scale);
    }

    if (run_suite && org == "all") {
        // One batch over every organization: the engine groups the
        // runs of each workload into a gang (or per-org units with
        // --gang off) — the CLI face of the gang scheduler, and what
        // scripts/check.sh brackets for bit-identity.
        RunEngineOptions eopts = RunEngineOptions::fromEnv();
        if (jobs)
            eopts.jobs = jobs;
        RunEngine engine(eopts);
        std::vector<OrgSpec> specs;
        specs.push_back(OrgSpec::baseline());
        specs.push_back(OrgSpec::snucaDefault());
        specs.push_back(OrgSpec::dnucaSsPerformance());
        specs.push_back(OrgSpec::coupledSA());
        specs.push_back(OrgSpec::nurapidDefault(dgroups, promotion,
                                                drepl));
        std::printf("running the %zu-workload suite on %zu "
                    "organizations...\n", workloadSuite().size(),
                    specs.size());

        const auto t0 = std::chrono::steady_clock::now();
        const auto runs = engine.runSuites(specs, workloadSuite(),
                                           length);
        const double wall = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0).count();

        TextTable t;
        std::vector<std::string> head{"workload"};
        for (const auto &s : specs)
            head.push_back(s.description());
        t.header(head);
        for (std::size_t j = 0; j < workloadSuite().size(); ++j) {
            std::vector<std::string> row{workloadSuite()[j].name};
            for (std::size_t i = 0; i < specs.size(); ++i)
                row.push_back(TextTable::num(runs[i][j].ipc, 3));
            t.row(row);
        }
        t.print();
        std::printf("\nIPC per organization; suite wall-clock %.2f s, "
                    "%llu simulated, %llu cache hits\n", wall,
                    static_cast<unsigned long long>(
                        engine.simulatedRuns()),
                    static_cast<unsigned long long>(engine.cacheHits()));
        return 0;
    }

    if (run_suite) {
        RunEngineOptions eopts = RunEngineOptions::fromEnv();
        if (jobs)
            eopts.jobs = jobs;
        RunEngine engine(eopts);
        std::printf("running the %zu-workload suite on %s with %u "
                    "worker thread(s)...\n", workloadSuite().size(),
                    spec.description().c_str(),
                    engine.jobsFor(workloadSuite().size()));

        const auto t0 = std::chrono::steady_clock::now();
        std::vector<RunRequest> requests;
        requests.reserve(workloadSuite().size());
        for (const auto &profile : workloadSuite()) {
            RunRequest r{spec, profile, length, obs};
            r.obs.events_path =
                perWorkloadPath(trace_out, profile.name);
            r.obs.metrics_path =
                perWorkloadPath(metrics_out, profile.name);
            r.obs.perfetto_path =
                perWorkloadPath(perfetto_out, profile.name);
            requests.push_back(std::move(r));
        }
        auto runs = engine.runMany(requests);
        const double wall = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0).count();

        TextTable t;
        t.header({"workload", "IPC", "L2 APKI", "miss", "EDP",
                  "run wall (s)", "source"});
        for (const auto &m : runs) {
            t.row({m.workload, TextTable::num(m.ipc, 3),
                   TextTable::num(m.l2_apki, 1),
                   TextTable::pct(m.miss_frac),
                   strprintf("%.3e", m.energy.edp),
                   TextTable::num(m.wall_seconds, 2),
                   m.from_cache ? "cache" : "simulated"});
        }
        t.print();
        std::printf("\nsuite wall-clock %.2f s; %llu simulated "
                    "(%.2f s), %llu cache hits (saved ~%.2f s)\n", wall,
                    static_cast<unsigned long long>(
                        engine.simulatedRuns()),
                    engine.simulatedSeconds(),
                    static_cast<unsigned long long>(engine.cacheHits()),
                    engine.savedSeconds());
        return 0;
    }

    const WorkloadProfile &profile = findProfile(benchmark);
    std::printf("running '%s' on %s (%llu warmup + %llu measured "
                "references)...\n", profile.name.c_str(),
                spec.description().c_str(),
                static_cast<unsigned long long>(length.warmup_records),
                static_cast<unsigned long long>(length.measure_records));

    System sys(spec, profile, length);
    sys.enableObservability(obs);
    auto m = sys.runAll();

    TextTable t;
    t.header({"metric", "value"});
    t.row({"IPC", TextTable::num(m.ipc, 3)});
    t.row({"cycles", std::to_string(m.cycles)});
    t.row({"instructions", std::to_string(m.instructions)});
    t.row({"L2 demand accesses", std::to_string(m.l2_demand)});
    t.row({"L2 accesses / kinst", TextTable::num(m.l2_apki, 1)});
    t.row({"L2 miss ratio", TextTable::pct(m.miss_frac)});
    t.row({"promotions", std::to_string(m.promotions)});
    t.row({"demotions", std::to_string(m.demotions)});
    t.row({"block moves", std::to_string(m.block_moves)});
    t.row({"data-array accesses", std::to_string(m.data_array_accesses)});
    t.row({"core+L1 energy (uJ)",
           TextTable::num((m.energy.core_nj + m.energy.l1_nj) / 1000.0)});
    t.row({"L2 energy (uJ)",
           TextTable::num(m.energy.l2_cache_nj / 1000.0)});
    t.row({"DRAM energy (uJ)",
           TextTable::num(m.energy.memory_nj / 1000.0)});
    t.row({"energy-delay (nJ*cyc)", strprintf("%.3e", m.energy.edp)});
    t.row({"wall-clock (s)", TextTable::num(m.wall_seconds, 2)});
    t.print();

    std::printf("\nhit distribution over latency regions:\n");
    for (std::size_t g = 0; g < m.region_frac.size(); ++g) {
        std::printf("  region %zu: %5.1f%%\n", g,
                    100.0 * m.region_frac[g]);
    }
    std::printf("  miss:     %5.1f%%\n", 100.0 * m.miss_frac);

    if (const EventSink *sink = sys.observabilitySink()) {
        std::printf("\nobservability: %llu events recorded",
                    static_cast<unsigned long long>(sink->recorded()));
        if (sink->dropped()) {
            std::printf(" (%llu overwritten by the flight-recorder "
                        "ring)",
                        static_cast<unsigned long long>(
                            sink->dropped()));
        }
        std::printf("\n");
        if (!trace_out.empty())
            std::printf("  events:   %s\n", trace_out.c_str());
        if (!metrics_out.empty())
            std::printf("  metrics:  %s\n", metrics_out.c_str());
        if (!perfetto_out.empty())
            std::printf("  perfetto: %s\n", perfetto_out.c_str());
    }

    if (dump_stats) {
        std::printf("\n%s", sys.lower().stats().dump().c_str());
        std::printf("%s", sys.core().stats().dump().c_str());
        std::printf("%s",
                    sys.core().branchPredictor().stats().dump().c_str());
    }
    return 0;
}
