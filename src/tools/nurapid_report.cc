/**
 * @file
 * Renders the observability exports as terminal reports: ASCII
 * timelines over the interval-metrics JSONL (how IPC, hit share,
 * latency, occupancy, movement and energy evolve across epochs), a
 * Figure-4/5-style end-of-run hit-distribution table, a
 * Figure-10-style energy-breakdown table, and a kind summary over an
 * event-stream JSONL. Malformed or truncated input files produce a
 * one-line error and a nonzero exit, never a garbage render.
 *
 * Examples:
 *   nurapid_sim --org nurapid --benchmark mcf \
 *               --metrics-out mcf.metrics.jsonl \
 *               --trace-out mcf.events.jsonl
 *   nurapid_report mcf.metrics.jsonl
 *   nurapid_report --events mcf.events.jsonl
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "sim/obs/export.hh"

using namespace nurapid;

namespace {

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options] [METRICS_JSONL]\n"
        "  METRICS_JSONL   interval-metrics timeline written by\n"
        "                  nurapid_sim --metrics-out\n"
        "  --events FILE   summarize an event-stream JSONL written by\n"
        "                  nurapid_sim --trace-out\n"
        "  --width N       timeline width in columns (default 64)\n",
        argv0);
}

/** Ten-level intensity ramp, blank = zero. */
const char kLevels[] = " .:-=+*#%@";

/**
 * Renders @p vals as one fixed-width intensity line, averaging
 * neighbouring epochs down to @p width columns and scaling against the
 * series maximum (an all-zero series renders blank).
 */
std::string
sparkline(const std::vector<double> &vals, std::size_t width)
{
    if (vals.empty() || width == 0)
        return "";
    std::vector<double> cols;
    if (vals.size() <= width) {
        cols = vals;
    } else {
        cols.resize(width, 0.0);
        std::vector<std::size_t> counts(width, 0);
        for (std::size_t i = 0; i < vals.size(); ++i) {
            const std::size_t c = i * width / vals.size();
            cols[c] += vals[i];
            ++counts[c];
        }
        for (std::size_t c = 0; c < width; ++c) {
            if (counts[c])
                cols[c] /= static_cast<double>(counts[c]);
        }
    }
    const double top = *std::max_element(cols.begin(), cols.end());
    std::string out;
    out.reserve(cols.size());
    const std::size_t ramp = sizeof(kLevels) - 2;  // last index
    for (double v : cols) {
        std::size_t lvl = 0;
        if (top > 0 && v > 0) {
            lvl = 1 + static_cast<std::size_t>(
                v / top * static_cast<double>(ramp - 1));
            lvl = std::min(lvl, ramp);
        }
        out.push_back(kLevels[lvl]);
    }
    return out;
}

void
printSeries(const char *name, const std::vector<double> &vals,
            std::size_t width, int decimals)
{
    if (vals.empty())
        return;
    const double lo = *std::min_element(vals.begin(), vals.end());
    const double hi = *std::max_element(vals.begin(), vals.end());
    std::printf("  %-14s |%s|  min %s  max %s  last %s\n", name,
                sparkline(vals, width).c_str(),
                TextTable::num(lo, decimals).c_str(),
                TextTable::num(hi, decimals).c_str(),
                TextTable::num(vals.back(), decimals).c_str());
}

std::uint64_t
counterOf(const Json &snap, const char *name)
{
    return snap.get("counters").get(name).asUint();
}

/** Per-epoch delta of a cumulative counter across the timeline. */
std::vector<double>
counterDeltas(const std::vector<Json> &epochs, const char *name)
{
    std::vector<double> out;
    for (std::size_t i = 1; i < epochs.size(); ++i) {
        out.push_back(static_cast<double>(
            counterOf(epochs[i], name) - counterOf(epochs[i - 1], name)));
    }
    return out;
}

/**
 * Structural validation of a parsed timeline before rendering: a
 * truncated or hand-edited file must produce a one-line error and a
 * nonzero exit, not out-of-range indexing or garbage series from
 * unsigned-counter underflow. Returns an empty string when sound.
 */
std::string
validateTimeline(const std::vector<Json> &epochs)
{
    std::uint64_t prev_refs = 0, prev_cycles = 0;
    std::size_t regions = epochs.empty()
        ? 0
        : epochs.front().get("region_hits").size();
    std::size_t occ_regions = epochs.empty()
        ? 0
        : epochs.front().get("occupancy").size();
    for (std::size_t i = 0; i < epochs.size(); ++i) {
        const Json &e = epochs[i];
        if (!e.isObject())
            return strprintf("epoch %zu is not an object", i);
        for (const char *k :
             {"refs", "cycles", "instructions", "counters",
              "region_hits", "occupancy"}) {
            if (!e.has(k))
                return strprintf("epoch %zu is missing '%s' "
                                 "(truncated line?)", i, k);
        }
        if (e.get("region_hits").size() != regions)
            return strprintf("epoch %zu has %zu region_hits entries, "
                             "epoch 0 has %zu", i,
                             e.get("region_hits").size(), regions);
        if (e.get("occupancy").size() != occ_regions)
            return strprintf("epoch %zu has %zu occupancy entries, "
                             "epoch 0 has %zu", i,
                             e.get("occupancy").size(), occ_regions);
        const std::uint64_t refs = e.get("refs").asUint();
        const std::uint64_t cycles = e.get("cycles").asUint();
        if (i > 0 && (refs < prev_refs || cycles < prev_cycles))
            return strprintf("epoch %zu goes backwards (refs %llu -> "
                             "%llu, cycles %llu -> %llu)", i,
                             static_cast<unsigned long long>(prev_refs),
                             static_cast<unsigned long long>(refs),
                             static_cast<unsigned long long>(prev_cycles),
                             static_cast<unsigned long long>(cycles));
        prev_refs = refs;
        prev_cycles = cycles;
    }
    return "";
}

/** energy object field of one epoch, 0 when the series is absent. */
double
energyOf(const Json &snap, const char *field)
{
    return snap.get("energy").get(field).asDouble();
}

/** Sum of the per-region data_nj array of one epoch. */
double
energyDataOf(const Json &snap)
{
    const Json &data = snap.get("energy").get("data_nj");
    double sum = 0;
    for (std::size_t r = 0; r < data.size(); ++r)
        sum += data.at(r).asDouble();
    return sum;
}

int
reportMetrics(const std::string &path, std::size_t width)
{
    MetricsDoc doc;
    std::string err;
    if (!readJsonlFile(path, doc, &err)) {
        std::fprintf(stderr, "nurapid_report: %s\n", err.c_str());
        return 1;
    }
    if (doc.meta.get("meta").asString() != "nurapid-metrics") {
        std::fprintf(stderr,
                     "nurapid_report: %s is not a metrics timeline "
                     "(meta '%s')\n", path.c_str(),
                     doc.meta.get("meta").asString().c_str());
        return 1;
    }
    if (doc.epochs.size() < 2) {
        std::fprintf(stderr,
                     "nurapid_report: %s has no completed epochs\n",
                     path.c_str());
        return 1;
    }
    const std::string bad = validateTimeline(doc.epochs);
    if (!bad.empty()) {
        std::fprintf(stderr,
                     "nurapid_report: %s is not a sound timeline: %s\n",
                     path.c_str(), bad.c_str());
        return 1;
    }

    const Json &last = doc.epochs.back();
    std::printf("%s on %s: %zu epochs of %llu refs "
                "(%llu refs, %llu cycles measured)\n",
                doc.meta.get("workload").asString().c_str(),
                doc.meta.get("organization").asString().c_str(),
                doc.epochs.size() - 1,
                static_cast<unsigned long long>(
                    doc.meta.get("interval").asUint()),
                static_cast<unsigned long long>(
                    last.get("refs").asUint()),
                static_cast<unsigned long long>(
                    last.get("cycles").asUint()));
    if (doc.meta.get("run_cache_bypassed").asBool()) {
        std::printf("note: observed run, simulated fresh (observed "
                    "runs bypass the run cache)\n");
    }

    // Per-epoch derived series (adjacent-snapshot differences).
    std::vector<double> ipc, hit_share, avg_lat, p95;
    for (std::size_t i = 1; i < doc.epochs.size(); ++i) {
        const Json &a = doc.epochs[i - 1];
        const Json &b = doc.epochs[i];
        const double dcyc = static_cast<double>(
            b.get("cycles").asUint() - a.get("cycles").asUint());
        const double dinst = static_cast<double>(
            b.get("instructions").asUint() -
            a.get("instructions").asUint());
        ipc.push_back(dcyc > 0 ? dinst / dcyc : 0.0);
        const double acc =
            static_cast<double>(b.get("epoch_accesses").asUint());
        hit_share.push_back(
            acc > 0 ? b.get("epoch_hits").asUint() / acc : 0.0);
        avg_lat.push_back(b.get("epoch_avg_latency").asDouble());
        p95.push_back(
            static_cast<double>(b.get("epoch_lat_p95").asUint()));
    }

    std::printf("\nper-epoch timelines:\n");
    printSeries("IPC", ipc, width, 3);
    printSeries("L2 hit share", hit_share, width, 3);
    printSeries("avg latency", avg_lat, width, 1);
    printSeries("p95 latency", p95, width, 0);
    if (last.get("counters").has("demotions"))
        printSeries("demotions", counterDeltas(doc.epochs, "demotions"),
                    width, 0);
    if (last.get("counters").has("promotions"))
        printSeries("promotions",
                    counterDeltas(doc.epochs, "promotions"), width, 0);

    // Energy phase behaviour: per-epoch deltas of the cumulative
    // attribution the recorder sampled from the EnergyBreakdown.
    if (last.has("energy")) {
        std::vector<double> cache_nj, lower_nj;
        for (std::size_t i = 1; i < doc.epochs.size(); ++i) {
            cache_nj.push_back(energyOf(doc.epochs[i], "total_nj") -
                               energyOf(doc.epochs[i - 1], "total_nj"));
            lower_nj.push_back(energyOf(doc.epochs[i], "lower_nj") -
                               energyOf(doc.epochs[i - 1], "lower_nj"));
        }
        std::printf("\nper-epoch energy (nJ):\n");
        printSeries("L2 cache", cache_nj, width, 0);
        printSeries("lower memory", lower_nj, width, 0);
    }

    const Json &occ = last.get("occupancy");
    if (occ.isArray() && occ.size() > 0) {
        std::printf("\nregion occupancy (valid blocks over time):\n");
        for (std::size_t r = 0; r < occ.size(); ++r) {
            std::vector<double> series;
            for (std::size_t i = 1; i < doc.epochs.size(); ++i) {
                series.push_back(static_cast<double>(
                    doc.epochs[i].get("occupancy").at(r).asUint()));
            }
            printSeries(strprintf("region %zu", r).c_str(), series,
                        width, 0);
        }
    }

    // Figure 4/5 style: where demand hits landed, end of run.
    const std::uint64_t demand = counterOf(last, "demand_accesses") +
        counterOf(last, "accesses");
    const std::uint64_t misses =
        counterOf(last, "misses") + counterOf(last, "memory_fills");
    const Json &hits = last.get("region_hits");
    std::printf("\nhit distribution over latency regions "
                "(end of run):\n");
    TextTable t;
    t.header({"region", "hits", "share of demand"});
    for (std::size_t r = 0; r < hits.size(); ++r) {
        const std::uint64_t h = hits.at(r).asUint();
        t.row({strprintf("region %zu", r), std::to_string(h),
               demand ? TextTable::pct(static_cast<double>(h) / demand)
                      : "-"});
    }
    t.row({"miss", std::to_string(misses),
           demand ? TextTable::pct(static_cast<double>(misses) / demand)
                  : "-"});
    t.print();

    // Figure 10 style: where the dynamic energy went, end of run.
    if (last.has("energy")) {
        const Json &data = last.get("energy").get("data_nj");
        const double tag = energyOf(last, "tag_nj");
        const double swap = energyOf(last, "swap_nj");
        const double wb = energyOf(last, "writeback_nj");
        const double cache = energyOf(last, "total_nj");
        const double lower = energyOf(last, "lower_nj");
        const double total = cache + lower;
        std::printf("\nenergy breakdown (end of run):\n");
        TextTable e;
        e.header({"component", "nJ", "share"});
        auto erow = [&](const std::string &name, double nj) {
            if (nj <= 0)
                return;
            e.row({name, TextTable::num(nj, 0),
                   total > 0 ? TextTable::pct(nj / total) : "-"});
        };
        erow("tag probes", tag);
        for (std::size_t r = 0; r < data.size(); ++r)
            erow(strprintf("data region %zu", r), data.at(r).asDouble());
        erow("swaps/promotions", swap);
        erow("writeback absorbs", wb);
        erow("L2 cache total", cache);
        erow("lower memory", lower);
        e.print();
    }
    return 0;
}

int
reportEvents(const std::string &path)
{
    MetricsDoc doc;
    std::string err;
    if (!readJsonlFile(path, doc, &err)) {
        std::fprintf(stderr, "nurapid_report: %s\n", err.c_str());
        return 1;
    }
    if (doc.meta.get("meta").asString() != "nurapid-events") {
        std::fprintf(stderr,
                     "nurapid_report: %s is not an event stream "
                     "(meta '%s')\n", path.c_str(),
                     doc.meta.get("meta").asString().c_str());
        return 1;
    }

    std::map<std::string, std::uint64_t> kinds;
    std::uint64_t dirty_evictions = 0;
    for (const Json &e : doc.epochs) {
        ++kinds[e.get("kind").asString()];
        if (e.get("kind").asString() == "eviction" &&
            e.get("dirty").asBool()) {
            ++dirty_evictions;
        }
    }

    std::printf("%s on %s: %zu events in file (%llu recorded, "
                "%llu overwritten)\n",
                doc.meta.get("workload").asString().c_str(),
                doc.meta.get("organization").asString().c_str(),
                doc.epochs.size(),
                static_cast<unsigned long long>(
                    doc.meta.get("recorded").asUint()),
                static_cast<unsigned long long>(
                    doc.meta.get("dropped").asUint()));

    TextTable t;
    t.header({"kind", "count", "share"});
    for (const auto &[kind, count] : kinds) {
        t.row({kind, std::to_string(count),
               TextTable::pct(static_cast<double>(count) /
                              static_cast<double>(doc.epochs.size()))});
    }
    t.print();
    if (dirty_evictions)
        std::printf("dirty evictions: %llu\n",
                    static_cast<unsigned long long>(dirty_evictions));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string metrics_path;
    std::string events_path;
    std::size_t width = 64;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--events") {
            if (i + 1 >= argc)
                fatal("--events needs a value");
            events_path = argv[++i];
        } else if (arg == "--width") {
            if (i + 1 >= argc)
                fatal("--width needs a value");
            const long v = std::strtol(argv[++i], nullptr, 10);
            if (v < 8 || v > 4096)
                fatal("--width must be in [8, 4096]");
            width = static_cast<std::size_t>(v);
        } else if (!arg.empty() && arg[0] == '-') {
            usage(argv[0]);
            fatal("unknown option '%s'", arg.c_str());
        } else {
            metrics_path = arg;
        }
    }

    if (metrics_path.empty() && events_path.empty()) {
        usage(argv[0]);
        return 1;
    }
    int rc = 0;
    if (!metrics_path.empty())
        rc = reportMetrics(metrics_path, width);
    if (rc == 0 && !events_path.empty())
        rc = reportEvents(events_path);
    return rc;
}
