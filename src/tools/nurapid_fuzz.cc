/**
 * @file
 * Differential fuzzing CLI: every cache organization vs. the flat
 * fully-associative reference oracle.
 *
 *   nurapid_fuzz [--iters N] [--seed S] [--target SUBSTR]
 *                [--conservation N] [--dump-dir DIR] [--list]
 *   nurapid_fuzz --replay FILE --target NAME
 *   nurapid_fuzz --gang [--iters N] [--seed S]
 *
 * Without --replay, runs the whole fuzz matrix (see fuzzTargetMatrix);
 * --target keeps only targets whose name contains SUBSTR. A mismatch
 * prints the minimized failing trace's dump path; exit status is the
 * number of failing targets (0 = all clean).
 *
 * --replay re-executes a dumped .trace against the named target
 * (exact match) and reports the first mismatch, for debugging a
 * failure the fuzzer found.
 *
 * --gang switches to the gang-replay differential target
 * (testing/gang_differ.hh): each iteration fuzzes a workload stream
 * plus a random gang of organizations and phase lengths, runs it
 * through the per-org and gang paths, and diffs metrics and the full
 * eviction/dirty-bit event stream; failures are ddmin-minimized. A
 * failing scenario reproduces with --gang --seed <reported> --iters 1.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "testing/fuzzer.hh"
#include "testing/gang_differ.hh"
#include "trace/trace_file.hh"

using namespace nurapid;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--iters N] [--seed S] [--target SUBSTR]\n"
                 "          [--conservation N] [--dump-dir DIR] [--list]\n"
                 "       %s --replay FILE --target NAME\n"
                 "       %s --gang [--iters N] [--seed S]\n",
                 argv0, argv0, argv0);
}

std::vector<TraceRecord>
loadTrace(const std::string &path)
{
    FileTraceSource source(path);
    std::vector<TraceRecord> out;
    out.reserve(source.recordCount());
    TraceRecord rec;
    while (source.next(rec))
        out.push_back(rec);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    FuzzConfig cfg;
    std::string filter;
    std::string dump_dir = ".";
    std::string replay_path;
    bool list_only = false;
    bool gang_mode = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--iters") {
            cfg.iterations = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--seed") {
            cfg.seed = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--target") {
            filter = value();
        } else if (arg == "--conservation") {
            cfg.conservation_interval =
                std::strtoull(value(), nullptr, 10);
        } else if (arg == "--dump-dir") {
            dump_dir = value();
        } else if (arg == "--replay") {
            replay_path = value();
        } else if (arg == "--gang") {
            gang_mode = true;
        } else if (arg == "--list") {
            list_only = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    fatal_if(cfg.iterations == 0, "--iters must be positive");
    fatal_if(cfg.conservation_interval == 0,
             "--conservation must be positive");

    if (gang_mode) {
        GangFuzzConfig gcfg;
        gcfg.seed = cfg.seed;
        gcfg.iterations = cfg.iterations;
        gcfg.progress = true;
        const GangFuzzResult result = gangFuzz(gcfg);
        if (result.passed) {
            std::printf("PASS gang-replay differential: %llu scenarios "
                        "clean\n",
                        static_cast<unsigned long long>(
                            result.scenarios));
            return 0;
        }
        std::printf("FAIL gang-replay differential at scenario seed "
                    "%llu\n     %s\n     minimized: %s\n",
                    static_cast<unsigned long long>(result.failing_seed),
                    result.message.c_str(), result.minimized.c_str());
        return 1;
    }

    const std::vector<FuzzTarget> matrix = fuzzTargetMatrix();

    if (list_only) {
        for (const FuzzTarget &t : matrix)
            std::printf("%s\n", t.name.c_str());
        return 0;
    }

    if (!replay_path.empty()) {
        const FuzzTarget *target = nullptr;
        for (const FuzzTarget &t : matrix) {
            if (t.name == filter)
                target = &t;
        }
        if (!target) {
            std::fprintf(stderr,
                         "--replay needs --target with an exact name "
                         "from --list\n");
            return 2;
        }
        const std::vector<TraceRecord> trace = loadTrace(replay_path);
        std::printf("replaying %zu records against %s\n", trace.size(),
                    target->name.c_str());
        if (auto fail = TraceFuzzer::replay(*target, trace,
                                            cfg.conservation_interval)) {
            std::printf("MISMATCH: %s\n", fail->c_str());
            return 1;
        }
        std::printf("clean replay\n");
        return 0;
    }

    int failures = 0;
    std::uint64_t ran = 0;
    for (const FuzzTarget &target : matrix) {
        if (!filter.empty() &&
            target.name.find(filter) == std::string::npos) {
            continue;
        }
        ++ran;
        TraceFuzzer fuzzer(target, cfg);
        const FuzzResult result = fuzzer.run(dump_dir);
        if (result.passed) {
            std::printf("PASS %-36s %llu iters\n", target.name.c_str(),
                        static_cast<unsigned long long>(cfg.iterations));
        } else {
            ++failures;
            std::printf("FAIL %-36s at access %llu\n",
                        target.name.c_str(),
                        static_cast<unsigned long long>(
                            result.failing_step));
            std::printf("     %s\n", result.message.c_str());
            std::printf("     minimized to %zu records%s%s\n",
                        result.minimized.size(),
                        result.dump_path.empty() ? "" : ", dumped to ",
                        result.dump_path.c_str());
        }
    }
    if (ran == 0) {
        std::fprintf(stderr, "no target matches '%s' (see --list)\n",
                     filter.c_str());
        return 2;
    }
    return failures;
}
