/**
 * @file
 * Width-narrowed index planes.
 *
 * The NuRAPID/D-NUCA pointer planes (forward frame pointers, reverse
 * set maps, frame->region table) were stored as uint32_t regardless
 * of geometry; an 8 MB organization only ever indexes ~16 Ki frames,
 * so half or three quarters of every pointer byte was zero padding
 * that still cost memory bandwidth.  NarrowPlane picks the minimal
 * element width (1, 2, or 4 bytes) for a caller-supplied maximum
 * index at construction time.
 *
 * The all-ones pattern of the chosen width encodes the kNone
 * sentinel (the 32-bit kNone of the wide planes maps to it on store
 * and back on load).  Width selection requires max_index < mask, so
 * a legitimate index can never collide with the sentinel; stores are
 * branchless (v & mask does the sentinel mapping for free).
 */

#ifndef NURAPID_MEM_NARROW_PLANE_HH
#define NURAPID_MEM_NARROW_PLANE_HH

#include <cstdint>
#include <cstring>
#include <vector>

namespace nurapid {

class NarrowPlane
{
  public:
    /** Matches DataArray::kNoFrame: call sites keep comparing
     *  against the wide sentinel unchanged. */
    static constexpr std::uint32_t kNone = 0xffffffffu;

    NarrowPlane() = default;

    /** @p max_index is the largest legitimate value ever stored
     *  (0 = unknown, forces the full 4-byte width). */
    void
    init(std::size_t size, std::uint32_t max_index, std::uint32_t fill_value)
    {
        if (max_index != 0 && max_index < 0xFFu)
            width_ = 1;
        else if (max_index != 0 && max_index < 0xFFFFu)
            width_ = 2;
        else
            width_ = 4;
        mask_ = width_ == 4 ? 0xffffffffu
                            : ((std::uint32_t{1} << (width_ * 8)) - 1);
        data_.assign(size * width_, 0);
        for (std::size_t i = 0; i < size; ++i)
            set(i, fill_value);
    }

    std::uint32_t
    get(std::size_t i) const
    {
        std::uint32_t v = 0;
        switch (width_) {
          case 1:
            v = data_[i];
            break;
          case 2: {
            std::uint16_t t;
            std::memcpy(&t, &data_[i * 2], 2);
            v = t;
            break;
          }
          default:
            std::memcpy(&v, &data_[i * 4], 4);
            break;
        }
        return v == mask_ ? kNone : v;
    }

    void
    set(std::size_t i, std::uint32_t v)
    {
        // kNone & mask == mask, so the sentinel maps branchlessly.
        v &= mask_;
        switch (width_) {
          case 1:
            data_[i] = static_cast<std::uint8_t>(v);
            break;
          case 2: {
            const std::uint16_t t = static_cast<std::uint16_t>(v);
            std::memcpy(&data_[i * 2], &t, 2);
            break;
          }
          default:
            std::memcpy(&data_[i * 4], &v, 4);
            break;
        }
    }

    std::uint32_t widthBytes() const { return width_; }
    std::size_t bytes() const { return data_.size(); }
    const std::uint8_t *raw() const { return data_.data(); }

  private:
    std::vector<std::uint8_t> data_;
    std::uint32_t width_ = 4;
    std::uint32_t mask_ = 0xffffffffu;
};

} // namespace nurapid

#endif // NURAPID_MEM_NARROW_PLANE_HH
