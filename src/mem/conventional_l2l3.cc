#include "mem/conventional_l2l3.hh"

#include "common/logging.hh"

namespace nurapid {

ConventionalL2L3::ConventionalL2L3(const SramMacroModel &model,
                                   const Params &params)
    : p(params), l2Cache(p.l2), l3Cache(p.l3), mem(p.memory),
      l2Timing(makeUniformTiming(model, p.l2.capacity_bytes, p.l2.assoc,
                                 p.l2.block_bytes, /*sequential=*/true, 1,
                                 p.l2_latency)),
      l3Timing(makeUniformTiming(model, p.l3.capacity_bytes, p.l3.assoc,
                                 p.l3.block_bytes, /*sequential=*/true, 1,
                                 p.l3_latency)),
      statGroup(orgName)
{
    statGroup.addCounter("accesses", statAccesses);
    statGroup.addCounter("l2_hits", statL2Hits);
    statGroup.addCounter("l3_hits", statL3Hits);
    statGroup.addCounter("memory_fills", statMemFills);
}

LowerMemory::Result
ConventionalL2L3::access(Addr addr, AccessType type, Cycle now)
{
    if (type == AccessType::Writeback) {
        // L1 dirty eviction: absorb into L2 (write-allocate), push any
        // L2 victim into L3. Off the critical path.
        Result result;
        result.latency = 0;
        result.hit = true;
        if (obsSink) [[unlikely]]
            obsSink->writeback(now, addr);
        cacheEnergy.chargeWriteback(l2Timing.write_nj);
        auto r = l2Cache.access(addr, /*is_write=*/true);
        if (r.evicted && r.evicted_dirty) {
            cacheEnergy.chargeSwap(l3Timing.write_nj);
            auto r3 = l3Cache.access(r.evicted_addr, true);
            if (r3.evicted && !l2Cache.contains(r3.evicted_addr)) {
                // The L3 victim leaves the hierarchy unless a (non-
                // inclusive) L2 copy keeps it on chip.
                recordEviction(result, r3.evicted_addr, r3.evicted_dirty,
                               now);
                if (r3.evicted_dirty)
                    mem.write(p.l3.block_bytes);
            }
        } else if (r.evicted && !l3Cache.contains(r.evicted_addr)) {
            // Clean L2 victims are dropped, not pushed into L3.
            recordEviction(result, r.evicted_addr, false, now);
        }
        return result;
    }

    const bool is_write = type == AccessType::Write;
    ++statAccesses;
    Result result;

    cacheEnergy.chargeData(0, is_write ? l2Timing.write_nj
                                       : l2Timing.read_nj);
    auto r2 = l2Cache.access(addr, is_write);
    // The demand L3 lookup logically precedes the victim writeback: if
    // the victim's allocation below displaces the demanded block from
    // its shared L3 set, the block was still resident when the lookup
    // started, so the access must resolve as an L3 hit. Capture that
    // residency before the push; the miss-path probe then re-allocates
    // the block MRU, which is the state a lookup-first ordering leaves.
    const bool l3_resident_at_lookup =
        !r2.hit && r2.evicted && r2.evicted_dirty &&
        l3Cache.contains(addr);
    if (r2.evicted && r2.evicted_dirty) {
        // Non-inclusive hierarchy: L2 victims are allocated into L3.
        cacheEnergy.chargeSwap(l3Timing.write_nj);
        auto wb = l3Cache.access(r2.evicted_addr, true);
        if (wb.evicted && !l2Cache.contains(wb.evicted_addr)) {
            recordEviction(result, wb.evicted_addr, wb.evicted_dirty, now);
            if (wb.evicted_dirty)
                mem.write(p.l3.block_bytes);
        }
    } else if (r2.evicted && !l3Cache.contains(r2.evicted_addr)) {
        recordEviction(result, r2.evicted_addr, false, now);
    }
    if (r2.hit) {
        ++statL2Hits;
        regionHist.sample(0);
        result.hit = true;
        result.latency = p.l2_latency;
        if (obsSink) [[unlikely]]
            obsSink->hit(now, addr, 0, result.latency);
        return result;
    }

    cacheEnergy.chargeData(1, l3Timing.read_nj);
    auto r3 = l3Cache.access(addr, is_write);
    if (r3.evicted && !l2Cache.contains(r3.evicted_addr)) {
        recordEviction(result, r3.evicted_addr, r3.evicted_dirty, now);
        if (r3.evicted_dirty)
            mem.write(p.l3.block_bytes);
    } else if (r3.evicted && r3.evicted_dirty) {
        mem.write(p.l3.block_bytes);
    }
    if (r3.hit || l3_resident_at_lookup) {
        ++statL3Hits;
        regionHist.sample(1);
        // The L3 probe overlaps the tail of the L2 lookup (pipelined
        // lookup), so an L3 hit costs the L3's uniform access time.
        result.hit = true;
        result.latency = p.l3_latency;
        if (obsSink) [[unlikely]]
            obsSink->hit(now, addr, 1, result.latency);
        return result;
    }

    ++statMemFills;
    result.hit = false;
    // Sequential tag-data access: the miss is known after the tag-only
    // probes of both levels, well before a full data access would have
    // completed.
    result.latency = l2Timing.tag_latency + l3Timing.tag_latency +
        mem.read(p.l3.block_bytes);
    if (obsSink) [[unlikely]]
        obsSink->miss(now, addr, result.latency);
    return result;
}

EnergyNJ
ConventionalL2L3::dynamicEnergyNJ() const
{
    return cacheEnergy.total_nj + mem.dynamicEnergyNJ();
}

void
ConventionalL2L3::resetStats()
{
    statGroup.resetAll();
    l2Cache.stats().resetAll();
    l3Cache.stats().resetAll();
    mem.resetStats();
    regionHist.reset();
    cacheEnergy.reset();
}

} // namespace nurapid
