/**
 * @file
 * A generic behavioral set-associative cache.
 *
 * Used for the L1 I/D caches, the conventional baseline's L2 and L3,
 * and the per-bank tag state of the D-NUCA model. Tracks tags, valid
 * and dirty bits only (this is a performance/energy simulator; no data
 * payloads are stored).
 *
 * The replacement policy is embedded rather than held behind the
 * polymorphic Replacer interface: access() sits inside the simulator's
 * per-reference loop (every L1 I/D reference lands here), so the
 * policy update must inline into it. LRU uses an intrusive
 * doubly-linked chain per set (MRU at head, victim at tail) — exactly
 * equivalent to stamp-based LRU because victim() is only consulted
 * when every way is valid and stamps are globally unique, so there are
 * no ties for a chain order to break differently. Tree-PLRU and
 * Random mirror the Replacer implementations bit for bit.
 */

#ifndef NURAPID_MEM_SET_ASSOC_CACHE_HH
#define NURAPID_MEM_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/replacement.hh"
#include "sim/audit/audit.hh"

namespace nurapid {

/** Static organization of a SetAssocCache. */
struct CacheOrg
{
    std::string name = "cache";
    std::uint64_t capacity_bytes = 0;
    std::uint32_t assoc = 1;
    std::uint32_t block_bytes = 64;
    ReplPolicy repl = ReplPolicy::LRU;
    std::uint64_t repl_seed = 1;

    std::uint32_t numSets() const;
    std::uint32_t numBlocks() const;
};

class SetAssocCache
{
  public:
    /** Outcome of one access (state already updated when returned). */
    struct Access
    {
        bool hit = false;
        std::uint32_t way = 0;       //!< way hit or filled
        bool evicted = false;        //!< a valid block was displaced
        Addr evicted_addr = kInvalidAddr;
        bool evicted_dirty = false;
    };

    explicit SetAssocCache(const CacheOrg &org);

    /**
     * Performs a demand access: on a miss the block is allocated
     * (write-allocate) and the displaced victim, if any, is reported.
     * The hit scan is defined here so it inlines into the callers'
     * per-reference loops; the fill path lives out of line.
     */
    Access
    access(Addr addr, bool is_write)
    {
        const std::uint32_t set = setIndex(addr);
        const Addr tag = tagOf(addr);

        for (std::uint32_t w = 0; w < organization.assoc; ++w) {
            Line &l = line(set, w);
            if (l.valid && l.tag == tag) {
                ++statHits;
                touchRepl(set, w);
                if (is_write)
                    l.dirty = true;
                Access result;
                result.hit = true;
                result.way = w;
                return result;
            }
        }
        return accessMiss(set, tag, is_write);
    }

    /** Looks up @p addr without changing any state. */
    bool contains(Addr addr) const;

    /** Marks @p addr dirty if present (e.g. writeback arriving). */
    bool markDirty(Addr addr);

    /** Invalidates @p addr; returns true if it was present and dirty. */
    bool invalidate(Addr addr);

    const CacheOrg &org() const { return organization; }
    StatGroup &stats() { return statGroup; }
    const StatGroup &stats() const { return statGroup; }

    std::uint64_t hits() const { return statHits.value(); }
    std::uint64_t misses() const { return statMisses.value(); }
    double missRatio() const;

    /** Folds precomputed access outcomes into the counters without
     *  touching the tag or replacement state — the distilled-replay
     *  path (trace/distilled_trace.hh) already ran this cache over the
     *  stream once at distillation time. */
    void
    foldStats(std::uint64_t fold_hits, std::uint64_t fold_misses,
              std::uint64_t fold_evictions, std::uint64_t fold_writebacks)
    {
        statHits += fold_hits;
        statMisses += fold_misses;
        statEvictions += fold_evictions;
        statWritebacks += fold_writebacks;
    }

    /** Set index of an address (exposed for hot-set analyses). Block
     *  size and set count are enforced powers of two, so the index
     *  math is shifts — no per-access integer division. */
    std::uint32_t
    setIndex(Addr addr) const
    {
        return static_cast<std::uint32_t>(
            (addr >> blockShift) & (sets - 1));
    }

    /** Calls @p fn(block_addr, dirty) for every valid line. */
    void forEachValid(const std::function<void(Addr, bool)> &fn) const;

    /** Count of valid lines. */
    std::uint64_t validCount() const;

    /**
     * Audits tag-store integrity: no set holds two valid lines with
     * the same tag (a duplicate silently halves effective capacity and
     * makes hit way selection order-dependent), and under LRU each
     * set's recency chain is a consistent permutation of its ways.
     * Violations go to @p sink under component name "<org name>";
     * returns true if clean.
     */
    bool audit(AuditSink &sink) const;

  private:
    /** Tag state with the LRU chain node embedded: a hit touches one
     *  array entry for both the tag match and the recency splice
     *  instead of spreading them over two vectors. The chain fields
     *  are way indices within the line's set; they are only
     *  maintained under ReplPolicy::LRU. */
    struct Line
    {
        Addr tag = 0;
        std::uint32_t prev = 0;
        std::uint32_t next = 0;
        bool valid = false;
        bool dirty = false;
    };

    Addr tagOf(Addr addr) const { return addr >> tagShift; }

    Line &
    line(std::uint32_t set, std::uint32_t way)
    {
        return lines[std::size_t{set} * organization.assoc + way];
    }

    /** Miss path of access(): victim selection and fill. */
    Access accessMiss(std::uint32_t set, Addr tag, bool is_write);

    /** Records a hit or fill on (set, way) in the embedded policy. */
    void
    touchRepl(std::uint32_t set, std::uint32_t way)
    {
        switch (organization.repl) {
          case ReplPolicy::LRU:
            lruTouch(set, way);
            break;
          case ReplPolicy::TreePLRU:
            plruTouch(set, way);
            break;
          case ReplPolicy::Random:
            break;
        }
    }

    /** Nominates a victim in a fully valid @p set. */
    std::uint32_t
    victimWay(std::uint32_t set)
    {
        switch (organization.repl) {
          case ReplPolicy::LRU:
            return lruTail[set];
          case ReplPolicy::TreePLRU:
            return plruVictim(set);
          case ReplPolicy::Random:
            return replRng.below(organization.assoc);
        }
        return 0;
    }

    /** Moves @p way to the MRU end of its set's chain. */
    void
    lruTouch(std::uint32_t set, std::uint32_t way)
    {
        if (lruHead[set] == way)
            return;
        const std::size_t base = std::size_t{set} * organization.assoc;
        Line &n = lines[base + way];
        // Unlink (way is not head, so it has a live prev).
        lines[base + n.prev].next = n.next;
        if (lruTail[set] == way)
            lruTail[set] = n.prev;
        else
            lines[base + n.next].prev = n.prev;
        // Relink at head.
        n.next = lruHead[set];
        lines[base + lruHead[set]].prev = way;
        lruHead[set] = way;
    }

    void
    plruTouch(std::uint32_t set, std::uint32_t way)
    {
        // Walk from the root towards the touched leaf, pointing every
        // node *away* from the path taken.
        const std::size_t base = std::size_t{set} * plruNodesPerSet;
        std::uint32_t node = 0;
        std::uint32_t lo = 0;
        std::uint32_t hi = organization.assoc;
        while (hi - lo > 1) {
            const std::uint32_t mid = (lo + hi) / 2;
            const bool went_right = way >= mid;
            plruTree[base + node] =
                static_cast<std::uint8_t>(!went_right);
            node = 2 * node + (went_right ? 2 : 1);
            if (went_right)
                lo = mid;
            else
                hi = mid;
        }
    }

    std::uint32_t
    plruVictim(std::uint32_t set) const
    {
        const std::size_t base = std::size_t{set} * plruNodesPerSet;
        std::uint32_t node = 0;
        std::uint32_t lo = 0;
        std::uint32_t hi = organization.assoc;
        while (hi - lo > 1) {
            const std::uint32_t mid = (lo + hi) / 2;
            const bool go_right = plruTree[base + node] != 0;
            node = 2 * node + (go_right ? 2 : 1);
            if (go_right)
                lo = mid;
            else
                hi = mid;
        }
        return lo;
    }

    CacheOrg organization;
    std::uint32_t sets;
    unsigned blockShift = 0;  //!< log2(block_bytes)
    unsigned tagShift = 0;    //!< log2(block_bytes * sets)
    std::vector<Line> lines;  //!< [set * assoc + way]

    // Embedded replacement state (only the active policy's vectors are
    // populated; the LRU chain itself lives inside Line).
    std::vector<std::uint32_t> lruHead;  //!< MRU way per set
    std::vector<std::uint32_t> lruTail;  //!< LRU way per set
    std::uint32_t plruNodesPerSet = 0;
    std::vector<std::uint8_t> plruTree;  //!< [set * nodesPerSet + node]
    Rng replRng;

    StatGroup statGroup;
    Counter statHits;
    Counter statMisses;
    Counter statEvictions;
    Counter statWritebacks;
};

} // namespace nurapid

#endif // NURAPID_MEM_SET_ASSOC_CACHE_HH
