/**
 * @file
 * A generic behavioral set-associative cache.
 *
 * Used for the L1 I/D caches, the conventional baseline's L2 and L3,
 * and the per-bank tag state of the D-NUCA model. Tracks tags, valid
 * and dirty bits only (this is a performance/energy simulator; no data
 * payloads are stored).
 *
 * Hot state is laid out structure-of-arrays: one contiguous
 * std::uint64_t tag plane (rows padded to a power-of-two stride), one
 * valid and one dirty bitmap word per set, and a packed exact-LRU
 * rank plane (mem/rank_plane.hh) — the probe path touches one dense
 * row plus three words instead of walking an array of per-Line
 * records. The tag compare itself is the vectorized kernel of
 * mem/tag_probe.hh. Associativity is capped at 64 so one bitmap word
 * always covers a set.
 *
 * The replacement policy is embedded rather than held behind the
 * polymorphic Replacer interface: access() sits inside the simulator's
 * per-reference loop (every L1 I/D reference lands here), so the
 * policy update must inline into it. LRU keeps a per-set permutation
 * of way ranks (rank 0 = MRU, max rank = victim) — exactly equivalent
 * to chain- or stamp-based LRU because ranks are always distinct, so
 * there are no ties for an encoding to break differently. Tree-PLRU
 * and Random mirror the Replacer implementations bit for bit.
 */

#ifndef NURAPID_MEM_SET_ASSOC_CACHE_HH
#define NURAPID_MEM_SET_ASSOC_CACHE_HH

#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/rank_plane.hh"
#include "mem/replacement.hh"
#include "mem/tag_probe.hh"
#include "sim/audit/audit.hh"

namespace nurapid {

/** Static organization of a SetAssocCache. */
struct CacheOrg
{
    std::string name = "cache";
    std::uint64_t capacity_bytes = 0;
    std::uint32_t assoc = 1;
    std::uint32_t block_bytes = 64;
    ReplPolicy repl = ReplPolicy::LRU;
    std::uint64_t repl_seed = 1;

    std::uint32_t numSets() const;
    std::uint32_t numBlocks() const;
};

class SetAssocCache
{
  public:
    /** Outcome of one access (state already updated when returned). */
    struct Access
    {
        bool hit = false;
        std::uint32_t way = 0;       //!< way hit or filled
        bool evicted = false;        //!< a valid block was displaced
        Addr evicted_addr = kInvalidAddr;
        bool evicted_dirty = false;
    };

    explicit SetAssocCache(const CacheOrg &org);

    /**
     * Performs a demand access: on a miss the block is allocated
     * (write-allocate) and the displaced victim, if any, is reported.
     * The hit scan is defined here so it inlines into the callers'
     * per-reference loops; the fill path lives out of line.
     */
    Access
    access(Addr addr, bool is_write)
    {
        const std::uint32_t set = setIndex(addr);
        const Addr tag = tagOf(addr);

        const std::uint64_t match =
            probeMatch(&tagPlane[rowOf(set)], wayStride, tag) &
            validBits[set];
        if (match) {
            const auto w = static_cast<std::uint32_t>(
                std::countr_zero(match));
            ++cnt.hits;
            touchRepl(set, w);
            if (is_write)
                dirtyBits[set] |= std::uint64_t{1} << w;
            Access result;
            result.hit = true;
            result.way = w;
            return result;
        }
        return accessMiss(set, tag, is_write);
    }

    /** Looks up @p addr without changing any state. */
    bool contains(Addr addr) const;

    /** Marks @p addr dirty if present (e.g. writeback arriving). */
    bool markDirty(Addr addr);

    /** Invalidates @p addr; returns true if it was present and dirty. */
    bool invalidate(Addr addr);

    const CacheOrg &org() const { return organization; }
    StatGroup &stats() { return statGroup; }
    const StatGroup &stats() const { return statGroup; }

    std::uint64_t hits() const { return cnt.hits.value(); }
    std::uint64_t misses() const { return cnt.misses.value(); }
    double missRatio() const;

    /** Folds precomputed access outcomes into the counters without
     *  touching the tag or replacement state — the distilled-replay
     *  path (trace/distilled_trace.hh) already ran this cache over the
     *  stream once at distillation time. */
    void
    foldStats(std::uint64_t fold_hits, std::uint64_t fold_misses,
              std::uint64_t fold_evictions, std::uint64_t fold_writebacks)
    {
        cnt.hits += fold_hits;
        cnt.misses += fold_misses;
        cnt.evictions += fold_evictions;
        cnt.writebacks += fold_writebacks;
    }

    /** Set index of an address (exposed for hot-set analyses). Block
     *  size and set count are enforced powers of two, so the index
     *  math is shifts — no per-access integer division. */
    std::uint32_t
    setIndex(Addr addr) const
    {
        return static_cast<std::uint32_t>(
            (addr >> blockShift) & (sets - 1));
    }

    /** Calls @p fn(block_addr, dirty) for every valid line. */
    void forEachValid(const std::function<void(Addr, bool)> &fn) const;

    /** Count of valid lines. */
    std::uint64_t validCount() const;

    /**
     * Audits tag-store integrity: no set holds two valid lines with
     * the same tag (a duplicate silently halves effective capacity and
     * makes hit way selection order-dependent), and under LRU each
     * set's recency chain is a consistent permutation of its ways.
     * Violations go to @p sink under component name "<org name>";
     * returns true if clean. Allocation-free on the clean path.
     */
    bool audit(AuditSink &sink) const;

    /** Hints the upcoming access's hot plane lines into cache:
     *  the tag row, the valid bitmap word, and (under LRU) the rank
     *  word. Pure prefetch — no architectural state changes. */
    void
    prefetchHotLines(Addr addr) const
    {
        const std::uint32_t set = setIndex(addr);
        __builtin_prefetch(&tagPlane[rowOf(set)], 0, 3);
        __builtin_prefetch(&validBits[set], 0, 3);
        if (organization.repl == ReplPolicy::LRU)
            __builtin_prefetch(lruRanks.setWords(set), 1, 3);
    }

    /** Bytes of per-reference hot state (planes + bitmaps), the
     *  currency of the gang scheduler's footprint budget. */
    std::size_t
    hotBytes() const
    {
        return (tagPlane.size() + validBits.size() + dirtyBits.size()) *
                   sizeof(std::uint64_t) +
               lruRanks.bytes() + plruTree.size();
    }

  private:
    Addr tagOf(Addr addr) const { return addr >> tagShift; }

    /** First word of @p set's row in the way-indexed planes. */
    std::size_t
    rowOf(std::uint32_t set) const
    {
        return std::size_t{set} << strideShift;
    }

    /** Miss path of access(): victim selection and fill. */
    Access accessMiss(std::uint32_t set, Addr tag, bool is_write);

    /** Records a hit or fill on (set, way) in the embedded policy. */
    void
    touchRepl(std::uint32_t set, std::uint32_t way)
    {
        switch (organization.repl) {
          case ReplPolicy::LRU:
            lruRanks.touch(set, way);
            break;
          case ReplPolicy::TreePLRU:
            plruTouch(set, way);
            break;
          case ReplPolicy::Random:
            break;
        }
    }

    /** Nominates a victim in a fully valid @p set. */
    std::uint32_t
    victimWay(std::uint32_t set)
    {
        switch (organization.repl) {
          case ReplPolicy::LRU:
            return lruRanks.lruWay(set);
          case ReplPolicy::TreePLRU:
            return plruVictim(set);
          case ReplPolicy::Random:
            return replRng.below(organization.assoc);
        }
        return 0;
    }

    void
    plruTouch(std::uint32_t set, std::uint32_t way)
    {
        // Walk from the root towards the touched leaf, pointing every
        // node *away* from the path taken.
        const std::size_t base = std::size_t{set} * plruNodesPerSet;
        std::uint32_t node = 0;
        std::uint32_t lo = 0;
        std::uint32_t hi = organization.assoc;
        while (hi - lo > 1) {
            const std::uint32_t mid = (lo + hi) / 2;
            const bool went_right = way >= mid;
            plruTree[base + node] =
                static_cast<std::uint8_t>(!went_right);
            node = 2 * node + (went_right ? 2 : 1);
            if (went_right)
                lo = mid;
            else
                hi = mid;
        }
    }

    std::uint32_t
    plruVictim(std::uint32_t set) const
    {
        const std::size_t base = std::size_t{set} * plruNodesPerSet;
        std::uint32_t node = 0;
        std::uint32_t lo = 0;
        std::uint32_t hi = organization.assoc;
        while (hi - lo > 1) {
            const std::uint32_t mid = (lo + hi) / 2;
            const bool go_right = plruTree[base + node] != 0;
            node = 2 * node + (go_right ? 2 : 1);
            if (go_right)
                lo = mid;
            else
                hi = mid;
        }
        return lo;
    }

    CacheOrg organization;
    std::uint32_t sets;
    unsigned blockShift = 0;   //!< log2(block_bytes)
    unsigned tagShift = 0;     //!< log2(block_bytes * sets)
    std::uint32_t wayStride = 1;  //!< pow2 plane row width >= assoc
    unsigned strideShift = 0;     //!< log2(wayStride)
    std::uint64_t waysMask = 0;   //!< low assoc bits set

    // Structure-of-arrays tag state: [set << strideShift | way] planes
    // plus one bitmap word per set.
    std::vector<std::uint64_t> tagPlane;
    std::vector<std::uint64_t> validBits;  //!< [set]
    std::vector<std::uint64_t> dirtyBits;  //!< [set]

    // Embedded replacement state (only the active policy's planes are
    // populated). LRU is a packed per-set rank permutation.
    RankPlane lruRanks;
    std::uint32_t plruNodesPerSet = 0;
    std::vector<std::uint8_t> plruTree;  //!< [set * nodesPerSet + node]
    Rng replRng;

    StatGroup statGroup;
    /** Counters grouped into one cache line so a gang lane's stat
     *  updates dirty a single line instead of four scattered ones. */
    struct alignas(64) Counters
    {
        Counter hits;
        Counter misses;
        Counter evictions;
        Counter writebacks;
    };
    Counters cnt;
};

} // namespace nurapid

#endif // NURAPID_MEM_SET_ASSOC_CACHE_HH
