/**
 * @file
 * A generic behavioral set-associative cache.
 *
 * Used for the L1 I/D caches, the conventional baseline's L2 and L3,
 * and the per-bank tag state of the D-NUCA model. Tracks tags, valid
 * and dirty bits only (this is a performance/energy simulator; no data
 * payloads are stored).
 */

#ifndef NURAPID_MEM_SET_ASSOC_CACHE_HH
#define NURAPID_MEM_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/replacement.hh"
#include "sim/audit/audit.hh"

namespace nurapid {

/** Static organization of a SetAssocCache. */
struct CacheOrg
{
    std::string name = "cache";
    std::uint64_t capacity_bytes = 0;
    std::uint32_t assoc = 1;
    std::uint32_t block_bytes = 64;
    ReplPolicy repl = ReplPolicy::LRU;
    std::uint64_t repl_seed = 1;

    std::uint32_t numSets() const;
    std::uint32_t numBlocks() const;
};

class SetAssocCache
{
  public:
    /** Outcome of one access (state already updated when returned). */
    struct Access
    {
        bool hit = false;
        std::uint32_t way = 0;       //!< way hit or filled
        bool evicted = false;        //!< a valid block was displaced
        Addr evicted_addr = kInvalidAddr;
        bool evicted_dirty = false;
    };

    explicit SetAssocCache(const CacheOrg &org);

    /**
     * Performs a demand access: on a miss the block is allocated
     * (write-allocate) and the displaced victim, if any, is reported.
     */
    Access access(Addr addr, bool is_write);

    /** Looks up @p addr without changing any state. */
    bool contains(Addr addr) const;

    /** Marks @p addr dirty if present (e.g. writeback arriving). */
    bool markDirty(Addr addr);

    /** Invalidates @p addr; returns true if it was present and dirty. */
    bool invalidate(Addr addr);

    const CacheOrg &org() const { return organization; }
    StatGroup &stats() { return statGroup; }
    const StatGroup &stats() const { return statGroup; }

    std::uint64_t hits() const { return statHits.value(); }
    std::uint64_t misses() const { return statMisses.value(); }
    double missRatio() const;

    /** Set index of an address (exposed for hot-set analyses). */
    std::uint32_t setIndex(Addr addr) const;

    /** Calls @p fn(block_addr, dirty) for every valid line. */
    void forEachValid(const std::function<void(Addr, bool)> &fn) const;

    /** Count of valid lines. */
    std::uint64_t validCount() const;

    /**
     * Audits tag-store integrity: no set holds two valid lines with the
     * same tag (a duplicate silently halves effective capacity and
     * makes hit way selection order-dependent). Violations go to
     * @p sink under component name "<org name>"; returns true if clean.
     */
    bool audit(AuditSink &sink) const;

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
    };

    Addr tagOf(Addr addr) const;
    Line &line(std::uint32_t set, std::uint32_t way);

    CacheOrg organization;
    std::uint32_t sets;
    std::vector<Line> lines;  //!< [set * assoc + way]
    std::unique_ptr<Replacer> replacer;

    StatGroup statGroup;
    Counter statHits;
    Counter statMisses;
    Counter statEvictions;
    Counter statWritebacks;
};

} // namespace nurapid

#endif // NURAPID_MEM_SET_ASSOC_CACHE_HH
