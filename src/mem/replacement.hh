/**
 * @file
 * Replacement policies for set-associative tag/data stores.
 *
 * The paper uses LRU for data replacement (Section 2.4.2) and contrasts
 * random vs true-LRU for distance replacement. Tree-PLRU is included as
 * the usual hardware-realizable approximation (Section 2.4.2 notes
 * true LRU is O(n^2) hardware in the number of tracked elements [12]).
 */

#ifndef NURAPID_MEM_REPLACEMENT_HH
#define NURAPID_MEM_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hh"

namespace nurapid {

enum class ReplPolicy : std::uint8_t { LRU, Random, TreePLRU };

constexpr const char *
replPolicyName(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::LRU: return "lru";
      case ReplPolicy::Random: return "random";
      case ReplPolicy::TreePLRU: return "tree-plru";
    }
    return "unknown";
}

/**
 * Per-set replacement-state tracker. The cache reports touches and
 * fills; victim() nominates a way when the set is full (the cache
 * prefers invalid ways itself and only consults victim() otherwise).
 */
class Replacer
{
  public:
    virtual ~Replacer() = default;

    /** Records a hit on (set, way). */
    virtual void touch(std::uint32_t set, std::uint32_t way) = 0;

    /** Records a fill into (set, way); defaults to touch(). */
    virtual void
    fill(std::uint32_t set, std::uint32_t way)
    {
        touch(set, way);
    }

    /** Nominates the victim way in @p set. */
    virtual std::uint32_t victim(std::uint32_t set) = 0;

    /** Factory. @p seed only matters for Random. */
    static std::unique_ptr<Replacer> create(ReplPolicy policy,
                                            std::uint32_t sets,
                                            std::uint32_t ways,
                                            std::uint64_t seed = 1);
};

/** True LRU via monotonic access stamps (exact, O(ways) victim scan). */
class LruReplacer : public Replacer
{
  public:
    LruReplacer(std::uint32_t sets, std::uint32_t ways);

    void touch(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set) override;

    /** Ordering helper for tests: true iff way a is older than way b. */
    bool older(std::uint32_t set, std::uint32_t a, std::uint32_t b) const;

  private:
    std::uint32_t nWays;
    std::uint64_t clock = 0;
    std::vector<std::uint64_t> stamps;  //!< [set * ways + way]
};

/** Uniform-random victim selection (deterministic under a fixed seed). */
class RandomReplacer : public Replacer
{
  public:
    RandomReplacer(std::uint32_t ways, std::uint64_t seed);

    void touch(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set) override;

  private:
    std::uint32_t nWays;
    Rng rng;
};

/** Classic binary-tree pseudo-LRU (ways must be a power of two). */
class TreePlruReplacer : public Replacer
{
  public:
    TreePlruReplacer(std::uint32_t sets, std::uint32_t ways);

    void touch(std::uint32_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint32_t set) override;

  private:
    std::uint32_t nWays;
    std::uint32_t nodesPerSet;
    std::vector<bool> tree;  //!< [set * nodesPerSet + node]
};

} // namespace nurapid

#endif // NURAPID_MEM_REPLACEMENT_HH
