#include "mem/replacement.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace nurapid {

std::unique_ptr<Replacer>
Replacer::create(ReplPolicy policy, std::uint32_t sets, std::uint32_t ways,
                 std::uint64_t seed)
{
    switch (policy) {
      case ReplPolicy::LRU:
        return std::make_unique<LruReplacer>(sets, ways);
      case ReplPolicy::Random:
        return std::make_unique<RandomReplacer>(ways, seed);
      case ReplPolicy::TreePLRU:
        return std::make_unique<TreePlruReplacer>(sets, ways);
    }
    panic("unknown replacement policy");
}

LruReplacer::LruReplacer(std::uint32_t sets, std::uint32_t ways)
    : nWays(ways), stamps(std::size_t{sets} * ways, 0)
{
    fatal_if(ways == 0 || sets == 0, "empty LRU replacer");
}

void
LruReplacer::touch(std::uint32_t set, std::uint32_t way)
{
    stamps[std::size_t{set} * nWays + way] = ++clock;
}

std::uint32_t
LruReplacer::victim(std::uint32_t set)
{
    const std::size_t base = std::size_t{set} * nWays;
    std::uint32_t best = 0;
    for (std::uint32_t w = 1; w < nWays; ++w) {
        if (stamps[base + w] < stamps[base + best])
            best = w;
    }
    return best;
}

bool
LruReplacer::older(std::uint32_t set, std::uint32_t a, std::uint32_t b) const
{
    const std::size_t base = std::size_t{set} * nWays;
    return stamps[base + a] < stamps[base + b];
}

RandomReplacer::RandomReplacer(std::uint32_t ways, std::uint64_t seed)
    : nWays(ways), rng(seed)
{
    fatal_if(ways == 0, "empty random replacer");
}

void
RandomReplacer::touch(std::uint32_t set, std::uint32_t way)
{
    (void)set;
    (void)way;
}

std::uint32_t
RandomReplacer::victim(std::uint32_t set)
{
    (void)set;
    return rng.below(nWays);
}

TreePlruReplacer::TreePlruReplacer(std::uint32_t sets, std::uint32_t ways)
    : nWays(ways), nodesPerSet(ways - 1),
      tree(std::size_t{sets} * (ways - 1), false)
{
    fatal_if(!isPowerOf2(ways) || ways < 2,
             "tree-PLRU needs a power-of-two way count >= 2, got %u", ways);
}

void
TreePlruReplacer::touch(std::uint32_t set, std::uint32_t way)
{
    // Walk from the root towards the touched leaf, pointing every node
    // *away* from the path taken.
    const std::size_t base = std::size_t{set} * nodesPerSet;
    std::uint32_t node = 0;
    std::uint32_t lo = 0;
    std::uint32_t hi = nWays;
    while (hi - lo > 1) {
        const std::uint32_t mid = (lo + hi) / 2;
        const bool went_right = way >= mid;
        tree[base + node] = !went_right;  // LRU hint points the other way
        node = 2 * node + (went_right ? 2 : 1);
        if (went_right)
            lo = mid;
        else
            hi = mid;
    }
}

std::uint32_t
TreePlruReplacer::victim(std::uint32_t set)
{
    const std::size_t base = std::size_t{set} * nodesPerSet;
    std::uint32_t node = 0;
    std::uint32_t lo = 0;
    std::uint32_t hi = nWays;
    while (hi - lo > 1) {
        const std::uint32_t mid = (lo + hi) / 2;
        const bool go_right = tree[base + node];
        node = 2 * node + (go_right ? 2 : 1);
        if (go_right)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

} // namespace nurapid
