/**
 * @file
 * The interface every lower-level cache organization implements.
 *
 * The CPU+L1 front end sees "everything below L1" through this one
 * interface, so the conventional L2/L3 hierarchy, D-NUCA, and NuRAPID
 * are interchangeable in the simulated system.
 */

#ifndef NURAPID_MEM_LOWER_MEMORY_HH
#define NURAPID_MEM_LOWER_MEMORY_HH

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "common/histogram.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "energy/energy_breakdown.hh"
#include "sim/audit/audit.hh"
#include "sim/obs/obs.hh"

namespace nurapid {

class LowerMemory
{
  public:
    /** A block that left the organization entirely during one access
     *  (evicted to memory or dropped clean). */
    struct Evicted
    {
        Addr addr;   //!< block-aligned address
        bool dirty;  //!< written back to memory
    };

    /** Outcome of one L1-miss access into the lower hierarchy. */
    struct Result
    {
        /** Most departures any organization can cause in one access:
         *  NuRAPID's set-LRU eviction plus a Section 2.4.3 restriction
         *  eviction; the conventional hierarchy's L2 and L3 victims. */
        static constexpr std::uint32_t kMaxEvicted = 2;

        Cycles latency = 0;  //!< cycles until data returns to L1
        bool hit = false;    //!< hit anywhere on chip below L1

        /** Blocks that left the organization during this access, in
         *  departure order — the differential oracle mirrors residency
         *  from these. A block moving *within* the organization (a
         *  demotion, an L2 victim caught by the L3) is not reported. */
        /** Only the first num_evicted entries are meaningful; the rest
         *  stay uninitialized so the hot path never pays for them. */
        std::uint8_t num_evicted = 0;
        std::array<Evicted, kMaxEvicted> evicted;

        void noteEvicted(Addr addr, bool dirty)
        {
            panic_if(num_evicted >= kMaxEvicted,
                     "more than %u evictions in one access", kMaxEvicted);
            evicted[num_evicted++] = Evicted{addr, dirty};
        }
    };

    /** Callback for forEachResident: block-aligned address + dirty. */
    using ResidentFn = std::function<void(Addr, bool)>;

    virtual ~LowerMemory() = default;

    /**
     * Performs one access at time @p now; @p addr need not be aligned.
     * Writebacks complete off the critical path (latency still models
     * any port/bank occupancy they caused).
     */
    virtual Result access(Addr addr, AccessType type, Cycle now) = 0;

    /** Total dynamic energy consumed so far (caches + any memory the
     *  organization itself touched are accounted by the owner). */
    virtual EnergyNJ dynamicEnergyNJ() const = 0;

    /** On-chip (cache-only) dynamic energy — the paper's "L2 cache
     *  energy" metric excludes DRAM. */
    virtual EnergyNJ cacheEnergyNJ() const = 0;

    /** Per-component view of cacheEnergyNJ() for the observability
     *  timeline (its total_nj IS the cacheEnergyNJ() accumulator).
     *  Null for organizations without a breakdown (toy caches, the
     *  oracle) — the timeline then omits the energy series. */
    virtual const EnergyBreakdown *energyBreakdown() const
    {
        return nullptr;
    }

    /** Organization name for reports. */
    virtual const std::string &name() const = 0;

    /** Statistics registry. */
    virtual StatGroup &stats() = 0;
    virtual const StatGroup &stats() const = 0;

    /**
     * Distribution of *hits* across latency regions (d-groups for
     * NuRAPID, bank rows for D-NUCA, levels for the conventional
     * hierarchy). Used by the Figure 4/5/7 benches.
     */
    virtual const Histogram &regionHits() const = 0;

    /** Zeroes statistics after cache warmup. */
    virtual void resetStats() = 0;

    /**
     * Enumerates every block currently resident in the organization.
     * The conventional hierarchy may report a block twice (L2 and L3
     * copies); single-residence organizations report each block once.
     * Test/audit path — not called during simulation.
     */
    virtual void forEachResident(const ResidentFn &fn) const = 0;

    /**
     * Checks the organization's structural invariants, reporting every
     * violation to @p sink with full (set, way, d-group, frame)
     * context. Always compiled; the fuzzer and tests call it directly.
     * Returns true when no violation was reported.
     */
    virtual bool audit(AuditSink &sink) const = 0;

    /**
     * Attaches (or detaches, with nullptr) a flight-recorder event
     * sink. The organizations' hot paths carry always-compiled hooks
     * that cost one predictably-not-taken branch while detached; the
     * sink is thread-confined, so attach only the owning run's sink.
     */
    void attachObserver(EventSink *sink) { obsSink = sink; }

    /**
     * Instantaneous valid-block count per latency region (same region
     * axis as regionHits()). Default: no occupancy series — the
     * observability timeline then omits it. Snapshot path, not called
     * during simulation unless an interval recorder is attached.
     */
    virtual void regionOccupancy(std::vector<std::uint64_t> &out) const
    {
        out.clear();
    }

    /**
     * Stream-lookahead prefetch hint: pull the plane lines an upcoming
     * access to @p addr will touch into the host cache. Deliberately
     * non-virtual — the devirtualized replay loops resolve the
     * concrete organization's name-hiding overload at compile time,
     * and polymorphic callers (tools, the oracle) get this free no-op.
     * Never changes simulated state, so prefetch on/off is
     * bit-identical by construction.
     */
    void prefetchHotLines(Addr) const {}

    /**
     * Bytes of host memory the organization's per-reference hot state
     * occupies (tag/rank/pointer planes, bitmaps). The gang replayer
     * tiles lanes into cohorts whose combined footprint fits the host
     * LLC budget. Default 0 = "free" (toy caches, the oracle).
     */
    virtual std::size_t hotStateBytes() const { return 0; }

  protected:
    /** Flight-recorder sink; null (the common case) when detached. */
    EventSink *obsSink = nullptr;

    /** Result::noteEvicted plus the paired flight-recorder event —
     *  every block departure the organizations report goes through
     *  here, so the event stream sees exactly what the differential
     *  oracle sees. */
    void
    recordEviction(Result &r, Addr addr, bool dirty, Cycle now)
    {
        r.noteEvicted(addr, dirty);
        if (obsSink) [[unlikely]]
            obsSink->eviction(now, addr, dirty);
    }
};

} // namespace nurapid

#endif // NURAPID_MEM_LOWER_MEMORY_HH
