/**
 * @file
 * The interface every lower-level cache organization implements.
 *
 * The CPU+L1 front end sees "everything below L1" through this one
 * interface, so the conventional L2/L3 hierarchy, D-NUCA, and NuRAPID
 * are interchangeable in the simulated system.
 */

#ifndef NURAPID_MEM_LOWER_MEMORY_HH
#define NURAPID_MEM_LOWER_MEMORY_HH

#include <string>

#include "common/histogram.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace nurapid {

class LowerMemory
{
  public:
    /** Outcome of one L1-miss access into the lower hierarchy. */
    struct Result
    {
        Cycles latency = 0;  //!< cycles until data returns to L1
        bool hit = false;    //!< hit anywhere on chip below L1
    };

    virtual ~LowerMemory() = default;

    /**
     * Performs one access at time @p now; @p addr need not be aligned.
     * Writebacks complete off the critical path (latency still models
     * any port/bank occupancy they caused).
     */
    virtual Result access(Addr addr, AccessType type, Cycle now) = 0;

    /** Total dynamic energy consumed so far (caches + any memory the
     *  organization itself touched are accounted by the owner). */
    virtual EnergyNJ dynamicEnergyNJ() const = 0;

    /** On-chip (cache-only) dynamic energy — the paper's "L2 cache
     *  energy" metric excludes DRAM. */
    virtual EnergyNJ cacheEnergyNJ() const = 0;

    /** Organization name for reports. */
    virtual const std::string &name() const = 0;

    /** Statistics registry. */
    virtual StatGroup &stats() = 0;
    virtual const StatGroup &stats() const = 0;

    /**
     * Distribution of *hits* across latency regions (d-groups for
     * NuRAPID, bank rows for D-NUCA, levels for the conventional
     * hierarchy). Used by the Figure 4/5/7 benches.
     */
    virtual const Histogram &regionHits() const = 0;

    /** Zeroes statistics after cache warmup. */
    virtual void resetStats() = 0;
};

} // namespace nurapid

#endif // NURAPID_MEM_LOWER_MEMORY_HH
