#include "mem/set_assoc_cache.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace nurapid {

std::uint32_t
CacheOrg::numSets() const
{
    return static_cast<std::uint32_t>(
        capacity_bytes / (std::uint64_t{assoc} * block_bytes));
}

std::uint32_t
CacheOrg::numBlocks() const
{
    return static_cast<std::uint32_t>(capacity_bytes / block_bytes);
}

SetAssocCache::SetAssocCache(const CacheOrg &org)
    : organization(org), sets(org.numSets()), statGroup(org.name)
{
    fatal_if(org.capacity_bytes == 0, "%s: zero capacity",
             org.name.c_str());
    fatal_if(!isPowerOf2(org.block_bytes), "%s: block size %u not pow2",
             org.name.c_str(), org.block_bytes);
    fatal_if(org.capacity_bytes %
                 (std::uint64_t{org.assoc} * org.block_bytes) != 0,
             "%s: capacity not divisible by assoc*block", org.name.c_str());
    fatal_if(!isPowerOf2(sets), "%s: set count %u not pow2",
             org.name.c_str(), sets);
    fatal_if(org.assoc == 0 || org.assoc > 64,
             "%s: associativity %u outside the bitmap-word range 1..64",
             org.name.c_str(), org.assoc);
    blockShift = floorLog2(org.block_bytes);
    tagShift = blockShift + floorLog2(sets);

    strideShift = ceilLog2(org.assoc);
    wayStride = std::uint32_t{1} << strideShift;
    waysMask = org.assoc == 64
        ? ~std::uint64_t{0}
        : (std::uint64_t{1} << org.assoc) - 1;

    tagPlane.assign(std::size_t{sets} << strideShift, 0);
    validBits.assign(sets, 0);
    dirtyBits.assign(sets, 0);

    switch (org.repl) {
      case ReplPolicy::LRU:
        // Rank each set's ways in index order; the order is arbitrary
        // (every way is touched at fill before a victim is consulted).
        lruRanks.init(sets, org.assoc);
        break;
      case ReplPolicy::TreePLRU:
        fatal_if(!isPowerOf2(org.assoc) || org.assoc < 2,
                 "tree-PLRU needs a power-of-two way count >= 2, got %u",
                 org.assoc);
        plruNodesPerSet = org.assoc - 1;
        plruTree.assign(std::size_t{sets} * plruNodesPerSet, 0);
        break;
      case ReplPolicy::Random:
        replRng.reseed(org.repl_seed);
        break;
    }

    statGroup.addCounter("hits", cnt.hits);
    statGroup.addCounter("misses", cnt.misses);
    statGroup.addCounter("evictions", cnt.evictions);
    statGroup.addCounter("writebacks", cnt.writebacks);
}

SetAssocCache::Access
SetAssocCache::accessMiss(std::uint32_t set, Addr tag, bool is_write)
{
    ++cnt.misses;

    Access result;
    // Prefer the lowest invalid way; otherwise consult the policy.
    std::uint32_t victim_way;
    const std::uint64_t invalid = ~validBits[set] & waysMask;
    if (invalid)
        victim_way = static_cast<std::uint32_t>(std::countr_zero(invalid));
    else
        victim_way = victimWay(set);

    const std::size_t row = rowOf(set);
    const std::uint64_t way_bit = std::uint64_t{1} << victim_way;
    if (validBits[set] & way_bit) {
        ++cnt.evictions;
        result.evicted = true;
        result.evicted_addr =
            (tagPlane[row + victim_way] * sets + set) *
            organization.block_bytes;
        result.evicted_dirty = (dirtyBits[set] & way_bit) != 0;
        if (result.evicted_dirty)
            ++cnt.writebacks;
    }

    tagPlane[row + victim_way] = tag;
    validBits[set] |= way_bit;
    if (is_write)
        dirtyBits[set] |= way_bit;
    else
        dirtyBits[set] &= ~way_bit;
    touchRepl(set, victim_way);

    result.way = victim_way;
    return result;
}

bool
SetAssocCache::contains(Addr addr) const
{
    const std::uint32_t set = setIndex(addr);
    return (probeMatch(&tagPlane[rowOf(set)], wayStride, tagOf(addr)) &
            validBits[set]) != 0;
}

bool
SetAssocCache::markDirty(Addr addr)
{
    const std::uint32_t set = setIndex(addr);
    const std::uint64_t match =
        probeMatch(&tagPlane[rowOf(set)], wayStride, tagOf(addr)) &
        validBits[set];
    if (!match)
        return false;
    dirtyBits[set] |= match & (~match + 1);  // lowest matching way
    return true;
}

bool
SetAssocCache::invalidate(Addr addr)
{
    const std::uint32_t set = setIndex(addr);
    const std::uint64_t match =
        probeMatch(&tagPlane[rowOf(set)], wayStride, tagOf(addr)) &
        validBits[set];
    if (!match)
        return false;
    const std::uint64_t way_bit = match & (~match + 1);
    validBits[set] &= ~way_bit;
    const bool was_dirty = (dirtyBits[set] & way_bit) != 0;
    dirtyBits[set] &= ~way_bit;
    return was_dirty;
}

void
SetAssocCache::forEachValid(const std::function<void(Addr, bool)> &fn) const
{
    for (std::uint32_t s = 0; s < sets; ++s) {
        const std::size_t row = rowOf(s);
        for (std::uint64_t vb = validBits[s]; vb; vb &= vb - 1) {
            const auto w = static_cast<std::uint32_t>(std::countr_zero(vb));
            fn((tagPlane[row + w] * sets + s) * organization.block_bytes,
               (dirtyBits[s] >> w) & 1);
        }
    }
}

std::uint64_t
SetAssocCache::validCount() const
{
    std::uint64_t n = 0;
    for (std::uint32_t s = 0; s < sets; ++s)
        n += static_cast<std::uint64_t>(std::popcount(validBits[s]));
    return n;
}

bool
SetAssocCache::audit(AuditSink &sink) const
{
    bool clean = true;
    for (std::uint32_t s = 0; s < sets; ++s) {
        const std::size_t row = rowOf(s);
        for (std::uint32_t w = 0; w < organization.assoc; ++w) {
            if (!((validBits[s] >> w) & 1))
                continue;
            for (std::uint32_t w2 = w + 1; w2 < organization.assoc; ++w2) {
                if (((validBits[s] >> w2) & 1) &&
                    tagPlane[row + w2] == tagPlane[row + w]) {
                    clean = false;
                    sink.violation({organization.name, "duplicate-tag",
                                    strprintf("tag %#llx also in way %u",
                                              static_cast<unsigned long long>(
                                                  tagPlane[row + w]), w2),
                                    s, w, AuditViolation::kNoIndex,
                                    AuditViolation::kNoIndex});
                }
            }
        }
    }

    if (organization.repl == ReplPolicy::LRU) {
        // The rank plane must hold a permutation of 0..assoc-1 per
        // set; a duplicated or out-of-range rank corrupts victim
        // choice (and voids the exact-LRU tie-free guarantee).
        for (std::uint32_t s = 0; s < sets; ++s) {
            if (!lruRanks.isPermutation(s)) {
                clean = false;
                sink.violation({organization.name, "lru-rank",
                                strprintf("set %u recency ranks are not "
                                          "a permutation of %u ways", s,
                                          organization.assoc),
                                s, AuditViolation::kNoIndex,
                                AuditViolation::kNoIndex,
                                AuditViolation::kNoIndex});
            }
        }
    }

    return clean;
}

double
SetAssocCache::missRatio() const
{
    const double total =
        static_cast<double>(cnt.hits.value() + cnt.misses.value());
    return total > 0 ? cnt.misses.value() / total : 0.0;
}

} // namespace nurapid
