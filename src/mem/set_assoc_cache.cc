#include "mem/set_assoc_cache.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace nurapid {

std::uint32_t
CacheOrg::numSets() const
{
    return static_cast<std::uint32_t>(
        capacity_bytes / (std::uint64_t{assoc} * block_bytes));
}

std::uint32_t
CacheOrg::numBlocks() const
{
    return static_cast<std::uint32_t>(capacity_bytes / block_bytes);
}

SetAssocCache::SetAssocCache(const CacheOrg &org)
    : organization(org), sets(org.numSets()),
      lines(std::size_t{sets} * org.assoc), statGroup(org.name)
{
    fatal_if(org.capacity_bytes == 0, "%s: zero capacity",
             org.name.c_str());
    fatal_if(!isPowerOf2(org.block_bytes), "%s: block size %u not pow2",
             org.name.c_str(), org.block_bytes);
    fatal_if(org.capacity_bytes %
                 (std::uint64_t{org.assoc} * org.block_bytes) != 0,
             "%s: capacity not divisible by assoc*block", org.name.c_str());
    fatal_if(!isPowerOf2(sets), "%s: set count %u not pow2",
             org.name.c_str(), sets);
    blockShift = floorLog2(org.block_bytes);
    tagShift = blockShift + floorLog2(sets);

    switch (org.repl) {
      case ReplPolicy::LRU:
        // Link each set's ways in index order; the order is arbitrary
        // (every way is touched at fill before the chain is consulted).
        lruHead.assign(sets, 0);
        lruTail.assign(sets, org.assoc - 1);
        for (std::uint32_t s = 0; s < sets; ++s) {
            const std::size_t base = std::size_t{s} * org.assoc;
            for (std::uint32_t w = 0; w < org.assoc; ++w) {
                lines[base + w].prev = w == 0 ? 0 : w - 1;
                lines[base + w].next =
                    w + 1 == org.assoc ? w : w + 1;
            }
        }
        break;
      case ReplPolicy::TreePLRU:
        fatal_if(!isPowerOf2(org.assoc) || org.assoc < 2,
                 "tree-PLRU needs a power-of-two way count >= 2, got %u",
                 org.assoc);
        plruNodesPerSet = org.assoc - 1;
        plruTree.assign(std::size_t{sets} * plruNodesPerSet, 0);
        break;
      case ReplPolicy::Random:
        replRng.reseed(org.repl_seed);
        break;
    }

    statGroup.addCounter("hits", statHits);
    statGroup.addCounter("misses", statMisses);
    statGroup.addCounter("evictions", statEvictions);
    statGroup.addCounter("writebacks", statWritebacks);
}

SetAssocCache::Access
SetAssocCache::accessMiss(std::uint32_t set, Addr tag, bool is_write)
{
    ++statMisses;

    Access result;
    // Prefer an invalid way; otherwise consult the policy.
    std::uint32_t victim_way = organization.assoc;
    for (std::uint32_t w = 0; w < organization.assoc; ++w) {
        if (!line(set, w).valid) {
            victim_way = w;
            break;
        }
    }
    if (victim_way == organization.assoc)
        victim_way = victimWay(set);

    Line &v = line(set, victim_way);
    if (v.valid) {
        ++statEvictions;
        result.evicted = true;
        result.evicted_addr =
            (v.tag * sets + set) * organization.block_bytes;
        result.evicted_dirty = v.dirty;
        if (v.dirty)
            ++statWritebacks;
    }

    v.tag = tag;
    v.valid = true;
    v.dirty = is_write;
    touchRepl(set, victim_way);

    result.way = victim_way;
    return result;
}

bool
SetAssocCache::contains(Addr addr) const
{
    const std::uint32_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (std::uint32_t w = 0; w < organization.assoc; ++w) {
        const Line &l =
            lines[std::size_t{set} * organization.assoc + w];
        if (l.valid && l.tag == tag)
            return true;
    }
    return false;
}

bool
SetAssocCache::markDirty(Addr addr)
{
    const std::uint32_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (std::uint32_t w = 0; w < organization.assoc; ++w) {
        Line &l = line(set, w);
        if (l.valid && l.tag == tag) {
            l.dirty = true;
            return true;
        }
    }
    return false;
}

bool
SetAssocCache::invalidate(Addr addr)
{
    const std::uint32_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (std::uint32_t w = 0; w < organization.assoc; ++w) {
        Line &l = line(set, w);
        if (l.valid && l.tag == tag) {
            l.valid = false;
            const bool was_dirty = l.dirty;
            l.dirty = false;
            return was_dirty;
        }
    }
    return false;
}

void
SetAssocCache::forEachValid(const std::function<void(Addr, bool)> &fn) const
{
    for (std::uint32_t s = 0; s < sets; ++s) {
        for (std::uint32_t w = 0; w < organization.assoc; ++w) {
            const Line &l = lines[std::size_t{s} * organization.assoc + w];
            if (l.valid)
                fn((l.tag * sets + s) * organization.block_bytes, l.dirty);
        }
    }
}

std::uint64_t
SetAssocCache::validCount() const
{
    std::uint64_t n = 0;
    for (const Line &l : lines)
        n += l.valid ? 1 : 0;
    return n;
}

bool
SetAssocCache::audit(AuditSink &sink) const
{
    bool clean = true;
    for (std::uint32_t s = 0; s < sets; ++s) {
        for (std::uint32_t w = 0; w < organization.assoc; ++w) {
            const Line &l = lines[std::size_t{s} * organization.assoc + w];
            if (!l.valid)
                continue;
            for (std::uint32_t w2 = w + 1; w2 < organization.assoc; ++w2) {
                const Line &o =
                    lines[std::size_t{s} * organization.assoc + w2];
                if (o.valid && o.tag == l.tag) {
                    clean = false;
                    sink.violation({organization.name, "duplicate-tag",
                                    strprintf("tag %#llx also in way %u",
                                              static_cast<unsigned long long>(
                                                  l.tag), w2),
                                    s, w, AuditViolation::kNoIndex,
                                    AuditViolation::kNoIndex});
                }
            }
        }
    }

    if (organization.repl == ReplPolicy::LRU) {
        // The recency chain must visit every way exactly once from
        // head to tail; a cycle or dropped way corrupts victim choice.
        std::vector<std::uint8_t> seen(organization.assoc);
        for (std::uint32_t s = 0; s < sets; ++s) {
            const std::size_t base = std::size_t{s} * organization.assoc;
            seen.assign(organization.assoc, 0);
            std::uint32_t w = lruHead[s];
            std::uint32_t visited = 0;
            bool broken = false;
            while (visited < organization.assoc) {
                if (w >= organization.assoc || seen[w]) {
                    broken = true;
                    break;
                }
                seen[w] = 1;
                ++visited;
                if (w == lruTail[s])
                    break;
                w = lines[base + w].next;
            }
            if (broken || visited != organization.assoc) {
                clean = false;
                sink.violation({organization.name, "lru-chain",
                                strprintf("set %u recency chain visits "
                                          "%u of %u ways", s, visited,
                                          organization.assoc),
                                s, AuditViolation::kNoIndex,
                                AuditViolation::kNoIndex,
                                AuditViolation::kNoIndex});
            }
        }
    }

    return clean;
}

double
SetAssocCache::missRatio() const
{
    const double total =
        static_cast<double>(statHits.value() + statMisses.value());
    return total > 0 ? statMisses.value() / total : 0.0;
}

} // namespace nurapid
