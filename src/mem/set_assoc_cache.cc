#include "mem/set_assoc_cache.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace nurapid {

std::uint32_t
CacheOrg::numSets() const
{
    return static_cast<std::uint32_t>(
        capacity_bytes / (std::uint64_t{assoc} * block_bytes));
}

std::uint32_t
CacheOrg::numBlocks() const
{
    return static_cast<std::uint32_t>(capacity_bytes / block_bytes);
}

SetAssocCache::SetAssocCache(const CacheOrg &org)
    : organization(org), sets(org.numSets()),
      lines(std::size_t{sets} * org.assoc),
      replacer(Replacer::create(org.repl, sets, org.assoc, org.repl_seed)),
      statGroup(org.name)
{
    fatal_if(org.capacity_bytes == 0, "%s: zero capacity",
             org.name.c_str());
    fatal_if(!isPowerOf2(org.block_bytes), "%s: block size %u not pow2",
             org.name.c_str(), org.block_bytes);
    fatal_if(org.capacity_bytes %
                 (std::uint64_t{org.assoc} * org.block_bytes) != 0,
             "%s: capacity not divisible by assoc*block", org.name.c_str());
    fatal_if(!isPowerOf2(sets), "%s: set count %u not pow2",
             org.name.c_str(), sets);

    statGroup.addCounter("hits", statHits);
    statGroup.addCounter("misses", statMisses);
    statGroup.addCounter("evictions", statEvictions);
    statGroup.addCounter("writebacks", statWritebacks);
}

std::uint32_t
SetAssocCache::setIndex(Addr addr) const
{
    return static_cast<std::uint32_t>(
        (addr / organization.block_bytes) & (sets - 1));
}

Addr
SetAssocCache::tagOf(Addr addr) const
{
    return addr / organization.block_bytes / sets;
}

SetAssocCache::Line &
SetAssocCache::line(std::uint32_t set, std::uint32_t way)
{
    return lines[std::size_t{set} * organization.assoc + way];
}

SetAssocCache::Access
SetAssocCache::access(Addr addr, bool is_write)
{
    const std::uint32_t set = setIndex(addr);
    const Addr tag = tagOf(addr);

    Access result;
    for (std::uint32_t w = 0; w < organization.assoc; ++w) {
        Line &l = line(set, w);
        if (l.valid && l.tag == tag) {
            ++statHits;
            replacer->touch(set, w);
            if (is_write)
                l.dirty = true;
            result.hit = true;
            result.way = w;
            return result;
        }
    }

    ++statMisses;

    // Prefer an invalid way; otherwise consult the replacer.
    std::uint32_t victim_way = organization.assoc;
    for (std::uint32_t w = 0; w < organization.assoc; ++w) {
        if (!line(set, w).valid) {
            victim_way = w;
            break;
        }
    }
    if (victim_way == organization.assoc)
        victim_way = replacer->victim(set);
    panic_if(victim_way >= organization.assoc,
             "%s: replacer nominated invalid way %u",
             organization.name.c_str(), victim_way);

    Line &v = line(set, victim_way);
    if (v.valid) {
        ++statEvictions;
        result.evicted = true;
        result.evicted_addr =
            (v.tag * sets + set) * organization.block_bytes;
        result.evicted_dirty = v.dirty;
        if (v.dirty)
            ++statWritebacks;
    }

    v.tag = tag;
    v.valid = true;
    v.dirty = is_write;
    replacer->fill(set, victim_way);

    result.way = victim_way;
    return result;
}

bool
SetAssocCache::contains(Addr addr) const
{
    const std::uint32_t set =
        static_cast<std::uint32_t>(
            (addr / organization.block_bytes) & (sets - 1));
    const Addr tag = addr / organization.block_bytes / sets;
    for (std::uint32_t w = 0; w < organization.assoc; ++w) {
        const Line &l =
            lines[std::size_t{set} * organization.assoc + w];
        if (l.valid && l.tag == tag)
            return true;
    }
    return false;
}

bool
SetAssocCache::markDirty(Addr addr)
{
    const std::uint32_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (std::uint32_t w = 0; w < organization.assoc; ++w) {
        Line &l = line(set, w);
        if (l.valid && l.tag == tag) {
            l.dirty = true;
            return true;
        }
    }
    return false;
}

bool
SetAssocCache::invalidate(Addr addr)
{
    const std::uint32_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    for (std::uint32_t w = 0; w < organization.assoc; ++w) {
        Line &l = line(set, w);
        if (l.valid && l.tag == tag) {
            l.valid = false;
            const bool was_dirty = l.dirty;
            l.dirty = false;
            return was_dirty;
        }
    }
    return false;
}

void
SetAssocCache::forEachValid(const std::function<void(Addr, bool)> &fn) const
{
    for (std::uint32_t s = 0; s < sets; ++s) {
        for (std::uint32_t w = 0; w < organization.assoc; ++w) {
            const Line &l = lines[std::size_t{s} * organization.assoc + w];
            if (l.valid)
                fn((l.tag * sets + s) * organization.block_bytes, l.dirty);
        }
    }
}

std::uint64_t
SetAssocCache::validCount() const
{
    std::uint64_t n = 0;
    for (const Line &l : lines)
        n += l.valid ? 1 : 0;
    return n;
}

bool
SetAssocCache::audit(AuditSink &sink) const
{
    bool clean = true;
    for (std::uint32_t s = 0; s < sets; ++s) {
        for (std::uint32_t w = 0; w < organization.assoc; ++w) {
            const Line &l = lines[std::size_t{s} * organization.assoc + w];
            if (!l.valid)
                continue;
            for (std::uint32_t w2 = w + 1; w2 < organization.assoc; ++w2) {
                const Line &o =
                    lines[std::size_t{s} * organization.assoc + w2];
                if (o.valid && o.tag == l.tag) {
                    clean = false;
                    sink.violation({organization.name, "duplicate-tag",
                                    strprintf("tag %#llx also in way %u",
                                              static_cast<unsigned long long>(
                                                  l.tag), w2),
                                    s, w, AuditViolation::kNoIndex,
                                    AuditViolation::kNoIndex});
                }
            }
        }
    }
    return clean;
}

double
SetAssocCache::missRatio() const
{
    const double total =
        static_cast<double>(statHits.value() + statMisses.value());
    return total > 0 ? statMisses.value() / total : 0.0;
}

} // namespace nurapid
