#include "mem/mshr.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace nurapid {

MshrFile::MshrFile(std::uint32_t entries, std::uint32_t block_bytes)
    : numEntries(entries), blockBytes(block_bytes), entries(entries),
      statGroup("mshr")
{
    fatal_if(entries == 0, "MSHR file needs at least one entry");
    fatal_if(!isPowerOf2(block_bytes), "MSHR block size not a power of 2");
    statGroup.addCounter("allocations", statAllocations);
    statGroup.addCounter("merges", statMerges);
    statGroup.addCounter("full_stalls", statFullStalls);
}

void
MshrFile::retire(Cycle now)
{
    for (Entry &e : entries) {
        if (e.valid && e.ready <= now) {
            e.valid = false;
            e.block = kInvalidAddr;
            e.ready = kNeverCycle;
        }
    }
}

bool
MshrFile::tracks(Addr addr) const
{
    const Addr block = blockAlign(addr, blockBytes);
    for (const Entry &e : entries) {
        if (e.valid && e.block == block)
            return true;
    }
    return false;
}

Cycle
MshrFile::readyAt(Addr addr) const
{
    const Addr block = blockAlign(addr, blockBytes);
    for (const Entry &e : entries) {
        if (e.valid && e.block == block)
            return e.ready;
    }
    panic("readyAt() on untracked address %llx",
          static_cast<unsigned long long>(addr));
}

void
MshrFile::allocate(Addr addr, Cycle ready)
{
    const Addr block = blockAlign(addr, blockBytes);
    panic_if(tracks(block), "duplicate MSHR allocation for %llx",
             static_cast<unsigned long long>(block));
    for (Entry &e : entries) {
        if (!e.valid) {
            e.valid = true;
            e.block = block;
            e.ready = ready;
            ++statAllocations;
            return;
        }
    }
    panic("MSHR allocation with a full file");
}

Cycle
MshrFile::nextRetirement() const
{
    Cycle best = kNeverCycle;
    for (const Entry &e : entries) {
        if (e.valid && e.ready < best)
            best = e.ready;
    }
    return best;
}

std::uint32_t
MshrFile::live() const
{
    std::uint32_t n = 0;
    for (const Entry &e : entries)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace nurapid
