/**
 * @file
 * Miss-status holding registers.
 *
 * The L1 d-cache has 8 MSHRs (Table 1). They bound memory-level
 * parallelism: a miss to a block already outstanding merges into the
 * existing entry; a new miss with all MSHRs busy stalls the core until
 * one retires.
 */

#ifndef NURAPID_MEM_MSHR_HH
#define NURAPID_MEM_MSHR_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace nurapid {

class MshrFile
{
  public:
    explicit MshrFile(std::uint32_t entries, std::uint32_t block_bytes);

    /** Frees every entry whose fill completed at or before @p now. */
    void retire(Cycle now);

    /** True if a miss to @p addr would merge into an existing entry. */
    bool tracks(Addr addr) const;

    /** Completion cycle of the outstanding miss covering @p addr. */
    Cycle readyAt(Addr addr) const;

    /** True if no entry is free (after retire(now)). */
    bool full() const { return live() >= numEntries; }

    /**
     * Allocates an entry for the block of @p addr completing at
     * @p ready. Caller must ensure !full() and !tracks(addr).
     */
    void allocate(Addr addr, Cycle ready);

    /** Earliest completion among outstanding entries (kNeverCycle if none). */
    Cycle nextRetirement() const;

    std::uint32_t live() const;
    std::uint32_t capacity() const { return numEntries; }

    StatGroup &stats() { return statGroup; }

  private:
    struct Entry
    {
        Addr block = kInvalidAddr;
        Cycle ready = kNeverCycle;
        bool valid = false;
    };

    std::uint32_t numEntries;
    std::uint32_t blockBytes;
    std::vector<Entry> entries;

    StatGroup statGroup;
    Counter statAllocations;
    Counter statMerges;
    Counter statFullStalls;

  public:
    /** Bumps the merge counter (core merged a miss). */
    void noteMerge() { ++statMerges; }

    /** Bumps the structural-stall counter (core stalled on full file). */
    void noteFullStall() { ++statFullStalls; }
};

} // namespace nurapid

#endif // NURAPID_MEM_MSHR_HH
