#include "mem/main_memory.hh"

namespace nurapid {

MainMemory::MainMemory(const Params &params)
    : p(params), statGroup("memory")
{
    statGroup.addCounter("reads", statReads);
    statGroup.addCounter("writes", statWrites);
}

Cycles
MainMemory::latency(std::uint32_t bytes) const
{
    return p.base_latency + p.cycles_per_8b * ((bytes + 7) / 8);
}

Cycles
MainMemory::read(std::uint32_t bytes)
{
    ++statReads;
    energy += p.access_nj;
    return latency(bytes);
}

void
MainMemory::resetStats()
{
    statGroup.resetAll();
    energy = 0;
}

void
MainMemory::write(std::uint32_t bytes)
{
    (void)bytes;
    ++statWrites;
    energy += p.access_nj;
}

} // namespace nurapid
