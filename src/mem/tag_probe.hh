/**
 * @file
 * Vectorized tag-probe kernels over structure-of-arrays tag planes.
 *
 * Every set-indexed array in the simulator stores its tags as one
 * contiguous plane of std::uint64_t words, one row per set, padded to a
 * power-of-two stride (mem/set_assoc_cache.hh, nurapid/tag_array.hh,
 * nuca/dnuca.hh, nurapid/coupled_nuca.hh). A probe is then a dense
 * linear compare of one row against a broadcast needle, returning a
 * bitmask with bit w set when tags[w] == needle.
 *
 * The caller ANDs the result with its per-set valid bitmap, which also
 * clears any padding lanes past the real associativity — the kernels
 * may therefore read (and match) pad words freely. Way counts are
 * capped at 64 so one mask word always covers a row.
 *
 * Three implementations, selected at configure time:
 *   AVX2     4 tags per step (_mm256_cmpeq_epi64)
 *   SSE4.1   2 tags per step (_mm_cmpeq_epi64)
 *   NEON     2 tags per step (vceqq_u64)
 * with a portable scalar fallback that is also always compiled (as
 * probeMatchScalar / probeMatchMaskedScalar) so equivalence tests can
 * compare the two paths in the same binary. -DNURAPID_SIMD=OFF defines
 * NURAPID_FORCE_SCALAR_PROBE and routes everything through the scalar
 * path regardless of what the compiler target supports.
 *
 * The masked variants implement D-NUCA's partial-tag smart-search
 * compare, (tags[w] & mask) == needle, with the same lane order.
 *
 * Bit-identity with the old per-Line scalar loops: a match mask is
 * order-free, and every consumer reduces it with countr_zero (first
 * match) or 63 - countl_zero (last match) to reproduce its historical
 * scan direction exactly. The audited no-duplicate-tag invariant makes
 * first and last match coincide on clean state anyway.
 */

#ifndef NURAPID_MEM_TAG_PROBE_HH
#define NURAPID_MEM_TAG_PROBE_HH

#include <cstdint>

#if !defined(NURAPID_FORCE_SCALAR_PROBE)
#  if defined(__AVX2__)
#    include <immintrin.h>
#    define NURAPID_PROBE_AVX2 1
#  elif defined(__SSE4_1__)
#    include <smmintrin.h>
#    define NURAPID_PROBE_SSE41 1
#  elif defined(__aarch64__)
#    include <arm_neon.h>
#    define NURAPID_PROBE_NEON 1
#  endif
#endif

namespace nurapid {

/** Name of the compiled-in probe kernel (bench/test reporting). */
constexpr const char *
probeKernelName()
{
#if defined(NURAPID_PROBE_AVX2)
    return "avx2";
#elif defined(NURAPID_PROBE_SSE41)
    return "sse4.1";
#elif defined(NURAPID_PROBE_NEON)
    return "neon";
#else
    return "scalar";
#endif
}

/** Scalar reference: bit w set iff tags[w] == needle, w < n. */
inline std::uint64_t
probeMatchScalar(const std::uint64_t *tags, std::uint32_t n,
                 std::uint64_t needle)
{
    std::uint64_t m = 0;
    for (std::uint32_t w = 0; w < n; ++w)
        m |= std::uint64_t{tags[w] == needle} << w;
    return m;
}

/** Scalar reference: bit w set iff (tags[w] & mask) == needle. */
inline std::uint64_t
probeMatchMaskedScalar(const std::uint64_t *tags, std::uint32_t n,
                       std::uint64_t mask, std::uint64_t needle)
{
    std::uint64_t m = 0;
    for (std::uint32_t w = 0; w < n; ++w)
        m |= std::uint64_t{(tags[w] & mask) == needle} << w;
    return m;
}

/**
 * Match mask of one tag row: bit w set iff tags[w] == needle.
 * @p n is the row's padded stride (a power of two); rows narrower than
 * one vector fall through to the scalar loop.
 */
inline std::uint64_t
probeMatch(const std::uint64_t *tags, std::uint32_t n,
           std::uint64_t needle)
{
#if defined(NURAPID_PROBE_AVX2)
    if (n >= 4) {
        std::uint64_t m = 0;
        const __m256i vneedle =
            _mm256_set1_epi64x(static_cast<long long>(needle));
        for (std::uint32_t w = 0; w + 4 <= n; w += 4) {
            const __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(tags + w));
            const __m256i eq = _mm256_cmpeq_epi64(v, vneedle);
            const unsigned lanes = static_cast<unsigned>(
                _mm256_movemask_pd(_mm256_castsi256_pd(eq)));
            m |= std::uint64_t{lanes} << w;
        }
        return m;
    }
#elif defined(NURAPID_PROBE_SSE41)
    if (n >= 2) {
        std::uint64_t m = 0;
        const __m128i vneedle =
            _mm_set1_epi64x(static_cast<long long>(needle));
        for (std::uint32_t w = 0; w + 2 <= n; w += 2) {
            const __m128i v = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(tags + w));
            const __m128i eq = _mm_cmpeq_epi64(v, vneedle);
            const unsigned lanes = static_cast<unsigned>(
                _mm_movemask_pd(_mm_castsi128_pd(eq)));
            m |= std::uint64_t{lanes} << w;
        }
        return m;
    }
#elif defined(NURAPID_PROBE_NEON)
    if (n >= 2) {
        std::uint64_t m = 0;
        const uint64x2_t vneedle = vdupq_n_u64(needle);
        for (std::uint32_t w = 0; w + 2 <= n; w += 2) {
            const uint64x2_t eq = vceqq_u64(vld1q_u64(tags + w), vneedle);
            m |= (vgetq_lane_u64(eq, 0) & 1) << w;
            m |= (vgetq_lane_u64(eq, 1) & 1) << (w + 1);
        }
        return m;
    }
#endif
    return probeMatchScalar(tags, n, needle);
}

/**
 * Masked match mask of one tag row: bit w set iff
 * (tags[w] & mask) == needle — the partial-tag smart-search compare.
 */
inline std::uint64_t
probeMatchMasked(const std::uint64_t *tags, std::uint32_t n,
                 std::uint64_t mask, std::uint64_t needle)
{
#if defined(NURAPID_PROBE_AVX2)
    if (n >= 4) {
        std::uint64_t m = 0;
        const __m256i vmask =
            _mm256_set1_epi64x(static_cast<long long>(mask));
        const __m256i vneedle =
            _mm256_set1_epi64x(static_cast<long long>(needle));
        for (std::uint32_t w = 0; w + 4 <= n; w += 4) {
            const __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(tags + w));
            const __m256i eq =
                _mm256_cmpeq_epi64(_mm256_and_si256(v, vmask), vneedle);
            const unsigned lanes = static_cast<unsigned>(
                _mm256_movemask_pd(_mm256_castsi256_pd(eq)));
            m |= std::uint64_t{lanes} << w;
        }
        return m;
    }
#elif defined(NURAPID_PROBE_SSE41)
    if (n >= 2) {
        std::uint64_t m = 0;
        const __m128i vmask =
            _mm_set1_epi64x(static_cast<long long>(mask));
        const __m128i vneedle =
            _mm_set1_epi64x(static_cast<long long>(needle));
        for (std::uint32_t w = 0; w + 2 <= n; w += 2) {
            const __m128i v = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(tags + w));
            const __m128i eq =
                _mm_cmpeq_epi64(_mm_and_si128(v, vmask), vneedle);
            const unsigned lanes = static_cast<unsigned>(
                _mm_movemask_pd(_mm_castsi128_pd(eq)));
            m |= std::uint64_t{lanes} << w;
        }
        return m;
    }
#elif defined(NURAPID_PROBE_NEON)
    if (n >= 2) {
        std::uint64_t m = 0;
        const uint64x2_t vmask = vdupq_n_u64(mask);
        const uint64x2_t vneedle = vdupq_n_u64(needle);
        for (std::uint32_t w = 0; w + 2 <= n; w += 2) {
            const uint64x2_t eq = vceqq_u64(
                vandq_u64(vld1q_u64(tags + w), vmask), vneedle);
            m |= (vgetq_lane_u64(eq, 0) & 1) << w;
            m |= (vgetq_lane_u64(eq, 1) & 1) << (w + 1);
        }
        return m;
    }
#endif
    return probeMatchMaskedScalar(tags, n, mask, needle);
}

/** Exchanges bits @p a and @p b of @p word (plane-swap helper for the
 *  promotion/demotion paths that exchange two ways' valid/dirty bits). */
inline void
swapBits(std::uint64_t &word, std::uint32_t a, std::uint32_t b)
{
    const std::uint64_t diff =
        ((word >> a) ^ (word >> b)) & 1;
    word ^= (diff << a) | (diff << b);
}

} // namespace nurapid

#endif // NURAPID_MEM_TAG_PROBE_HH
