/**
 * @file
 * Main-memory model: Table 1's "130 cycles + 4 cycles per 8 bytes".
 */

#ifndef NURAPID_MEM_MAIN_MEMORY_HH
#define NURAPID_MEM_MAIN_MEMORY_HH

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"

namespace nurapid {

class MainMemory
{
  public:
    struct Params
    {
        Cycles base_latency = 130;     //!< fixed access latency
        Cycles cycles_per_8b = 4;      //!< transfer time per 8 bytes
        EnergyNJ access_nj = 12.0;     //!< off-chip access+transfer energy
    };

    MainMemory() : MainMemory(Params{}) {}
    explicit MainMemory(const Params &params);

    /** Latency to return @p bytes from memory. */
    Cycles latency(std::uint32_t bytes) const;

    /** Records a demand read of @p bytes; returns its latency. */
    Cycles read(std::uint32_t bytes);

    /** Records a writeback of @p bytes (off the critical path). */
    void write(std::uint32_t bytes);

    EnergyNJ dynamicEnergyNJ() const { return energy; }

    /** Clears counters and accumulated energy (post-warmup reset). */
    void resetStats();

    StatGroup &stats() { return statGroup; }

  private:
    Params p;
    EnergyNJ energy = 0;

    StatGroup statGroup;
    Counter statReads;
    Counter statWrites;
};

} // namespace nurapid

#endif // NURAPID_MEM_MAIN_MEMORY_HH
