/**
 * @file
 * Packed exact-LRU rank planes.
 *
 * PR 8 left every organization with one 64-bit recency stamp per way
 * (plus a monotonic clock); the profiler showed that upkeep of those
 * stamps — not the tag probe — dominates per-reference org time.  A
 * RankPlane stores the same total order as a permutation of
 * 0..ways-1 packed into 4-bit fields (<= 16 ways, one u64 per set) or
 * 8-bit fields (up to the 64-way cap), cutting recency bytes touched
 * per reference by 8-16x.
 *
 * Invariant: for every set, the ranks of ALL ways (valid or not) form
 * a permutation of 0..ways-1; rank 0 is MRU, rank ways-1 is LRU.
 * That makes the encoding *exact*: every rank is distinct, so any
 * scan over a subset of ways (a D-NUCA row, a coupled d-group, the
 * valid mask) has a unique max and reproduces the stamp/chain model's
 * decisions bit for bit.
 *
 * The three mutators preserve the permutation:
 *  - touch(set, way): move-to-front.  Every rank below the touched
 *    way's old rank r increments by one, the touched way becomes 0.
 *    Done branchlessly with a SWAR increment-below-rank kernel: set
 *    the per-field guard bit, subtract the broadcast rank, and the
 *    guard survives exactly in fields >= r.  Fields padded to the
 *    word boundary hold the field maximum (15 / 255), never satisfy
 *    "< r", and so never increment.
 *  - swapWays(set, a, b): exchange two rank fields.
 *  - init: rank[w] = w, matching the intrusive chains' construction
 *    order (head = way 0, tail = way ways-1) and a virtual stamp
 *    plane initialised with descending stamps.
 *
 * RankPlaneRef is the always-compiled scalar reference (one byte per
 * way, loop-based), mirroring tag_probe.hh's scalar probe: the unit
 * tests drive both under identical churn and require bit-equal
 * answers.
 */

#ifndef NURAPID_MEM_RANK_PLANE_HH
#define NURAPID_MEM_RANK_PLANE_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace nurapid {

class RankPlane
{
  public:
    RankPlane() = default;
    RankPlane(std::uint32_t sets, std::uint32_t ways) { init(sets, ways); }

    void
    init(std::uint32_t sets, std::uint32_t ways)
    {
        panic_if(ways == 0 || ways > 64,
                 "RankPlane supports 1..64 ways, got %u", ways);
        ways_ = ways;
        packed4_ = ways <= 16;
        if (packed4_) {
            wordsPerSet_ = 1;
            wpsShift_ = 0;
            std::uint64_t seed = 0;
            for (std::uint32_t w = 0; w < 16; ++w) {
                const std::uint64_t f = w < ways ? w : 0xF;
                seed |= f << (w * 4);
            }
            words_.assign(sets, seed);
        } else {
            // 8-bit fields; power-of-two words per set for shift
            // indexing (17..32 ways -> 4 words, 33..64 -> 8).
            wordsPerSet_ = ways <= 32 ? 4 : 8;
            wpsShift_ = floorLog2(wordsPerSet_);
            std::vector<std::uint64_t> seed(wordsPerSet_, 0);
            for (std::uint32_t w = 0; w < wordsPerSet_ * 8; ++w) {
                const std::uint64_t f = w < ways ? w : 0xFF;
                seed[w / 8] |= f << ((w % 8) * 8);
            }
            words_.resize(std::size_t{sets} << wpsShift_);
            for (std::uint32_t s = 0; s < sets; ++s)
                for (std::uint32_t i = 0; i < wordsPerSet_; ++i)
                    words_[(std::size_t{s} << wpsShift_) + i] = seed[i];
        }
    }

    std::uint32_t ways() const { return ways_; }
    std::size_t bytes() const { return words_.size() * sizeof(std::uint64_t); }

    /** Address of @p set's first rank word (a prefetch target). */
    const void *
    setWords(std::uint32_t set) const
    {
        return &words_[std::size_t{set} << wpsShift_];
    }

    std::uint32_t
    rankOf(std::uint32_t set, std::uint32_t way) const
    {
        if (packed4_)
            return (words_[set] >> (way * 4)) & 0xF;
        const std::uint64_t w =
            words_[(std::size_t{set} << wpsShift_) + (way >> 3)];
        return (w >> ((way & 7) * 8)) & 0xFF;
    }

    /** Move @p way to MRU (rank 0); every way ranked above it slides
     *  down by one.  No-op when already MRU — the same early exit the
     *  chain code took at the list head. */
    void
    touch(std::uint32_t set, std::uint32_t way)
    {
        constexpr std::uint64_t kH = 0x8080808080808080ULL;
        constexpr std::uint64_t kOnes = 0x0101010101010101ULL;
        if (packed4_) {
            std::uint64_t &w = words_[set];
            const unsigned sh = way * 4;
            const std::uint64_t r = (w >> sh) & 0xF;
            if (r == 0)
                return;
            // Per-byte "field < r" guard on the low and high nibble
            // lanes; v <= 15 and r <= 15 keep (v|0x80) - r borrow-free
            // and v+1 <= 15 keeps the increments from carrying.
            constexpr std::uint64_t kM = 0x0F0F0F0F0F0F0F0FULL;
            const std::uint64_t rb = r * kOnes;
            const std::uint64_t lo = w & kM;
            const std::uint64_t hi = (w >> 4) & kM;
            const std::uint64_t incLo = ~((lo | kH) - rb) & kH;
            const std::uint64_t incHi = ~((hi | kH) - rb) & kH;
            w = (w + ((incLo >> 7) | ((incHi >> 7) << 4))) &
                ~(0xFULL << sh);
        } else {
            std::uint64_t *w = &words_[std::size_t{set} << wpsShift_];
            const unsigned sh = (way & 7) * 8;
            const std::uint64_t r = (w[way >> 3] >> sh) & 0xFF;
            if (r == 0)
                return;
            const std::uint64_t rb = r * kOnes;
            for (std::uint32_t i = 0; i < wordsPerSet_; ++i)
                w[i] += (~((w[i] | kH) - rb) & kH) >> 7;
            w[way >> 3] &= ~(0xFFULL << sh);
        }
    }

    /** Exchange the ranks of two ways (promotion/demotion swaps). */
    void
    swapWays(std::uint32_t set, std::uint32_t a, std::uint32_t b)
    {
        if (packed4_) {
            std::uint64_t &w = words_[set];
            const unsigned sa = a * 4, sb = b * 4;
            const std::uint64_t ra = (w >> sa) & 0xF;
            const std::uint64_t rb = (w >> sb) & 0xF;
            w &= ~((0xFULL << sa) | (0xFULL << sb));
            w |= (ra << sb) | (rb << sa);
        } else {
            const std::size_t base = std::size_t{set} << wpsShift_;
            std::uint64_t &wa = words_[base + (a >> 3)];
            const unsigned sa = (a & 7) * 8;
            const std::uint64_t ra = (wa >> sa) & 0xFF;
            std::uint64_t &wb = words_[base + (b >> 3)];
            const unsigned sb = (b & 7) * 8;
            const std::uint64_t rb = (wb >> sb) & 0xFF;
            wa = (wa & ~(0xFFULL << sa)) | (rb << sa);
            wb = (wb & ~(0xFFULL << sb)) | (ra << sb);
        }
    }

    /** Way holding the maximum rank (the LRU way) over all ways. */
    std::uint32_t
    lruWay(std::uint32_t set) const
    {
        std::uint32_t best = 0, bestRank = rankOf(set, 0);
        for (std::uint32_t w = 1; w < ways_; ++w) {
            const std::uint32_t r = rankOf(set, w);
            if (r > bestRank) {
                bestRank = r;
                best = w;
            }
        }
        return best;
    }

    /** LRU way among the ways named by @p mask (bit w = way w).
     *  The permutation invariant makes the max unique, so this is
     *  exactly the stamp model's min-stamp scan. */
    std::uint32_t
    lruWayMasked(std::uint32_t set, std::uint64_t mask) const
    {
        std::uint32_t best = 0;
        std::int32_t bestRank = -1;
        while (mask) {
            const std::uint32_t w =
                static_cast<std::uint32_t>(std::countr_zero(mask));
            mask &= mask - 1;
            const std::int32_t r =
                static_cast<std::int32_t>(rankOf(set, w));
            if (r > bestRank) {
                bestRank = r;
                best = w;
            }
        }
        return best;
    }

    /** Audit helper: the set's ranks form a permutation of
     *  0..ways-1 (and pad fields still hold the field maximum). */
    bool
    isPermutation(std::uint32_t set) const
    {
        std::uint64_t seen = 0;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            const std::uint32_t r = rankOf(set, w);
            if (r >= ways_ || (seen & (std::uint64_t{1} << r)))
                return false;
            seen |= std::uint64_t{1} << r;
        }
        return true;
    }

  private:
    std::vector<std::uint64_t> words_;
    std::uint32_t ways_ = 0;
    std::uint32_t wordsPerSet_ = 0;
    unsigned wpsShift_ = 0;
    bool packed4_ = false;
};

/**
 * Scalar reference model: one byte per way, plain loops.  Same API
 * and same permutation invariant as RankPlane; the unit tests require
 * bit-equal answers under identical churn for both encodings.
 */
class RankPlaneRef
{
  public:
    RankPlaneRef() = default;
    RankPlaneRef(std::uint32_t sets, std::uint32_t ways)
    {
        init(sets, ways);
    }

    void
    init(std::uint32_t sets, std::uint32_t ways)
    {
        ways_ = ways;
        ranks_.resize(std::size_t{sets} * ways);
        for (std::uint32_t s = 0; s < sets; ++s)
            for (std::uint32_t w = 0; w < ways; ++w)
                ranks_[std::size_t{s} * ways + w] =
                    static_cast<std::uint8_t>(w);
    }

    std::uint32_t ways() const { return ways_; }

    std::uint32_t
    rankOf(std::uint32_t set, std::uint32_t way) const
    {
        return ranks_[std::size_t{set} * ways_ + way];
    }

    void
    touch(std::uint32_t set, std::uint32_t way)
    {
        std::uint8_t *r = &ranks_[std::size_t{set} * ways_];
        const std::uint8_t old = r[way];
        if (old == 0)
            return;
        for (std::uint32_t w = 0; w < ways_; ++w)
            if (r[w] < old)
                ++r[w];
        r[way] = 0;
    }

    void
    swapWays(std::uint32_t set, std::uint32_t a, std::uint32_t b)
    {
        std::uint8_t *r = &ranks_[std::size_t{set} * ways_];
        const std::uint8_t t = r[a];
        r[a] = r[b];
        r[b] = t;
    }

    std::uint32_t
    lruWay(std::uint32_t set) const
    {
        std::uint32_t best = 0, bestRank = rankOf(set, 0);
        for (std::uint32_t w = 1; w < ways_; ++w) {
            const std::uint32_t r = rankOf(set, w);
            if (r > bestRank) {
                bestRank = r;
                best = w;
            }
        }
        return best;
    }

    std::uint32_t
    lruWayMasked(std::uint32_t set, std::uint64_t mask) const
    {
        std::uint32_t best = 0;
        std::int32_t bestRank = -1;
        while (mask) {
            const std::uint32_t w =
                static_cast<std::uint32_t>(std::countr_zero(mask));
            mask &= mask - 1;
            const std::int32_t r =
                static_cast<std::int32_t>(rankOf(set, w));
            if (r > bestRank) {
                bestRank = r;
                best = w;
            }
        }
        return best;
    }

    bool
    isPermutation(std::uint32_t set) const
    {
        std::uint64_t seen = 0;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            const std::uint32_t r = rankOf(set, w);
            if (r >= ways_ || (seen & (std::uint64_t{1} << r)))
                return false;
            seen |= std::uint64_t{1} << r;
        }
        return true;
    }

  private:
    std::vector<std::uint8_t> ranks_;
    std::uint32_t ways_ = 0;
};

} // namespace nurapid

#endif // NURAPID_MEM_RANK_PLANE_HH
