/**
 * @file
 * The paper's base case: a conventional on-chip two-level lower
 * hierarchy (1 MB L2 @ 11 cycles + 8 MB L3 @ 43 cycles, Table 1), both
 * uniform-access with sequential tag-data probes.
 */

#ifndef NURAPID_MEM_CONVENTIONAL_L2L3_HH
#define NURAPID_MEM_CONVENTIONAL_L2L3_HH

#include <memory>
#include <string>

#include "mem/lower_memory.hh"
#include "mem/main_memory.hh"
#include "mem/set_assoc_cache.hh"
#include "timing/latency_tables.hh"

namespace nurapid {

class ConventionalL2L3 final : public LowerMemory
{
  public:
    struct Params
    {
        CacheOrg l2{"base.l2", 1ull << 20, 8, 128, ReplPolicy::LRU};
        CacheOrg l3{"base.l3", 8ull << 20, 8, 128, ReplPolicy::LRU};
        Cycles l2_latency = 11;   //!< Table 1 input
        Cycles l3_latency = 43;   //!< Table 1 input
        MainMemory::Params memory{};
    };

    explicit ConventionalL2L3(const SramMacroModel &model)
        : ConventionalL2L3(model, Params{}) {}
    ConventionalL2L3(const SramMacroModel &model, const Params &params);

    Result access(Addr addr, AccessType type, Cycle now) override;

    EnergyNJ dynamicEnergyNJ() const override;
    EnergyNJ cacheEnergyNJ() const override { return cacheEnergy.total_nj; }
    const EnergyBreakdown *energyBreakdown() const override
    {
        return &cacheEnergy;
    }
    const std::string &name() const override { return orgName; }
    StatGroup &stats() override { return statGroup; }
    const StatGroup &stats() const override { return statGroup; }
    const Histogram &regionHits() const override { return regionHist; }
    void resetStats() override;

    /** Reports each on-chip block once per level it resides in. */
    void forEachResident(const ResidentFn &fn) const override
    {
        l2Cache.forEachValid(fn);
        l3Cache.forEachValid(fn);
    }

    /** Regions: 0 = L2 blocks, 1 = L3 blocks. */
    void regionOccupancy(std::vector<std::uint64_t> &out) const override
    {
        out.assign({l2Cache.validCount(), l3Cache.validCount()});
    }

    bool audit(AuditSink &sink) const override
    {
        const bool l2_ok = l2Cache.audit(sink);
        const bool l3_ok = l3Cache.audit(sink);
        return l2_ok && l3_ok;
    }

    SetAssocCache &l2() { return l2Cache; }
    SetAssocCache &l3() { return l3Cache; }
    MainMemory &memory() { return mem; }

    /** Stream-lookahead hint (name-hiding, see LowerMemory): every
     *  access probes the L2 first, and most misses continue to L3. */
    void
    prefetchHotLines(Addr addr) const
    {
        l2Cache.prefetchHotLines(addr);
        l3Cache.prefetchHotLines(addr);
    }

    /** L2 + L3 plane footprint for gang cohort budgeting. */
    std::size_t
    hotStateBytes() const override
    {
        return l2Cache.hotBytes() + l3Cache.hotBytes();
    }

  private:
    std::string orgName = "conventional-l2l3";
    Params p;
    SetAssocCache l2Cache;
    SetAssocCache l3Cache;
    MainMemory mem;
    UniformCacheTiming l2Timing;
    UniformCacheTiming l3Timing;
    /** Regions = levels (0 = L2, 1 = L3); total_nj is the
     *  pre-refactor accumulator. */
    EnergyBreakdown cacheEnergy{2};

    StatGroup statGroup;
    Counter statAccesses;
    Counter statL2Hits;
    Counter statL3Hits;
    Counter statMemFills;
    Histogram regionHist{2};  //!< 0 = L2 hit, 1 = L3 hit
};

} // namespace nurapid

#endif // NURAPID_MEM_CONVENTIONAL_L2L3_HH
