/**
 * @file
 * Distilled L2-event streams: the org-independent half of the
 * per-reference loop, precomputed once per workload.
 *
 * For a fixed trace, L1 geometry and branch-predictor configuration,
 * the L1 lookup/replacement outcome and the branch-predictor verdict of
 * every record are pure functions of the record stream — they do not
 * depend on lower-memory timing. The sweep replays each workload
 * against ~18 L2 organizations, so that work is identical 18 times
 * over; only the few percent of references that reach the L2 (plus
 * mispredicts and the first dependent load after each deep miss) differ
 * in effect between organizations.
 *
 * DistilledTrace stores that shared prefix as:
 *
 *  - a per-record array of inst_gap values (2 B/record — the dispatch
 *    clock is a running double, so the replay must reproduce the exact
 *    per-record addition order; everything else about inert L1-hit
 *    records folds away), and
 *  - a sparse, ordered array of Events: one per record whose replay
 *    touches org-dependent state (L1 miss, dirty writeback, branch
 *    mispredict, dependent-load stall point) or that closes a
 *    warmup/measure segment. Each event carries the counter deltas
 *    (inert ifetch count, correct branch predictions) accumulated over
 *    the inert records since the previous event, so statistics stay
 *    bit-identical without touching the L1 or predictor tables.
 *
 * Only the *first* dependent load after each deep-load event needs an
 * event: the dependence stall fires at most once per
 * lastMissCompletion update (the dispatch clock is monotonic, so once
 * one dependent load has been checked against it, later checks in the
 * same epoch are provably no-ops).
 *
 * OooCore::runDistilled replays events only, applying the window/LSQ/
 * MSHR logic at the stored record indices; tests/test_distilled_trace.cc
 * asserts bit-identity against the live loop for every workload and
 * organization kind. Buffers are shared process-wide per fingerprint
 * (profile, seed mix, L1 geometry, predictor config, MSHR sector,
 * segment cuts) and persisted to NURAPID_TRACE_CACHE_DIR next to the
 * packed .trc files (mmap-loaded). NURAPID_DISTILL=0 falls back to the
 * live per-record loop.
 */

#ifndef NURAPID_TRACE_DISTILLED_TRACE_HH
#define NURAPID_TRACE_DISTILLED_TRACE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/fingerprint.hh"
#include "mem/set_assoc_cache.hh"
#include "trace/synthetic.hh"

namespace nurapid {

/** Everything org-independent that shapes a distilled stream, beyond
 *  the trace itself. Changing any field changes the fingerprint. */
struct DistillParams
{
    CacheOrg l1i;
    CacheOrg l1d;
    std::uint32_t bp_entries = 8192;
    std::uint32_t bp_history_bits = 13;
    /** MSHR tracking granularity. The distilled records store full
     *  reference addresses (the replay aligns them itself), but the
     *  sector size is keyed conservatively so a stream can never be
     *  replayed against a core it was not distilled for. */
    std::uint32_t mshr_block_bytes = 32;
};

class DistilledTrace
{
  public:
    // Event flag bits (program order of their replay effects matches
    // the live loop: dispatch, branch penalty, window, dep check, L1
    // writeback, miss path).
    static constexpr std::uint16_t kIfetch = 1u << 0;
    static constexpr std::uint16_t kStore = 1u << 1;
    static constexpr std::uint16_t kHasBranch = 1u << 2;
    static constexpr std::uint16_t kMispredict = 1u << 3;
    static constexpr std::uint16_t kDepCheck = 1u << 4;
    static constexpr std::uint16_t kL1Miss = 1u << 5;
    static constexpr std::uint16_t kL1Evict = 1u << 6;
    static constexpr std::uint16_t kWriteback = 1u << 7;
    static constexpr std::uint16_t kLatencyCritical = 1u << 8;

    /** One L2-relevant record, 32 bytes. */
    struct Event
    {
        Addr addr = 0;          //!< reference address (kL1Miss events)
        Addr evicted_addr = 0;  //!< dirty L1 victim (kWriteback events)
        std::uint32_t rec = 0;  //!< absolute record index of the event
        std::uint16_t flags = 0;
        std::uint16_t pad = 0;
        /** Correct branch predictions on the inert records strictly
         *  between the previous event and this one (the event record's
         *  own branch is described by kHasBranch/kMispredict). */
        std::uint32_t d_bp_pred = 0;
        /** Ifetch references among those inert records (the rest are
         *  data references; all inert records are L1 hits). */
        std::uint32_t d_l1i = 0;
    };
    static_assert(sizeof(Event) == 32, "events must stay 32 bytes");

    /** Replay position: consumed by OooCore::runDistilled, which
     *  advances the fields directly. */
    struct Cursor
    {
        const std::uint16_t *gaps = nullptr;
        const Event *ev = nullptr;
        const Event *ev_end = nullptr;
        std::uint64_t pos = 0;  //!< next record index to replay
    };

    /** Distills @p records of (@p profile, @p seed_mix): runs the L1s
     *  and predictor once and keeps only the event stream. @p cuts are
     *  the segment boundaries replay may stop at (ascending, each > 0,
     *  last == @p records); an event is forced at each cut's final
     *  record so folded counters are exact there. */
    DistilledTrace(const WorkloadProfile &profile, std::uint64_t records,
                   const std::vector<std::uint64_t> &cuts,
                   const DistillParams &params, std::uint64_t seed_mix = 0);

    /** Internal (disk cache): adopts an mmap'd .dtc file. */
    DistilledTrace(const WorkloadProfile &profile, std::uint64_t seed_mix,
                   const std::vector<std::uint64_t> &cuts,
                   const DistillParams &params, void *map_base,
                   std::size_t map_len, std::size_t gaps_offset,
                   std::size_t events_offset, std::uint64_t records,
                   std::uint64_t event_count);

    ~DistilledTrace();
    DistilledTrace(const DistilledTrace &) = delete;
    DistilledTrace &operator=(const DistilledTrace &) = delete;

    std::uint64_t size() const { return nrecs; }
    std::uint64_t eventCount() const { return nevents; }
    const std::vector<std::uint64_t> &cutList() const { return cuts_; }

    /** True when replay may stop after exactly @p record records. */
    bool isCut(std::uint64_t record) const;

    /** False for streams adopted from the disk cache. */
    bool fromFile() const { return map_base != nullptr; }

    const std::uint16_t *gapData() const { return gaps_; }
    const Event *eventData() const { return events_; }

    Cursor
    cursor() const
    {
        return Cursor{gaps_, events_, events_ + nevents, 0};
    }

  private:
    std::vector<std::uint16_t> gap_buf;
    std::vector<Event> event_buf;
    const std::uint16_t *gaps_ = nullptr;
    const Event *events_ = nullptr;
    std::uint64_t nrecs = 0;
    std::uint64_t nevents = 0;
    std::vector<std::uint64_t> cuts_;
    void *map_base = nullptr;
    std::size_t map_len = 0;
};

/** Canonical fingerprint of one distilled stream: format version, the
 *  full packed-trace key, both L1 organizations, the predictor
 *  configuration, the MSHR sector size, and the segment cuts. */
Fingerprint distillFingerprint(const WorkloadProfile &profile,
                               std::uint64_t seed_mix,
                               std::uint64_t records,
                               const std::vector<std::uint64_t> &cuts,
                               const DistillParams &params);

/**
 * Process-wide registry: returns the distilled stream for the given
 * fingerprint, building (or loading from NURAPID_TRACE_CACHE_DIR) at
 * most once per process. Thread-safe; generation for different
 * fingerprints proceeds in parallel.
 */
std::shared_ptr<const DistilledTrace>
sharedDistilledTrace(const WorkloadProfile &profile, std::uint64_t records,
                     const std::vector<std::uint64_t> &cuts,
                     const DistillParams &params,
                     std::uint64_t seed_mix = 0);

/** Drops registry entries no one else holds; returns entries freed. */
std::size_t dropUnusedDistilledTraces();

/** False when NURAPID_DISTILL=0 disables distilled replay. */
bool distillEnabled();

} // namespace nurapid

#endif // NURAPID_TRACE_DISTILLED_TRACE_HH
