/**
 * @file
 * Synthetic address-stream generator driven by a WorkloadProfile.
 *
 * The generated stream has the structure the NuRAPID/D-NUCA experiments
 * are sensitive to:
 *  - a small L1-resident layer (most references);
 *  - one or more L2 layers whose *segments* are scattered through the
 *    address space, so their blocks collide unevenly in cache sets
 *    (some sets accumulate many hot ways — the paper's "hot sets");
 *  - a cold remainder walking the full footprint (L2 misses);
 *  - sequential-walk spatial locality within every layer;
 *  - a branch stream mixing patterned (predictable) and biased-random
 *    (hard) static branches for the 2-level hybrid predictor.
 */

#ifndef NURAPID_TRACE_SYNTHETIC_HH
#define NURAPID_TRACE_SYNTHETIC_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "trace/profiles.hh"
#include "trace/record.hh"

namespace nurapid {

class SyntheticTrace : public TraceSource
{
  public:
    explicit SyntheticTrace(const WorkloadProfile &profile,
                            std::uint64_t seed_mix = 0);

    bool next(TraceRecord &record) override;
    void reset() override;

    const WorkloadProfile &profile() const { return prof; }

  private:
    struct LayerState
    {
        std::vector<Addr> segment_bases;
        std::uint64_t segment_bytes = 0;
        Addr cursor = 0;  //!< sequential-walk position
    };

    void buildLayers();
    Addr pickAddress(LayerState &layer);
    Addr coldAddress();
    void emitBranch(TraceRecord &record);

    WorkloadProfile prof;
    std::uint64_t seedMix;
    Rng rng;
    std::vector<LayerState> layers;
    std::vector<double> cumWeights;  //!< cumulative layer weights
    Addr coldBase = 0;
    Addr coldCursor = 0;
    std::uint32_t chaseRemaining = 0;  //!< records left in a chase burst
    std::size_t chaseLayer = 0;        //!< layers.size() = cold region
    std::uint64_t deepCount = 0;       //!< L2-layer refs, for drift
    Addr codeCursor = 0;
    double ifetchProb = 0.0;
    double branchProb = 0.0;
    double meanGap = 0.0;

    // Static branch population: pattern branches replay fixed loop
    // shapes; hard branches are biased coin flips.
    struct StaticBranch
    {
        std::uint32_t pc = 0;
        bool hard = false;
        std::uint32_t pattern = 0;  //!< bit pattern replayed cyclically
        std::uint32_t length = 1;
        std::uint32_t pos = 0;
    };
    std::vector<StaticBranch> branches;
};

} // namespace nurapid

#endif // NURAPID_TRACE_SYNTHETIC_HH
