/**
 * @file
 * Binary trace-file writer/reader.
 *
 * Lets users capture a synthetic stream once and replay it (or bring
 * their own traces from a real machine) instead of regenerating
 * addresses on the fly. The format is a fixed 16-byte header followed
 * by packed little-endian records:
 *
 *   header:  magic "NRPT" | u32 version | u64 record count
 *   record:  u64 addr | u16 inst_gap | u8 op | u8 flags | u32 branch_pc
 *            flags: bit0 depends_on_prev, bit1 latency_critical,
 *                   bit2 has_branch, bit3 branch_taken
 */

#ifndef NURAPID_TRACE_TRACE_FILE_HH
#define NURAPID_TRACE_TRACE_FILE_HH

#include <cstdio>
#include <string>

#include "trace/record.hh"

namespace nurapid {

/** Streams records into a trace file. */
class TraceFileWriter
{
  public:
    explicit TraceFileWriter(const std::string &path);
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    void append(const TraceRecord &record);

    /** Finalizes the header; called automatically on destruction. */
    void close();

    std::uint64_t recordsWritten() const { return count; }

  private:
    std::FILE *file = nullptr;
    std::string path;
    std::uint64_t count = 0;
};

/** Replays a trace file; rewinds on reset(). */
class FileTraceSource : public TraceSource
{
  public:
    explicit FileTraceSource(const std::string &path);
    ~FileTraceSource() override;

    FileTraceSource(const FileTraceSource &) = delete;
    FileTraceSource &operator=(const FileTraceSource &) = delete;

    bool next(TraceRecord &record) override;
    void reset() override;

    std::uint64_t recordCount() const { return total; }

  private:
    std::FILE *file = nullptr;
    std::uint64_t total = 0;
    std::uint64_t read_so_far = 0;
};

/** Captures @p records from @p source into @p path. */
void captureTrace(TraceSource &source, const std::string &path,
                  std::uint64_t records);

} // namespace nurapid

#endif // NURAPID_TRACE_TRACE_FILE_HH
