/**
 * @file
 * Workload profiles standing in for the paper's SPEC2K runs (Table 3).
 *
 * SPEC binaries and ref inputs are not redistributable, so each
 * benchmark is replaced by a synthetic profile whose *L2-visible
 * structure* — references per kilo-instruction, layered working-set
 * sizes, hot-set skew, store ratio, branch behavior — is calibrated to
 * the paper's Table 3 (base IPC and L2 accesses per kilo-instruction)
 * and to the known memory character of each benchmark. DESIGN.md
 * documents this substitution.
 */

#ifndef NURAPID_TRACE_PROFILES_HH
#define NURAPID_TRACE_PROFILES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nurapid {

/** One reuse layer of a workload's footprint. */
struct WorkingSetLayer
{
    std::uint64_t bytes = 0;    //!< layer capacity
    double weight = 0.0;        //!< fraction of references it receives
    std::uint32_t segments = 1; //!< scattered segments (hot-set skew)

    /**
     * Of the segments, this many are placed at bases congruent modulo
     * the cache's set-coverage period (1 MB for the 8 MB / 8-way /
     * 128 B organization) — like page-aligned arrays that collide in
     * set-index space. They stack multiple simultaneously-hot blocks
     * into the same sets: the paper's "hot sets" (Section 2.1).
     */
    std::uint32_t colliding_segments = 0;
};

struct WorkloadProfile
{
    std::string name;
    bool fp = true;
    bool high_load = true;      //!< paper's high-load / low-load split

    // Paper Table 3 anchors (targets for the generator, not inputs to
    // the simulator).
    double table3_ipc = 1.0;
    double table3_l2_apki = 20.0;

    /** Intrinsic (non-memory) CPI of the benchmark's instruction mix;
     *  calibrated so the base hierarchy reproduces Table 3's IPCs. */
    double base_cpi = 0.125;

    // Reference-stream structure.
    double mem_refs_per_kinst = 350.0;  //!< L1 d-cache refs / 1k inst
    double store_frac = 0.3;
    double seq_frac = 0.4;       //!< sequential-walk (spatial) fraction
    double dep_frac = 0.25;      //!< loads value-dependent on the
                                 //!< previous load (exposes L2 latency)
    double critical_frac = 0.85; //!< deep loads with immediate consumers
                                 //!< (latency exposed beyond a small
                                 //!< ILP slack)

    /**
     * Working-set phase drift: after this many L2-layer references one
     * hot-layer segment slides forward by 1/8 of its size (the working
     * set creeps as program phases advance; old blocks die, fresh ones
     * stream in). Counting deep references — not raw records — keeps
     * drift-induced misses proportional to each benchmark's L2
     * activity. 0 disables drift.
     */
    std::uint64_t drift_period = 2'500;
    std::vector<WorkingSetLayer> layers;  //!< weights sum to <= 1;
                                          //!< remainder = cold scans

    // Instruction-side pressure (ifetch refs that can miss the L1I).
    double ifetch_refs_per_kinst = 0.0;
    std::uint64_t code_bytes = 64 * 1024;

    // Branch behavior.
    double branches_per_kinst = 180.0;
    double hard_branch_frac = 0.15;  //!< weakly-biased branches
    double hard_branch_bias = 0.7;   //!< P(taken) for hard branches

    std::uint64_t footprint_bytes = 64ull << 20;
    std::uint64_t seed = 0;  //!< per-benchmark stream seed
};

/** The 15-application suite standing in for the paper's Table 3. */
const std::vector<WorkloadProfile> &workloadSuite();

/** Subset helpers for the benches. */
std::vector<WorkloadProfile> highLoadSuite();
std::vector<WorkloadProfile> lowLoadSuite();

/** Finds a profile by name; fatal if absent. */
const WorkloadProfile &findProfile(const std::string &name);

} // namespace nurapid

#endif // NURAPID_TRACE_PROFILES_HH
