/**
 * @file
 * Pre-generated, packed workload reference streams.
 *
 * A synthetic workload's record sequence depends only on its profile,
 * seed mix, and length — never on the cache organization being
 * simulated. The sweep, however, replays every workload against ~18
 * organizations, and live generation (~30 ns/record of RNG and layer
 * bookkeeping, plus a virtual next() per record) was the single
 * largest slice of per-reference cost.
 *
 * PackedTrace generates a stream once into a flat 16-byte-per-record
 * buffer; Cursor replays it with a non-virtual, fully-inlinable
 * next(). sharedPackedTrace() memoizes buffers per (profile, seed mix)
 * for the life of the process so every run of the same workload —
 * including the RunEngine's concurrent workers — shares one read-only
 * buffer. Replay is record-for-record identical to SyntheticTrace
 * (asserted by tests/test_packed_trace.cc); set NURAPID_TRACE_PREGEN=0
 * to fall back to live generation.
 */

#ifndef NURAPID_TRACE_PACKED_TRACE_HH
#define NURAPID_TRACE_PACKED_TRACE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/fingerprint.hh"
#include "trace/synthetic.hh"

namespace nurapid {

class PackedTrace
{
  public:
    /** One trace record, packed to 16 bytes. */
    struct PackedRecord
    {
        Addr addr = 0;
        std::uint32_t branch_pc = 0;
        std::uint16_t inst_gap = 0;
        std::uint8_t op = 0;
        std::uint8_t flags = 0;
    };
    static_assert(sizeof(PackedRecord) == 16,
                  "packed records must stay 16 bytes");

    static constexpr std::uint8_t kDependsOnPrev = 1u << 0;
    static constexpr std::uint8_t kLatencyCritical = 1u << 1;
    static constexpr std::uint8_t kHasBranch = 1u << 2;
    static constexpr std::uint8_t kBranchTaken = 1u << 3;

    /** Non-virtual replay cursor over a packed buffer. */
    class Cursor
    {
      public:
        Cursor() = default;
        Cursor(const PackedRecord *begin, const PackedRecord *end)
            : pos(begin), last(end)
        {
        }

        /** Unpacks the next record; false when the buffer is drained. */
        bool
        next(TraceRecord &r)
        {
            if (pos == last)
                return false;
            const PackedRecord &p = *pos++;
            r.addr = p.addr;
            r.op = static_cast<TraceOp>(p.op);
            r.inst_gap = p.inst_gap;
            r.depends_on_prev = (p.flags & kDependsOnPrev) != 0;
            r.latency_critical = (p.flags & kLatencyCritical) != 0;
            r.has_branch = (p.flags & kHasBranch) != 0;
            r.branch_taken = (p.flags & kBranchTaken) != 0;
            r.branch_pc = p.branch_pc;
            return true;
        }

        std::uint64_t remaining() const
        {
            return static_cast<std::uint64_t>(last - pos);
        }

      private:
        const PackedRecord *pos = nullptr;
        const PackedRecord *last = nullptr;
    };

    /** Generates @p records of @p profile's stream eagerly. */
    PackedTrace(const WorkloadProfile &profile, std::uint64_t records,
                std::uint64_t seed_mix = 0);

    /** Extends @p prefix by generating up to @p records total (the
     *  common prefix is copied, generation continues from the stored
     *  generator state — the result equals one longer generation).
     *  @p prefix must be extendable(). */
    PackedTrace(const PackedTrace &prefix, std::uint64_t records);

    /**
     * Internal (disk cache): adopts an mmap'd trace file whose records
     * start @p records_offset bytes into the mapping (16-byte aligned).
     * Mapping instead of reading skips both the copy and the
     * zero-initialization of a multi-hundred-MB buffer, and the page
     * cache shares the pages across the sweep's processes. The mapping
     * is unmapped on destruction. The embedded generator state is
     * *not* advanced past the records, so a loaded trace is not
     * extendable — a longer request regenerates from scratch instead.
     */
    PackedTrace(const WorkloadProfile &profile, std::uint64_t seed_mix,
                void *map_base, std::size_t map_len,
                std::size_t records_offset, std::uint64_t records);

    ~PackedTrace();
    PackedTrace(const PackedTrace &) = delete;
    PackedTrace &operator=(const PackedTrace &) = delete;

    /** False for buffers adopted from the disk cache. */
    bool extendable() const { return !from_file; }

    std::uint64_t size() const { return nrecs; }
    const WorkloadProfile &profile() const { return gen.profile(); }
    std::uint64_t seedMix() const { return mix; }

    /** Raw packed buffer (disk-cache serialization). */
    const PackedRecord *rawRecords() const { return recs; }

    /** Cursor over the first @p records (clamped to size()). */
    Cursor
    cursor(std::uint64_t records) const
    {
        const std::uint64_t n = records < nrecs ? records : nrecs;
        return Cursor(recs, recs + n);
    }

    Cursor cursorAll() const { return cursor(nrecs); }

    /** Cursor over records [first, last), both clamped to size(). */
    Cursor
    cursorRange(std::uint64_t first, std::uint64_t last) const
    {
        const std::uint64_t hi = last < nrecs ? last : nrecs;
        const std::uint64_t lo = first < hi ? first : hi;
        return Cursor(recs + lo, recs + hi);
    }

  private:
    void generate(std::uint64_t upto);

    std::vector<PackedRecord> buf;  //!< generated storage (else empty)
    const PackedRecord *recs = nullptr;  //!< buf.data() or the mapping
    std::uint64_t nrecs = 0;
    void *map_base = nullptr;  //!< mmap'd trace file (loaded traces)
    std::size_t map_len = 0;
    SyntheticTrace gen;  //!< generator state advanced past buf
    std::uint64_t mix;
    bool from_file = false;
};

/** TraceSource adapter over a shared packed buffer (tools/tests). */
class PackedTraceSource : public TraceSource
{
  public:
    explicit PackedTraceSource(std::shared_ptr<const PackedTrace> trace)
        : buf(std::move(trace)), cur(buf->cursorAll())
    {
    }

    bool next(TraceRecord &record) override { return cur.next(record); }
    void reset() override { cur = buf->cursorAll(); }

  private:
    std::shared_ptr<const PackedTrace> buf;
    PackedTrace::Cursor cur;
};

/**
 * Process-wide buffer registry: returns a packed stream of at least
 * @p records for (profile, seed_mix), generating or extending at most
 * once per process. Thread-safe; concurrent requests for different
 * workloads generate in parallel. Buffers live for the process (the
 * full 15-workload suite at default lengths is < 1 GB).
 *
 * When NURAPID_TRACE_CACHE_DIR names a directory, generated buffers
 * are additionally persisted there and later processes load instead of
 * regenerating — this is how the 17-binary bench sweep pays the
 * generation cost for each workload once per *sweep* rather than once
 * per binary. Files are keyed by a canonical fingerprint of every
 * profile field the generator reads (plus seed mix and a format
 * version), so a stale file can never alias a different workload.
 */
std::shared_ptr<const PackedTrace>
sharedPackedTrace(const WorkloadProfile &profile, std::uint64_t records,
                  std::uint64_t seed_mix = 0);

/** Drops registry entries no one else holds; returns entries freed. */
std::size_t dropUnusedPackedTraces();

/** Canonical fingerprint of (generator version, profile, seed mix) —
 *  the disk-cache key of a packed stream, also embedded in derived
 *  caches (distilled streams) so they inherit trace invalidation. */
Fingerprint packedTraceFingerprint(const WorkloadProfile &profile,
                                   std::uint64_t seed_mix);

/** False when NURAPID_TRACE_PREGEN=0 disables pre-generation. */
bool packedTraceEnabled();

} // namespace nurapid

#endif // NURAPID_TRACE_PACKED_TRACE_HH
