/**
 * @file
 * Trace record format shared by the workload generators and the core
 * timing model.
 *
 * Records are memory-reference centric: one record per data reference,
 * carrying the count of non-memory instructions executed since the
 * previous reference and at most one branch event inside that gap.
 */

#ifndef NURAPID_TRACE_RECORD_HH
#define NURAPID_TRACE_RECORD_HH

#include <cstdint>

#include "common/types.hh"

namespace nurapid {

enum class TraceOp : std::uint8_t {
    Load,
    Store,
    Ifetch,  //!< instruction-fetch reference (goes through the L1 I-cache)
};

struct TraceRecord
{
    Addr addr = 0;
    TraceOp op = TraceOp::Load;
    std::uint16_t inst_gap = 0;  //!< non-memory instructions before this
    bool depends_on_prev = false; //!< value-dependent on the prior load
                                  //!< (pointer chase / index load)
    bool latency_critical = false; //!< feeds dependent work immediately;
                                   //!< its latency cannot hide under the
                                   //!< out-of-order window
    bool has_branch = false;     //!< the gap contained a branch
    bool branch_taken = false;
    std::uint32_t branch_pc = 0; //!< static branch identity
};

/** Pull interface for trace producers (synthetic streams never end). */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produces the next record; returns false at end-of-trace. */
    virtual bool next(TraceRecord &record) = 0;

    /** Restarts the stream from its initial state. */
    virtual void reset() = 0;
};

} // namespace nurapid

#endif // NURAPID_TRACE_RECORD_HH
