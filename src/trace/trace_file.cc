#include "trace/trace_file.hh"

#include <cstring>

#include "common/logging.hh"

namespace nurapid {

namespace {

constexpr char kMagic[4] = {'N', 'R', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kRecordBytes = 16;

struct PackedRecord
{
    std::uint64_t addr;
    std::uint16_t inst_gap;
    std::uint8_t op;
    std::uint8_t flags;
    std::uint32_t branch_pc;
};
static_assert(sizeof(PackedRecord) == kRecordBytes,
              "packed trace record must be 16 bytes");

PackedRecord
pack(const TraceRecord &r)
{
    PackedRecord p;
    p.addr = r.addr;
    p.inst_gap = r.inst_gap;
    p.op = static_cast<std::uint8_t>(r.op);
    p.flags = static_cast<std::uint8_t>(
        (r.depends_on_prev ? 1u : 0u) | (r.latency_critical ? 2u : 0u) |
        (r.has_branch ? 4u : 0u) | (r.branch_taken ? 8u : 0u));
    p.branch_pc = r.branch_pc;
    return p;
}

TraceRecord
unpack(const PackedRecord &p)
{
    TraceRecord r;
    r.addr = p.addr;
    r.inst_gap = p.inst_gap;
    r.op = static_cast<TraceOp>(p.op);
    r.depends_on_prev = p.flags & 1u;
    r.latency_critical = p.flags & 2u;
    r.has_branch = p.flags & 4u;
    r.branch_taken = p.flags & 8u;
    r.branch_pc = p.branch_pc;
    return r;
}

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &file_path)
    : path(file_path)
{
    file = std::fopen(path.c_str(), "wb");
    fatal_if(!file, "cannot open trace file '%s' for writing",
             path.c_str());
    // Placeholder header; the count is patched in close().
    char header[kHeaderBytes] = {};
    std::memcpy(header, kMagic, 4);
    std::memcpy(header + 4, &kVersion, 4);
    fatal_if(std::fwrite(header, 1, kHeaderBytes, file) != kHeaderBytes,
             "short write on trace header");
}

TraceFileWriter::~TraceFileWriter()
{
    close();
}

void
TraceFileWriter::append(const TraceRecord &record)
{
    panic_if(!file, "append to a closed trace writer");
    const PackedRecord p = pack(record);
    fatal_if(std::fwrite(&p, 1, kRecordBytes, file) != kRecordBytes,
             "short write on trace record");
    ++count;
}

void
TraceFileWriter::close()
{
    if (!file)
        return;
    std::fseek(file, 8, SEEK_SET);
    fatal_if(std::fwrite(&count, 1, 8, file) != 8,
             "cannot patch trace record count");
    std::fclose(file);
    file = nullptr;
}

FileTraceSource::FileTraceSource(const std::string &path)
{
    file = std::fopen(path.c_str(), "rb");
    fatal_if(!file, "cannot open trace file '%s'", path.c_str());
    char header[kHeaderBytes];
    fatal_if(std::fread(header, 1, kHeaderBytes, file) != kHeaderBytes,
             "trace file '%s' is truncated", path.c_str());
    fatal_if(std::memcmp(header, kMagic, 4) != 0,
             "'%s' is not a NuRAPID trace file", path.c_str());
    std::uint32_t version;
    std::memcpy(&version, header + 4, 4);
    fatal_if(version != kVersion,
             "trace file version %u unsupported (expected %u)", version,
             kVersion);
    std::memcpy(&total, header + 8, 8);
}

FileTraceSource::~FileTraceSource()
{
    if (file)
        std::fclose(file);
}

bool
FileTraceSource::next(TraceRecord &record)
{
    if (read_so_far >= total)
        return false;
    PackedRecord p;
    fatal_if(std::fread(&p, 1, kRecordBytes, file) != kRecordBytes,
             "trace file truncated mid-record");
    record = unpack(p);
    ++read_so_far;
    return true;
}

void
FileTraceSource::reset()
{
    std::fseek(file, kHeaderBytes, SEEK_SET);
    read_so_far = 0;
}

void
captureTrace(TraceSource &source, const std::string &path,
             std::uint64_t records)
{
    TraceFileWriter writer(path);
    TraceRecord r;
    for (std::uint64_t i = 0; i < records && source.next(r); ++i)
        writer.append(r);
    writer.close();
}

} // namespace nurapid
