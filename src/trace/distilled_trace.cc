#include "trace/distilled_trace.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <list>
#include <mutex>
#include <string>
#include <string_view>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/logging.hh"
#include "cpu/branch_predictor.hh"
#include "sim/profile/profile.hh"
#include "trace/packed_trace.hh"

namespace nurapid {

namespace {

void
checkCuts(const std::vector<std::uint64_t> &cuts, std::uint64_t records)
{
    fatal_if(cuts.empty(), "distilled stream with no segment cuts");
    std::uint64_t prev = 0;
    for (std::uint64_t c : cuts) {
        fatal_if(c <= prev, "distilled cuts must be ascending and > 0");
        prev = c;
    }
    fatal_if(cuts.back() != records,
             "last distilled cut (%llu) must equal the record count "
             "(%llu)",
             static_cast<unsigned long long>(cuts.back()),
             static_cast<unsigned long long>(records));
}

} // namespace

DistilledTrace::DistilledTrace(const WorkloadProfile &profile,
                               std::uint64_t records,
                               const std::vector<std::uint64_t> &cuts,
                               const DistillParams &params,
                               std::uint64_t seed_mix)
    : cuts_(cuts)
{
    checkCuts(cuts_, records);
    auto packed = sharedPackedTrace(profile, records, seed_mix);
    panic_if(packed->size() < records,
             "packed stream shorter than distillation request");

    NURAPID_PROFILE_SCOPE(Distill);
    SetAssocCache l1i(params.l1i);
    SetAssocCache l1d(params.l1d);
    BranchPredictor bpred(params.bp_entries, params.bp_history_bits);

    gap_buf.resize(records);
    // The event rate is the L1 miss rate plus mispredicts and
    // dep-check points — reserve for a generous 25% and let the vector
    // grow in the rare workloads beyond that.
    event_buf.reserve(records / 4);

    PackedTrace::Cursor cur = packed->cursor(records);
    TraceRecord r;
    auto next_cut = cuts_.begin();
    std::uint32_t acc_bp_pred = 0;  //!< correct predictions since event
    std::uint32_t acc_l1i = 0;      //!< inert ifetch refs since event
    bool dep_pending = false;       //!< a dep load must replay its check

    for (std::uint64_t k = 0; k < records; ++k) {
        const bool got = cur.next(r);
        panic_if(!got, "packed stream ended mid-distillation");
        gap_buf[k] = r.inst_gap;

        std::uint16_t flags = 0;
        if (r.has_branch &&
            !bpred.predictAndUpdate(r.branch_pc, r.branch_taken)) {
            flags |= kMispredict;
        }

        const bool ifetch = r.op == TraceOp::Ifetch;
        const bool store = r.op == TraceOp::Store;
        if (r.depends_on_prev && !store && !ifetch && dep_pending) {
            flags |= kDepCheck;
            dep_pending = false;
        }

        SetAssocCache &l1 = ifetch ? l1i : l1d;
        const SetAssocCache::Access a = l1.access(r.addr, store);
        if (!a.hit) {
            flags |= kL1Miss;
            if (a.evicted)
                flags |= kL1Evict;
            if (a.evicted && a.evicted_dirty)
                flags |= kWriteback;
            // A deep load updates lastMissCompletion: the next
            // dependent load must check against the new value.
            if (!store && !ifetch)
                dep_pending = true;
        }

        const bool at_cut = next_cut != cuts_.end() && k + 1 == *next_cut;
        if (at_cut)
            ++next_cut;

        if (flags == 0 && !at_cut) {
            // Inert L1 hit: fold into the running deltas.
            if (r.has_branch)
                ++acc_bp_pred;
            if (ifetch)
                ++acc_l1i;
            continue;
        }

        Event e;
        e.addr = r.addr;
        e.evicted_addr = a.evicted_addr;
        e.rec = static_cast<std::uint32_t>(k);
        e.flags = static_cast<std::uint16_t>(
            flags | (ifetch ? kIfetch : 0) | (store ? kStore : 0) |
            (r.has_branch ? kHasBranch : 0) |
            (r.latency_critical ? kLatencyCritical : 0));
        e.d_bp_pred = acc_bp_pred;
        e.d_l1i = acc_l1i;
        acc_bp_pred = 0;
        acc_l1i = 0;
        event_buf.push_back(e);
    }

    gaps_ = gap_buf.data();
    events_ = event_buf.data();
    nrecs = records;
    nevents = event_buf.size();
}

DistilledTrace::DistilledTrace(const WorkloadProfile &, std::uint64_t,
                               const std::vector<std::uint64_t> &cuts,
                               const DistillParams &, void *base,
                               std::size_t len, std::size_t gaps_offset,
                               std::size_t events_offset,
                               std::uint64_t records,
                               std::uint64_t event_count)
    : gaps_(reinterpret_cast<const std::uint16_t *>(
          static_cast<const char *>(base) + gaps_offset)),
      events_(reinterpret_cast<const Event *>(
          static_cast<const char *>(base) + events_offset)),
      nrecs(records), nevents(event_count), cuts_(cuts), map_base(base),
      map_len(len)
{
    checkCuts(cuts_, records);
}

DistilledTrace::~DistilledTrace()
{
    if (map_base != nullptr)
        ::munmap(map_base, map_len);
}

bool
DistilledTrace::isCut(std::uint64_t record) const
{
    return std::binary_search(cuts_.begin(), cuts_.end(), record);
}

Fingerprint
distillFingerprint(const WorkloadProfile &profile, std::uint64_t seed_mix,
                   std::uint64_t records,
                   const std::vector<std::uint64_t> &cuts,
                   const DistillParams &p)
{
    // Format version: bump whenever the event layout or fold semantics
    // change, so stale .dtc files can never replay the old scheme.
    constexpr std::uint64_t kDistillFormatVersion = 1;

    Fingerprint fp;
    fp.field("distill_format", kDistillFormatVersion);
    fp.field("trace", packedTraceFingerprint(profile, seed_mix).key());
    auto cache = [&fp](const char *prefix, const CacheOrg &org) {
        char nm[48];
        std::snprintf(nm, sizeof(nm), "%s.capacity", prefix);
        fp.field(nm, org.capacity_bytes);
        std::snprintf(nm, sizeof(nm), "%s.assoc", prefix);
        fp.field(nm, org.assoc);
        std::snprintf(nm, sizeof(nm), "%s.block", prefix);
        fp.field(nm, org.block_bytes);
        std::snprintf(nm, sizeof(nm), "%s.repl", prefix);
        fp.field(nm, static_cast<std::uint64_t>(org.repl));
        std::snprintf(nm, sizeof(nm), "%s.repl_seed", prefix);
        fp.field(nm, org.repl_seed);
    };
    cache("l1i", p.l1i);
    cache("l1d", p.l1d);
    fp.field("bp_entries", p.bp_entries);
    fp.field("bp_history_bits", p.bp_history_bits);
    fp.field("mshr_block_bytes", p.mshr_block_bytes);
    fp.field("records", records);
    fp.field("cut_count", std::uint64_t{cuts.size()});
    for (std::size_t i = 0; i < cuts.size(); ++i) {
        char nm[32];
        std::snprintf(nm, sizeof(nm), "cut%zu", i);
        fp.field(nm, cuts[i]);
    }
    return fp;
}

namespace {

// ---------------------------------------------------------------------
// Cross-process disk cache, mirroring the packed-trace .trc scheme:
// header + full canonical key (collision guard) + 16-byte-aligned gap
// and event arrays, written via tmp-file + rename.
// ---------------------------------------------------------------------

constexpr char kDistillFileMagic[8] = {'N', 'R', 'P', 'D', 'S', 'T', '1',
                                       '\0'};

struct DistillFileHeader
{
    char magic[8];
    std::uint64_t record_count;
    std::uint64_t event_count;
    std::uint64_t key_bytes;
};

std::size_t
alignUp16(std::size_t n)
{
    return (n + 15) & ~std::size_t{15};
}

std::size_t
gapsOffset(std::uint64_t key_bytes)
{
    return alignUp16(sizeof(DistillFileHeader) +
                     static_cast<std::size_t>(key_bytes));
}

std::string
distillCacheDir()
{
    const char *s = std::getenv("NURAPID_TRACE_CACHE_DIR");
    return s != nullptr ? std::string(s) : std::string();
}

std::string
distillFilePath(const std::string &dir, const WorkloadProfile &p,
                const Fingerprint &fp)
{
    return dir + "/" + p.name + "-" + fp.digest() + ".dtc";
}

std::shared_ptr<const DistilledTrace>
loadDistilledFile(const WorkloadProfile &profile, std::uint64_t records,
                  const std::vector<std::uint64_t> &cuts,
                  const DistillParams &params, std::uint64_t seed_mix)
{
    const std::string dir = distillCacheDir();
    if (dir.empty())
        return nullptr;

    const Fingerprint fp =
        distillFingerprint(profile, seed_mix, records, cuts, params);
    const std::string path = distillFilePath(dir, profile, fp);
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return nullptr;

    NURAPID_PROFILE_SCOPE(Distill);
    struct stat st;
    if (::fstat(fd, &st) != 0 ||
        st.st_size < static_cast<off_t>(sizeof(DistillFileHeader))) {
        ::close(fd);
        return nullptr;
    }
    const auto len = static_cast<std::size_t>(st.st_size);
    void *base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED)
        return nullptr;

    DistillFileHeader hdr;
    std::memcpy(&hdr, base, sizeof(hdr));
    bool ok = std::memcmp(hdr.magic, kDistillFileMagic,
                          sizeof(hdr.magic)) == 0 &&
        hdr.record_count == records &&
        hdr.key_bytes == fp.key().size();
    std::size_t goff = 0;
    std::size_t eoff = 0;
    if (ok) {
        goff = gapsOffset(hdr.key_bytes);
        eoff = alignUp16(goff + static_cast<std::size_t>(records) *
                                    sizeof(std::uint16_t));
        ok = len >= eoff + hdr.event_count *
                 sizeof(DistilledTrace::Event) &&
            // The stored key must match byte for byte — the digest in
            // the file name already matched, this guards collisions.
            std::memcmp(static_cast<const char *>(base) + sizeof(hdr),
                        fp.key().data(), fp.key().size()) == 0;
    }
    if (!ok) {
        ::munmap(base, len);
        return nullptr;
    }
    return std::make_shared<const DistilledTrace>(
        profile, seed_mix, cuts, params, base, len, goff, eoff, records,
        hdr.event_count);
}

/** Persists @p t; failures (missing dir, no space) are ignored. */
void
storeDistilledFile(const DistilledTrace &t, const WorkloadProfile &profile,
                   const std::vector<std::uint64_t> &cuts,
                   const DistillParams &params, std::uint64_t seed_mix)
{
    const std::string dir = distillCacheDir();
    if (dir.empty())
        return;

    const Fingerprint fp =
        distillFingerprint(profile, seed_mix, t.size(), cuts, params);
    const std::string path = distillFilePath(dir, profile, fp);
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), ".tmp.%ld",
                  static_cast<long>(::getpid()));
    const std::string tmp = path + suffix;

    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        return;

    DistillFileHeader hdr;
    std::memcpy(hdr.magic, kDistillFileMagic, sizeof(hdr.magic));
    hdr.record_count = t.size();
    hdr.event_count = t.eventCount();
    hdr.key_bytes = fp.key().size();

    const char pad[16] = {};
    const std::size_t goff = gapsOffset(hdr.key_bytes);
    const std::size_t gap_bytes =
        static_cast<std::size_t>(t.size()) * sizeof(std::uint16_t);
    const std::size_t head_pad = goff - sizeof(hdr) - fp.key().size();
    const std::size_t mid_pad = alignUp16(goff + gap_bytes) -
        (goff + gap_bytes);
    const bool ok = std::fwrite(&hdr, sizeof(hdr), 1, f) == 1 &&
        std::fwrite(fp.key().data(), 1, fp.key().size(), f) ==
            fp.key().size() &&
        std::fwrite(pad, 1, head_pad, f) == head_pad &&
        std::fwrite(t.gapData(), sizeof(std::uint16_t), t.size(), f) ==
            t.size() &&
        std::fwrite(pad, 1, mid_pad, f) == mid_pad &&
        std::fwrite(t.eventData(), sizeof(DistilledTrace::Event),
                    t.eventCount(), f) == t.eventCount();
    if (std::fclose(f) != 0 || !ok) {
        std::remove(tmp.c_str());
        return;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        std::remove(tmp.c_str());
}

struct RegistryEntry
{
    std::string key;  //!< full fingerprint key
    std::shared_ptr<const DistilledTrace> buf;
    std::mutex gen_mutex;  //!< serializes generation per entry only
};

struct Registry
{
    std::mutex mtx;  //!< guards the entry list, never generation
    std::list<RegistryEntry> entries;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

} // namespace

std::shared_ptr<const DistilledTrace>
sharedDistilledTrace(const WorkloadProfile &profile, std::uint64_t records,
                     const std::vector<std::uint64_t> &cuts,
                     const DistillParams &params, std::uint64_t seed_mix)
{
    const Fingerprint fp =
        distillFingerprint(profile, seed_mix, records, cuts, params);

    Registry &reg = registry();
    RegistryEntry *entry = nullptr;
    {
        std::lock_guard<std::mutex> lock(reg.mtx);
        for (RegistryEntry &e : reg.entries) {
            if (e.key == fp.key()) {
                entry = &e;
                break;
            }
        }
        if (!entry) {
            reg.entries.emplace_back();
            entry = &reg.entries.back();
            entry->key = fp.key();
        }
    }

    // Distillation happens outside the registry lock so concurrent
    // workers only serialize against requests for the same stream.
    std::lock_guard<std::mutex> lock(entry->gen_mutex);
    if (!entry->buf) {
        entry->buf =
            loadDistilledFile(profile, records, cuts, params, seed_mix);
        if (!entry->buf) {
            entry->buf = std::make_shared<const DistilledTrace>(
                profile, records, cuts, params, seed_mix);
            storeDistilledFile(*entry->buf, profile, cuts, params,
                               seed_mix);
        }
    }
    return entry->buf;
}

std::size_t
dropUnusedDistilledTraces()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mtx);
    std::size_t freed = 0;
    for (auto it = reg.entries.begin(); it != reg.entries.end();) {
        std::unique_lock<std::mutex> gen_lock(it->gen_mutex,
                                              std::try_to_lock);
        if (gen_lock.owns_lock() &&
            (!it->buf || it->buf.use_count() == 1)) {
            gen_lock.unlock();
            it = reg.entries.erase(it);
            ++freed;
        } else {
            ++it;
        }
    }
    return freed;
}

bool
distillEnabled()
{
    const char *s = std::getenv("NURAPID_DISTILL");
    return s == nullptr || std::string_view(s) != "0";
}

} // namespace nurapid
