#include "trace/packed_trace.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/fingerprint.hh"
#include "common/logging.hh"
#include "sim/profile/profile.hh"

namespace nurapid {

PackedTrace::PackedTrace(const WorkloadProfile &profile,
                         std::uint64_t records, std::uint64_t seed_mix)
    : gen(profile, seed_mix), mix(seed_mix)
{
    generate(records);
}

PackedTrace::PackedTrace(const PackedTrace &prefix, std::uint64_t records)
    : buf(prefix.buf), gen(prefix.gen), mix(prefix.mix)
{
    panic_if(!prefix.extendable(),
             "cannot extend a disk-loaded trace buffer");
    generate(records);
}

PackedTrace::PackedTrace(const WorkloadProfile &profile,
                         std::uint64_t seed_mix, void *base,
                         std::size_t len, std::size_t records_offset,
                         std::uint64_t records)
    : recs(reinterpret_cast<const PackedRecord *>(
          static_cast<const char *>(base) + records_offset)),
      nrecs(records), map_base(base), map_len(len),
      gen(profile, seed_mix), mix(seed_mix), from_file(true)
{
}

PackedTrace::~PackedTrace()
{
    if (map_base != nullptr)
        ::munmap(map_base, map_len);
}

void
PackedTrace::generate(std::uint64_t upto)
{
    if (upto > buf.size()) {
        NURAPID_PROFILE_SCOPE(TraceGen);
        buf.reserve(upto);
        TraceRecord r;
        for (std::uint64_t n = buf.size(); n < upto; ++n) {
            if (!gen.next(r))
                break;
            PackedRecord p;
            p.addr = r.addr;
            p.branch_pc = r.branch_pc;
            p.inst_gap = r.inst_gap;
            p.op = static_cast<std::uint8_t>(r.op);
            p.flags = static_cast<std::uint8_t>(
                (r.depends_on_prev ? kDependsOnPrev : 0) |
                (r.latency_critical ? kLatencyCritical : 0) |
                (r.has_branch ? kHasBranch : 0) |
                (r.branch_taken ? kBranchTaken : 0));
            buf.push_back(p);
        }
    }
    recs = buf.data();
    nrecs = buf.size();
}

namespace {

bool
sameLayers(const std::vector<WorkingSetLayer> &a,
           const std::vector<WorkingSetLayer> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].bytes != b[i].bytes || a[i].weight != b[i].weight ||
            a[i].segments != b[i].segments ||
            a[i].colliding_segments != b[i].colliding_segments) {
            return false;
        }
    }
    return true;
}

/** Field-for-field equality over everything the generator reads. */
bool
sameProfile(const WorkloadProfile &a, const WorkloadProfile &b)
{
    return a.name == b.name && a.seed == b.seed &&
        a.mem_refs_per_kinst == b.mem_refs_per_kinst &&
        a.store_frac == b.store_frac && a.seq_frac == b.seq_frac &&
        a.dep_frac == b.dep_frac && a.critical_frac == b.critical_frac &&
        a.drift_period == b.drift_period &&
        a.ifetch_refs_per_kinst == b.ifetch_refs_per_kinst &&
        a.code_bytes == b.code_bytes &&
        a.branches_per_kinst == b.branches_per_kinst &&
        a.hard_branch_frac == b.hard_branch_frac &&
        a.hard_branch_bias == b.hard_branch_bias &&
        a.footprint_bytes == b.footprint_bytes &&
        sameLayers(a.layers, b.layers);
}

// ---------------------------------------------------------------------
// Cross-process disk cache. A trace file is raw PackedRecords behind a
// small header plus the full canonical fingerprint key; the key embeds
// every profile field the generator reads, the seed mix, and a format
// version (bump kTraceFormatVersion whenever SyntheticTrace's output
// for a fixed profile changes — otherwise stale files would replay the
// old stream). Files are written via tmp-file + rename so a concurrent
// or killed writer can never leave a half-written file under the final
// name.
// ---------------------------------------------------------------------

constexpr char kTraceFileMagic[8] = {'N', 'R', 'P', 'T', 'R', 'C', '1',
                                     '\0'};
constexpr std::uint64_t kTraceFormatVersion = 2;

struct TraceFileHeader
{
    char magic[8];
    std::uint64_t seed_mix;
    std::uint64_t record_count;
    std::uint64_t key_bytes;
};

/** Records start 16-byte aligned so the mmap'd buffer can be read as
 *  PackedRecords directly (the header is 32 bytes; only the key's
 *  length varies). */
std::size_t
recordsOffset(std::uint64_t key_bytes)
{
    const std::size_t raw = sizeof(TraceFileHeader) +
        static_cast<std::size_t>(key_bytes);
    return (raw + 15) & ~std::size_t{15};
}

} // namespace

Fingerprint
packedTraceFingerprint(const WorkloadProfile &p, std::uint64_t seed_mix)
{
    Fingerprint fp;
    fp.field("format", kTraceFormatVersion);
    fp.field("name", p.name);
    fp.field("seed", p.seed);
    fp.field("mem_refs_per_kinst", p.mem_refs_per_kinst);
    fp.field("store_frac", p.store_frac);
    fp.field("seq_frac", p.seq_frac);
    fp.field("dep_frac", p.dep_frac);
    fp.field("critical_frac", p.critical_frac);
    fp.field("drift_period", p.drift_period);
    fp.field("ifetch_refs_per_kinst", p.ifetch_refs_per_kinst);
    fp.field("code_bytes", p.code_bytes);
    fp.field("branches_per_kinst", p.branches_per_kinst);
    fp.field("hard_branch_frac", p.hard_branch_frac);
    fp.field("hard_branch_bias", p.hard_branch_bias);
    fp.field("footprint_bytes", p.footprint_bytes);
    fp.field("layer_count", std::uint64_t{p.layers.size()});
    for (std::size_t i = 0; i < p.layers.size(); ++i) {
        char nm[48];
        std::snprintf(nm, sizeof(nm), "layer%zu.bytes", i);
        fp.field(nm, p.layers[i].bytes);
        std::snprintf(nm, sizeof(nm), "layer%zu.weight", i);
        fp.field(nm, p.layers[i].weight);
        std::snprintf(nm, sizeof(nm), "layer%zu.segments", i);
        fp.field(nm, p.layers[i].segments);
        std::snprintf(nm, sizeof(nm), "layer%zu.colliding", i);
        fp.field(nm, p.layers[i].colliding_segments);
    }
    fp.field("seed_mix", seed_mix);
    return fp;
}

namespace {

/** Empty when the disk cache is disabled. */
std::string
traceCacheDir()
{
    const char *s = std::getenv("NURAPID_TRACE_CACHE_DIR");
    return s != nullptr ? std::string(s) : std::string();
}

std::string
traceFilePath(const std::string &dir, const WorkloadProfile &p,
              const Fingerprint &fp)
{
    return dir + "/" + p.name + "-" + fp.digest() + ".trc";
}

/**
 * Maps a cached stream of at least @p records (extra records are
 * adopted too — the cursors clamp). Returns nullptr when the file is
 * absent, too short, or fails any validation; the caller regenerates.
 */
std::shared_ptr<const PackedTrace>
loadPackedFile(const WorkloadProfile &profile, std::uint64_t records,
               std::uint64_t seed_mix)
{
    const std::string dir = traceCacheDir();
    if (dir.empty())
        return nullptr;

    const Fingerprint fp = packedTraceFingerprint(profile, seed_mix);
    const std::string path = traceFilePath(dir, profile, fp);
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return nullptr;

    NURAPID_PROFILE_SCOPE(TraceGen);
    struct stat st;
    if (::fstat(fd, &st) != 0 ||
        st.st_size < static_cast<off_t>(sizeof(TraceFileHeader))) {
        ::close(fd);
        return nullptr;
    }
    const auto len = static_cast<std::size_t>(st.st_size);
    void *base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED)
        return nullptr;

    TraceFileHeader hdr;
    std::memcpy(&hdr, base, sizeof(hdr));
    bool ok =
        std::memcmp(hdr.magic, kTraceFileMagic, sizeof(hdr.magic)) == 0 &&
        hdr.seed_mix == seed_mix && hdr.record_count >= records &&
        hdr.key_bytes == fp.key().size();
    const std::size_t off = ok ? recordsOffset(hdr.key_bytes) : 0;
    if (ok) {
        ok = len >= off + hdr.record_count *
                 sizeof(PackedTrace::PackedRecord) &&
            // The stored key must match byte for byte — the digest in
            // the file name already matched, this guards collisions.
            std::memcmp(static_cast<const char *>(base) + sizeof(hdr),
                        fp.key().data(), fp.key().size()) == 0;
    }
    if (!ok) {
        ::munmap(base, len);
        return nullptr;
    }
    return std::make_shared<const PackedTrace>(
        profile, seed_mix, base, len, off, hdr.record_count);
}

/** Persists @p trace; failures (missing dir, no space) are ignored. */
void
storePackedFile(const PackedTrace &trace)
{
    const std::string dir = traceCacheDir();
    if (dir.empty())
        return;

    const Fingerprint fp =
        packedTraceFingerprint(trace.profile(), trace.seedMix());
    const std::string path =
        traceFilePath(dir, trace.profile(), fp);
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), ".tmp.%ld",
                  static_cast<long>(::getpid()));
    const std::string tmp = path + suffix;

    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        return;

    TraceFileHeader hdr;
    std::memcpy(hdr.magic, kTraceFileMagic, sizeof(hdr.magic));
    hdr.seed_mix = trace.seedMix();
    hdr.record_count = trace.size();
    hdr.key_bytes = fp.key().size();

    const char pad[16] = {};
    const std::size_t pad_len =
        recordsOffset(hdr.key_bytes) - sizeof(hdr) - fp.key().size();
    const bool ok = std::fwrite(&hdr, sizeof(hdr), 1, f) == 1 &&
        std::fwrite(fp.key().data(), 1, fp.key().size(), f) ==
            fp.key().size() &&
        std::fwrite(pad, 1, pad_len, f) == pad_len &&
        std::fwrite(trace.rawRecords(),
                    sizeof(PackedTrace::PackedRecord),
                    trace.size(), f) == trace.size();
    if (std::fclose(f) != 0 || !ok) {
        std::remove(tmp.c_str());
        return;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        std::remove(tmp.c_str());
}

struct RegistryEntry
{
    WorkloadProfile profile;
    std::uint64_t seed_mix = 0;
    std::shared_ptr<const PackedTrace> buf;
    std::mutex gen_mutex;  //!< serializes generation per entry only
};

struct Registry
{
    std::mutex mtx;  //!< guards the entry list, never generation
    std::list<RegistryEntry> entries;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

} // namespace

std::shared_ptr<const PackedTrace>
sharedPackedTrace(const WorkloadProfile &profile, std::uint64_t records,
                  std::uint64_t seed_mix)
{
    Registry &reg = registry();
    RegistryEntry *entry = nullptr;
    {
        std::lock_guard<std::mutex> lock(reg.mtx);
        for (RegistryEntry &e : reg.entries) {
            if (e.seed_mix == seed_mix &&
                sameProfile(e.profile, profile)) {
                entry = &e;
                break;
            }
        }
        if (!entry) {
            reg.entries.emplace_back();
            entry = &reg.entries.back();
            entry->profile = profile;
            entry->seed_mix = seed_mix;
        }
    }

    // Generation happens outside the registry lock so concurrent
    // workers only serialize against requests for the same workload.
    std::lock_guard<std::mutex> lock(entry->gen_mutex);
    if (!entry->buf) {
        entry->buf = loadPackedFile(profile, records, seed_mix);
        if (!entry->buf) {
            entry->buf = std::make_shared<const PackedTrace>(
                profile, records, seed_mix);
            storePackedFile(*entry->buf);
        }
    } else if (entry->buf->size() < records) {
        // A loaded buffer carries no generator state past its end, so
        // it cannot be extended in place — regenerate from scratch and
        // replace the too-short file.
        if (entry->buf->extendable()) {
            entry->buf = std::make_shared<const PackedTrace>(
                *entry->buf, records);
        } else {
            entry->buf = std::make_shared<const PackedTrace>(
                profile, records, seed_mix);
        }
        storePackedFile(*entry->buf);
    }
    return entry->buf;
}

std::size_t
dropUnusedPackedTraces()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mtx);
    std::size_t freed = 0;
    for (auto it = reg.entries.begin(); it != reg.entries.end();) {
        std::unique_lock<std::mutex> gen_lock(it->gen_mutex,
                                              std::try_to_lock);
        if (gen_lock.owns_lock() &&
            (!it->buf || it->buf.use_count() == 1)) {
            gen_lock.unlock();
            it = reg.entries.erase(it);
            ++freed;
        } else {
            ++it;
        }
    }
    return freed;
}

bool
packedTraceEnabled()
{
    const char *s = std::getenv("NURAPID_TRACE_PREGEN");
    return s == nullptr || std::string_view(s) != "0";
}

} // namespace nurapid
