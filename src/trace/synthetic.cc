#include "trace/synthetic.hh"

#include <algorithm>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace nurapid {

namespace {
/** Each layer gets its own gigabyte-aligned slice of address space. */
constexpr Addr kLayerSpan = Addr{1} << 30;
constexpr Addr kColdRegion = 0xc0000000ull;
constexpr Addr kCodeRegion = 0xf0000000ull;
constexpr std::uint32_t kWordBytes = 8;
/** Set-coverage period of the 8 MB / 8-way / 128 B tag array. */
constexpr Addr kSetCoveragePeriod = Addr{1} << 20;
} // namespace

SyntheticTrace::SyntheticTrace(const WorkloadProfile &profile,
                               std::uint64_t seed_mix)
    : prof(profile), seedMix(seed_mix),
      rng(profile.seed * 0x9e3779b97f4a7c15ULL + seed_mix + 1)
{
    fatal_if(prof.mem_refs_per_kinst <= 0, "%s: no memory references",
             prof.name.c_str());
    double total = 0;
    for (const auto &l : prof.layers) {
        fatal_if(l.bytes == 0 || l.weight < 0 || l.segments == 0,
                 "%s: malformed working-set layer", prof.name.c_str());
        total += l.weight;
    }
    fatal_if(total > 1.0 + 1e-9, "%s: layer weights exceed 1",
             prof.name.c_str());
    buildLayers();
    reset();
}

void
SyntheticTrace::buildLayers()
{
    layers.clear();
    cumWeights.clear();
    double cum = 0;
    Rng layout_rng(prof.seed + 17);
    for (std::size_t i = 0; i < prof.layers.size(); ++i) {
        const WorkingSetLayer &spec = prof.layers[i];
        LayerState state;
        state.segment_bytes =
            roundUp(spec.bytes / spec.segments, 128);
        const Addr region = (Addr{2} + i) * kLayerSpan;
        // Scatter segments through the layer's region at block-aligned
        // offsets: their set-index footprints overlap unevenly, which
        // creates mildly hot sets...
        const Addr slots = kLayerSpan / state.segment_bytes;
        const std::uint32_t colliding =
            std::min(spec.colliding_segments, spec.segments);
        for (std::uint32_t s = 0; s + colliding < spec.segments; ++s) {
            const Addr slot = layout_rng.below64(slots);
            state.segment_bases.push_back(
                region + slot * state.segment_bytes);
        }
        // ...while the colliding segments sit at bases congruent modulo
        // the set-coverage period (like page-aligned arrays), stacking
        // several simultaneously-hot blocks into the same sets.
        const Addr anchor =
            region + layout_rng.below64(slots / 2) * state.segment_bytes;
        for (std::uint32_t s = 0; s < colliding; ++s) {
            state.segment_bases.push_back(
                anchor + (Addr{s} + 1) * kSetCoveragePeriod);
        }
        state.cursor = state.segment_bases.front();
        layers.push_back(std::move(state));
        cum += spec.weight;
        cumWeights.push_back(cum);
    }
    coldBase = kColdRegion;

    // Static branch population: 256 patterned + a hard minority.
    branches.clear();
    Rng branch_rng(prof.seed + 101);
    const std::uint32_t n_static = 320;
    for (std::uint32_t b = 0; b < n_static; ++b) {
        StaticBranch sb;
        sb.pc = 0x40000000u + b * 4;
        sb.hard = branch_rng.uniform() < prof.hard_branch_frac;
        if (!sb.hard) {
            // A loop-like repeating pattern of length 2..9, mostly
            // taken: e.g. TTTTN for an unrolled inner loop.
            sb.length = 2 + branch_rng.below(8);
            sb.pattern = (1u << (sb.length - 1)) - 1;  // taken*(n-1), not
            if (branch_rng.chance(0.3))
                sb.pattern = branch_rng.next() & ((1u << sb.length) - 1);
        }
        branches.push_back(sb);
    }
}

void
SyntheticTrace::reset()
{
    rng.reseed(prof.seed * 0x9e3779b97f4a7c15ULL + seedMix + 1);
    chaseRemaining = 0;
    chaseLayer = 0;
    deepCount = 0;
    for (std::size_t i = 0; i < layers.size(); ++i)
        layers[i].cursor = layers[i].segment_bases.front();
    coldCursor = coldBase;
    codeCursor = kCodeRegion;
    for (auto &b : branches)
        b.pos = 0;

    ifetchProb = prof.ifetch_refs_per_kinst / prof.mem_refs_per_kinst;
    branchProb = prof.branches_per_kinst / prof.mem_refs_per_kinst;
    meanGap = 1000.0 / prof.mem_refs_per_kinst;
}

Addr
SyntheticTrace::pickAddress(LayerState &layer)
{
    if (rng.uniform() < prof.seq_frac) {
        // Continue the sequential walk; occasionally jump to a fresh
        // segment offset so the walk covers the whole layer.
        layer.cursor += kWordBytes;
        const Addr seg = (layer.cursor / layer.segment_bytes) *
            layer.segment_bytes;
        const bool off_end =
            std::find(layer.segment_bases.begin(),
                      layer.segment_bases.end(),
                      seg) == layer.segment_bases.end();
        if (off_end || rng.chance(0.002)) {
            const std::uint32_t s =
                rng.below(static_cast<std::uint32_t>(
                    layer.segment_bases.size()));
            layer.cursor = layer.segment_bases[s] +
                rng.below64(layer.segment_bytes / kWordBytes) *
                    kWordBytes;
        }
        return layer.cursor;
    }
    const std::uint32_t s = rng.below(
        static_cast<std::uint32_t>(layer.segment_bases.size()));
    return layer.segment_bases[s] +
        rng.below64(layer.segment_bytes / kWordBytes) * kWordBytes;
}

Addr
SyntheticTrace::coldAddress()
{
    if (rng.uniform() < prof.seq_frac) {
        coldCursor += kWordBytes;
        if (coldCursor >= coldBase + prof.footprint_bytes)
            coldCursor = coldBase;
        return coldCursor;
    }
    return coldBase +
        rng.below64(prof.footprint_bytes / kWordBytes) * kWordBytes;
}

void
SyntheticTrace::emitBranch(TraceRecord &record)
{
    StaticBranch &b = branches[rng.below(
        static_cast<std::uint32_t>(branches.size()))];
    record.has_branch = true;
    record.branch_pc = b.pc;
    if (b.hard) {
        record.branch_taken = rng.chance(prof.hard_branch_bias);
    } else {
        record.branch_taken = (b.pattern >> b.pos) & 1u;
        b.pos = (b.pos + 1) % b.length;
    }
}

bool
SyntheticTrace::next(TraceRecord &record)
{
    record = TraceRecord{};


    // Continue an in-progress pointer-chase burst: back-to-back loads
    // whose addresses each depend on the previous one. These are what
    // expose the L2's *hit* latency to the core.
    if (chaseRemaining > 0) {
        --chaseRemaining;
        record.op = TraceOp::Load;
        record.depends_on_prev = true;
        record.latency_critical = true;
        record.inst_gap = static_cast<std::uint16_t>(1 + rng.below(4));
        record.addr = chaseLayer < layers.size()
            ? pickAddress(layers[chaseLayer])
            : coldAddress();
        return true;
    }

    // Instruction gap: uniform around the profile's mean rate.
    const double gap = meanGap * (0.5 + rng.uniform());
    record.inst_gap = static_cast<std::uint16_t>(gap);

    if (rng.uniform() < branchProb)
        emitBranch(record);

    if (ifetchProb > 0 && rng.uniform() < ifetchProb) {
        record.op = TraceOp::Ifetch;
        // Mostly-sequential code walk with occasional far jumps.
        codeCursor += 16;
        if (codeCursor >= kCodeRegion + prof.code_bytes ||
            rng.chance(0.02)) {
            codeCursor = kCodeRegion +
                rng.below64(prof.code_bytes / 16) * 16;
        }
        record.addr = codeCursor;
        return true;
    }

    record.op = rng.uniform() < prof.store_frac ? TraceOp::Store
                                                : TraceOp::Load;
    const double u = rng.uniform();
    std::size_t layer = layers.size();
    for (std::size_t i = 0; i < cumWeights.size(); ++i) {
        if (u < cumWeights[i]) {
            layer = i;
            break;
        }
    }
    record.addr = layer < layers.size() ? pickAddress(layers[layer])
                                        : coldAddress();
    // Working-set drift: after enough deep references, slide one
    // hot-layer segment forward by an eighth of its size — the
    // working set creeps through memory as the program's phases
    // advance. Old blocks age out and freshly mapped ones miss and
    // stream back in, so blocks have finite hot lifetimes (this is
    // what makes D-NUCA's slow initial placement expensive: a new
    // block must earn its way up the bank rows hit by hit).
    if (layer != 0 && prof.drift_period &&
        ++deepCount % prof.drift_period == 0 && layers.size() > 1) {
        LayerState &hot = layers[1];
        const std::uint32_t si = rng.below(
            static_cast<std::uint32_t>(hot.segment_bases.size()));
        hot.segment_bases[si] += hot.segment_bytes / 8;
        // Wrap within the layer's region to keep addresses bounded.
        const Addr region_end = Addr{4} * kLayerSpan;
        if (hot.segment_bases[si] + hot.segment_bytes >= region_end)
            hot.segment_bases[si] -= kLayerSpan / 2;
    }

    // Pointer-chase dependences live in the L2-resident layers: a walk
    // over a linked structure produces a burst of loads whose addresses
    // each come from the previous deep load.
    if (record.op == TraceOp::Load && layer != 0) {
        if (rng.uniform() < prof.dep_frac) {
            chaseLayer = layer;
            chaseRemaining = 2 + rng.below(5);
        }
        record.latency_critical =
            rng.uniform() < prof.critical_frac;
    }
    return true;
}

} // namespace nurapid
