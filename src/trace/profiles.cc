#include "trace/profiles.hh"

#include "common/logging.hh"

namespace nurapid {

namespace {

constexpr std::uint64_t KB = 1024;
constexpr std::uint64_t MB = 1024 * 1024;

/**
 * Builds one profile. @p hot/@p warm are the L2-resident layers (bytes
 * and share of *non-L1* traffic); the cold remainder walks the full
 * footprint. @p apki is the paper's Table 3 target; layer weights are
 * derived from it given the reference rate and spatial locality.
 */
WorkloadProfile
make(const std::string &name, bool fp, bool high, double ipc, double apki,
     double seq, double dep, double store_frac, std::uint64_t hot_bytes,
     std::uint32_t hot_segs, double hot_share, std::uint64_t warm_bytes,
     double warm_share, std::uint64_t footprint, std::uint64_t seed,
     double cpi = 0.125, double apki_cal = 1.0, double ifetch_apki = 0.0,
     std::uint64_t code_bytes = 64 * KB)
{
    WorkloadProfile p;
    p.name = name;
    p.fp = fp;
    p.high_load = high;
    p.table3_ipc = ipc;
    p.table3_l2_apki = apki;
    p.base_cpi = cpi;
    p.mem_refs_per_kinst = 350.0;
    p.store_frac = store_frac;
    p.seq_frac = seq;
    p.dep_frac = dep;
    p.footprint_bytes = footprint;
    p.seed = seed;
    p.ifetch_refs_per_kinst = ifetch_apki > 0 ? ifetch_apki * 30.0 : 0.0;
    p.code_bytes = code_bytes;
    p.branches_per_kinst = fp ? 120.0 : 200.0;
    p.hard_branch_frac = fp ? 0.08 : 0.22;
    p.hard_branch_bias = 0.72;

    // Sequential walks mostly hit the L1 (8 B steps in 32 B blocks), so
    // only ~1/4 of them reach the L2; random references to multi-MB
    // layers essentially always miss the 64 KB L1.
    const double l1_filter = seq * 0.25 + (1.0 - seq);
    // The streaming layers also churn the L1 and roughly double the
    // analytic miss estimate (measured); fold that into the weight.
    const double churn = 2.0;
    // Pointer-chase bursts multiply each deep draw into ~1 + dep*4.5
    // deep references on average; deflate the drawn weight to keep the
    // APKI on target.
    const double chase_boost = 1.0 + dep * 4.5;
    // apki_cal is the final measured-vs-target correction (the
    // analytic filter model is only approximate per benchmark).
    const double w_nl = apki * apki_cal /
        (p.mem_refs_per_kinst * l1_filter * churn * chase_boost);
    fatal_if(w_nl >= 0.9, "%s: APKI target %f unreachable", name.c_str(),
             apki);
    double cold_share = 1.0 - hot_share - warm_share;
    fatal_if(cold_share < 0, "%s: layer shares exceed 1", name.c_str());
    // Shrink the cold-scan share (into the hot layer): working-set
    // drift already supplies phase-change misses, and the combined L2
    // miss ratios then land near the paper's ~10% while keeping the
    // per-benchmark ordering.
    hot_share += cold_share * 0.75;
    cold_share *= 0.25;

    // Layer 0: the L1-resident region takes everything that is not L2
    // traffic.
    p.layers.push_back({40 * KB, 1.0 - w_nl, 2, 0});
    // A few hot segments collide in set-index space (hot sets with
    // ~4-5 simultaneously-hot ways: more than the coupled designs can
    // keep fast, within the 8-way tag associativity).
    p.layers.push_back({hot_bytes, w_nl * hot_share, hot_segs,
                        std::min<std::uint32_t>(3, hot_segs / 4)});
    if (warm_share > 0)
        p.layers.push_back({warm_bytes, w_nl * warm_share, 8, 0});
    // Remainder of the weight (w_nl * cold_share) walks the footprint.
    return p;
}

} // namespace

const std::vector<WorkloadProfile> &
workloadSuite()
{
    static const std::vector<WorkloadProfile> suite = {
        //   name     fp    high   ipc  apki  seq  st    hot        segs share  warm     share  footprint  seed ifetch
        make("applu",  true,  true, 0.9, 42.0, 0.55, 0.12, 0.26, 1600 * KB, 16, 0.72, 3 * MB, 0.18, 64 * MB, 11, 0.183, 1.23),
        make("apsi",   true,  true, 1.1, 24.0, 0.50, 0.20, 0.30, 1200 * KB, 12, 0.74, 2 * MB, 0.16, 48 * MB, 12, 0.437, 1.40),
        make("art",    true,  true, 0.5, 37.0, 0.35, 0.55, 0.20, 2800 * KB, 24, 0.80, 4 * MB, 0.12, 64 * MB, 13, 1.293, 1.67),
        make("bzip2", false,  true, 1.3, 18.0, 0.45, 0.30, 0.32,  900 * KB, 10, 0.72, 2 * MB, 0.16, 32 * MB, 14, 0.202, 1.58),
        make("equake", true,  true, 0.7, 39.0, 0.50, 0.25, 0.24, 1800 * KB, 18, 0.70, 4 * MB, 0.18, 64 * MB, 15, 0.718, 1.17),
        make("galgel", true,  true, 0.9, 28.0, 0.55, 0.18, 0.25, 1400 * KB, 14, 0.76, 3 * MB, 0.14, 48 * MB, 16, 0.487, 1.26),
        make("mcf",   false,  true, 0.4, 55.0, 0.20, 0.70, 0.22, 2200 * KB, 20, 0.62, 6 * MB, 0.20, 128 * MB, 17, 1.259, 1.61),
        make("mgrid",  true,  true, 1.0, 31.0, 0.60, 0.15, 0.24, 1500 * KB, 14, 0.74, 3 * MB, 0.16, 64 * MB, 18, 0.278, 1.00),
        make("parser", false, true, 1.0, 17.0, 0.40, 0.45, 0.30,  700 * KB, 10, 0.72, 2 * MB, 0.16, 32 * MB, 19,
             /*cpi=*/0.643, /*apki_cal=*/0.92, /*ifetch_apki=*/1.0, /*code=*/256 * KB),
        make("swim",   true,  true, 0.8, 34.0, 0.60, 0.12, 0.27, 1900 * KB, 18, 0.70, 4 * MB, 0.18, 96 * MB, 20, 0.644, 0.98),
        make("twolf", false,  true, 0.9, 22.0, 0.40, 0.40, 0.28, 1000 * KB, 12, 0.76, 2 * MB, 0.14, 32 * MB, 21, 0.589, 1.68),
        make("vpr",   false,  true, 1.0, 19.0, 0.40, 0.35, 0.28, 1100 * KB, 12, 0.74, 2 * MB, 0.15, 32 * MB, 22, 0.512, 1.31),
        make("crafty", false, false, 1.3, 3.0, 0.45, 0.35, 0.30, 300 * KB,  6, 0.70, 1 * MB, 0.15, 16 * MB, 23,
             /*cpi=*/0.528, /*apki_cal=*/0.59, /*ifetch_apki=*/0.5, /*code=*/128 * KB),
        make("gzip",  false, false, 1.4, 4.0, 0.50, 0.30, 0.32,  400 * KB,  6, 0.72, 1 * MB, 0.14, 16 * MB, 24, 0.427, 1.21),
        make("wupwise", true, false, 1.2, 5.0, 0.55, 0.15, 0.26, 500 * KB,  8, 0.72, 1 * MB, 0.14, 24 * MB, 25, 0.759, 1.00),
    };
    return suite;
}

std::vector<WorkloadProfile>
highLoadSuite()
{
    std::vector<WorkloadProfile> out;
    for (const auto &p : workloadSuite())
        if (p.high_load)
            out.push_back(p);
    return out;
}

std::vector<WorkloadProfile>
lowLoadSuite()
{
    std::vector<WorkloadProfile> out;
    for (const auto &p : workloadSuite())
        if (!p.high_load)
            out.push_back(p);
    return out;
}

const WorkloadProfile &
findProfile(const std::string &name)
{
    for (const auto &p : workloadSuite())
        if (p.name == name)
            return p;
    fatal("no workload profile named '%s'", name.c_str());
}

} // namespace nurapid
