#include "testing/differ.hh"

#include <set>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace nurapid {

AccessType
lowerAccessTypeOf(const TraceRecord &record)
{
    if (record.op == TraceOp::Store) {
        return record.depends_on_prev ? AccessType::Writeback
                                      : AccessType::Write;
    }
    return AccessType::Read;
}

TraceRecord
lowerTraceRecord(Addr addr, AccessType type, std::uint16_t gap)
{
    TraceRecord r;
    r.addr = addr;
    r.inst_gap = gap;
    switch (type) {
      case AccessType::Read:
        r.op = TraceOp::Load;
        break;
      case AccessType::Write:
        r.op = TraceOp::Store;
        break;
      case AccessType::Writeback:
        r.op = TraceOp::Store;
        r.depends_on_prev = true;
        break;
    }
    return r;
}

DifferentialTester::DifferentialTester(LowerMemory &candidate,
                                       const Options &options)
    : cand(candidate), opts(options)
{
}

std::optional<std::string>
DifferentialTester::step(const TraceRecord &record)
{
    const AccessType type = lowerAccessTypeOf(record);
    const Addr block = blockAlign(record.addr, opts.block_bytes);
    const bool is_write = type != AccessType::Read;

    const bool expected_hit = ref.contains(block);

    now += 1 + record.inst_gap;
    const LowerMemory::Result r = cand.access(record.addr, type, now);
    ++accesses;

    std::optional<std::string> fail;
    const auto mismatch = [&](std::string msg) {
        if (!fail) {
            fail = strprintf("access %llu (%s %#llx): %s",
                             static_cast<unsigned long long>(accesses - 1),
                             accessTypeName(type),
                             static_cast<unsigned long long>(block),
                             msg.c_str());
        }
    };

    if (type != AccessType::Writeback && r.hit != expected_hit) {
        mismatch(strprintf("candidate says %s, oracle says %s",
                           r.hit ? "hit" : "miss",
                           expected_hit ? "hit" : "miss"));
    }
    if (type != AccessType::Writeback && r.latency == 0)
        mismatch("zero latency on a demand access");

    for (std::uint8_t i = 0; i < r.num_evicted; ++i) {
        const auto &e = r.evicted[i];
        if (e.addr == block) {
            mismatch("evicted the block being accessed");
            continue;
        }
        if (blockAlign(e.addr, opts.block_bytes) != e.addr) {
            mismatch(strprintf("evicted address %#llx not block-aligned",
                               static_cast<unsigned long long>(e.addr)));
        }
        if (!opts.multi_residence && e.dirty != ref.dirty(e.addr)) {
            mismatch(strprintf("evicted %#llx with dirty=%d, oracle has "
                               "dirty=%d",
                               static_cast<unsigned long long>(e.addr),
                               e.dirty ? 1 : 0,
                               ref.dirty(e.addr) ? 1 : 0));
        }
        if (!ref.evict(e.addr)) {
            mismatch(strprintf("evicted %#llx which was not resident",
                               static_cast<unsigned long long>(e.addr)));
        }
    }

    ref.allocate(block, is_write);

    if (!fail && accesses % opts.conservation_interval == 0)
        fail = deepCheck();
    return fail;
}

std::optional<std::string>
DifferentialTester::deepCheck()
{
    // Conservation: the candidate's resident set must equal the
    // oracle's. A std::set both deduplicates the conventional
    // hierarchy's L2+L3 double-residence and gives deterministic
    // reporting order.
    std::set<Addr> in_cand;
    std::uint64_t reported = 0;
    cand.forEachResident([&](Addr a, bool) {
        in_cand.insert(a);
        ++reported;
    });
    if (!opts.multi_residence && reported != in_cand.size()) {
        return strprintf("after %llu accesses: a block is resident twice "
                         "(%llu reported, %zu unique)",
                         static_cast<unsigned long long>(accesses),
                         static_cast<unsigned long long>(reported),
                         in_cand.size());
    }
    if (in_cand.size() != ref.size()) {
        return strprintf("after %llu accesses: candidate holds %zu unique "
                         "blocks, oracle %llu",
                         static_cast<unsigned long long>(accesses),
                         in_cand.size(),
                         static_cast<unsigned long long>(ref.size()));
    }
    std::optional<std::string> fail;
    ref.forEach([&](Addr a, bool) {
        if (!fail && in_cand.count(a) == 0) {
            fail = strprintf("after %llu accesses: oracle-resident block "
                             "%#llx missing from the candidate",
                             static_cast<unsigned long long>(accesses),
                             static_cast<unsigned long long>(a));
        }
    });
    if (fail)
        return fail;

    // Structural invariants.
    CountingAuditSink sink;
    if (!cand.audit(sink)) {
        return strprintf("after %llu accesses: audit failed: %s",
                         static_cast<unsigned long long>(accesses),
                         sink.summary().c_str());
    }
    return std::nullopt;
}

} // namespace nurapid
