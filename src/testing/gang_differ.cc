#include "testing/gang_differ.hh"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/gang.hh"
#include "sim/obs/obs.hh"
#include "sim/runner/run_cache.hh"
#include "testing/fuzzer.hh"
#include "trace/distilled_trace.hh"
#include "trace/packed_trace.hh"

namespace nurapid {
namespace {

/** Sets NURAPID_GANG_BLOCK for one gang run, restoring on exit. */
class ScopedBlockSize
{
  public:
    explicit ScopedBlockSize(std::uint64_t block)
    {
        if (const char *old = std::getenv("NURAPID_GANG_BLOCK")) {
            saved = old;
            had = true;
        }
        setenv("NURAPID_GANG_BLOCK", std::to_string(block).c_str(), 1);
    }

    ~ScopedBlockSize()
    {
        if (had)
            setenv("NURAPID_GANG_BLOCK", saved.c_str(), 1);
        else
            unsetenv("NURAPID_GANG_BLOCK");
    }

  private:
    std::string saved;
    bool had = false;
};

std::optional<std::string>
diffEvents(const std::vector<ObsEvent> &solo,
           const std::vector<ObsEvent> &gang, std::size_t lane,
           const std::string &org)
{
    if (solo.size() != gang.size()) {
        return strprintf("lane %zu (%s): %zu events solo vs %zu ganged",
                         lane, org.c_str(), solo.size(), gang.size());
    }
    for (std::size_t i = 0; i < solo.size(); ++i) {
        const ObsEvent &a = solo[i];
        const ObsEvent &b = gang[i];
        if (a.cycle == b.cycle && a.addr == b.addr &&
            a.latency == b.latency && a.kind == b.kind &&
            a.from == b.from && a.to == b.to && a.flags == b.flags) {
            continue;
        }
        return strprintf(
            "lane %zu (%s): event %zu diverged — solo %s addr %#llx "
            "dirty %u vs gang %s addr %#llx dirty %u (cycles %llu / "
            "%llu)",
            lane, org.c_str(), i, obsEventKindName(a.kind),
            static_cast<unsigned long long>(a.addr), a.flags & 1u,
            obsEventKindName(b.kind),
            static_cast<unsigned long long>(b.addr), b.flags & 1u,
            static_cast<unsigned long long>(a.cycle),
            static_cast<unsigned long long>(b.cycle));
    }
    return std::nullopt;
}

std::string
describeScenario(const GangScenario &s, std::uint64_t seed)
{
    std::string orgs;
    for (const auto &spec : s.orgs) {
        if (!orgs.empty())
            orgs += ", ";
        orgs += spec.description();
    }
    return strprintf("seed %llu: %s (stream seed %llu), warmup %llu + "
                     "measure %llu records, block %llu, lanes [%s]",
                     static_cast<unsigned long long>(seed),
                     s.profile.name.c_str(),
                     static_cast<unsigned long long>(s.profile.seed),
                     static_cast<unsigned long long>(
                         s.length.warmup_records),
                     static_cast<unsigned long long>(
                         s.length.measure_records),
                     static_cast<unsigned long long>(s.block_events),
                     orgs.c_str());
}

void
dropScratchTraces()
{
    dropUnusedDistilledTraces();
    dropUnusedPackedTraces();
}

} // namespace

GangScenario
gangScenario(std::uint64_t scenario_seed)
{
    Rng rng(scenario_seed, 0x9e3779b97f4a7c15ULL);
    const auto &suite = workloadSuite();

    GangScenario s;
    s.profile = suite[rng.below(static_cast<std::uint32_t>(
        suite.size()))];
    s.profile.seed =
        (static_cast<std::uint64_t>(rng.next()) << 32) | rng.next();
    s.profile.mem_refs_per_kinst *= 0.5 + rng.below(1501) / 1000.0;
    s.profile.store_frac = 0.05 + rng.below(551) / 1000.0;
    s.profile.dep_frac = rng.below(501) / 1000.0;
    s.profile.seq_frac = rng.below(801) / 1000.0;
    s.profile.critical_frac = rng.below(1001) / 1000.0;
    s.profile.drift_period = rng.below(2) ? 0 : 100 + rng.below(3000);
    s.profile.ifetch_refs_per_kinst =
        rng.below(2) ? 0.0 : static_cast<double>(rng.below(60));
    s.profile.branches_per_kinst *= 0.5 + rng.below(1001) / 1000.0;
    s.profile.hard_branch_frac = rng.below(401) / 1000.0;

    // 2-5 distinct small-geometry organizations from the fuzz matrix
    // (small caches keep evictions and demotion cascades frequent at
    // these record counts).
    const auto matrix = fuzzTargetMatrix();
    const std::size_t width = 2 + rng.below(4);
    std::vector<std::uint32_t> picks;
    while (picks.size() < width) {
        const std::uint32_t idx =
            rng.below(static_cast<std::uint32_t>(matrix.size()));
        bool dup = false;
        for (const std::uint32_t p : picks)
            dup = dup || p == idx;
        if (!dup)
            picks.push_back(idx);
    }
    for (const std::uint32_t idx : picks)
        s.orgs.push_back(matrix[idx].spec);

    s.length.warmup_records = rng.below(2) ? 0 : 500 + rng.below(3501);
    s.length.measure_records = 2000 + rng.below(6001);
    s.block_events = 1 + rng.below(4096);
    return s;
}

std::optional<std::string>
runGangScenario(const GangScenario &s)
{
    ObsConfig obs;
    obs.record_events = true;

    std::vector<RunMetrics> solo_metrics;
    std::vector<std::vector<ObsEvent>> solo_events;
    for (const auto &spec : s.orgs) {
        System sys(spec, s.profile, s.length);
        sys.enableObservability(obs);
        solo_metrics.push_back(sys.runAll());
        solo_events.push_back(sys.observabilitySink()->events());
    }

    ScopedBlockSize block(s.block_events);
    std::vector<std::unique_ptr<System>> group;
    std::vector<System *> lanes;
    for (const auto &spec : s.orgs) {
        group.push_back(
            std::make_unique<System>(spec, s.profile, s.length));
        group.back()->enableObservability(obs);
        lanes.push_back(group.back().get());
    }
    if (!GangReplayer::eligible(lanes))
        return "fresh same-stream group was not gang-eligible";
    const auto gang_metrics = GangReplayer::runAll(lanes);

    for (std::size_t i = 0; i < s.orgs.size(); ++i) {
        const std::string org = s.orgs[i].description();
        if (!identicalMetrics(solo_metrics[i], gang_metrics[i])) {
            return strprintf(
                "lane %zu (%s): RunMetrics diverged (solo ipc %.17g "
                "cycles %llu vs gang ipc %.17g cycles %llu)",
                i, org.c_str(), solo_metrics[i].ipc,
                static_cast<unsigned long long>(solo_metrics[i].cycles),
                gang_metrics[i].ipc,
                static_cast<unsigned long long>(gang_metrics[i].cycles));
        }
        if (auto diff = diffEvents(solo_events[i],
                                   lanes[i]->observabilitySink()
                                       ->events(),
                                   i, org)) {
            return diff;
        }
    }
    return std::nullopt;
}

GangFuzzResult
gangFuzz(const GangFuzzConfig &config)
{
    // Fuzzed one-shot streams must never land in the shared disk
    // cache, and the fuzzer is pointless without distilled replay.
    unsetenv("NURAPID_TRACE_CACHE_DIR");
    fatal_if(!distillEnabled(),
             "gang fuzzing compares distilled replays — unset "
             "NURAPID_DISTILL first");

    const auto check = [](const GangScenario &s) {
        const auto fail = runGangScenario(s);
        dropScratchTraces();
        return fail;
    };

    GangFuzzResult res;
    for (std::uint64_t i = 0; i < config.iterations; ++i) {
        const std::uint64_t seed = config.seed + i;
        GangScenario scenario = gangScenario(seed);
        auto fail = check(scenario);
        ++res.scenarios;
        if (config.progress && (i + 1) % 5000 == 0) {
            std::fprintf(stderr, "gang-fuzz: %llu/%llu scenarios clean\n",
                         static_cast<unsigned long long>(i + 1),
                         static_cast<unsigned long long>(
                             config.iterations));
        }
        if (!fail)
            continue;

        // ddmin: drop lanes, then shrink the stream, while the
        // divergence persists.
        res.passed = false;
        res.failing_seed = seed;
        GangScenario min = scenario;
        bool shrunk = true;
        while (shrunk && min.orgs.size() > 2) {
            shrunk = false;
            for (std::size_t k = 0; k < min.orgs.size(); ++k) {
                GangScenario candidate = min;
                candidate.orgs.erase(candidate.orgs.begin() +
                                     static_cast<std::ptrdiff_t>(k));
                if (check(candidate)) {
                    min = std::move(candidate);
                    shrunk = true;
                    break;
                }
            }
        }
        while (min.length.measure_records > 128) {
            GangScenario candidate = min;
            candidate.length.measure_records /= 2;
            if (!check(candidate))
                break;
            min = std::move(candidate);
        }
        if (min.length.warmup_records > 0) {
            GangScenario candidate = min;
            candidate.length.warmup_records = 0;
            if (check(candidate))
                min = std::move(candidate);
        }
        const auto minimized_fail = check(min);
        res.message = minimized_fail ? *minimized_fail : *fail;
        res.minimized = describeScenario(min, seed);
        return res;
    }
    return res;
}

} // namespace nurapid
