#include "testing/fuzzer.hh"

#include <algorithm>
#include <array>
#include <utility>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/system.hh"
#include "trace/trace_file.hh"

namespace nurapid {

namespace {

/** Unique blocks the organization can hold (for hot-pool sizing). */
std::uint64_t
specCapacityBlocks(const OrgSpec &spec)
{
    switch (spec.kind) {
      case OrgKind::BaseL2L3:
        return (spec.base.l2.capacity_bytes + spec.base.l3.capacity_bytes) /
            spec.base.l3.block_bytes;
      case OrgKind::DNuca:
        return spec.dnuca.capacity_bytes / spec.dnuca.block_bytes;
      case OrgKind::SNuca:
        return spec.snuca.capacity_bytes / spec.snuca.block_bytes;
      case OrgKind::NuRapid:
        return spec.nurapid.capacity_bytes / spec.nurapid.block_bytes;
      case OrgKind::CoupledSA:
        return spec.coupled.capacity_bytes / spec.coupled.block_bytes;
    }
    panic("unknown organization kind");
}

std::uint32_t
specBlockBytes(const OrgSpec &spec)
{
    switch (spec.kind) {
      case OrgKind::BaseL2L3: return spec.base.l3.block_bytes;
      case OrgKind::DNuca: return spec.dnuca.block_bytes;
      case OrgKind::SNuca: return spec.snuca.block_bytes;
      case OrgKind::NuRapid: return spec.nurapid.block_bytes;
      case OrgKind::CoupledSA: return spec.coupled.block_bytes;
    }
    panic("unknown organization kind");
}

FuzzTarget
makeTarget(std::string name, OrgSpec spec)
{
    FuzzTarget t;
    t.name = std::move(name);
    t.spec = std::move(spec);
    t.differ.block_bytes = specBlockBytes(t.spec);
    t.differ.multi_residence = t.spec.kind == OrgKind::BaseL2L3;
    return t;
}

} // namespace

std::vector<FuzzTarget>
fuzzTargetMatrix()
{
    std::vector<FuzzTarget> out;

    // Conventional two-level hierarchy, shrunk 16x.
    {
        OrgSpec spec;
        spec.kind = OrgKind::BaseL2L3;
        spec.base.l2 = CacheOrg{"fuzz.l2", 64ull << 10, 8, 64,
                                ReplPolicy::LRU};
        spec.base.l3 = CacheOrg{"fuzz.l3", 512ull << 10, 8, 64,
                                ReplPolicy::LRU};
        out.push_back(makeTarget("conventional-l2l3", spec));
    }

    // S-NUCA and D-NUCA (every search mode) on one small bank grid.
    {
        OrgSpec spec;
        spec.kind = OrgKind::SNuca;
        spec.snuca.name = "fuzz.snuca";
        spec.snuca.capacity_bytes = 256ull << 10;
        spec.snuca.assoc = 16;
        spec.snuca.block_bytes = 64;
        spec.snuca.rows = 8;
        spec.snuca.cols = 4;
        out.push_back(makeTarget("snuca", spec));
    }
    for (const DNucaSearch search :
         {DNucaSearch::Multicast, DNucaSearch::SsPerformance,
          DNucaSearch::SsEnergy}) {
        OrgSpec spec;
        spec.kind = OrgKind::DNuca;
        spec.dnuca.name = "fuzz.dnuca";
        spec.dnuca.capacity_bytes = 256ull << 10;
        spec.dnuca.assoc = 16;
        spec.dnuca.block_bytes = 64;
        spec.dnuca.rows = 8;
        spec.dnuca.cols = 4;
        spec.dnuca.search = search;
        out.push_back(makeTarget(
            strprintf("dnuca-%s", dnucaSearchName(search)), spec));
    }

    // Coupled set-associative placement, every promotion policy.
    for (const PromotionPolicy promo :
         {PromotionPolicy::DemotionOnly, PromotionPolicy::NextFastest,
          PromotionPolicy::Fastest}) {
        OrgSpec spec;
        spec.kind = OrgKind::CoupledSA;
        spec.coupled.name = "fuzz.coupled";
        spec.coupled.capacity_bytes = 128ull << 10;
        spec.coupled.assoc = 8;
        spec.coupled.block_bytes = 64;
        spec.coupled.num_dgroups = 4;
        spec.coupled.promotion = promo;
        out.push_back(makeTarget(
            strprintf("coupled-%s", promotionPolicyName(promo)), spec));
    }

    // NuRAPID: promotion x distance replacement, unrestricted and with
    // Section 2.4.3 frame restriction (8 frames per region).
    for (const PromotionPolicy promo :
         {PromotionPolicy::DemotionOnly, PromotionPolicy::NextFastest,
          PromotionPolicy::Fastest}) {
        for (const DistanceRepl drepl :
             {DistanceRepl::Random, DistanceRepl::LRU,
              DistanceRepl::TreePLRU}) {
            for (const std::uint32_t restriction : {0u, 8u}) {
                OrgSpec spec;
                spec.kind = OrgKind::NuRapid;
                spec.nurapid.name = "fuzz.nurapid";
                spec.nurapid.capacity_bytes = 128ull << 10;
                spec.nurapid.assoc = 8;
                spec.nurapid.block_bytes = 64;
                spec.nurapid.num_dgroups = 4;
                spec.nurapid.promotion = promo;
                spec.nurapid.distance_repl = drepl;
                spec.nurapid.frame_restriction = restriction;
                out.push_back(makeTarget(
                    strprintf("nurapid-%s-%s%s",
                              promotionPolicyName(promo),
                              distanceReplName(drepl),
                              restriction ? "-restricted" : ""),
                    spec));
            }
        }
    }

    return out;
}

TraceFuzzer::TraceFuzzer(const FuzzTarget &target, const FuzzConfig &config)
    : tgt(target), cfg(config)
{
}

std::vector<TraceRecord>
TraceFuzzer::generate(const FuzzTarget &target, const FuzzConfig &config)
{
    Rng rng(config.seed, /*stream=*/0xf022);
    const std::uint32_t bb = target.differ.block_bytes;
    const std::uint64_t hot = config.hot_blocks
        ? config.hot_blocks
        : 2 * specCapacityBlocks(target.spec);

    std::vector<TraceRecord> out;
    out.reserve(config.iterations);

    std::array<Addr, 8> recent{};
    std::uint32_t recent_count = 0;
    std::uint32_t recent_pos = 0;
    Addr cold_next = hot;  //!< block indices beyond the hot pool

    for (std::uint64_t i = 0; i < config.iterations; ++i) {
        const unsigned where = rng.below(100);
        Addr block;
        if (where < config.cold_pct) {
            block = cold_next++;
        } else if (where < config.cold_pct + config.revisit_pct &&
                   recent_count > 0) {
            block = recent[rng.below(recent_count)];
        } else {
            block = rng.below64(hot);
        }
        recent[recent_pos] = block;
        recent_pos = (recent_pos + 1) % recent.size();
        recent_count = std::min<std::uint32_t>(
            recent_count + 1, static_cast<std::uint32_t>(recent.size()));

        const unsigned kind = rng.below(100);
        AccessType type = AccessType::Read;
        if (kind < config.writeback_pct)
            type = AccessType::Writeback;
        else if (kind < config.writeback_pct + config.store_pct)
            type = AccessType::Write;

        // Random sub-block offsets exercise the block alignment paths.
        const Addr addr = block * bb + rng.below(bb);
        out.push_back(lowerTraceRecord(
            addr, type, static_cast<std::uint16_t>(rng.below(4))));
    }
    return out;
}

std::optional<std::string>
TraceFuzzer::replay(const FuzzTarget &target,
                    const std::vector<TraceRecord> &trace,
                    std::uint64_t conservation_interval)
{
    const std::unique_ptr<LowerMemory> cand = makeOrganization(target.spec);
    DifferentialTester::Options opts = target.differ;
    opts.conservation_interval = conservation_interval;
    DifferentialTester differ(*cand, opts);
    for (const TraceRecord &rec : trace) {
        if (auto fail = differ.step(rec))
            return fail;
    }
    return differ.deepCheck();
}

FuzzResult
TraceFuzzer::run(const std::string &dump_dir)
{
    FuzzResult result;
    const std::vector<TraceRecord> trace = generate(tgt, cfg);

    {
        const std::unique_ptr<LowerMemory> cand = makeOrganization(tgt.spec);
        DifferentialTester::Options opts = tgt.differ;
        opts.conservation_interval = cfg.conservation_interval;
        DifferentialTester differ(*cand, opts);
        for (std::uint64_t i = 0; i < trace.size(); ++i) {
            if (auto fail = differ.step(trace[i])) {
                result.passed = false;
                result.message = *fail;
                result.failing_step = i;
                break;
            }
        }
        if (result.passed) {
            if (auto fail = differ.deepCheck()) {
                result.passed = false;
                result.message = *fail;
                result.failing_step = trace.size() - 1;
            }
        }
    }
    if (result.passed)
        return result;

    // Minimize: greedy chunk removal (ddmin-style) over the failing
    // prefix. Any mismatch counts as "still failing" — shifting the
    // first divergence is fine, shrinking the trace is the goal.
    std::vector<TraceRecord> working(
        trace.begin(), trace.begin() + result.failing_step + 1);
    std::uint32_t replays = 0;
    constexpr std::uint32_t kMaxReplays = 256;
    std::size_t chunk = working.size() / 2;
    while (chunk >= 1 && replays < kMaxReplays) {
        bool removed_any = false;
        for (std::size_t at = 0;
             at < working.size() && replays < kMaxReplays;) {
            std::vector<TraceRecord> attempt;
            attempt.reserve(working.size());
            attempt.insert(attempt.end(), working.begin(),
                           working.begin() + at);
            attempt.insert(
                attempt.end(),
                working.begin() +
                    std::min(at + chunk, working.size()),
                working.end());
            ++replays;
            if (!attempt.empty() &&
                replay(tgt, attempt, cfg.conservation_interval)) {
                working = std::move(attempt);
                removed_any = true;
                // Same position now holds the records after the cut.
            } else {
                at += chunk;
            }
        }
        if (chunk == 1 && !removed_any)
            break;
        chunk = std::max<std::size_t>(1, chunk / 2);
    }
    if (auto fail = replay(tgt, working, cfg.conservation_interval))
        result.message = *fail;
    result.minimized = std::move(working);

    if (!dump_dir.empty()) {
        result.dump_path = strprintf(
            "%s/fuzz_fail_%s_seed%llu.trace", dump_dir.c_str(),
            tgt.name.c_str(),
            static_cast<unsigned long long>(cfg.seed));
        TraceFileWriter writer(result.dump_path);
        for (const TraceRecord &rec : result.minimized)
            writer.append(rec);
        writer.close();
    }
    return result;
}

} // namespace nurapid
