/**
 * @file
 * Differential tester: one cache organization vs. the reference oracle.
 *
 * Feeds a shared access stream to a candidate LowerMemory and the flat
 * fully-associative ReferenceOracle, comparing after every access:
 *
 *  - hit/miss decisions (demand accesses; writeback hit semantics vary
 *    legitimately across organizations and are not compared);
 *  - evicted-block identity: every departure the candidate reports must
 *    name a block the oracle believes resident, never the block being
 *    accessed;
 *  - evicted-block dirty state (single-residence organizations only —
 *    the conventional L2+L3 can hold a stale-clean copy after the dirty
 *    copy's level evicted it, so its departures legitimately disagree);
 *  - demand latencies are non-zero;
 *
 * and, every conservation_interval accesses plus at end-of-trace, a
 * deep check: the candidate's resident-block set (via forEachResident)
 * must equal the oracle's exactly, and the candidate's structural
 * audit() must be clean.
 */

#ifndef NURAPID_TESTING_DIFFER_HH
#define NURAPID_TESTING_DIFFER_HH

#include <cstdint>
#include <optional>
#include <string>

#include "mem/lower_memory.hh"
#include "testing/oracle.hh"
#include "trace/record.hh"

namespace nurapid {

/** Maps a trace record to the access type the lower hierarchy sees.
 *  Writebacks are encoded as Store records with depends_on_prev set
 *  (the flag is meaningless for a store, making the encoding lossless
 *  and the dumped .trace replayable). */
AccessType lowerAccessTypeOf(const TraceRecord &record);

/** Builds the trace record encoding (@p addr, @p type) per the scheme
 *  above; @p gap spaces accesses apart in time. */
TraceRecord lowerTraceRecord(Addr addr, AccessType type,
                             std::uint16_t gap);

class DifferentialTester
{
  public:
    struct Options
    {
        std::uint32_t block_bytes = 128;
        /** Conventional L2+L3: a block may be resident twice and its
         *  dirty state is not comparable (see file comment). */
        bool multi_residence = false;
        /** Accesses between deep (conservation + audit) checks. */
        std::uint64_t conservation_interval = 256;
    };

    DifferentialTester(LowerMemory &candidate, const Options &options);

    /**
     * Plays one record into candidate and oracle. Returns a mismatch
     * description, or std::nullopt if the access checked out. The
     * periodic deep check runs inside step(); callers replaying a whole
     * trace should finish with a final deepCheck().
     */
    std::optional<std::string> step(const TraceRecord &record);

    /** Conservation + audit check, on demand. */
    std::optional<std::string> deepCheck();

    std::uint64_t steps() const { return accesses; }
    const ReferenceOracle &oracle() const { return ref; }

  private:
    LowerMemory &cand;
    Options opts;
    ReferenceOracle ref;
    Cycle now = 0;
    std::uint64_t accesses = 0;
};

} // namespace nurapid

#endif // NURAPID_TESTING_DIFFER_HH
