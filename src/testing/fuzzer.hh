/**
 * @file
 * Seeded trace fuzzer driving cache organizations against the
 * reference oracle.
 *
 * The generator produces a deterministic (PCG32-seeded) access stream
 * shaped to stress cache mechanics rather than wander a 64-bit address
 * space: most references draw from a hot pool about twice the
 * candidate's capacity (forcing evictions, promotions and demotion
 * cascades), a slice revisits the previous few blocks (forcing
 * back-to-back port conflicts and promotion swaps on the same set),
 * and a trickle of cold blocks keeps allocations flowing. Stores and
 * L1-writeback records are mixed in at configurable rates.
 *
 * On a mismatch the fuzzer re-runs the prefix through fresh candidates
 * to minimize the failing trace (greedy chunk removal, ddmin-style),
 * then dumps it as a standard .trace file (trace/trace_file.hh) that
 * `nurapid_fuzz --replay` re-executes exactly.
 */

#ifndef NURAPID_TESTING_FUZZER_HH
#define NURAPID_TESTING_FUZZER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "testing/differ.hh"
#include "trace/record.hh"

namespace nurapid {

struct FuzzConfig
{
    std::uint64_t seed = 1;
    std::uint64_t iterations = 10000;
    /** Hot-pool size in blocks; 0 = 2x the candidate capacity. */
    std::uint64_t hot_blocks = 0;
    unsigned store_pct = 25;      //!< % of references that are stores
    unsigned writeback_pct = 10;  //!< % that are L1 writebacks
    unsigned revisit_pct = 20;    //!< % that re-reference a recent block
    unsigned cold_pct = 5;        //!< % that touch a never-seen block
    std::uint64_t conservation_interval = 256;
};

struct FuzzResult
{
    bool passed = true;
    std::string message;             //!< first mismatch (empty if clean)
    std::uint64_t failing_step = 0;  //!< index into the generated trace
    std::vector<TraceRecord> minimized;  //!< empty when passed
    std::string dump_path;           //!< written .trace (when dumping)
};

/** One candidate the fuzz matrix covers. */
struct FuzzTarget
{
    std::string name;   //!< e.g. "nurapid-fastest-lru-r4"
    OrgSpec spec;
    DifferentialTester::Options differ;
};

/**
 * The fuzz matrix: small-geometry versions of every organization —
 * conventional L2+L3, S-NUCA, D-NUCA (all three search modes), the
 * coupled set-associative NUCA (all promotion policies), and NuRAPID
 * over promotion x distance-replacement x frame-restriction combos.
 * Small geometries keep thousands of iterations fast while leaving
 * every structural mechanism (demotion cascades, restriction
 * evictions, bubble swaps) reachable.
 */
std::vector<FuzzTarget> fuzzTargetMatrix();

class TraceFuzzer
{
  public:
    TraceFuzzer(const FuzzTarget &target, const FuzzConfig &config);

    /** Generates the trace, differs it, minimizes on failure. When
     *  @p dump_dir is non-empty a failing trace is written there. */
    FuzzResult run(const std::string &dump_dir = "");

    /** Replays @p trace against a fresh candidate; first mismatch. */
    static std::optional<std::string>
    replay(const FuzzTarget &target, const std::vector<TraceRecord> &trace,
           std::uint64_t conservation_interval = 256);

    /** Generates the deterministic trace for (target, config). */
    static std::vector<TraceRecord>
    generate(const FuzzTarget &target, const FuzzConfig &config);

  private:
    FuzzTarget tgt;
    FuzzConfig cfg;
};

} // namespace nurapid

#endif // NURAPID_TESTING_FUZZER_HH
