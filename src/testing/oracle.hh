/**
 * @file
 * The flat fully-associative reference oracle for differential testing.
 *
 * Every cache organization in this library is, behaviorally, a set of
 * resident blocks: an access hits iff its block is resident, an access
 * makes its block resident, and the only way a block leaves is by being
 * reported in LowerMemory::Result::evicted. The oracle holds that set
 * with no capacity limit, no geometry, and no replacement policy of its
 * own — it *mirrors* residency from the candidate's reported departures
 * rather than predicting them, so it is oblivious to which victim an
 * organization picks while still pinning down every hit/miss decision
 * and the identity of every departed block.
 */

#ifndef NURAPID_TESTING_ORACLE_HH
#define NURAPID_TESTING_ORACLE_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/types.hh"

namespace nurapid {

class ReferenceOracle
{
  public:
    /** True iff @p block (block-aligned) is resident. */
    bool contains(Addr block) const { return resident.count(block) != 0; }

    /** Logical dirty state of a resident block. */
    bool dirty(Addr block) const
    {
        const auto it = resident.find(block);
        return it != resident.end() && it->second;
    }

    /** Records that the candidate made @p block resident (every access
     *  allocates in this model, writebacks included). */
    void allocate(Addr block, bool is_write)
    {
        auto [it, inserted] = resident.try_emplace(block, is_write);
        if (!inserted)
            it->second = it->second || is_write;
    }

    /** Records a departure; returns false if @p block was not resident
     *  (a phantom eviction — the caller reports the mismatch). */
    bool evict(Addr block) { return resident.erase(block) != 0; }

    std::uint64_t size() const { return resident.size(); }

    void forEach(const std::function<void(Addr, bool)> &fn) const
    {
        for (const auto &[addr, d] : resident)
            fn(addr, d);
    }

  private:
    std::unordered_map<Addr, bool> resident;  //!< block addr -> dirty
};

} // namespace nurapid

#endif // NURAPID_TESTING_ORACLE_HH
