/**
 * @file
 * Gang-replay differential fuzzing: the gang path vs the per-org path
 * on fuzzed workloads.
 *
 * Each scenario derives deterministically from one seed: a Table-3
 * workload profile with fuzzed stream structure (seed, reference mix,
 * dependence/store fractions, drift), a random gang of 2-5 small
 * -geometry organizations drawn from the fuzz matrix, random
 * warmup/measure lengths, and a random NURAPID_GANG_BLOCK so block
 * boundaries land everywhere in the stream. The scenario runs every
 * lane solo (System::runAll) and then as one gang
 * (GangReplayer::runAll), with the flight recorder armed on both, and
 * diffs per lane:
 *
 *  - RunMetrics, bit-for-bit (modulo wall_seconds, by contract);
 *  - the full observability event stream per-event — which pins
 *    eviction identity (address) and eviction/writeback dirty bits,
 *    not just end-of-run counters.
 *
 * On a mismatch the harness minimizes ddmin-style before reporting:
 * greedily drops lanes, then halves the measure phase and zeroes the
 * warmup while the divergence persists, so the reported repro is the
 * smallest (lanes, records) combination that still fails. Scenarios
 * are reproducible with nurapid_fuzz --gang --seed <scenario-seed>
 * --iters 1.
 */

#ifndef NURAPID_TESTING_GANG_DIFFER_HH
#define NURAPID_TESTING_GANG_DIFFER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "trace/profiles.hh"

namespace nurapid {

struct GangFuzzConfig
{
    std::uint64_t seed = 1;           //!< first scenario seed
    std::uint64_t iterations = 1000;  //!< scenarios to run
    bool progress = false;            //!< log every few thousand
};

/** One fuzzed gang-vs-solo comparison, fully determined by a seed. */
struct GangScenario
{
    WorkloadProfile profile;
    std::vector<OrgSpec> orgs;
    SimLength length{0, 0};
    std::uint64_t block_events = 0;  //!< gang interleave block size
};

struct GangFuzzResult
{
    bool passed = true;
    std::uint64_t scenarios = 0;     //!< scenarios actually run
    std::uint64_t failing_seed = 0;  //!< seed of the failing scenario
    std::string message;             //!< first divergence (minimized)
    std::string minimized;           //!< minimized scenario summary
};

/** Builds the deterministic scenario for @p scenario_seed. */
GangScenario gangScenario(std::uint64_t scenario_seed);

/** Runs one scenario; returns the first divergence, if any. */
std::optional<std::string> runGangScenario(const GangScenario &s);

/** Runs config.iterations scenarios (seeds seed, seed+1, ...),
 *  minimizing the first failure. Unsets NURAPID_TRACE_CACHE_DIR for
 *  the process so fuzzed one-shot traces never pollute the shared
 *  disk cache. */
GangFuzzResult gangFuzz(const GangFuzzConfig &config);

} // namespace nurapid

#endif // NURAPID_TESTING_GANG_DIFFER_HH
