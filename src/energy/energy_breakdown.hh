/**
 * @file
 * Per-component dynamic-energy accumulator shared by every cache
 * organization.
 *
 * Each organization used to carry a single `EnergyNJ cacheEnergy`
 * double. The observability timeline needs a Figure-10-style
 * breakdown (tag probes, per-region data accesses, swaps/promotions,
 * writeback absorbs), but floating-point addition is not associative,
 * so the components cannot simply be summed to recreate the old
 * total. EnergyBreakdown therefore keeps `total_nj` as the *same*
 * accumulator as before — every charge adds to it in the identical
 * program order the scalar member saw, so cacheEnergyNJ() stays
 * bit-identical and every run-cache entry survives the refactor —
 * while the per-component fields are co-incremented on the side.
 *
 * Reconciliation contract: the interval recorder samples these
 * *cumulative* doubles each epoch, so the final snapshot equals the
 * end-of-run accumulators bitwise by construction (telescoping);
 * per-epoch deltas are derived only at render time. Note that the
 * components need not bitwise-sum to total_nj: two fill sites charge
 * tag+data energy as one pre-summed add (see chargeTagData), exactly
 * as the scalar code did.
 *
 * Header-only and dependent only on common/ so the organization
 * libraries (mem/nuca/nurapid) can embed it without linking
 * nurapid_energy (which itself links cpu+mem).
 */

#ifndef NURAPID_ENERGY_ENERGY_BREAKDOWN_HH
#define NURAPID_ENERGY_ENERGY_BREAKDOWN_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace nurapid {

struct EnergyBreakdown
{
    EnergyNJ total_nj = 0;      //!< the pre-existing accumulator
    EnergyNJ tag_nj = 0;        //!< tag probes / smart-search arrays
    EnergyNJ swap_nj = 0;       //!< swaps, promotions, demotions, victim pushes
    EnergyNJ writeback_nj = 0;  //!< L1 writeback absorbs (conventional L2)
    /** Data-array energy per latency region (same axis as
     *  regionHits(): d-groups, bank rows, or levels). Sized once at
     *  construction; charge sites index it unchecked. */
    std::vector<EnergyNJ> data_nj;

    explicit EnergyBreakdown(std::size_t regions = 0) : data_nj(regions) {}

    void chargeTag(EnergyNJ e)
    {
        total_nj += e;
        tag_nj += e;
    }

    void chargeData(std::size_t region, EnergyNJ e)
    {
        total_nj += e;
        data_nj[region] += e;
    }

    void chargeSwap(EnergyNJ e)
    {
        total_nj += e;
        swap_nj += e;
    }

    void chargeWriteback(EnergyNJ e)
    {
        total_nj += e;
        writeback_nj += e;
    }

    /**
     * Fill-path charge of one tag write plus one data write issued as
     * a single pre-summed add — `total_nj += tag + data` is ONE
     * double addition, matching the original `cacheEnergy += a + b;`
     * sites bit-for-bit. Components still see their own shares.
     */
    void chargeTagData(EnergyNJ tag, std::size_t region, EnergyNJ data)
    {
        total_nj += tag + data;
        tag_nj += tag;
        data_nj[region] += data;
    }

    /** Post-warmup reset; keeps the region count. */
    void reset()
    {
        total_nj = 0;
        tag_nj = 0;
        swap_nj = 0;
        writeback_nj = 0;
        data_nj.assign(data_nj.size(), 0);
    }
};

} // namespace nurapid

#endif // NURAPID_ENERGY_ENERGY_BREAKDOWN_HH
