/**
 * @file
 * Processor-level energy accounting (the paper's Wattch substitution).
 *
 * The cache energies come from the Cacti-like model in src/timing (the
 * paper replaced Wattch's cache model the same way); everything else in
 * the core is charged a constant per committed instruction plus
 * per-L1-access energies, which is all the relative energy-delay claims
 * need (the core term is a common additive component across the
 * compared L2 organizations).
 */

#ifndef NURAPID_ENERGY_ENERGY_MODEL_HH
#define NURAPID_ENERGY_ENERGY_MODEL_HH

#include <cstdint>

#include "common/types.hh"

namespace nurapid {

class OooCore;
class LowerMemory;

struct ProcessorEnergyParams
{
    /** Core (fetch/rename/issue/ALU/regfile/clock) energy per
     *  committed instruction, nJ. Wattch-like 8-wide @ 70 nm. */
    double core_nj_per_inst = 4.0;

    /** Per-access energy of one L1 port (Table 2's 0.57 nJ covers the
     *  two ports of the dual-ported L1). */
    double l1_nj_per_access = 0.285;
};

struct EnergyReport
{
    EnergyNJ core_nj = 0;       //!< non-cache core energy
    EnergyNJ l1_nj = 0;
    EnergyNJ l2_cache_nj = 0;   //!< on-chip lower-hierarchy energy
    EnergyNJ memory_nj = 0;     //!< off-chip DRAM energy
    EnergyNJ total_nj = 0;
    std::uint64_t cycles = 0;
    double edp = 0;             //!< total energy x delay (nJ x cycles)
};

/** Assembles the processor energy report for one finished run. */
EnergyReport computeEnergy(const ProcessorEnergyParams &params,
                           const OooCore &core, const LowerMemory &lower);

} // namespace nurapid

#endif // NURAPID_ENERGY_ENERGY_MODEL_HH
