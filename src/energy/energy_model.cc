#include "energy/energy_model.hh"

#include "cpu/ooo_core.hh"
#include "mem/lower_memory.hh"

namespace nurapid {

EnergyReport
computeEnergy(const ProcessorEnergyParams &params, const OooCore &core,
              const LowerMemory &lower)
{
    EnergyReport r;
    r.core_nj = params.core_nj_per_inst *
        static_cast<double>(core.instructions());
    r.l1_nj = params.l1_nj_per_access *
        static_cast<double>(core.l1dAccesses() + core.l1iAccesses());
    r.l2_cache_nj = lower.cacheEnergyNJ();
    r.memory_nj = lower.dynamicEnergyNJ() - lower.cacheEnergyNJ();
    r.total_nj = r.core_nj + r.l1_nj + r.l2_cache_nj + r.memory_nj;
    r.cycles = core.cycles();
    r.edp = r.total_nj * static_cast<double>(r.cycles);
    return r;
}

} // namespace nurapid
