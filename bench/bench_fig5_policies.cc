/**
 * @file
 * Reproduces Figure 5: distribution of d-group accesses for the
 * demotion-only, next-fastest and fastest distance-replacement
 * policies (4 x 2 MB NuRAPID, random distance replacement).
 */

#include "bench/bench_util.hh"

using namespace nurapid;

int
main()
{
    benchHeader("Figure 5: d-group access distribution per promotion "
                "policy",
                "paper averages for d-group 1: demotion-only 50%, "
                "next-fastest 84%, fastest 86%; miss rates identical");

    const auto suite = highLoadSuite();
    auto all = runSuites(
        {OrgSpec::nurapidDefault(4, PromotionPolicy::DemotionOnly),
         OrgSpec::nurapidDefault(),
         OrgSpec::nurapidDefault(4, PromotionPolicy::Fastest)}, suite);
    const auto &demo = all[0];
    const auto &next = all[1];
    const auto &fast = all[2];

    TextTable t;
    t.header({"Benchmark", "a:demo g1", "a:g2+", "b:next g1", "b:g2+",
              "c:fast g1", "c:g2+", "miss"});
    for (std::size_t i = 0; i < suite.size(); ++i) {
        auto rest = [](const RunMetrics &m) {
            double r = 0;
            for (std::size_t g = 1; g < m.region_frac.size(); ++g)
                r += m.region_frac[g];
            return r;
        };
        t.row({suite[i].name,
               TextTable::pct(demo[i].region_frac[0]),
               TextTable::pct(rest(demo[i])),
               TextTable::pct(next[i].region_frac[0]),
               TextTable::pct(rest(next[i])),
               TextTable::pct(fast[i].region_frac[0]),
               TextTable::pct(rest(fast[i])),
               TextTable::pct(next[i].miss_frac)});
    }
    t.print();

    std::printf("\nAverages (d-group 1 accesses): demotion-only %s, "
                "next-fastest %s, fastest %s (paper: 50%% / 84%% / "
                "86%%)\n",
                TextTable::pct(meanRegionFrac(demo, 0)).c_str(),
                TextTable::pct(meanRegionFrac(next, 0)).c_str(),
                TextTable::pct(meanRegionFrac(fast, 0)).c_str());

    // Invariant the paper calls out: distance replacement never evicts,
    // so miss rates match across policies.
    bool equal = true;
    for (std::size_t i = 0; i < suite.size(); ++i)
        equal &= demo[i].l2_misses == next[i].l2_misses &&
            next[i].l2_misses == fast[i].l2_misses;
    std::printf("Miss counts identical across policies: %s\n",
                equal ? "yes" : "NO (unexpected)");
    benchFooter();
    return 0;
}
