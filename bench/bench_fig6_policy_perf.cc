/**
 * @file
 * Reproduces Figure 6: performance of the NuRAPID promotion policies
 * relative to the base L2/L3 hierarchy, plus the ideal (constant
 * fastest-d-group latency) bound.
 */

#include "bench/bench_util.hh"

using namespace nurapid;

int
main()
{
    benchHeader("Figure 6: performance of NuRAPID policies vs base "
                "L2/L3",
                "paper averages: demotion-only -0.3%, next-fastest "
                "+5.9%, fastest +5.6%, ideal +7.9%; high-load gains "
                "exceed low-load");

    const auto suite = workloadSuite();
    auto all = runSuites(
        {OrgSpec::baseline(),
         OrgSpec::nurapidDefault(4, PromotionPolicy::DemotionOnly),
         OrgSpec::nurapidDefault(),
         OrgSpec::nurapidDefault(4, PromotionPolicy::Fastest),
         OrgSpec::nurapidIdeal()}, suite);
    const auto &base = all[0];
    const auto &demo = all[1];
    const auto &next = all[2];
    const auto &fast = all[3];
    const auto &ideal = all[4];

    TextTable t;
    t.header({"Benchmark", "class", "demotion-only", "next-fastest",
              "fastest", "ideal"});
    for (std::size_t i = 0; i < suite.size(); ++i) {
        t.row({suite[i].name,
               suite[i].high_load ? "high" : "low",
               TextTable::num(demo[i].ipc / base[i].ipc, 3),
               TextTable::num(next[i].ipc / base[i].ipc, 3),
               TextTable::num(fast[i].ipc / base[i].ipc, 3),
               TextTable::num(ideal[i].ipc / base[i].ipc, 3)});
    }
    t.print();

    auto split = [&](const std::vector<RunMetrics> &runs, bool high) {
        std::vector<RunMetrics> r, b;
        for (std::size_t i = 0; i < suite.size(); ++i) {
            if (suite[i].high_load == high) {
                r.push_back(runs[i]);
                b.push_back(base[i]);
            }
        }
        return geomeanRatio(r, b);
    };

    std::printf("\nGeometric-mean relative performance (base = 1.000):\n");
    TextTable s;
    s.header({"Policy", "overall", "high-load", "low-load", "paper"});
    s.row({"demotion-only", TextTable::num(geomeanRatio(demo, base), 3),
           TextTable::num(split(demo, true), 3),
           TextTable::num(split(demo, false), 3), "0.997 overall"});
    s.row({"next-fastest", TextTable::num(geomeanRatio(next, base), 3),
           TextTable::num(split(next, true), 3),
           TextTable::num(split(next, false), 3),
           "1.059 (high 1.069, low 1.017)"});
    s.row({"fastest", TextTable::num(geomeanRatio(fast, base), 3),
           TextTable::num(split(fast, true), 3),
           TextTable::num(split(fast, false), 3),
           "1.056 (high 1.066, low 1.013)"});
    s.row({"ideal", TextTable::num(geomeanRatio(ideal, base), 3),
           TextTable::num(split(ideal, true), 3),
           TextTable::num(split(ideal, false), 3), "1.079 overall"});
    s.print();
    benchFooter();
    return 0;
}
