/**
 * @file
 * Reproduces Section 5.3.1: random vs true-LRU distance replacement.
 * The paper: under demotion-only, LRU keeps 64% of accesses in the
 * first d-group vs random's 54%; under next-fastest the gap closes
 * (87% vs 84%) because re-promotion corrects random's mistakes.
 */

#include "bench/bench_util.hh"

using namespace nurapid;

int
main()
{
    benchHeader("Section 5.3.1: LRU vs random distance replacement",
                "paper first-d-group access averages: demotion-only "
                "64% (LRU) vs 54% (random); next-fastest 87% (LRU) vs "
                "84% (random)");

    const auto suite = highLoadSuite();
    auto all = runSuites(
        {OrgSpec::nurapidDefault(4, PromotionPolicy::DemotionOnly,
                                 DistanceRepl::Random),
         OrgSpec::nurapidDefault(4, PromotionPolicy::DemotionOnly,
                                 DistanceRepl::LRU),
         OrgSpec::nurapidDefault(4, PromotionPolicy::NextFastest,
                                 DistanceRepl::Random),
         OrgSpec::nurapidDefault(4, PromotionPolicy::NextFastest,
                                 DistanceRepl::LRU),
         OrgSpec::nurapidDefault(4, PromotionPolicy::NextFastest,
                                 DistanceRepl::TreePLRU)}, suite);
    const auto &demo_rnd = all[0];
    const auto &demo_lru = all[1];
    const auto &next_rnd = all[2];
    const auto &next_lru = all[3];
    const auto &next_plru = all[4];

    TextTable t;
    t.header({"Benchmark", "demo/random g1", "demo/LRU g1",
              "next/random g1", "next/LRU g1", "next/tree-PLRU g1"});
    for (std::size_t i = 0; i < suite.size(); ++i) {
        t.row({suite[i].name,
               TextTable::pct(demo_rnd[i].region_frac[0]),
               TextTable::pct(demo_lru[i].region_frac[0]),
               TextTable::pct(next_rnd[i].region_frac[0]),
               TextTable::pct(next_lru[i].region_frac[0]),
               TextTable::pct(next_plru[i].region_frac[0])});
    }
    t.print();

    const double dr = meanRegionFrac(demo_rnd, 0);
    const double dl = meanRegionFrac(demo_lru, 0);
    const double nr = meanRegionFrac(next_rnd, 0);
    const double nl = meanRegionFrac(next_lru, 0);
    std::printf("\nAverages: demotion-only %s (random) vs %s (LRU); "
                "next-fastest %s (random) vs %s (LRU)\n",
                TextTable::pct(dr).c_str(), TextTable::pct(dl).c_str(),
                TextTable::pct(nr).c_str(), TextTable::pct(nl).c_str());
    std::printf("Shape check: LRU-over-random gap shrinks from %s "
                "(demotion-only) to %s (next-fastest) — promotion "
                "compensates for random's errors, as in the paper.\n",
                TextTable::pct(dl - dr).c_str(),
                TextTable::pct(nl - nr).c_str());
    std::printf("Tree-PLRU (the hardware-realizable approximation of "
                "Section 2.4.2) under next-fastest: %s — between "
                "random and true LRU.\n",
                TextTable::pct(meanRegionFrac(next_plru, 0)).c_str());
    benchFooter();
    return 0;
}
