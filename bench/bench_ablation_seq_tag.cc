/**
 * @file
 * Ablation for Section 1's motivation: sequential tag-data access vs
 * parallel access in large caches, and the cost of D-NUCA's way
 * searching — the energy argument that opens the paper.
 */

#include "bench/bench_util.hh"
#include "timing/latency_tables.hh"

using namespace nurapid;

int
main()
{
    benchHeader("Ablation: sequential vs parallel tag-data access "
                "(Section 1)",
                "\"the small increase in overall access time due to "
                "sequential tag-data access is more than offset by the "
                "large savings in energy\"");

    SramMacroModel model(TechParams::the70nm());
    constexpr std::uint64_t MB = 1024 * 1024;

    TextTable t;
    t.header({"Cache", "latency (cy)", "read energy (nJ)"});
    for (std::uint64_t cap : {1 * MB, 2 * MB, 4 * MB, 8 * MB}) {
        auto seq = makeUniformTiming(model, cap, 8, 128, true);
        auto par = makeUniformTiming(model, cap, 8, 128, false);
        t.row({strprintf("%llu MB, sequential",
                         static_cast<unsigned long long>(cap >> 20)),
               std::to_string(seq.latency), TextTable::num(seq.read_nj)});
        t.row({strprintf("%llu MB, parallel",
                         static_cast<unsigned long long>(cap >> 20)),
               std::to_string(par.latency), TextTable::num(par.read_nj)});
    }
    t.print();

    // The D-NUCA searching comparison the introduction makes: the
    // whole centralized tag array costs less to probe than even one
    // data way, so sequential tag-data beats sequential way search.
    auto nr = makeNuRapidTiming(model, 8 * MB, 4, 8, 128);
    auto dn = makeDNucaTiming(model, 8 * MB, 8, 16, 128);
    double multicast_nj = 0;
    for (unsigned r = 0; r < dn.rows; ++r)
        multicast_nj += dn.bank(r, 8).access_nj;

    std::printf("\nLocating a block in the 8 MB cache:\n");
    TextTable s;
    s.header({"Mechanism", "energy (nJ)"});
    s.row({"NuRAPID: one centralized tag probe",
           TextTable::num(nr.tag_read_nj)});
    s.row({"D-NUCA: multicast search of a bank set (8 parallel "
           "tag+data bank accesses)", TextTable::num(multicast_nj)});
    s.row({"D-NUCA: smart-search array probe (ss-energy's first step)",
           TextTable::num(dn.ss_access_nj)});
    s.print();

    std::printf("\nThe tag probe costs %.0fx less than a multicast "
                "search — the asymmetry that drives the paper's 77%% "
                "L2 energy reduction.\n",
                multicast_nj / nr.tag_read_nj);
    benchFooter();
    return 0;
}
