/**
 * @file
 * Reproduces Table 3: the benchmark suite with base-case IPC and L2
 * accesses per kilo-instruction, measured on the conventional L2/L3
 * hierarchy.
 */

#include "bench/bench_util.hh"

using namespace nurapid;

int
main()
{
    benchHeader("Table 3: SPEC2K-stand-in applications — base IPC and "
                "L2 accesses per 1000 instructions",
                "Chishti et al., MICRO-36 2003, Table 3 (paper columns "
                "are the calibration targets of our synthetic profiles)");

    TextTable t;
    t.header({"Benchmark", "Type", "Class", "paper IPC", "ours IPC",
              "paper APKI", "ours APKI", "L2 miss%"});
    const auto spec = OrgSpec::baseline();
    for (const auto &p : workloadSuite()) {
        auto m = runOne(spec, p);
        t.row({p.name, p.fp ? "FP" : "Int",
               p.high_load ? "high-load" : "low-load",
               TextTable::num(p.table3_ipc, 1), TextTable::num(m.ipc, 2),
               TextTable::num(p.table3_l2_apki, 0),
               TextTable::num(m.l2_apki, 1),
               TextTable::pct(m.miss_frac)});
    }
    t.print();
    std::printf("\nBenchmark identities are synthetic stand-ins "
                "calibrated to the paper's Table 3 (see DESIGN.md, "
                "substitution table).\n");
    benchFooter();
    return 0;
}
