/**
 * @file
 * Reproduces Figure 4: distribution of d-group accesses for
 * set-associative vs distance-associative placement (8-way cache over
 * 4 x 2 MB d-groups; both place initially in the fastest d-group and
 * promote next-fastest, isolating the placement-flexibility effect).
 */

#include "bench/bench_util.hh"

using namespace nurapid;

int
main()
{
    benchHeader("Figure 4: set-associative (a) vs distance-associative "
                "(b) placement — fraction of L2 accesses per d-group",
                "paper averages: d-group1 74% (a) vs 86% (b); last two "
                "d-groups 8% (a) vs 2% (b)");

    const auto suite = highLoadSuite();
    auto all = runSuites({OrgSpec::coupledSA(),
                          OrgSpec::nurapidDefault()}, suite);
    const auto &sa = all[0];
    const auto &da = all[1];

    TextTable t;
    t.header({"Benchmark", "a:g1", "a:g2", "a:g3+4", "a:miss",
              "b:g1", "b:g2", "b:g3+4", "b:miss"});
    auto row = [&](const std::string &name, const RunMetrics &a,
                   const RunMetrics &b) {
        t.row({name,
               TextTable::pct(a.region_frac[0]),
               TextTable::pct(a.region_frac[1]),
               TextTable::pct(a.region_frac[2] + a.region_frac[3]),
               TextTable::pct(a.miss_frac),
               TextTable::pct(b.region_frac[0]),
               TextTable::pct(b.region_frac[1]),
               TextTable::pct(b.region_frac[2] + b.region_frac[3]),
               TextTable::pct(b.miss_frac)});
    };
    for (std::size_t i = 0; i < suite.size(); ++i)
        row(suite[i].name, sa[i], da[i]);
    t.print();

    std::printf("\nAverages: set-associative g1=%s, distance-associative "
                "g1=%s (paper: 74%% vs 86%%)\n",
                TextTable::pct(meanRegionFrac(sa, 0)).c_str(),
                TextTable::pct(meanRegionFrac(da, 0)).c_str());
    std::printf("Slowest-two-group accesses: %s vs %s (paper: 8%% vs "
                "2%%)\n",
                TextTable::pct(meanRegionFrac(sa, 2) +
                               meanRegionFrac(sa, 3)).c_str(),
                TextTable::pct(meanRegionFrac(da, 2) +
                               meanRegionFrac(da, 3)).c_str());
    benchFooter();
    return 0;
}
