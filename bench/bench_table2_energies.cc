/**
 * @file
 * Reproduces Table 2: "Example cache energies in nJ".
 */

#include "bench/bench_util.hh"
#include "timing/latency_tables.hh"

using namespace nurapid;

int
main()
{
    benchHeader("Table 2: example cache energies (nJ)",
                "Chishti et al., MICRO-36 2003, Table 2");

    SramMacroModel model(TechParams::the70nm());
    constexpr std::uint64_t MB = 1024 * 1024;

    auto nr4 = makeNuRapidTiming(model, 8 * MB, 4, 8, 128);
    auto nr8 = makeNuRapidTiming(model, 8 * MB, 8, 8, 128);
    auto dn = makeDNucaTiming(model, 8 * MB, 8, 16, 128);
    auto l1 = makeUniformTiming(model, 64 * 1024, 2, 32,
                                /*sequential=*/false, /*ports=*/2, 3);

    double dn_closest = 1e9, dn_farthest = 0;
    for (unsigned c = 0; c < dn.cols; ++c) {
        dn_closest = std::min(dn_closest, dn.bank(0, c).access_nj);
        dn_farthest =
            std::max(dn_farthest, dn.bank(dn.rows - 1, c).access_nj);
    }

    TextTable t;
    t.header({"Operation", "paper nJ", "ours nJ"});
    t.row({"Tag + access: closest of 4, 2-MB d-groups", "0.42",
           TextTable::num(nr4.dgroups.front().read_nj)});
    t.row({"Tag + access: farthest of 4, 2-MB d-groups (incl routing)",
           "3.3", TextTable::num(nr4.dgroups.back().read_nj)});
    t.row({"Tag + access: closest of 8, 1-MB d-groups", "0.4",
           TextTable::num(nr8.dgroups.front().read_nj)});
    t.row({"Tag + access: farthest of 8, 1-MB d-groups (incl routing)",
           "4.6", TextTable::num(nr8.dgroups.back().read_nj)});
    t.row({"Tag + access: closest 64-KB NUCA d-group", "0.18",
           TextTable::num(dn_closest)});
    t.row({"Tag + access: farthest 64-KB NUCA d-group (incl routing)",
           "~1.9", TextTable::num(dn_farthest)});
    t.row({"Access 7-bit-per-entry 16-way NUCA sm-search array", "0.19",
           TextTable::num(dn.ss_access_nj)});
    t.row({"Tag + access: 2 ports of low-latency 64-KB 2-way L1", "0.57",
           TextTable::num(l1.read_nj)});
    t.print();

    std::printf("\nSwap energies (not in Table 2, used by Figure 10):\n");
    TextTable s;
    s.header({"Block move", "nJ"});
    for (unsigned g = 0; g + 1 < 4; ++g) {
        s.row({strprintf("NuRAPID 4-d-group: d-group %u -> %u", g, g + 1),
               TextTable::num(nr4.swapEnergy(g, g + 1))});
    }
    s.row({"D-NUCA bubble swap (rows 0<->1, center column)",
           TextTable::num(dn.swapEnergy(0, 1, 8))});
    s.print();
    benchFooter();
    return 0;
}
