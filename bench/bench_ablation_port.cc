/**
 * @file
 * Ablation for Section 2.3: the cost of NuRAPID's one-ported,
 * non-banked design. Compares the default single port (swaps block new
 * accesses) against an idealized infinitely-ported data array, for both
 * the swap-light next-fastest policy and the swap-heavy fastest policy.
 */

#include "bench/bench_util.hh"

using namespace nurapid;

int
main()
{
    benchHeader("Ablation: one-port serialization (Section 2.3)",
                "paper claim: with few swaps and no multicast searches, "
                "one port does not hinder NuRAPID's performance");

    const auto suite = highLoadSuite();
    std::vector<OrgSpec> specs{OrgSpec::baseline()};
    for (auto promo : {PromotionPolicy::NextFastest,
                       PromotionPolicy::Fastest}) {
        OrgSpec one = OrgSpec::nurapidDefault(4, promo);
        OrgSpec inf = one;
        inf.nurapid.single_port = false;
        specs.push_back(one);
        specs.push_back(inf);
    }
    auto all = runSuites(specs, suite);
    const auto &base = all[0];

    TextTable t;
    t.header({"Configuration", "rel. perf vs base", "port-blocked note"});

    std::size_t at = 1;
    for (auto promo : {PromotionPolicy::NextFastest,
                       PromotionPolicy::Fastest}) {
        const auto &r1 = all[at++];
        const auto &ri = all[at++];
        const double gap = geomeanRatio(ri, r1) - 1.0;
        t.row({strprintf("%s, one port", promotionPolicyName(promo)),
               TextTable::num(geomeanRatio(r1, base), 3), "-"});
        t.row({strprintf("%s, infinite ports", promotionPolicyName(promo)),
               TextTable::num(geomeanRatio(ri, base), 3),
               strprintf("+%.2f%% over one port", 100.0 * gap)});
    }
    t.print();

    std::printf("\nReading: the infinite-port upper bound sits within a "
                "few percent of the one-ported design — the reduction "
                "in swaps makes the single port sufficient, matching "
                "Section 5.4's conclusion.\n");
    benchFooter();
    return 0;
}
