/**
 * @file
 * Ablation for Section 2.4.3: restricting the forward/reverse pointers
 * shrinks their overhead but constrains placement. Sweeps the
 * frames-per-d-group restriction and reports pointer width, storage
 * overhead, first-d-group hit fraction and restriction-forced
 * evictions.
 */

#include "bench/bench_util.hh"
#include "nurapid/pointer_codec.hh"

using namespace nurapid;

int
main()
{
    benchHeader("Ablation: pointer restriction (Section 2.4.3)",
                "paper example: unrestricted pointers are 16 bits "
                "(256 KB, ~3% overhead); a 256-frame restriction "
                "shrinks them to 10 bits");

    const auto suite = highLoadSuite();
    const std::uint32_t restrictions[] = {2048u, 512u, 128u, 32u};
    std::vector<OrgSpec> specs{OrgSpec::nurapidDefault()};
    for (std::uint32_t restriction : restrictions) {
        OrgSpec spec = OrgSpec::nurapidDefault();
        spec.nurapid.frame_restriction = restriction;
        specs.push_back(spec);
    }
    auto all = runSuites(specs, suite);
    const auto &base = all[0];

    TextTable t;
    t.header({"Restriction", "fwd bits", "pointer overhead",
              "g1 accesses", "miss%", "restr. evictions/Macc",
              "rel. perf"});

    auto describe = [&](std::uint32_t restriction,
                        const std::vector<RunMetrics> &runs) {
        auto layout = computePointerLayout(8ull << 20, 128, 8, 4,
                                           restriction);
        double evics = 0, demand = 0;
        for (const auto &r : runs)
            demand += static_cast<double>(r.l2_demand);
        // restriction_evictions are folded into misses; recover the
        // count from the eviction/miss delta is noisy, so report the
        // miss fraction directly alongside.
        (void)evics;
        t.row({restriction == 0 ? "none (fully flexible)"
                                : strprintf("%u frames", restriction),
               std::to_string(layout.forward_bits),
               TextTable::pct(layout.pointer_overhead),
               TextTable::pct(meanRegionFrac(runs, 0)),
               TextTable::pct(meanMissFrac(runs)),
               "-",
               TextTable::num(geomeanRatio(runs, base), 3)});
    };

    describe(0, base);
    for (std::size_t i = 0; i < std::size(restrictions); ++i)
        describe(restrictions[i], all[i + 1]);
    t.print();

    std::printf("\nReading: mild restrictions retain nearly all of the "
                "flexible cache's fast-group hits with much narrower "
                "pointers; very tight restrictions force evictions and "
                "raise the miss rate — supporting the paper's claim "
                "that the pointer overhead can be cut cheaply.\n");
    benchFooter();
    return 0;
}
