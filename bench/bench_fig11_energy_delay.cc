/**
 * @file
 * Reproduces the paper's processor energy-delay claim: "Our cache
 * reduces processor energy-delay by 7% compared to both a conventional
 * cache and NUCA."
 */

#include <cmath>

#include "bench/bench_util.hh"

using namespace nurapid;

int
main()
{
    benchHeader("Figure 11 (energy-delay): processor energy-delay "
                "product relative to base",
                "paper: NuRAPID improves processor energy-delay by ~7% "
                "over both the base hierarchy and D-NUCA");

    const auto suite = workloadSuite();
    auto all = runSuites({OrgSpec::baseline(), OrgSpec::dnucaSsEnergy(),
                          OrgSpec::nurapidDefault()}, suite);
    const auto &base = all[0];
    const auto &dn = all[1];
    const auto &nr = all[2];

    TextTable t;
    t.header({"Benchmark", "base EDP", "D-NUCA/base", "NuRAPID/base",
              "NuRAPID/D-NUCA"});
    double g_dn = 0, g_nr = 0, g_nd = 0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const double rd = dn[i].energy.edp / base[i].energy.edp;
        const double rn = nr[i].energy.edp / base[i].energy.edp;
        t.row({suite[i].name,
               strprintf("%.3e", base[i].energy.edp),
               TextTable::num(rd, 3), TextTable::num(rn, 3),
               TextTable::num(rn / rd, 3)});
        g_dn += std::log(rd);
        g_nr += std::log(rn);
        g_nd += std::log(rn / rd);
    }
    t.print();

    const double n = static_cast<double>(suite.size());
    std::printf("\nGeometric-mean energy-delay vs base: D-NUCA %.3f, "
                "NuRAPID %.3f; NuRAPID vs D-NUCA %.3f\n",
                std::exp(g_dn / n), std::exp(g_nr / n),
                std::exp(g_nd / n));
    std::printf("(paper: NuRAPID ~0.93 of both comparison points)\n");
    benchFooter();
    return 0;
}
