/**
 * @file
 * Reproduces Table 1: the simulated system parameters — printed from
 * the actual configuration objects so the table cannot drift from the
 * code.
 */

#include "bench/bench_util.hh"
#include "mem/conventional_l2l3.hh"

using namespace nurapid;

int
main()
{
    benchHeader("Table 1: system parameters",
                "Chishti et al., MICRO-36 2003, Table 1");

    const CoreParams core = defaultCoreParams();
    const CacheOrg l1i = l1iOrg();
    const CacheOrg l1d = l1dOrg();
    const ConventionalL2L3::Params base{};
    const MainMemory mem;

    TextTable t;
    t.header({"Parameter", "Value"});
    t.row({"Issue width", std::to_string(core.issue_width)});
    t.row({"RUU", strprintf("%u entries", core.ruu_entries)});
    t.row({"LSQ size", strprintf("%u entries", core.lsq_entries)});
    t.row({"L1 i-cache",
           strprintf("%lluK, %u-way, %u byte blocks, %u cycle hit, "
                     "1 port, pipelined",
                     static_cast<unsigned long long>(
                         l1i.capacity_bytes / 1024),
                     l1i.assoc, l1i.block_bytes, core.l1_latency)});
    t.row({"L1 d-cache",
           strprintf("%lluK, %u-way, %u byte blocks, %u cycle hit, "
                     "1 port, pipelined, %u MSHRs",
                     static_cast<unsigned long long>(
                         l1d.capacity_bytes / 1024),
                     l1d.assoc, l1d.block_bytes, core.l1_latency,
                     core.mshrs)});
    t.row({"Base L2",
           strprintf("%llu MB, %u-way, %u B blocks, %u cycles",
                     static_cast<unsigned long long>(
                         base.l2.capacity_bytes >> 20),
                     base.l2.assoc, base.l2.block_bytes,
                     base.l2_latency)});
    t.row({"Base L3",
           strprintf("%llu MB, %u-way, %u B blocks, %u cycles",
                     static_cast<unsigned long long>(
                         base.l3.capacity_bytes >> 20),
                     base.l3.assoc, base.l3.block_bytes,
                     base.l3_latency)});
    t.row({"Memory latency",
           strprintf("130 cycles + 4 cycles per 8 bytes "
                     "(128 B block: %u cycles)", mem.latency(128))});
    t.row({"Branch predictor", "2-level, hybrid, 8K entries"});
    t.row({"Mispredict penalty",
           strprintf("%u cycles", core.mispredict_penalty)});
    t.print();

    std::printf("\nEvaluated organizations (Section 4): 8 MB 16-way "
                "D-NUCA (128 x 64 KB banks, 8 bank-d-groups per set, "
                "7-bit sm-search) and 8 MB 8-way NuRAPID (L-shaped "
                "floorplan, 1 port, non-banked).\n");
    benchFooter();
    return 0;
}
