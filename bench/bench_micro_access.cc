/**
 * @file
 * google-benchmark microbenchmarks: raw simulation throughput of each
 * lower-level cache organization (accesses simulated per second).
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "mem/conventional_l2l3.hh"
#include "nuca/dnuca.hh"
#include "nurapid/coupled_nuca.hh"
#include "nurapid/nurapid_cache.hh"
#include "timing/geometry.hh"

namespace nurapid {
namespace {

const SramMacroModel &
model()
{
    static SramMacroModel m(TechParams::the70nm());
    return m;
}

template <typename Cache>
void
driveCache(benchmark::State &state, Cache &cache)
{
    Rng rng(42);
    Cycle now = 0;
    for (auto _ : state) {
        now += 20;
        const Addr a = rng.below64(16ull << 20) & ~Addr{127};
        auto r = cache.access(a, rng.chance(0.3) ? AccessType::Write
                                                 : AccessType::Read,
                              now);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_NuRapidAccess(benchmark::State &state)
{
    NuRapidCache::Params p;
    p.num_dgroups = static_cast<std::uint32_t>(state.range(0));
    NuRapidCache cache(model(), p);
    driveCache(state, cache);
}
BENCHMARK(BM_NuRapidAccess)->Arg(2)->Arg(4)->Arg(8);

void
BM_DNucaAccess(benchmark::State &state)
{
    DNucaCache::Params p;
    p.search = state.range(0) == 0 ? DNucaSearch::SsPerformance
                                   : DNucaSearch::SsEnergy;
    DNucaCache cache(model(), p);
    driveCache(state, cache);
}
BENCHMARK(BM_DNucaAccess)->Arg(0)->Arg(1);

void
BM_ConventionalAccess(benchmark::State &state)
{
    ConventionalL2L3 cache(model());
    driveCache(state, cache);
}
BENCHMARK(BM_ConventionalAccess);

void
BM_CoupledSAAccess(benchmark::State &state)
{
    CoupledNucaCache::Params p;
    CoupledNucaCache cache(model(), p);
    driveCache(state, cache);
}
BENCHMARK(BM_CoupledSAAccess);

} // namespace
} // namespace nurapid

BENCHMARK_MAIN();
