/**
 * @file
 * Reproduces Figure 8: performance of 2/4/8-d-group NuRAPIDs relative
 * to the base hierarchy.
 */

#include "bench/bench_util.hh"

using namespace nurapid;

int
main()
{
    benchHeader("Figure 8: performance of 2, 4 and 8-d-group NuRAPIDs",
                "paper averages vs base: 2dg +0.5%, 4dg +5.9%, 8dg "
                "+6.1% — the 2dg's 4 MB d-group latency eats its "
                "capacity advantage; 8dg buys little over 4dg");

    const auto suite = workloadSuite();
    auto all = runSuites({OrgSpec::baseline(), OrgSpec::nurapidDefault(2),
                          OrgSpec::nurapidDefault(4),
                          OrgSpec::nurapidDefault(8)}, suite);
    const auto &base = all[0];
    const auto &n2 = all[1];
    const auto &n4 = all[2];
    const auto &n8 = all[3];

    TextTable t;
    t.header({"Benchmark", "class", "2 d-groups", "4 d-groups",
              "8 d-groups"});
    for (std::size_t i = 0; i < suite.size(); ++i) {
        t.row({suite[i].name, suite[i].high_load ? "high" : "low",
               TextTable::num(n2[i].ipc / base[i].ipc, 3),
               TextTable::num(n4[i].ipc / base[i].ipc, 3),
               TextTable::num(n8[i].ipc / base[i].ipc, 3)});
    }
    t.print();

    std::printf("\nGeometric means vs base: 2dg %.3f, 4dg %.3f, 8dg "
                "%.3f (paper: 1.005 / 1.059 / 1.061)\n",
                geomeanRatio(n2, base), geomeanRatio(n4, base),
                geomeanRatio(n8, base));
    benchFooter();
    return 0;
}
