/**
 * @file
 * Reproduces Figure 9: performance of D-NUCA (ss-performance, with its
 * idealized infinite-bandwidth switched network) against the one-ported
 * non-banked 4- and 8-d-group NuRAPIDs.
 */

#include <algorithm>

#include "bench/bench_util.hh"

using namespace nurapid;

int
main()
{
    benchHeader("Figure 9: D-NUCA (ss-performance) vs 4/8-d-group "
                "NuRAPID, relative to base",
                "paper averages vs base: D-NUCA +2.9%, NuRAPID-4 "
                "+5.9%, NuRAPID-8 +6.0%; NuRAPID beats D-NUCA by "
                "~2.9-3.0% on average and up to 15%");

    const auto suite = workloadSuite();
    auto all = runSuites({OrgSpec::baseline(),
                          OrgSpec::dnucaSsPerformance(),
                          OrgSpec::nurapidDefault(4),
                          OrgSpec::nurapidDefault(8)}, suite);
    const auto &base = all[0];
    const auto &dn = all[1];
    const auto &n4 = all[2];
    const auto &n8 = all[3];

    TextTable t;
    t.header({"Benchmark", "class", "D-NUCA", "NuRAPID-4", "NuRAPID-8",
              "NuRAPID-4 / D-NUCA"});
    double best_gain = 0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const double vs = n4[i].ipc / dn[i].ipc;
        best_gain = std::max(best_gain, vs - 1.0);
        t.row({suite[i].name, suite[i].high_load ? "high" : "low",
               TextTable::num(dn[i].ipc / base[i].ipc, 3),
               TextTable::num(n4[i].ipc / base[i].ipc, 3),
               TextTable::num(n8[i].ipc / base[i].ipc, 3),
               TextTable::num(vs, 3)});
    }
    t.print();

    std::printf("\nGeometric means vs base: D-NUCA %.3f, NuRAPID-4 "
                "%.3f, NuRAPID-8 %.3f (paper: 1.029 / 1.059 / 1.060)\n",
                geomeanRatio(dn, base), geomeanRatio(n4, base),
                geomeanRatio(n8, base));
    std::printf("NuRAPID-4 over D-NUCA: %.1f%% average, up to %.1f%% "
                "(paper: 2.9%% average, up to 15%%)\n",
                100.0 * (geomeanRatio(n4, dn) - 1.0), 100.0 * best_gain);

    // Swap-traffic comparison that drives the bandwidth argument.
    double nr_moves = 0, dn_moves = 0, accesses = 0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        nr_moves += static_cast<double>(n4[i].block_moves);
        dn_moves += static_cast<double>(dn[i].block_moves);
        accesses += static_cast<double>(n4[i].l2_demand);
    }
    std::printf("Block moves per demand access: NuRAPID-4 %.3f vs "
                "D-NUCA %.3f (%.1fx fewer swaps)\n",
                nr_moves / accesses, dn_moves / accesses,
                nr_moves > 0 ? dn_moves / nr_moves : 0.0);
    benchFooter();
    return 0;
}
