/**
 * @file
 * Shared helpers for the table/figure reproduction binaries.
 *
 * Every bench prints: the paper artifact it regenerates, the workload
 * suite and simulation length used, the reproduced rows/series, and a
 * short paper-vs-measured summary. Absolute numbers come from our
 * substrate (synthetic workloads + analytic timing model); the *shape*
 * is the reproduction target (see EXPERIMENTS.md).
 */

#ifndef NURAPID_BENCH_BENCH_UTIL_HH
#define NURAPID_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "sim/runner/run_engine.hh"
#include "sim/system.hh"
#include "trace/profiles.hh"

namespace nurapid {

/** Wall-clock anchor for benchFooter(); (re)started by benchHeader(). */
inline std::chrono::steady_clock::time_point &
benchStartTime()
{
    static auto t0 = std::chrono::steady_clock::now();
    return t0;
}

inline void
benchHeader(const std::string &title, const std::string &paper_note)
{
    benchStartTime() = std::chrono::steady_clock::now();
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Paper reference: %s\n", paper_note.c_str());
    const SimLength len = SimLength::fromEnv();
    std::printf("Simulation: %llu warmup + %llu measured references per "
                "run (NURAPID_SIM_SCALE to rescale)\n",
                static_cast<unsigned long long>(len.warmup_records),
                static_cast<unsigned long long>(len.measure_records));
    RunEngine &eng = globalRunEngine();
    std::printf("Run engine: %u worker thread(s) (NURAPID_JOBS)%s%s\n",
                eng.jobsFor(1u << 30),
                eng.options().cache_file.empty()
                    ? "; in-process memoization (set NURAPID_RUN_CACHE "
                      "to share runs across binaries)"
                    : "; run cache ",
                eng.options().cache_file.c_str());
    std::printf("==============================================================\n");
}

/**
 * Prints the suite wall-clock and what the run engine simulated versus
 * recalled from cache — the perf trajectory future PRs measure against.
 */
inline void
benchFooter()
{
    const double wall = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - benchStartTime()).count();
    RunEngine &eng = globalRunEngine();
    std::printf("--------------------------------------------------------------\n");
    std::printf("Wall-clock %.2f s: %llu runs simulated (%.2f s), "
                "%llu cache hits (saved ~%.2f s of simulation)\n", wall,
                static_cast<unsigned long long>(eng.simulatedRuns()),
                eng.simulatedSeconds(),
                static_cast<unsigned long long>(eng.cacheHits()),
                eng.savedSeconds());
}

/** Geometric-mean of per-benchmark ratios vs a base suite. */
inline double
geomeanRatio(const std::vector<RunMetrics> &runs,
             const std::vector<RunMetrics> &base)
{
    return meanRelativePerformance(runs, base);
}

/** Arithmetic mean of one region fraction over a suite. */
inline double
meanRegionFrac(const std::vector<RunMetrics> &runs, std::size_t region)
{
    if (runs.empty())
        return 0.0;
    double sum = 0;
    for (const auto &r : runs)
        sum += region < r.region_frac.size() ? r.region_frac[region] : 0.0;
    return sum / runs.size();
}

inline double
meanMissFrac(const std::vector<RunMetrics> &runs)
{
    if (runs.empty())
        return 0.0;
    double sum = 0;
    for (const auto &r : runs)
        sum += r.miss_frac;
    return sum / runs.size();
}

/** Mean nJ of L2 energy per demand access over a suite. */
inline double
meanL2EnergyPerAccess(const std::vector<RunMetrics> &runs)
{
    double sum = 0;
    for (const auto &r : runs)
        sum += r.l2_demand ? r.energy.l2_cache_nj / r.l2_demand : 0.0;
    return runs.empty() ? 0.0 : sum / runs.size();
}

} // namespace nurapid

#endif // NURAPID_BENCH_BENCH_UTIL_HH
