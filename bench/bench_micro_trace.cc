/**
 * @file
 * google-benchmark microbenchmarks: synthetic trace-generation and
 * branch-predictor throughput.
 */

#include <benchmark/benchmark.h>

#include "cpu/branch_predictor.hh"
#include "trace/profiles.hh"
#include "trace/synthetic.hh"

namespace nurapid {
namespace {

void
BM_SyntheticTrace(benchmark::State &state)
{
    const auto &suite = workloadSuite();
    const auto &profile = suite[state.range(0) % suite.size()];
    SyntheticTrace trace(profile);
    TraceRecord r;
    for (auto _ : state) {
        trace.next(r);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(profile.name);
}
BENCHMARK(BM_SyntheticTrace)->Arg(0)->Arg(6)->Arg(14);

void
BM_BranchPredictor(benchmark::State &state)
{
    BranchPredictor bp;
    std::uint32_t pc = 0x400000;
    bool taken = false;
    for (auto _ : state) {
        taken = !taken || (pc & 0x10);
        pc = 0x400000 + ((pc * 29) & 0x3ff);
        benchmark::DoNotOptimize(bp.predictAndUpdate(pc, taken));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredictor);

} // namespace
} // namespace nurapid

BENCHMARK_MAIN();
