/**
 * @file
 * Ablation (ours): where the NUCA family sits — static S-NUCA vs
 * adaptive D-NUCA vs NuRAPID, all with the same 8 MB of non-uniform
 * capacity. S-NUCA pins each block's latency by address; the adaptive
 * designs move hot data close. Related-work context for the paper.
 */

#include "bench/bench_util.hh"

using namespace nurapid;

int
main()
{
    benchHeader("Ablation: S-NUCA vs D-NUCA vs NuRAPID",
                "S-NUCA (static mapping) is the ASPLOS'02 baseline "
                "D-NUCA improves on; NuRAPID removes D-NUCA's "
                "coupling. Expected: static < adaptive everywhere");

    const auto suite = highLoadSuite();
    auto all = runSuites({OrgSpec::baseline(), OrgSpec::snucaDefault(),
                          OrgSpec::dnucaSsPerformance(),
                          OrgSpec::nurapidDefault()}, suite);
    const auto &base = all[0];
    const auto &sn = all[1];
    const auto &dn = all[2];
    const auto &nr = all[3];

    TextTable t;
    t.header({"Benchmark", "S-NUCA", "D-NUCA", "NuRAPID",
              "S-NUCA fast hits", "NuRAPID fast hits"});
    for (std::size_t i = 0; i < suite.size(); ++i) {
        t.row({suite[i].name,
               TextTable::num(sn[i].ipc / base[i].ipc, 3),
               TextTable::num(dn[i].ipc / base[i].ipc, 3),
               TextTable::num(nr[i].ipc / base[i].ipc, 3),
               TextTable::pct(sn[i].region_frac[0]),
               TextTable::pct(nr[i].region_frac[0])});
    }
    t.print();

    std::printf("\nGeometric means vs base: S-NUCA %.3f, D-NUCA %.3f, "
                "NuRAPID %.3f\n", geomeanRatio(sn, base),
                geomeanRatio(dn, base), geomeanRatio(nr, base));
    std::printf("S-NUCA's hits land in the fastest megabyte only when "
                "the address happens to map there (~1/8 of the time); "
                "the adaptive designs pull hot data close.\n");
    std::printf("L2 energy per access: S-NUCA %.2f, D-NUCA %.2f, "
                "NuRAPID %.2f nJ (S-NUCA needs no searches or swaps, "
                "but pays mid-grid latency on every access)\n",
                meanL2EnergyPerAccess(sn), meanL2EnergyPerAccess(dn),
                meanL2EnergyPerAccess(nr));
    benchFooter();
    return 0;
}
