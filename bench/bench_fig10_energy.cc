/**
 * @file
 * Reproduces the paper's L2 dynamic-energy comparison (the energy
 * section following 5.4.1; the abstract's headline: NuRAPID consumes
 * 77% less L2 dynamic energy than D-NUCA, with 61% fewer d-group
 * accesses). D-NUCA uses its energy-optimal ss-energy policy here, as
 * the paper does for energy numbers.
 */

#include "bench/bench_util.hh"

using namespace nurapid;

int
main()
{
    benchHeader("Figure 10 (energy): L2 dynamic energy per demand "
                "access; data-array access counts",
                "paper: NuRAPID uses 77% less L2 dynamic energy than "
                "D-NUCA and performs 61% fewer d-group accesses");

    const auto suite = workloadSuite();
    auto all = runSuites({OrgSpec::baseline(), OrgSpec::dnucaSsEnergy(),
                          OrgSpec::dnucaSsPerformance(),
                          OrgSpec::nurapidDefault()}, suite);
    const auto &base = all[0];
    const auto &den = all[1];
    const auto &dperf = all[2];
    const auto &nr = all[3];

    TextTable t;
    t.header({"Benchmark", "base nJ/acc", "D-NUCA ss-perf",
              "D-NUCA ss-energy", "NuRAPID", "NuRAPID/ss-energy"});
    for (std::size_t i = 0; i < suite.size(); ++i) {
        auto per = [](const RunMetrics &m) {
            return m.l2_demand ? m.energy.l2_cache_nj / m.l2_demand : 0.0;
        };
        t.row({suite[i].name, TextTable::num(per(base[i])),
               TextTable::num(per(dperf[i])),
               TextTable::num(per(den[i])), TextTable::num(per(nr[i])),
               TextTable::pct(per(nr[i]) / per(den[i]))});
    }
    t.print();

    const double e_nr = meanL2EnergyPerAccess(nr);
    const double e_den = meanL2EnergyPerAccess(den);
    const double e_dperf = meanL2EnergyPerAccess(dperf);
    std::printf("\nAverage L2 dynamic energy per access: base %.2f, "
                "D-NUCA ss-perf %.2f, D-NUCA ss-energy %.2f, NuRAPID "
                "%.2f nJ\n", meanL2EnergyPerAccess(base), e_dperf,
                e_den, e_nr);
    std::printf("NuRAPID saves %.0f%% vs ss-energy and %.0f%% vs "
                "ss-performance (paper: 77%% vs the D-NUCA "
                "comparison point)\n",
                100.0 * (1.0 - e_nr / e_den),
                100.0 * (1.0 - e_nr / e_dperf));

    double nr_acc = 0, dn_acc = 0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        nr_acc += static_cast<double>(nr[i].data_array_accesses);
        dn_acc += static_cast<double>(den[i].data_array_accesses);
    }
    std::printf("Data-array (d-group/bank) accesses: NuRAPID performs "
                "%.0f%% fewer than D-NUCA (paper: 61%% fewer)\n",
                100.0 * (1.0 - nr_acc / dn_acc));
    benchFooter();
    return 0;
}
