/**
 * @file
 * Reproduces Table 4: "Cache latencies in cycles" — per-megabyte access
 * latency for 2/4/8-d-group NuRAPID and the D-NUCA bank grid.
 */

#include "bench/bench_util.hh"
#include "timing/latency_tables.hh"

using namespace nurapid;

int
main()
{
    benchHeader("Table 4: cache latencies in cycles",
                "Chishti et al., MICRO-36 2003, Table 4 "
                "(paper anchors: fastest d-group 19/14/12 cycles for "
                "2/4/8 d-groups; D-NUCA averages 7..29)");

    SramMacroModel model(TechParams::the70nm());
    constexpr std::uint64_t MB = 1024 * 1024;

    auto nr2 = makeNuRapidTiming(model, 8 * MB, 2, 8, 128);
    auto nr4 = makeNuRapidTiming(model, 8 * MB, 4, 8, 128);
    auto nr8 = makeNuRapidTiming(model, 8 * MB, 8, 8, 128);
    auto dn = makeDNucaTiming(model, 8 * MB, 8, 16, 128);

    auto mb_of = [](const NuRapidTiming &t, unsigned mb) {
        const unsigned mb_per_group = 8 / t.numDGroups();
        return t.dgroups[mb / mb_per_group].total_latency;
    };

    TextTable t;
    t.header({"Capacity", "2 d-groups", "4 d-groups", "8 d-groups",
              "D-NUCA range (avg)"});
    static const char *names[8] = {
        "1st MB (fastest)", "2nd MB", "3rd MB", "4th MB",
        "5th MB", "6th MB", "7th MB", "8th MB (slowest)"};
    for (unsigned mb = 0; mb < 8; ++mb) {
        t.row({names[mb],
               std::to_string(mb_of(nr2, mb)),
               std::to_string(mb_of(nr4, mb)),
               std::to_string(mb_of(nr8, mb)),
               strprintf("%u-%u (%.1f)", dn.minLatencyOfMB(mb),
                         dn.maxLatencyOfMB(mb), dn.avgLatencyOfMB(mb))});
    }
    t.print();

    std::printf("\nNuRAPID latencies include the %u-cycle sequential tag "
                "probe; D-NUCA banks use parallel tag-data access plus "
                "switched-network hops.\n", nr4.tag_latency);

    // Context rows: the conventional hierarchy the base case uses.
    auto l2 = makeUniformTiming(model, 1 * MB, 8, 128, true);
    auto l3 = makeUniformTiming(model, 8 * MB, 8, 128, true);
    std::printf("Model-derived uniform caches (Table 1 uses 11/43 as "
                "configured inputs): 1 MB L2 = %u cycles, 8 MB L3 = %u "
                "cycles.\n", l2.latency, l3.latency);
    benchFooter();
    return 0;
}
