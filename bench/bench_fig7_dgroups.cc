/**
 * @file
 * Reproduces Figure 7: distribution of d-group accesses for NuRAPID
 * with 2, 4 and 8 d-groups (next-fastest, random distance repl).
 */

#include "bench/bench_util.hh"

using namespace nurapid;

int
main()
{
    benchHeader("Figure 7: d-group access distribution for 2/4/8 "
                "d-groups",
                "paper averages for first-d-group accesses: 90% (2dg), "
                "85% (4dg), 77% (8dg); identical miss rates");

    const auto suite = highLoadSuite();
    auto all = runSuites({OrgSpec::nurapidDefault(2),
                          OrgSpec::nurapidDefault(4),
                          OrgSpec::nurapidDefault(8)}, suite);
    const auto &n2 = all[0];
    const auto &n4 = all[1];
    const auto &n8 = all[2];

    auto rest = [](const RunMetrics &m) {
        double r = 0;
        for (std::size_t g = 1; g < m.region_frac.size(); ++g)
            r += m.region_frac[g];
        return r;
    };

    TextTable t;
    t.header({"Benchmark", "2dg:g1", "2dg:rest", "4dg:g1", "4dg:rest",
              "8dg:g1", "8dg:rest", "miss"});
    for (std::size_t i = 0; i < suite.size(); ++i) {
        t.row({suite[i].name,
               TextTable::pct(n2[i].region_frac[0]),
               TextTable::pct(rest(n2[i])),
               TextTable::pct(n4[i].region_frac[0]),
               TextTable::pct(rest(n4[i])),
               TextTable::pct(n8[i].region_frac[0]),
               TextTable::pct(rest(n8[i])),
               TextTable::pct(n4[i].miss_frac)});
    }
    t.print();

    std::printf("\nAverages (first-d-group): 2dg %s, 4dg %s, 8dg %s "
                "(paper: 90%% / 85%% / 77%%)\n",
                TextTable::pct(meanRegionFrac(n2, 0)).c_str(),
                TextTable::pct(meanRegionFrac(n4, 0)).c_str(),
                TextTable::pct(meanRegionFrac(n8, 0)).c_str());

    // Paper: the 8-d-group cache incurs ~2.2x the promotion swaps of
    // the 4-d-group cache.
    double promo4 = 0, promo8 = 0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        promo4 += static_cast<double>(n4[i].promotions);
        promo8 += static_cast<double>(n8[i].promotions);
    }
    std::printf("Promotion swaps, 8dg vs 4dg: %.2fx (paper: 2.2x)\n",
                promo4 > 0 ? promo8 / promo4 : 0.0);
    benchFooter();
    return 0;
}
