/**
 * @file
 * Run-engine tests: parallel determinism (jobs=4 bit-identical to
 * jobs=1 across organizations), memoization (warm cache returns
 * identical metrics without re-simulating), fingerprint stability, and
 * cache-file persistence round trips.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/gang.hh"
#include "sim/runner/run_engine.hh"
#include "sim/system.hh"
#include "trace/profiles.hh"

namespace nurapid {
namespace {

SimLength
tinyLength()
{
    return {20'000, 60'000};
}

std::vector<RunRequest>
crossProduct()
{
    const std::vector<OrgSpec> orgs = {
        OrgSpec::baseline(),
        OrgSpec::nurapidDefault(),
        OrgSpec::dnucaSsPerformance(),
        OrgSpec::coupledSA(),
    };
    const std::vector<std::string> names = {"applu", "mcf", "gzip"};
    std::vector<RunRequest> reqs;
    for (const auto &org : orgs) {
        for (const auto &name : names)
            reqs.push_back(RunRequest{org, findProfile(name),
                                      tinyLength()});
    }
    return reqs;
}

RunEngineOptions
uncached(unsigned jobs)
{
    RunEngineOptions opts;
    opts.jobs = jobs;
    opts.use_cache = false;
    return opts;
}

TEST(RunEngine, ParallelBitIdenticalToSerial)
{
    const auto reqs = crossProduct();

    RunEngine serial(uncached(1));
    RunEngine parallel(uncached(4));
    auto a = serial.runMany(reqs);
    auto b = parallel.runMany(reqs);

    ASSERT_EQ(a.size(), reqs.size());
    ASSERT_EQ(b.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_TRUE(identicalMetrics(a[i], b[i]))
            << reqs[i].spec.description() << " / "
            << reqs[i].profile.name << ": parallel run diverged "
            << "(serial ipc " << a[i].ipc << ", parallel ipc "
            << b[i].ipc << ")";
        EXPECT_FALSE(b[i].from_cache);
        EXPECT_GT(b[i].instructions, 0u);
    }
    EXPECT_EQ(serial.simulatedRuns(), reqs.size());
    EXPECT_EQ(parallel.simulatedRuns(), reqs.size());
}

TEST(RunEngine, RepeatedRequestsInOneBatchSimulateOnce)
{
    RunEngineOptions opts;
    opts.jobs = 2;
    RunEngine engine(opts);
    const RunRequest req{OrgSpec::nurapidDefault(), findProfile("gzip"),
                         tinyLength()};
    auto runs = engine.runMany({req, req, req});
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_EQ(engine.simulatedRuns(), 1u);
    EXPECT_EQ(engine.cacheHits(), 2u);
    EXPECT_TRUE(identicalMetrics(runs[0], runs[1]));
    EXPECT_TRUE(identicalMetrics(runs[0], runs[2]));
    EXPECT_FALSE(runs[0].from_cache);
    EXPECT_TRUE(runs[1].from_cache);
}

TEST(RunEngine, WarmCacheReturnsIdenticalMetricsWithoutSimulating)
{
    const auto reqs = crossProduct();
    RunEngineOptions opts;
    opts.jobs = 2;
    RunEngine engine(opts);

    auto cold = engine.runMany(reqs);
    const auto simulated_after_cold = engine.simulatedRuns();
    EXPECT_EQ(simulated_after_cold, reqs.size());

    auto warm = engine.runMany(reqs);
    EXPECT_EQ(engine.simulatedRuns(), simulated_after_cold)
        << "warm cache re-simulated";
    EXPECT_EQ(engine.cacheHits(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_TRUE(identicalMetrics(cold[i], warm[i]));
        EXPECT_TRUE(warm[i].from_cache);
    }
}

TEST(RunEngine, CacheFilePersistsAcrossEngines)
{
    const std::string path = "test_runner_cache.json";
    std::remove(path.c_str());

    const std::vector<RunRequest> reqs = {
        RunRequest{OrgSpec::nurapidDefault(), findProfile("applu"),
                   tinyLength()},
        RunRequest{OrgSpec::baseline(), findProfile("applu"),
                   tinyLength()},
    };

    RunEngineOptions opts;
    opts.jobs = 1;
    opts.cache_file = path;
    std::vector<RunMetrics> first;
    {
        RunEngine engine(opts);
        first = engine.runMany(reqs);
        EXPECT_EQ(engine.simulatedRuns(), reqs.size());
    }
    {
        RunEngine engine(opts);  // loads the file written above
        auto second = engine.runMany(reqs);
        EXPECT_EQ(engine.simulatedRuns(), 0u)
            << "persisted cache was not used";
        EXPECT_EQ(engine.cacheHits(), reqs.size());
        for (std::size_t i = 0; i < reqs.size(); ++i)
            EXPECT_TRUE(identicalMetrics(first[i], second[i]));
    }
    std::remove(path.c_str());
}

TEST(RunCache, FingerprintSeparatesRunInputs)
{
    const auto &prof = findProfile("applu");
    const auto base = fingerprintRun(OrgSpec::baseline(), prof,
                                     tinyLength());

    EXPECT_EQ(fingerprintRun(OrgSpec::baseline(), prof, tinyLength()).key,
              base.key);
    EXPECT_NE(fingerprintRun(OrgSpec::nurapidDefault(), prof,
                             tinyLength()).key, base.key);
    EXPECT_NE(fingerprintRun(OrgSpec::baseline(), findProfile("mcf"),
                             tinyLength()).key, base.key);
    EXPECT_NE(fingerprintRun(OrgSpec::baseline(), prof,
                             SimLength{20'000, 60'001}).key, base.key);

    // Policy fields beyond the description string must participate.
    OrgSpec restricted = OrgSpec::nurapidDefault();
    restricted.nurapid.frame_restriction = 8;
    EXPECT_NE(fingerprintRun(restricted, prof, tinyLength()).key,
              fingerprintRun(OrgSpec::nurapidDefault(), prof,
                             tinyLength()).key);
}

TEST(RunCache, MetricsJsonRoundTripIsExact)
{
    RunMetrics m;
    m.workload = "applu";
    m.organization = "NuRAPID 4 d-groups (next-fastest, random)";
    m.ipc = 0.912345678901234567;
    m.cycles = 123456789;
    m.instructions = 987654321;
    m.l2_demand = 44'000;
    m.l2_hits = 40'000;
    m.l2_misses = 4'000;
    m.l2_apki = 44.25;
    m.region_frac = {0.5, 0.25, 0.125, 0.0625};
    m.miss_frac = 1.0 / 3.0;
    m.promotions = 777;
    m.demotions = 888;
    m.block_moves = 999;
    m.data_array_accesses = 123;
    m.energy.core_nj = 1.0e9 / 3.0;
    m.energy.l1_nj = 0.1;
    m.energy.l2_cache_nj = 2.5e8;
    m.energy.memory_nj = 3.14159265358979;
    m.energy.total_nj = 5.0e9;
    m.energy.cycles = 123456789;
    m.energy.edp = 6.17e17;
    m.wall_seconds = 1.25;

    RunMetrics out;
    ASSERT_TRUE(runMetricsFromJson(
        Json::parse(runMetricsToJson(m).dump()), out));
    EXPECT_TRUE(identicalMetrics(m, out));
    EXPECT_EQ(out.wall_seconds, m.wall_seconds);
}

TEST(RunCache, DigestCollisionDegradesToMiss)
{
    // The stored full key guards against digest collisions: a lookup
    // whose key disagrees with the stored one must miss, never return
    // the colliding entry's metrics.
    RunMetrics m;
    m.workload = "applu";
    m.ipc = 1.25;

    RunCache cache;
    cache.store(RunKey{"key-A", "00000000deadbeef"}, m);

    RunMetrics out;
    EXPECT_TRUE(cache.lookup(RunKey{"key-A", "00000000deadbeef"}, out));
    EXPECT_EQ(out.ipc, m.ipc);
    EXPECT_FALSE(cache.lookup(RunKey{"key-B", "00000000deadbeef"}, out))
        << "colliding digest returned the wrong run's metrics";
}

TEST(RunCache, GangModeSeparatesCacheKeys)
{
    // Results produced by the gang replayer and the per-org path are
    // bit-identical by contract, but the cache must never be the thing
    // asserting that: a cache populated under one mode has to miss for
    // the other, so a --gang off verification run really re-simulates.
    const auto &prof = findProfile("applu");
    GangMode on;
    GangMode off;
    off.enabled = false;

    const auto k_on = fingerprintRun(OrgSpec::baseline(), prof,
                                     tinyLength(), on);
    const auto k_off = fingerprintRun(OrgSpec::baseline(), prof,
                                      tinyLength(), off);
    EXPECT_NE(k_on.key, k_off.key);
    EXPECT_NE(k_on.digest, k_off.digest);

    // The gang width changes scheduling, so it separates keys too.
    GangMode capped;
    capped.width_cap = 2;
    EXPECT_NE(fingerprintRun(OrgSpec::baseline(), prof, tinyLength(),
                             capped).key, k_on.key);

    RunMetrics m;
    m.workload = "applu";
    m.ipc = 1.0;
    RunCache cache;
    cache.store(k_on, m);

    RunMetrics out;
    EXPECT_TRUE(cache.lookup(k_on, out));
    EXPECT_FALSE(cache.lookup(k_off, out))
        << "gang-mode cache entry served to a gang-off lookup";
}

TEST(RunCache, TamperedPersistedKeyDegradesToMiss)
{
    // A cache file whose stored key was corrupted (bit rot, manual
    // editing) must degrade to a miss for the real fingerprint.
    const std::string path = "test_runner_tampered.json";
    std::remove(path.c_str());

    const auto key = fingerprintRun(OrgSpec::baseline(),
                                    findProfile("applu"), tinyLength());
    RunMetrics m;
    m.workload = "applu";
    m.ipc = 0.5;
    {
        RunCache cache;
        cache.store(key, m);
        ASSERT_TRUE(cache.saveFile(path));
    }

    // Rewrite the file with the entry's key field replaced.
    Json root;
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        std::string text;
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            text.append(buf, n);
        std::fclose(f);
        root = Json::parse(text);
    }
    ASSERT_TRUE(root.isObject());
    Json entries = Json::object();
    for (const auto &kv : root.get("entries").members()) {
        Json e = Json::object();
        e.set("key", Json(std::string("tampered")));
        e.set("metrics", kv.second.get("metrics"));
        entries.set(kv.first, std::move(e));
    }
    root.set("entries", std::move(entries));
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        const std::string text = root.dump();
        std::fputs(text.c_str(), f);
        std::fclose(f);
    }

    RunCache reloaded;
    EXPECT_EQ(reloaded.loadFile(path), 1u);
    RunMetrics out;
    EXPECT_FALSE(reloaded.lookup(key, out))
        << "tampered entry served as a hit";
    std::remove(path.c_str());
}

TEST(RunCache, CorruptFileIsIgnored)
{
    const std::string path = "test_runner_corrupt.json";
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("{ not json", f);
        std::fclose(f);
    }
    RunCache cache;
    EXPECT_EQ(cache.loadFile(path), 0u);
    EXPECT_EQ(cache.size(), 0u);
    std::remove(path.c_str());

    // Missing file: silently empty.
    EXPECT_EQ(cache.loadFile("does_not_exist_12345.json"), 0u);
}

} // namespace
} // namespace nurapid
