/** @file Tests for the set-associative-placement NUCA (Figure 4's "a"). */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "nurapid/coupled_nuca.hh"
#include "timing/geometry.hh"

namespace nurapid {
namespace {

const SramMacroModel &
model()
{
    static SramMacroModel m(TechParams::the70nm());
    return m;
}

CoupledNucaCache::Params
smallParams(PromotionPolicy promo = PromotionPolicy::NextFastest)
{
    CoupledNucaCache::Params p;
    p.capacity_bytes = 64 * 1024;
    p.assoc = 8;
    p.block_bytes = 128;
    p.num_dgroups = 4;
    p.promotion = promo;
    return p;
}

Addr
setStride(const CoupledNucaCache::Params &p)
{
    return Addr{p.capacity_bytes} / p.assoc;
}

TEST(CoupledNuca, MissThenHitInFastestGroup)
{
    CoupledNucaCache c(model(), smallParams());
    EXPECT_FALSE(c.access(0x0, AccessType::Read, 0).hit);
    auto h = c.access(0x0, AccessType::Read, 10000);
    EXPECT_TRUE(h.hit);
    // Initial placement in the fastest d-group (the isolation setup of
    // Section 5.2.1): the re-access hits region 0.
    EXPECT_EQ(c.regionHits().count(0), 1u);
}

TEST(CoupledNuca, OnlyTwoSetBlocksFitInFastestGroup)
{
    // The restriction NuRAPID removes: with 8 ways over 4 d-groups,
    // exactly 2 ways of a set live in each d-group, so a hot set with
    // more than 2 blocks cannot keep them all fast.
    auto p = smallParams();
    CoupledNucaCache c(model(), p);
    const Addr stride = setStride(p);
    Cycle now = 0;
    // Touch 8 blocks of one set repeatedly.
    for (int round = 0; round < 4; ++round)
        for (std::uint32_t w = 0; w < p.assoc; ++w)
            c.access(w * stride, AccessType::Read, now += 10000);
    c.resetStats();
    for (std::uint32_t w = 0; w < p.assoc; ++w)
        c.access(w * stride, AccessType::Read, now += 10000);
    // At most 2 of the 8 hits can come from d-group 0.
    EXPECT_LE(c.regionHits().count(0), 2u);
    EXPECT_EQ(c.regionHits().total(), 8u);
}

TEST(CoupledNuca, PromotionSwapsWithinSet)
{
    auto p = smallParams();
    CoupledNucaCache c(model(), p);
    const Addr stride = setStride(p);
    Cycle now = 0;
    // Fill 4 blocks of a set; the later fills bubble older ones out of
    // d-group 0.
    for (std::uint32_t w = 0; w < 4; ++w)
        c.access(w * stride, AccessType::Read, now += 10000);
    c.resetStats();
    // Re-access block 0 twice; the second access must be faster or
    // equal (it was promoted on the first hit).
    auto first = c.access(0, AccessType::Read, now += 10000);
    auto second = c.access(0, AccessType::Read, now += 10000);
    EXPECT_TRUE(first.hit);
    EXPECT_TRUE(second.hit);
    EXPECT_LE(second.latency, first.latency);
    EXPECT_GE(c.stats().counterValue("promotions"), 1u);
}

TEST(CoupledNuca, MissCountMatchesNuRapidShape)
{
    // Both caches are 64 KB with the same set mapping, so a plain
    // conflict pattern misses identically (hits/misses conservation).
    CoupledNucaCache c(model(), smallParams());
    Rng rng(31);
    Cycle now = 0;
    std::uint64_t accesses = 25000;
    for (std::uint64_t i = 0; i < accesses; ++i) {
        now += 15;
        c.access(rng.below64(3 * 64 * 1024) & ~Addr{127},
                 AccessType::Read, now);
    }
    const auto &s = c.stats();
    EXPECT_EQ(s.counterValue("hits") + s.counterValue("misses"),
              s.counterValue("demand_accesses"));
    EXPECT_EQ(s.counterValue("demand_accesses"), accesses);
}

TEST(CoupledNuca, DemotionOnlyNeverPromotes)
{
    CoupledNucaCache c(model(), smallParams(PromotionPolicy::DemotionOnly));
    Rng rng(7);
    Cycle now = 0;
    for (int i = 0; i < 20000; ++i) {
        now += 15;
        c.access(rng.below64(2 * 64 * 1024) & ~Addr{127},
                 AccessType::Read, now);
    }
    EXPECT_EQ(c.stats().counterValue("promotions"), 0u);
}

TEST(CoupledNuca, EnergyGrowsWithActivity)
{
    CoupledNucaCache c(model(), smallParams());
    EXPECT_DOUBLE_EQ(c.cacheEnergyNJ(), 0.0);
    c.access(0x0, AccessType::Read, 0);
    const double one = c.cacheEnergyNJ();
    EXPECT_GT(one, 0.0);
    c.access(0x0, AccessType::Read, 10000);
    EXPECT_GT(c.cacheEnergyNJ(), one);
}

} // namespace
} // namespace nurapid
