/**
 * @file
 * Structure-of-arrays layout tests: the packed tag/valid/dirty/LRU
 * planes must stay consistent with a plain array-of-structs reference
 * model under randomized fill/evict/touch churn, and the configured
 * SIMD probe kernel must agree bit-for-bit with the always-compiled
 * scalar reference on randomized rows (including pad lanes and
 * duplicate tags).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <vector>

#include "common/rng.hh"
#include "mem/tag_probe.hh"
#include "nurapid/data_array.hh"
#include "nurapid/tag_array.hh"

namespace nurapid {
namespace {

std::uint64_t
rand64(Rng &rng)
{
    return (std::uint64_t{rng.next()} << 32) | rng.next();
}

TEST(TagProbe, MatchesScalarOnRandomRows)
{
    Rng rng(11, 0x50a);
    for (const std::uint32_t stride : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        for (unsigned round = 0; round < 200; ++round) {
            std::vector<std::uint64_t> row(stride);
            // Small tag alphabet so matches (and duplicates) are common.
            for (auto &t : row)
                t = rng.below(8);
            const std::uint64_t needle = rng.below(8);
            EXPECT_EQ(probeMatch(row.data(), stride, needle),
                      probeMatchScalar(row.data(), stride, needle))
                << "stride " << stride;

            // Random wide tags exercise full 64-bit compares.
            for (auto &t : row)
                t = rand64(rng);
            row[rng.below(stride)] = needle;
            EXPECT_EQ(probeMatch(row.data(), stride, needle),
                      probeMatchScalar(row.data(), stride, needle))
                << "stride " << stride;
        }
    }
}

TEST(TagProbe, MaskedMatchesScalarOnRandomRows)
{
    Rng rng(13, 0x50b);
    for (const std::uint32_t stride : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        for (unsigned round = 0; round < 200; ++round) {
            std::vector<std::uint64_t> row(stride);
            for (auto &t : row)
                t = rand64(rng);
            // The smart-search shape: compare only the low k bits.
            const std::uint64_t mask =
                (std::uint64_t{1} << (1 + rng.below(63))) - 1;
            const std::uint64_t needle = row[rng.below(stride)] & mask;
            EXPECT_EQ(probeMatchMasked(row.data(), stride, mask, needle),
                      probeMatchMaskedScalar(row.data(), stride, mask,
                                             needle))
                << "stride " << stride << " mask " << mask;
        }
    }
}

TEST(TagProbe, SwapBitsExchangesExactlyTwoBits)
{
    Rng rng(17, 0x50c);
    for (unsigned round = 0; round < 500; ++round) {
        const std::uint64_t word = rand64(rng);
        const std::uint32_t a = rng.below(64);
        const std::uint32_t b = rng.below(64);
        std::uint64_t got = word;
        swapBits(got, a, b);
        std::uint64_t want = word;
        const std::uint64_t bit_a = (word >> a) & 1;
        const std::uint64_t bit_b = (word >> b) & 1;
        want &= ~((std::uint64_t{1} << a) | (std::uint64_t{1} << b));
        want |= (bit_b << a) | (bit_a << b);
        EXPECT_EQ(got, want);
    }
}

/** Plain array-of-structs shadow of one TagArray set. */
struct RefEntry
{
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint8_t group = 0;
    std::uint32_t frame = 0;
};

TEST(SoaLayout, TagArrayPlanesTrackReferenceModel)
{
    constexpr std::uint32_t kSets = 16;
    constexpr std::uint32_t kAssoc = 8;
    TagArray t(std::uint64_t{kSets} * kAssoc * 128, kAssoc, 128);
    ASSERT_EQ(t.numSets(), kSets);

    std::vector<std::vector<RefEntry>> ref(
        kSets, std::vector<RefEntry>(kAssoc));
    // Recency per set, most recent first; seeded in way order to match
    // the array's initial intrusive chain.
    std::vector<std::list<std::uint32_t>> recency(kSets);
    for (auto &r : recency) {
        for (std::uint32_t w = 0; w < kAssoc; ++w)
            r.push_back(w);
    }

    const auto promote = [&](std::uint32_t s, std::uint32_t w) {
        recency[s].remove(w);
        recency[s].push_front(w);
    };

    Rng rng(23, 0x50d);
    for (unsigned op = 0; op < 20000; ++op) {
        const std::uint32_t s = rng.below(kSets);
        switch (rng.below(5)) {
          case 0: {  // fill the replacement victim (miss path)
            const std::uint32_t w = t.victimWay(s);
            // Reference victim: first invalid way, else the LRU way.
            std::uint32_t want = kAssoc;
            for (std::uint32_t cand = 0; cand < kAssoc; ++cand) {
                if (!ref[s][cand].valid) {
                    want = cand;
                    break;
                }
            }
            if (want == kAssoc)
                want = recency[s].back();
            ASSERT_EQ(w, want) << "set " << s;
            RefEntry &e = ref[s][w];
            e.tag = rng.below(64);
            e.valid = true;
            e.dirty = rng.below(2) != 0;
            e.group = static_cast<std::uint8_t>(rng.below(4));
            e.frame = rng.below(512);
            t.fillEntry(s, w, e.tag, e.dirty, e.group, e.frame);
            t.touch(s, w);
            promote(s, w);
            break;
          }
          case 1: {  // touch a random way (hit path)
            const std::uint32_t w = rng.below(kAssoc);
            t.touch(s, w);
            promote(s, w);
            break;
          }
          case 2: {  // evict a random way
            const std::uint32_t w = rng.below(kAssoc);
            t.invalidateEntry(s, w);
            ref[s][w].valid = false;
            ref[s][w].dirty = false;
            break;
          }
          case 3: {  // flip dirty (writeback / store hit)
            const std::uint32_t w = rng.below(kAssoc);
            const bool d = rng.below(2) != 0;
            t.setDirty(s, w, d);
            ref[s][w].dirty = d;
            break;
          }
          case 4: {  // retarget the forward pointer (promote/demote)
            const std::uint32_t w = rng.below(kAssoc);
            ref[s][w].group = static_cast<std::uint8_t>(rng.below(4));
            ref[s][w].frame = rng.below(512);
            t.setForward(s, w, ref[s][w].group, ref[s][w].frame);
            break;
          }
        }
    }

    std::uint64_t want_valid = 0;
    for (std::uint32_t s = 0; s < kSets; ++s) {
        for (std::uint32_t w = 0; w < kAssoc; ++w) {
            const RefEntry &r = ref[s][w];
            const TagArray::Entry e = t.entry(s, w);
            EXPECT_EQ(e.valid, r.valid) << s << "/" << w;
            EXPECT_EQ(t.isValid(s, w), r.valid);
            EXPECT_EQ(t.isDirty(s, w), r.dirty);
            if (r.valid) {
                EXPECT_EQ(e.tag, r.tag);
                EXPECT_EQ(e.dirty, r.dirty);
                EXPECT_EQ(e.group, r.group);
                EXPECT_EQ(e.frame, r.frame);
                EXPECT_EQ(t.groupOf(s, w), r.group);
                EXPECT_EQ(t.frameOf(s, w), r.frame);
                ++want_valid;
            }
        }
        // The SIMD lookup agrees with a scalar first-match scan.
        for (std::uint64_t tag = 0; tag < 64; ++tag) {
            std::uint32_t want_way = kAssoc;
            for (std::uint32_t w = 0; w < kAssoc; ++w) {
                if (ref[s][w].valid && ref[s][w].tag == tag) {
                    want_way = w;
                    break;
                }
            }
            const Addr block =
                (static_cast<Addr>(tag) * kSets + s) * 128;
            const TagArray::Lookup look = t.lookup(block);
            EXPECT_EQ(look.set, s);
            EXPECT_EQ(look.hit, want_way != kAssoc);
            if (look.hit) {
                EXPECT_EQ(look.way, want_way);
            }
        }
    }
    EXPECT_EQ(t.validCount(), want_valid);
}

TEST(SoaLayout, DataArrayPlanesSurviveChurnAndStayAudited)
{
    constexpr std::uint32_t kGroups = 4;
    constexpr std::uint32_t kFrames = 32;
    DataArray data(kGroups, kFrames, 2, DistanceRepl::LRU, 29);

    Rng rng(31, 0x50e);
    std::vector<std::vector<bool>> live(
        kGroups, std::vector<bool>(kFrames, false));
    std::vector<std::vector<std::uint32_t>> liveInRegion(
        kGroups, std::vector<std::uint32_t>(data.numRegions(), 0));
    for (unsigned op = 0; op < 20000; ++op) {
        const std::uint32_t g = rng.below(kGroups);
        const std::uint32_t region = rng.below(data.numRegions());
        if (data.hasFree(g, region) && rng.below(3) != 0) {
            const std::uint32_t f = data.allocFrame(g, region);
            const std::uint32_t set = rng.below(64);
            const std::uint16_t way =
                static_cast<std::uint16_t>(rng.below(8));
            data.place(g, f, set, way);
            live[g][f] = true;
            ++liveInRegion[g][region];
            EXPECT_EQ(data.revSetOf(g, f), set);
            EXPECT_EQ(data.revWayOf(g, f), way);
            EXPECT_TRUE(data.frame(g, f).valid);
        } else if (liveInRegion[g][region] > 0) {
            // victimFrame is only legal on a full region; when it is,
            // it must name a live frame.
            if (!data.hasFree(g, region)) {
                const std::uint32_t v = data.victimFrame(g, region);
                ASSERT_TRUE(live[g][v]);
            }
            // Churn a uniformly random live frame of this region.
            std::uint32_t f = kFrames;
            std::uint32_t skip = rng.below(liveInRegion[g][region]);
            for (std::uint32_t c = 0; c < kFrames; ++c) {
                if (live[g][c] && data.regionOfFrame(c) == region) {
                    if (skip == 0) {
                        f = c;
                        break;
                    }
                    --skip;
                }
            }
            ASSERT_LT(f, kFrames);
            if (rng.below(2) == 0)
                data.touch(g, f);
            else {
                data.remove(g, f);
                live[g][f] = false;
                --liveInRegion[g][region];
                EXPECT_FALSE(data.frame(g, f).valid);
            }
        }
    }

    std::uint64_t want_valid = 0;
    for (std::uint32_t g = 0; g < kGroups; ++g) {
        for (std::uint32_t f = 0; f < kFrames; ++f) {
            EXPECT_EQ(data.frame(g, f).valid, bool{live[g][f]});
            want_valid += live[g][f];
        }
    }
    EXPECT_EQ(data.validCount(), want_valid);

    CountingAuditSink sink;
    EXPECT_TRUE(data.audit(sink)) << sink.summary();
}

} // namespace
} // namespace nurapid
