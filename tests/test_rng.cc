/** @file Unit tests for the deterministic PCG32 generator. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"

namespace nurapid {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7);
    std::vector<std::uint32_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(a.next());
    a.reseed(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), first[i]);
}

class RngBoundTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(RngBoundTest, BelowStaysInRange)
{
    Rng r(123);
    const std::uint32_t bound = GetParam();
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(bound), bound);
}

TEST_P(RngBoundTest, BelowCoversRange)
{
    Rng r(99);
    const std::uint32_t bound = GetParam();
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 5000 && seen.size() < bound; ++i)
        seen.insert(r.below(bound));
    if (bound <= 64) {
        EXPECT_EQ(seen.size(), bound);
    }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundTest,
                         ::testing::Values(1u, 2u, 3u, 7u, 64u, 1000u));

TEST(Rng, Below64LargeBounds)
{
    Rng r(5);
    const std::uint64_t bound = (1ull << 40) + 12345;
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below64(bound), bound);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 20000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(13);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / double(n), 0.3, 0.02);
}

TEST(Rng, StreamsAreIndependent)
{
    Rng a(42, 1), b(42, 2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

} // namespace
} // namespace nurapid
