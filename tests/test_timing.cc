/**
 * @file
 * Regression anchors for the physical timing/energy model against the
 * paper's published numbers (Tables 2 and 4), plus structural
 * properties of the floorplans and geometry curves.
 */

#include <gtest/gtest.h>

#include "timing/floorplan.hh"
#include "timing/geometry.hh"
#include "timing/latency_tables.hh"

namespace nurapid {
namespace {

constexpr std::uint64_t MB = 1024 * 1024;

const SramMacroModel &
model()
{
    static SramMacroModel m(TechParams::the70nm());
    return m;
}

TEST(Tech, CycleRounding)
{
    const TechParams &t = TechParams::the70nm();
    EXPECT_EQ(t.toCycles(0.2), 1u);
    EXPECT_EQ(t.toCycles(0.29), 1u);
    EXPECT_EQ(t.toCycles(0.31), 2u);
    EXPECT_EQ(t.toCycles(0.0), 1u);  // minimum one cycle
}

TEST(Tech, WireEnergySuperlinear)
{
    const TechParams &t = TechParams::the70nm();
    EXPECT_DOUBLE_EQ(t.wireBlockNJ(0.0), 0.0);
    // Superlinear: doubling distance more than doubles energy.
    EXPECT_GT(t.wireBlockNJ(8.0), 2.0 * t.wireBlockNJ(4.0));
}

TEST(Geometry, AccessTimeMonotonicInCapacity)
{
    double prev = 0;
    for (std::uint64_t cap = 16 * 1024; cap <= 16 * MB; cap *= 2) {
        const double ns = model().dataAccessNs(cap);
        EXPECT_GT(ns, prev) << "capacity " << cap;
        prev = ns;
    }
}

TEST(Geometry, EnergyMonotonicInCapacity)
{
    double prev = 0;
    for (std::uint64_t cap = 16 * 1024; cap <= 16 * MB; cap *= 2) {
        const double nj = model().dataReadNJ(cap);
        EXPECT_GT(nj, prev);
        prev = nj;
    }
}

TEST(Geometry, WriteNearRead)
{
    const double r = model().dataReadNJ(2 * MB);
    const double w = model().dataWriteNJ(2 * MB);
    EXPECT_GT(w, r);
    EXPECT_LT(w, 1.2 * r);
}

TEST(Geometry, TagSlowerWithAssociativity)
{
    EXPECT_GT(model().tagAccessNs(65536, 16),
              model().tagAccessNs(65536, 2));
    EXPECT_GT(model().tagAccessNJ(65536, 16),
              model().tagAccessNJ(65536, 2));
}

TEST(Geometry, PaperTagLatency)
{
    // Section 5.1: the 8 MB 8-way tag probes in 8 cycles (we land
    // within one cycle).
    const double ns = model().tagAccessNs(8 * MB / 128, 8);
    const auto cycles = TechParams::the70nm().toCycles(ns);
    EXPECT_GE(cycles, 7u);
    EXPECT_LE(cycles, 8u);
}

TEST(Floorplan, LShapeDistancesIncrease)
{
    LShapeFloorplan plan(model(), {2 * MB, 2 * MB, 2 * MB, 2 * MB});
    for (std::size_t g = 1; g < 4; ++g)
        EXPECT_GT(plan.routeMm(g), plan.routeMm(g - 1));
    EXPECT_GT(plan.farEdgeMm(), plan.routeMm(3));
}

TEST(Floorplan, BetweenIsSymmetricMetric)
{
    LShapeFloorplan plan(model(), {2 * MB, 2 * MB, 2 * MB, 2 * MB});
    for (std::size_t a = 0; a < 4; ++a) {
        EXPECT_DOUBLE_EQ(plan.betweenMm(a, a), 0.0);
        for (std::size_t b = 0; b < 4; ++b)
            EXPECT_DOUBLE_EQ(plan.betweenMm(a, b), plan.betweenMm(b, a));
    }
}

TEST(Floorplan, BankGridMonotonic)
{
    BankGridFloorplan grid(model(), 8, 16, 64 * 1024);
    for (unsigned r = 1; r < 8; ++r)
        EXPECT_GT(grid.verticalMm(r), grid.verticalMm(r - 1));
    // Horizontal distance is symmetric around the center columns.
    EXPECT_DOUBLE_EQ(grid.horizontalMm(0), grid.horizontalMm(15));
    EXPECT_LT(grid.horizontalMm(7), grid.horizontalMm(0));
}

/** Table 4 anchor: fastest d-group latency per configuration. */
struct FastestCase
{
    unsigned dgroups;
    Cycles expected;
};

class Table4Fastest : public ::testing::TestWithParam<FastestCase>
{
};

TEST_P(Table4Fastest, MatchesPaper)
{
    const auto [dgroups, expected] = GetParam();
    auto t = makeNuRapidTiming(model(), 8 * MB, dgroups, 8, 128);
    EXPECT_EQ(t.dgroups[0].total_latency, expected);
}

INSTANTIATE_TEST_SUITE_P(Paper, Table4Fastest,
                         ::testing::Values(FastestCase{2, 19},
                                           FastestCase{4, 14},
                                           FastestCase{8, 12}));

TEST(Table4, LatenciesMonotonicWithinConfig)
{
    for (unsigned ndg : {2u, 4u, 8u}) {
        auto t = makeNuRapidTiming(model(), 8 * MB, ndg, 8, 128);
        for (unsigned g = 1; g < ndg; ++g) {
            EXPECT_GT(t.dgroups[g].total_latency,
                      t.dgroups[g - 1].total_latency);
        }
    }
}

TEST(Table4, SlowestIncreasesWithDGroupCount)
{
    // Section 5.1: "as the number of d-groups increases, the latency
    // of the slowest megabyte increases".
    auto t2 = makeNuRapidTiming(model(), 8 * MB, 2, 8, 128);
    auto t4 = makeNuRapidTiming(model(), 8 * MB, 4, 8, 128);
    auto t8 = makeNuRapidTiming(model(), 8 * MB, 8, 8, 128);
    EXPECT_LT(t2.dgroups.back().total_latency,
              t4.dgroups.back().total_latency);
    EXPECT_LT(t4.dgroups.back().total_latency,
              t8.dgroups.back().total_latency);
}

TEST(Table4, DNucaPerMBAverages)
{
    // Paper: averages ramp from ~7 (1st MB) to ~29 (8th MB).
    auto t = makeDNucaTiming(model(), 8 * MB, 8, 16, 128);
    EXPECT_NEAR(t.avgLatencyOfMB(0), 7.0, 1.5);
    EXPECT_NEAR(t.avgLatencyOfMB(7), 29.0, 2.0);
    for (unsigned r = 1; r < 8; ++r)
        EXPECT_GT(t.avgLatencyOfMB(r), t.avgLatencyOfMB(r - 1));
}

TEST(Table4, DNucaRangesBracketAverages)
{
    auto t = makeDNucaTiming(model(), 8 * MB, 8, 16, 128);
    for (unsigned r = 0; r < 8; ++r) {
        EXPECT_LE(t.minLatencyOfMB(r), t.avgLatencyOfMB(r));
        EXPECT_GE(t.maxLatencyOfMB(r), t.avgLatencyOfMB(r));
        EXPECT_LT(t.minLatencyOfMB(r), t.maxLatencyOfMB(r));
    }
}

TEST(Table2, NuRapid4DGroupEnergies)
{
    // Paper: closest of 4 x 2 MB = 0.42 nJ; farthest = 3.3 nJ.
    auto t = makeNuRapidTiming(model(), 8 * MB, 4, 8, 128);
    EXPECT_NEAR(t.dgroups.front().read_nj, 0.42, 0.10);
    EXPECT_NEAR(t.dgroups.back().read_nj, 3.3, 0.50);
}

TEST(Table2, NuRapid8DGroupEnergies)
{
    // Paper: closest of 8 x 1 MB = 0.40 nJ; farthest = 4.6 nJ.
    auto t = makeNuRapidTiming(model(), 8 * MB, 8, 8, 128);
    EXPECT_NEAR(t.dgroups.front().read_nj, 0.40, 0.10);
    EXPECT_NEAR(t.dgroups.back().read_nj, 4.6, 0.90);
}

TEST(Table2, DNucaBankAndSmartSearchEnergies)
{
    auto t = makeDNucaTiming(model(), 8 * MB, 8, 16, 128);
    // Paper: closest 64 KB bank = 0.18 nJ; smart-search probe 0.19 nJ.
    Cycles best = 0;
    double closest_nj = 1e9;
    (void)best;
    for (unsigned c = 0; c < 16; ++c)
        closest_nj = std::min(closest_nj, t.bank(0, c).access_nj);
    EXPECT_NEAR(closest_nj, 0.18, 0.06);
    EXPECT_NEAR(t.ss_access_nj, 0.19, 0.06);
}

TEST(Table2, L1DualPortEnergy)
{
    // Paper: 2 ports of the 64 KB 2-way L1 = 0.57 nJ.
    auto l1 = makeUniformTiming(model(), 64 * 1024, 2, 32,
                                /*sequential=*/false, /*ports=*/2, 3);
    EXPECT_NEAR(l1.read_nj, 0.57, 0.12);
}

TEST(Uniform, SequentialSavesEnergyOverParallel)
{
    auto seq = makeUniformTiming(model(), MB, 8, 128, true);
    auto par = makeUniformTiming(model(), MB, 8, 128, false);
    EXPECT_LT(seq.read_nj, par.read_nj);
    EXPECT_GE(seq.latency, par.latency);
}

TEST(Uniform, LatencyOverridePinsLatencyOnly)
{
    auto a = makeUniformTiming(model(), MB, 8, 128, true, 1, 11);
    auto b = makeUniformTiming(model(), MB, 8, 128, true, 1, 0);
    EXPECT_EQ(a.latency, 11u);
    EXPECT_NE(b.latency, 0u);
    EXPECT_DOUBLE_EQ(a.read_nj, b.read_nj);
    EXPECT_GT(a.tag_latency, 0u);
    EXPECT_LT(a.tag_latency, b.latency);
}

TEST(SwapCosts, BusyAndEnergyPositiveAndFartherCostsMore)
{
    auto t = makeNuRapidTiming(model(), 8 * MB, 4, 8, 128);
    EXPECT_GT(t.swapBusy(0, 1), 0u);
    EXPECT_GT(t.swapEnergy(0, 1), 0.0);
    // Swapping with a farther d-group moves data over longer wires.
    EXPECT_GT(t.swapEnergy(0, 3), t.swapEnergy(0, 1));
    // Energy is symmetric in direction of the move's endpoints modulo
    // read/write asymmetry; busy time is exactly symmetric.
    EXPECT_EQ(t.swapBusy(1, 2), t.swapBusy(2, 1));
}

TEST(DNucaSwap, AdjacentRowSwapCostsFourRawBankOpsPlusTransfers)
{
    auto t = makeDNucaTiming(model(), 8 * MB, 8, 16, 128);
    // A bubble swap = read + write in each of the two banks (raw,
    // without core routing) plus the two inter-bank transfers.
    const double e = t.swapEnergy(3, 4, 5);
    EXPECT_GT(e, 4.0 * t.bank_raw_nj);
    // But it must NOT be charged the core-route wire energy of two
    // full accesses — adjacent banks exchange blocks locally.
    EXPECT_LT(e, t.bank(7, 0).access_nj + t.bank(6, 0).access_nj);
}

} // namespace
} // namespace nurapid
