/** @file Unit tests for replacement policies. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mem/replacement.hh"

namespace nurapid {
namespace {

TEST(Lru, EvictsLeastRecentlyTouched)
{
    LruReplacer lru(1, 4);
    lru.touch(0, 0);
    lru.touch(0, 1);
    lru.touch(0, 2);
    lru.touch(0, 3);
    EXPECT_EQ(lru.victim(0), 0u);
    lru.touch(0, 0);
    EXPECT_EQ(lru.victim(0), 1u);
}

TEST(Lru, OlderPredicate)
{
    LruReplacer lru(1, 2);
    lru.touch(0, 1);
    lru.touch(0, 0);
    EXPECT_TRUE(lru.older(0, 1, 0));
    EXPECT_FALSE(lru.older(0, 0, 1));
}

TEST(Lru, SetsAreIndependent)
{
    LruReplacer lru(2, 2);
    lru.touch(0, 0);
    lru.touch(0, 1);
    lru.touch(1, 1);
    lru.touch(1, 0);
    EXPECT_EQ(lru.victim(0), 0u);
    EXPECT_EQ(lru.victim(1), 1u);
}

TEST(Random, DeterministicForSeed)
{
    RandomReplacer a(8, 42), b(8, 42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.victim(0), b.victim(0));
}

TEST(Random, CoversAllWays)
{
    RandomReplacer r(8, 7);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(r.victim(0));
    EXPECT_EQ(seen.size(), 8u);
}

class TreePlruTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(TreePlruTest, VictimNeverMostRecentlyTouched)
{
    const std::uint32_t ways = GetParam();
    TreePlruReplacer plru(1, ways);
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const std::uint32_t w = rng.below(ways);
        plru.touch(0, w);
        EXPECT_NE(plru.victim(0), w);
    }
}

TEST_P(TreePlruTest, TouchAllThenVictimIsFirstTouched)
{
    const std::uint32_t ways = GetParam();
    TreePlruReplacer plru(1, ways);
    for (std::uint32_t w = 0; w < ways; ++w)
        plru.touch(0, w);
    // Tree-PLRU approximates LRU: after touching 0..n-1 in order, the
    // victim must come from the older half of the touch sequence.
    EXPECT_LT(plru.victim(0), ways / 2);
}

INSTANTIATE_TEST_SUITE_P(Ways, TreePlruTest,
                         ::testing::Values(2u, 4u, 8u, 16u));

TEST(Factory, CreatesEachKind)
{
    auto lru = Replacer::create(ReplPolicy::LRU, 4, 4);
    auto rnd = Replacer::create(ReplPolicy::Random, 4, 4, 9);
    auto plru = Replacer::create(ReplPolicy::TreePLRU, 4, 4);
    ASSERT_NE(lru, nullptr);
    ASSERT_NE(rnd, nullptr);
    ASSERT_NE(plru, nullptr);
    lru->touch(0, 1);
    EXPECT_LT(rnd->victim(2), 4u);
    EXPECT_LT(plru->victim(3), 4u);
}

TEST(FactoryDeath, TreePlruRequiresPow2Ways)
{
    EXPECT_DEATH(Replacer::create(ReplPolicy::TreePLRU, 4, 3),
                 "power-of-two");
}

TEST(PolicyNames, AreStable)
{
    EXPECT_STREQ(replPolicyName(ReplPolicy::LRU), "lru");
    EXPECT_STREQ(replPolicyName(ReplPolicy::Random), "random");
    EXPECT_STREQ(replPolicyName(ReplPolicy::TreePLRU), "tree-plru");
}

} // namespace
} // namespace nurapid
