/**
 * @file
 * Golden end-to-end counters: fixed-seed small runs across all five
 * final organizations with the exact hit/miss/promotion/writeback
 * counters checked in. Any change to these numbers is a change to
 * simulated behavior — intentional ones must regenerate the table
 * (run the suite with NURAPID_GOLDEN_PRINT=1 and paste the output)
 * and bump kRunCacheSchema so stale caches are invalidated.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "trace/profiles.hh"

namespace nurapid {
namespace {

struct Golden
{
    const char *org;
    const char *workload;
    std::uint64_t cycles;
    std::uint64_t instructions;
    std::uint64_t l2_demand;
    std::uint64_t l2_hits;
    std::uint64_t l2_misses;
    std::uint64_t promotions;
    std::uint64_t demotions;
    std::uint64_t block_moves;
    std::uint64_t data_array_accesses;
};

OrgSpec
specFor(const std::string &org)
{
    if (org == "base")
        return OrgSpec::baseline();
    if (org == "nurapid")
        return OrgSpec::nurapidDefault();
    if (org == "dnuca")
        return OrgSpec::dnucaSsPerformance();
    if (org == "sa-place")
        return OrgSpec::coupledSA();
    if (org == "snuca")
        return OrgSpec::snucaDefault();
    ADD_FAILURE() << "unknown org tag " << org;
    return OrgSpec::baseline();
}

void
checkGolden(const Golden &g)
{
    const SimLength length{250'000, 750'000};
    System sys(specFor(g.org), findProfile(g.workload), length);
    const RunMetrics m = sys.runAll();

    if (std::getenv("NURAPID_GOLDEN_PRINT")) {
        std::printf("    {\"%s\", \"%s\", %lluull, %lluull, %lluull, "
                    "%lluull, %lluull, %lluull, %lluull, %lluull, "
                    "%lluull},\n",
                    g.org, g.workload,
                    static_cast<unsigned long long>(m.cycles),
                    static_cast<unsigned long long>(m.instructions),
                    static_cast<unsigned long long>(m.l2_demand),
                    static_cast<unsigned long long>(m.l2_hits),
                    static_cast<unsigned long long>(m.l2_misses),
                    static_cast<unsigned long long>(m.promotions),
                    static_cast<unsigned long long>(m.demotions),
                    static_cast<unsigned long long>(m.block_moves),
                    static_cast<unsigned long long>(
                        m.data_array_accesses));
        return;
    }

    const std::string what =
        std::string(g.org) + " / " + g.workload;
    EXPECT_EQ(m.cycles, g.cycles) << what;
    EXPECT_EQ(m.instructions, g.instructions) << what;
    EXPECT_EQ(m.l2_demand, g.l2_demand) << what;
    EXPECT_EQ(m.l2_hits, g.l2_hits) << what;
    EXPECT_EQ(m.l2_misses, g.l2_misses) << what;
    EXPECT_EQ(m.promotions, g.promotions) << what;
    EXPECT_EQ(m.demotions, g.demotions) << what;
    EXPECT_EQ(m.block_moves, g.block_moves) << what;
    EXPECT_EQ(m.data_array_accesses, g.data_array_accesses) << what;
}

// Generated with NURAPID_GOLDEN_PRINT=1 on the seed trace pipeline;
// columns: cycles, instructions, l2_demand, l2_hits, l2_misses,
// promotions, demotions, block_moves, data_array_accesses.
const Golden kGoldens[] = {
    {"base", "applu", 4559713ull, 2515468ull, 78762ull, 61918ull, 16844ull, 0ull, 0ull, 0ull, 0ull},
    {"nurapid", "applu", 4169175ull, 2515468ull, 78762ull, 61912ull, 16850ull, 8138ull, 20712ull, 28850ull, 169611ull},
    {"dnuca", "applu", 4294677ull, 2515468ull, 78762ull, 61921ull, 16841ull, 32809ull, 0ull, 65618ull, 1042668ull},
    {"sa-place", "applu", 4210704ull, 2515468ull, 78762ull, 61912ull, 16850ull, 13676ull, 31558ull, 45234ull, 202379ull},
    {"snuca", "applu", 8838189ull, 2515468ull, 78762ull, 31976ull, 46786ull, 0ull, 0ull, 0ull, 0ull},
    {"base", "mcf", 9957727ull, 2521341ull, 132528ull, 110731ull, 21797ull, 0ull, 0ull, 0ull, 0ull},
    {"nurapid", "mcf", 9012052ull, 2521341ull, 132528ull, 110734ull, 21794ull, 22469ull, 50518ull, 72987ull, 325229ull},
    {"dnuca", "mcf", 9255618ull, 2521341ull, 132528ull, 110866ull, 21662ull, 54585ull, 0ull, 109170ull, 1668599ull},
    {"sa-place", "mcf", 9057001ull, 2521341ull, 132528ull, 110734ull, 21794ull, 25106ull, 56419ull, 81525ull, 342305ull},
    {"snuca", "mcf", 18655164ull, 2521341ull, 132528ull, 58716ull, 73812ull, 0ull, 0ull, 0ull, 0ull},
    {"base", "twolf", 4131769ull, 2516098ull, 56330ull, 50219ull, 6111ull, 0ull, 0ull, 0ull, 0ull},
    {"nurapid", "twolf", 4007275ull, 2516098ull, 56330ull, 50219ull, 6111ull, 0ull, 0ull, 0ull, 76400ull},
    {"dnuca", "twolf", 4204975ull, 2516098ull, 56330ull, 50219ull, 6111ull, 31911ull, 0ull, 63822ull, 744955ull},
    {"sa-place", "twolf", 4029345ull, 2516098ull, 56330ull, 50219ull, 6111ull, 5182ull, 7676ull, 12858ull, 102116ull},
    {"snuca", "twolf", 8594701ull, 2516098ull, 56330ull, 23655ull, 32675ull, 0ull, 0ull, 0ull, 0ull},
};

TEST(GoldenMetrics, FiveOrganizationsMatchCheckedInCounters)
{
    for (const Golden &g : kGoldens)
        checkGolden(g);
}

} // namespace
} // namespace nurapid
