/** @file Tests for the Section 2.4.3 pointer-overhead arithmetic. */

#include <gtest/gtest.h>

#include "nurapid/pointer_codec.hh"

namespace nurapid {
namespace {

TEST(PointerCodec, PaperUnrestrictedExample)
{
    // "in an 8-MB cache with 128B blocks, 16-bit forward and reverse
    // pointers would be required for complete flexibility. This
    // amounts to 256-KB of pointers ... a 3% overhead."
    auto l = computePointerLayout(8ull << 20, 128, 8, 4, 0);
    EXPECT_EQ(l.forward_bits, 16u);   // 2 group bits + 14 frame bits
    EXPECT_EQ(l.group_bits, 2u);
    EXPECT_EQ(l.frame_bits, 14u);
    EXPECT_EQ(l.reverse_bits, 16u);   // 13 set bits + 3 way bits
    EXPECT_EQ(l.total_pointer_bytes, 256u * 1024u);
    EXPECT_NEAR(l.pointer_overhead, 0.03, 0.005);
}

TEST(PointerCodec, PaperRestrictedExample)
{
    // "If our example cache has 4 d-groups, and we restrict placement
    // of each block to 256 frames within each d-group, the pointer
    // size is reduced to 10 bits."
    auto l = computePointerLayout(8ull << 20, 128, 8, 4, 256);
    EXPECT_EQ(l.forward_bits, 10u);
    EXPECT_LT(l.pointer_overhead, 0.03);
}

TEST(PointerCodec, TagOverheadAroundFivePercent)
{
    // "the 51-bit tag entries for this 64-bit-address cache are a 5%
    // overhead" — ours includes state bits; must land in that band.
    auto l = computePointerLayout(8ull << 20, 128, 8, 4, 0, 64);
    EXPECT_GT(l.tag_overhead, 0.035);
    EXPECT_LT(l.tag_overhead, 0.065);
}

TEST(PointerCodec, LargerBlocksShrinkOverhead)
{
    // Section 2.4.3: "as block sizes increase, the size of the
    // pointers ... will decrease."
    auto small = computePointerLayout(8ull << 20, 64, 8, 4, 0);
    auto large = computePointerLayout(8ull << 20, 256, 8, 4, 0);
    EXPECT_LT(large.pointer_overhead, small.pointer_overhead);
    EXPECT_LT(large.forward_bits, small.forward_bits);
}

TEST(PointerCodec, MoreDGroupsMoreGroupBits)
{
    auto g2 = computePointerLayout(8ull << 20, 128, 8, 2, 0);
    auto g8 = computePointerLayout(8ull << 20, 128, 8, 8, 0);
    EXPECT_EQ(g2.group_bits, 1u);
    EXPECT_EQ(g8.group_bits, 3u);
    // Total forward width is constant: fewer groups means more frames
    // per group.
    EXPECT_EQ(g2.forward_bits, g8.forward_bits);
}

TEST(PointerCodecDeath, DegenerateQueryIsFatal)
{
    EXPECT_DEATH(computePointerLayout(0, 128, 8, 4), "degenerate");
}

} // namespace
} // namespace nurapid
