/**
 * @file
 * Invariant-audit layer tests: the sinks and runtime configuration,
 * clean audits on fresh and heavily-churned caches, and fault
 * injection — every class of corruption (forward pointer, reverse
 * pointer, duplicate tag, free-list damage, region restriction) must
 * be pinpointed by audit() with the right invariant name and context.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/rng.hh"
#include "nurapid/data_array.hh"
#include "nurapid/nurapid_cache.hh"
#include "nurapid/tag_array.hh"
#include "timing/geometry.hh"

namespace nurapid {
namespace {

const SramMacroModel &
model()
{
    static SramMacroModel m(TechParams::the70nm());
    return m;
}

NuRapidCache::Params
smallParams(std::uint32_t restriction = 0)
{
    NuRapidCache::Params p;
    p.capacity_bytes = 64 * 1024;
    p.assoc = 4;
    p.block_bytes = 128;
    p.num_dgroups = 4;
    p.frame_restriction = restriction;
    p.seed = 3;
    return p;
}

/** Random mixed-type churn; returns the cache already warmed. */
void
churn(NuRapidCache &c, std::uint64_t accesses)
{
    Rng rng(7, 0xa0d1);
    Cycle now = 0;
    for (std::uint64_t i = 0; i < accesses; ++i) {
        const Addr addr = rng.below64(4096) * 128 + rng.below(128);
        const unsigned kind = rng.below(10);
        const AccessType type = kind == 0 ? AccessType::Writeback
            : kind < 4 ? AccessType::Write
                       : AccessType::Read;
        now += 1 + rng.below(8);
        c.access(addr, type, now);
    }
}

/** True if any kept violation names @p invariant. */
bool
reported(const CountingAuditSink &sink, const std::string &invariant)
{
    for (const AuditViolation &v : sink.first()) {
        if (v.invariant == invariant)
            return true;
    }
    return false;
}

TEST(AuditViolation, DescribeCarriesFullContext)
{
    AuditViolation v;
    v.component = "nurapid";
    v.invariant = "forward-reverse-mismatch";
    v.detail = "frame is invalid";
    v.set = 3;
    v.way = 1;
    v.group = 2;
    v.frame = 17;
    const std::string text = v.describe();
    EXPECT_NE(text.find("nurapid"), std::string::npos);
    EXPECT_NE(text.find("forward-reverse-mismatch"), std::string::npos);
    EXPECT_NE(text.find("frame is invalid"), std::string::npos);
    for (const char *ctx : {"3", "1", "2", "17"})
        EXPECT_NE(text.find(ctx), std::string::npos) << ctx;
}

TEST(CountingAuditSink, CountsAllButKeepsOnlyFirstFew)
{
    CountingAuditSink sink(/*keep=*/2);
    EXPECT_TRUE(sink.clean());
    EXPECT_EQ(sink.summary(), "");
    for (std::uint32_t i = 0; i < 5; ++i) {
        AuditViolation v;
        v.component = "c";
        v.invariant = "inv";
        v.set = i;
        sink.violation(v);
    }
    EXPECT_FALSE(sink.clean());
    EXPECT_EQ(sink.count(), 5u);
    ASSERT_EQ(sink.first().size(), 2u);
    EXPECT_EQ(sink.first()[0].set, 0u);
    EXPECT_EQ(sink.first()[1].set, 1u);
    EXPECT_NE(sink.summary().find("inv"), std::string::npos);

    sink.reset();
    EXPECT_TRUE(sink.clean());
    EXPECT_EQ(sink.count(), 0u);
    EXPECT_TRUE(sink.first().empty());
}

TEST(AuditConfig, FromEnvParsesFlagAndInterval)
{
    ::unsetenv("NURAPID_AUDIT");
    ::unsetenv("NURAPID_AUDIT_INTERVAL");
    const audit::AuditConfig defaults = audit::AuditConfig::fromEnv();
    EXPECT_TRUE(defaults.enabled);
    EXPECT_EQ(defaults.interval, 4096u);

    ::setenv("NURAPID_AUDIT", "0", 1);
    ::setenv("NURAPID_AUDIT_INTERVAL", "17", 1);
    const audit::AuditConfig tuned = audit::AuditConfig::fromEnv();
    EXPECT_FALSE(tuned.enabled);
    EXPECT_EQ(tuned.interval, 17u);

    ::unsetenv("NURAPID_AUDIT");
    ::unsetenv("NURAPID_AUDIT_INTERVAL");
}

TEST(AuditConfig, HookSinkIsReplaceable)
{
    CountingAuditSink counting;
    audit::setHookSink(&counting);
    EXPECT_EQ(&audit::hookSink(), &counting);

    AuditViolation v;
    v.component = "test";
    v.invariant = "synthetic";
    audit::hookSink().violation(v);
    EXPECT_EQ(counting.count(), 1u);

    audit::setHookSink(nullptr);  // restore the panicking default
    EXPECT_NE(&audit::hookSink(), &counting);
}

TEST(AuditConfig, CompiledInMatchesBuildFlag)
{
#if NURAPID_AUDIT_ENABLED
    EXPECT_TRUE(audit::compiledIn());
#else
    EXPECT_FALSE(audit::compiledIn());
#endif
}

TEST(TagArrayAudit, CleanAfterUse)
{
    TagArray tags(8 * 1024, 4, 128);
    for (Addr a = 0; a < 32; ++a) {
        const auto look = tags.lookup(a * 128);
        const std::uint32_t way = tags.victimWay(look.set);
        auto e = tags.entry(look.set, way);
        e.valid = true;
        e.tag = tags.tagOf(a * 128);
        tags.setEntry(look.set, way, e);
        tags.touch(look.set, way);
    }
    CountingAuditSink sink;
    EXPECT_TRUE(tags.audit(sink));
    EXPECT_TRUE(sink.clean());
}

TEST(TagArrayAudit, DetectsDuplicateTag)
{
    TagArray tags(8 * 1024, 4, 128);
    for (const std::uint32_t way : {0u, 1u}) {
        auto e = tags.entry(0, way);
        e.valid = true;
        e.tag = 42;
        tags.setEntry(0, way, e);
    }
    CountingAuditSink sink;
    EXPECT_FALSE(tags.audit(sink));
    ASSERT_FALSE(sink.first().empty());
    EXPECT_EQ(sink.first()[0].invariant, "duplicate-tag");
    EXPECT_EQ(sink.first()[0].set, 0u);
}

TEST(DataArrayAudit, CleanAfterChurn)
{
    DataArray data(4, 16, 1, DistanceRepl::LRU, 5);
    for (std::uint32_t i = 0; i < 16; ++i) {
        const std::uint32_t f = data.allocFrame(0, 0);
        data.place(0, f, i, 0);
    }
    // Full group: victim, remove, re-place churn.
    for (std::uint32_t i = 0; i < 8; ++i) {
        const std::uint32_t victim = data.victimFrame(0, 0);
        data.remove(0, victim);
        const std::uint32_t f = data.allocFrame(0, 0);
        data.place(0, f, 100 + i, 1);
        data.touch(0, f);
    }
    CountingAuditSink sink;
    EXPECT_TRUE(data.audit(sink)) << sink.summary();
}

TEST(DataArrayAudit, DetectsFrameFlippedValidBehindFreeList)
{
    DataArray data(2, 8, 1, DistanceRepl::LRU, 5);
    // Frame 3 of group 0 is on the free list; flip it valid without
    // allocating — the free list and the valid partition now disagree.
    auto fr = data.frame(0, 3);
    fr.valid = true;
    data.setFrame(0, 3, fr);
    CountingAuditSink sink;
    EXPECT_FALSE(data.audit(sink));
    EXPECT_TRUE(reported(sink, "free-valid-frame") ||
                reported(sink, "valid-not-chained"))
        << sink.summary();
}

TEST(DataArrayAudit, DetectsPlacedFrameFlippedInvalid)
{
    DataArray data(2, 8, 1, DistanceRepl::LRU, 5);
    const std::uint32_t f = data.allocFrame(0, 0);
    data.place(0, f, 0, 0);
    auto fr = data.frame(0, f);
    fr.valid = false;  // still LRU-chained, not freed
    data.setFrame(0, f, fr);
    CountingAuditSink sink;
    EXPECT_FALSE(data.audit(sink));
    EXPECT_TRUE(reported(sink, "chain-invalid-frame") ||
                reported(sink, "invalid-not-free"))
        << sink.summary();
}

TEST(NuRapidAudit, CleanAfterHeavyChurn)
{
    for (const std::uint32_t restriction : {0u, 8u}) {
        NuRapidCache c(model(), smallParams(restriction));
        churn(c, 4000);
        CountingAuditSink sink;
        EXPECT_TRUE(c.audit(sink)) << sink.summary();
        EXPECT_TRUE(sink.clean());
        EXPECT_TRUE(c.checkInvariants());
    }
}

/** First valid tag entry of @p c, as (set, way). */
std::pair<std::uint32_t, std::uint32_t>
firstValidEntry(const NuRapidCache &c)
{
    for (std::uint32_t s = 0; s < c.tags().numSets(); ++s) {
        for (std::uint32_t w = 0; w < c.tags().assoc(); ++w) {
            if (c.tags().entry(s, w).valid)
                return {s, w};
        }
    }
    ADD_FAILURE() << "no valid entry";
    return {0, 0};
}

TEST(NuRapidAudit, DetectsForwardPointerCorruption)
{
    NuRapidCache c(model(), smallParams());
    churn(c, 2000);
    const auto [s, w] = firstValidEntry(c);
    auto e = c.tagsForTesting().entry(s, w);
    e.frame = (e.frame + 1) % c.data().framesPerGroup();
    c.tagsForTesting().setEntry(s, w, e);

    CountingAuditSink sink;
    EXPECT_FALSE(c.audit(sink));
    EXPECT_TRUE(reported(sink, "forward-reverse-mismatch") ||
                reported(sink, "reverse-forward-mismatch"))
        << sink.summary();
    EXPECT_FALSE(c.checkInvariants());
}

TEST(NuRapidAudit, DetectsForwardPointerOutOfRange)
{
    NuRapidCache c(model(), smallParams());
    churn(c, 2000);
    const auto [s, w] = firstValidEntry(c);
    auto e = c.tagsForTesting().entry(s, w);
    e.frame = c.data().framesPerGroup();
    c.tagsForTesting().setEntry(s, w, e);

    CountingAuditSink sink;
    EXPECT_FALSE(c.audit(sink));
    ASSERT_TRUE(reported(sink, "forward-pointer-range"))
        << sink.summary();
    // The violation locates the corrupted entry exactly.
    for (const AuditViolation &v : sink.first()) {
        if (v.invariant == "forward-pointer-range") {
            EXPECT_EQ(v.set, s);
            EXPECT_EQ(v.way, w);
        }
    }
}

TEST(NuRapidAudit, DetectsReversePointerCorruption)
{
    NuRapidCache c(model(), smallParams());
    churn(c, 2000);
    // Find a valid frame and point it at a different way.
    for (std::uint32_t g = 0; g < c.data().numGroups(); ++g) {
        for (std::uint32_t f = 0; f < c.data().framesPerGroup(); ++f) {
            if (!c.data().frame(g, f).valid)
                continue;
            auto fr = c.dataForTesting().frame(g, f);
            fr.way = static_cast<std::uint16_t>(
                (fr.way + 1) % c.tags().assoc());
            c.dataForTesting().setFrame(g, f, fr);
            CountingAuditSink sink;
            EXPECT_FALSE(c.audit(sink));
            EXPECT_TRUE(reported(sink, "reverse-forward-mismatch") ||
                        reported(sink, "forward-reverse-mismatch"))
                << sink.summary();
            return;
        }
    }
    FAIL() << "no valid frame after churn";
}

TEST(NuRapidAudit, DetectsRegionRestrictionViolation)
{
    // Section 2.4.3: with 8-frame regions, a block's frame must sit in
    // the region its address hashes to. Teleport one block's frame to
    // the other region (fixing both pointer directions so only the
    // restriction invariant is at stake).
    NuRapidCache c(model(), smallParams(/*restriction=*/8));
    ASSERT_GT(c.data().numRegions(), 1u);
    churn(c, 2000);

    const auto [s, w] = firstValidEntry(c);
    auto e = c.tagsForTesting().entry(s, w);
    const std::uint32_t wrong =
        (e.frame + 8) % c.data().framesPerGroup();
    ASSERT_NE(c.data().regionOfFrame(wrong),
              c.data().regionOfFrame(e.frame));

    // Evict whatever lives in the destination frame's slot by swapping
    // pointers is overkill here: just repoint both directions at a
    // frame we first clear.
    auto dest = c.dataForTesting().frame(e.group, wrong);
    auto src = c.dataForTesting().frame(e.group, e.frame);
    if (dest.valid) {
        auto de = c.tagsForTesting().entry(dest.set, dest.way);
        de.valid = false;
        c.tagsForTesting().setEntry(dest.set, dest.way, de);
    }
    c.dataForTesting().setFrame(e.group, wrong, src);
    src.valid = false;
    c.dataForTesting().setFrame(e.group, e.frame, src);
    e.frame = wrong;
    c.tagsForTesting().setEntry(s, w, e);

    // The surgery above also disturbs the data-array free list, so
    // keep plenty of violations — region-restriction must be among
    // them.
    CountingAuditSink sink(/*keep=*/64);
    EXPECT_FALSE(c.audit(sink));
    EXPECT_TRUE(reported(sink, "region-restriction")) << sink.summary();
}

} // namespace
} // namespace nurapid
