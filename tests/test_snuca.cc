/** @file Tests for the static-NUCA baseline. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "nuca/snuca.hh"
#include "timing/geometry.hh"

namespace nurapid {
namespace {

const SramMacroModel &
model()
{
    static SramMacroModel m(TechParams::the70nm());
    return m;
}

SNucaCache::Params
smallParams()
{
    SNucaCache::Params p;
    p.capacity_bytes = 256 * 1024;
    p.assoc = 4;
    p.block_bytes = 128;
    p.rows = 8;
    p.cols = 4;
    return p;
}

TEST(SNuca, MissThenHit)
{
    SNucaCache c(model(), smallParams());
    EXPECT_FALSE(c.access(0x0, AccessType::Read, 0).hit);
    EXPECT_TRUE(c.access(0x0, AccessType::Read, 1000).hit);
}

TEST(SNuca, StaticMappingIsByBlockAddress)
{
    auto p = smallParams();
    SNucaCache c(model(), p);
    const std::uint32_t banks = p.rows * p.cols;
    // Consecutive blocks round-robin across banks.
    for (std::uint32_t i = 0; i < 2 * banks; ++i)
        EXPECT_EQ(c.bankOf(Addr{i} * p.block_bytes), i % banks);
    // Same block, any offset: same bank.
    EXPECT_EQ(c.bankOf(0x480), c.bankOf(0x4ff));
}

TEST(SNuca, LatencyDependsOnBankRowNotAccessHistory)
{
    auto p = smallParams();
    SNucaCache c(model(), p);
    // A block mapping to the slowest row keeps its slow latency no
    // matter how often it is hit — the static design's weakness.
    const std::uint32_t banks = p.rows * p.cols;
    const Addr far_block = Addr{(p.rows - 1) * p.cols} * p.block_bytes;
    ASSERT_EQ(c.bankOf(far_block) / p.cols, p.rows - 1);
    c.access(far_block, AccessType::Read, 0);
    Cycles first = 0;
    for (int i = 1; i <= 5; ++i) {
        auto r = c.access(far_block, AccessType::Read,
                          Cycle{1000} * i);
        ASSERT_TRUE(r.hit);
        if (first == 0)
            first = r.latency;
        EXPECT_EQ(r.latency, first);
    }
    EXPECT_EQ(first,
              c.timing().bank(p.rows - 1, c.bankOf(far_block) % p.cols)
                  .latency);
    (void)banks;
}

TEST(SNuca, NoMigrationEver)
{
    SNucaCache c(model(), smallParams());
    Rng rng(3);
    Cycle now = 0;
    for (int i = 0; i < 20000; ++i) {
        now += 20;
        c.access(rng.below64(512 * 1024) & ~Addr{127}, AccessType::Read,
                 now);
    }
    // No promotion/swap counters exist; hits+misses account for all
    // demand accesses.
    const auto &s = c.stats();
    EXPECT_EQ(s.counterValue("hits") + s.counterValue("misses"),
              s.counterValue("demand_accesses"));
}

TEST(SNuca, DirtyEvictionsReachMemory)
{
    auto p = smallParams();
    p.assoc = 1;
    SNucaCache c(model(), p);
    const std::uint32_t banks = p.rows * p.cols;
    const Addr bank_set_stride =
        Addr{banks} * p.block_bytes * (p.capacity_bytes / banks /
                                       p.block_bytes / p.assoc);
    c.access(0x0, AccessType::Write, 0);
    c.access(bank_set_stride, AccessType::Read, 1000);  // conflicts
    EXPECT_GE(c.memory().stats().counterValue("writes"), 1u);
}

TEST(SNuca, WritebacksOffCriticalPath)
{
    SNucaCache c(model(), smallParams());
    auto r = c.access(0x40, AccessType::Writeback, 0);
    EXPECT_EQ(r.latency, 0u);
    EXPECT_EQ(c.stats().counterValue("demand_accesses"), 0u);
    EXPECT_EQ(c.stats().counterValue("writeback_accesses"), 1u);
}

TEST(SNuca, EnergyAccumulates)
{
    SNucaCache c(model(), smallParams());
    c.access(0x0, AccessType::Read, 0);
    EXPECT_GT(c.cacheEnergyNJ(), 0.0);
    EXPECT_GE(c.dynamicEnergyNJ(), c.cacheEnergyNJ());
    c.resetStats();
    EXPECT_DOUBLE_EQ(c.cacheEnergyNJ(), 0.0);
}

} // namespace
} // namespace nurapid
