/** @file Tests for the binary trace-file writer/reader. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/profiles.hh"
#include "trace/synthetic.hh"
#include "trace/trace_file.hh"

namespace nurapid {
namespace {

std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/nurapid_trace_" + tag +
        ".bin";
}

TEST(TraceFile, RoundTripPreservesRecords)
{
    const std::string path = tempPath("roundtrip");
    const auto &profile = findProfile("applu");
    SyntheticTrace gen(profile);
    captureTrace(gen, path, 5000);

    gen.reset();
    FileTraceSource replay(path);
    EXPECT_EQ(replay.recordCount(), 5000u);

    TraceRecord a, b;
    for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(gen.next(a));
        ASSERT_TRUE(replay.next(b));
        EXPECT_EQ(a.addr, b.addr);
        EXPECT_EQ(a.op, b.op);
        EXPECT_EQ(a.inst_gap, b.inst_gap);
        EXPECT_EQ(a.depends_on_prev, b.depends_on_prev);
        EXPECT_EQ(a.latency_critical, b.latency_critical);
        EXPECT_EQ(a.has_branch, b.has_branch);
        EXPECT_EQ(a.branch_taken, b.branch_taken);
        EXPECT_EQ(a.branch_pc, b.branch_pc);
    }
    EXPECT_FALSE(replay.next(b));  // exactly 5000 records
    std::remove(path.c_str());
}

TEST(TraceFile, ResetRewinds)
{
    const std::string path = tempPath("rewind");
    const auto &profile = findProfile("gzip");
    SyntheticTrace gen(profile);
    captureTrace(gen, path, 100);

    FileTraceSource replay(path);
    TraceRecord first, r;
    ASSERT_TRUE(replay.next(first));
    while (replay.next(r)) {
    }
    replay.reset();
    ASSERT_TRUE(replay.next(r));
    EXPECT_EQ(r.addr, first.addr);
    std::remove(path.c_str());
}

TEST(TraceFile, WriterCountsAndCloseIsIdempotent)
{
    const std::string path = tempPath("count");
    {
        TraceFileWriter w(path);
        TraceRecord r;
        r.addr = 0x1234;
        w.append(r);
        w.append(r);
        EXPECT_EQ(w.recordsWritten(), 2u);
        w.close();
        w.close();
    }
    FileTraceSource replay(path);
    EXPECT_EQ(replay.recordCount(), 2u);
    std::remove(path.c_str());
}

TEST(TraceFileDeath, MissingFileIsFatal)
{
    EXPECT_DEATH(FileTraceSource("/nonexistent/trace.bin"),
                 "cannot open");
}

TEST(TraceFileDeath, GarbageFileIsFatal)
{
    const std::string path = tempPath("garbage");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a trace file at all......", f);
    std::fclose(f);
    EXPECT_DEATH(FileTraceSource{path}, "not a NuRAPID trace");
    std::remove(path.c_str());
}

} // namespace
} // namespace nurapid
