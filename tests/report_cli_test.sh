#!/usr/bin/env sh
# nurapid_report must fail loudly — one-line error, nonzero exit — on
# missing, empty, corrupt and truncated timeline files, and must still
# accept a genuine timeline produced by nurapid_sim. Run by ctest as
#   report_cli_test.sh SIM_BINARY REPORT_BINARY SCRATCH_DIR
set -eu

sim="$1"
report="$2"
dir="$3"
mkdir -p "$dir"

fails=0
expect_reject() {
    what="$1"; shift
    if out=$("$report" "$@" 2>&1); then
        echo "FAIL: $what: accepted (exit 0): $out"
        fails=$((fails + 1))
    elif ! printf '%s' "$out" | grep -q "nurapid_report:"; then
        echo "FAIL: $what: rejected without a clean error: $out"
        fails=$((fails + 1))
    else
        echo "ok: $what -> ${out%%
*}"
    fi
}

# A real timeline to corrupt (short run; bypasses the run cache).
good="$dir/good_metrics.jsonl"
NURAPID_RUN_CACHE= "$sim" --benchmark twolf --org nurapid --scale 0.02 \
    --obs-interval 1024 --metrics-out "$good" > /dev/null
[ -s "$good" ] || { echo "FAIL: nurapid_sim wrote no timeline"; exit 1; }
"$report" "$good" > /dev/null || {
    echo "FAIL: genuine timeline rejected"; exit 1; }
echo "ok: genuine timeline accepted"

expect_reject "missing file" "$dir/does_not_exist.jsonl"

: > "$dir/empty.jsonl"
expect_reject "empty file" "$dir/empty.jsonl"

printf 'this is not json\n' > "$dir/garbage.jsonl"
expect_reject "garbage line" "$dir/garbage.jsonl"

printf '{"meta":"something-else"}\n' > "$dir/wrong_meta.jsonl"
expect_reject "wrong meta kind" "$dir/wrong_meta.jsonl"

# Header only — no completed epochs to render.
head -n 1 "$good" > "$dir/no_epochs.jsonl"
expect_reject "header without epochs" "$dir/no_epochs.jsonl"

# Truncated mid-epoch: drop the final line's closing braces, leaving
# an unparseable tail (a crash or partial copy).
lines=$(wc -l < "$good")
head -n $((lines - 1)) "$good" > "$dir/truncated.jsonl"
tail -n 1 "$good" | cut -c1-40 >> "$dir/truncated.jsonl"
expect_reject "truncated final epoch" "$dir/truncated.jsonl"

# Structurally broken epoch: a snapshot missing its occupancy array
# (would out-of-range index the renderer).
head -n 2 "$good" > "$dir/missing_field.jsonl"
printf '{"refs":999999,"cycles":9,"instructions":9,"counters":{},"region_hits":[]}\n' \
    >> "$dir/missing_field.jsonl"
expect_reject "epoch missing fields" "$dir/missing_field.jsonl"

# Non-monotone cumulative counters: re-append an early epoch at the
# end, so refs decrease (unsigned deltas would underflow to garbage).
cp "$good" "$dir/nonmonotone.jsonl"
sed -n '2p' "$good" >> "$dir/nonmonotone.jsonl"
expect_reject "non-monotone refs" "$dir/nonmonotone.jsonl"

[ "$fails" -eq 0 ] || exit 1
echo "report_cli_test: all rejections clean"
