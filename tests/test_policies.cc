/**
 * @file
 * Direct coverage of the Section 2.4 policy space: every promotion
 * policy crossed with every distance-victim selection policy, plus the
 * victim-selection policies themselves on a bare DataArray. The LRU
 * cases pin down exact blocks (fill order is LRU order); the
 * Random/TreePLRU cases assert the policy-invariant properties
 * (promotion target d-group, seed determinism, not-most-recent).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "nurapid/data_array.hh"
#include "nurapid/nurapid_cache.hh"
#include "nurapid/policies.hh"
#include "timing/geometry.hh"

namespace nurapid {
namespace {

const SramMacroModel &
model()
{
    static SramMacroModel m(TechParams::the70nm());
    return m;
}

/** Tiny geometry: 16 frames per d-group, 16 sets of 4 ways. */
NuRapidCache::Params
tinyParams(PromotionPolicy promo, DistanceRepl drepl)
{
    NuRapidCache::Params p;
    p.capacity_bytes = 8 * 1024;
    p.assoc = 4;
    p.block_bytes = 128;
    p.num_dgroups = 4;
    p.promotion = promo;
    p.distance_repl = drepl;
    p.seed = 11;
    return p;
}

/** D-group currently holding @p addr's block (asserts residency). */
std::uint32_t
groupOf(const NuRapidCache &c, Addr addr)
{
    const auto look = c.tags().lookup(addr);
    EXPECT_TRUE(look.hit) << "block 0x" << std::hex << addr
                          << " not resident";
    return c.tags().entry(look.set, look.way).group;
}

/**
 * Fills 33 distinct blocks. Under DistanceRepl::LRU the demotion
 * cascade is fully deterministic: fill order is LRU order, so d-group
 * 0 ends holding blocks 17..32, d-group 1 blocks 1..16, and block 0 —
 * demoted twice — sits alone in d-group 2.
 */
void
fillToDepthTwo(NuRapidCache &c)
{
    for (Addr i = 0; i < 33; ++i) {
        const auto r = c.access(i * 128, AccessType::Read, i * 1000);
        ASSERT_FALSE(r.hit);
    }
}

TEST(PolicyNames, AreStable)
{
    EXPECT_STREQ(promotionPolicyName(PromotionPolicy::DemotionOnly),
                 "demotion-only");
    EXPECT_STREQ(promotionPolicyName(PromotionPolicy::NextFastest),
                 "next-fastest");
    EXPECT_STREQ(promotionPolicyName(PromotionPolicy::Fastest),
                 "fastest");
    EXPECT_STREQ(distanceReplName(DistanceRepl::Random), "random");
    EXPECT_STREQ(distanceReplName(DistanceRepl::LRU), "lru");
    EXPECT_STREQ(distanceReplName(DistanceRepl::TreePLRU), "tree-plru");
}

TEST(Promotion, DemotionOnlyLeavesHitBlockInPlace)
{
    NuRapidCache c(model(), tinyParams(PromotionPolicy::DemotionOnly,
                                       DistanceRepl::LRU));
    fillToDepthTwo(c);
    ASSERT_EQ(groupOf(c, 0), 2u);

    const auto h = c.access(0, AccessType::Read, 1'000'000);
    EXPECT_TRUE(h.hit);
    EXPECT_EQ(groupOf(c, 0), 2u);
    EXPECT_EQ(c.stats().counterValue("promotions"), 0u);
    EXPECT_TRUE(c.checkInvariants());
}

TEST(Promotion, NextFastestMovesHitBlockOneGroupInward)
{
    NuRapidCache c(model(), tinyParams(PromotionPolicy::NextFastest,
                                       DistanceRepl::LRU));
    fillToDepthTwo(c);
    ASSERT_EQ(groupOf(c, 0), 2u);

    const auto h = c.access(0, AccessType::Read, 1'000'000);
    EXPECT_TRUE(h.hit);
    EXPECT_EQ(groupOf(c, 0), 1u);
    // D-group 1 was full, so its LRU block (block 1, the second fill)
    // demoted into the vacated frame — a swap, not an eviction.
    EXPECT_EQ(groupOf(c, 1 * 128), 2u);
    EXPECT_EQ(c.stats().counterValue("promotions"), 1u);
    EXPECT_EQ(c.stats().counterValue("evictions"), 0u);
    EXPECT_TRUE(c.checkInvariants());
}

TEST(Promotion, FastestMovesHitBlockToDGroupZero)
{
    NuRapidCache c(model(), tinyParams(PromotionPolicy::Fastest,
                                       DistanceRepl::LRU));
    fillToDepthTwo(c);
    ASSERT_EQ(groupOf(c, 0), 2u);

    const auto h = c.access(0, AccessType::Read, 1'000'000);
    EXPECT_TRUE(h.hit);
    EXPECT_EQ(groupOf(c, 0), 0u);
    // D-group 0's LRU block (block 17) swapped out to d-group 2.
    EXPECT_EQ(groupOf(c, 17 * 128), 2u);
    EXPECT_EQ(c.stats().counterValue("promotions"), 1u);
    EXPECT_TRUE(c.checkInvariants());
}

TEST(Promotion, SecondHitFinishesTheClimbUnderNextFastest)
{
    NuRapidCache c(model(), tinyParams(PromotionPolicy::NextFastest,
                                       DistanceRepl::LRU));
    fillToDepthTwo(c);
    c.access(0, AccessType::Read, 1'000'000);
    ASSERT_EQ(groupOf(c, 0), 1u);
    c.access(0, AccessType::Read, 2'000'000);
    EXPECT_EQ(groupOf(c, 0), 0u);
    EXPECT_EQ(c.stats().counterValue("promotions"), 2u);
    EXPECT_TRUE(c.checkInvariants());
}

TEST(Promotion, WritebackHitsNeverMigrateTheBlock)
{
    NuRapidCache c(model(), tinyParams(PromotionPolicy::Fastest,
                                       DistanceRepl::LRU));
    fillToDepthTwo(c);
    ASSERT_EQ(groupOf(c, 0), 2u);
    c.access(0, AccessType::Writeback, 1'000'000);
    EXPECT_EQ(groupOf(c, 0), 2u);
    EXPECT_EQ(c.stats().counterValue("promotions"), 0u);
}

/**
 * The promotion-target rule must hold whichever victim-selection
 * policy fills the cache: record the hit block's d-group, access it,
 * and check the landing d-group the policy prescribes.
 */
TEST(Promotion, TargetGroupHoldsAcrossVictimPolicies)
{
    for (const PromotionPolicy promo :
         {PromotionPolicy::DemotionOnly, PromotionPolicy::NextFastest,
          PromotionPolicy::Fastest}) {
        for (const DistanceRepl drepl :
             {DistanceRepl::Random, DistanceRepl::LRU,
              DistanceRepl::TreePLRU}) {
            SCOPED_TRACE(testing::Message()
                         << promotionPolicyName(promo) << " / "
                         << distanceReplName(drepl));
            NuRapidCache c(model(), tinyParams(promo, drepl));
            for (Addr i = 0; i < 33; ++i)
                c.access(i * 128, AccessType::Read, i * 1000);

            const std::uint32_t before = groupOf(c, 0);
            const auto h = c.access(0, AccessType::Read, 1'000'000);
            ASSERT_TRUE(h.hit);
            const std::uint32_t after = groupOf(c, 0);

            std::uint32_t expected = before;
            if (before > 0 && promo == PromotionPolicy::NextFastest)
                expected = before - 1;
            else if (before > 0 && promo == PromotionPolicy::Fastest)
                expected = 0;
            EXPECT_EQ(after, expected);
            EXPECT_EQ(c.stats().counterValue("promotions"),
                      expected != before ? 1u : 0u);
            EXPECT_TRUE(c.checkInvariants());
        }
    }
}

TEST(DistanceVictim, LruPicksLeastRecentlyUsedFrame)
{
    DataArray data(2, 8, 1, DistanceRepl::LRU, 5);
    std::uint32_t first = DataArray::kNoFrame;
    std::uint32_t second = DataArray::kNoFrame;
    for (std::uint32_t i = 0; i < 8; ++i) {
        const std::uint32_t f = data.allocFrame(0, 0);
        data.place(0, f, i, 0);
        if (i == 0)
            first = f;
        if (i == 1)
            second = f;
    }
    EXPECT_EQ(data.victimFrame(0, 0), first);
    data.touch(0, first);  // now the second-placed frame is LRU
    EXPECT_EQ(data.victimFrame(0, 0), second);
}

TEST(DistanceVictim, RandomIsSeedDeterministicAndInRange)
{
    DataArray a(1, 16, 1, DistanceRepl::Random, 42);
    DataArray b(1, 16, 1, DistanceRepl::Random, 42);
    for (std::uint32_t i = 0; i < 16; ++i) {
        const std::uint32_t fa = a.allocFrame(0, 0);
        a.place(0, fa, i, 0);
        const std::uint32_t fb = b.allocFrame(0, 0);
        b.place(0, fb, i, 0);
    }
    for (int i = 0; i < 32; ++i) {
        const std::uint32_t va = a.victimFrame(0, 0);
        EXPECT_EQ(va, b.victimFrame(0, 0)) << "seed determinism";
        EXPECT_LT(va, 16u);
        EXPECT_TRUE(a.frame(0, va).valid);
    }
}

TEST(DistanceVictim, TreePlruNeverNominatesTheMostRecentTouch)
{
    DataArray data(1, 8, 1, DistanceRepl::TreePLRU, 5);
    for (std::uint32_t i = 0; i < 8; ++i) {
        const std::uint32_t f = data.allocFrame(0, 0);
        data.place(0, f, i, 0);
    }
    for (std::uint32_t f = 0; f < 8; ++f) {
        data.touch(0, f);
        const std::uint32_t v = data.victimFrame(0, 0);
        EXPECT_NE(v, f) << "tree-PLRU nominated the frame just touched";
        EXPECT_LT(v, 8u);
        EXPECT_TRUE(data.frame(0, v).valid);
    }
}

TEST(DistanceVictim, RegionsAreIndependentUnderRestriction)
{
    // Two regions of four frames: filling and victimizing region 0
    // must never nominate a region-1 frame.
    DataArray data(1, 8, 2, DistanceRepl::LRU, 5);
    for (std::uint32_t i = 0; i < 4; ++i) {
        const std::uint32_t f = data.allocFrame(0, 0);
        EXPECT_EQ(data.regionOfFrame(f), 0u);
        data.place(0, f, i, 0);
    }
    EXPECT_TRUE(data.hasFree(0, 1));
    EXPECT_FALSE(data.hasFree(0, 0));
    const std::uint32_t v = data.victimFrame(0, 0);
    EXPECT_EQ(data.regionOfFrame(v), 0u);
}

} // namespace
} // namespace nurapid
