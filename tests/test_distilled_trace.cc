/**
 * @file
 * Distilled-trace tests: replaying the precomputed L2-event stream
 * must be bit-identical to the live per-record loop — same RunMetrics
 * and same statistics, for every workload profile and every
 * organization kind (this is the guarantee that lets the sweep skip
 * the org-independent work 18 times over). Also covers the disk
 * round-trip, fingerprint invalidation, and the NURAPID_DISTILL=0
 * fallback.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/runner/run_engine.hh"
#include "sim/system.hh"
#include "trace/distilled_trace.hh"
#include "trace/profiles.hh"

namespace nurapid {
namespace {

/** The five organization kinds, one preset each. */
std::vector<OrgSpec>
oneOrgPerKind()
{
    return {OrgSpec::baseline(), OrgSpec::dnucaSsPerformance(),
            OrgSpec::snucaDefault(), OrgSpec::nurapidDefault(),
            OrgSpec::coupledSA()};
}

/** Runs (org, prof, len) once with distillation forced on or off and
 *  returns the metrics plus every statistic the replay folds. */
struct Observed
{
    RunMetrics metrics;
    std::string core_stats;
    std::string l1i_stats;
    std::string l1d_stats;
    std::string bpred_stats;
    std::string lower_stats;
};

Observed
observe(const OrgSpec &org, const WorkloadProfile &prof,
        const SimLength &len, bool distill)
{
    ::setenv("NURAPID_DISTILL", distill ? "1" : "0", 1);
    System sys(org, prof, len);
    Observed o;
    o.metrics = sys.runAll();
    o.core_stats = sys.core().stats().dump();
    o.l1i_stats = sys.l1i().stats().dump();
    o.l1d_stats = sys.l1d().stats().dump();
    o.bpred_stats = sys.core().branchPredictor().stats().dump();
    o.lower_stats = sys.lower().stats().dump();
    ::unsetenv("NURAPID_DISTILL");
    return o;
}

void
expectSameObservation(const Observed &live, const Observed &distilled,
                      const std::string &what)
{
    EXPECT_TRUE(identicalMetrics(live.metrics, distilled.metrics))
        << what << ": metrics diverged (ipc " << live.metrics.ipc
        << " vs " << distilled.metrics.ipc << ", cycles "
        << live.metrics.cycles << " vs " << distilled.metrics.cycles
        << ")";
    EXPECT_EQ(live.core_stats, distilled.core_stats) << what;
    EXPECT_EQ(live.l1i_stats, distilled.l1i_stats) << what;
    EXPECT_EQ(live.l1d_stats, distilled.l1d_stats) << what;
    EXPECT_EQ(live.bpred_stats, distilled.bpred_stats) << what;
    EXPECT_EQ(live.lower_stats, distilled.lower_stats) << what;
    EXPECT_GT(distilled.metrics.instructions, 0u) << what;
}

TEST(DistilledTrace, ReplayMatchesLiveLoopForEveryWorkload)
{
    // Every workload profile, cycling through the five organization
    // kinds so each kind sees several workloads.
    const SimLength len{20'000, 60'000};
    const std::vector<OrgSpec> orgs = oneOrgPerKind();
    std::size_t i = 0;
    for (const WorkloadProfile &prof : workloadSuite()) {
        const OrgSpec &org = orgs[i++ % orgs.size()];
        const Observed live = observe(org, prof, len, false);
        const Observed dist = observe(org, prof, len, true);
        expectSameObservation(live, dist,
                              prof.name + " / " + org.description());
    }
}

TEST(DistilledTrace, ReplayMatchesLiveLoopForEveryOrganizationKind)
{
    // One memory-intensive workload against all five kinds: the replay
    // must agree on every org-dependent path (search, migration,
    // writeback handling) too.
    const SimLength len{25'000, 75'000};
    const WorkloadProfile prof = findProfile("mcf");
    for (const OrgSpec &org : oneOrgPerKind()) {
        const Observed live = observe(org, prof, len, false);
        const Observed dist = observe(org, prof, len, true);
        expectSameObservation(live, dist,
                              prof.name + " / " + org.description());
    }
}

TEST(DistilledTrace, FallbackMatchesWhenDisabled)
{
    ::setenv("NURAPID_DISTILL", "0", 1);
    EXPECT_FALSE(distillEnabled());
    ::unsetenv("NURAPID_DISTILL");
    EXPECT_TRUE(distillEnabled());

    // Disabled and enabled runs of the same config agree (the
    // fallback is the live loop the replay is tested against).
    const SimLength len{10'000, 30'000};
    const WorkloadProfile prof = findProfile("gzip");
    const Observed off = observe(OrgSpec::nurapidDefault(), prof, len,
                                 false);
    const Observed on = observe(OrgSpec::nurapidDefault(), prof, len,
                                true);
    expectSameObservation(off, on, "NURAPID_DISTILL fallback");
}

TEST(DistilledTrace, DiskRoundTripIsBitIdentical)
{
    // A distinct seed mix keeps this test's registry entries and cache
    // files disjoint from every other test in the binary.
    constexpr std::uint64_t kMix = 77;
    constexpr std::uint64_t kRecords = 6'000;
    const std::vector<std::uint64_t> cuts{2'000, kRecords};
    const WorkloadProfile prof = findProfile("swim");
    DistillParams params;
    params.l1i = l1iOrg();
    params.l1d = l1dOrg();

    std::string dir = ::testing::TempDir() + "nurapid_distill_XXXXXX";
    ASSERT_NE(::mkdtemp(dir.data()), nullptr);
    ::setenv("NURAPID_TRACE_CACHE_DIR", dir.c_str(), 1);

    auto generated =
        sharedDistilledTrace(prof, kRecords, cuts, params, kMix);
    ASSERT_NE(generated, nullptr);
    EXPECT_FALSE(generated->fromFile());
    ASSERT_EQ(generated->size(), kRecords);
    ASSERT_GT(generated->eventCount(), 0u);
    EXPECT_TRUE(generated->isCut(2'000));
    EXPECT_TRUE(generated->isCut(kRecords));
    EXPECT_FALSE(generated->isCut(1'000));

    // Keep copies, drop the in-memory entry, and force a file load.
    const std::vector<std::uint16_t> gaps(
        generated->gapData(), generated->gapData() + generated->size());
    const std::vector<DistilledTrace::Event> events(
        generated->eventData(),
        generated->eventData() + generated->eventCount());
    generated.reset();
    dropUnusedDistilledTraces();

    auto loaded = sharedDistilledTrace(prof, kRecords, cuts, params, kMix);
    ASSERT_NE(loaded, nullptr);
    EXPECT_TRUE(loaded->fromFile())
        << "second process-equivalent request should load from disk";
    ASSERT_EQ(loaded->size(), kRecords);
    ASSERT_EQ(loaded->eventCount(), events.size());
    EXPECT_EQ(loaded->cutList(), cuts);
    EXPECT_EQ(std::memcmp(loaded->gapData(), gaps.data(),
                          gaps.size() * sizeof(gaps[0])), 0);
    EXPECT_EQ(std::memcmp(loaded->eventData(), events.data(),
                          events.size() * sizeof(events[0])), 0);

    ::unsetenv("NURAPID_TRACE_CACHE_DIR");
}

TEST(DistilledTrace, FingerprintChangesWithEveryKeyedParameter)
{
    const WorkloadProfile prof = findProfile("art");
    const std::vector<std::uint64_t> cuts{1'000, 4'000};
    DistillParams base;
    base.l1i = l1iOrg();
    base.l1d = l1dOrg();
    const std::string key =
        distillFingerprint(prof, 0, 4'000, cuts, base).key();

    auto differs = [&](const DistillParams &p, const char *what) {
        EXPECT_NE(distillFingerprint(prof, 0, 4'000, cuts, p).key(), key)
            << what << " must invalidate the fingerprint";
    };

    DistillParams p = base;
    p.l1d.capacity_bytes *= 2;
    differs(p, "L1D capacity");
    p = base;
    p.l1d.assoc *= 2;
    differs(p, "L1D associativity");
    p = base;
    p.l1i.block_bytes *= 2;
    differs(p, "L1I block size");
    p = base;
    p.l1d.repl = ReplPolicy::Random;
    differs(p, "L1D replacement policy");
    p = base;
    p.l1d.repl_seed += 1;
    differs(p, "L1D replacement seed");
    p = base;
    p.bp_entries *= 2;
    differs(p, "predictor entries");
    p = base;
    p.bp_history_bits += 1;
    differs(p, "predictor history bits");
    p = base;
    p.mshr_block_bytes *= 4;
    differs(p, "MSHR sector size");

    // Trace identity and segment cuts are keyed too.
    EXPECT_NE(distillFingerprint(prof, 1, 4'000, cuts, base).key(), key)
        << "seed mix must invalidate the fingerprint";
    EXPECT_NE(distillFingerprint(prof, 0, 5'000,
                                 {1'000, 5'000}, base).key(), key)
        << "record count must invalidate the fingerprint";
    EXPECT_NE(distillFingerprint(prof, 0, 4'000, {4'000}, base).key(),
              key)
        << "segment cuts must invalidate the fingerprint";
    const WorkloadProfile other = findProfile("mcf");
    EXPECT_NE(distillFingerprint(other, 0, 4'000, cuts, base).key(), key)
        << "workload must invalidate the fingerprint";
}

TEST(DistilledTrace, EventStreamFoldsTheInertMajority)
{
    // The point of distillation: events are a small fraction of the
    // records (L1 miss + mispredict + dep-check + cut rate).
    constexpr std::uint64_t kMix = 78;
    constexpr std::uint64_t kRecords = 50'000;
    DistillParams params;
    params.l1i = l1iOrg();
    params.l1d = l1dOrg();
    const WorkloadProfile prof = findProfile("gzip");
    auto t = sharedDistilledTrace(prof, kRecords, {kRecords}, params,
                                  kMix);
    ASSERT_NE(t, nullptr);
    EXPECT_LT(t->eventCount(), kRecords / 2)
        << "distillation folded almost nothing";
    // Events are strictly ordered and end on the forced cut record.
    const DistilledTrace::Event *ev = t->eventData();
    for (std::uint64_t i = 1; i < t->eventCount(); ++i)
        ASSERT_GT(ev[i].rec, ev[i - 1].rec) << "event " << i;
    EXPECT_EQ(ev[t->eventCount() - 1].rec, kRecords - 1)
        << "an event must be forced at the final cut record";
}

} // namespace
} // namespace nurapid
