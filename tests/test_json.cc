/**
 * @file
 * Tests for the minimal JSON reader/writer behind the run cache:
 * round trips (including %.17g double exactness and 64-bit counters),
 * escaping, and parse-error handling.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "common/fingerprint.hh"
#include "common/json.hh"

namespace nurapid {
namespace {

TEST(Json, ScalarRoundTrips)
{
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(std::uint64_t{0}).dump(), "0");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");

    const Json parsed = Json::parse("  true ");
    EXPECT_EQ(parsed.type(), Json::Type::Bool);
    EXPECT_TRUE(parsed.asBool());
}

TEST(Json, LargeIntegersAreExact)
{
    const std::uint64_t big = (1ull << 62) + 12345;
    const Json j = Json::parse(Json(big).dump());
    ASSERT_TRUE(j.isNumber());
    EXPECT_EQ(j.asUint(), big);
}

TEST(Json, DoublesRoundTripBitExactly)
{
    const double values[] = {
        0.0, -0.0, 1.0 / 3.0, 3.141592653589793, 1e-300, 2.5e300,
        0.912345678901234567, std::numeric_limits<double>::denorm_min(),
    };
    for (double v : values) {
        const Json j = Json::parse(Json(v).dump());
        ASSERT_TRUE(j.isNumber());
        EXPECT_EQ(j.asDouble(), v);
    }
}

TEST(Json, StringEscapes)
{
    const std::string nasty = "a\"b\\c\nd\te\rf";
    const Json j = Json::parse(Json(nasty).dump());
    ASSERT_TRUE(j.isString());
    EXPECT_EQ(j.asString(), nasty);
}

TEST(Json, NestedStructureRoundTrip)
{
    Json obj = Json::object();
    obj.set("name", Json("applu"));
    obj.set("count", Json(std::uint64_t{42}));
    Json arr = Json::array();
    arr.push(Json(0.5));
    arr.push(Json(false));
    arr.push(Json());
    obj.set("frac", std::move(arr));

    const Json back = Json::parse(obj.dump());
    ASSERT_TRUE(back.isObject());
    EXPECT_EQ(back.get("name").asString(), "applu");
    EXPECT_EQ(back.get("count").asUint(), 42u);
    ASSERT_EQ(back.get("frac").size(), 3u);
    EXPECT_EQ(back.get("frac").at(0).asDouble(), 0.5);
    EXPECT_TRUE(back.get("frac").at(2).isNull());
    EXPECT_FALSE(back.has("missing"));
    EXPECT_TRUE(back.get("missing").isNull());
}

TEST(Json, SetOverwritesExistingKey)
{
    Json obj = Json::object();
    obj.set("k", Json(std::uint64_t{1}));
    obj.set("k", Json(std::uint64_t{2}));
    EXPECT_EQ(obj.members().size(), 1u);
    EXPECT_EQ(obj.get("k").asUint(), 2u);
}

TEST(Json, ParseErrors)
{
    std::string err;
    EXPECT_TRUE(Json::parse("{ not json", &err).isNull());
    EXPECT_FALSE(err.empty());
    EXPECT_TRUE(Json::parse("[1, 2", &err).isNull());
    EXPECT_TRUE(Json::parse("{} trailing", &err).isNull());
    EXPECT_TRUE(Json::parse("\"unterminated", &err).isNull());
    EXPECT_TRUE(Json::parse("", &err).isNull());

    // A valid parse clears the error slot.
    err = "stale";
    EXPECT_TRUE(Json::parse("{}", &err).isObject());
    EXPECT_TRUE(err.empty());
}

TEST(Fingerprint, OrderAndValueSensitivity)
{
    Fingerprint a, b, c;
    a.field("x", std::uint64_t{1}).field("y", std::uint64_t{2});
    b.field("y", std::uint64_t{2}).field("x", std::uint64_t{1});
    c.field("x", std::uint64_t{1}).field("y", std::uint64_t{2});
    EXPECT_NE(a.key(), b.key());
    EXPECT_EQ(a.key(), c.key());
    EXPECT_EQ(a.digest(), c.digest());
    EXPECT_EQ(a.digest().size(), 16u);

    Fingerprint d, e;
    d.field("v", 0.1);
    e.field("v", 0.1 + 1e-18);  // rounds back to the same double
    EXPECT_EQ(d.key(), e.key());

    Fingerprint f, g;
    f.field("v", 0.5);
    g.field("v", 0.5000000000000001);
    EXPECT_NE(f.key(), g.key());
}

} // namespace
} // namespace nurapid
