/**
 * @file
 * Histogram unit tests: percentile queries, merging, and the edge
 * cases (empty, single-bucket, clamped overflow samples) the
 * observability layer's latency aggregates lean on.
 */

#include <gtest/gtest.h>

#include "common/histogram.hh"

namespace nurapid {
namespace {

TEST(Histogram, PercentileWalksCumulativeCounts)
{
    Histogram h(10);
    h.sample(2, 10);
    h.sample(7, 10);
    // Rank is ceil(q * total) with a floor of 1: q = 0 still asks for
    // the first sample.
    EXPECT_EQ(h.percentileBucket(0.0), 2u);
    EXPECT_EQ(h.percentileBucket(0.25), 2u);
    EXPECT_EQ(h.percentileBucket(0.5), 2u);   // rank 10, bucket 2 cum 10
    EXPECT_EQ(h.percentileBucket(0.51), 7u);  // rank 11
    EXPECT_EQ(h.percentileBucket(0.95), 7u);
    EXPECT_EQ(h.percentileBucket(1.0), 7u);
}

TEST(Histogram, PercentileClampsQuantile)
{
    Histogram h(4);
    h.sample(1, 5);
    h.sample(3, 5);
    EXPECT_EQ(h.percentileBucket(-0.5), 1u);
    EXPECT_EQ(h.percentileBucket(7.0), 3u);
}

TEST(Histogram, PercentileOfEmptyIsZero)
{
    Histogram sized(8);
    EXPECT_EQ(sized.percentileBucket(0.5), 0u);
    Histogram unsized;
    EXPECT_EQ(unsized.percentileBucket(0.95), 0u);
}

TEST(Histogram, SingleBucketAbsorbsEverything)
{
    Histogram h(1);
    h.sample(0, 3);
    h.sample(99);  // clamps into the only bucket
    EXPECT_EQ(h.count(0), 4u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.clamped(), 1u);
    EXPECT_EQ(h.percentileBucket(0.0), 0u);
    EXPECT_EQ(h.percentileBucket(1.0), 0u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 1.0);
}

TEST(Histogram, OverflowSamplesClampIntoLastBucket)
{
    Histogram h(4);
    h.sample(0, 1);
    h.sample(4, 2);    // first out-of-range index
    h.sample(1000, 3);
    EXPECT_EQ(h.count(3), 5u);
    EXPECT_EQ(h.clamped(), 5u);
    EXPECT_EQ(h.total(), 6u);
    // The overflow bucket still orders percentiles correctly.
    EXPECT_EQ(h.percentileBucket(0.1), 0u);
    EXPECT_EQ(h.percentileBucket(0.95), 3u);
}

TEST(Histogram, MergeAddsBucketwise)
{
    Histogram a(3), b(3);
    a.sample(0, 1);
    a.sample(2, 2);
    b.sample(0, 4);
    b.sample(1, 8);
    b.sample(9, 1);  // clamped into bucket 2
    a.merge(b);
    EXPECT_EQ(a.count(0), 5u);
    EXPECT_EQ(a.count(1), 8u);
    EXPECT_EQ(a.count(2), 3u);
    EXPECT_EQ(a.total(), 16u);
    EXPECT_EQ(a.clamped(), 1u);
    // The merged-from histogram is untouched.
    EXPECT_EQ(b.total(), 13u);
}

TEST(Histogram, MergeWithEmptyIsIdentity)
{
    Histogram a(2), empty(2);
    a.sample(1, 7);
    a.merge(empty);
    EXPECT_EQ(a.count(1), 7u);
    EXPECT_EQ(a.total(), 7u);
    EXPECT_EQ(a.percentileBucket(0.5), 1u);
}

TEST(Histogram, ResetClearsCountsAndClamp)
{
    Histogram h(2);
    h.sample(0, 2);
    h.sample(5, 1);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.clamped(), 0u);
    EXPECT_EQ(h.count(0), 0u);
    EXPECT_EQ(h.count(1), 0u);
    EXPECT_EQ(h.percentileBucket(0.5), 0u);
    EXPECT_EQ(h.buckets(), 2u);  // shape survives reset
}

} // namespace
} // namespace nurapid
