/** @file Unit tests for the MSHR file and main-memory model. */

#include <gtest/gtest.h>

#include "mem/main_memory.hh"
#include "mem/mshr.hh"

namespace nurapid {
namespace {

TEST(Mshr, AllocateTrackRetire)
{
    MshrFile m(2, 64);
    EXPECT_FALSE(m.full());
    m.allocate(0x100, 50);
    EXPECT_TRUE(m.tracks(0x100));
    EXPECT_TRUE(m.tracks(0x13f));   // same 64 B block
    EXPECT_FALSE(m.tracks(0x140));
    EXPECT_EQ(m.readyAt(0x100), 50u);
    m.allocate(0x200, 70);
    EXPECT_TRUE(m.full());
    EXPECT_EQ(m.nextRetirement(), 50u);
    m.retire(49);
    EXPECT_TRUE(m.full());
    m.retire(50);
    EXPECT_FALSE(m.full());
    EXPECT_FALSE(m.tracks(0x100));
    EXPECT_TRUE(m.tracks(0x200));
    EXPECT_EQ(m.live(), 1u);
}

TEST(Mshr, NextRetirementEmpty)
{
    MshrFile m(4, 64);
    EXPECT_EQ(m.nextRetirement(), kNeverCycle);
}

TEST(MshrDeath, DuplicateAllocationPanics)
{
    MshrFile m(4, 64);
    m.allocate(0x100, 10);
    EXPECT_DEATH(m.allocate(0x120, 20), "duplicate");
}

TEST(MshrDeath, ReadyAtUntrackedPanics)
{
    MshrFile m(4, 64);
    EXPECT_DEATH(m.readyAt(0x500), "untracked");
}

TEST(MainMemory, LatencyFormula)
{
    // Table 1: 130 cycles + 4 cycles per 8 bytes.
    MainMemory mem;
    EXPECT_EQ(mem.latency(128), 130u + 4u * 16u);
    EXPECT_EQ(mem.latency(32), 130u + 4u * 4u);
    EXPECT_EQ(mem.latency(8), 134u);
    EXPECT_EQ(mem.latency(1), 134u);  // rounds up to one beat
}

TEST(MainMemory, EnergyAndCounters)
{
    MainMemory mem;
    mem.read(128);
    mem.write(128);
    mem.write(128);
    EXPECT_EQ(mem.stats().counterValue("reads"), 1u);
    EXPECT_EQ(mem.stats().counterValue("writes"), 2u);
    EXPECT_GT(mem.dynamicEnergyNJ(), 0.0);
    mem.resetStats();
    EXPECT_EQ(mem.stats().counterValue("reads"), 0u);
    EXPECT_DOUBLE_EQ(mem.dynamicEnergyNJ(), 0.0);
}

TEST(MainMemory, CustomParams)
{
    MainMemory::Params p;
    p.base_latency = 100;
    p.cycles_per_8b = 2;
    MainMemory mem(p);
    EXPECT_EQ(mem.latency(16), 104u);
}

} // namespace
} // namespace nurapid
