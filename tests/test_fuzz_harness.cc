/**
 * @file
 * Tests for the differential-fuzzing harness itself: the reference
 * oracle's bookkeeping, the writeback trace encoding, the differential
 * tester's power to catch each class of candidate lie (planted in a
 * deliberately-buggy toy cache), the fuzz matrix, trace-generation
 * determinism, and the failure path end to end — minimization, .trace
 * dumping, and exact replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <list>
#include <string>
#include <vector>

#include "common/bitops.hh"
#include "testing/fuzzer.hh"
#include "trace/trace_file.hh"

namespace nurapid {
namespace {

constexpr std::uint32_t kBlock = 128;

TEST(ReferenceOracle, TracksResidencyAndDirtyState)
{
    ReferenceOracle ref;
    EXPECT_FALSE(ref.contains(0x1000));
    EXPECT_EQ(ref.size(), 0u);

    ref.allocate(0x1000, /*is_write=*/false);
    EXPECT_TRUE(ref.contains(0x1000));
    EXPECT_FALSE(ref.dirty(0x1000));

    // A write upgrades to dirty; a later read does not downgrade.
    ref.allocate(0x1000, true);
    EXPECT_TRUE(ref.dirty(0x1000));
    ref.allocate(0x1000, false);
    EXPECT_TRUE(ref.dirty(0x1000));
    EXPECT_EQ(ref.size(), 1u);

    EXPECT_TRUE(ref.evict(0x1000));
    EXPECT_FALSE(ref.contains(0x1000));
    EXPECT_FALSE(ref.evict(0x1000)) << "phantom eviction not flagged";
}

TEST(TraceEncoding, WritebacksRoundTripLosslessly)
{
    for (const AccessType type :
         {AccessType::Read, AccessType::Write, AccessType::Writeback}) {
        const TraceRecord r = lowerTraceRecord(0x1240, type, 3);
        EXPECT_EQ(lowerAccessTypeOf(r), type);
        EXPECT_EQ(r.addr, 0x1240u);
        EXPECT_EQ(r.inst_gap, 3u);
    }
}

/**
 * A toy fully-associative LRU cache with selectable planted bugs —
 * each bug is a distinct way a candidate can lie to the tester, and
 * each must be caught.
 */
class ToyCache : public LowerMemory
{
  public:
    enum class Bug
    {
        None,
        LieHit,          //!< claims a miss was a hit
        ForgetEviction,  //!< evicts without reporting the departure
        PhantomEviction, //!< reports a departure that never happened
        EvictAccessed,   //!< reports the accessed block as the victim
        WrongDirty,      //!< reports the victim with flipped dirty bit
        CorruptState,    //!< audit() reports a violation
    };

    ToyCache(std::size_t capacity_blocks, Bug planted)
        : cap(capacity_blocks), bug(planted), stats_("toy")
    {
    }

    Result
    access(Addr addr, AccessType type, Cycle) override
    {
        const Addr block = blockAlign(addr, kBlock);
        const bool is_write = type != AccessType::Read;
        Result r;
        r.latency = 10;

        for (auto it = lru.begin(); it != lru.end(); ++it) {
            if (it->first == block) {
                it->second = it->second || is_write;
                lru.splice(lru.begin(), lru, it);
                r.hit = true;
                return r;
            }
        }

        r.hit = bug == Bug::LieHit;
        if (lru.size() == cap) {
            const auto [victim, dirty] = lru.back();
            lru.pop_back();
            switch (bug) {
              case Bug::ForgetEviction:
                break;
              case Bug::EvictAccessed:
                r.noteEvicted(block, dirty);
                break;
              case Bug::WrongDirty:
                r.noteEvicted(victim, !dirty);
                break;
              default:
                r.noteEvicted(victim, dirty);
            }
        }
        if (bug == Bug::PhantomEviction)
            r.noteEvicted(Addr{1} << 40, false);
        lru.emplace_front(block, is_write);
        return r;
    }

    EnergyNJ dynamicEnergyNJ() const override { return 0; }
    EnergyNJ cacheEnergyNJ() const override { return 0; }
    const std::string &name() const override { return name_; }
    StatGroup &stats() override { return stats_; }
    const StatGroup &stats() const override { return stats_; }
    const Histogram &regionHits() const override { return hist_; }
    void resetStats() override {}

    void
    forEachResident(const ResidentFn &fn) const override
    {
        for (const auto &[block, dirty] : lru)
            fn(block, dirty);
    }

    bool
    audit(AuditSink &sink) const override
    {
        if (bug != Bug::CorruptState)
            return true;
        AuditViolation v;
        v.component = "toy";
        v.invariant = "planted";
        sink.violation(v);
        return false;
    }

  private:
    std::size_t cap;
    Bug bug;
    std::list<std::pair<Addr, bool>> lru;  //!< front = MRU
    std::string name_ = "toy";
    StatGroup stats_;
    Histogram hist_{1};
};

/** Drives enough round-robin + rewrite traffic to trip any bug. */
std::optional<std::string>
driveToy(ToyCache::Bug bug)
{
    ToyCache toy(/*capacity_blocks=*/8, bug);
    DifferentialTester::Options opts;
    opts.block_bytes = kBlock;
    opts.conservation_interval = 16;
    DifferentialTester differ(toy, opts);
    for (std::uint64_t i = 0; i < 200; ++i) {
        const Addr addr = (i % 12) * kBlock;
        const AccessType type =
            i % 3 == 0 ? AccessType::Write : AccessType::Read;
        if (auto fail = differ.step(lowerTraceRecord(addr, type, 1)))
            return fail;
    }
    return differ.deepCheck();
}

TEST(DifferentialTester, HonestCandidatePasses)
{
    const auto fail = driveToy(ToyCache::Bug::None);
    EXPECT_FALSE(fail.has_value()) << *fail;
}

TEST(DifferentialTester, CatchesEveryPlantedBug)
{
    const std::pair<ToyCache::Bug, const char *> bugs[] = {
        {ToyCache::Bug::LieHit, "candidate says hit"},
        // A forgotten eviction surfaces as soon as the departed block
        // is re-referenced: the oracle still believes it resident.
        {ToyCache::Bug::ForgetEviction, "oracle says hit"},
        {ToyCache::Bug::PhantomEviction, "not resident"},
        {ToyCache::Bug::EvictAccessed, "block being accessed"},
        {ToyCache::Bug::WrongDirty, "dirty"},
        {ToyCache::Bug::CorruptState, "audit failed"},
    };
    for (const auto &[bug, needle] : bugs) {
        const auto fail = driveToy(bug);
        ASSERT_TRUE(fail.has_value())
            << "bug " << static_cast<int>(bug) << " escaped";
        EXPECT_NE(fail->find(needle), std::string::npos)
            << "bug " << static_cast<int>(bug)
            << " caught with the wrong message: " << *fail;
    }
}

TEST(DifferentialTester, ConservationCatchesSilentShrink)
{
    // With a never-revisiting trace the hit/miss comparison can't see
    // a forgotten eviction — only the periodic conservation check can.
    ToyCache toy(/*capacity_blocks=*/8, ToyCache::Bug::ForgetEviction);
    DifferentialTester::Options opts;
    opts.block_bytes = kBlock;
    opts.conservation_interval = 16;
    DifferentialTester differ(toy, opts);
    std::optional<std::string> fail;
    for (Addr i = 0; i < 64 && !fail; ++i)
        fail = differ.step(lowerTraceRecord(i * kBlock,
                                            AccessType::Read, 1));
    ASSERT_TRUE(fail.has_value());
    EXPECT_NE(fail->find("unique blocks"), std::string::npos) << *fail;
}

TEST(FuzzMatrix, CoversEveryOrganizationWithUniqueNames)
{
    const auto matrix = fuzzTargetMatrix();
    EXPECT_EQ(matrix.size(), 26u);
    std::vector<std::string> names;
    bool base = false, snuca = false, dnuca = false, coupled = false,
         nurapid = false, restricted = false;
    for (const FuzzTarget &t : matrix) {
        for (const std::string &n : names)
            EXPECT_NE(n, t.name);
        names.push_back(t.name);
        switch (t.spec.kind) {
          case OrgKind::BaseL2L3:
            base = true;
            EXPECT_TRUE(t.differ.multi_residence);
            break;
          case OrgKind::SNuca: snuca = true; break;
          case OrgKind::DNuca: dnuca = true; break;
          case OrgKind::CoupledSA: coupled = true; break;
          case OrgKind::NuRapid:
            nurapid = true;
            restricted |= t.spec.nurapid.frame_restriction != 0;
            EXPECT_FALSE(t.differ.multi_residence);
            break;
        }
    }
    EXPECT_TRUE(base && snuca && dnuca && coupled && nurapid &&
                restricted);
}

TEST(TraceFuzzer, GenerationIsSeedDeterministic)
{
    const auto matrix = fuzzTargetMatrix();
    FuzzConfig cfg;
    cfg.iterations = 500;
    cfg.seed = 7;
    const auto a = TraceFuzzer::generate(matrix[0], cfg);
    const auto b = TraceFuzzer::generate(matrix[0], cfg);
    ASSERT_EQ(a.size(), cfg.iterations);
    ASSERT_EQ(b.size(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].addr, b[i].addr);
        EXPECT_EQ(a[i].op, b[i].op);
        EXPECT_EQ(a[i].depends_on_prev, b[i].depends_on_prev);
        EXPECT_EQ(a[i].inst_gap, b[i].inst_gap);
    }

    cfg.seed = 8;
    const auto c = TraceFuzzer::generate(matrix[0], cfg);
    bool differs = false;
    for (std::size_t i = 0; i < a.size() && !differs; ++i)
        differs = a[i].addr != c[i].addr;
    EXPECT_TRUE(differs) << "different seeds produced identical traces";
}

TEST(TraceFuzzer, RealOrganizationsPassAShortRun)
{
    FuzzConfig cfg;
    cfg.iterations = 1500;
    cfg.seed = 3;
    for (const FuzzTarget &t : fuzzTargetMatrix()) {
        if (t.name != "nurapid-next-fastest-lru" && t.name != "snuca")
            continue;
        TraceFuzzer fuzzer(t, cfg);
        const FuzzResult result = fuzzer.run("");
        EXPECT_TRUE(result.passed) << t.name << ": " << result.message;
    }
}

TEST(TraceFuzzer, FailureIsMinimizedDumpedAndReplayable)
{
    // Mis-specify the conventional target as single-residence: its
    // legitimate L2+L3 double residence now *is* a mismatch, giving a
    // real, deterministic failure for the whole failure pipeline.
    const auto matrix = fuzzTargetMatrix();
    FuzzTarget bad = matrix[0];
    ASSERT_EQ(bad.spec.kind, OrgKind::BaseL2L3);
    bad.differ.multi_residence = false;

    FuzzConfig cfg;
    cfg.iterations = 3000;
    cfg.seed = 9;
    cfg.conservation_interval = 64;
    TraceFuzzer fuzzer(bad, cfg);
    const FuzzResult result = fuzzer.run(".");

    ASSERT_FALSE(result.passed);
    EXPECT_FALSE(result.message.empty());
    ASSERT_FALSE(result.minimized.empty());
    EXPECT_LT(result.minimized.size(),
              static_cast<std::size_t>(result.failing_step + 1))
        << "minimization removed nothing";

    // The minimized trace still fails the mis-specified target and
    // passes the correctly-specified one.
    EXPECT_TRUE(TraceFuzzer::replay(bad, result.minimized,
                                    cfg.conservation_interval)
                    .has_value());
    EXPECT_FALSE(TraceFuzzer::replay(matrix[0], result.minimized,
                                     cfg.conservation_interval)
                     .has_value());

    // The dump is a faithful .trace copy of the minimized records.
    ASSERT_FALSE(result.dump_path.empty());
    {
        FileTraceSource source(result.dump_path);
        std::vector<TraceRecord> loaded;
        TraceRecord rec;
        while (source.next(rec))
            loaded.push_back(rec);
        ASSERT_EQ(loaded.size(), result.minimized.size());
        for (std::size_t i = 0; i < loaded.size(); ++i) {
            EXPECT_EQ(loaded[i].addr, result.minimized[i].addr);
            EXPECT_EQ(loaded[i].op, result.minimized[i].op);
            EXPECT_EQ(loaded[i].depends_on_prev,
                      result.minimized[i].depends_on_prev);
        }
        if (auto fail = TraceFuzzer::replay(bad, loaded,
                                            cfg.conservation_interval)) {
            EXPECT_FALSE(fail->empty());
        } else {
            ADD_FAILURE() << "dumped trace replayed clean";
        }
    }
    std::remove(result.dump_path.c_str());
}

} // namespace
} // namespace nurapid
