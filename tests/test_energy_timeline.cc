/**
 * @file
 * Energy-attribution reconciliation: the per-epoch energy timeline is
 * a *bitwise* sampling of the same accumulators the end-of-run energy
 * report reads. For every organization the final timeline snapshot
 * must equal the EnergyBreakdown fields exactly (no tolerance — the
 * snapshots copy cumulative doubles, so the telescoping epoch deltas
 * re-sum to the end-of-run totals by construction), and the timeline
 * must be identical between the live interpreter, the distilled fast
 * path and a gang replay. Also locks the run-cache bypass marker the
 * exporter writes for observed runs.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "sim/gang.hh"
#include "sim/obs/export.hh"
#include "sim/runner/run_cache.hh"
#include "sim/runner/run_engine.hh"
#include "sim/system.hh"
#include "trace/distilled_trace.hh"
#include "trace/profiles.hh"

namespace nurapid {
namespace {

/** The five final organizations, in sweep order. */
std::vector<OrgSpec>
allOrgs()
{
    return {OrgSpec::baseline(), OrgSpec::nurapidDefault(),
            OrgSpec::dnucaSsPerformance(), OrgSpec::coupledSA(),
            OrgSpec::snucaDefault()};
}

ObsConfig
metricsOnly(std::uint64_t interval = 4096)
{
    ObsConfig cfg;
    cfg.record_metrics = true;
    cfg.interval = interval;
    return cfg;
}

struct EnergyRun
{
    RunMetrics metrics;
    std::vector<IntervalSnapshot> timeline;
    EnergyBreakdown breakdown{0};  //!< copy of the org's accumulator
    double lower_nj = 0;           //!< off-chip share at end of run
};

/** Observed run with the distilled fast path forced on or off. */
EnergyRun
observedRun(const OrgSpec &spec, const std::string &profile,
            const SimLength &len, bool distill)
{
    ::setenv("NURAPID_DISTILL", distill ? "1" : "0", 1);
    System sys(spec, findProfile(profile), len);
    sys.enableObservability(metricsOnly());
    EnergyRun run;
    run.metrics = sys.runAll();
    run.timeline = sys.observabilityRecorder()->timeline();
    run.breakdown = *sys.lower().energyBreakdown();
    run.lower_nj =
        sys.lower().dynamicEnergyNJ() - sys.lower().cacheEnergyNJ();
    ::unsetenv("NURAPID_DISTILL");
    return run;
}

void
expectSameEnergyTimeline(const std::vector<IntervalSnapshot> &a,
                         const std::vector<IntervalSnapshot> &b,
                         const std::string &what)
{
    ASSERT_EQ(a.size(), b.size()) << what << ": epoch counts differ";
    for (std::size_t i = 0; i < a.size(); ++i) {
        const IntervalSnapshot &x = a[i];
        const IntervalSnapshot &y = b[i];
        ASSERT_EQ(x.has_energy, y.has_energy) << what << " epoch " << i;
        EXPECT_EQ(x.energy_total_nj, y.energy_total_nj)
            << what << " epoch " << i;
        EXPECT_EQ(x.energy_tag_nj, y.energy_tag_nj)
            << what << " epoch " << i;
        EXPECT_EQ(x.energy_swap_nj, y.energy_swap_nj)
            << what << " epoch " << i;
        EXPECT_EQ(x.energy_writeback_nj, y.energy_writeback_nj)
            << what << " epoch " << i;
        EXPECT_EQ(x.energy_data_nj, y.energy_data_nj)
            << what << " epoch " << i;
        EXPECT_EQ(x.energy_lower_nj, y.energy_lower_nj)
            << what << " epoch " << i;
    }
}

// The final snapshot is a bitwise image of the organization's energy
// accumulator, and the total reconciles exactly with the end-of-run
// energy report, for every organization. EXPECT_EQ on doubles is
// deliberate: the contract is bit-identity, not closeness.
TEST(EnergyTimeline, FinalSnapshotReconcilesWithRunTotalsForAllOrgs)
{
    const SimLength len{10'000, 50'000};
    for (const OrgSpec &spec : allOrgs()) {
        const EnergyRun run =
            observedRun(spec, "mcf", len, distillEnabled());
        const std::string what = spec.description();
        ASSERT_GE(run.timeline.size(), 2u) << what;
        const IntervalSnapshot &last = run.timeline.back();
        ASSERT_TRUE(last.has_energy) << what;

        const EnergyBreakdown &bd = run.breakdown;
        EXPECT_EQ(last.energy_total_nj, bd.total_nj) << what;
        EXPECT_EQ(last.energy_tag_nj, bd.tag_nj) << what;
        EXPECT_EQ(last.energy_swap_nj, bd.swap_nj) << what;
        EXPECT_EQ(last.energy_writeback_nj, bd.writeback_nj) << what;
        EXPECT_EQ(last.energy_data_nj, bd.data_nj) << what;

        // total_nj IS cacheEnergyNJ(), which IS the report's L2 slice;
        // the sampled off-chip share is the report's memory slice.
        EXPECT_EQ(last.energy_total_nj, run.metrics.energy.l2_cache_nj)
            << what;
        EXPECT_EQ(last.energy_lower_nj, run.metrics.energy.memory_nj)
            << what;

        // Components never exceed the total they feed (each charge
        // adds the same amount to both sides).
        double parts = bd.tag_nj + bd.swap_nj + bd.writeback_nj;
        for (double d : bd.data_nj) {
            EXPECT_GE(d, 0.0) << what;
            parts += d;
        }
        EXPECT_LE(parts, bd.total_nj * (1 + 1e-12)) << what;
        EXPECT_GT(bd.total_nj, 0.0) << what;
    }
}

// Epoch energy samples are cumulative and nondecreasing, so render
// time deltas (epoch N minus epoch N-1) are always well defined.
TEST(EnergyTimeline, CumulativeSamplesAreMonotone)
{
    const EnergyRun run =
        observedRun(OrgSpec::nurapidDefault(), "art",
                    SimLength{10'000, 50'000}, distillEnabled());
    ASSERT_GE(run.timeline.size(), 2u);
    for (std::size_t i = 1; i < run.timeline.size(); ++i) {
        const IntervalSnapshot &p = run.timeline[i - 1];
        const IntervalSnapshot &s = run.timeline[i];
        EXPECT_GE(s.energy_total_nj, p.energy_total_nj) << i;
        EXPECT_GE(s.energy_lower_nj, p.energy_lower_nj) << i;
        ASSERT_EQ(s.energy_data_nj.size(), p.energy_data_nj.size());
        for (std::size_t r = 0; r < s.energy_data_nj.size(); ++r)
            EXPECT_GE(s.energy_data_nj[r], p.energy_data_nj[r]) << i;
    }
}

// The distilled fast path must attribute energy exactly like the live
// interpreter, epoch by epoch — not just in the final totals.
TEST(EnergyTimeline, LiveAndDistilledTimelinesAreBitIdentical)
{
    if (!distillEnabled())
        GTEST_SKIP() << "distilled fast path disabled "
                        "(NURAPID_DISTILL=0)";
    const SimLength len{20'000, 60'000};
    for (const OrgSpec &spec : allOrgs()) {
        const EnergyRun live = observedRun(spec, "swim", len, false);
        const EnergyRun fast = observedRun(spec, "swim", len, true);
        expectSameEnergyTimeline(live.timeline, fast.timeline,
                                 spec.description());
        EXPECT_TRUE(identicalMetrics(live.metrics, fast.metrics))
            << spec.description();
    }
}

// Gang replay drives all lanes through one trace traversal; each
// lane's energy timeline must match its solo run bit for bit.
TEST(EnergyTimeline, GangReplayTimelinesMatchSoloRuns)
{
    if (!distillEnabled())
        GTEST_SKIP() << "gang replay needs the distilled fast path "
                        "(NURAPID_DISTILL=0)";
    const SimLength len{20'000, 60'000};
    const auto orgs = allOrgs();
    const auto &profile = findProfile("mcf");
    const ObsConfig cfg = metricsOnly();

    std::vector<std::vector<IntervalSnapshot>> solo;
    for (const OrgSpec &spec : orgs) {
        System sys(spec, profile, len);
        sys.enableObservability(cfg);
        (void)sys.runAll();
        solo.push_back(sys.observabilityRecorder()->timeline());
    }

    std::vector<std::unique_ptr<System>> group;
    std::vector<System *> lanes;
    for (const OrgSpec &spec : orgs) {
        auto sys = std::make_unique<System>(spec, profile, len);
        sys->enableObservability(cfg);
        lanes.push_back(sys.get());
        group.push_back(std::move(sys));
    }
    ASSERT_TRUE(GangReplayer::eligible(lanes));
    (void)GangReplayer::runAll(lanes);

    for (std::size_t i = 0; i < orgs.size(); ++i) {
        expectSameEnergyTimeline(
            solo[i], lanes[i]->observabilityRecorder()->timeline(),
            orgs[i].description() + " (gang lane " + std::to_string(i) +
                ")");
    }
}

// An observed run through the engine is marked as a cache bypass in
// its JSONL header, and every exported epoch carries the energy
// object the report's timeline section reads.
TEST(EnergyTimeline, EngineMarksBypassAndExportsEnergyPerEpoch)
{
    RunEngineOptions opts;
    opts.jobs = 1;
    opts.use_cache = true;
    RunEngine engine(opts);
    RunRequest observed{OrgSpec::nurapidDefault(), findProfile("twolf"),
                        SimLength{2'000, 8'000}, ObsConfig{}};
    observed.obs.record_metrics = true;
    observed.obs.interval = 1024;
    observed.obs.metrics_path =
        ::testing::TempDir() + "energy_bypass_metrics.jsonl";

    const RunMetrics m = engine.runMany({observed}).front();
    EXPECT_FALSE(m.from_cache);
    ASSERT_EQ(m.metrics_file, observed.obs.metrics_path);

    MetricsDoc doc;
    std::string err;
    ASSERT_TRUE(readJsonlFile(observed.obs.metrics_path, doc, &err))
        << err;
    EXPECT_TRUE(doc.meta.get("run_cache_bypassed").asBool());
    ASSERT_GT(doc.epochs.size(), 0u);
    for (const Json &e : doc.epochs) {
        ASSERT_TRUE(e.has("energy"));
        const Json &en = e.get("energy");
        EXPECT_TRUE(en.has("total_nj"));
        EXPECT_TRUE(en.has("tag_nj"));
        EXPECT_TRUE(en.has("data_nj"));
        EXPECT_TRUE(en.has("lower_nj"));
    }

    // A run that never touches the engine's cache machinery (direct
    // System use) is not marked.
    System sys(observed.spec, observed.profile, observed.length);
    ObsConfig direct = metricsOnly(1024);
    direct.metrics_path = ::testing::TempDir() + "energy_direct.jsonl";
    sys.enableObservability(direct);
    (void)sys.runAll();
    MetricsDoc plain;
    ASSERT_TRUE(readJsonlFile(direct.metrics_path, plain, &err)) << err;
    EXPECT_FALSE(plain.meta.has("run_cache_bypassed"));
}

} // namespace
} // namespace nurapid
