/**
 * @file
 * Packed rank-plane correctness and whole-system identity for the
 * hot-state shrink.
 *
 * Three layers of evidence:
 *  - RankPlane (SWAR, 4- or 8-bit fields) against RankPlaneRef (scalar
 *    bytes) and against a 64-bit stamp model — the recency encoding
 *    the plane replaced — under identical random churn, for way counts
 *    on both sides of the packed4 boundary and at the 64-way cap.
 *  - Stream-lookahead prefetch on/off must leave RunMetrics
 *    bit-identical (the hints never touch simulated state).
 *  - Footprint-cohort gang scheduling must match naive single-cohort
 *    gangs and solo runs, in metrics and per-event observability
 *    streams, even with a 1-byte LLC budget forcing one lane per
 *    cohort.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "mem/rank_plane.hh"
#include "sim/gang.hh"
#include "sim/runner/run_cache.hh"
#include "sim/system.hh"
#include "trace/distilled_trace.hh"
#include "trace/profiles.hh"

namespace nurapid {
namespace {

/**
 * The recency model PR 8's organizations actually used: one 64-bit
 * stamp per way plus a monotonic clock, LRU = minimum stamp with
 * first-way-wins ties (ties never happen — the clock is monotonic).
 * Initialised with descending stamps so way 0 is MRU, matching
 * RankPlane's rank[w] = w seed.
 */
class StampModel
{
  public:
    StampModel(std::uint32_t sets, std::uint32_t ways)
        : ways_(ways), stamps_(std::size_t{sets} * ways)
    {
        for (std::uint32_t s = 0; s < sets; ++s)
            for (std::uint32_t w = 0; w < ways; ++w)
                stamps_[std::size_t{s} * ways + w] = ways - w;
        clock_ = ways + 1;
    }

    void
    touch(std::uint32_t set, std::uint32_t way)
    {
        stamps_[std::size_t{set} * ways_ + way] = clock_++;
    }

    void
    swapWays(std::uint32_t set, std::uint32_t a, std::uint32_t b)
    {
        std::uint64_t *s = &stamps_[std::size_t{set} * ways_];
        std::swap(s[a], s[b]);
    }

    std::uint32_t
    lruWay(std::uint32_t set) const
    {
        return lruWayMasked(set, ways_ >= 64
                                     ? ~std::uint64_t{0}
                                     : (std::uint64_t{1} << ways_) - 1);
    }

    std::uint32_t
    lruWayMasked(std::uint32_t set, std::uint64_t mask) const
    {
        const std::uint64_t *s = &stamps_[std::size_t{set} * ways_];
        std::uint32_t best = 0;
        std::uint64_t best_stamp = ~std::uint64_t{0};
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (((mask >> w) & 1) && s[w] < best_stamp) {
                best_stamp = s[w];
                best = w;
            }
        }
        return best;
    }

  private:
    std::uint32_t ways_;
    std::uint64_t clock_;
    std::vector<std::uint64_t> stamps_;
};

TEST(RankPlane, MatchesReferenceAndStampModelUnderChurn)
{
    constexpr std::uint32_t kSets = 16;
    for (const std::uint32_t ways : {2u, 4u, 8u, 16u, 17u, 64u}) {
        RankPlane plane(kSets, ways);
        RankPlaneRef ref(kSets, ways);
        StampModel stamps(kSets, ways);
        Rng rng(0x5eedull * ways);

        const std::uint64_t all =
            ways >= 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << ways) - 1;
        for (std::uint32_t s = 0; s < kSets; ++s)
            ASSERT_TRUE(plane.isPermutation(s)) << ways << " ways";

        for (int step = 0; step < 20'000; ++step) {
            const std::uint32_t set = rng.below(kSets);
            const std::uint32_t way = rng.below(ways);
            switch (rng.below(3)) {
              case 0:
                plane.touch(set, way);
                ref.touch(set, way);
                stamps.touch(set, way);
                break;
              case 1: {
                const std::uint32_t other = rng.below(ways);
                plane.swapWays(set, way, other);
                ref.swapWays(set, way, other);
                stamps.swapWays(set, way, other);
                break;
              }
              default: {
                // Query-only step: full-set and random-subset LRU.
                ASSERT_EQ(ref.lruWay(set), plane.lruWay(set))
                    << ways << " ways, step " << step;
                ASSERT_EQ(stamps.lruWay(set), plane.lruWay(set))
                    << ways << " ways, step " << step;
                std::uint64_t mask =
                    (rng.below64(all) | (std::uint64_t{1} << way)) & all;
                ASSERT_EQ(ref.lruWayMasked(set, mask),
                          plane.lruWayMasked(set, mask))
                    << ways << " ways, step " << step;
                ASSERT_EQ(stamps.lruWayMasked(set, mask),
                          plane.lruWayMasked(set, mask))
                    << ways << " ways, step " << step;
                break;
              }
            }
            ASSERT_EQ(ref.rankOf(set, way), plane.rankOf(set, way))
                << ways << " ways, step " << step;
        }
        for (std::uint32_t s = 0; s < kSets; ++s) {
            ASSERT_TRUE(plane.isPermutation(s)) << ways << " ways";
            ASSERT_TRUE(ref.isPermutation(s)) << ways << " ways";
            for (std::uint32_t w = 0; w < ways; ++w)
                ASSERT_EQ(ref.rankOf(s, w), plane.rankOf(s, w));
        }
    }
}

TEST(RankPlane, TouchOfMruAndDeepLruIsExact)
{
    // Directed edges: repeated MRU touches are no-ops; touching the
    // LRU way rotates the whole permutation by one.
    for (const std::uint32_t ways : {4u, 16u, 17u, 64u}) {
        RankPlane plane(1, ways);
        plane.touch(0, 3 % ways);
        const std::uint64_t before =
            plane.rankOf(0, 0) | (plane.rankOf(0, ways - 1) << 8);
        plane.touch(0, 3 % ways);
        plane.touch(0, 3 % ways);
        EXPECT_EQ(before, plane.rankOf(0, 0) |
                              (plane.rankOf(0, ways - 1) << 8));

        const std::uint32_t lru = plane.lruWay(0);
        EXPECT_EQ(plane.rankOf(0, lru), ways - 1);
        plane.touch(0, lru);
        EXPECT_EQ(plane.rankOf(0, lru), 0u);
        EXPECT_TRUE(plane.isPermutation(0));
    }
}

/** The five final organizations, in sweep order. */
std::vector<OrgSpec>
allOrgs()
{
    return {OrgSpec::baseline(), OrgSpec::nurapidDefault(),
            OrgSpec::dnucaSsPerformance(), OrgSpec::coupledSA(),
            OrgSpec::snucaDefault()};
}

std::vector<RunMetrics>
runSolo(const std::vector<OrgSpec> &orgs, const WorkloadProfile &profile,
        const SimLength &length)
{
    std::vector<RunMetrics> out;
    for (const auto &spec : orgs) {
        System sys(spec, profile, length);
        out.push_back(sys.runAll());
    }
    return out;
}

TEST(StreamPrefetch, OnAndOffProduceIdenticalMetrics)
{
    const auto &profile = findProfile("mcf");
    const SimLength length{20'000, 60'000};
    const auto orgs = allOrgs();

    setenv("NURAPID_PREFETCH", "0", 1);
    const auto off = runSolo(orgs, profile, length);
    unsetenv("NURAPID_PREFETCH");
    setenv("NURAPID_PREFETCH_DIST", "2", 1);
    const auto near = runSolo(orgs, profile, length);
    setenv("NURAPID_PREFETCH_DIST", "64", 1);
    const auto far = runSolo(orgs, profile, length);
    unsetenv("NURAPID_PREFETCH_DIST");

    ASSERT_EQ(off.size(), orgs.size());
    for (std::size_t i = 0; i < orgs.size(); ++i) {
        EXPECT_TRUE(identicalMetrics(off[i], near[i]))
            << orgs[i].description() << ": prefetch distance 2 changed "
            << "the result";
        EXPECT_TRUE(identicalMetrics(off[i], far[i]))
            << orgs[i].description() << ": prefetch distance 64 changed "
            << "the result";
    }
}

std::vector<std::unique_ptr<System>>
buildGroup(const std::vector<OrgSpec> &orgs,
           const WorkloadProfile &profile, const SimLength &length,
           const ObsConfig *obs = nullptr)
{
    std::vector<std::unique_ptr<System>> group;
    for (const auto &spec : orgs) {
        auto sys = std::make_unique<System>(spec, profile, length);
        if (obs)
            sys->enableObservability(*obs);
        group.push_back(std::move(sys));
    }
    return group;
}

std::vector<System *>
raw(const std::vector<std::unique_ptr<System>> &group)
{
    std::vector<System *> out;
    for (const auto &sys : group)
        out.push_back(sys.get());
    return out;
}

TEST(GangCohorts, FootprintTilingMatchesNaiveAndSoloBitForBit)
{
    if (!distillEnabled())
        GTEST_SKIP() << "gang replay needs the distilled fast path "
                        "(NURAPID_DISTILL=0)";
    const auto &profile = findProfile("art");
    const SimLength length{20'000, 60'000};
    const auto orgs = allOrgs();
    const auto solo = runSolo(orgs, profile, length);

    // A 1-byte budget forces one lane per cohort (the degenerate
    // maximum re-traversal); naive is the single all-lanes cohort.
    setenv("NURAPID_GANG_SCHED", "footprint", 1);
    setenv("NURAPID_GANG_LLC_BYTES", "1", 1);
    auto tiled_group = buildGroup(orgs, profile, length);
    ASSERT_TRUE(GangReplayer::eligible(raw(tiled_group)));
    const auto tiled = GangReplayer::runAll(raw(tiled_group));
    unsetenv("NURAPID_GANG_LLC_BYTES");

    setenv("NURAPID_GANG_SCHED", "naive", 1);
    auto naive_group = buildGroup(orgs, profile, length);
    const auto naive = GangReplayer::runAll(raw(naive_group));
    unsetenv("NURAPID_GANG_SCHED");

    ASSERT_EQ(tiled.size(), solo.size());
    ASSERT_EQ(naive.size(), solo.size());
    for (std::size_t i = 0; i < orgs.size(); ++i) {
        EXPECT_TRUE(identicalMetrics(solo[i], tiled[i]))
            << orgs[i].description()
            << ": per-lane cohorts diverged from solo";
        EXPECT_TRUE(identicalMetrics(solo[i], naive[i]))
            << orgs[i].description()
            << ": naive gang diverged from solo";
    }
}

TEST(GangCohorts, ObservabilityStreamsSurviveTiling)
{
    if (!distillEnabled())
        GTEST_SKIP() << "gang replay needs the distilled fast path "
                        "(NURAPID_DISTILL=0)";
    const auto &profile = findProfile("swim");
    const SimLength length{0, 40'000};
    const auto orgs = allOrgs();
    ObsConfig obs;
    obs.record_events = true;

    auto solo = buildGroup(orgs, profile, length, &obs);
    for (auto &sys : solo)
        sys->runAll();

    setenv("NURAPID_GANG_SCHED", "footprint", 1);
    setenv("NURAPID_GANG_LLC_BYTES", "1", 1);
    auto tiled = buildGroup(orgs, profile, length, &obs);
    ASSERT_TRUE(GangReplayer::eligible(raw(tiled)));
    GangReplayer::runAll(raw(tiled));
    unsetenv("NURAPID_GANG_LLC_BYTES");
    unsetenv("NURAPID_GANG_SCHED");

    for (std::size_t i = 0; i < orgs.size(); ++i) {
        const EventSink *a = solo[i]->observabilitySink();
        const EventSink *b = tiled[i]->observabilitySink();
        ASSERT_NE(a, nullptr);
        ASSERT_NE(b, nullptr);
        const auto ea = a->events();
        const auto eb = b->events();
        ASSERT_EQ(ea.size(), eb.size())
            << orgs[i].description() << ": event counts differ";
        for (std::size_t j = 0; j < ea.size(); ++j) {
            const ObsEvent &x = ea[j];
            const ObsEvent &y = eb[j];
            ASSERT_TRUE(x.cycle == y.cycle && x.addr == y.addr &&
                        x.latency == y.latency && x.kind == y.kind &&
                        x.from == y.from && x.to == y.to &&
                        x.flags == y.flags)
                << orgs[i].description() << ": event " << j
                << " diverged under cohort tiling";
        }
    }
}

} // namespace
} // namespace nurapid
