/**
 * @file
 * Differential tests: degenerate configurations of the NUCA caches
 * must behave *exactly* like the plain set-associative reference.
 *
 * With a single d-group there is no distance dimension: placement,
 * promotion and distance replacement all collapse, and the NuRAPID /
 * coupled caches reduce to an ordinary LRU set-associative cache. Any
 * divergence in per-access hit/miss behaviour is a bug in the pointer
 * machinery, not a modeling choice.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/set_assoc_cache.hh"
#include "nurapid/coupled_nuca.hh"
#include "nurapid/nurapid_cache.hh"
#include "timing/geometry.hh"

namespace nurapid {
namespace {

const SramMacroModel &
model()
{
    static SramMacroModel m(TechParams::the70nm());
    return m;
}

constexpr std::uint64_t kCapacity = 64 * 1024;
constexpr std::uint32_t kAssoc = 4;
constexpr std::uint32_t kBlock = 128;

CacheOrg
referenceOrg()
{
    return {"ref", kCapacity, kAssoc, kBlock, ReplPolicy::LRU, 1};
}

/** Drives reference and candidate with one random stream; every access
 *  must agree on hit/miss. */
template <typename Candidate>
void
compareAgainstReference(Candidate &candidate, std::uint64_t seed,
                        int accesses)
{
    SetAssocCache reference(referenceOrg());
    Rng rng(seed);
    Cycle now = 0;
    for (int i = 0; i < accesses; ++i) {
        const Addr a = rng.below64(4 * kCapacity) & ~Addr{kBlock - 1};
        const bool write = rng.chance(0.3);
        now += rng.below(40);
        const bool ref_hit = reference.access(a, write).hit;
        const bool cand_hit =
            candidate
                .access(a, write ? AccessType::Write : AccessType::Read,
                        now)
                .hit;
        ASSERT_EQ(cand_hit, ref_hit) << "diverged at access " << i;
    }
}

class DifferentialSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DifferentialSeeds, SingleDGroupNuRapidEqualsSetAssociative)
{
    NuRapidCache::Params p;
    p.capacity_bytes = kCapacity;
    p.assoc = kAssoc;
    p.block_bytes = kBlock;
    p.num_dgroups = 1;
    NuRapidCache c(model(), p);
    compareAgainstReference(c, GetParam(), 30000);
    EXPECT_TRUE(c.checkInvariants());
    // With one d-group nothing can be promoted or demoted.
    EXPECT_EQ(c.stats().counterValue("promotions"), 0u);
    EXPECT_EQ(c.stats().counterValue("demotions"), 0u);
}

TEST_P(DifferentialSeeds, SingleDGroupCoupledEqualsSetAssociative)
{
    CoupledNucaCache::Params p;
    p.capacity_bytes = kCapacity;
    p.assoc = kAssoc;
    p.block_bytes = kBlock;
    p.num_dgroups = 1;
    CoupledNucaCache c(model(), p);
    compareAgainstReference(c, GetParam(), 30000);
}

TEST_P(DifferentialSeeds, MultiDGroupNuRapidMissesMatchSetAssociative)
{
    // Even with 4 d-groups, *data replacement* is plain set-LRU, so
    // the hit/miss sequence still matches the reference exactly —
    // distance replacement only moves blocks, never evicts them.
    NuRapidCache::Params p;
    p.capacity_bytes = kCapacity;
    p.assoc = kAssoc;
    p.block_bytes = kBlock;
    p.num_dgroups = 4;
    NuRapidCache c(model(), p);
    compareAgainstReference(c, GetParam(), 30000);
    EXPECT_TRUE(c.checkInvariants());
}

TEST_P(DifferentialSeeds, PromotionPolicyNeverChangesHitMiss)
{
    // Same stream through demotion-only and fastest: identical
    // hit/miss outcomes access by access.
    auto make_params = [](PromotionPolicy promo) {
        NuRapidCache::Params p;
        p.capacity_bytes = kCapacity;
        p.assoc = kAssoc;
        p.block_bytes = kBlock;
        p.num_dgroups = 4;
        p.promotion = promo;
        return p;
    };
    NuRapidCache a(model(), make_params(PromotionPolicy::DemotionOnly));
    NuRapidCache b(model(), make_params(PromotionPolicy::Fastest));
    Rng rng(GetParam() + 99);
    Cycle now = 0;
    for (int i = 0; i < 30000; ++i) {
        const Addr addr =
            rng.below64(4 * kCapacity) & ~Addr{kBlock - 1};
        now += rng.below(40);
        const bool ha = a.access(addr, AccessType::Read, now).hit;
        const bool hb = b.access(addr, AccessType::Read, now).hit;
        ASSERT_EQ(ha, hb) << "policies diverged at access " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSeeds,
                         ::testing::Values(1ull, 42ull, 20260706ull));

} // namespace
} // namespace nurapid
