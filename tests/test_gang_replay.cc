/**
 * @file
 * Gang-replay identity harness: the property locking down the
 * tentpole. For gangs of 2, 3 and 5 organizations over several
 * workload profiles and phase lengths, a gang traversal must produce
 * RunMetrics and observability event streams identical per-event to
 * sequential per-organization runs — including with a tiny
 * NURAPID_GANG_BLOCK that forces the multi-block slicing path.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "sim/gang.hh"
#include "sim/runner/run_cache.hh"
#include "sim/runner/run_engine.hh"
#include "sim/system.hh"
#include "trace/distilled_trace.hh"
#include "trace/profiles.hh"

namespace nurapid {
namespace {

/** The five final organizations, in sweep order. */
std::vector<OrgSpec>
allOrgs()
{
    return {OrgSpec::baseline(), OrgSpec::nurapidDefault(),
            OrgSpec::dnucaSsPerformance(), OrgSpec::coupledSA(),
            OrgSpec::snucaDefault()};
}

std::vector<OrgSpec>
firstOrgs(std::size_t n)
{
    auto orgs = allOrgs();
    orgs.resize(n);
    return orgs;
}

std::vector<std::unique_ptr<System>>
buildGroup(const std::vector<OrgSpec> &orgs,
           const WorkloadProfile &profile, const SimLength &length,
           const ObsConfig *obs = nullptr)
{
    std::vector<std::unique_ptr<System>> group;
    group.reserve(orgs.size());
    for (const auto &spec : orgs) {
        auto sys = std::make_unique<System>(spec, profile, length);
        if (obs)
            sys->enableObservability(*obs);
        group.push_back(std::move(sys));
    }
    return group;
}

std::vector<System *>
raw(const std::vector<std::unique_ptr<System>> &group)
{
    std::vector<System *> out;
    for (const auto &sys : group)
        out.push_back(sys.get());
    return out;
}

void
expectSameEvents(const EventSink *a, const EventSink *b,
                 const std::string &what)
{
    ASSERT_NE(a, nullptr) << what;
    ASSERT_NE(b, nullptr) << what;
    const auto ea = a->events();
    const auto eb = b->events();
    ASSERT_EQ(ea.size(), eb.size()) << what << ": event counts differ";
    for (std::size_t i = 0; i < ea.size(); ++i) {
        const ObsEvent &x = ea[i];
        const ObsEvent &y = eb[i];
        const bool same = x.cycle == y.cycle && x.addr == y.addr &&
                          x.latency == y.latency && x.kind == y.kind &&
                          x.from == y.from && x.to == y.to &&
                          x.flags == y.flags;
        ASSERT_TRUE(same) << what << ": event " << i << " diverged ("
                          << obsEventKindName(x.kind) << " vs "
                          << obsEventKindName(y.kind) << " at cycles "
                          << x.cycle << " / " << y.cycle << ")";
    }
}

/** Runs the gang-vs-sequential identity property for one gang. */
void
checkIdentity(const std::vector<OrgSpec> &orgs,
              const std::string &profile_name, const SimLength &length)
{
    const auto &profile = findProfile(profile_name);
    const std::string what =
        profile_name + " x" + std::to_string(orgs.size());

    std::vector<RunMetrics> solo;
    for (const auto &spec : orgs) {
        System sys(spec, profile, length);
        solo.push_back(sys.runAll());
    }

    auto group = buildGroup(orgs, profile, length);
    ASSERT_TRUE(GangReplayer::eligible(raw(group))) << what;
    const auto ganged = GangReplayer::runAll(raw(group));

    ASSERT_EQ(ganged.size(), solo.size());
    for (std::size_t i = 0; i < orgs.size(); ++i) {
        EXPECT_TRUE(identicalMetrics(solo[i], ganged[i]))
            << what << ": lane " << i << " ("
            << orgs[i].description() << ") diverged from its solo run";
        EXPECT_GT(ganged[i].instructions, 0u);
    }
}

TEST(GangReplay, MatchesSequentialRunsAcrossWidthsProfilesAndLengths)
{
    if (!distillEnabled())
        GTEST_SKIP() << "gang replay needs the distilled fast path "
                        "(NURAPID_DISTILL=0)";
    const SimLength lengths[] = {{20'000, 60'000}, {0, 40'000}};
    const char *profiles[] = {"mcf", "art", "swim"};
    for (const std::size_t width : {2u, 3u, 5u}) {
        for (const char *profile : profiles) {
            for (const SimLength &length : lengths)
                checkIdentity(firstOrgs(width), profile, length);
        }
    }
}

TEST(GangReplay, TinyBlocksExerciseTheMultiBlockPathIdentically)
{
    if (!distillEnabled())
        GTEST_SKIP() << "gang replay needs the distilled fast path "
                        "(NURAPID_DISTILL=0)";
    // A 64-event block slices these runs into dozens of segments; the
    // lanes must still retire the identical stream.
    setenv("NURAPID_GANG_BLOCK", "64", 1);
    checkIdentity(firstOrgs(3), "mcf", {20'000, 60'000});
    checkIdentity(firstOrgs(5), "art", {0, 40'000});
    unsetenv("NURAPID_GANG_BLOCK");
}

TEST(GangReplay, ObservabilityEventStreamsMatchPerEvent)
{
    if (!distillEnabled())
        GTEST_SKIP() << "gang replay needs the distilled fast path "
                        "(NURAPID_DISTILL=0)";
    const SimLength length{20'000, 60'000};
    const auto &profile = findProfile("swim");
    const auto orgs = firstOrgs(3);

    // Events-only and full (events + interval timeline) configs; both
    // must record the same stream whether the lanes ran solo or ganged.
    for (const bool with_metrics : {false, true}) {
        ObsConfig obs;
        obs.record_events = true;
        obs.record_metrics = with_metrics;
        const std::string what =
            with_metrics ? "full obs" : "events-only obs";

        auto solo = buildGroup(orgs, profile, length, &obs);
        for (auto &sys : solo)
            sys->runAll();

        auto ganged = buildGroup(orgs, profile, length, &obs);
        ASSERT_TRUE(GangReplayer::eligible(raw(ganged))) << what;
        GangReplayer::runAll(raw(ganged));

        for (std::size_t i = 0; i < orgs.size(); ++i) {
            expectSameEvents(solo[i]->observabilitySink(),
                             ganged[i]->observabilitySink(),
                             what + ": lane " + std::to_string(i));
        }
    }
}

TEST(GangReplay, IneligibleGroupsFallBackToSequentialRuns)
{
    const SimLength length{20'000, 60'000};
    const auto &profile = findProfile("gzip");

    // A singleton group is not a gang.
    auto one = buildGroup(firstOrgs(1), profile, length);
    EXPECT_FALSE(GangReplayer::eligible(raw(one)));

    // Mixed phase lengths cannot share a traversal.
    const SimLength other{20'000, 40'000};
    auto mixed = buildGroup(firstOrgs(1), profile, length);
    mixed.push_back(
        std::make_unique<System>(allOrgs()[1], profile, other));
    EXPECT_FALSE(GangReplayer::eligible(raw(mixed)));

    // A consumed system cannot rejoin a gang.
    auto spent = buildGroup(firstOrgs(2), profile, length);
    spent.front()->runAll();
    EXPECT_FALSE(GangReplayer::eligible(raw(spent)));

    // runAll on an ineligible group still produces correct results
    // via the sequential fallback.
    const auto via_fallback = GangReplayer::runAll(raw(mixed));
    ASSERT_EQ(via_fallback.size(), mixed.size());
    EXPECT_TRUE(identicalMetrics(
        System(firstOrgs(1)[0], profile, length).runAll(),
        via_fallback[0]));
    EXPECT_TRUE(identicalMetrics(
        System(allOrgs()[1], profile, other).runAll(),
        via_fallback[1]));
}

TEST(GangReplay, EngineBatchesMatchWithGangOnAndOff)
{
    // End to end through the scheduler: the same batch, gang on vs
    // off, must yield identical metrics for every request.
    std::vector<RunRequest> reqs;
    for (const auto &spec : firstOrgs(3)) {
        for (const char *name : {"mcf", "art"}) {
            reqs.push_back(RunRequest{spec, findProfile(name),
                                      SimLength{20'000, 60'000}});
        }
    }

    RunEngineOptions on;
    on.jobs = 1;
    on.use_cache = false;
    RunEngineOptions off = on;
    off.gang.enabled = false;

    auto a = RunEngine(on).runMany(reqs);
    auto b = RunEngine(off).runMany(reqs);
    ASSERT_EQ(a.size(), reqs.size());
    ASSERT_EQ(b.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_TRUE(identicalMetrics(a[i], b[i]))
            << reqs[i].spec.description() << " / "
            << reqs[i].profile.name
            << ": gang scheduling changed the result";
    }
}

} // namespace
} // namespace nurapid
