/** @file Tests for the D-NUCA baseline. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "nuca/dnuca.hh"
#include "timing/geometry.hh"

namespace nurapid {
namespace {

const SramMacroModel &
model()
{
    static SramMacroModel m(TechParams::the70nm());
    return m;
}

DNucaCache::Params
smallParams(DNucaSearch search = DNucaSearch::SsPerformance)
{
    DNucaCache::Params p;
    p.capacity_bytes = 256 * 1024;
    p.assoc = 16;
    p.block_bytes = 128;
    p.rows = 8;
    p.cols = 4;
    p.search = search;
    return p;
}

Addr
setStride(const DNucaCache::Params &p)
{
    return Addr{p.capacity_bytes} / p.assoc;
}

TEST(DNuca, MissThenHit)
{
    DNucaCache c(model(), smallParams());
    EXPECT_FALSE(c.access(0x0, AccessType::Read, 0).hit);
    EXPECT_TRUE(c.access(0x0, AccessType::Read, 10000).hit);
}

TEST(DNuca, InsertionAtSlowestRows)
{
    // D-NUCA's conservative screening: new blocks enter far banks, so
    // a block's first re-access is slow.
    auto p = smallParams();
    DNucaCache c(model(), p);
    const Addr stride = setStride(p);
    // Fill all 16 ways of one set.
    Cycle now = 0;
    for (std::uint32_t w = 0; w < p.assoc; ++w)
        c.access(w * stride, AccessType::Read, now += 10000);
    c.resetStats();
    c.access(16 * stride, AccessType::Read, now += 10000);  // new fill
    auto h = c.access(16 * stride, AccessType::Read, now += 10000);
    EXPECT_TRUE(h.hit);
    // First hit lands in the slowest row (minus the one bubble step it
    // may already have taken is not possible: this IS the first hit).
    EXPECT_EQ(c.regionHits().count(p.rows - 1), 1u);
}

TEST(DNuca, BubblePromotionMovesBlockCloserHitByHit)
{
    auto p = smallParams();
    DNucaCache c(model(), p);
    const Addr stride = setStride(p);
    Cycle now = 0;
    for (std::uint32_t w = 0; w < p.assoc; ++w)
        c.access(w * stride, AccessType::Read, now += 10000);
    // Hammer one block: it must bubble one row per hit until row 0.
    Cycles prev = 0xffffffff;
    for (unsigned hit = 0; hit < p.rows; ++hit) {
        auto r = c.access(5 * stride, AccessType::Read, now += 10000);
        ASSERT_TRUE(r.hit);
        EXPECT_LE(r.latency, prev);
        prev = r.latency;
    }
    // After enough hits the block serves from the fastest row.
    c.resetStats();
    auto final_hit = c.access(5 * stride, AccessType::Read, now += 10000);
    EXPECT_TRUE(final_hit.hit);
    EXPECT_EQ(c.regionHits().count(0), 1u);
}

TEST(DNuca, EvictsSlowestWayNotNecessarilyLru)
{
    // Section 2.2: bubble data replacement evicts the block in the
    // slowest way, which may not be the set-LRU block.
    auto p = smallParams();
    DNucaCache c(model(), p);
    const Addr stride = setStride(p);
    Cycle now = 0;
    for (std::uint32_t w = 0; w < p.assoc; ++w)
        c.access(w * stride, AccessType::Read, now += 10000);
    // Promote block 0 away from the tail...
    c.access(0, AccessType::Read, now += 10000);
    // ...then make block 1 the most recently used overall.
    c.access(1 * stride, AccessType::Read, now += 10000);
    c.access(1 * stride, AccessType::Read, now += 10000);
    // A new fill evicts from the slowest row — block 1 was promoted
    // out of it too; some *other* block leaves even though older
    // blocks exist elsewhere. Block 0 and 1 must survive.
    c.access(16 * stride, AccessType::Read, now += 10000);
    EXPECT_TRUE(c.access(0, AccessType::Read, now += 10000).hit);
    EXPECT_TRUE(c.access(1 * stride, AccessType::Read, now += 10000).hit);
}

TEST(DNuca, SsEnergyAccessesFewerBanksThanMulticast)
{
    auto run = [&](DNucaSearch s) {
        DNucaCache c(model(), smallParams(s));
        Rng rng(4);
        Cycle now = 0;
        for (int i = 0; i < 20000; ++i) {
            now += 25;
            c.access(rng.below64(512 * 1024) & ~Addr{127},
                     AccessType::Read, now);
        }
        return std::pair{c.stats().counterValue("bank_data_accesses") +
                             c.stats().counterValue("bank_search_probes"),
                         c.cacheEnergyNJ()};
    };
    auto [probes_perf, energy_perf] = run(DNucaSearch::SsPerformance);
    auto [probes_energy, energy_energy] = run(DNucaSearch::SsEnergy);
    EXPECT_LT(probes_energy, probes_perf);
    EXPECT_LT(energy_energy, energy_perf);
}

TEST(DNuca, MissCountIndependentOfSearchPolicy)
{
    std::uint64_t misses[3];
    int idx = 0;
    for (auto s : {DNucaSearch::Multicast, DNucaSearch::SsPerformance,
                   DNucaSearch::SsEnergy}) {
        DNucaCache c(model(), smallParams(s));
        Rng rng(11);
        Cycle now = 0;
        for (int i = 0; i < 20000; ++i) {
            now += 25;
            c.access(rng.below64(512 * 1024) & ~Addr{127},
                     AccessType::Read, now);
        }
        misses[idx++] = c.stats().counterValue("misses");
    }
    EXPECT_EQ(misses[0], misses[1]);
    EXPECT_EQ(misses[1], misses[2]);
}

TEST(DNuca, FalsePartialHitsHappenAndAreCounted)
{
    // With only 2 partial-tag bits, aliases are common; the ss-energy
    // walk then probes non-matching banks.
    auto p = smallParams(DNucaSearch::SsEnergy);
    p.partial_tag_bits = 2;
    DNucaCache c(model(), p);
    Rng rng(6);
    Cycle now = 0;
    for (int i = 0; i < 30000; ++i) {
        now += 25;
        c.access(rng.below64(2 * 1024 * 1024) & ~Addr{127},
                 AccessType::Read, now);
    }
    EXPECT_GT(c.stats().counterValue("false_partial_hits"), 0u);
}

TEST(DNuca, SsPerformanceEarlyMissIsFast)
{
    DNucaCache c(model(), smallParams(DNucaSearch::SsPerformance));
    // Cold miss with an empty cache: no partial match anywhere, so the
    // smart-search array determines the miss early.
    auto r = c.access(0x0, AccessType::Read, 0);
    MainMemory mem;
    EXPECT_EQ(r.latency, c.timing().ss_latency + mem.latency(128));
}

TEST(DNuca, WritebacksDoNotPromoteOrCount)
{
    auto p = smallParams();
    DNucaCache c(model(), p);
    const Addr stride = setStride(p);
    Cycle now = 0;
    for (std::uint32_t w = 0; w < p.assoc; ++w)
        c.access(w * stride, AccessType::Read, now += 10000);
    c.resetStats();
    c.access(3 * stride, AccessType::Writeback, now += 10000);
    EXPECT_EQ(c.stats().counterValue("promotions"), 0u);
    EXPECT_EQ(c.stats().counterValue("demand_accesses"), 0u);
    EXPECT_EQ(c.stats().counterValue("writeback_accesses"), 1u);
}

TEST(DNuca, BankContentionDelaysColocatedAccesses)
{
    auto p = smallParams();
    DNucaCache c(model(), p);
    const Addr stride = setStride(p);
    Cycle now = 0;
    for (std::uint32_t w = 0; w < p.assoc; ++w)
        c.access(w * stride, AccessType::Read, now += 10000);
    // Two immediate accesses to blocks in the same bank set: the
    // second sees bank occupancy from the first's multicast.
    auto a = c.access(0 * stride, AccessType::Read, now += 10000);
    auto b = c.access(1 * stride, AccessType::Read, now);
    EXPECT_TRUE(a.hit);
    EXPECT_TRUE(b.hit);
    EXPECT_GT(c.stats().counterValue("bank_wait_cycles"), 0u);
}

} // namespace
} // namespace nurapid
