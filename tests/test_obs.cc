/**
 * @file
 * Observability-layer tests: the flight-recorder event stream must be
 * identical between the live per-record loop and the distilled replay
 * (the hooks live in organization code both paths share), the interval
 * timeline must conserve counters (the final snapshot equals the
 * end-of-run statistics exactly), detached hooks must not allocate,
 * and the exporters must round-trip through the common JSON parser.
 *
 * This translation unit replaces the global allocator with a counting
 * malloc shim so the detached-hook test can assert "zero allocations";
 * the shim is thread-safe and pass-through, so every other test in the
 * binary is unaffected.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/obs/export.hh"
#include "sim/obs/obs.hh"
#include "sim/runner/run_engine.hh"
#include "sim/system.hh"
#include "trace/profiles.hh"

namespace {
std::atomic<std::uint64_t> g_news{0};
} // namespace

void *
operator new(std::size_t n)
{
    g_news.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace nurapid {
namespace {

bool
sameEvent(const ObsEvent &a, const ObsEvent &b)
{
    return a.cycle == b.cycle && a.addr == b.addr &&
        a.latency == b.latency && a.kind == b.kind && a.from == b.from &&
        a.to == b.to && a.flags == b.flags;
}

struct ObsRun
{
    std::vector<ObsEvent> events;
    std::vector<IntervalSnapshot> timeline;
    std::vector<std::pair<std::string, std::uint64_t>> final_counters;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

ObsRun
observedRun(const OrgSpec &org, const WorkloadProfile &prof,
            const SimLength &len, bool distill)
{
    ::setenv("NURAPID_DISTILL", distill ? "1" : "0", 1);
    System sys(org, prof, len);
    ObsConfig cfg;
    cfg.record_events = true;
    cfg.record_metrics = true;
    cfg.interval = 4096;
    sys.enableObservability(cfg);
    sys.runAll();
    ObsRun r;
    r.events = sys.observabilitySink()->events();
    r.timeline = sys.observabilityRecorder()->timeline();
    r.final_counters = sys.lower().stats().counterValues();
    const StatGroup &ls = sys.lower().stats();
    r.hits = ls.hasCounter("hits") ? ls.counterValue("hits") : 0;
    r.misses = ls.hasCounter("misses") ? ls.counterValue("misses") : 0;
    ::unsetenv("NURAPID_DISTILL");
    return r;
}

void
expectSameEventStream(const ObsRun &live, const ObsRun &dist,
                      const std::string &what)
{
    ASSERT_EQ(live.events.size(), dist.events.size()) << what;
    for (std::size_t i = 0; i < live.events.size(); ++i) {
        ASSERT_TRUE(sameEvent(live.events[i], dist.events[i]))
            << what << ": event " << i << " diverged ("
            << obsEventKindName(live.events[i].kind) << " @cycle "
            << live.events[i].cycle << " vs "
            << obsEventKindName(dist.events[i].kind) << " @cycle "
            << dist.events[i].cycle << ")";
    }
    ASSERT_EQ(live.timeline.size(), dist.timeline.size()) << what;
    for (std::size_t i = 0; i < live.timeline.size(); ++i) {
        const IntervalSnapshot &a = live.timeline[i];
        const IntervalSnapshot &b = dist.timeline[i];
        EXPECT_EQ(a.refs, b.refs) << what << " epoch " << i;
        EXPECT_EQ(a.cycles, b.cycles) << what << " epoch " << i;
        EXPECT_EQ(a.instructions, b.instructions)
            << what << " epoch " << i;
        EXPECT_EQ(a.counters, b.counters) << what << " epoch " << i;
        EXPECT_EQ(a.region_hits, b.region_hits)
            << what << " epoch " << i;
        EXPECT_EQ(a.occupancy, b.occupancy) << what << " epoch " << i;
        EXPECT_EQ(a.epoch_accesses, b.epoch_accesses)
            << what << " epoch " << i;
        EXPECT_EQ(a.epoch_hits, b.epoch_hits) << what << " epoch " << i;
    }
}

TEST(Obs, EventStreamIdenticalLiveVsDistilledNuRapid)
{
    const SimLength len{20'000, 60'000};
    const WorkloadProfile prof = findProfile("mcf");
    const OrgSpec org = OrgSpec::nurapidDefault();
    const ObsRun live = observedRun(org, prof, len, false);
    const ObsRun dist = observedRun(org, prof, len, true);
    ASSERT_GT(live.events.size(), 0u);
    expectSameEventStream(live, dist, "nurapid/mcf");
}

TEST(Obs, EventStreamIdenticalLiveVsDistilledDNuca)
{
    const SimLength len{20'000, 60'000};
    const WorkloadProfile prof = findProfile("art");
    const OrgSpec org = OrgSpec::dnucaSsPerformance();
    const ObsRun live = observedRun(org, prof, len, false);
    const ObsRun dist = observedRun(org, prof, len, true);
    ASSERT_GT(live.events.size(), 0u);
    expectSameEventStream(live, dist, "dnuca/art");
}

TEST(Obs, TimelineConservesCounters)
{
    const SimLength len{10'000, 50'000};
    const ObsRun r = observedRun(OrgSpec::nurapidDefault(),
                                 findProfile("swim"), len, true);
    ASSERT_GE(r.timeline.size(), 3u) << "want several epochs";

    // Epoch 0 is the post-warmup baseline: everything zero.
    const IntervalSnapshot &base = r.timeline.front();
    EXPECT_EQ(base.refs, 0u);
    for (const auto &kv : base.counters)
        EXPECT_EQ(kv.second, 0u) << kv.first << " nonzero at baseline";

    // The final snapshot equals the end-of-run statistics exactly, so
    // the per-epoch deltas sum to the totals by construction.
    const IntervalSnapshot &last = r.timeline.back();
    EXPECT_EQ(last.refs, len.measure_records);
    EXPECT_EQ(last.counters, r.final_counters);

    // Epoch-local access aggregates are conserved too: summed over all
    // epochs they equal the organization's demand hits + misses.
    std::uint64_t accesses = 0, hits = 0;
    for (const IntervalSnapshot &s : r.timeline) {
        accesses += s.epoch_accesses;
        hits += s.epoch_hits;
    }
    EXPECT_EQ(accesses, r.hits + r.misses);
    EXPECT_EQ(hits, r.hits);

    // refs are strictly increasing and epoch-aligned in the middle.
    for (std::size_t i = 1; i < r.timeline.size(); ++i) {
        EXPECT_GT(r.timeline[i].refs, r.timeline[i - 1].refs);
        if (i + 1 < r.timeline.size()) {
            EXPECT_EQ(r.timeline[i].refs % 4096, 0u);
        }
    }
}

TEST(Obs, DetachedHooksDoNotAllocate)
{
    // Exercise an organization's full access path (hits, misses,
    // promotions, evictions) with no sink attached; the always-compiled
    // hooks must stay allocation-free.
    auto org = makeOrganization(OrgSpec::nurapidDefault());
    auto drive = [&](std::uint64_t salt) {
        for (std::uint64_t i = 0; i < 20'000; ++i) {
            const Addr addr =
                ((i * 2654435761u + salt) % 100'000) * 64;
            const AccessType type = i % 7 == 0 ? AccessType::Writeback
                : i % 3 == 0 ? AccessType::Write
                             : AccessType::Read;
            org->access(addr, type, i * 4);
        }
    };
    drive(1);  // warm: container growth etc. may allocate here
    const std::uint64_t before = g_news.load();
    drive(2);
    EXPECT_EQ(g_news.load(), before)
        << "detached observability hooks allocated";

    // Sanity: the same loop with a sink attached does record events,
    // so the zero-allocation result covers live hook sites.
    EventSink sink(true, 0);
    org->attachObserver(&sink);
    drive(3);
    EXPECT_GT(sink.recorded(), 0u);
}

TEST(Obs, EventSinkRingOverwritesOldest)
{
    EventSink sink(true, 4);
    for (std::uint64_t i = 0; i < 6; ++i)
        sink.hit(i, i * 64, 0, 10);
    EXPECT_EQ(sink.recorded(), 6u);
    EXPECT_EQ(sink.dropped(), 2u);
    const std::vector<ObsEvent> ev = sink.events();
    ASSERT_EQ(ev.size(), 4u);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(ev[i].cycle, i + 2) << "oldest-first after wrap";
}

TEST(Obs, MetricsOnlySinkKeepsAggregatesWithoutBuffering)
{
    EventSink sink(false, 0);
    sink.hit(1, 64, 0, 10);
    sink.miss(2, 128, 200);
    EXPECT_FALSE(sink.buffering());
    EXPECT_EQ(sink.events().size(), 0u);
    const EventSink::EpochAggregates agg = sink.takeEpochAggregates();
    EXPECT_EQ(agg.accesses, 2u);
    EXPECT_EQ(agg.hits, 1u);
    EXPECT_DOUBLE_EQ(agg.avg_latency, 105.0);
    EXPECT_EQ(agg.lat_p50, 10u);
    EXPECT_EQ(agg.lat_p95, 200u);
    // take* resets the epoch-local state.
    const EventSink::EpochAggregates next = sink.takeEpochAggregates();
    EXPECT_EQ(next.accesses, 0u);
}

TEST(Obs, ExportsRoundTripThroughJsonParser)
{
    const SimLength len{5'000, 20'000};
    System sys(OrgSpec::dnucaSsPerformance(), findProfile("gzip"), len);
    ObsConfig cfg;
    cfg.record_events = true;
    cfg.record_metrics = true;
    cfg.interval = 2048;
    const std::string dir = ::testing::TempDir();
    cfg.events_path = dir + "obs_events.jsonl";
    cfg.metrics_path = dir + "obs_metrics.jsonl";
    cfg.perfetto_path = dir + "obs_trace.json";
    sys.enableObservability(cfg);
    const RunMetrics m = sys.runAll();
    EXPECT_EQ(m.metrics_file, cfg.metrics_path);

    MetricsDoc events;
    std::string err;
    ASSERT_TRUE(readJsonlFile(cfg.events_path, events, &err)) << err;
    EXPECT_EQ(events.meta.get("meta").asString(), "nurapid-events");
    EXPECT_EQ(events.meta.get("recorded").asUint(),
              sys.observabilitySink()->recorded());
    ASSERT_GT(events.epochs.size(), 0u);
    for (const Json &e : events.epochs)
        EXPECT_TRUE(e.has("kind") && e.has("cycle") && e.has("addr"));

    MetricsDoc metrics;
    ASSERT_TRUE(readJsonlFile(cfg.metrics_path, metrics, &err)) << err;
    EXPECT_EQ(metrics.meta.get("meta").asString(), "nurapid-metrics");
    EXPECT_EQ(metrics.meta.get("interval").asUint(), 2048u);
    ASSERT_EQ(metrics.epochs.size(),
              sys.observabilityRecorder()->timeline().size());
    const Json &last = metrics.epochs.back();
    EXPECT_EQ(last.get("refs").asUint(), len.measure_records);
    EXPECT_EQ(last.get("counters").get("hits").asUint(),
              sys.lower().stats().counterValue("hits"));

    MetricsDoc perfetto;
    ASSERT_TRUE(readJsonlFile(cfg.perfetto_path, perfetto, &err)) << err;
    EXPECT_TRUE(perfetto.meta.get("traceEvents").isArray());
    EXPECT_GT(perfetto.meta.get("traceEvents").size(), 0u);
}

TEST(Obs, ObservedRunsBypassTheRunCache)
{
    RunEngineOptions opts;
    opts.jobs = 1;
    opts.use_cache = true;
    RunEngine engine(opts);
    const SimLength len{2'000, 8'000};
    RunRequest plain{OrgSpec::snucaDefault(), findProfile("twolf"), len,
                     ObsConfig{}};
    RunRequest observed = plain;
    observed.obs.record_metrics = true;
    observed.obs.interval = 1024;
    observed.obs.metrics_path =
        ::testing::TempDir() + "obs_bypass_metrics.jsonl";

    // Prime the cache, then confirm a replay of the plain request hits.
    EXPECT_FALSE(engine.runMany({plain}).front().from_cache);
    EXPECT_TRUE(engine.runMany({plain}).front().from_cache);

    // The observed twin must simulate (and write its file) both times.
    const RunMetrics first = engine.runMany({observed}).front();
    EXPECT_FALSE(first.from_cache);
    EXPECT_EQ(first.metrics_file, observed.obs.metrics_path);
    EXPECT_FALSE(engine.runMany({observed}).front().from_cache);

    // Observing changed nothing about the simulation itself: the
    // cached plain result and the observed run agree exactly.
    const RunMetrics again = engine.runMany({plain}).front();
    EXPECT_TRUE(again.from_cache);
    EXPECT_EQ(first.cycles, again.cycles);
    EXPECT_EQ(first.instructions, again.instructions);
    EXPECT_DOUBLE_EQ(first.ipc, again.ipc);
}

TEST(Obs, WarnOnceDeduplicatesAndWarnCanBeSilenced)
{
    ::testing::internal::CaptureStderr();
    warnOnce("obs-test dedup marker %d", 7);
    warnOnce("obs-test dedup marker %d", 7);
    std::string out = ::testing::internal::GetCapturedStderr();
    std::size_t n = 0;
    for (std::size_t pos = 0;
         (pos = out.find("obs-test dedup marker 7", pos)) !=
         std::string::npos;
         ++pos) {
        ++n;
    }
    EXPECT_EQ(n, 1u) << out;

    setWarnEnabled(false);
    ::testing::internal::CaptureStderr();
    warn("obs-test silenced warn");
    warnOnce("obs-test silenced warnOnce");
    out = ::testing::internal::GetCapturedStderr();
    setWarnEnabled(true);
    EXPECT_EQ(out.find("obs-test silenced"), std::string::npos) << out;
}

} // namespace
} // namespace nurapid
