/**
 * @file
 * Behavioral and property tests for the NuRAPID cache itself: distance
 * placement, distance replacement, promotion policies, pointer
 * consistency, port serialization, and the paper's structural claims
 * (miss rate independent of policy and d-group count; any number of a
 * set's blocks may share the fastest d-group).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hh"
#include "nurapid/nurapid_cache.hh"
#include "timing/geometry.hh"

namespace nurapid {
namespace {

const SramMacroModel &
model()
{
    static SramMacroModel m(TechParams::the70nm());
    return m;
}

NuRapidCache::Params
smallParams(std::uint32_t dgroups = 4,
            PromotionPolicy promo = PromotionPolicy::NextFastest,
            DistanceRepl drepl = DistanceRepl::Random)
{
    NuRapidCache::Params p;
    p.capacity_bytes = 64 * 1024;
    p.assoc = 4;
    p.block_bytes = 128;
    p.num_dgroups = dgroups;
    p.promotion = promo;
    p.distance_repl = drepl;
    p.seed = 3;
    return p;
}

/** Set stride: blocks this far apart share a tag set. */
Addr
setStride(const NuRapidCache::Params &p)
{
    return Addr{p.capacity_bytes} / p.assoc;
}

TEST(NuRapid, MissThenHit)
{
    NuRapidCache c(model(), smallParams());
    auto m = c.access(0x1000, AccessType::Read, 0);
    EXPECT_FALSE(m.hit);
    auto h = c.access(0x1000, AccessType::Read, 1000);
    EXPECT_TRUE(h.hit);
    EXPECT_TRUE(c.checkInvariants());
}

TEST(NuRapid, NewBlocksPlacedInFastestDGroup)
{
    // Section 2.1: every fill goes to d-group 0.
    NuRapidCache c(model(), smallParams());
    for (int i = 0; i < 16; ++i)
        c.access(i * 0x1000, AccessType::Read, i * 1000);
    for (int i = 0; i < 16; ++i) {
        auto h = c.access(i * 0x1000, AccessType::Read, 100000 + i * 1000);
        EXPECT_TRUE(h.hit);
    }
    EXPECT_EQ(c.regionHits().count(0), 16u);
    EXPECT_TRUE(c.checkInvariants());
}

TEST(NuRapid, WholeHotSetFitsInFastestDGroup)
{
    // The headline flexibility claim: ALL ways of a hot set can live in
    // d-group 0 simultaneously (a coupled cache could hold only
    // assoc/num_dgroups of them there).
    auto p = smallParams();
    NuRapidCache c(model(), p);
    const Addr stride = setStride(p);
    for (std::uint32_t w = 0; w < p.assoc; ++w)
        c.access(w * stride, AccessType::Read, w * 1000);
    const std::uint32_t set = c.tags().setOf(0);
    EXPECT_EQ(c.blocksOfSetInGroup(set, 0), p.assoc);
}

TEST(NuRapid, HitLatencyMatchesDGroup)
{
    auto p = smallParams();
    NuRapidCache c(model(), p);
    c.access(0x0, AccessType::Read, 0);
    auto h = c.access(0x0, AccessType::Read, 100000);
    EXPECT_EQ(h.latency, c.timing().dgroups[0].total_latency);
}

TEST(NuRapid, MissLatencyIsTagPlusMemory)
{
    auto p = smallParams();
    NuRapidCache c(model(), p);
    auto m = c.access(0x0, AccessType::Read, 0);
    MainMemory mem;
    EXPECT_EQ(m.latency, c.timing().tag_latency + mem.latency(128));
}

TEST(NuRapid, EvictionIsSetLru)
{
    auto p = smallParams();
    NuRapidCache c(model(), p);
    const Addr stride = setStride(p);
    // Fill the set, touch block 0 again, then overflow: block 1 (LRU)
    // must be the one evicted.
    for (std::uint32_t w = 0; w < p.assoc; ++w)
        c.access(w * stride, AccessType::Read, w * 1000);
    c.access(0, AccessType::Read, 50000);
    c.access(p.assoc * stride, AccessType::Read, 60000);  // eviction
    EXPECT_TRUE(c.access(0, AccessType::Read, 70000).hit);
    EXPECT_FALSE(c.access(1 * stride, AccessType::Read, 80000).hit);
}

TEST(NuRapid, DirtyEvictionWritesMemory)
{
    auto p = smallParams();
    NuRapidCache c(model(), p);
    const Addr stride = setStride(p);
    c.access(0, AccessType::Write, 0);
    for (std::uint32_t w = 1; w <= p.assoc; ++w)
        c.access(w * stride, AccessType::Read, w * 1000);
    EXPECT_GE(c.memory().stats().counterValue("writes"), 1u);
}

TEST(NuRapid, DemotionChainOnPressure)
{
    // Filling beyond d-group 0's frame count forces demotions but
    // never drops blocks (distance replacement does not evict).
    auto p = smallParams();
    NuRapidCache c(model(), p);
    const std::uint32_t frames_per_group =
        p.capacity_bytes / p.num_dgroups / p.block_bytes;  // 128
    for (std::uint32_t i = 0; i < 2 * frames_per_group; ++i)
        c.access(Addr{i} * p.block_bytes, AccessType::Read, i * 100);
    EXPECT_GT(c.stats().counterValue("demotions"), 0u);
    EXPECT_EQ(c.stats().counterValue("evictions"), 0u);  // capacity fits
    // Everything still hits: nothing was lost to demotion.
    for (std::uint32_t i = 0; i < 2 * frames_per_group; ++i) {
        EXPECT_TRUE(c.access(Addr{i} * p.block_bytes, AccessType::Read,
                             1000000 + i * 100).hit);
    }
    EXPECT_TRUE(c.checkInvariants());
}

TEST(NuRapid, NextFastestPromotesOneGroupCloser)
{
    auto p = smallParams(4, PromotionPolicy::NextFastest);
    NuRapidCache c(model(), p);
    // Fill 2 d-groups worth of blocks; early blocks end up demoted.
    const std::uint32_t frames_per_group =
        p.capacity_bytes / p.num_dgroups / p.block_bytes;
    for (std::uint32_t i = 0; i < 2 * frames_per_group; ++i)
        c.access(Addr{i} * p.block_bytes, AccessType::Read, i * 100);
    // Find a block currently in d-group 1 via the tag state.
    c.resetStats();
    Addr demoted = kInvalidAddr;
    for (std::uint32_t i = 0; i < 2 * frames_per_group; ++i) {
        const Addr a = Addr{i} * p.block_bytes;
        auto l = c.tags().lookup(a);
        if (l.hit && c.tags().entry(l.set, l.way).group == 1) {
            demoted = a;
            break;
        }
    }
    ASSERT_NE(demoted, kInvalidAddr);
    c.access(demoted, AccessType::Read, 10'000'000);
    auto l = c.tags().lookup(demoted);
    EXPECT_EQ(c.tags().entry(l.set, l.way).group, 0u);
    EXPECT_EQ(c.stats().counterValue("promotions"), 1u);
    EXPECT_TRUE(c.checkInvariants());
}

TEST(NuRapid, FastestPromotesStraightToGroupZero)
{
    auto p = smallParams(4, PromotionPolicy::Fastest);
    NuRapidCache c(model(), p);
    const std::uint32_t frames_per_group =
        p.capacity_bytes / p.num_dgroups / p.block_bytes;
    for (std::uint32_t i = 0; i < 3 * frames_per_group; ++i)
        c.access(Addr{i} * p.block_bytes, AccessType::Read, i * 100);
    Addr deep = kInvalidAddr;
    for (std::uint32_t i = 0; i < 3 * frames_per_group; ++i) {
        const Addr a = Addr{i} * p.block_bytes;
        auto l = c.tags().lookup(a);
        if (l.hit && c.tags().entry(l.set, l.way).group == 2) {
            deep = a;
            break;
        }
    }
    ASSERT_NE(deep, kInvalidAddr);
    c.access(deep, AccessType::Read, 10'000'000);
    auto l = c.tags().lookup(deep);
    EXPECT_EQ(c.tags().entry(l.set, l.way).group, 0u);
}

TEST(NuRapid, DemotionOnlyNeverPromotes)
{
    auto p = smallParams(4, PromotionPolicy::DemotionOnly);
    NuRapidCache c(model(), p);
    Rng rng(9);
    for (int i = 0; i < 20000; ++i) {
        c.access(rng.below64(8 * p.capacity_bytes) & ~Addr{127},
                 AccessType::Read, Cycle{static_cast<Cycle>(i)} * 50);
    }
    EXPECT_EQ(c.stats().counterValue("promotions"), 0u);
    EXPECT_TRUE(c.checkInvariants());
}

TEST(NuRapid, SinglePortSerializesSwaps)
{
    // Two back-to-back accesses where the first triggers promotion
    // work: the second must start later than it would on an idle port.
    auto p = smallParams();
    NuRapidCache c(model(), p);
    const std::uint32_t frames_per_group =
        p.capacity_bytes / p.num_dgroups / p.block_bytes;
    for (std::uint32_t i = 0; i < 2 * frames_per_group; ++i)
        c.access(Addr{i} * p.block_bytes, AccessType::Read, i * 1000);
    // Find a demoted block and hit it (promotion) then immediately
    // access another resident block.
    Addr demoted = kInvalidAddr, fast = kInvalidAddr;
    for (std::uint32_t i = 0; i < 2 * frames_per_group; ++i) {
        const Addr a = Addr{i} * p.block_bytes;
        auto l = c.tags().lookup(a);
        if (!l.hit)
            continue;
        const auto g = c.tags().entry(l.set, l.way).group;
        if (g == 1 && demoted == kInvalidAddr)
            demoted = a;
        if (g == 0 && fast == kInvalidAddr)
            fast = a;
    }
    ASSERT_NE(demoted, kInvalidAddr);
    ASSERT_NE(fast, kInvalidAddr);
    const Cycle t0 = 10'000'000;
    c.access(demoted, AccessType::Read, t0);      // promotes: swap work
    auto r = c.access(fast, AccessType::Read, t0);
    EXPECT_GT(r.latency, c.timing().dgroups[0].total_latency);
}

TEST(NuRapid, IdealModeConstantHitLatency)
{
    auto p = smallParams();
    p.ideal_fastest = true;
    NuRapidCache c(model(), p);
    const std::uint32_t frames_per_group =
        p.capacity_bytes / p.num_dgroups / p.block_bytes;
    for (std::uint32_t i = 0; i < 3 * frames_per_group; ++i)
        c.access(Addr{i} * p.block_bytes, AccessType::Read, i);
    for (std::uint32_t i = 0; i < 3 * frames_per_group; ++i) {
        auto r = c.access(Addr{i} * p.block_bytes, AccessType::Read,
                          1'000'000 + i);
        ASSERT_TRUE(r.hit);
        EXPECT_EQ(r.latency, c.timing().dgroups[0].total_latency);
    }
}

TEST(NuRapid, WritebackHitMarksDirtyWithoutPromotion)
{
    auto p = smallParams();
    NuRapidCache c(model(), p);
    const std::uint32_t frames_per_group =
        p.capacity_bytes / p.num_dgroups / p.block_bytes;
    for (std::uint32_t i = 0; i < 2 * frames_per_group; ++i)
        c.access(Addr{i} * p.block_bytes, AccessType::Read, i * 100);
    Addr demoted = kInvalidAddr;
    for (std::uint32_t i = 0; i < 2 * frames_per_group; ++i) {
        const Addr a = Addr{i} * p.block_bytes;
        auto l = c.tags().lookup(a);
        if (l.hit && c.tags().entry(l.set, l.way).group == 1) {
            demoted = a;
            break;
        }
    }
    ASSERT_NE(demoted, kInvalidAddr);
    c.resetStats();
    auto r = c.access(demoted, AccessType::Writeback, 10'000'000);
    EXPECT_EQ(r.latency, 0u);
    EXPECT_EQ(c.stats().counterValue("promotions"), 0u);
    auto l = c.tags().lookup(demoted);
    EXPECT_EQ(c.tags().entry(l.set, l.way).group, 1u);  // stayed put
    EXPECT_TRUE(c.tags().entry(l.set, l.way).dirty);
}

using StormParam = std::tuple<std::uint32_t, PromotionPolicy,
                              DistanceRepl, std::uint32_t>;

class NuRapidStorm : public ::testing::TestWithParam<StormParam>
{
};

TEST_P(NuRapidStorm, InvariantsSurviveRandomStorm)
{
    const auto [dgroups, promo, drepl, restriction] = GetParam();
    auto p = smallParams(dgroups, promo, drepl);
    p.frame_restriction = restriction;
    NuRapidCache c(model(), p);
    Rng rng(dgroups * 1000 + static_cast<unsigned>(promo) * 10 +
            static_cast<unsigned>(drepl));
    Cycle now = 0;
    for (int i = 0; i < 30000; ++i) {
        const Addr a =
            rng.below64(4 * p.capacity_bytes) & ~Addr{127};
        const double u = rng.uniform();
        const AccessType t = u < 0.6 ? AccessType::Read
            : u < 0.85 ? AccessType::Write
                       : AccessType::Writeback;
        now += rng.below(30);
        c.access(a, t, now);
        if (i % 5000 == 4999) {
            ASSERT_TRUE(c.checkInvariants()) << "at access " << i;
        }
    }
    ASSERT_TRUE(c.checkInvariants());
    // Conservation: hits + misses == demand accesses.
    const auto &s = c.stats();
    EXPECT_EQ(s.counterValue("hits") + s.counterValue("misses"),
              s.counterValue("demand_accesses"));
}

INSTANTIATE_TEST_SUITE_P(
    Policies, NuRapidStorm,
    ::testing::Combine(
        ::testing::Values(2u, 4u, 8u),
        ::testing::Values(PromotionPolicy::DemotionOnly,
                          PromotionPolicy::NextFastest,
                          PromotionPolicy::Fastest),
        ::testing::Values(DistanceRepl::Random, DistanceRepl::LRU,
                          DistanceRepl::TreePLRU),
        ::testing::Values(0u, 32u)));

TEST(NuRapid, MissCountIndependentOfPromotionPolicy)
{
    // Section 5.2.2: "miss rates remain the same for the three policies
    // because distance replacement does not cause evictions."
    std::uint64_t misses[3];
    int idx = 0;
    for (auto promo : {PromotionPolicy::DemotionOnly,
                       PromotionPolicy::NextFastest,
                       PromotionPolicy::Fastest}) {
        NuRapidCache c(model(), smallParams(4, promo));
        Rng rng(77);
        Cycle now = 0;
        for (int i = 0; i < 40000; ++i) {
            now += 20;
            c.access(rng.below64(3 * 64 * 1024) & ~Addr{127},
                     AccessType::Read, now);
        }
        misses[idx++] = c.stats().counterValue("misses");
    }
    EXPECT_EQ(misses[0], misses[1]);
    EXPECT_EQ(misses[1], misses[2]);
}

TEST(NuRapid, MissCountIndependentOfDGroupCount)
{
    // Section 5.3.2: total capacity is unchanged, so miss rates match
    // across 2/4/8 d-group configurations.
    std::uint64_t misses[3];
    int idx = 0;
    for (std::uint32_t ndg : {2u, 4u, 8u}) {
        NuRapidCache c(model(), smallParams(ndg));
        Rng rng(88);
        Cycle now = 0;
        for (int i = 0; i < 40000; ++i) {
            now += 20;
            c.access(rng.below64(3 * 64 * 1024) & ~Addr{127},
                     AccessType::Read, now);
        }
        misses[idx++] = c.stats().counterValue("misses");
    }
    EXPECT_EQ(misses[0], misses[1]);
    EXPECT_EQ(misses[1], misses[2]);
}

TEST(NuRapid, TreePlruDistanceReplacementAvoidsHotVictims)
{
    // Section 2.4.2: approximate LRU should rarely demote the block it
    // just touched. Hammer one block while filling the d-group; the
    // hammered block must stay in d-group 0.
    auto p = smallParams(4, PromotionPolicy::DemotionOnly,
                         DistanceRepl::TreePLRU);
    NuRapidCache c(model(), p);
    const std::uint32_t frames_per_group =
        p.capacity_bytes / p.num_dgroups / p.block_bytes;
    const Addr hot = 0x0;
    Cycle now = 0;
    c.access(hot, AccessType::Read, now);
    for (std::uint32_t i = 1; i < 2 * frames_per_group; ++i) {
        c.access(Addr{i} * p.block_bytes, AccessType::Read, now += 50);
        c.access(hot, AccessType::Read, now += 50);  // keep it MRU
    }
    auto l = c.tags().lookup(hot);
    ASSERT_TRUE(l.hit);
    EXPECT_EQ(c.tags().entry(l.set, l.way).group, 0u);
    EXPECT_TRUE(c.checkInvariants());
}

TEST(NuRapid, RestrictionCanEvictButUnrestrictedCannotOverflow)
{
    auto p = smallParams();
    p.frame_restriction = 8;  // 16 regions of 8 frames per d-group
    NuRapidCache c(model(), p);
    Rng rng(5);
    Cycle now = 0;
    for (int i = 0; i < 30000; ++i) {
        now += 10;
        c.access(rng.below64(2 * p.capacity_bytes) & ~Addr{127},
                 AccessType::Read, now);
    }
    EXPECT_TRUE(c.checkInvariants());
    // With such small regions, some restriction evictions occur.
    EXPECT_GT(c.stats().counterValue("restriction_evictions"), 0u);
}

TEST(NuRapidDeath, BadRestrictionIsFatal)
{
    auto p = smallParams();
    p.frame_restriction = 100;  // does not divide 128 frames per group
    EXPECT_DEATH(NuRapidCache(model(), p), "restriction");
}

} // namespace
} // namespace nurapid
