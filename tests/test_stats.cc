/** @file Unit tests for the statistics package and histogram. */

#include <gtest/gtest.h>

#include "common/histogram.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace nurapid {
namespace {

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    EXPECT_EQ(c.value(), 1u);
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, TracksMoments)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);
    EXPECT_EQ(a.samples(), 3u);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);
}

TEST(StatGroup, RegisterAndQuery)
{
    StatGroup g("grp");
    Counter hits, misses;
    g.addCounter("hits", hits);
    g.addCounter("misses", misses);
    ++hits;
    ++hits;
    ++misses;
    EXPECT_EQ(g.counterValue("hits"), 2u);
    EXPECT_EQ(g.counterValue("misses"), 1u);
    EXPECT_TRUE(g.hasCounter("hits"));
    EXPECT_FALSE(g.hasCounter("nope"));
}

TEST(StatGroup, ResetAll)
{
    StatGroup g("grp");
    Counter c;
    Average a;
    g.addCounter("c", c);
    g.addAverage("a", a);
    c += 5;
    a.sample(3.0);
    g.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(a.samples(), 0u);
}

TEST(StatGroup, DumpContainsNamesAndValues)
{
    StatGroup g("cache");
    Counter c;
    g.addCounter("hits", c);
    c += 7;
    const std::string dump = g.dump();
    EXPECT_NE(dump.find("cache.hits 7"), std::string::npos);
}

TEST(StatGroupDeath, DuplicateCounterPanics)
{
    StatGroup g("grp");
    Counter a, b;
    g.addCounter("x", a);
    EXPECT_DEATH(g.addCounter("x", b), "duplicate counter");
}

TEST(Histogram, SampleAndFractions)
{
    Histogram h(4);
    h.sample(0, 3);
    h.sample(1);
    h.sample(3, 6);
    EXPECT_EQ(h.total(), 10u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.3);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.1);
    EXPECT_DOUBLE_EQ(h.fraction(2), 0.0);
    EXPECT_DOUBLE_EQ(h.fraction(3), 0.6);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(2);
    h.sample(5);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.clamped(), 1u);
}

TEST(Histogram, MergeAddsBucketwise)
{
    Histogram a(3), b(3);
    a.sample(0);
    b.sample(0);
    b.sample(2, 4);
    a.merge(b);
    EXPECT_EQ(a.count(0), 2u);
    EXPECT_EQ(a.count(2), 4u);
    EXPECT_EQ(a.total(), 6u);
}

TEST(HistogramDeath, MergeShapeMismatchPanics)
{
    Histogram a(2), b(3);
    EXPECT_DEATH(a.merge(b), "different shapes");
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"x", "1"});
    t.row({"longer", "23"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator line present.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, NumAndPct)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::pct(0.123, 1), "12.3%");
}

TEST(TextTableDeath, RowWidthMismatchPanics)
{
    TextTable t;
    t.header({"a", "b"});
    EXPECT_DEATH(t.row({"only-one"}), "cells");
}

} // namespace
} // namespace nurapid
