/**
 * @file
 * Integration tests: full systems (core + L1s + L2 organization +
 * workload) and the energy model, at reduced simulation lengths.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "energy/energy_model.hh"
#include "sim/system.hh"
#include "trace/profiles.hh"
#include "trace/synthetic.hh"
#include "trace/trace_file.hh"

namespace nurapid {
namespace {

SimLength
shortLength()
{
    return {60'000, 200'000};
}

TEST(OrgSpec, DescriptionsDistinct)
{
    EXPECT_NE(OrgSpec::baseline().description(),
              OrgSpec::nurapidDefault().description());
    EXPECT_NE(OrgSpec::dnucaSsPerformance().description(),
              OrgSpec::dnucaSsEnergy().description());
    EXPECT_NE(OrgSpec::nurapidDefault(4).description(),
              OrgSpec::nurapidDefault(8).description());
}

TEST(SimLength, EnvScaling)
{
    setenv("NURAPID_SIM_SCALE", "0.5", 1);
    auto len = SimLength::fromEnv();
    EXPECT_EQ(len.warmup_records, 500'000u);
    EXPECT_EQ(len.measure_records, 1'500'000u);
    unsetenv("NURAPID_SIM_SCALE");
    auto len2 = SimLength::fromEnv();
    EXPECT_EQ(len2.warmup_records, 1'000'000u);
}

TEST(System, RunProducesCoherentMetrics)
{
    auto m = runOne(OrgSpec::nurapidDefault(), findProfile("applu"),
                    shortLength());
    EXPECT_GT(m.ipc, 0.0);
    EXPECT_LT(m.ipc, 8.0);
    EXPECT_GT(m.instructions, 0u);
    EXPECT_GT(m.cycles, 0u);
    EXPECT_GT(m.l2_demand, 0u);
    EXPECT_EQ(m.l2_hits + m.l2_misses, m.l2_demand);
    double frac = m.miss_frac;
    for (double f : m.region_frac)
        frac += f;
    EXPECT_NEAR(frac, 1.0, 0.01);
    EXPECT_GT(m.energy.total_nj, 0.0);
    EXPECT_GT(m.energy.edp, 0.0);
}

TEST(System, MissCountsMatchAcrossOrganizations)
{
    // All four organizations have 8 MB of on-chip capacity below L1
    // (base: 1 MB L2 + 8 MB L3), and the L1-filtered stream is
    // identical, so total off-chip fills must be very close.
    const auto &prof = findProfile("galgel");
    auto nr = runOne(OrgSpec::nurapidDefault(), prof, shortLength());
    auto dn = runOne(OrgSpec::dnucaSsPerformance(), prof, shortLength());
    EXPECT_NEAR(static_cast<double>(dn.l2_misses),
                static_cast<double>(nr.l2_misses),
                0.15 * nr.l2_misses);
    EXPECT_EQ(nr.l2_demand, dn.l2_demand);
}

TEST(System, NuRapidOutperformsBaseOnHighLoad)
{
    const auto &prof = findProfile("swim");
    auto base = runOne(OrgSpec::baseline(), prof, shortLength());
    auto nr = runOne(OrgSpec::nurapidDefault(), prof, shortLength());
    EXPECT_GT(nr.ipc, base.ipc);
}

TEST(System, IdealBoundsNuRapid)
{
    const auto &prof = findProfile("equake");
    auto nr = runOne(OrgSpec::nurapidDefault(), prof, shortLength());
    auto ideal = runOne(OrgSpec::nurapidIdeal(), prof, shortLength());
    EXPECT_GE(ideal.ipc, nr.ipc * 0.999);
}

TEST(System, NuRapidHasFewerDataArrayAccessesThanDNuca)
{
    // The abstract's "61% fewer d-group accesses" claim, directionally.
    const auto &prof = findProfile("applu");
    auto nr = runOne(OrgSpec::nurapidDefault(), prof, shortLength());
    auto dn = runOne(OrgSpec::dnucaSsPerformance(), prof, shortLength());
    EXPECT_LT(nr.data_array_accesses, dn.data_array_accesses);
    EXPECT_LT(nr.promotions, dn.promotions);
}

TEST(System, NuRapidLowerL2EnergyThanDNuca)
{
    const auto &prof = findProfile("mgrid");
    auto nr = runOne(OrgSpec::nurapidDefault(), prof, shortLength());
    auto dperf = runOne(OrgSpec::dnucaSsPerformance(), prof,
                        shortLength());
    auto den = runOne(OrgSpec::dnucaSsEnergy(), prof, shortLength());
    EXPECT_LT(nr.energy.l2_cache_nj, den.energy.l2_cache_nj);
    EXPECT_LT(den.energy.l2_cache_nj, dperf.energy.l2_cache_nj);
    // The reduction is substantial (paper: 77%); require > 40% even at
    // this reduced simulation length.
    EXPECT_LT(nr.energy.l2_cache_nj, 0.6 * den.energy.l2_cache_nj);
}

TEST(System, CoupledSAKeepsFewerFastHitsThanNuRapid)
{
    // Figure 4's claim: distance-associative placement beats
    // set-associative placement on fastest-d-group hit fraction.
    const auto &prof = findProfile("applu");
    auto sa = runOne(OrgSpec::coupledSA(), prof, shortLength());
    auto nr = runOne(OrgSpec::nurapidDefault(), prof, shortLength());
    EXPECT_GT(nr.region_frac[0], sa.region_frac[0]);
}

TEST(System, DemotionOnlyHasFewerFastHitsThanNextFastest)
{
    // Needs enough accesses for demotion pressure to build up.
    const SimLength len{300'000, 900'000};
    const auto &prof = findProfile("swim");
    auto demo = runOne(
        OrgSpec::nurapidDefault(4, PromotionPolicy::DemotionOnly), prof,
        len);
    auto next = runOne(OrgSpec::nurapidDefault(), prof, len);
    EXPECT_GT(next.region_frac[0], demo.region_frac[0]);
    EXPECT_EQ(demo.l2_misses, next.l2_misses);  // policy-independent
}

TEST(System, DGroupCountTradeoff)
{
    // Figure 7: first-group fraction 2dg > 4dg > 8dg, equal misses.
    // Longer run: capacity pressure must reach the 2 MB d-groups.
    const SimLength len{300'000, 900'000};
    const auto &prof = findProfile("equake");
    auto n2 = runOne(OrgSpec::nurapidDefault(2), prof, len);
    auto n4 = runOne(OrgSpec::nurapidDefault(4), prof, len);
    auto n8 = runOne(OrgSpec::nurapidDefault(8), prof, len);
    EXPECT_GT(n2.region_frac[0], n4.region_frac[0]);
    EXPECT_GT(n4.region_frac[0], n8.region_frac[0]);
    EXPECT_EQ(n2.l2_misses, n4.l2_misses);
    EXPECT_EQ(n4.l2_misses, n8.l2_misses);
    // 8 d-groups swap much more (paper: 2.2x the promotions of 4).
    EXPECT_GT(n8.promotions, n4.promotions);
}

TEST(System, DeterministicAcrossRuns)
{
    const auto &prof = findProfile("vpr");
    auto a = runOne(OrgSpec::nurapidDefault(), prof, shortLength());
    auto b = runOne(OrgSpec::nurapidDefault(), prof, shortLength());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l2_hits, b.l2_hits);
    EXPECT_DOUBLE_EQ(a.energy.total_nj, b.energy.total_nj);
}

TEST(Energy, ReportComponentsAddUp)
{
    const auto &prof = findProfile("gzip");
    System sys(OrgSpec::nurapidDefault(), prof, shortLength());
    auto m = sys.runAll();
    const auto &e = m.energy;
    EXPECT_NEAR(e.total_nj,
                e.core_nj + e.l1_nj + e.l2_cache_nj + e.memory_nj,
                1e-6 * e.total_nj);
    EXPECT_GT(e.core_nj, 0.0);
    EXPECT_GT(e.l1_nj, 0.0);
    EXPECT_GT(e.l2_cache_nj, 0.0);
    EXPECT_GE(e.memory_nj, 0.0);
    EXPECT_DOUBLE_EQ(e.edp, e.total_nj * static_cast<double>(e.cycles));
}

TEST(Energy, MeanRelativePerformanceIdentity)
{
    const auto suite = lowLoadSuite();
    auto runs = runSuite(OrgSpec::baseline(), suite, {20'000, 50'000});
    EXPECT_DOUBLE_EQ(meanRelativePerformance(runs, runs), 1.0);
}

TEST(System, SNucaRunsAndSpreadsHitsAcrossRows)
{
    auto m = runOne(OrgSpec::snucaDefault(), findProfile("applu"),
                    shortLength());
    EXPECT_GT(m.ipc, 0.0);
    EXPECT_EQ(m.region_frac.size(), 8u);
    // Static mapping: hits spread over several rows; no row dominates
    // the way d-group 0 does for NuRAPID (the workload's layout, not
    // the cache, decides where hits land).
    int populated = 0;
    double biggest = 0;
    for (double f : m.region_frac) {
        populated += f > 0.02;
        biggest = std::max(biggest, f);
    }
    EXPECT_GE(populated, 3);
    EXPECT_LT(biggest, 0.65);
}

TEST(System, AdaptiveDesignsBeatStaticNuca)
{
    const auto &prof = findProfile("swim");
    const SimLength len{150'000, 450'000};
    auto sn = runOne(OrgSpec::snucaDefault(), prof, len);
    auto nr = runOne(OrgSpec::nurapidDefault(), prof, len);
    EXPECT_GT(nr.ipc, sn.ipc);
    EXPECT_GT(nr.region_frac[0], sn.region_frac[0]);
}

TEST(System, TreePlruDistanceReplacementRunsBetweenRandomAndLru)
{
    const auto &prof = findProfile("equake");
    const SimLength len{300'000, 900'000};
    auto rnd = runOne(OrgSpec::nurapidDefault(
                          4, PromotionPolicy::NextFastest,
                          DistanceRepl::Random), prof, len);
    auto plru = runOne(OrgSpec::nurapidDefault(
                           4, PromotionPolicy::NextFastest,
                           DistanceRepl::TreePLRU), prof, len);
    auto lru = runOne(OrgSpec::nurapidDefault(
                          4, PromotionPolicy::NextFastest,
                          DistanceRepl::LRU), prof, len);
    // Approximate LRU lands at or above random and at or below LRU
    // (with slack for noise at this run length).
    EXPECT_GT(plru.region_frac[0], rnd.region_frac[0] - 0.03);
    EXPECT_LT(plru.region_frac[0], lru.region_frac[0] + 0.03);
    EXPECT_EQ(rnd.l2_misses, plru.l2_misses);
    EXPECT_EQ(plru.l2_misses, lru.l2_misses);
}

TEST(System, FileTraceDrivesACoreLikeTheGenerator)
{
    // Capture a slice of a synthetic stream, then drive two identical
    // systems — one from the generator, one from the file — and demand
    // identical timing.
    const auto &prof = findProfile("gzip");
    const std::string path =
        std::string(::testing::TempDir()) + "/nurapid_sys_trace.bin";
    {
        SyntheticTrace gen(prof);
        captureTrace(gen, path, 150'000);
    }

    auto run = [&](TraceSource &src) {
        System sys(OrgSpec::nurapidDefault(), prof, {0, 0});
        sys.core().run(src, 150'000);
        return sys.core().cycles();
    };
    SyntheticTrace gen(prof);
    FileTraceSource file(path);
    const auto gen_cycles = run(gen);
    const auto file_cycles = run(file);
    EXPECT_EQ(gen_cycles, file_cycles);
    EXPECT_GT(gen_cycles, 0u);
    std::remove(path.c_str());
}

} // namespace
} // namespace nurapid
