/** @file Tests for the 2-level hybrid branch predictor. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "cpu/branch_predictor.hh"

namespace nurapid {
namespace {

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    BranchPredictor bp;
    int correct = 0;
    for (int i = 0; i < 1000; ++i)
        correct += bp.predictAndUpdate(0x400000, true);
    EXPECT_GT(correct, 990);
    EXPECT_GT(bp.accuracy(), 0.99);
}

TEST(BranchPredictor, LearnsLoopPattern)
{
    // TTTN repeating: gshare + history should learn it near-perfectly.
    BranchPredictor bp;
    int correct = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        const bool taken = (i % 4) != 3;
        correct += bp.predictAndUpdate(0x400040, taken);
    }
    EXPECT_GT(correct / double(n), 0.95);
}

TEST(BranchPredictor, RandomIsNearFiftyPercent)
{
    BranchPredictor bp;
    Rng rng(21);
    int correct = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        correct += bp.predictAndUpdate(0x400080, rng.chance(0.5));
    EXPECT_NEAR(correct / double(n), 0.5, 0.05);
}

TEST(BranchPredictor, BiasedBranchTracksBias)
{
    BranchPredictor bp;
    Rng rng(22);
    int correct = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        correct += bp.predictAndUpdate(0x4000c0, rng.chance(0.8));
    // Bimodal should capture the 80% bias (gshare noise tolerated).
    EXPECT_GT(correct / double(n), 0.70);
}

TEST(BranchPredictor, ManyIndependentBranches)
{
    // Aliasing pressure: 512 static branches, half always-taken, half
    // never-taken, interleaved.
    BranchPredictor bp;
    int correct = 0;
    const int rounds = 50;
    for (int r = 0; r < rounds; ++r) {
        for (int b = 0; b < 512; ++b) {
            const bool taken = b % 2 == 0;
            correct += bp.predictAndUpdate(0x400000 + b * 4, taken);
        }
    }
    EXPECT_GT(correct / double(rounds * 512), 0.9);
}

TEST(BranchPredictor, StatsCount)
{
    BranchPredictor bp;
    bp.predictAndUpdate(0x1000, true);
    bp.predictAndUpdate(0x1000, true);
    EXPECT_EQ(bp.stats().counterValue("predictions"), 2u);
    bp.resetStats();
    EXPECT_EQ(bp.stats().counterValue("predictions"), 0u);
    EXPECT_DOUBLE_EQ(bp.accuracy(), 1.0);
}

} // namespace
} // namespace nurapid
