/** @file Unit tests for the conventional L2/L3 baseline hierarchy. */

#include <gtest/gtest.h>

#include "mem/conventional_l2l3.hh"
#include "timing/geometry.hh"

namespace nurapid {
namespace {

const SramMacroModel &
model()
{
    static SramMacroModel m(TechParams::the70nm());
    return m;
}

ConventionalL2L3::Params
tinyParams()
{
    ConventionalL2L3::Params p;
    p.l2 = {"t.l2", 8 * 1024, 2, 128, ReplPolicy::LRU, 1};
    p.l3 = {"t.l3", 64 * 1024, 4, 128, ReplPolicy::LRU, 1};
    p.l2_latency = 11;
    p.l3_latency = 43;
    return p;
}

TEST(Conventional, L2HitLatency)
{
    ConventionalL2L3 h(model(), tinyParams());
    h.access(0x0, AccessType::Read, 0);           // miss to memory
    auto r = h.access(0x0, AccessType::Read, 10); // L2 hit
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.latency, 11u);
}

TEST(Conventional, L3HitAfterL2Eviction)
{
    auto p = tinyParams();
    ConventionalL2L3 h(model(), p);
    // Fill one L2 set (2 ways) plus one more mapping to the same set;
    // the evicted block should still hit in L3.
    const Addr stride = 8 * 1024 / 2;  // L2 set stride
    h.access(0 * stride, AccessType::Read, 0);
    h.access(1 * stride, AccessType::Read, 0);
    h.access(2 * stride, AccessType::Read, 0);  // evicts block 0 from L2
    auto r = h.access(0, AccessType::Read, 0);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.latency, 43u);  // L3 pipelined probe
    EXPECT_GE(h.stats().counterValue("l3_hits"), 1u);
}

TEST(Conventional, MissGoesToMemoryWithTagOnlyDetection)
{
    ConventionalL2L3 h(model(), tinyParams());
    auto r = h.access(0x100000, AccessType::Read, 0);
    EXPECT_FALSE(r.hit);
    // Miss latency = both tag probes + memory, well below the
    // full-data path but above raw memory latency.
    MainMemory mem;
    EXPECT_GT(r.latency, mem.latency(128));
    EXPECT_LT(r.latency, 11u + 43u + mem.latency(128));
    EXPECT_EQ(h.stats().counterValue("memory_fills"), 1u);
}

TEST(Conventional, WritebackAbsorbedOffCriticalPath)
{
    ConventionalL2L3 h(model(), tinyParams());
    auto r = h.access(0x40, AccessType::Writeback, 0);
    EXPECT_EQ(r.latency, 0u);
    // Writebacks are not demand accesses.
    EXPECT_EQ(h.stats().counterValue("accesses"), 0u);
    // But the block is now resident (write-allocate).
    EXPECT_TRUE(h.l2().contains(0x40));
}

TEST(Conventional, RegionHistogramTracksLevels)
{
    ConventionalL2L3 h(model(), tinyParams());
    h.access(0x0, AccessType::Read, 0);   // miss
    h.access(0x0, AccessType::Read, 0);   // L2 hit -> region 0
    EXPECT_EQ(h.regionHits().count(0), 1u);
}

TEST(Conventional, EnergyAccumulatesAndResets)
{
    ConventionalL2L3 h(model(), tinyParams());
    h.access(0x0, AccessType::Read, 0);
    EXPECT_GT(h.dynamicEnergyNJ(), 0.0);
    EXPECT_GT(h.cacheEnergyNJ(), 0.0);
    EXPECT_GE(h.dynamicEnergyNJ(), h.cacheEnergyNJ());
    h.resetStats();
    EXPECT_DOUBLE_EQ(h.dynamicEnergyNJ(), 0.0);
}

TEST(Conventional, DirtyL3EvictionWritesMemory)
{
    auto p = tinyParams();
    p.l3 = {"t.l3", 2 * 1024, 1, 128, ReplPolicy::LRU, 1};  // tiny L3
    p.l2 = {"t.l2", 1 * 1024, 1, 128, ReplPolicy::LRU, 1};
    ConventionalL2L3 h(model(), p);
    // Write a block, then conflict it out of both levels.
    h.access(0x0, AccessType::Write, 0);
    for (Addr a = 0x10000; a < 0x80000; a += 0x1000)
        h.access(a, AccessType::Read, 0);
    EXPECT_GE(h.memory().stats().counterValue("writes"), 1u);
}

} // namespace
} // namespace nurapid
