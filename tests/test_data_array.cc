/** @file Unit tests for NuRAPID's d-group data arrays. */

#include <gtest/gtest.h>

#include <set>

#include "nurapid/data_array.hh"

namespace nurapid {
namespace {

TEST(DataArray, AllFramesStartFree)
{
    DataArray d(4, 16, 1, DistanceRepl::LRU, 1);
    for (std::uint32_t g = 0; g < 4; ++g)
        EXPECT_TRUE(d.hasFree(g, 0));
    EXPECT_EQ(d.validCount(), 0u);
}

TEST(DataArray, AllocPlaceRemoveCycle)
{
    DataArray d(2, 4, 1, DistanceRepl::LRU, 1);
    std::set<std::uint32_t> frames;
    for (int i = 0; i < 4; ++i) {
        const auto f = d.allocFrame(0, 0);
        EXPECT_TRUE(frames.insert(f).second) << "duplicate frame";
        d.place(0, f, i, 0);
    }
    EXPECT_FALSE(d.hasFree(0, 0));
    EXPECT_EQ(d.validCount(), 4u);
    d.remove(0, *frames.begin());
    EXPECT_TRUE(d.hasFree(0, 0));
    EXPECT_EQ(d.validCount(), 3u);
}

TEST(DataArray, ReversePointersStored)
{
    DataArray d(2, 4, 1, DistanceRepl::LRU, 1);
    const auto f = d.allocFrame(1, 0);
    d.place(1, f, 123, 5);
    EXPECT_TRUE(d.frame(1, f).valid);
    EXPECT_EQ(d.frame(1, f).set, 123u);
    EXPECT_EQ(d.frame(1, f).way, 5u);
}

TEST(DataArray, LruVictimIsLeastRecentlyTouched)
{
    DataArray d(1, 3, 1, DistanceRepl::LRU, 1);
    std::uint32_t f0 = d.allocFrame(0, 0);
    std::uint32_t f1 = d.allocFrame(0, 0);
    std::uint32_t f2 = d.allocFrame(0, 0);
    d.place(0, f0, 0, 0);
    d.place(0, f1, 1, 0);
    d.place(0, f2, 2, 0);
    d.touch(0, f0);
    d.touch(0, f2);
    // f1 is oldest.
    EXPECT_EQ(d.victimFrame(0, 0), f1);
    d.touch(0, f1);
    EXPECT_EQ(d.victimFrame(0, 0), f0);
}

TEST(DataArray, RandomVictimOnlyWhenFullAndValid)
{
    DataArray d(1, 8, 1, DistanceRepl::Random, 7);
    for (int i = 0; i < 8; ++i)
        d.place(0, d.allocFrame(0, 0), i, 0);
    std::set<std::uint32_t> victims;
    for (int i = 0; i < 200; ++i) {
        const auto v = d.victimFrame(0, 0);
        EXPECT_TRUE(d.frame(0, v).valid);
        victims.insert(v);
    }
    EXPECT_GT(victims.size(), 4u);  // spreads across the d-group
}

TEST(DataArray, SwapFramesExchangesPointers)
{
    DataArray d(2, 4, 1, DistanceRepl::LRU, 1);
    const auto fa = d.allocFrame(0, 0);
    const auto fb = d.allocFrame(1, 0);
    d.place(0, fa, 10, 1);
    d.place(1, fb, 20, 2);
    d.swapFrames(0, fa, 1, fb);
    EXPECT_EQ(d.frame(0, fa).set, 20u);
    EXPECT_EQ(d.frame(0, fa).way, 2u);
    EXPECT_EQ(d.frame(1, fb).set, 10u);
    EXPECT_EQ(d.frame(1, fb).way, 1u);
    EXPECT_EQ(d.validCount(), 2u);
}

TEST(DataArray, RegionsPartitionFrames)
{
    DataArray d(2, 16, 4, DistanceRepl::LRU, 1);
    // 4 frames per region; regionOfFrame is the static partition.
    for (std::uint32_t f = 0; f < 16; ++f)
        EXPECT_EQ(d.regionOfFrame(f), f / 4);
    // Region allocation stays within the region's frames.
    for (int i = 0; i < 4; ++i) {
        const auto f = d.allocFrame(0, 2);
        EXPECT_EQ(d.regionOfFrame(f), 2u);
        d.place(0, f, i, 0);
    }
    EXPECT_FALSE(d.hasFree(0, 2));
    EXPECT_TRUE(d.hasFree(0, 1));
}

TEST(DataArray, RegionOfBlockIsStableAndInRange)
{
    DataArray d(2, 64, 8, DistanceRepl::Random, 1);
    for (Addr b = 0; b < 1000; ++b) {
        const auto r = d.regionOf(b);
        EXPECT_LT(r, 8u);
        EXPECT_EQ(r, d.regionOf(b));
    }
    // A single-region array maps everything to region 0.
    DataArray u(2, 64, 1, DistanceRepl::Random, 1);
    EXPECT_EQ(u.regionOf(0xdeadbeef), 0u);
}

TEST(DataArray, RegionLruIsIndependent)
{
    DataArray d(1, 8, 2, DistanceRepl::LRU, 1);
    // Fill both regions.
    std::uint32_t r0_first = d.allocFrame(0, 0);
    d.place(0, r0_first, 0, 0);
    for (int i = 1; i < 4; ++i)
        d.place(0, d.allocFrame(0, 0), i, 0);
    for (int i = 0; i < 4; ++i)
        d.place(0, d.allocFrame(0, 1), 10 + i, 0);
    // Touching region 1 frames must not change region 0's victim.
    for (std::uint32_t f = 4; f < 8; ++f)
        d.touch(0, f);
    EXPECT_EQ(d.victimFrame(0, 0), r0_first);
}

TEST(DataArrayDeath, PlaceIntoOccupiedFrame)
{
    DataArray d(1, 2, 1, DistanceRepl::LRU, 1);
    const auto f = d.allocFrame(0, 0);
    d.place(0, f, 0, 0);
    EXPECT_DEATH(d.place(0, f, 1, 0), "occupied");
}

TEST(DataArrayDeath, RemoveInvalidFrame)
{
    DataArray d(1, 2, 1, DistanceRepl::LRU, 1);
    const auto f = d.allocFrame(0, 0);
    EXPECT_DEATH(d.remove(0, f), "invalid frame");
}

TEST(DataArrayDeath, VictimWhileFreeFramesExist)
{
    DataArray d(1, 2, 1, DistanceRepl::LRU, 1);
    const auto f = d.allocFrame(0, 0);
    d.place(0, f, 0, 0);
    // One frame still free: nominating a victim is a logic error.
    EXPECT_DEATH(d.victimFrame(0, 0), "free");
}

} // namespace
} // namespace nurapid
