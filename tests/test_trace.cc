/** @file Tests for workload profiles and the synthetic generator. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/profiles.hh"
#include "trace/synthetic.hh"

namespace nurapid {
namespace {

TEST(Profiles, SuiteHasFifteenBenchmarks)
{
    // The paper evaluates 15 SPEC2K applications (Table 3).
    EXPECT_EQ(workloadSuite().size(), 15u);
    EXPECT_EQ(highLoadSuite().size() + lowLoadSuite().size(), 15u);
    EXPECT_GE(highLoadSuite().size(), 10u);
    EXPECT_GE(lowLoadSuite().size(), 2u);
}

TEST(Profiles, NamesUniqueAndFindable)
{
    std::set<std::string> names;
    for (const auto &p : workloadSuite()) {
        EXPECT_TRUE(names.insert(p.name).second) << p.name;
        EXPECT_EQ(findProfile(p.name).name, p.name);
    }
}

TEST(Profiles, WeightsWellFormed)
{
    for (const auto &p : workloadSuite()) {
        double total = 0;
        for (const auto &l : p.layers) {
            EXPECT_GT(l.bytes, 0u) << p.name;
            EXPECT_GE(l.weight, 0.0) << p.name;
            EXPECT_GE(l.segments, 1u) << p.name;
            total += l.weight;
        }
        EXPECT_LE(total, 1.0 + 1e-9) << p.name;
        EXPECT_GT(p.table3_l2_apki, 0.0) << p.name;
    }
}

TEST(Profiles, HighLoadHasHigherApkiTargets)
{
    double high_min = 1e9, low_max = 0;
    for (const auto &p : workloadSuite()) {
        if (p.high_load)
            high_min = std::min(high_min, p.table3_l2_apki);
        else
            low_max = std::max(low_max, p.table3_l2_apki);
    }
    EXPECT_GT(high_min, low_max);
}

TEST(ProfilesDeath, UnknownNameIsFatal)
{
    EXPECT_DEATH(findProfile("quake3"), "no workload profile");
}

TEST(Synthetic, DeterministicStream)
{
    const auto &p = findProfile("applu");
    SyntheticTrace a(p), b(p);
    TraceRecord ra, rb;
    for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(a.next(ra));
        ASSERT_TRUE(b.next(rb));
        EXPECT_EQ(ra.addr, rb.addr);
        EXPECT_EQ(ra.op, rb.op);
        EXPECT_EQ(ra.inst_gap, rb.inst_gap);
    }
}

TEST(Synthetic, ResetReproducesStream)
{
    const auto &p = findProfile("mcf");
    SyntheticTrace t(p);
    std::vector<Addr> first;
    TraceRecord r;
    for (int i = 0; i < 2000; ++i) {
        t.next(r);
        first.push_back(r.addr);
    }
    t.reset();
    for (int i = 0; i < 2000; ++i) {
        t.next(r);
        EXPECT_EQ(r.addr, first[i]);
    }
}

TEST(Synthetic, SeedMixDecorrelates)
{
    const auto &p = findProfile("applu");
    SyntheticTrace a(p, 0), b(p, 1);
    TraceRecord ra, rb;
    int same = 0;
    for (int i = 0; i < 1000; ++i) {
        a.next(ra);
        b.next(rb);
        same += ra.addr == rb.addr;
    }
    EXPECT_LT(same, 100);
}

TEST(Synthetic, StoreFractionApproximatesProfile)
{
    const auto &p = findProfile("bzip2");
    SyntheticTrace t(p);
    TraceRecord r;
    int stores = 0, data = 0;
    for (int i = 0; i < 50000; ++i) {
        t.next(r);
        if (r.op == TraceOp::Ifetch)
            continue;
        ++data;
        stores += r.op == TraceOp::Store;
    }
    // Chase bursts are load-only, so the measured rate sits at or a
    // little under the configured fraction.
    EXPECT_NEAR(stores / double(data), p.store_frac, 0.08);
}

TEST(Synthetic, MeanInstGapMatchesRefRate)
{
    const auto &p = findProfile("galgel");
    SyntheticTrace t(p);
    TraceRecord r;
    double insts = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        t.next(r);
        insts += r.inst_gap + 1;
    }
    const double refs_per_kinst = 1000.0 * n / insts;
    // The realized rate sits near the configured one (the reference
    // record itself counts as an instruction, pulling it slightly
    // below; chase bursts pull it up).
    EXPECT_GT(refs_per_kinst, p.mem_refs_per_kinst * 0.7);
    EXPECT_LT(refs_per_kinst, p.mem_refs_per_kinst * 2.5);
}

TEST(Synthetic, BranchesPresentWithOutcomes)
{
    const auto &p = findProfile("parser");
    SyntheticTrace t(p);
    TraceRecord r;
    int branches = 0, taken = 0;
    std::set<std::uint32_t> pcs;
    for (int i = 0; i < 50000; ++i) {
        t.next(r);
        if (r.has_branch) {
            ++branches;
            taken += r.branch_taken;
            pcs.insert(r.branch_pc);
        }
    }
    EXPECT_GT(branches, 10000);
    EXPECT_GT(pcs.size(), 100u);          // many static branches
    EXPECT_GT(taken, branches / 4);       // mixed outcomes
    EXPECT_LT(taken, branches);
}

TEST(Synthetic, ChaseBurstsAreDependentLoads)
{
    const auto &p = findProfile("mcf");  // highest dep_frac
    SyntheticTrace t(p);
    TraceRecord r;
    int dependent = 0;
    for (int i = 0; i < 50000; ++i) {
        t.next(r);
        if (r.depends_on_prev) {
            ++dependent;
            EXPECT_EQ(r.op, TraceOp::Load);
        }
    }
    EXPECT_GT(dependent, 500);
}

TEST(Synthetic, IfetchOnlyWhenConfigured)
{
    SyntheticTrace with(findProfile("parser"));
    SyntheticTrace without(findProfile("applu"));
    TraceRecord r;
    int wi = 0, wo = 0;
    for (int i = 0; i < 30000; ++i) {
        with.next(r);
        wi += r.op == TraceOp::Ifetch;
        without.next(r);
        wo += r.op == TraceOp::Ifetch;
    }
    EXPECT_GT(wi, 0);
    EXPECT_EQ(wo, 0);
}

TEST(Synthetic, AddressesStayInLayerRegions)
{
    const auto &p = findProfile("apsi");
    SyntheticTrace t(p);
    TraceRecord r;
    for (int i = 0; i < 50000; ++i) {
        t.next(r);
        // All data addresses live in the synthetic layout's regions
        // (above 2 GB for layers, the cold region, or the code region).
        if (r.op != TraceOp::Ifetch) {
            EXPECT_GE(r.addr, Addr{2} << 30);
        }
    }
}

TEST(Synthetic, DriftRelocatesHotSegments)
{
    auto p = findProfile("applu");
    p.drift_period = 500;  // aggressive drift for the test
    SyntheticTrace t(p);
    TraceRecord r;
    std::set<Addr> hot_segments_seen;
    const std::uint64_t seg_bytes =
        p.layers[1].bytes / p.layers[1].segments;
    for (int i = 0; i < 200000; ++i) {
        t.next(r);
        if (r.op != TraceOp::Ifetch && r.addr >= (Addr{3} << 30) &&
            r.addr < (Addr{4} << 30)) {
            hot_segments_seen.insert(r.addr / seg_bytes);
        }
    }
    // With relocations, far more distinct segment slots are touched
    // than the layer's static segment count.
    EXPECT_GT(hot_segments_seen.size(), p.layers[1].segments * 2);
}

} // namespace
} // namespace nurapid
