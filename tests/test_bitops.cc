/** @file Unit tests for common/bitops.hh. */

#include <gtest/gtest.h>

#include "common/bitops.hh"

namespace nurapid {
namespace {

TEST(BitOps, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
    EXPECT_TRUE(isPowerOf2(1ull << 63));
}

TEST(BitOps, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(~0ull), 63u);
}

TEST(BitOps, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_EQ(ceilLog2(1ull << 50), 50u);
    EXPECT_EQ(ceilLog2((1ull << 50) + 1), 51u);
}

TEST(BitOps, BitsFor)
{
    // bitsFor(n) must be able to enumerate n distinct values.
    EXPECT_EQ(bitsFor(0), 0u);
    EXPECT_EQ(bitsFor(1), 0u);
    EXPECT_EQ(bitsFor(2), 1u);
    EXPECT_EQ(bitsFor(4), 2u);
    EXPECT_EQ(bitsFor(5), 3u);
    // The paper's example: 64K frames need 16 bits.
    EXPECT_EQ(bitsFor(65536), 16u);
    // 256-frame restriction needs 8 bits.
    EXPECT_EQ(bitsFor(256), 8u);
}

TEST(BitOps, BitsExtract)
{
    EXPECT_EQ(bits(0xff00, 15, 8), 0xffull);
    EXPECT_EQ(bits(0xff00, 7, 0), 0x00ull);
    EXPECT_EQ(bits(0xdeadbeef, 31, 16), 0xdeadull);
    EXPECT_EQ(bits(~0ull, 63, 0), ~0ull);
}

TEST(BitOps, RoundUp)
{
    EXPECT_EQ(roundUp(0, 8), 0ull);
    EXPECT_EQ(roundUp(1, 8), 8ull);
    EXPECT_EQ(roundUp(8, 8), 8ull);
    EXPECT_EQ(roundUp(9, 8), 16ull);
    EXPECT_EQ(roundUp(127, 128), 128ull);
}

class BlockAlignTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BlockAlignTest, AlignsToBlock)
{
    const unsigned block = GetParam();
    for (Addr a : {Addr{0}, Addr{1}, Addr{block - 1}, Addr{block},
                   Addr{block + 1}, Addr{0x123456789abcull}}) {
        const Addr aligned = blockAlign(a, block);
        EXPECT_EQ(aligned % block, 0u);
        EXPECT_LE(aligned, a);
        EXPECT_LT(a - aligned, block);
    }
}

INSTANTIATE_TEST_SUITE_P(Blocks, BlockAlignTest,
                         ::testing::Values(32u, 64u, 128u, 256u));

} // namespace
} // namespace nurapid
